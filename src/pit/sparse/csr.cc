#include "pit/sparse/csr.h"

#include <algorithm>

#include "pit/common/check.h"

namespace pit {

CsrMatrix CsrMatrix::FromDense(const Tensor& dense) {
  PIT_CHECK_EQ(dense.rank(), 2);
  CsrMatrix csr;
  csr.rows = dense.dim(0);
  csr.cols = dense.dim(1);
  csr.row_ptr.reserve(static_cast<size_t>(csr.rows) + 1);
  csr.row_ptr.push_back(0);
  for (int64_t r = 0; r < csr.rows; ++r) {
    for (int64_t c = 0; c < csr.cols; ++c) {
      const float v = dense.At(r, c);
      if (v != 0.0f) {
        csr.col_idx.push_back(c);
        csr.values.push_back(v);
      }
    }
    csr.row_ptr.push_back(static_cast<int64_t>(csr.values.size()));
  }
  return csr;
}

Tensor CsrMatrix::ToDense() const {
  Tensor out({rows, cols});
  for (int64_t r = 0; r < rows; ++r) {
    for (int64_t i = row_ptr[static_cast<size_t>(r)]; i < row_ptr[static_cast<size_t>(r) + 1];
         ++i) {
      out.At(r, col_idx[static_cast<size_t>(i)]) = values[static_cast<size_t>(i)];
    }
  }
  return out;
}

Tensor CsrMatrix::SpMM(const Tensor& b) const {
  PIT_CHECK_EQ(b.rank(), 2);
  PIT_CHECK_EQ(b.dim(0), cols);
  const int64_t n = b.dim(1);
  Tensor c({rows, n});
  for (int64_t r = 0; r < rows; ++r) {
    float* crow = c.data() + r * n;
    for (int64_t i = row_ptr[static_cast<size_t>(r)]; i < row_ptr[static_cast<size_t>(r) + 1];
         ++i) {
      const float av = values[static_cast<size_t>(i)];
      const float* brow = b.data() + col_idx[static_cast<size_t>(i)] * n;
      for (int64_t j = 0; j < n; ++j) {
        crow[j] += av * brow[j];
      }
    }
  }
  return c;
}

BsrMatrix BsrMatrix::FromDense(const Tensor& dense, int64_t block_rows, int64_t block_cols) {
  PIT_CHECK_EQ(dense.rank(), 2);
  PIT_CHECK_GT(block_rows, 0);
  PIT_CHECK_GT(block_cols, 0);
  BsrMatrix bsr;
  bsr.rows = dense.dim(0);
  bsr.cols = dense.dim(1);
  bsr.block_rows = block_rows;
  bsr.block_cols = block_cols;
  const int64_t grid_r = (bsr.rows + block_rows - 1) / block_rows;
  const int64_t grid_c = (bsr.cols + block_cols - 1) / block_cols;
  bsr.row_ptr.push_back(0);
  for (int64_t br = 0; br < grid_r; ++br) {
    for (int64_t bc = 0; bc < grid_c; ++bc) {
      bool nonzero = false;
      for (int64_t r = br * block_rows; r < std::min(bsr.rows, (br + 1) * block_rows) && !nonzero;
           ++r) {
        for (int64_t c = bc * block_cols; c < std::min(bsr.cols, (bc + 1) * block_cols); ++c) {
          if (dense.At(r, c) != 0.0f) {
            nonzero = true;
            break;
          }
        }
      }
      if (!nonzero) {
        continue;
      }
      bsr.col_idx.push_back(bc);
      for (int64_t r = 0; r < block_rows; ++r) {
        for (int64_t c = 0; c < block_cols; ++c) {
          const int64_t gr = br * block_rows + r, gc = bc * block_cols + c;
          bsr.values.push_back((gr < bsr.rows && gc < bsr.cols) ? dense.At(gr, gc) : 0.0f);
        }
      }
    }
    bsr.row_ptr.push_back(static_cast<int64_t>(bsr.col_idx.size()));
  }
  return bsr;
}

Tensor BsrMatrix::ToDense() const {
  Tensor out({rows, cols});
  const int64_t grid_r = static_cast<int64_t>(row_ptr.size()) - 1;
  for (int64_t br = 0; br < grid_r; ++br) {
    for (int64_t i = row_ptr[static_cast<size_t>(br)]; i < row_ptr[static_cast<size_t>(br) + 1];
         ++i) {
      const int64_t bc = col_idx[static_cast<size_t>(i)];
      const float* block = values.data() + i * block_rows * block_cols;
      for (int64_t r = 0; r < block_rows; ++r) {
        for (int64_t c = 0; c < block_cols; ++c) {
          const int64_t gr = br * block_rows + r, gc = bc * block_cols + c;
          if (gr < rows && gc < cols) {
            out.At(gr, gc) = block[r * block_cols + c];
          }
        }
      }
    }
  }
  return out;
}

Tensor BsrMatrix::SpMM(const Tensor& b) const {
  PIT_CHECK_EQ(b.rank(), 2);
  PIT_CHECK_EQ(b.dim(0), cols);
  const int64_t n = b.dim(1);
  Tensor c({rows, n});
  const int64_t grid_r = static_cast<int64_t>(row_ptr.size()) - 1;
  for (int64_t br = 0; br < grid_r; ++br) {
    for (int64_t i = row_ptr[static_cast<size_t>(br)]; i < row_ptr[static_cast<size_t>(br) + 1];
         ++i) {
      const int64_t bc = col_idx[static_cast<size_t>(i)];
      const float* block = values.data() + i * block_rows * block_cols;
      for (int64_t r = 0; r < block_rows; ++r) {
        const int64_t gr = br * block_rows + r;
        if (gr >= rows) {
          continue;
        }
        float* crow = c.data() + gr * n;
        for (int64_t k = 0; k < block_cols; ++k) {
          const int64_t gk = bc * block_cols + k;
          if (gk >= cols) {
            continue;
          }
          const float av = block[r * block_cols + k];
          if (av == 0.0f) {
            continue;
          }
          const float* brow = b.data() + gk * n;
          for (int64_t j = 0; j < n; ++j) {
            crow[j] += av * brow[j];
          }
        }
      }
    }
  }
  return c;
}

}  // namespace pit
