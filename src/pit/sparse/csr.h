// Classic sparse formats (CSR, BSR) and their conversion paths.
//
// These exist to reproduce the baselines faithfully: cuSPARSE-style kernels
// consume CSR, Triton/OpenAI block-sparse consumes a block (BSR) mask. The
// expensive part the paper measures (Fig. 3b, Fig. 18) is exactly the
// dense->sparse conversion these formats force on dynamic patterns — the
// conversion routines here are functional and their cost is priced separately
// by the engines.
#ifndef PIT_SPARSE_CSR_H_
#define PIT_SPARSE_CSR_H_

#include <cstdint>
#include <vector>

#include "pit/tensor/tensor.h"

namespace pit {

// Compressed Sparse Row.
struct CsrMatrix {
  int64_t rows = 0;
  int64_t cols = 0;
  std::vector<int64_t> row_ptr;  // rows + 1
  std::vector<int64_t> col_idx;  // nnz
  std::vector<float> values;     // nnz

  int64_t nnz() const { return static_cast<int64_t>(values.size()); }

  static CsrMatrix FromDense(const Tensor& dense);
  Tensor ToDense() const;
  // C[rows, b.cols] = this * B (dense B). The cuSPARSE SpMM shape.
  Tensor SpMM(const Tensor& b) const;
};

// Block Sparse Row with fixed block_rows x block_cols dense blocks; a block
// is stored iff it contains any nonzero (zero-padded inside).
struct BsrMatrix {
  int64_t rows = 0;
  int64_t cols = 0;
  int64_t block_rows = 0;
  int64_t block_cols = 0;
  std::vector<int64_t> row_ptr;   // block-rows + 1
  std::vector<int64_t> col_idx;   // num_blocks (block-column ids)
  std::vector<float> values;      // num_blocks * block_rows * block_cols

  int64_t num_blocks() const { return static_cast<int64_t>(col_idx.size()); }

  static BsrMatrix FromDense(const Tensor& dense, int64_t block_rows, int64_t block_cols);
  Tensor ToDense() const;
  Tensor SpMM(const Tensor& b) const;
};

}  // namespace pit

#endif  // PIT_SPARSE_CSR_H_
