// Sparsity-pattern abstraction and micro-tile coverage (the paper's
// CoverAlgo, Algorithm 1 line 8).
//
// Two implementations: MaskPattern counts coverage exactly on a materialized
// mask tensor (used in tests and small benchmarks), AnalyticPattern computes
// the same statistics in closed form for an aligned iid block-sparse pattern
// (used by the large e2e sweeps where materializing a 4096x4096 mask per
// configuration would dominate runtime on this machine).
#ifndef PIT_SPARSE_COVERAGE_H_
#define PIT_SPARSE_COVERAGE_H_

#include <cstdint>
#include <memory>

#include "pit/core/pit_rule.h"
#include "pit/tensor/tensor.h"

namespace pit {

// Read-only statistical view of a 2-D sparsity pattern.
class SparsityPattern {
 public:
  virtual ~SparsityPattern() = default;
  virtual int64_t rows() const = 0;
  virtual int64_t cols() const = 0;
  // Probability that an aligned micro-tile of this shape contains >=1 nonzero.
  virtual double NonZeroProb(const MicroTileShape& micro) const = 0;
  // Fraction of individual elements that are zero.
  virtual double ElementSparsity() const = 0;
};

// iid block-sparse pattern: aligned (block_rows x block_cols) blocks, each
// entirely nonzero with probability (1 - sparsity).
class AnalyticPattern : public SparsityPattern {
 public:
  AnalyticPattern(int64_t rows, int64_t cols, int64_t block_rows, int64_t block_cols,
                  double sparsity);

  int64_t rows() const override { return rows_; }
  int64_t cols() const override { return cols_; }
  double NonZeroProb(const MicroTileShape& micro) const override;
  double ElementSparsity() const override { return sparsity_; }

  int64_t block_rows() const { return block_rows_; }
  int64_t block_cols() const { return block_cols_; }

 private:
  int64_t rows_, cols_, block_rows_, block_cols_;
  double sparsity_;
};

// Exact pattern backed by a mask/value tensor (nonzero = participates).
// Holds a non-owning view, so it can wrap either a Tensor or an arena slice;
// the underlying storage must outlive the pattern.
class MaskPattern : public SparsityPattern {
 public:
  explicit MaskPattern(const Tensor* mask);
  explicit MaskPattern(ConstTensorView mask);

  int64_t rows() const override { return mask_.dim(0); }
  int64_t cols() const override { return mask_.dim(1); }
  double NonZeroProb(const MicroTileShape& micro) const override;
  double ElementSparsity() const override;

 private:
  ConstTensorView mask_;
};

// CoverAlgo: number of micro-tiles needed to cover every nonzero.
int64_t CountCoveringMicroTiles(const SparsityPattern& pattern, const MicroTileShape& micro);

// The paper's "wasted computation": among elements covered by the executing
// micro-tiles, the fraction that are zero.
double WastedComputationFraction(const SparsityPattern& pattern, const MicroTileShape& micro);

}  // namespace pit

#endif  // PIT_SPARSE_COVERAGE_H_
