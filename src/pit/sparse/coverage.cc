#include "pit/sparse/coverage.h"

#include <algorithm>
#include <cmath>

#include "pit/common/check.h"
#include "pit/core/sparsity_detector.h"

namespace pit {

AnalyticPattern::AnalyticPattern(int64_t rows, int64_t cols, int64_t block_rows,
                                 int64_t block_cols, double sparsity)
    : rows_(rows), cols_(cols), block_rows_(block_rows), block_cols_(block_cols),
      sparsity_(sparsity) {
  PIT_CHECK_GT(block_rows, 0);
  PIT_CHECK_GT(block_cols, 0);
  PIT_CHECK_GE(sparsity, 0.0);
  PIT_CHECK_LE(sparsity, 1.0);
}

double AnalyticPattern::NonZeroProb(const MicroTileShape& micro) const {
  // Number of independent granularity blocks a micro-tile intersects (aligned
  // grids; a micro-tile smaller than the block still sees one block).
  const double br = std::max<double>(
      1.0, static_cast<double>(std::min(micro.rows, rows_)) / static_cast<double>(block_rows_));
  const double bc = std::max<double>(
      1.0, static_cast<double>(std::min(micro.cols, cols_)) / static_cast<double>(block_cols_));
  const double blocks = br * bc;
  return 1.0 - std::pow(sparsity_, blocks);
}

namespace {
ConstTensorView DerefMask(const Tensor* mask) {
  PIT_CHECK(mask != nullptr);
  return ConstTensorView(*mask);
}
}  // namespace

MaskPattern::MaskPattern(const Tensor* mask) : MaskPattern(DerefMask(mask)) {}

MaskPattern::MaskPattern(ConstTensorView mask) : mask_(mask) {
  PIT_CHECK_EQ(mask_.rank(), 2);
}

double MaskPattern::NonZeroProb(const MicroTileShape& micro) const {
  SparsityDetector detector;
  MicroTileIndex index = detector.Detect(mask_, micro);
  return index.CoveredFraction();
}

double MaskPattern::ElementSparsity() const { return mask_.SparsityRatio(); }

int64_t CountCoveringMicroTiles(const SparsityPattern& pattern, const MicroTileShape& micro) {
  const int64_t grid_rows = (pattern.rows() + micro.rows - 1) / micro.rows;
  const int64_t grid_cols = (pattern.cols() + micro.cols - 1) / micro.cols;
  const double expected =
      static_cast<double>(grid_rows * grid_cols) * pattern.NonZeroProb(micro);
  return static_cast<int64_t>(std::llround(expected));
}

double WastedComputationFraction(const SparsityPattern& pattern, const MicroTileShape& micro) {
  const double covered_area = pattern.NonZeroProb(micro);  // fraction of total area
  if (covered_area <= 0.0) {
    return 0.0;
  }
  const double nonzero_area = 1.0 - pattern.ElementSparsity();
  return std::clamp(1.0 - nonzero_area / covered_area, 0.0, 1.0);
}

}  // namespace pit
