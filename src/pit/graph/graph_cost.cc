#include "pit/graph/graph_cost.h"

#include "pit/common/check.h"
#include "pit/core/kernel_selection.h"
#include "pit/sparse/coverage.h"

namespace pit {

namespace {

const MatmulDecision* DecisionFor(const std::vector<MatmulDecision>* decisions, int id) {
  if (decisions == nullptr) {
    return nullptr;
  }
  for (const auto& d : *decisions) {
    if (d.node_id == id) {
      return &d;
    }
  }
  return nullptr;
}

}  // namespace

GraphCostReport EstimateGraphCost(const Graph& graph, const CostModel& model,
                                  const TileDatabase& db,
                                  const std::vector<MatmulDecision>* decisions) {
  GraphCostReport report;
  for (int id = 0; id < graph.size(); ++id) {
    const GraphNode& n = graph.node(id);
    switch (n.kind) {
      case OpKind::kInput:
      case OpKind::kWeight:
        break;
      case OpKind::kMatmul:
      case OpKind::kMatmulBias: {  // fused bias epilogue prices like the matmul
        const GraphNode& a = graph.node(n.inputs[0]);
        const int64_t m = a.shape[0], k = a.shape[1], nn = n.shape[1];
        const MatmulDecision* d = DecisionFor(decisions, id);
        if (d != nullptr && d->use_pit && a.MaybeSparse()) {
          // Analytic pattern per sparsity source (see header).
          const int64_t gm = 1;
          const int64_t gn = a.sparsity == SparsitySource::kExternal ? k : 1;
          AnalyticPattern pattern(m, k, gm, gn, a.expected_sparsity);
          SelectionOptions opts;
          opts.axes = {d->axis};
          SelectionResult sel = SelectKernel(model, db, {&pattern}, m, k, nn, opts);
          report.total += sel.best.cost;
          ++report.matmuls_sparse;
        } else {
          const TileEntry& tile = db.BestDenseTile(model, m, k, nn);
          report.total += model.DenseMatmul(m, k, nn, tile.shape, tile.tensor_core);
          ++report.matmuls_dense;
        }
        break;
      }
      case OpKind::kReshape:
        break;  // zero-cost alias: no data moves, no kernel launches
      case OpKind::kBatchMatmul: {
        // One dense GEMM per batch slice, launched together.
        const GraphNode& a = graph.node(n.inputs[0]);
        const int64_t bs = a.shape[0], m = a.shape[1], k = a.shape[2], nn = n.shape[2];
        const TileEntry& tile = db.BestDenseTile(model, m, k, nn);
        CostBreakdown per = model.DenseMatmul(m, k, nn, tile.shape, tile.tensor_core);
        per.compute_us *= static_cast<double>(bs);
        per.memory_us *= static_cast<double>(bs);
        report.total += per;
        report.matmuls_dense += static_cast<int>(bs);
        break;
      }
      case OpKind::kRelu:
      case OpKind::kAdd:
      case OpKind::kMask:
      case OpKind::kSoftmax:
      case OpKind::kLayerNorm:
      case OpKind::kScale:
      case OpKind::kTranspose: {
        // Memory-bound elementwise: read inputs + write output.
        int64_t elems = NumElements(n.shape);
        for (int in : n.inputs) {
          elems += NumElements(graph.node(in).shape);
        }
        CostBreakdown c;
        c.memory_us = model.MemoryTime(elems * model.ElemBytes());
        c.launch_us = model.device().launch_overhead_us;
        report.total += c;
        break;
      }
    }
  }
  return report;
}

}  // namespace pit
