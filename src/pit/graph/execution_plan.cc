#include "pit/graph/execution_plan.h"

#include <algorithm>
#include <map>

#include "pit/common/check.h"
#include "pit/tensor/ops.h"

namespace pit {

namespace {

// Arena offsets are aligned to 16 floats (one cache line) so reused slots
// never split a vector register's load across two lines.
constexpr int64_t kAlignElems = 16;

int64_t AlignUp(int64_t elems) {
  return (elems + kAlignElems - 1) / kAlignElems * kAlignElems;
}

// Best-fit free-list planner with coalescing. Works entirely at compile
// time: the plan's arena is sized to the high-water extent once, and
// execution never allocates.
class ArenaPlanner {
 public:
  int64_t Allocate(int64_t elems) {
    const int64_t need = AlignUp(std::max<int64_t>(elems, 1));
    // Best-fit: smallest free block that holds `need`.
    auto best = free_.end();
    for (auto it = free_.begin(); it != free_.end(); ++it) {
      if (it->second >= need && (best == free_.end() || it->second < best->second)) {
        best = it;
      }
    }
    int64_t offset;
    if (best != free_.end()) {
      offset = best->first;
      const int64_t leftover = best->second - need;
      free_.erase(best);
      if (leftover > 0) {
        free_.emplace(offset + need, leftover);
      }
    } else {
      offset = extent_;
      extent_ += need;
    }
    live_.emplace(offset, need);
    return offset;
  }

  void Free(int64_t offset) {
    auto it = live_.find(offset);
    PIT_CHECK(it != live_.end()) << "double free at arena offset " << offset;
    int64_t size = it->second;
    live_.erase(it);
    // Coalesce with the next and previous free blocks.
    auto next = free_.lower_bound(offset);
    if (next != free_.end() && offset + size == next->first) {
      size += next->second;
      next = free_.erase(next);
    }
    if (next != free_.begin()) {
      auto prev = std::prev(next);
      if (prev->first + prev->second == offset) {
        prev->second += size;
        return;
      }
    }
    free_.emplace(offset, size);
  }

  int64_t extent() const { return extent_; }

 private:
  std::map<int64_t, int64_t> free_;  // offset -> size
  std::map<int64_t, int64_t> live_;  // offset -> size
  int64_t extent_ = 0;
};

Shape InferShape(const Graph& g, const GraphNode& n) {
  switch (n.kind) {
    case OpKind::kInput:
    case OpKind::kWeight:
      return n.shape;
    case OpKind::kMatmul:
    case OpKind::kMatmulBias: {
      const Shape& a = g.node(n.inputs[0]).shape;
      const Shape& b = g.node(n.inputs[1]).shape;
      PIT_CHECK_EQ(a.size(), 2u);
      PIT_CHECK_EQ(b.size(), 2u);
      PIT_CHECK_EQ(a[1], b[0]);
      if (n.kind == OpKind::kMatmulBias) {
        const Shape& bias = g.node(n.inputs[2]).shape;
        PIT_CHECK_EQ(bias.size(), 1u);
        PIT_CHECK_EQ(bias[0], b[1]);
      }
      return {a[0], b[1]};
    }
    case OpKind::kRelu:
      return g.node(n.inputs[0]).shape;
    case OpKind::kSoftmax: {
      const Shape& x = g.node(n.inputs[0]).shape;
      if (n.inputs.size() == 2) {
        const Shape& mask = g.node(n.inputs[1]).shape;
        PIT_CHECK_EQ(mask.size(), 2u);
        PIT_CHECK_EQ(mask[0], x[x.size() - 2]);
        PIT_CHECK_EQ(mask[1], x[x.size() - 1]);
      }
      return x;
    }
    case OpKind::kAdd:
    case OpKind::kMask:
      PIT_CHECK(g.node(n.inputs[0]).shape == g.node(n.inputs[1]).shape);
      return g.node(n.inputs[0]).shape;
    case OpKind::kLayerNorm: {
      const Shape& x = g.node(n.inputs[0]).shape;
      PIT_CHECK_EQ(x.size(), 2u);
      PIT_CHECK(g.node(n.inputs[1]).shape == Shape{x[1]});
      PIT_CHECK(g.node(n.inputs[2]).shape == Shape{x[1]});
      return x;
    }
    case OpKind::kScale:
      return g.node(n.inputs[0]).shape;
    case OpKind::kTranspose: {
      Shape s = g.node(n.inputs[0]).shape;
      const int rank = static_cast<int>(s.size());
      PIT_CHECK(n.iattr0 >= 0 && n.iattr0 < rank && n.iattr1 >= 0 && n.iattr1 < rank)
          << "transpose axes (" << n.iattr0 << ", " << n.iattr1 << ") out of rank " << rank;
      std::swap(s[static_cast<size_t>(n.iattr0)], s[static_cast<size_t>(n.iattr1)]);
      return s;
    }
    case OpKind::kReshape:
      PIT_CHECK_EQ(NumElements(n.shape), NumElements(g.node(n.inputs[0]).shape));
      return n.shape;
    case OpKind::kBatchMatmul: {
      const Shape& a = g.node(n.inputs[0]).shape;
      const Shape& b = g.node(n.inputs[1]).shape;
      PIT_CHECK_EQ(a.size(), 3u);
      PIT_CHECK_EQ(b.size(), 3u);
      PIT_CHECK_EQ(a[0], b[0]);
      PIT_CHECK_EQ(a[2], b[1]);
      return {a[0], a[1], b[2]};
    }
  }
  PIT_CHECK(false) << "unreachable op kind";
  return {};
}

const MatmulDecision* DecisionFor(const std::vector<MatmulDecision>* decisions, int id) {
  if (decisions == nullptr) {
    return nullptr;
  }
  for (const auto& d : *decisions) {
    if (d.node_id == id) {
      return &d;
    }
  }
  return nullptr;
}

bool ElementwiseInPlaceOk(OpKind kind) {
  // Relu/Add/Mask/Scale read each element before writing it, so the output
  // may alias a dying input; LayerNorm reads a row's statistics before
  // rewriting the row, which is equally safe under exact (same-offset)
  // aliasing. Matmuls read operands while writing C (never safe); transpose
  // permutes positions (never safe); softmax is kept out-of-place
  // conservatively (multi-pass rows).
  return kind == OpKind::kRelu || kind == OpKind::kAdd || kind == OpKind::kMask ||
         kind == OpKind::kScale || kind == OpKind::kLayerNorm;
}

}  // namespace

ExecutionPlan::ExecutionPlan(const Graph& graph, const std::vector<MatmulDecision>* decisions) {
  const int n = graph.size();
  PIT_CHECK_GT(n, 0) << "cannot plan an empty graph";
  bound_.assign(static_cast<size_t>(n), nullptr);
  shapes_.reserve(static_cast<size_t>(n));
  for (int id = 0; id < n; ++id) {
    shapes_.push_back(graph.node(id).shape);
  }

  // Storage roots: a kReshape aliases its input's storage, so lifetimes are
  // tracked per root block, not per node — a block stays live until the last
  // consumer of ANY node viewing it.
  std::vector<int> root(static_cast<size_t>(n));
  for (int id = 0; id < n; ++id) {
    const GraphNode& node = graph.node(id);
    root[static_cast<size_t>(id)] =
        node.kind == OpKind::kReshape ? root[static_cast<size_t>(node.inputs[0])] : id;
  }

  // Liveness: last step consuming each root block. The final node's block is
  // never recycled simply because no allocation happens after the last step,
  // so the result view stays valid until the next Run rewrites the arena.
  std::vector<int> last_use(static_cast<size_t>(n), -1);
  for (int id = 0; id < n; ++id) {
    for (int in : graph.node(id).inputs) {
      last_use[static_cast<size_t>(root[static_cast<size_t>(in)])] = id;
    }
  }
  const int final_id = n - 1;

  ArenaPlanner planner;
  std::vector<ValueRef> loc(static_cast<size_t>(n));
  for (int id = 0; id < n; ++id) {
    const GraphNode& node = graph.node(id);
    // Shape inference over the IR; AddX checked at construction, the plan
    // re-derives so a hand-mutated graph fails here rather than in a kernel.
    const Shape inferred = InferShape(graph, node);
    PIT_CHECK(inferred == node.shape)
        << "shape inference mismatch at node " << id << " (" << node.name << ")";

    if (node.kind == OpKind::kInput) {
      loc[static_cast<size_t>(id)] = {ValueLoc::kFeed, id, id, 0};
      feed_bindings_.push_back({id, node.name});
      continue;
    }
    if (node.kind == OpKind::kWeight) {
      loc[static_cast<size_t>(id)] = {ValueLoc::kWeight, id, id, 0};
      bound_[static_cast<size_t>(id)] = graph.weight(id).data();
      continue;
    }

    OpCall call;
    call.kind = node.kind;
    call.node_id = id;
    call.fattr = node.fattr;
    call.iattr0 = node.iattr0;
    call.iattr1 = node.iattr1;
    call.num_in = static_cast<int>(node.inputs.size());
    PIT_CHECK_LE(call.num_in, 3);
    for (int i = 0; i < call.num_in; ++i) {
      call.in[i] = loc[static_cast<size_t>(node.inputs[static_cast<size_t>(i)])];
    }

    if (node.kind == OpKind::kReshape) {
      // Pure alias: same storage, new shape. The step itself dispatches no
      // kernel; it exists so observers (Graph::Execute) see the value.
      call.out = call.in[0];
      call.out.shape_id = id;
      loc[static_cast<size_t>(id)] = call.out;
      steps_.push_back(std::move(call));
      continue;
    }

    if (node.kind == OpKind::kMatmul || node.kind == OpKind::kMatmulBias) {
      const MatmulDecision* d = DecisionFor(decisions, id);
      call.use_pit = d != nullptr && d->use_pit;
      if (call.use_pit) {
        ++stats_.num_pit_steps;
      }
    }

    const int64_t elems = NumElements(node.shape);
    // In-place reuse: an elementwise op whose input's lifetime ends here (and
    // whose value is arena-resident, same element count) writes into that
    // input's block instead of claiming a new one. Safe for the final node
    // too — aliasing transfers the block to the result, it never recycles it.
    int alias_root = -1;
    if (ElementwiseInPlaceOk(node.kind)) {
      for (int in : node.inputs) {
        const int r_in = root[static_cast<size_t>(in)];
        const ValueRef& r = loc[static_cast<size_t>(in)];
        if (r.loc == ValueLoc::kArena && last_use[static_cast<size_t>(r_in)] == id &&
            NumElements(shapes_[static_cast<size_t>(in)]) == elems) {
          alias_root = r_in;
          call.out = {ValueLoc::kArena, id, id, r.offset};
          break;
        }
      }
    }
    if (alias_root >= 0) {
      call.inplace = true;
      ++stats_.num_inplace;
    } else {
      call.out = {ValueLoc::kArena, id, id, planner.Allocate(elems)};
    }
    loc[static_cast<size_t>(id)] = call.out;

    // Release dying input blocks (except the one the output inherited).
    // Dedup by root so two views of one block (e.g. x and reshape(x), or
    // Add(x, x)) free it once.
    for (size_t i = 0; i < node.inputs.size(); ++i) {
      const int in = node.inputs[i];
      const int r_in = root[static_cast<size_t>(in)];
      bool seen = false;
      for (size_t j = 0; j < i; ++j) {
        if (root[static_cast<size_t>(node.inputs[j])] == r_in) {
          seen = true;
          break;
        }
      }
      if (seen) {
        continue;  // duplicate block; free once
      }
      const ValueRef& r = loc[static_cast<size_t>(in)];
      if (r.loc == ValueLoc::kArena && last_use[static_cast<size_t>(r_in)] == id &&
          r_in != alias_root) {
        planner.Free(r.offset);
      }
    }

    stats_.sum_temporary_bytes += elems * static_cast<int64_t>(sizeof(float));
    steps_.push_back(std::move(call));
  }

  result_ = loc[static_cast<size_t>(final_id)];
  arena_.resize(static_cast<size_t>(planner.extent()), 0.0f);
  stats_.arena_bytes = planner.extent() * static_cast<int64_t>(sizeof(float));
  stats_.num_steps = static_cast<int>(steps_.size());
}

const float* ExecutionPlan::ResolveConst(const ValueRef& ref) const {
  switch (ref.loc) {
    case ValueLoc::kArena:
      return arena_.data() + ref.offset;
    case ValueLoc::kFeed:
    case ValueLoc::kWeight:
      return bound_[static_cast<size_t>(ref.node_id)];
  }
  return nullptr;
}

float* ExecutionPlan::ResolveArena(const ValueRef& ref) {
  PIT_CHECK(ref.loc == ValueLoc::kArena);
  return arena_.data() + ref.offset;
}

void ExecutionPlan::Dispatch(OpCall& call, PitCompiler* compiler) {
  if (call.kind == OpKind::kReshape) {
    return;  // alias-only: the value is its input's storage, reinterpreted
  }
  const Shape& out_shape = shapes_[static_cast<size_t>(call.out.shape_id)];
  TensorView out(ResolveArena(call.out), out_shape);
  auto in = [&](int i) {
    return ConstTensorView(ResolveConst(call.in[i]),
                           shapes_[static_cast<size_t>(call.in[i].shape_id)]);
  };
  switch (call.kind) {
    case OpKind::kInput:
    case OpKind::kWeight:
    case OpKind::kReshape:
      PIT_CHECK(false) << "inputs/weights/reshapes are bindings, not kernels";
      break;
    case OpKind::kMatmul:
      if (call.use_pit) {
        PIT_CHECK(compiler != nullptr) << "PIT decision requires a compiler";
        compiler->SparseMatmulInto(in(0), in(1), out, &call.pit);
      } else {
        MatMulInto(in(0), in(1), out);
      }
      break;
    case OpKind::kMatmulBias:
      if (call.use_pit) {
        PIT_CHECK(compiler != nullptr) << "PIT decision requires a compiler";
        compiler->SparseMatmulInto(in(0), in(1), out, &call.pit);
        // Bias applied after the sparse kernel, in the same element order as
        // the eager sparse Linear path.
        const ConstTensorView bias = in(2);
        for (int64_t i = 0; i < out.dim(0); ++i) {
          for (int64_t j = 0; j < out.dim(1); ++j) {
            out.At(i, j) += bias[j];
          }
        }
      } else {
        MatMulBiasInto(in(0), in(1), in(2), out);
      }
      break;
    case OpKind::kRelu:
      ReluInto(in(0), out);
      break;
    case OpKind::kAdd:
      AddInto(in(0), in(1), out);
      break;
    case OpKind::kMask:
      ApplyMaskInto(in(0), in(1), out);
      break;
    case OpKind::kSoftmax:
      if (call.num_in == 2) {
        const ConstTensorView mask = in(1);
        SoftmaxInto(in(0), &mask, out);
      } else {
        SoftmaxInto(in(0), nullptr, out);
      }
      break;
    case OpKind::kLayerNorm:
      LayerNormInto(in(0), in(1), in(2), out, call.fattr);
      break;
    case OpKind::kScale:
      ScaleInto(in(0), call.fattr, out);
      break;
    case OpKind::kTranspose:
      TransposeInto(in(0), call.iattr0, call.iattr1, out);
      break;
    case OpKind::kBatchMatmul:
      BatchMatMulInto(in(0), in(1), out);
      break;
  }
}

namespace {

const Tensor& DerefFeed(const Tensor& t) { return t; }
const Tensor& DerefFeed(const Tensor* t) {
  PIT_CHECK(t != nullptr) << "null feed tensor";
  return *t;
}

}  // namespace

template <typename FeedMap>
ConstTensorView ExecutionPlan::RunImpl(const FeedMap& feeds, PitCompiler* compiler,
                                       const StepObserver* observer) {
  for (const FeedBinding& binding : feed_bindings_) {
    auto it = feeds.find(binding.name);
    PIT_CHECK(it != feeds.end()) << "missing feed: " << binding.name;
    const Tensor& feed = DerefFeed(it->second);
    PIT_CHECK(feed.shape() == shapes_[static_cast<size_t>(binding.node_id)])
        << "feed shape mismatch for " << binding.name;
    bound_[static_cast<size_t>(binding.node_id)] = feed.data();
  }
  for (OpCall& step : steps_) {
    Dispatch(step, compiler);
    if (observer != nullptr && *observer) {
      (*observer)(step.node_id,
                  ConstTensorView(ResolveConst(step.out),
                                  shapes_[static_cast<size_t>(step.out.shape_id)]));
    }
  }
  return ConstTensorView(ResolveConst(result_), shapes_[static_cast<size_t>(result_.shape_id)]);
}

ConstTensorView ExecutionPlan::Run(const std::map<std::string, Tensor>& feeds,
                                   PitCompiler* compiler, const StepObserver* observer) {
  return RunImpl(feeds, compiler, observer);
}

ConstTensorView ExecutionPlan::Run(const std::map<std::string, const Tensor*>& feeds,
                                   PitCompiler* compiler, const StepObserver* observer) {
  return RunImpl(feeds, compiler, observer);
}

}  // namespace pit
