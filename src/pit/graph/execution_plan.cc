#include "pit/graph/execution_plan.h"

#include <algorithm>
#include <cstdint>
#include <map>

#include "pit/common/backend.h"
#include "pit/common/check.h"
#include "pit/common/fault_injection.h"
#include "pit/common/parallel_for.h"
#include "pit/graph/plan_verifier.h"
#include "pit/tensor/ops.h"

namespace pit {

namespace {

// Arena offsets are aligned to 16 floats (one 64-byte cache line) so reused
// slots never split a vector register's load across two lines — and, since
// the arena base is also 64-byte aligned, so concurrently executing wavefront
// steps never false-share a line across blocks.
constexpr int64_t kAlignElems = 16;

int64_t AlignUp(int64_t elems) {
  return (elems + kAlignElems - 1) / kAlignElems * kAlignElems;
}

// Best-fit free-list planner with coalescing. Works entirely at compile
// time: the plan's arena is sized to the high-water extent once, and
// execution never allocates.
//
// Wave-aware reuse: every free block remembers the dependency level
// (wavefront index) of the last step that touched it, and Allocate only
// hands a block to a step of a strictly later level. Without this, eager
// reuse puts (say) the k projection's output into the block the q chain
// just vacated, and the resulting WAR hazard serializes branches the
// dataflow says are independent — the arena planner must not destroy the
// inter-op parallelism the wavefront scheduler exists to exploit. The cost
// is a slightly larger arena (same-wave branches keep distinct blocks);
// reuse along a sequential chain — where levels strictly increase and the
// big savings live — is untouched.
class ArenaPlanner {
 public:
  int64_t Allocate(int64_t elems, int level) {
    const int64_t need = AlignUp(std::max<int64_t>(elems, 1));
    // Best-fit among blocks whose last toucher runs strictly before `level`.
    auto best = free_.end();
    for (auto it = free_.begin(); it != free_.end(); ++it) {
      if (it->second.size >= need && it->second.release_level < level &&
          (best == free_.end() || it->second.size < best->second.size)) {
        best = it;
      }
    }
    int64_t offset;
    if (best != free_.end()) {
      offset = best->first;
      const int64_t leftover = best->second.size - need;
      const int release_level = best->second.release_level;
      free_.erase(best);
      if (leftover > 0) {
        free_.emplace(offset + need, FreeBlock{leftover, release_level});
      }
    } else {
      offset = extent_;
      extent_ += need;
    }
    live_.emplace(offset, need);
    return offset;
  }

  // `release_level`: max dependency level of any step that read or wrote the
  // block over its whole lifetime (aliases included).
  void Free(int64_t offset, int release_level) {
    auto it = live_.find(offset);
    PIT_CHECK(it != live_.end()) << "double free at arena offset " << offset;
    int64_t size = it->second;
    live_.erase(it);
    // Coalesce with the next and previous free blocks; a merged block keeps
    // the latest release level (conservative).
    auto next = free_.lower_bound(offset);
    if (next != free_.end() && offset + size == next->first) {
      size += next->second.size;
      release_level = std::max(release_level, next->second.release_level);
      next = free_.erase(next);
    }
    if (next != free_.begin()) {
      auto prev = std::prev(next);
      if (prev->first + prev->second.size == offset) {
        prev->second.size += size;
        prev->second.release_level = std::max(prev->second.release_level, release_level);
        return;
      }
    }
    free_.emplace(offset, FreeBlock{size, release_level});
  }

  int64_t extent() const { return extent_; }

 private:
  struct FreeBlock {
    int64_t size = 0;
    int release_level = 0;
  };
  std::map<int64_t, FreeBlock> free_;  // offset -> block
  std::map<int64_t, int64_t> live_;    // offset -> size
  int64_t extent_ = 0;
};

Shape InferShape(const Graph& g, const GraphNode& n) {
  switch (n.kind) {
    case OpKind::kInput:
    case OpKind::kWeight:
      return n.shape;
    case OpKind::kMatmul:
    case OpKind::kMatmulBias: {
      const Shape& a = g.node(n.inputs[0]).shape;
      const Shape& b = g.node(n.inputs[1]).shape;
      PIT_CHECK_EQ(a.size(), 2u);
      PIT_CHECK_EQ(b.size(), 2u);
      PIT_CHECK_EQ(a[1], b[0]);
      if (n.kind == OpKind::kMatmulBias) {
        const Shape& bias = g.node(n.inputs[2]).shape;
        PIT_CHECK_EQ(bias.size(), 1u);
        PIT_CHECK_EQ(bias[0], b[1]);
      }
      return {a[0], b[1]};
    }
    case OpKind::kRelu:
      return g.node(n.inputs[0]).shape;
    case OpKind::kSoftmax: {
      const Shape& x = g.node(n.inputs[0]).shape;
      if (n.inputs.size() == 2) {
        const Shape& mask = g.node(n.inputs[1]).shape;
        PIT_CHECK_EQ(mask.size(), 2u);
        PIT_CHECK_EQ(mask[0], x[x.size() - 2]);
        PIT_CHECK_EQ(mask[1], x[x.size() - 1]);
      }
      return x;
    }
    case OpKind::kAdd:
    case OpKind::kMask:
      PIT_CHECK(g.node(n.inputs[0]).shape == g.node(n.inputs[1]).shape);
      return g.node(n.inputs[0]).shape;
    case OpKind::kLayerNorm: {
      const Shape& x = g.node(n.inputs[0]).shape;
      PIT_CHECK_EQ(x.size(), 2u);
      PIT_CHECK(g.node(n.inputs[1]).shape == Shape{x[1]});
      PIT_CHECK(g.node(n.inputs[2]).shape == Shape{x[1]});
      return x;
    }
    case OpKind::kScale:
      return g.node(n.inputs[0]).shape;
    case OpKind::kTranspose: {
      Shape s = g.node(n.inputs[0]).shape;
      const int rank = static_cast<int>(s.size());
      PIT_CHECK(n.iattr0 >= 0 && n.iattr0 < rank && n.iattr1 >= 0 && n.iattr1 < rank)
          << "transpose axes (" << n.iattr0 << ", " << n.iattr1 << ") out of rank " << rank;
      std::swap(s[static_cast<size_t>(n.iattr0)], s[static_cast<size_t>(n.iattr1)]);
      return s;
    }
    case OpKind::kReshape:
      PIT_CHECK_EQ(NumElements(n.shape), NumElements(g.node(n.inputs[0]).shape));
      return n.shape;
    case OpKind::kBatchMatmul: {
      const Shape& a = g.node(n.inputs[0]).shape;
      const Shape& b = g.node(n.inputs[1]).shape;
      PIT_CHECK_EQ(a.size(), 3u);
      PIT_CHECK_EQ(b.size(), 3u);
      PIT_CHECK_EQ(a[0], b[0]);
      PIT_CHECK_EQ(a[2], b[1]);
      return {a[0], a[1], b[2]};
    }
  }
  PIT_CHECK(false) << "unreachable op kind";
  return {};
}

const MatmulDecision* DecisionFor(const std::vector<MatmulDecision>* decisions, int id) {
  if (decisions == nullptr) {
    return nullptr;
  }
  for (const auto& d : *decisions) {
    if (d.node_id == id) {
      return &d;
    }
  }
  return nullptr;
}

bool ElementwiseInPlaceOk(OpKind kind) {
  // Relu/Add/Mask/Scale read each element before writing it, so the output
  // may alias a dying input; LayerNorm reads a row's statistics before
  // rewriting the row, which is equally safe under exact (same-offset)
  // aliasing. Matmuls read operands while writing C (never safe); transpose
  // permutes positions (never safe); softmax is kept out-of-place
  // conservatively (multi-pass rows).
  return kind == OpKind::kRelu || kind == OpKind::kAdd || kind == OpKind::kMask ||
         kind == OpKind::kScale || kind == OpKind::kLayerNorm;
}

// Half-open element interval in the arena.
struct Interval {
  int64_t lo = 0;
  int64_t hi = 0;  // lo == hi: empty
  bool Overlaps(const Interval& o) const { return lo < o.hi && o.lo < hi; }
};

// Estimated arithmetic work of one dispatched step, in scalar flops — the
// profitability currency of the wavefront gate. Matmuls count multiply-adds;
// row-wise ops count a few passes per element; pure data movement counts one.
// The absolute scale only matters relative to kMinParallelStepWork below.
int64_t StepWorkEstimate(const OpCall& call, const std::vector<Shape>& shapes) {
  const Shape& out = shapes[static_cast<size_t>(call.out.shape_id)];
  const int64_t out_elems = NumElements(out);
  switch (call.kind) {
    case OpKind::kMatmul:
    case OpKind::kMatmulBias: {
      const Shape& a = shapes[static_cast<size_t>(call.in[0].shape_id)];
      return 2 * out_elems * a[1];  // 2*m*n*k
    }
    case OpKind::kBatchMatmul: {
      const Shape& a = shapes[static_cast<size_t>(call.in[0].shape_id)];
      return 2 * out_elems * a[2];  // 2*b*m*n*k
    }
    case OpKind::kSoftmax:
      return 6 * out_elems;  // max + exp + sum + normalize passes
    case OpKind::kLayerNorm:
      return 8 * out_elems;  // mean + variance + normalize + affine
    default:
      return out_elems;  // elementwise / transpose: ~one op per element
  }
}

// Threshold of the compile-time wavefront profitability gate: mean estimated
// step work across waves of width >= 2 must clear this for wavefront replay
// to engage. Calibrated against BENCH_pr4: encoder_layer_128x256's widest
// wave holds ~17 MFLOP projection GEMMs and wavefront@8 measured 0.92x vs
// seq@1 — at that size, splitting the pool across steps loses to letting
// each kernel parallelize intra-op, so the gate needs small-step plans to
// fall back to sequential replay. Plans whose parallel waves carry hundreds
// of MFLOPs per step (the launch/barrier overhead amortized away) stay
// wavefront.
constexpr double kMinParallelStepWork = 64.0 * 1024 * 1024;

}  // namespace

// ---- ExecutionContext -------------------------------------------------------

ExecutionContext::ExecutionContext(const ExecutionPlan& plan) : plan_(&plan) {
  // Arena storage with headroom so the working base can be rounded up to a
  // 64-byte boundary (block offsets are already 64-byte multiples).
  arena_storage_.assign(static_cast<size_t>(plan.arena_elems_ + kAlignElems), 0.0f);
  const uintptr_t raw = reinterpret_cast<uintptr_t>(arena_storage_.data());
  arena_ = reinterpret_cast<float*>((raw + 63) & ~static_cast<uintptr_t>(63));
  arena_bytes_ = plan.stats_.arena_bytes;
  bound_ = plan.compile_bound_;
  // One kernel slot per step; only PIT steps ever read or warm theirs.
  pit_.assign(plan.steps_.size(), PitKernelHandle{});
}

ExecutionPlan::ExecutionPlan(const Graph& graph, const std::vector<MatmulDecision>* decisions) {
  const int n = graph.size();
  PIT_CHECK_GT(n, 0) << "cannot plan an empty graph";
  compile_bound_.assign(static_cast<size_t>(n), nullptr);
  shapes_.reserve(static_cast<size_t>(n));
  for (int id = 0; id < n; ++id) {
    shapes_.push_back(graph.node(id).shape);
  }

  // Storage roots: a kReshape aliases its input's storage, so lifetimes are
  // tracked per root block, not per node — a block stays live until the last
  // consumer of ANY node viewing it.
  std::vector<int> root(static_cast<size_t>(n));
  for (int id = 0; id < n; ++id) {
    const GraphNode& node = graph.node(id);
    root[static_cast<size_t>(id)] =
        node.kind == OpKind::kReshape ? root[static_cast<size_t>(node.inputs[0])] : id;
  }

  // Liveness: last step consuming each root block. The final node's block is
  // never recycled simply because no allocation happens after the last step,
  // so the result view stays valid until the next Run rewrites the arena.
  std::vector<int> last_use(static_cast<size_t>(n), -1);
  // Consumer counts (duplicates counted: Add(x, x) consumes x twice), for the
  // sole-consumer test behind matmul+relu fusion.
  std::vector<int> consumers(static_cast<size_t>(n), 0);
  for (int id = 0; id < n; ++id) {
    for (int in : graph.node(id).inputs) {
      last_use[static_cast<size_t>(root[static_cast<size_t>(in)])] = id;
      ++consumers[static_cast<size_t>(in)];
    }
  }
  const int final_id = n - 1;

  // Plan-compile fusion: a dense matmul(+bias) whose only consumer is a ReLU
  // collapses into one fused-epilogue GEMM step at the ReLU's position. PIT
  // matmuls are excluded — the sparse path keeps its separate ReLU, so the
  // compiler's detect/select flow is untouched.
  std::vector<int> fused_matmul_of(static_cast<size_t>(n), -1);  // relu id -> matmul id
  std::vector<char> deferred(static_cast<size_t>(n), 0);         // matmul ids elided
  for (int id = 0; id < n; ++id) {
    const GraphNode& node = graph.node(id);
    if (node.kind != OpKind::kRelu) {
      continue;
    }
    const int src = node.inputs[0];
    const GraphNode& mm = graph.node(src);
    if ((mm.kind == OpKind::kMatmul || mm.kind == OpKind::kMatmulBias) &&
        consumers[static_cast<size_t>(src)] == 1) {
      const MatmulDecision* d = DecisionFor(decisions, src);
      if (d == nullptr || !d->use_pit) {
        fused_matmul_of[static_cast<size_t>(id)] = src;
        deferred[static_cast<size_t>(src)] = 1;
        // The fused step reads the matmul's operands at the ReLU's position,
        // not the matmul's: extend their lifetimes to here, or an
        // intermediate consumer that was their nominal last use would alias
        // (or free-and-reuse) a block the fused GEMM still has to read.
        for (int in : mm.inputs) {
          int& lu = last_use[static_cast<size_t>(root[static_cast<size_t>(in)])];
          lu = std::max(lu, id);
        }
      }
    }
  }

  // Pure data-dependency level of every node (fusion-aware): the wavefront
  // each step lands in if only true producer->consumer edges existed. The
  // arena planner consumes these so block reuse never adds a WAR/WAW edge
  // that would deepen the schedule below the dataflow's parallelism; the
  // interval analysis in BuildWavefronts stays the correctness ground truth.
  std::vector<int> node_level(static_cast<size_t>(n), -1);  // -1: feed/weight/elided
  for (int id = 0; id < n; ++id) {
    const GraphNode& node = graph.node(id);
    if (node.kind == OpKind::kInput || node.kind == OpKind::kWeight ||
        deferred[static_cast<size_t>(id)]) {
      continue;
    }
    if (node.kind == OpKind::kReshape) {
      node_level[static_cast<size_t>(id)] = node_level[static_cast<size_t>(node.inputs[0])];
      continue;
    }
    const std::vector<int>& level_inputs =
        fused_matmul_of[static_cast<size_t>(id)] >= 0
            ? graph.node(fused_matmul_of[static_cast<size_t>(id)]).inputs
            : node.inputs;
    int lvl = 0;
    for (int in : level_inputs) {
      lvl = std::max(lvl, node_level[static_cast<size_t>(in)] + 1);
    }
    node_level[static_cast<size_t>(id)] = lvl;
  }

  ArenaPlanner planner;
  // Max data level of any step that touched each live arena offset —
  // accumulated as steps are emitted, consumed when the block is freed (so
  // reuse is only granted to strictly later waves).
  std::map<int64_t, int> offset_release_level;
  const auto touch_offset = [&offset_release_level](int64_t offset, int level) {
    auto [it, inserted] = offset_release_level.emplace(offset, level);
    if (!inserted) {
      it->second = std::max(it->second, level);
    }
  };
  std::vector<ValueRef> loc(static_cast<size_t>(n));
  // Releases the blocks of `inputs` whose lifetime ends at `consumer_id`
  // (deduped by storage root so two views of one block — x and reshape(x),
  // or Add(x, x) — free it once), passing the planner each block's
  // accumulated release level. `alias_root` (or -1) is the block the
  // consumer's output inherited in place; it is never freed.
  const auto release_dying_inputs = [&](const std::vector<int>& inputs, int consumer_id,
                                        int alias_root) {
    for (size_t i = 0; i < inputs.size(); ++i) {
      const int in = inputs[i];
      const int r_in = root[static_cast<size_t>(in)];
      bool seen = false;
      for (size_t j = 0; j < i; ++j) {
        if (root[static_cast<size_t>(inputs[j])] == r_in) {
          seen = true;
          break;
        }
      }
      if (seen) {
        continue;  // duplicate block; free once
      }
      const ValueRef& r = loc[static_cast<size_t>(in)];
      if (r.loc == ValueLoc::kArena && last_use[static_cast<size_t>(r_in)] == consumer_id &&
          r_in != alias_root) {
        const auto rl = offset_release_level.find(r.offset);
        planner.Free(r.offset, rl != offset_release_level.end() ? rl->second : 0);
        if (rl != offset_release_level.end()) {
          offset_release_level.erase(rl);
        }
      }
    }
  };
  for (int id = 0; id < n; ++id) {
    const GraphNode& node = graph.node(id);
    // Shape inference over the IR; AddX checked at construction, the plan
    // re-derives so a hand-mutated graph fails here rather than in a kernel.
    const Shape inferred = InferShape(graph, node);
    PIT_CHECK(inferred == node.shape)
        << "shape inference mismatch at node " << id << " (" << node.name << ")";

    if (node.kind == OpKind::kInput) {
      loc[static_cast<size_t>(id)] = {ValueLoc::kFeed, id, id, 0};
      feed_bindings_.push_back({id, node.name});
      continue;
    }
    if (node.kind == OpKind::kWeight) {
      loc[static_cast<size_t>(id)] = {ValueLoc::kWeight, id, id, 0};
      compile_bound_[static_cast<size_t>(id)] = graph.weight(id).data();
      continue;
    }
    if (deferred[static_cast<size_t>(id)]) {
      // Emission (output block, input frees) happens at the fused ReLU; the
      // matmul's operands stay live in the planner until then.
      continue;
    }

    if (node.kind == OpKind::kRelu && fused_matmul_of[static_cast<size_t>(id)] >= 0) {
      const int mm_id = fused_matmul_of[static_cast<size_t>(id)];
      const GraphNode& mm = graph.node(mm_id);
      OpCall call;
      call.kind = mm.kind;
      call.fuse_relu = true;
      call.node_id = id;  // the surviving (ReLU) value
      call.num_in = static_cast<int>(mm.inputs.size());
      for (int i = 0; i < call.num_in; ++i) {
        call.in[i] = loc[static_cast<size_t>(mm.inputs[static_cast<size_t>(i)])];
      }
      const int64_t elems = NumElements(node.shape);
      const int level = node_level[static_cast<size_t>(id)];
      // A GEMM reads its operands while writing C: never in-place.
      call.out = {ValueLoc::kArena, id, id, planner.Allocate(elems, level)};
      loc[static_cast<size_t>(id)] = call.out;
      touch_offset(call.out.offset, level);
      for (int i = 0; i < call.num_in; ++i) {
        if (call.in[i].loc == ValueLoc::kArena) {
          touch_offset(call.in[i].offset, level);
        }
      }
      // Release the matmul's dying inputs. Their last_use was extended to
      // this ReLU when the pair was fused, so blocks whose final read is the
      // fused GEMM die here — and nothing earlier could alias or recycle
      // them.
      release_dying_inputs(mm.inputs, id, /*alias_root=*/-1);
      // Eager execution materializes both the matmul and the ReLU.
      stats_.sum_temporary_bytes += 2 * elems * static_cast<int64_t>(sizeof(float));
      ++stats_.num_fused;
      steps_.push_back(std::move(call));
      continue;
    }

    OpCall call;
    call.kind = node.kind;
    call.node_id = id;
    call.fattr = node.fattr;
    call.iattr0 = node.iattr0;
    call.iattr1 = node.iattr1;
    call.num_in = static_cast<int>(node.inputs.size());
    PIT_CHECK_LE(call.num_in, 3);
    for (int i = 0; i < call.num_in; ++i) {
      call.in[i] = loc[static_cast<size_t>(node.inputs[static_cast<size_t>(i)])];
    }

    if (node.kind == OpKind::kReshape) {
      // Pure alias: same storage, new shape. The step itself dispatches no
      // kernel; it exists so observers (Graph::Execute) see the value.
      call.out = call.in[0];
      call.out.shape_id = id;
      loc[static_cast<size_t>(id)] = call.out;
      steps_.push_back(std::move(call));
      continue;
    }

    if (node.kind == OpKind::kMatmul || node.kind == OpKind::kMatmulBias) {
      const MatmulDecision* d = DecisionFor(decisions, id);
      call.use_pit = d != nullptr && d->use_pit;
      if (call.use_pit) {
        ++stats_.num_pit_steps;
      }
    }

    const int64_t elems = NumElements(node.shape);
    // In-place reuse: an elementwise op whose input's lifetime ends here (and
    // whose value is arena-resident, same element count) writes into that
    // input's block instead of claiming a new one. Safe for the final node
    // too — aliasing transfers the block to the result, it never recycles it.
    int alias_root = -1;
    if (ElementwiseInPlaceOk(node.kind)) {
      for (int in : node.inputs) {
        const int r_in = root[static_cast<size_t>(in)];
        const ValueRef& r = loc[static_cast<size_t>(in)];
        if (r.loc == ValueLoc::kArena && last_use[static_cast<size_t>(r_in)] == id &&
            NumElements(shapes_[static_cast<size_t>(in)]) == elems) {
          alias_root = r_in;
          call.out = {ValueLoc::kArena, id, id, r.offset};
          break;
        }
      }
    }
    const int level = node_level[static_cast<size_t>(id)];
    if (alias_root >= 0) {
      call.inplace = true;
      ++stats_.num_inplace;
    } else {
      call.out = {ValueLoc::kArena, id, id, planner.Allocate(elems, level)};
    }
    loc[static_cast<size_t>(id)] = call.out;
    touch_offset(call.out.offset, level);
    for (int i = 0; i < call.num_in; ++i) {
      if (call.in[i].loc == ValueLoc::kArena) {
        touch_offset(call.in[i].offset, level);
      }
    }

    // Release dying input blocks (except the one the output inherited).
    release_dying_inputs(node.inputs, id, alias_root);

    stats_.sum_temporary_bytes += elems * static_cast<int64_t>(sizeof(float));
    steps_.push_back(std::move(call));
  }

  result_ = loc[static_cast<size_t>(final_id)];
  arena_elems_ = planner.extent();
  stats_.arena_bytes = planner.extent() * static_cast<int64_t>(sizeof(float));
  stats_.num_steps = static_cast<int>(steps_.size());

  BuildWavefronts();
  // From here on the plan is immutable; all replay state lives in execution
  // contexts (the default one materializes lazily on first classic Run).

  // Independent static verification of the freshly compiled plan (debug/test
  // builds by default; always under PIT_VERIFY_PLAN=on): the verifier
  // re-derives every invariant replay rides on — hazard-complete wavefronts,
  // in-bounds aligned blocks, live-interval integrity, binding coverage —
  // from the compile products alone, and aborts with a structured report on
  // any violation. A planner bug dies here, at compile, not as a
  // probabilistic race under concurrent replay.
  if (PlanVerifyEngaged()) {
    VerifyPlanOrDie(*this, "ExecutionPlan compile");
  }
}

ExecutionContext& ExecutionPlan::DefaultCtx() const {
  std::call_once(default_ctx_once_,
                 [this] { default_ctx_ = std::make_unique<ExecutionContext>(*this); });
  return *default_ctx_;
}

const float* ExecutionPlan::arena_base() const { return DefaultCtx().arena_base(); }

// Derives the step-level dependency DAG from the steps' arena read/write
// intervals and partitions it into topological wavefronts. Two steps conflict
// when one's write interval overlaps the other's read or write interval
// (RAW, WAR, and WAW hazards — WAR/WAW arise from the planner's block reuse);
// feeds and weights are read-only for the whole replay and never conflict.
// kReshape steps dispatch nothing and are left out of the wave lists
// entirely — including them would dilute the real steps' intra-op width
// budget and inflate the width stat with no-op tasks. PIT steps are
// additionally chained in step order: the PitCompiler mutates shared
// cache/counter state, so two PIT steps must never run concurrently (and
// their detect/select order — which the resample schedule depends on —
// stays the sequential one).
void ExecutionPlan::BuildWavefronts() {
  const size_t num_steps = steps_.size();
  struct StepFootprint {
    Interval write;
    Interval reads[3];
    int num_reads = 0;
  };
  std::vector<StepFootprint> fp(num_steps);
  for (size_t s = 0; s < num_steps; ++s) {
    const OpCall& call = steps_[s];
    if (call.kind == OpKind::kReshape) {
      continue;  // no kernel: nothing read, nothing written at dispatch
    }
    StepFootprint& f = fp[s];
    const int64_t out_elems = NumElements(shapes_[static_cast<size_t>(call.out.shape_id)]);
    f.write = {call.out.offset, call.out.offset + out_elems};
    for (int i = 0; i < call.num_in; ++i) {
      const ValueRef& r = call.in[i];
      if (r.loc != ValueLoc::kArena) {
        continue;
      }
      const int64_t elems = NumElements(shapes_[static_cast<size_t>(r.shape_id)]);
      f.reads[f.num_reads++] = {r.offset, r.offset + elems};
    }
  }

  std::vector<int> level(num_steps, 0);
  int prev_pit = -1;
  for (size_t s = 0; s < num_steps; ++s) {
    const StepFootprint& fs = fp[s];
    for (size_t t = 0; t < s; ++t) {
      const StepFootprint& ft = fp[t];
      bool conflict = ft.write.Overlaps(fs.write);
      for (int i = 0; !conflict && i < fs.num_reads; ++i) {
        conflict = ft.write.Overlaps(fs.reads[i]);
      }
      for (int i = 0; !conflict && i < ft.num_reads; ++i) {
        conflict = fs.write.Overlaps(ft.reads[i]);
      }
      if (conflict) {
        level[s] = std::max(level[s], level[t] + 1);
      }
    }
    if (steps_[s].use_pit) {
      if (prev_pit >= 0) {
        level[s] = std::max(level[s], level[prev_pit] + 1);
      }
      prev_pit = static_cast<int>(s);
    }
  }

  int num_levels = 0;
  size_t num_dispatched = 0;  // reshape no-ops stay out of the wave lists
  for (size_t s = 0; s < num_steps; ++s) {
    if (steps_[s].kind == OpKind::kReshape) {
      continue;
    }
    num_levels = std::max(num_levels, level[s] + 1);
    ++num_dispatched;
  }
  // Counting sort by level, stable in step order within a wave.
  wave_offsets_.assign(static_cast<size_t>(num_levels) + 1, 0);
  for (size_t s = 0; s < num_steps; ++s) {
    if (steps_[s].kind != OpKind::kReshape) {
      ++wave_offsets_[static_cast<size_t>(level[s]) + 1];
    }
  }
  for (size_t w = 1; w < wave_offsets_.size(); ++w) {
    wave_offsets_[w] += wave_offsets_[w - 1];
  }
  wave_steps_.resize(num_dispatched);
  std::vector<int> cursor(wave_offsets_.begin(), wave_offsets_.end() - 1);
  for (size_t s = 0; s < num_steps; ++s) {
    if (steps_[s].kind != OpKind::kReshape) {
      wave_steps_[static_cast<size_t>(cursor[static_cast<size_t>(level[s])]++)] =
          static_cast<int>(s);
    }
  }

  stats_.num_wavefronts = num_levels;
  for (int w = 0; w < num_levels; ++w) {
    stats_.max_wavefront_width =
        std::max(stats_.max_wavefront_width,
                 wave_offsets_[static_cast<size_t>(w) + 1] - wave_offsets_[static_cast<size_t>(w)]);
  }

  // Compile-time profitability: mean estimated work per step over the waves
  // that would actually dispatch concurrently (width >= 2). Plans below the
  // threshold replay sequentially — their steps are too small for inter-op
  // overlap to beat intra-op kernel parallelism plus the wave barriers.
  int64_t parallel_work = 0;
  int64_t parallel_steps = 0;
  for (int w = 0; w < num_levels; ++w) {
    const int begin = wave_offsets_[static_cast<size_t>(w)];
    const int end = wave_offsets_[static_cast<size_t>(w) + 1];
    if (end - begin < 2) {
      continue;
    }
    for (int i = begin; i < end; ++i) {
      parallel_work += StepWorkEstimate(steps_[static_cast<size_t>(wave_steps_[static_cast<size_t>(i)])],
                                        shapes_);
      ++parallel_steps;
    }
  }
  stats_.parallel_step_work =
      parallel_steps > 0 ? static_cast<double>(parallel_work) / static_cast<double>(parallel_steps)
                         : 0.0;
  stats_.wavefront_profitable =
      stats_.max_wavefront_width > 1 && stats_.parallel_step_work >= kMinParallelStepWork;
}

const float* ExecutionPlan::ResolveConst(const ValueRef& ref, const ExecutionContext& ctx) const {
  switch (ref.loc) {
    case ValueLoc::kArena:
      return ctx.arena_ + ref.offset;
    case ValueLoc::kFeed:
    case ValueLoc::kWeight:
      return ctx.bound_[static_cast<size_t>(ref.node_id)];
  }
  return nullptr;
}

float* ExecutionPlan::ResolveArena(const ValueRef& ref, ExecutionContext& ctx) const {
  PIT_CHECK(ref.loc == ValueLoc::kArena);
  return ctx.arena_ + ref.offset;
}

void ExecutionPlan::Dispatch(int step_index, ExecutionContext& ctx, PitCompiler* compiler) const {
  const OpCall& call = steps_[static_cast<size_t>(step_index)];
  if (call.kind == OpKind::kReshape) {
    return;  // alias-only: the value is its input's storage, reinterpreted
  }
  const Shape& out_shape = shapes_[static_cast<size_t>(call.out.shape_id)];
  TensorView out(ResolveArena(call.out, ctx), out_shape);
  auto in = [&](int i) {
    return ConstTensorView(ResolveConst(call.in[i], ctx),
                           shapes_[static_cast<size_t>(call.in[i].shape_id)]);
  };
  // The context's per-site kernel slot: concurrent streams each warm their
  // own, so the JIT cache hook never races across streams.
  PitKernelHandle* pit_slot = &ctx.pit_[static_cast<size_t>(step_index)];
  switch (call.kind) {
    case OpKind::kInput:
    case OpKind::kWeight:
    case OpKind::kReshape:
      PIT_CHECK(false) << "inputs/weights/reshapes are bindings, not kernels";
      break;
    case OpKind::kMatmul:
      if (call.use_pit) {
        PIT_CHECK(compiler != nullptr) << "PIT decision requires a compiler";
        compiler->SparseMatmulInto(in(0), in(1), out, pit_slot);
      } else if (call.fuse_relu) {
        MatMulReluInto(in(0), in(1), out);
      } else {
        MatMulInto(in(0), in(1), out);
      }
      break;
    case OpKind::kMatmulBias:
      if (call.use_pit) {
        PIT_CHECK(compiler != nullptr) << "PIT decision requires a compiler";
        compiler->SparseMatmulInto(in(0), in(1), out, pit_slot);
        // Bias applied after the sparse kernel, in the same element order as
        // the eager sparse Linear path.
        const ConstTensorView bias = in(2);
        for (int64_t i = 0; i < out.dim(0); ++i) {
          for (int64_t j = 0; j < out.dim(1); ++j) {
            out.At(i, j) += bias[j];
          }
        }
      } else if (call.fuse_relu) {
        MatMulBiasReluInto(in(0), in(1), in(2), out);
      } else {
        MatMulBiasInto(in(0), in(1), in(2), out);
      }
      break;
    case OpKind::kRelu:
      ReluInto(in(0), out);
      break;
    case OpKind::kAdd:
      AddInto(in(0), in(1), out);
      break;
    case OpKind::kMask:
      ApplyMaskInto(in(0), in(1), out);
      break;
    case OpKind::kSoftmax:
      if (call.num_in == 2) {
        const ConstTensorView mask = in(1);
        SoftmaxInto(in(0), &mask, out);
      } else {
        SoftmaxInto(in(0), nullptr, out);
      }
      break;
    case OpKind::kLayerNorm:
      LayerNormInto(in(0), in(1), in(2), out, call.fattr);
      break;
    case OpKind::kScale:
      ScaleInto(in(0), call.fattr, out);
      break;
    case OpKind::kTranspose:
      TransposeInto(in(0), call.iattr0, call.iattr1, out);
      break;
    case OpKind::kBatchMatmul:
      BatchMatMulInto(in(0), in(1), out);
      break;
  }
}

void ExecutionPlan::RunSequential(ExecutionContext& ctx, PitCompiler* compiler,
                                  const StepObserver* observer) const {
  const CancelToken* cancel = ctx.cancel_;
  for (int s = 0; s < static_cast<int>(steps_.size()); ++s) {
    // Injected kernel-dispatch faults abandon the replay here, on the
    // submitting thread; the serving engine consumes the pending fault and
    // owns the retry/fallback ladder. Near-free when injection is disarmed.
    if (FaultStepProbe()) {
      return;
    }
    // Cooperative cancellation at step granularity: kernels never stop
    // mid-flight, but a fired token (drain or lapsed batch deadline) stops
    // the replay before the next step. Checked after the fault probe so an
    // injected fault keeps its established precedence.
    if (cancel != nullptr && cancel->cancelled()) {
      ctx.replay_status_ = ReplayStatus::kCancelled;
      return;
    }
    HeartbeatTick();
    Dispatch(s, ctx, compiler);
    if (observer != nullptr && *observer) {
      const OpCall& step = steps_[static_cast<size_t>(s)];
      (*observer)(step.node_id,
                  ConstTensorView(ResolveConst(step.out, ctx),
                                  shapes_[static_cast<size_t>(step.out.shape_id)]));
    }
  }
}

// Wavefront replay: every wave's steps are mutually independent (disjoint
// arena footprints) so they dispatch as concurrent tasks, each granted
// ~threads/width nested chunks so intra-op kernel parallelism splits the
// pool across the wave instead of serializing behind one step. Bitwise
// identical to RunSequential: kernels are order-deterministic for any chunk
// count and concurrent steps touch disjoint 64-byte-aligned blocks.
void ExecutionPlan::RunWavefronts(ExecutionContext& ctx, PitCompiler* compiler) const {
  const int threads = NumThreads();
  const CancelToken* cancel = ctx.cancel_;
  for (size_t w = 0; w + 1 < wave_offsets_.size(); ++w) {
    const int begin = wave_offsets_[w];
    const int width = wave_offsets_[w + 1] - begin;
    // Probe every step of the wave on the submitting thread before any of
    // them dispatches: pool workers never raise injected faults, so a fired
    // probe cleanly abandons the whole remaining replay (no half-submitted
    // wave), and the engine's ladder decides what happens next.
    for (int i = 0; i < width; ++i) {
      if (FaultStepProbe()) {
        return;
      }
    }
    // Cancellation at wavefront granularity, checked on the submitting
    // thread so no wave is half-submitted. The early return happens before
    // ParallelTasks, so nested submitters never wait on a barrier that will
    // not fill — the pool's deadlock-freedom argument is untouched.
    if (cancel != nullptr && cancel->cancelled()) {
      ctx.replay_status_ = ReplayStatus::kCancelled;
      return;
    }
    HeartbeatTick();
    if (width == 1) {
      // A singleton wave runs inline with the full pool as its width budget.
      Dispatch(wave_steps_[static_cast<size_t>(begin)], ctx, compiler);
      continue;
    }
    const int budget = (threads + width - 1) / width;
    ParallelTasks(width, budget, [&](int64_t i) {
      // Wide waves re-poll inside each task: a task that observes the token
      // skips its dispatch but still reaches the barrier, so the wave
      // completes structurally (no deadlock) while the remaining work is
      // dropped. The post-wave check below then latches kCancelled.
      if (cancel != nullptr && cancel->cancelled_manual()) {
        return;
      }
      Dispatch(wave_steps_[static_cast<size_t>(begin + static_cast<int>(i))], ctx, compiler);
    });
    if (cancel != nullptr && cancel->cancelled()) {
      ctx.replay_status_ = ReplayStatus::kCancelled;
      return;
    }
  }
}

namespace {

const Tensor& DerefFeed(const Tensor& t) { return t; }
const Tensor& DerefFeed(const Tensor* t) {
  PIT_CHECK(t != nullptr) << "null feed tensor";
  return *t;
}

}  // namespace

template <typename FeedMap>
ConstTensorView ExecutionPlan::RunImpl(ExecutionContext& ctx, const FeedMap& feeds,
                                       PitCompiler* compiler,
                                       const StepObserver* observer) const {
  PIT_CHECK(ctx.plan_ == this) << "execution context belongs to a different plan";
  ctx.replay_status_ = ReplayStatus::kOk;
  if (FaultPending()) {
    // An injected dispatch fault already aborted this forward (multi-plan
    // forwards replay one plan per layer): skip the remaining replays fast.
    // The returned view is dead data; the engine discards the whole attempt
    // when it consumes the pending fault.
    return ConstTensorView(ResolveConst(result_, ctx),
                           shapes_[static_cast<size_t>(result_.shape_id)]);
  }
  if (ctx.cancel_ != nullptr && ctx.cancel_->cancelled()) {
    // Already-cancelled token (drain cut in, or the batch deadline lapsed
    // during an earlier layer of a multi-plan forward): skip the whole
    // replay. The returned view is dead data, flagged by replay_status().
    ctx.replay_status_ = ReplayStatus::kCancelled;
    return ConstTensorView(ResolveConst(result_, ctx),
                           shapes_[static_cast<size_t>(result_.shape_id)]);
  }
  for (const FeedBinding& binding : feed_bindings_) {
    auto it = feeds.find(binding.name);
    PIT_CHECK(it != feeds.end()) << "missing feed: " << binding.name;
    const Tensor& feed = DerefFeed(it->second);
    PIT_CHECK(feed.shape() == shapes_[static_cast<size_t>(binding.node_id)])
        << "feed shape mismatch for " << binding.name;
    ctx.bound_[static_cast<size_t>(binding.node_id)] = feed.data();
  }
  const bool observed = observer != nullptr && *observer;
  // Scheduler choice is orthogonal to the backend: reference-kernel steps run
  // concurrently just as safely (disjoint 64-byte-aligned blocks, serial
  // kernels), so PIT_BACKEND=reference PIT_PLAN_SCHED=wavefront genuinely
  // cross-checks the wavefront schedule against the oracle kernels. The
  // compile-time profitability gate keeps small-step plans sequential (each
  // kernel then owns the whole pool); tests force it off to exercise the
  // wavefront path on arbitrary plans.
  const bool wavefront_ok =
      stats_.max_wavefront_width > 1 &&
      (stats_.wavefront_profitable || !WavefrontGateEnabled());
  if (!observed && ActivePlanSched() == PlanSched::kWavefront && NumThreads() > 1 &&
      wavefront_ok && !ParallelRegionActive()) {
    RunWavefronts(ctx, compiler);
  } else {
    RunSequential(ctx, compiler, observed ? observer : nullptr);
  }
  return ConstTensorView(ResolveConst(result_, ctx),
                         shapes_[static_cast<size_t>(result_.shape_id)]);
}

ConstTensorView ExecutionPlan::Run(const std::map<std::string, Tensor>& feeds,
                                   PitCompiler* compiler, const StepObserver* observer) {
  return RunImpl(DefaultCtx(), feeds, compiler, observer);
}

ConstTensorView ExecutionPlan::Run(const std::map<std::string, const Tensor*>& feeds,
                                   PitCompiler* compiler, const StepObserver* observer) {
  return RunImpl(DefaultCtx(), feeds, compiler, observer);
}

ConstTensorView ExecutionPlan::RunWith(ExecutionContext& ctx,
                                       const std::map<std::string, Tensor>& feeds,
                                       PitCompiler* compiler,
                                       const StepObserver* observer) const {
  return RunImpl(ctx, feeds, compiler, observer);
}

ConstTensorView ExecutionPlan::RunWith(ExecutionContext& ctx,
                                       const std::map<std::string, const Tensor*>& feeds,
                                       PitCompiler* compiler,
                                       const StepObserver* observer) const {
  return RunImpl(ctx, feeds, compiler, observer);
}

}  // namespace pit
