// Static verifier for compiled ExecutionPlans: an independent analysis pass
// that re-derives, from first principles, every invariant plan replay rides
// on — and reports where a compiled plan breaks them.
//
// The wavefront scheduler and multi-stream replay (PRs 4-6) silently assume
// properties the planner is *supposed* to guarantee: concurrently dispatched
// steps touch disjoint arena byte ranges, every RAW/WAR/WAW hazard is ordered
// by the wave partition, arena blocks are in-bounds and 64-byte aligned, a
// block is never recycled while a later step still has to read it, reshape
// aliases resolve to storage some step actually produced, PIT steps replay in
// a total order, and fused matmul+relu steps leave no dangling references to
// the elided node. A planner bug in any of these ships straight into a data
// race or a silent miscompilation that TSan may or may not catch
// probabilistically. This pass proves them deterministically, per plan.
//
// Independence contract: the verifier deliberately does NOT reuse the
// planner's analyses. Dependencies are re-derived by an O(steps^2)
// brute-force oracle over each step's arena read/write element intervals
// (aliases are already root-resolved in compiled ValueRefs, so interval
// arithmetic is exact); liveness is re-derived from producer/consumer byte
// overlaps, not from the arena planner's free list. The only shared inputs
// are the compiled artifacts themselves (steps, shapes, waves, bindings) —
// the things being verified.
//
// The verifier runs in three ways:
//   * automatically on every plan compile when PIT_VERIFY_PLAN engages
//     (strict-parsed auto|on|off; "auto" engages in debug builds — see
//     backend.h), aborting loudly on any violation,
//   * on pooled-plan creation in the ServingEngine under the same knob,
//   * on demand through VerifyPlan() (tests, `pitctl verify`).
#ifndef PIT_GRAPH_PLAN_VERIFIER_H_
#define PIT_GRAPH_PLAN_VERIFIER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "pit/graph/execution_plan.h"

namespace pit {

// One invariant class per enumerator: the negative suite corrupts a plan per
// class and asserts the verifier reports exactly that class.
enum class PlanViolationKind {
  kMalformedStep,     // out-of-range ids, bad flag combinations, bad num_in
  kArenaOutOfBounds,  // block extends past the arena extent (or offset < 0)
  kMisalignedOffset,  // arena offset not on a 64-byte boundary
  kWavePartition,     // wave lists malformed: step missing, duplicated,
                      // reshape no-op included, or offsets inconsistent
  kConcurrentHazard,  // two steps of one wave with intersecting write/any
                      // intervals — a data race under wavefront dispatch
  kMissingHazardEdge,  // a dependency-oracle edge the wave ordering inverts
  kClobberedRead,      // a step's input bytes overwritten between producer
                       // and reader — the planner's claimed liveness is wrong
  kDanglingStorage,  // arena ref whose storage node no step produces (e.g. a
                     // reshape alias without a live storage root)
  kFeedBinding,      // feed ref without a binding, duplicate bindings, or an
                     // unbound weight ref
  kPitOrder,         // PIT steps not totally ordered by the wave partition
  kFusedStep,        // fused-step inconsistency: duplicate node producer or
                     // fuse_relu on a non-matmul / PIT step
  kStatsMismatch,    // PlanStats disagree with re-derived counts
};
const char* PlanViolationKindName(PlanViolationKind kind);

struct PlanViolation {
  PlanViolationKind kind = PlanViolationKind::kMalformedStep;
  int step_a = -1;  // offending step indices (-1: not step-specific)
  int step_b = -1;
  int wave_a = -1;  // wave ids of the offending steps (-1: none / reshape)
  int wave_b = -1;
  int64_t byte_lo = 0;  // offending arena byte range, half-open (0,0: none)
  int64_t byte_hi = 0;
  std::string message;
};

struct PlanVerifyReport {
  // Stored violations, capped at kMaxRecorded (the total keeps counting so
  // ok() stays exact on pathologically corrupted plans).
  std::vector<PlanViolation> violations;
  int64_t violations_total = 0;
  // Coverage counters: what the pass actually examined.
  int steps_checked = 0;
  int waves_checked = 0;
  int blocks_checked = 0;      // distinct produced arena blocks
  int64_t oracle_pairs = 0;    // step pairs the O(steps^2) oracle compared
  int64_t oracle_edges = 0;    // dependency edges the oracle derived
  static constexpr int64_t kMaxRecorded = 64;

  bool ok() const { return violations_total == 0; }
  bool Has(PlanViolationKind kind) const;
  // Multi-line human-readable report (summary line + one line per stored
  // violation), the payload of `pitctl verify` and of verification aborts.
  std::string ToString() const;
};

// Runs every check over the compiled plan. Pure: no plan state is touched,
// no context is created; safe on any thread.
PlanVerifyReport VerifyPlan(const ExecutionPlan& plan);

// VerifyPlan + loud PIT_CHECK abort on any violation, with the full report in
// the failure message. `what` names the plan for the abort message (e.g. the
// compile site). This is the hook ExecutionPlan's constructor and the
// ServingEngine's pooled-plan creation call when PlanVerifyEngaged().
void VerifyPlanOrDie(const ExecutionPlan& plan, const char* what);

// Test-only mutation seam: hands the negative suite mutable references into a
// compiled plan's (otherwise immutable) internals so each invariant class can
// be violated in isolation and the verifier proven to catch it. Never use
// outside tests — a mutated plan is exactly the corruption the verifier
// exists to reject.
struct PlanCorruptor {
  static std::vector<OpCall>& steps(ExecutionPlan& plan) { return plan.steps_; }
  static std::vector<Shape>& shapes(ExecutionPlan& plan) { return plan.shapes_; }
  static std::vector<int>& wave_steps(ExecutionPlan& plan) { return plan.wave_steps_; }
  static std::vector<int>& wave_offsets(ExecutionPlan& plan) { return plan.wave_offsets_; }
  static std::vector<ExecutionPlan::FeedBinding>& feed_bindings(ExecutionPlan& plan) {
    return plan.feed_bindings_;
  }
  static ValueRef& result(ExecutionPlan& plan) { return plan.result_; }
  static int64_t& arena_elems(ExecutionPlan& plan) { return plan.arena_elems_; }
  static PlanStats& stats(ExecutionPlan& plan) { return plan.stats_; }
};

}  // namespace pit

#endif  // PIT_GRAPH_PLAN_VERIFIER_H_
