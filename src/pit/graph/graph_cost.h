// Simulated-cost estimation over the operator graph.
//
// Prices a whole graph under the dense execution and under the PIT pass's
// decisions, using the same gpusim cost model as the figure benchmarks: the
// model-level analogue of Algorithm 1's per-operator estimate, and the number
// an auto-tuner would use to decide whether a rewrite pays off.
#ifndef PIT_GRAPH_GRAPH_COST_H_
#define PIT_GRAPH_GRAPH_COST_H_

#include <vector>

#include "pit/core/tile_database.h"
#include "pit/graph/graph.h"
#include "pit/gpusim/cost_model.h"

namespace pit {

struct GraphCostReport {
  CostBreakdown total;
  int matmuls_sparse = 0;  // matmul nodes executed through PIT
  int matmuls_dense = 0;
};

// Estimates the simulated latency of one execution of `graph`.
// decisions == nullptr prices the all-dense execution; otherwise matmuls
// flagged use_pit are priced as PIT sparse kernels over an analytic pattern
// derived from the operand's annotated sparsity source:
//   kExternal  -> whole-row granularity (padding/routing kill rows)
//   activation/masked/propagated -> element granularity
GraphCostReport EstimateGraphCost(const Graph& graph, const CostModel& model,
                                  const TileDatabase& db,
                                  const std::vector<MatmulDecision>* decisions);

}  // namespace pit

#endif  // PIT_GRAPH_GRAPH_COST_H_
