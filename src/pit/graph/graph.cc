#include "pit/graph/graph.h"

#include <algorithm>
#include <mutex>
#include <utility>

#include "pit/common/check.h"
#include "pit/graph/execution_plan.h"
#include "pit/tensor/ops.h"

namespace pit {

const char* OpKindName(OpKind kind) {
  switch (kind) {
    case OpKind::kInput:
      return "input";
    case OpKind::kWeight:
      return "weight";
    case OpKind::kMatmul:
      return "matmul";
    case OpKind::kMatmulBias:
      return "matmul_bias";
    case OpKind::kRelu:
      return "relu";
    case OpKind::kAdd:
      return "add";
    case OpKind::kMask:
      return "mask";
    case OpKind::kSoftmax:
      return "softmax";
    case OpKind::kLayerNorm:
      return "layernorm";
    case OpKind::kScale:
      return "scale";
    case OpKind::kTranspose:
      return "transpose";
    case OpKind::kReshape:
      return "reshape";
    case OpKind::kBatchMatmul:
      return "batch_matmul";
  }
  return "?";
}

// Cached plans: one per distinct decision set (nullptr = dense). Decision
// vectors are compared by content (sans the human-readable reason) so a
// recomputed-but-identical PitPass result reuses the compiled plan. Entries
// are shared_ptr-held so an eviction (or another thread's compile) never
// destroys a plan mid-run: executors keep their reference until Run returns,
// and each entry carries its own run mutex (one arena per plan), so distinct
// decision sets execute concurrently.
struct Graph::PlanCacheEntry {
  bool dense = true;
  std::vector<MatmulDecision> decisions;
  std::unique_ptr<ExecutionPlan> plan;
  std::mutex run_mu;
};

struct Graph::PlanCache {
  std::mutex mu;
  std::vector<std::shared_ptr<PlanCacheEntry>> entries;
};

namespace {

bool SameDecisions(const std::vector<MatmulDecision>& a, const std::vector<MatmulDecision>& b) {
  if (a.size() != b.size()) {
    return false;
  }
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].node_id != b[i].node_id || a[i].use_pit != b[i].use_pit ||
        a[i].sparse_operand != b[i].sparse_operand || a[i].axis != b[i].axis ||
        a[i].piggyback_layout_flip != b[i].piggyback_layout_flip) {
      return false;
    }
  }
  return true;
}

}  // namespace

Graph::Graph() : plans_(std::make_unique<PlanCache>()) {}
Graph::~Graph() = default;

Graph::Graph(Graph&& other) noexcept
    : nodes_(std::move(other.nodes_)),
      weights_(std::move(other.weights_)),
      weight_refs_(std::move(other.weight_refs_)),
      plans_(std::make_unique<PlanCache>()) {
  other.plans_ = std::make_unique<PlanCache>();
}

Graph& Graph::operator=(Graph&& other) noexcept {
  if (this != &other) {
    nodes_ = std::move(other.nodes_);
    weights_ = std::move(other.weights_);
    weight_refs_ = std::move(other.weight_refs_);
    plans_ = std::make_unique<PlanCache>();  // old plans point into the old nodes
    other.plans_ = std::make_unique<PlanCache>();
  }
  return *this;
}

const char* SparsitySourceName(SparsitySource source) {
  switch (source) {
    case SparsitySource::kNone:
      return "none";
    case SparsitySource::kExternal:
      return "external";
    case SparsitySource::kActivation:
      return "activation";
    case SparsitySource::kMasked:
      return "masked";
    case SparsitySource::kPropagated:
      return "propagated";
  }
  return "?";
}

int Graph::Add(GraphNode node) {
  {
    // Mutating the graph invalidates compiled plans (their liveness, arena
    // offsets, and result node all assume the old node list).
    std::lock_guard<std::mutex> lock(plans_->mu);
    plans_->entries.clear();
  }
  node.id = static_cast<int>(nodes_.size());
  nodes_.push_back(std::move(node));
  return nodes_.back().id;
}

int Graph::AddInput(std::string name, Shape shape, double expected_sparsity) {
  GraphNode n;
  n.kind = OpKind::kInput;
  n.name = std::move(name);
  n.shape = std::move(shape);
  if (expected_sparsity > 0.0) {
    n.sparsity = SparsitySource::kExternal;
    n.expected_sparsity = expected_sparsity;
  }
  return Add(std::move(n));
}

int Graph::AddWeight(std::string name, Tensor value) {
  GraphNode n;
  n.kind = OpKind::kWeight;
  n.name = std::move(name);
  n.shape = value.shape();
  const int id = Add(std::move(n));
  weights_.emplace(id, std::move(value));
  return id;
}

int Graph::AddWeightRef(std::string name, const Tensor* value) {
  PIT_CHECK(value != nullptr);
  GraphNode n;
  n.kind = OpKind::kWeight;
  n.name = std::move(name);
  n.shape = value->shape();
  const int id = Add(std::move(n));
  weight_refs_.emplace(id, value);
  return id;
}

const Tensor& Graph::weight(int id) const {
  auto it = weights_.find(id);
  if (it != weights_.end()) {
    return it->second;
  }
  auto ref = weight_refs_.find(id);
  PIT_CHECK(ref != weight_refs_.end()) << "node " << id << " is not a weight";
  return *ref->second;
}

int Graph::AddMatmul(std::string name, int a, int b) {
  const GraphNode& na = node(a);
  const GraphNode& nb = node(b);
  PIT_CHECK_EQ(na.shape.size(), 2u);
  PIT_CHECK_EQ(nb.shape.size(), 2u);
  PIT_CHECK_EQ(na.shape[1], nb.shape[0]);
  GraphNode n;
  n.kind = OpKind::kMatmul;
  n.name = std::move(name);
  n.inputs = {a, b};
  n.shape = {na.shape[0], nb.shape[1]};
  return Add(std::move(n));
}

int Graph::AddMatmulBias(std::string name, int a, int b, int bias) {
  const GraphNode& na = node(a);
  const GraphNode& nb = node(b);
  const GraphNode& nbias = node(bias);
  PIT_CHECK_EQ(na.shape.size(), 2u);
  PIT_CHECK_EQ(nb.shape.size(), 2u);
  PIT_CHECK_EQ(na.shape[1], nb.shape[0]);
  PIT_CHECK_EQ(nbias.shape.size(), 1u);
  PIT_CHECK_EQ(nbias.shape[0], nb.shape[1]);
  GraphNode n;
  n.kind = OpKind::kMatmulBias;
  n.name = std::move(name);
  n.inputs = {a, b, bias};
  n.shape = {na.shape[0], nb.shape[1]};
  return Add(std::move(n));
}

int Graph::AddRelu(std::string name, int x) {
  GraphNode n;
  n.kind = OpKind::kRelu;
  n.name = std::move(name);
  n.inputs = {x};
  n.shape = node(x).shape;
  return Add(std::move(n));
}

int Graph::AddAdd(std::string name, int a, int b) {
  PIT_CHECK(node(a).shape == node(b).shape);
  GraphNode n;
  n.kind = OpKind::kAdd;
  n.name = std::move(name);
  n.inputs = {a, b};
  n.shape = node(a).shape;
  return Add(std::move(n));
}

int Graph::AddMask(std::string name, int x, int mask) {
  PIT_CHECK(node(x).shape == node(mask).shape);
  GraphNode n;
  n.kind = OpKind::kMask;
  n.name = std::move(name);
  n.inputs = {x, mask};
  n.shape = node(x).shape;
  return Add(std::move(n));
}

int Graph::AddSoftmax(std::string name, int x, int mask) {
  const GraphNode& nx = node(x);
  PIT_CHECK(nx.shape.size() == 2 || nx.shape.size() == 3);
  GraphNode n;
  n.kind = OpKind::kSoftmax;
  n.name = std::move(name);
  n.inputs = {x};
  if (mask >= 0) {
    const GraphNode& nm = node(mask);
    // The mask matches the input's trailing two axes; a rank-3 input
    // broadcasts a rank-2 mask over its leading (head) axis.
    PIT_CHECK_EQ(nm.shape.size(), 2u);
    PIT_CHECK_EQ(nm.shape[0], nx.shape[nx.shape.size() - 2]);
    PIT_CHECK_EQ(nm.shape[1], nx.shape[nx.shape.size() - 1]);
    n.inputs.push_back(mask);
  }
  n.shape = nx.shape;
  return Add(std::move(n));
}

int Graph::AddLayerNorm(std::string name, int x, int gamma, int beta, float eps) {
  const GraphNode& nx = node(x);
  PIT_CHECK_EQ(nx.shape.size(), 2u);
  PIT_CHECK_EQ(node(gamma).shape.size(), 1u);
  PIT_CHECK_EQ(node(gamma).shape[0], nx.shape[1]);
  PIT_CHECK_EQ(node(beta).shape.size(), 1u);
  PIT_CHECK_EQ(node(beta).shape[0], nx.shape[1]);
  GraphNode n;
  n.kind = OpKind::kLayerNorm;
  n.name = std::move(name);
  n.inputs = {x, gamma, beta};
  n.shape = nx.shape;
  n.fattr = eps;
  return Add(std::move(n));
}

int Graph::AddScale(std::string name, int x, float factor) {
  GraphNode n;
  n.kind = OpKind::kScale;
  n.name = std::move(name);
  n.inputs = {x};
  n.shape = node(x).shape;
  n.fattr = factor;
  return Add(std::move(n));
}

int Graph::AddTranspose(std::string name, int x, int axis0, int axis1) {
  const GraphNode& nx = node(x);
  const size_t rank = nx.shape.size();
  PIT_CHECK((rank == 2 && axis0 == 0 && axis1 == 1) ||
            (rank == 3 && ((axis0 == 0 && axis1 == 1) || (axis0 == 1 && axis1 == 2))))
      << "unsupported transpose axes (" << axis0 << ", " << axis1 << ") at rank " << rank;
  GraphNode n;
  n.kind = OpKind::kTranspose;
  n.name = std::move(name);
  n.inputs = {x};
  n.shape = nx.shape;
  std::swap(n.shape[static_cast<size_t>(axis0)], n.shape[static_cast<size_t>(axis1)]);
  n.iattr0 = axis0;
  n.iattr1 = axis1;
  return Add(std::move(n));
}

int Graph::AddReshape(std::string name, int x, Shape shape) {
  PIT_CHECK_EQ(NumElements(shape), NumElements(node(x).shape));
  GraphNode n;
  n.kind = OpKind::kReshape;
  n.name = std::move(name);
  n.inputs = {x};
  n.shape = std::move(shape);
  return Add(std::move(n));
}

int Graph::AddBatchMatmul(std::string name, int a, int b) {
  const GraphNode& na = node(a);
  const GraphNode& nb = node(b);
  PIT_CHECK_EQ(na.shape.size(), 3u);
  PIT_CHECK_EQ(nb.shape.size(), 3u);
  PIT_CHECK_EQ(na.shape[0], nb.shape[0]);
  PIT_CHECK_EQ(na.shape[2], nb.shape[1]);
  GraphNode n;
  n.kind = OpKind::kBatchMatmul;
  n.name = std::move(name);
  n.inputs = {a, b};
  n.shape = {na.shape[0], na.shape[1], nb.shape[2]};
  return Add(std::move(n));
}

void Graph::PropagateSparsity() {
  // Forward pass in construction (= topological) order.
  for (auto& n : nodes_) {
    switch (n.kind) {
      case OpKind::kInput:
      case OpKind::kWeight:
        break;  // inputs keep their declared annotation; weights dense
      case OpKind::kRelu: {
        // Trained-transformer ReLU activations are 95-99.9% zero (§2.1; the
        // OPT evaluation exploits 99%, §5.1). The annotation only steers
        // kernel pre-selection — the runtime detector always measures the
        // real ratio per input and can still fall back dense.
        const GraphNode& src = nodes_[static_cast<size_t>(n.inputs[0])];
        n.sparsity = SparsitySource::kActivation;
        n.expected_sparsity = std::max(0.99, src.expected_sparsity);
        break;
      }
      case OpKind::kMask: {
        const GraphNode& mask = nodes_[static_cast<size_t>(n.inputs[1])];
        n.sparsity = SparsitySource::kMasked;
        // The output is at least as sparse as the mask.
        n.expected_sparsity =
            std::max(mask.expected_sparsity,
                     nodes_[static_cast<size_t>(n.inputs[0])].expected_sparsity);
        break;
      }
      case OpKind::kAdd: {
        // Sum of sparse tensors: zero only where both are zero.
        const GraphNode& a = nodes_[static_cast<size_t>(n.inputs[0])];
        const GraphNode& b = nodes_[static_cast<size_t>(n.inputs[1])];
        if (a.MaybeSparse() && b.MaybeSparse()) {
          n.sparsity = SparsitySource::kPropagated;
          n.expected_sparsity = std::min(a.expected_sparsity, b.expected_sparsity);
        }
        break;
      }
      case OpKind::kSoftmax: {
        if (n.inputs.size() == 2) {
          // Masked softmax zeroes exactly the masked-out entries, like kMask.
          const GraphNode& mask = nodes_[static_cast<size_t>(n.inputs[1])];
          n.sparsity = SparsitySource::kMasked;
          n.expected_sparsity = mask.expected_sparsity;
          break;
        }
        // Softmax preserves structural zeros only for fully-masked entries;
        // row-sparse inputs (padding) stay row-sparse.
        const GraphNode& src = nodes_[static_cast<size_t>(n.inputs[0])];
        if (src.sparsity == SparsitySource::kMasked ||
            src.sparsity == SparsitySource::kExternal) {
          n.sparsity = SparsitySource::kPropagated;
          n.expected_sparsity = src.expected_sparsity;
        }
        break;
      }
      case OpKind::kScale:
      case OpKind::kTranspose:
      case OpKind::kReshape: {
        // Zero-preserving data movement (scale by a nonzero constant, axis
        // permutation, reinterpretation): the annotation rides along.
        const GraphNode& src = nodes_[static_cast<size_t>(n.inputs[0])];
        if (src.MaybeSparse()) {
          n.sparsity = SparsitySource::kPropagated;
          n.expected_sparsity = src.expected_sparsity;
        }
        break;
      }
      case OpKind::kLayerNorm:
        // Mean subtraction + beta shift destroy structural zeros.
        break;
      case OpKind::kMatmul:
      case OpKind::kMatmulBias:
      case OpKind::kBatchMatmul:
        // Dense output: a contraction densifies (unless both operands are
        // extremely sparse, which the runtime detector would catch anyway).
        break;
    }
  }
}

std::vector<MatmulDecision> Graph::PitPass(double min_sparsity) const {
  std::vector<MatmulDecision> decisions;
  for (const auto& n : nodes_) {
    if (n.kind != OpKind::kMatmul && n.kind != OpKind::kMatmulBias) {
      continue;
    }
    MatmulDecision d;
    d.node_id = n.id;
    const GraphNode& a = node(n.inputs[0]);
    if (a.MaybeSparse() && a.expected_sparsity >= min_sparsity) {
      d.use_pit = true;
      d.sparse_operand = 0;
      // Heuristic mirror of §3.2: row-level sparsity sources (padding,
      // routing) keep the m axis (micro-tile [1, k], row-major friendly);
      // element-level sources (ReLU, fine masks) use the k axis, whose
      // [m, 1] micro-tile needs the operand column-major — the producer
      // piggybacks the flip at its output for free.
      if (a.sparsity == SparsitySource::kActivation ||
          a.sparsity == SparsitySource::kMasked) {
        d.axis = MatmulAxis::kK;
        d.piggyback_layout_flip = true;  // A is produced row-major
        d.reason = std::string("operand '") + a.name + "' " + SparsitySourceName(a.sparsity) +
                   "-sparse; k-axis micro-tile, layout flip piggybacked at producer";
      } else {
        d.axis = MatmulAxis::kM;
        d.reason = std::string("operand '") + a.name + "' " + SparsitySourceName(a.sparsity) +
                   "-sparse; m-axis row gather";
      }
    } else {
      d.reason = a.MaybeSparse() ? "expected sparsity below threshold; dense kernel"
                                 : "no sparse operand; dense kernel";
    }
    decisions.push_back(std::move(d));
  }
  return decisions;
}

std::shared_ptr<Graph::PlanCacheEntry> Graph::EntryFor(
    const std::vector<MatmulDecision>* decisions) const {
  std::lock_guard<std::mutex> lock(plans_->mu);
  for (auto& entry : plans_->entries) {
    if (decisions == nullptr ? entry->dense
                             : (!entry->dense && SameDecisions(entry->decisions, *decisions))) {
      return entry;
    }
  }
  // Bound the cache: distinct decision sets per graph are few in practice; a
  // runaway caller cycling through many just recompiles. Evicted entries are
  // only dropped from the cache — executors mid-Run keep theirs alive.
  constexpr size_t kMaxPlans = 8;
  if (plans_->entries.size() >= kMaxPlans) {
    plans_->entries.erase(plans_->entries.begin());
  }
  auto entry = std::make_shared<PlanCacheEntry>();
  entry->dense = decisions == nullptr;
  if (decisions != nullptr) {
    entry->decisions = *decisions;
  }
  entry->plan = std::make_unique<ExecutionPlan>(*this, decisions);
  plans_->entries.push_back(entry);
  return entry;
}

ExecutionPlan& Graph::Plan(const std::vector<MatmulDecision>* decisions) const {
  return *EntryFor(decisions)->plan;
}

std::shared_ptr<ExecutionPlan> Graph::PlanShared(
    const std::vector<MatmulDecision>* decisions) const {
  std::shared_ptr<PlanCacheEntry> entry = EntryFor(decisions);
  // Aliasing constructor: the handle shares the entry's lifetime, so cache
  // eviction or AddX invalidation cannot destroy a plan an executor holds.
  return std::shared_ptr<ExecutionPlan>(entry, entry->plan.get());
}

std::map<int, Tensor> Graph::Execute(const std::map<std::string, Tensor>& feeds,
                                     const std::vector<MatmulDecision>* decisions,
                                     PitCompiler* compiler) const {
  std::shared_ptr<PlanCacheEntry> entry = EntryFor(decisions);
  std::map<int, Tensor> values;
  // Inputs and weights are pass-throughs; compute values are copied out of
  // the arena step by step (a slot may be reused by a later step).
  for (const auto& n : nodes_) {
    if (n.kind == OpKind::kInput) {
      auto it = feeds.find(n.name);
      PIT_CHECK(it != feeds.end()) << "missing feed: " << n.name;
      values.emplace(n.id, it->second);
    } else if (n.kind == OpKind::kWeight) {
      values.emplace(n.id, weight(n.id));
    }
  }
  const StepObserver copy_out = [&](int node_id, ConstTensorView value) {
    Tensor copy(node(node_id).shape);
    std::copy(value.data(), value.data() + value.size(), copy.data());
    values.emplace(node_id, std::move(copy));
  };
  // One arena per plan: executions of the SAME decision set serialize on the
  // entry; different decision sets (and other graphs) run concurrently.
  std::lock_guard<std::mutex> run_lock(entry->run_mu);
  entry->plan->Run(feeds, compiler, &copy_out);
  return values;
}

Tensor Graph::Run(const std::map<std::string, Tensor>& feeds,
                  const std::vector<MatmulDecision>* decisions, PitCompiler* compiler) const {
  std::shared_ptr<PlanCacheEntry> entry = EntryFor(decisions);
  std::lock_guard<std::mutex> run_lock(entry->run_mu);
  ConstTensorView out = entry->plan->Run(feeds, compiler);
  Tensor result(node(size() - 1).shape);
  std::copy(out.data(), out.data() + out.size(), result.data());
  return result;
}

Graph BuildFfnGraph(int64_t tokens, int64_t hidden, int64_t ffn_hidden, Rng& rng) {
  Graph g;
  const int x = g.AddInput("x", {tokens, hidden});
  const int w_up = g.AddWeight("w_up", Tensor::Random({hidden, ffn_hidden}, rng));
  const int w_down = g.AddWeight("w_down", Tensor::Random({ffn_hidden, hidden}, rng));
  const int up = g.AddMatmul("up_proj", x, w_up);
  const int act = g.AddRelu("relu", up);
  g.AddMatmul("down_proj", act, w_down);
  g.PropagateSparsity();
  return g;
}

}  // namespace pit
