#include "pit/graph/graph.h"

#include <algorithm>

#include "pit/common/check.h"
#include "pit/tensor/ops.h"

namespace pit {

const char* OpKindName(OpKind kind) {
  switch (kind) {
    case OpKind::kInput:
      return "input";
    case OpKind::kWeight:
      return "weight";
    case OpKind::kMatmul:
      return "matmul";
    case OpKind::kRelu:
      return "relu";
    case OpKind::kAdd:
      return "add";
    case OpKind::kMask:
      return "mask";
    case OpKind::kSoftmax:
      return "softmax";
  }
  return "?";
}

const char* SparsitySourceName(SparsitySource source) {
  switch (source) {
    case SparsitySource::kNone:
      return "none";
    case SparsitySource::kExternal:
      return "external";
    case SparsitySource::kActivation:
      return "activation";
    case SparsitySource::kMasked:
      return "masked";
    case SparsitySource::kPropagated:
      return "propagated";
  }
  return "?";
}

int Graph::Add(GraphNode node) {
  node.id = static_cast<int>(nodes_.size());
  nodes_.push_back(std::move(node));
  return nodes_.back().id;
}

int Graph::AddInput(std::string name, Shape shape, double expected_sparsity) {
  GraphNode n;
  n.kind = OpKind::kInput;
  n.name = std::move(name);
  n.shape = std::move(shape);
  if (expected_sparsity > 0.0) {
    n.sparsity = SparsitySource::kExternal;
    n.expected_sparsity = expected_sparsity;
  }
  return Add(std::move(n));
}

int Graph::AddWeight(std::string name, Tensor value) {
  GraphNode n;
  n.kind = OpKind::kWeight;
  n.name = std::move(name);
  n.shape = value.shape();
  const int id = Add(std::move(n));
  weights_.emplace(id, std::move(value));
  return id;
}

const Tensor& Graph::weight(int id) const {
  auto it = weights_.find(id);
  PIT_CHECK(it != weights_.end()) << "node " << id << " is not a weight";
  return it->second;
}

int Graph::AddMatmul(std::string name, int a, int b) {
  const GraphNode& na = node(a);
  const GraphNode& nb = node(b);
  PIT_CHECK_EQ(na.shape.size(), 2u);
  PIT_CHECK_EQ(nb.shape.size(), 2u);
  PIT_CHECK_EQ(na.shape[1], nb.shape[0]);
  GraphNode n;
  n.kind = OpKind::kMatmul;
  n.name = std::move(name);
  n.inputs = {a, b};
  n.shape = {na.shape[0], nb.shape[1]};
  return Add(std::move(n));
}

int Graph::AddRelu(std::string name, int x) {
  GraphNode n;
  n.kind = OpKind::kRelu;
  n.name = std::move(name);
  n.inputs = {x};
  n.shape = node(x).shape;
  return Add(std::move(n));
}

int Graph::AddAdd(std::string name, int a, int b) {
  PIT_CHECK(node(a).shape == node(b).shape);
  GraphNode n;
  n.kind = OpKind::kAdd;
  n.name = std::move(name);
  n.inputs = {a, b};
  n.shape = node(a).shape;
  return Add(std::move(n));
}

int Graph::AddMask(std::string name, int x, int mask) {
  PIT_CHECK(node(x).shape == node(mask).shape);
  GraphNode n;
  n.kind = OpKind::kMask;
  n.name = std::move(name);
  n.inputs = {x, mask};
  n.shape = node(x).shape;
  return Add(std::move(n));
}

int Graph::AddSoftmax(std::string name, int x) {
  GraphNode n;
  n.kind = OpKind::kSoftmax;
  n.name = std::move(name);
  n.inputs = {x};
  n.shape = node(x).shape;
  return Add(std::move(n));
}

void Graph::PropagateSparsity() {
  // Forward pass in construction (= topological) order.
  for (auto& n : nodes_) {
    switch (n.kind) {
      case OpKind::kInput:
      case OpKind::kWeight:
        break;  // inputs keep their declared annotation; weights dense
      case OpKind::kRelu: {
        // Trained-transformer ReLU activations are 95-99.9% zero (§2.1; the
        // OPT evaluation exploits 99%, §5.1). The annotation only steers
        // kernel pre-selection — the runtime detector always measures the
        // real ratio per input and can still fall back dense.
        const GraphNode& src = nodes_[static_cast<size_t>(n.inputs[0])];
        n.sparsity = SparsitySource::kActivation;
        n.expected_sparsity = std::max(0.99, src.expected_sparsity);
        break;
      }
      case OpKind::kMask: {
        const GraphNode& mask = nodes_[static_cast<size_t>(n.inputs[1])];
        n.sparsity = SparsitySource::kMasked;
        // The output is at least as sparse as the mask.
        n.expected_sparsity =
            std::max(mask.expected_sparsity,
                     nodes_[static_cast<size_t>(n.inputs[0])].expected_sparsity);
        break;
      }
      case OpKind::kAdd: {
        // Sum of sparse tensors: zero only where both are zero.
        const GraphNode& a = nodes_[static_cast<size_t>(n.inputs[0])];
        const GraphNode& b = nodes_[static_cast<size_t>(n.inputs[1])];
        if (a.MaybeSparse() && b.MaybeSparse()) {
          n.sparsity = SparsitySource::kPropagated;
          n.expected_sparsity = std::min(a.expected_sparsity, b.expected_sparsity);
        }
        break;
      }
      case OpKind::kSoftmax: {
        // Softmax preserves structural zeros only for fully-masked entries;
        // row-sparse inputs (padding) stay row-sparse.
        const GraphNode& src = nodes_[static_cast<size_t>(n.inputs[0])];
        if (src.sparsity == SparsitySource::kMasked ||
            src.sparsity == SparsitySource::kExternal) {
          n.sparsity = SparsitySource::kPropagated;
          n.expected_sparsity = src.expected_sparsity;
        }
        break;
      }
      case OpKind::kMatmul:
        // Dense output: a contraction densifies (unless both operands are
        // extremely sparse, which the runtime detector would catch anyway).
        break;
    }
  }
}

std::vector<MatmulDecision> Graph::PitPass(double min_sparsity) const {
  std::vector<MatmulDecision> decisions;
  for (const auto& n : nodes_) {
    if (n.kind != OpKind::kMatmul) {
      continue;
    }
    MatmulDecision d;
    d.node_id = n.id;
    const GraphNode& a = node(n.inputs[0]);
    if (a.MaybeSparse() && a.expected_sparsity >= min_sparsity) {
      d.use_pit = true;
      d.sparse_operand = 0;
      // Heuristic mirror of §3.2: row-level sparsity sources (padding,
      // routing) keep the m axis (micro-tile [1, k], row-major friendly);
      // element-level sources (ReLU, fine masks) use the k axis, whose
      // [m, 1] micro-tile needs the operand column-major — the producer
      // piggybacks the flip at its output for free.
      if (a.sparsity == SparsitySource::kActivation ||
          a.sparsity == SparsitySource::kMasked) {
        d.axis = MatmulAxis::kK;
        d.piggyback_layout_flip = true;  // A is produced row-major
        d.reason = std::string("operand '") + a.name + "' " + SparsitySourceName(a.sparsity) +
                   "-sparse; k-axis micro-tile, layout flip piggybacked at producer";
      } else {
        d.axis = MatmulAxis::kM;
        d.reason = std::string("operand '") + a.name + "' " + SparsitySourceName(a.sparsity) +
                   "-sparse; m-axis row gather";
      }
    } else {
      d.reason = a.MaybeSparse() ? "expected sparsity below threshold; dense kernel"
                                 : "no sparse operand; dense kernel";
    }
    decisions.push_back(std::move(d));
  }
  return decisions;
}

std::map<int, Tensor> Graph::Execute(const std::map<std::string, Tensor>& feeds,
                                     const std::vector<MatmulDecision>* decisions,
                                     PitCompiler* compiler) const {
  auto decision_for = [&](int id) -> const MatmulDecision* {
    if (decisions == nullptr) {
      return nullptr;
    }
    for (const auto& d : *decisions) {
      if (d.node_id == id) {
        return &d;
      }
    }
    return nullptr;
  };

  std::map<int, Tensor> values;
  for (const auto& n : nodes_) {
    switch (n.kind) {
      case OpKind::kInput: {
        auto it = feeds.find(n.name);
        PIT_CHECK(it != feeds.end()) << "missing feed: " << n.name;
        PIT_CHECK(it->second.shape() == n.shape) << "feed shape mismatch for " << n.name;
        values.emplace(n.id, it->second);
        break;
      }
      case OpKind::kWeight:
        values.emplace(n.id, weight(n.id));
        break;
      case OpKind::kMatmul: {
        const Tensor& a = values.at(n.inputs[0]);
        const Tensor& b = values.at(n.inputs[1]);
        const MatmulDecision* d = decision_for(n.id);
        if (d != nullptr && d->use_pit) {
          PIT_CHECK(compiler != nullptr) << "PIT decision requires a compiler";
          values.emplace(n.id, compiler->SparseMatmul(a, b).output);
        } else {
          values.emplace(n.id, MatMul(a, b));
        }
        break;
      }
      case OpKind::kRelu:
        values.emplace(n.id, Relu(values.at(n.inputs[0])));
        break;
      case OpKind::kAdd:
        values.emplace(n.id, ::pit::Add(values.at(n.inputs[0]), values.at(n.inputs[1])));
        break;
      case OpKind::kMask:
        values.emplace(n.id, ApplyMask(values.at(n.inputs[0]), values.at(n.inputs[1])));
        break;
      case OpKind::kSoftmax:
        values.emplace(n.id, Softmax(values.at(n.inputs[0])));
        break;
    }
  }
  return values;
}

Tensor Graph::Run(const std::map<std::string, Tensor>& feeds,
                  const std::vector<MatmulDecision>* decisions, PitCompiler* compiler) const {
  auto values = Execute(feeds, decisions, compiler);
  return values.at(size() - 1);
}

Graph BuildFfnGraph(int64_t tokens, int64_t hidden, int64_t ffn_hidden, Rng& rng) {
  Graph g;
  const int x = g.AddInput("x", {tokens, hidden});
  const int w_up = g.AddWeight("w_up", Tensor::Random({hidden, ffn_hidden}, rng));
  const int w_down = g.AddWeight("w_down", Tensor::Random({ffn_hidden, hidden}, rng));
  const int up = g.AddMatmul("up_proj", x, w_up);
  const int act = g.AddRelu("relu", up);
  g.AddMatmul("down_proj", act, w_down);
  g.PropagateSparsity();
  return g;
}

}  // namespace pit
