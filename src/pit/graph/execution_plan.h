// ExecutionPlan: the compile-once / execute-many layer under the graph IR.
//
// The paper's Fig. 5 workflow selects PIT rules and kernels offline and has
// the runtime merely replay them per batch. The previous executor re-walked
// the IR on every call and materialized every intermediate as a fresh
// value-semantics Tensor; this layer does the walking once:
//
//   * shape inference re-derives and validates every node's shape,
//   * liveness analysis finds each intermediate's last consumer,
//   * an arena planner assigns every intermediate an offset in one reusable
//     buffer (best-fit free-list reuse for non-overlapping lifetimes, plus
//     in-place aliasing for elementwise ops consuming a dying input); the
//     arena base and every block offset are 64-byte aligned so concurrently
//     executing steps never share a cache line,
//   * a matmul(+bias) whose only consumer is a ReLU fuses into one
//     fused-epilogue GEMM step (dense steps only — PIT steps keep their
//     separate ReLU so the sparse path is untouched),
//   * a step-level dependency DAG is derived from the steps' arena read/write
//     intervals (storage-root aware, so kReshape aliases are handled) and
//     partitioned into topological wavefronts,
//   * the result is a flat list of OpCall dispatch steps over which the
//     dense-reference kernels and the PIT sparse path are interchangeable.
//
// Replay runs the steps either strictly in order (PIT_PLAN_SCHED=seq, the
// scheduling oracle) or wavefront-parallel (default): steps of the same
// wavefront have no data or buffer-reuse hazard between them, so they
// dispatch concurrently on the ParallelFor pool as tasks, each granted an
// intra-op width budget of ~threads/width so nested kernel ParallelFors
// split the pool instead of fighting over it. Both schedules are bitwise
// identical to each other and to the old eager executor for any thread
// count: the steps call the exact kernels the eager ops wrap, every kernel
// is internally order-deterministic, and concurrent steps write disjoint
// 64-byte-aligned arena blocks. Executing a compiled plan performs ~zero
// heap allocations on the dense path (the arena and bindings are sized at
// compile time; only a genuine multi-thread fan-out pays a few
// std::function wraps).
#ifndef PIT_GRAPH_EXECUTION_PLAN_H_
#define PIT_GRAPH_EXECUTION_PLAN_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "pit/core/compiler.h"
#include "pit/graph/graph.h"
#include "pit/tensor/tensor.h"

namespace pit {

// Where a node's value lives during plan execution.
enum class ValueLoc : uint8_t {
  kFeed,    // caller-provided input tensor, bound per Run
  kWeight,  // graph-owned (or referenced) constant, bound at compile
  kArena,   // slice of the plan's arena at `offset`
};

struct ValueRef {
  ValueLoc loc = ValueLoc::kArena;
  int node_id = -1;    // storage node (where the bytes live / are bound)
  int shape_id = -1;   // shape node (differs from node_id across kReshape)
  int64_t offset = 0;  // element offset; meaningful for kArena only
};

// One kernel-dispatch step. This is the unified seam between the two
// execution paths: `use_pit` false runs the dense reference kernel for
// `kind`; true routes the matmul through the PitCompiler using this call
// site's cached kernel handle (the JIT cache is hooked into the step instead
// of being consulted from scratch every call).
struct OpCall {
  OpKind kind = OpKind::kInput;
  int node_id = -1;
  bool use_pit = false;
  bool inplace = false;    // output aliases a dying input's arena block
  bool fuse_relu = false;  // matmul(+bias) step with a fused ReLU epilogue;
                           // node_id is the elided ReLU's node
  ValueRef out;
  ValueRef in[3];
  int num_in = 0;
  float fattr = 0.0f;       // kScale factor / kLayerNorm epsilon
  int iattr0 = 0;           // kTranspose axes
  int iattr1 = 1;
  PitKernelHandle pit;  // per-site kernel slot (PIT steps only)
};

// Memory-planning summary, the data behind BENCH_pr2's arena metrics.
struct PlanStats {
  int64_t arena_bytes = 0;           // peak bytes of the shared arena
  int64_t sum_temporary_bytes = 0;   // what eager execution would allocate
  int num_steps = 0;
  int num_inplace = 0;
  int num_pit_steps = 0;
  int num_fused = 0;            // matmul+relu pairs collapsed at compile
  int num_wavefronts = 0;       // dependency-DAG depth of the step list
  int max_wavefront_width = 0;  // widest set of concurrently runnable steps
};

// Called after each compute step with the node id and a view of its value
// (valid until the arena slot is reused by a later Run or step). Observed
// runs always replay sequentially in step order, whatever PIT_PLAN_SCHED
// says — observers are ordering-sensitive probes.
using StepObserver = std::function<void(int node_id, ConstTensorView value)>;

class ExecutionPlan {
 public:
  // Compiles the plan. `decisions` (nullable) marks which matmul steps run
  // through PIT. The plan snapshots every node shape and attribute it needs
  // at compile time, so Run never touches the graph's node storage again —
  // an executor holding a Graph::PlanShared handle stays safe even while the
  // graph is concurrently mutated (which invalidates the cache, not this
  // plan). Only the graph's weight tensors must stay alive and in place.
  ExecutionPlan(const Graph& graph, const std::vector<MatmulDecision>* decisions);

  ExecutionPlan(const ExecutionPlan&) = delete;
  ExecutionPlan& operator=(const ExecutionPlan&) = delete;

  // Executes every step over `feeds` and returns a view of the final node's
  // value (valid until the next Run or plan destruction). `compiler` is
  // required iff the plan contains PIT steps. `observer`, when set, sees each
  // compute step's output right after the step runs (and forces the
  // sequential schedule). Not thread-safe: a plan owns one arena, so
  // concurrent Runs must use distinct plans.
  ConstTensorView Run(const std::map<std::string, Tensor>& feeds,
                      PitCompiler* compiler = nullptr, const StepObserver* observer = nullptr);
  // Pointer-feed form for callers that rebind the same feeds every call (the
  // nn/runtime layers): no tensor copies, no per-call map construction.
  ConstTensorView Run(const std::map<std::string, const Tensor*>& feeds,
                      PitCompiler* compiler = nullptr, const StepObserver* observer = nullptr);

  const PlanStats& stats() const { return stats_; }
  const std::vector<OpCall>& steps() const { return steps_; }
  // 64-byte-aligned base of the execution arena (alignment is asserted by
  // plan_executor_test; concurrent wavefront steps rely on it to never
  // false-share a cache line across blocks).
  const float* arena_base() const { return arena_; }

 private:
  template <typename FeedMap>
  ConstTensorView RunImpl(const FeedMap& feeds, PitCompiler* compiler,
                          const StepObserver* observer);
  void RunSequential(PitCompiler* compiler, const StepObserver* observer);
  void RunWavefronts(PitCompiler* compiler);
  void BuildWavefronts();
  const float* ResolveConst(const ValueRef& ref) const;
  float* ResolveArena(const ValueRef& ref);
  void Dispatch(OpCall& call, PitCompiler* compiler);

  // Compile-time snapshot of every node's shape, indexed by node id. Views
  // handed to kernels borrow these (stable — the plan owns them), never the
  // live graph's nodes.
  std::vector<Shape> shapes_;
  std::vector<OpCall> steps_;
  // Arena storage plus its 64-byte-aligned base pointer (the vector's own
  // allocation is only 16-byte aligned; the base is rounded up inside it).
  std::vector<float> arena_storage_;
  float* arena_ = nullptr;
  // Wavefront partition of steps_: wave w is steps_
  // [wave_steps_[wave_offsets_[w]] .. wave_steps_[wave_offsets_[w+1]]),
  // mutually independent and ordered by step index within the wave.
  // kReshape no-op steps are excluded (they dispatch nothing; including them
  // would dilute the real steps' width budget with instant tasks).
  std::vector<int> wave_steps_;
  std::vector<int> wave_offsets_;
  // Per-node data pointer for kFeed/kWeight nodes (weights bound at compile,
  // feeds re-bound each Run); indexed by node id.
  std::vector<const float*> bound_;
  struct FeedBinding {
    int node_id;
    std::string name;
  };
  std::vector<FeedBinding> feed_bindings_;
  ValueRef result_;
  PlanStats stats_;
};

}  // namespace pit

#endif  // PIT_GRAPH_EXECUTION_PLAN_H_
