// ExecutionPlan: the compile-once / execute-many layer under the graph IR.
//
// The paper's Fig. 5 workflow selects PIT rules and kernels offline and has
// the runtime merely replay them per batch. The previous executor re-walked
// the IR on every call and materialized every intermediate as a fresh
// value-semantics Tensor; this layer does the walking once:
//
//   * shape inference re-derives and validates every node's shape,
//   * liveness analysis finds each intermediate's last consumer,
//   * an arena planner assigns every intermediate an offset in one reusable
//     buffer (best-fit free-list reuse for non-overlapping lifetimes, plus
//     in-place aliasing for elementwise ops consuming a dying input); the
//     arena base and every block offset are 64-byte aligned so concurrently
//     executing steps never share a cache line,
//   * a matmul(+bias) whose only consumer is a ReLU fuses into one
//     fused-epilogue GEMM step (dense steps only — PIT steps keep their
//     separate ReLU so the sparse path is untouched),
//   * a step-level dependency DAG is derived from the steps' arena read/write
//     intervals (storage-root aware, so kReshape aliases are handled) and
//     partitioned into topological wavefronts,
//   * the result is a flat list of OpCall dispatch steps over which the
//     dense-reference kernels and the PIT sparse path are interchangeable.
//
// Plan vs. execution state. A compiled plan is immutable: steps, shapes,
// wavefronts, and stats never change after the constructor returns. All
// mutable replay state — the arena, the per-Run feed bindings, and the
// per-call-site PIT kernel slots — lives in an ExecutionContext. One plan
// therefore replays concurrently from N request streams, each stream holding
// its own context (RunWith); the classic Run(feeds) entry keeps its exact
// semantics by delegating to an internal default context, and stays
// not-thread-safe for the same reason it always was (one arena).
//
// Replay runs the steps either strictly in order (PIT_PLAN_SCHED=seq, the
// scheduling oracle) or wavefront-parallel: steps of the same wavefront have
// no data or buffer-reuse hazard between them, so they dispatch concurrently
// on the ParallelFor pool as tasks, each granted an intra-op width budget of
// ~threads/width so nested kernel ParallelFors split the pool. Wavefront
// dispatch only engages when the compile-time profitability check passed
// (stats().wavefront_profitable): BENCH_pr4 measured inter-op overlap losing
// to plain intra-op kernel parallelism when the concurrent steps are small
// (encoder_layer_128x256, ~17 MFLOP steps, 0.92x vs seq@1), so plans whose
// parallel waves average below kMinParallelStepWork replay sequentially and
// let each kernel use the whole pool. Both schedules are bitwise identical to
// each other and to the old eager executor for any thread count: the steps
// call the exact kernels the eager ops wrap, every kernel is internally
// order-deterministic, and concurrent steps write disjoint 64-byte-aligned
// arena blocks. Executing a compiled plan performs ~zero heap allocations on
// the dense path (the arena and bindings are sized at compile time; only a
// genuine multi-thread fan-out pays a few std::function wraps).
#ifndef PIT_GRAPH_EXECUTION_PLAN_H_
#define PIT_GRAPH_EXECUTION_PLAN_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "pit/common/cancellation.h"
#include "pit/core/compiler.h"
#include "pit/graph/graph.h"
#include "pit/tensor/tensor.h"

namespace pit {

class ExecutionPlan;

// Where a node's value lives during plan execution.
enum class ValueLoc : uint8_t {
  kFeed,    // caller-provided input tensor, bound per Run
  kWeight,  // graph-owned (or referenced) constant, bound at compile
  kArena,   // slice of the execution context's arena at `offset`
};

struct ValueRef {
  ValueLoc loc = ValueLoc::kArena;
  int node_id = -1;    // storage node (where the bytes live / are bound)
  int shape_id = -1;   // shape node (differs from node_id across kReshape)
  int64_t offset = 0;  // element offset; meaningful for kArena only
};

// One kernel-dispatch step. This is the unified seam between the two
// execution paths: `use_pit` false runs the dense reference kernel for
// `kind`; true routes the matmul through the PitCompiler using the execution
// context's cached kernel handle for this call site (the JIT cache is hooked
// into the step instead of being consulted from scratch every call).
struct OpCall {
  OpKind kind = OpKind::kInput;
  int node_id = -1;
  bool use_pit = false;
  bool inplace = false;    // output aliases a dying input's arena block
  bool fuse_relu = false;  // matmul(+bias) step with a fused ReLU epilogue;
                           // node_id is the elided ReLU's node
  ValueRef out;
  ValueRef in[3];
  int num_in = 0;
  float fattr = 0.0f;       // kScale factor / kLayerNorm epsilon
  int iattr0 = 0;           // kTranspose axes
  int iattr1 = 1;
};

// Memory-planning summary, the data behind BENCH_pr2's arena metrics.
struct PlanStats {
  int64_t arena_bytes = 0;           // peak bytes of one execution context's arena
  int64_t sum_temporary_bytes = 0;   // what eager execution would allocate
  int num_steps = 0;
  int num_inplace = 0;
  int num_pit_steps = 0;
  int num_fused = 0;            // matmul+relu pairs collapsed at compile
  int num_wavefronts = 0;       // dependency-DAG depth of the step list
  int max_wavefront_width = 0;  // widest set of concurrently runnable steps
  // Compile-time wavefront profitability gate: mean estimated arithmetic work
  // per step across waves of width >= 2, and whether that clears the
  // dispatch-overhead threshold (kMinParallelStepWork). When false, replay
  // stays sequential even under PIT_PLAN_SCHED=wavefront — each kernel then
  // uses the whole pool intra-op, which BENCH_pr4 measured faster for
  // small-step plans (see SetWavefrontGateEnabled for the test override).
  double parallel_step_work = 0.0;
  bool wavefront_profitable = false;
};

// How the last replay through a context ended. Kernels are uninterruptible,
// so kCancelled means the replay stopped at a step/wavefront boundary (or
// never started) after its cancel token fired: the context's arena holds a
// partial, meaningless intermediate state and the returned view must be
// discarded. The next RunWith resets the status.
enum class ReplayStatus : uint8_t {
  kOk = 0,
  kCancelled = 1,
};

// Per-stream execution state over one shared, immutable ExecutionPlan: the
// 64-byte-aligned arena, the per-Run feed binding table, and the per-step PIT
// kernel slots. Contexts are independent — two streams replaying the same
// plan through distinct contexts share zero mutable state — and reusable: a
// context pooled across requests keeps its arena and its warmed PIT handles.
// A context is bound to the plan it was created from; using it with another
// plan is a checked error.
class ExecutionContext {
 public:
  explicit ExecutionContext(const ExecutionPlan& plan);

  ExecutionContext(const ExecutionContext&) = delete;
  ExecutionContext& operator=(const ExecutionContext&) = delete;

  // 64-byte-aligned base of this context's arena (same alignment contract as
  // the plan's block offsets: concurrent steps never false-share a line).
  const float* arena_base() const { return arena_; }
  // Bytes this context's arena pins (the plan's arena_bytes stat) — the unit
  // the serving engine's pool high-water accounting sums.
  int64_t arena_bytes() const { return arena_bytes_; }

  // Installs (or clears, with nullptr) the cancel token both plan schedulers
  // poll at step/wavefront boundaries during replay through this context.
  // The token is borrowed, not owned: the caller keeps it alive across every
  // RunWith. Installing the same pointer again is a no-op, so pooled contexts
  // can re-install their stream's token on every acquisition for free.
  void set_cancel_token(const CancelToken* token) { cancel_ = token; }
  const CancelToken* cancel_token() const { return cancel_; }

  // Outcome of the most recent RunWith/Run through this context. kCancelled
  // replays return a dead view; callers that installed a token check this
  // (or the token itself) before trusting the result.
  ReplayStatus replay_status() const { return replay_status_; }

 private:
  friend class ExecutionPlan;

  const ExecutionPlan* plan_ = nullptr;  // identity check only, never deref'd for state
  // Arena storage plus its 64-byte-aligned base pointer (the vector's own
  // allocation is only 16-byte aligned; the base is rounded up inside it).
  std::vector<float> arena_storage_;
  float* arena_ = nullptr;
  int64_t arena_bytes_ = 0;
  // Per-node data pointer for kFeed/kWeight nodes (weights copied from the
  // plan's compile-time bindings, feeds re-bound each Run); indexed by node id.
  std::vector<const float*> bound_;
  // Per-step PIT kernel slot (PIT steps only; empty-handle default). Owned by
  // the context so concurrent streams never race on a shared JIT handle.
  std::vector<PitKernelHandle> pit_;
  // Borrowed cancellation token (null = never cancelled) and the last
  // replay's outcome. Written by RunImpl/the schedulers, read by the owner
  // after each replay.
  const CancelToken* cancel_ = nullptr;
  ReplayStatus replay_status_ = ReplayStatus::kOk;
};

// Called after each compute step with the node id and a view of its value
// (valid until the arena slot is reused by a later Run or step). Observed
// runs always replay sequentially in step order, whatever PIT_PLAN_SCHED
// says — observers are ordering-sensitive probes.
using StepObserver = std::function<void(int node_id, ConstTensorView value)>;

class ExecutionPlan {
 public:
  // Compiles the plan. `decisions` (nullable) marks which matmul steps run
  // through PIT. The plan snapshots every node shape and attribute it needs
  // at compile time, so replay never touches the graph's node storage again —
  // an executor holding a Graph::PlanShared handle stays safe even while the
  // graph is concurrently mutated (which invalidates the cache, not this
  // plan). Only the graph's weight tensors must stay alive and in place.
  ExecutionPlan(const Graph& graph, const std::vector<MatmulDecision>* decisions);

  ExecutionPlan(const ExecutionPlan&) = delete;
  ExecutionPlan& operator=(const ExecutionPlan&) = delete;

  // Executes every step over `feeds` and returns a view of the final node's
  // value (valid until the next Run or plan destruction). `compiler` is
  // required iff the plan contains PIT steps. `observer`, when set, sees each
  // compute step's output right after the step runs (and forces the
  // sequential schedule). Not thread-safe: this entry replays through the
  // plan's built-in default context, so concurrent Runs on one plan race;
  // concurrent callers must use RunWith over distinct contexts.
  ConstTensorView Run(const std::map<std::string, Tensor>& feeds,
                      PitCompiler* compiler = nullptr, const StepObserver* observer = nullptr);
  // Pointer-feed form for callers that rebind the same feeds every call (the
  // nn/runtime layers): no tensor copies, no per-call map construction.
  ConstTensorView Run(const std::map<std::string, const Tensor*>& feeds,
                      PitCompiler* compiler = nullptr, const StepObserver* observer = nullptr);

  // Replays the plan over a caller-owned execution context. The plan itself
  // is immutable during replay, so concurrent RunWith calls over *distinct*
  // contexts are safe from any number of threads and bitwise identical to
  // single-stream replay — this is the multi-stream serving seam. Two
  // caveats: a single context must not be run concurrently with itself, and
  // PIT steps drive the passed PitCompiler, which is not thread-safe —
  // concurrent PIT streams need one compiler per stream. The returned view
  // borrows the context's arena (valid until its next RunWith).
  ConstTensorView RunWith(ExecutionContext& ctx, const std::map<std::string, Tensor>& feeds,
                          PitCompiler* compiler = nullptr,
                          const StepObserver* observer = nullptr) const;
  ConstTensorView RunWith(ExecutionContext& ctx,
                          const std::map<std::string, const Tensor*>& feeds,
                          PitCompiler* compiler = nullptr,
                          const StepObserver* observer = nullptr) const;

  const PlanStats& stats() const { return stats_; }
  const std::vector<OpCall>& steps() const { return steps_; }
  // 64-byte-aligned base of the default context's arena (alignment is
  // asserted by plan_executor_test; every ExecutionContext satisfies the same
  // contract via ExecutionContext::arena_base).
  const float* arena_base() const;

  // ---- Verifier-facing views of the compile products ----------------------
  // Read-only windows onto the immutable plan for the independent static
  // verifier (plan_verifier.{h,cc}), which re-derives every replay invariant
  // from these raw artifacts. Replay itself never goes through them.
  const std::vector<Shape>& shapes() const { return shapes_; }
  const std::vector<int>& wave_steps() const { return wave_steps_; }
  const std::vector<int>& wave_offsets() const { return wave_offsets_; }
  int64_t arena_elems() const { return arena_elems_; }
  const ValueRef& result() const { return result_; }
  struct FeedBinding {
    int node_id;
    std::string name;
  };
  const std::vector<FeedBinding>& feed_bindings() const { return feed_bindings_; }
  // Compile-time pointer bound for a kWeight node; null for any other id.
  const float* compile_binding(int node_id) const {
    return node_id >= 0 && node_id < static_cast<int>(compile_bound_.size())
               ? compile_bound_[static_cast<size_t>(node_id)]
               : nullptr;
  }

 private:
  friend class ExecutionContext;
  // Test-only mutation seam (plan_verifier.h): lets the corrupted-plan
  // negative suite violate one invariant at a time and prove the verifier
  // reports exactly that class.
  friend struct PlanCorruptor;

  template <typename FeedMap>
  ConstTensorView RunImpl(ExecutionContext& ctx, const FeedMap& feeds, PitCompiler* compiler,
                          const StepObserver* observer) const;
  void RunSequential(ExecutionContext& ctx, PitCompiler* compiler,
                     const StepObserver* observer) const;
  void RunWavefronts(ExecutionContext& ctx, PitCompiler* compiler) const;
  void BuildWavefronts();
  const float* ResolveConst(const ValueRef& ref, const ExecutionContext& ctx) const;
  float* ResolveArena(const ValueRef& ref, ExecutionContext& ctx) const;
  void Dispatch(int step_index, ExecutionContext& ctx, PitCompiler* compiler) const;

  // ---- Immutable compile products (shared, read-only during replay) --------
  // Compile-time snapshot of every node's shape, indexed by node id. Views
  // handed to kernels borrow these (stable — the plan owns them), never the
  // live graph's nodes.
  std::vector<Shape> shapes_;
  std::vector<OpCall> steps_;
  int64_t arena_elems_ = 0;  // context arena extent, elements (pre-alignment pad)
  // Wavefront partition of steps_: wave w is steps_
  // [wave_steps_[wave_offsets_[w]] .. wave_steps_[wave_offsets_[w+1]]),
  // mutually independent and ordered by step index within the wave.
  // kReshape no-op steps are excluded (they dispatch nothing; including them
  // would dilute the real steps' width budget with instant tasks).
  std::vector<int> wave_steps_;
  std::vector<int> wave_offsets_;
  // Compile-time kFeed/kWeight binding template: weights resolved at compile,
  // feed slots null. Every ExecutionContext starts as a copy of this.
  std::vector<const float*> compile_bound_;
  std::vector<FeedBinding> feed_bindings_;
  ValueRef result_;
  PlanStats stats_;

  // ---- Default execution state (the classic single-stream Run path) -------
  // Created lazily on first Run()/arena_base(): plans that are only ever
  // replayed through caller-owned contexts (multi-stream serving) never pin
  // a dead default arena.
  ExecutionContext& DefaultCtx() const;
  mutable std::unique_ptr<ExecutionContext> default_ctx_;
  mutable std::once_flag default_ctx_once_;
};

}  // namespace pit

#endif  // PIT_GRAPH_EXECUTION_PLAN_H_
