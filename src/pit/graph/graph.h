// Model-level operator graph and the PIT compilation pass (Fig. 5).
//
// The paper's workflow: given a model, PIT finds feasible PIT rules for all
// its operators offline, then at runtime detects sparsity and executes the
// pre-selected sparse kernels. This module provides the small dataflow IR
// that carries that workflow:
//   * Graph construction (inputs, weights, matmul/relu/add/mask/softmax ops)
//   * Sparsity propagation: which tensors can be dynamically sparse and why
//     (ReLU outputs, masked tensors, externally sparse inputs)
//   * The PIT pass: for every matmul with a potentially-sparse operand,
//     derive the candidate PIT rules, pick the axis whose micro-tile layout
//     the producer can provide, and record the piggybacked layout flip
//     (§3.2: flipping row<->column major at the producer's output is free)
//   * Two executors over the same graph: dense reference and PIT-sparse.
#ifndef PIT_GRAPH_GRAPH_H_
#define PIT_GRAPH_GRAPH_H_

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "pit/core/compiler.h"
#include "pit/tensor/tensor.h"

namespace pit {

class ExecutionPlan;

enum class OpKind {
  kInput,       // runtime-fed tensor
  kWeight,      // constant
  kMatmul,      // C = A * B
  kMatmulBias,  // C = A * B + bias (row-broadcast; bias is third input)
  kRelu,
  kAdd,
  kMask,     // C = A where mask != 0 else 0 (mask is second input)
  kSoftmax,  // row-wise over the last axis; optional 0/1 mask second input
             // (rank-2 mask broadcasts over a rank-3 input's leading axis)
  // Transformer-block ops (planned attention + layernorm):
  kLayerNorm,    // last-axis layernorm; inputs: x, gamma, beta (fattr = eps)
  kScale,        // C = A * fattr (element-wise constant scale)
  kTranspose,    // axis-swap copy; swaps axes (iattr0, iattr1)
  kReshape,      // zero-cost shape reinterpretation (aliases its input)
  kBatchMatmul,  // C[b,m,n] = A[b,m,k] * B[b,k,n] (per-head batched GEMM)
};
const char* OpKindName(OpKind kind);

// Why a tensor may be dynamically sparse (the paper's Fig. 2 taxonomy).
enum class SparsitySource {
  kNone,
  kExternal,    // declared sparse input (padding, routing, pruning mask)
  kActivation,  // ReLU output
  kMasked,      // dynamic mask applied
  kPropagated,  // inherited through a sparsity-preserving op
};
const char* SparsitySourceName(SparsitySource source);

struct GraphNode {
  int id = -1;
  OpKind kind = OpKind::kInput;
  std::string name;
  std::vector<int> inputs;
  Shape shape;

  // Small op attributes: fattr is kScale's factor / kLayerNorm's epsilon;
  // iattr0/iattr1 are kTranspose's swapped axes.
  float fattr = 0.0f;
  int iattr0 = 0;
  int iattr1 = 1;

  // Sparsity annotation (filled by PropagateSparsity).
  SparsitySource sparsity = SparsitySource::kNone;
  double expected_sparsity = 0.0;

  bool MaybeSparse() const { return sparsity != SparsitySource::kNone; }
};

// Per-matmul decision recorded by the PIT pass.
struct MatmulDecision {
  int node_id = -1;
  bool use_pit = false;
  int sparse_operand = -1;      // 0 = A, 1 = B (only A supported today)
  MatmulAxis axis = MatmulAxis::kM;
  // The producer must emit the operand in this layout so the micro-tile is
  // non-contiguous on the PIT-axis; the flip is piggybacked there (≈ free).
  bool piggyback_layout_flip = false;
  std::string reason;
};

class Graph {
 public:
  Graph();
  ~Graph();
  // Moving a graph drops its cached plans (they hold pointers into the old
  // object); they recompile lazily on the next Execute/Run. Copying is
  // disabled — graphs are built once and shared by const reference.
  Graph(Graph&& other) noexcept;
  Graph& operator=(Graph&& other) noexcept;
  Graph(const Graph&) = delete;
  Graph& operator=(const Graph&) = delete;

  int AddInput(std::string name, Shape shape, double expected_sparsity = 0.0);
  int AddWeight(std::string name, Tensor value);
  // Non-owning weight: the caller guarantees `value` outlives the graph.
  // Lets modules plan over their existing parameters without copying them.
  int AddWeightRef(std::string name, const Tensor* value);
  int AddMatmul(std::string name, int a, int b);
  int AddMatmulBias(std::string name, int a, int b, int bias);
  int AddRelu(std::string name, int x);
  int AddAdd(std::string name, int a, int b);
  int AddMask(std::string name, int x, int mask);
  // Row-wise softmax; `mask` >= 0 adds a 0/1 mask input excluded from the
  // softmax (a rank-2 [t, t] mask under a rank-3 [heads, t, t] input is
  // broadcast over the head axis).
  int AddSoftmax(std::string name, int x, int mask = -1);
  // LayerNorm over the last axis; gamma/beta are rank-1 weights of that axis.
  int AddLayerNorm(std::string name, int x, int gamma, int beta, float eps = 1e-5f);
  int AddScale(std::string name, int x, float factor);
  // Axis-swap copy: rank-2 swaps (0, 1); rank-3 swaps (0, 1) or (1, 2).
  int AddTranspose(std::string name, int x, int axis0, int axis1);
  // Zero-cost reinterpretation to `shape` (same element count). The planned
  // executor aliases the input's storage — no copy, no arena block.
  int AddReshape(std::string name, int x, Shape shape);
  int AddBatchMatmul(std::string name, int a, int b);

  const GraphNode& node(int id) const { return nodes_.at(static_cast<size_t>(id)); }
  int size() const { return static_cast<int>(nodes_.size()); }
  const Tensor& weight(int id) const;

  // Annotates every node's sparsity source/ratio (forward dataflow).
  void PropagateSparsity();

  // The PIT pass: one decision per matmul node. `min_sparsity` is the
  // fall-back threshold below which the pass keeps the dense kernel.
  std::vector<MatmulDecision> PitPass(double min_sparsity = 0.3) const;

  // Compiles — or returns the cached — execution plan for `decisions`
  // (nullptr = dense). The plan and its arena persist on the graph, so
  // repeated Execute/Run calls replay kernel dispatches with no per-call IR
  // walk and ~zero allocations. Callers driving the plan directly must
  // serialize Runs themselves (one arena per plan), and the reference is
  // invalidated by mutating the graph or by compiling many further decision
  // sets (the cache keeps the most recent 8); re-fetch it when in doubt.
  ExecutionPlan& Plan(const std::vector<MatmulDecision>* decisions = nullptr) const;

  // As Plan(), but the returned handle co-owns the compiled plan: it stays
  // valid — and its Run keeps producing the plan's compiled-time semantics —
  // even if a concurrent AddX mutation or cache eviction drops the plan from
  // this graph's cache. Long-lived executors (the nn/runtime layers) must use
  // this form; the reference form above is only safe while the graph is known
  // not to change.
  std::shared_ptr<ExecutionPlan> PlanShared(
      const std::vector<MatmulDecision>* decisions = nullptr) const;

  // Executes the graph on `feeds` (name -> tensor for every kInput) through
  // the cached plan. decisions == nullptr runs the dense reference; otherwise
  // matmuls flagged use_pit run through `compiler`'s sparse path. Returns
  // every node's value (inputs and weights included), like the old eager
  // executor — intermediates are copied out of the arena as the plan runs.
  // Exception: a dense matmul whose only consumer is a ReLU is collapsed into
  // one fused-epilogue step at plan compile, so the elided matmul node has no
  // materialized value and is absent from the returned map (the ReLU's value
  // is present and bitwise equal to the unfused composition).
  std::map<int, Tensor> Execute(const std::map<std::string, Tensor>& feeds,
                                const std::vector<MatmulDecision>* decisions = nullptr,
                                PitCompiler* compiler = nullptr) const;

  // Convenience: output of the last node (no per-node copies).
  Tensor Run(const std::map<std::string, Tensor>& feeds,
             const std::vector<MatmulDecision>* decisions = nullptr,
             PitCompiler* compiler = nullptr) const;

 private:
  struct PlanCache;
  struct PlanCacheEntry;

  int Add(GraphNode node);
  std::shared_ptr<PlanCacheEntry> EntryFor(const std::vector<MatmulDecision>* decisions) const;

  std::vector<GraphNode> nodes_;
  std::map<int, Tensor> weights_;
  std::map<int, const Tensor*> weight_refs_;
  std::unique_ptr<PlanCache> plans_;  // lazily compiled, guarded internally
};

// Builds the FFN block of the paper's OPT experiment: x -> matmul(W_up) ->
// relu -> matmul(W_down). The ReLU output is the dynamic-sparsity source.
Graph BuildFfnGraph(int64_t tokens, int64_t hidden, int64_t ffn_hidden, Rng& rng);

}  // namespace pit

#endif  // PIT_GRAPH_GRAPH_H_
