#include "pit/graph/plan_verifier.h"

#include <algorithm>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "pit/common/check.h"

namespace pit {

namespace {

// The arena alignment contract, restated independently of the planner: one
// 64-byte cache line of floats. The planner's own kAlignElems lives in
// execution_plan.cc; the verifier re-declares the *contract* (concurrent
// steps must never share a line) rather than importing the planner's
// constant, so a planner-side alignment regression cannot silently relax the
// check along with the code under test.
constexpr int64_t kLineElems = 64 / static_cast<int64_t>(sizeof(float));

// Half-open element interval in the arena (verifier-local; deliberately not
// the planner's).
struct Span {
  int64_t lo = 0;
  int64_t hi = 0;  // lo == hi: empty
  bool Overlaps(const Span& o) const { return lo < o.hi && o.lo < hi; }
  Span Intersect(const Span& o) const {
    return {std::max(lo, o.lo), std::min(hi, o.hi)};
  }
};

// Per-step arena footprint re-derived straight from the compiled ValueRefs.
// Compiled refs are already storage-root resolved (a kReshape's out keeps its
// input's node_id/offset and only changes shape_id), so plain interval
// arithmetic is exact — no alias chasing.
struct Footprint {
  bool dispatched = false;  // false: kReshape no-op (nothing read or written)
  Span write;
  Span reads[3];
  int num_reads = 0;
};

// Expected operand count per dispatched kind; {lo, hi} inclusive.
void ExpectedInputs(OpKind kind, int* lo, int* hi) {
  switch (kind) {
    case OpKind::kInput:
    case OpKind::kWeight:
      *lo = *hi = 0;
      break;
    case OpKind::kRelu:
    case OpKind::kScale:
    case OpKind::kTranspose:
    case OpKind::kReshape:
      *lo = *hi = 1;
      break;
    case OpKind::kMatmul:
    case OpKind::kAdd:
    case OpKind::kMask:
    case OpKind::kBatchMatmul:
      *lo = *hi = 2;
      break;
    case OpKind::kSoftmax:
      *lo = 1;
      *hi = 2;  // optional attention mask operand
      break;
    case OpKind::kMatmulBias:
    case OpKind::kLayerNorm:
      *lo = *hi = 3;
      break;
  }
}

class Verifier {
 public:
  explicit Verifier(const ExecutionPlan& plan) : plan_(plan) {}

  PlanVerifyReport Run() {
    CheckStructure();
    BuildFootprints();
    CheckArenaRefs();
    CheckProducersAndBindings();
    CheckWavePartition();
    RunDependencyOracle();
    CheckClobberedReads();
    CheckStats();
    report_.steps_checked = static_cast<int>(plan_.steps().size());
    return std::move(report_);
  }

 private:
  void Add(PlanViolationKind kind, int step_a, int step_b, Span bytes, std::string message) {
    ++report_.violations_total;
    if (static_cast<int64_t>(report_.violations.size()) >= PlanVerifyReport::kMaxRecorded) {
      return;
    }
    PlanViolation v;
    v.kind = kind;
    v.step_a = step_a;
    v.step_b = step_b;
    v.wave_a = step_a >= 0 && step_a < static_cast<int>(wave_of_.size())
                   ? wave_of_[static_cast<size_t>(step_a)]
                   : -1;
    v.wave_b = step_b >= 0 && step_b < static_cast<int>(wave_of_.size())
                   ? wave_of_[static_cast<size_t>(step_b)]
                   : -1;
    v.byte_lo = bytes.lo * static_cast<int64_t>(sizeof(float));
    v.byte_hi = bytes.hi * static_cast<int64_t>(sizeof(float));
    v.message = std::move(message);
    report_.violations.push_back(std::move(v));
  }

  bool ShapeIdOk(int id) const {
    return id >= 0 && id < static_cast<int>(plan_.shapes().size());
  }

  int64_t Elems(int shape_id) const {
    return NumElements(plan_.shapes()[static_cast<size_t>(shape_id)]);
  }

  // Every ref's ids must index the shape table before any interval math can
  // trust them; refs that fail here are excluded from later passes.
  bool RefIdsOk(const ValueRef& ref) const {
    return ShapeIdOk(ref.node_id) && ShapeIdOk(ref.shape_id);
  }

  // ---- (A) per-step structural sanity --------------------------------------
  void CheckStructure() {
    const auto& steps = plan_.steps();
    for (int s = 0; s < static_cast<int>(steps.size()); ++s) {
      const OpCall& c = steps[static_cast<size_t>(s)];
      if (c.kind == OpKind::kInput || c.kind == OpKind::kWeight) {
        Add(PlanViolationKind::kMalformedStep, s, -1, {},
            "binding kind emitted as a dispatch step");
        continue;
      }
      if (!ShapeIdOk(c.node_id) || !RefIdsOk(c.out)) {
        Add(PlanViolationKind::kMalformedStep, s, -1, {}, "node/shape id out of range");
        continue;
      }
      int lo = 0;
      int hi = 0;
      ExpectedInputs(c.kind, &lo, &hi);
      if (c.num_in < lo || c.num_in > hi) {
        Add(PlanViolationKind::kMalformedStep, s, -1, {},
            "operand count " + std::to_string(c.num_in) + " outside [" + std::to_string(lo) +
                ", " + std::to_string(hi) + "] for kind");
        continue;
      }
      bool ids_ok = true;
      for (int i = 0; i < c.num_in; ++i) {
        if (!RefIdsOk(c.in[i])) {
          Add(PlanViolationKind::kMalformedStep, s, -1, {},
              "input " + std::to_string(i) + " node/shape id out of range");
          ids_ok = false;
        }
      }
      if (!ids_ok) {
        continue;
      }
      const bool is_matmul = c.kind == OpKind::kMatmul || c.kind == OpKind::kMatmulBias;
      if (c.use_pit && !is_matmul) {
        Add(PlanViolationKind::kMalformedStep, s, -1, {}, "use_pit on a non-matmul step");
      }
      if (c.fuse_relu && (!is_matmul || c.use_pit)) {
        // The fusion pass only collapses dense matmul(+bias)+ReLU pairs; a
        // fused PIT step would route the epilogue around the sparse kernel.
        Add(PlanViolationKind::kFusedStep, s, -1, {},
            "fuse_relu on a non-matmul or PIT step");
      }
      if (c.kind == OpKind::kReshape) {
        // Pure alias: same storage location, new shape id.
        if (c.out.loc != c.in[0].loc || c.out.node_id != c.in[0].node_id ||
            c.out.offset != c.in[0].offset) {
          Add(PlanViolationKind::kMalformedStep, s, -1, {},
              "reshape output does not alias its input's storage");
        }
        if (c.inplace || c.use_pit || c.fuse_relu) {
          Add(PlanViolationKind::kMalformedStep, s, -1, {}, "reshape with kernel flags set");
        }
        continue;
      }
      if (c.out.loc != ValueLoc::kArena) {
        Add(PlanViolationKind::kMalformedStep, s, -1, {},
            "dispatched step writes a non-arena location");
        continue;
      }
      if (c.inplace) {
        bool aliases_input = false;
        for (int i = 0; i < c.num_in; ++i) {
          aliases_input = aliases_input || (c.in[i].loc == ValueLoc::kArena &&
                                            c.in[i].offset == c.out.offset);
        }
        if (!aliases_input) {
          Add(PlanViolationKind::kMalformedStep, s, -1, {},
              "inplace step whose output aliases no input block");
        }
      }
    }
  }

  // ---- footprints ----------------------------------------------------------
  void BuildFootprints() {
    const auto& steps = plan_.steps();
    fp_.assign(steps.size(), Footprint{});
    for (size_t s = 0; s < steps.size(); ++s) {
      const OpCall& c = steps[s];
      if (c.kind == OpKind::kReshape || c.kind == OpKind::kInput || c.kind == OpKind::kWeight) {
        continue;
      }
      Footprint& f = fp_[s];
      f.dispatched = true;
      if (c.out.loc == ValueLoc::kArena && RefIdsOk(c.out)) {
        f.write = {c.out.offset, c.out.offset + Elems(c.out.shape_id)};
      }
      for (int i = 0; i < c.num_in && i < 3; ++i) {
        const ValueRef& r = c.in[i];
        if (r.loc == ValueLoc::kArena && RefIdsOk(r)) {
          f.reads[f.num_reads++] = {r.offset, r.offset + Elems(r.shape_id)};
        }
      }
    }
  }

  // ---- (B) arena bounds + alignment ----------------------------------------
  void CheckArenaRef(int s, const ValueRef& ref, const char* role) {
    if (ref.loc != ValueLoc::kArena || !RefIdsOk(ref)) {
      return;
    }
    const int64_t elems = Elems(ref.shape_id);
    const Span span{ref.offset, ref.offset + elems};
    if (ref.offset < 0 || ref.offset + elems > plan_.arena_elems()) {
      Add(PlanViolationKind::kArenaOutOfBounds, s, -1, span,
          std::string(role) + " block outside the arena extent (" +
              std::to_string(plan_.arena_elems() * static_cast<int64_t>(sizeof(float))) +
              " bytes)");
    }
    if (ref.offset % kLineElems != 0) {
      Add(PlanViolationKind::kMisalignedOffset, s, -1, span,
          std::string(role) + " offset not 64-byte aligned");
    }
  }

  void CheckArenaRefs() {
    const auto& steps = plan_.steps();
    std::set<int64_t> block_offsets;
    for (int s = 0; s < static_cast<int>(steps.size()); ++s) {
      const OpCall& c = steps[static_cast<size_t>(s)];
      if (c.kind == OpKind::kReshape) {
        continue;  // aliases were checked against their defining refs
      }
      CheckArenaRef(s, c.out, "output");
      if (c.out.loc == ValueLoc::kArena) {
        block_offsets.insert(c.out.offset);
      }
      for (int i = 0; i < c.num_in && i < 3; ++i) {
        CheckArenaRef(s, c.in[i], "input");
      }
    }
    CheckArenaRef(-1, plan_.result(), "result");
    report_.blocks_checked = static_cast<int>(block_offsets.size());
  }

  // ---- (C) producers, dangling storage, feed/weight bindings ---------------
  void CheckProducersAndBindings() {
    const auto& steps = plan_.steps();
    const int num_nodes = static_cast<int>(plan_.shapes().size());
    // Storage producer: the dispatched step that writes node_id's arena
    // block. A fused matmul+relu pair elides the matmul node entirely — no
    // step produces it, so any surviving reference to it is dangling (the
    // fused-step value-map leak the verifier exists to catch).
    producer_of_.assign(static_cast<size_t>(num_nodes), -1);
    for (int s = 0; s < static_cast<int>(steps.size()); ++s) {
      const OpCall& c = steps[static_cast<size_t>(s)];
      if (!fp_[static_cast<size_t>(s)].dispatched || c.out.loc != ValueLoc::kArena ||
          !RefIdsOk(c.out)) {
        continue;
      }
      int& slot = producer_of_[static_cast<size_t>(c.out.node_id)];
      if (slot >= 0) {
        Add(PlanViolationKind::kFusedStep, slot, s, {},
            "two steps claim node " + std::to_string(c.out.node_id) + " as output");
      }
      slot = s;
    }

    // Feed bindings: exactly one per distinct feed node, unique names.
    std::set<int> bound_feeds;
    std::set<std::string> bound_names;
    for (const auto& b : plan_.feed_bindings()) {
      if (!ShapeIdOk(b.node_id) || !bound_feeds.insert(b.node_id).second) {
        Add(PlanViolationKind::kFeedBinding, -1, -1, {},
            "feed binding \"" + b.name + "\" has a duplicate or out-of-range node");
      }
      if (!bound_names.insert(b.name).second) {
        Add(PlanViolationKind::kFeedBinding, -1, -1, {},
            "duplicate feed binding name \"" + b.name + "\"");
      }
    }

    auto check_read = [&](int s, const ValueRef& r, const char* role) {
      if (!RefIdsOk(r)) {
        return;
      }
      switch (r.loc) {
        case ValueLoc::kFeed:
          if (bound_feeds.count(r.node_id) == 0) {
            Add(PlanViolationKind::kFeedBinding, s, -1, {},
                std::string(role) + " reads feed node " + std::to_string(r.node_id) +
                    " that no binding covers");
          }
          break;
        case ValueLoc::kWeight:
          if (plan_.compile_binding(r.node_id) == nullptr) {
            Add(PlanViolationKind::kFeedBinding, s, -1, {},
                std::string(role) + " reads weight node " + std::to_string(r.node_id) +
                    " with no compile-time binding");
          }
          break;
        case ValueLoc::kArena: {
          const int prod = producer_of_[static_cast<size_t>(r.node_id)];
          const Span span{r.offset, r.offset + Elems(r.shape_id)};
          if (prod < 0 || (s >= 0 && prod >= s)) {
            Add(PlanViolationKind::kDanglingStorage, s, prod, span,
                std::string(role) + " reads arena storage of node " +
                    std::to_string(r.node_id) + " that no earlier step produces");
            break;
          }
          const Span& produced = fp_[static_cast<size_t>(prod)].write;
          if (span.lo < produced.lo || span.hi > produced.hi) {
            Add(PlanViolationKind::kDanglingStorage, s, prod, span,
                std::string(role) + " reads outside node " + std::to_string(r.node_id) +
                    "'s produced block");
          }
          break;
        }
      }
    };

    for (int s = 0; s < static_cast<int>(steps.size()); ++s) {
      const OpCall& c = steps[static_cast<size_t>(s)];
      if (c.kind == OpKind::kInput || c.kind == OpKind::kWeight) {
        continue;
      }
      // Reshape inputs resolve like reads (the alias must view produced
      // storage) but carry no runtime access; dispatched inputs are reads.
      for (int i = 0; i < c.num_in && i < 3; ++i) {
        check_read(s, c.in[i], "input");
      }
    }
    // The result ref must resolve after the whole step list ran.
    check_read(static_cast<int>(steps.size()), plan_.result(), "result");
  }

  // ---- (D) wavefront partition shape ---------------------------------------
  void CheckWavePartition() {
    const auto& steps = plan_.steps();
    const auto& offsets = plan_.wave_offsets();
    const auto& wave_steps = plan_.wave_steps();
    wave_of_.assign(steps.size(), -1);
    if (offsets.empty() || offsets.front() != 0 ||
        offsets.back() != static_cast<int>(wave_steps.size())) {
      Add(PlanViolationKind::kWavePartition, -1, -1, {},
          "wave offset table does not span the wave step list");
      return;
    }
    const int num_waves = static_cast<int>(offsets.size()) - 1;
    report_.waves_checked = num_waves;
    std::vector<char> seen(steps.size(), 0);
    for (int w = 0; w < num_waves; ++w) {
      const int begin = offsets[static_cast<size_t>(w)];
      const int end = offsets[static_cast<size_t>(w) + 1];
      if (end <= begin) {
        Add(PlanViolationKind::kWavePartition, -1, -1, {},
            "wave " + std::to_string(w) + " is empty or offsets decrease");
        continue;
      }
      for (int i = begin; i < end; ++i) {
        const int s = wave_steps[static_cast<size_t>(i)];
        if (s < 0 || s >= static_cast<int>(steps.size())) {
          Add(PlanViolationKind::kWavePartition, s, -1, {},
              "wave " + std::to_string(w) + " lists an out-of-range step");
          continue;
        }
        if (!fp_[static_cast<size_t>(s)].dispatched) {
          Add(PlanViolationKind::kWavePartition, s, -1, {},
              "wave " + std::to_string(w) + " lists a reshape no-op step");
          continue;
        }
        if (seen[static_cast<size_t>(s)]) {
          Add(PlanViolationKind::kWavePartition, s, -1, {},
              "step listed in more than one wave slot");
          continue;
        }
        seen[static_cast<size_t>(s)] = 1;
        wave_of_[static_cast<size_t>(s)] = w;
        if (i > begin && wave_steps[static_cast<size_t>(i) - 1] >= s) {
          Add(PlanViolationKind::kWavePartition, s, -1, {},
              "wave " + std::to_string(w) + " not ascending in step order");
        }
      }
    }
    for (size_t s = 0; s < steps.size(); ++s) {
      if (fp_[s].dispatched && !seen[s]) {
        Add(PlanViolationKind::kWavePartition, static_cast<int>(s), -1, {},
            "dispatched step missing from every wave");
      }
    }
  }

  // ---- (E) O(steps^2) dependency oracle vs. the wave ordering --------------
  void RunDependencyOracle() {
    const auto& steps = plan_.steps();
    const int n = static_cast<int>(steps.size());
    for (int t = 1; t < n; ++t) {
      const Footprint& ft = fp_[static_cast<size_t>(t)];
      if (!ft.dispatched) {
        continue;
      }
      for (int s = 0; s < t; ++s) {
        const Footprint& fs = fp_[static_cast<size_t>(s)];
        if (!fs.dispatched) {
          continue;
        }
        ++report_.oracle_pairs;
        // Hazard between the pair: WAW on the writes, RAW/WAR through either
        // side's reads against the other's write.
        Span clash;
        bool conflict = false;
        if (fs.write.Overlaps(ft.write)) {
          conflict = true;
          clash = fs.write.Intersect(ft.write);
        }
        for (int i = 0; !conflict && i < ft.num_reads; ++i) {
          if (fs.write.Overlaps(ft.reads[i])) {
            conflict = true;
            clash = fs.write.Intersect(ft.reads[i]);
          }
        }
        for (int i = 0; !conflict && i < fs.num_reads; ++i) {
          if (ft.write.Overlaps(fs.reads[i])) {
            conflict = true;
            clash = ft.write.Intersect(fs.reads[i]);
          }
        }
        const int ws = wave_of_[static_cast<size_t>(s)];
        const int wt = wave_of_[static_cast<size_t>(t)];
        if (conflict) {
          ++report_.oracle_edges;
          if (ws < 0 || wt < 0) {
            continue;  // already reported by the partition pass
          }
          if (ws == wt) {
            Add(PlanViolationKind::kConcurrentHazard, s, t, clash,
                "steps of one wave touch intersecting arena bytes");
          } else if (ws > wt) {
            Add(PlanViolationKind::kMissingHazardEdge, s, t, clash,
                "wave ordering inverts a dependency edge");
          }
        } else if (steps[static_cast<size_t>(s)].use_pit &&
                   steps[static_cast<size_t>(t)].use_pit && ws >= 0 && wt >= 0 && ws >= wt) {
          // The PitCompiler mutates shared cache/counter state: PIT steps
          // must replay in a strict total order even when their arena
          // footprints are disjoint.
          Add(PlanViolationKind::kPitOrder, s, t, {},
              "PIT steps not strictly ordered by the wave partition");
        }
      }
    }
  }

  // ---- (F) claimed liveness: no write lands between producer and reader ----
  void CheckClobberedReads() {
    const auto& steps = plan_.steps();
    const int n = static_cast<int>(steps.size());
    auto check_interval = [&](int producer, int reader, const Span& span, int node_id) {
      for (int u = producer + 1; u < reader && u < n; ++u) {
        const Footprint& fu = fp_[static_cast<size_t>(u)];
        if (!fu.dispatched || !fu.write.Overlaps(span)) {
          continue;
        }
        // The reader itself may legally overwrite its input (in-place); any
        // other intervening writer clobbers a block the planner claimed live.
        Add(PlanViolationKind::kClobberedRead, u, reader, fu.write.Intersect(span),
            "step overwrites node " + std::to_string(node_id) +
                "'s bytes before step " + std::to_string(reader) + " reads them");
      }
    };
    auto check_reads_of = [&](int reader, const OpCall& c) {
      for (int i = 0; i < c.num_in && i < 3; ++i) {
        const ValueRef& r = c.in[i];
        if (r.loc != ValueLoc::kArena || !RefIdsOk(r)) {
          continue;
        }
        const int prod = producer_of_[static_cast<size_t>(r.node_id)];
        if (prod < 0 || prod >= reader) {
          continue;  // dangling: reported by (C)
        }
        check_interval(prod, reader, {r.offset, r.offset + Elems(r.shape_id)}, r.node_id);
      }
    };
    for (int t = 0; t < n; ++t) {
      const OpCall& c = steps[static_cast<size_t>(t)];
      if (fp_[static_cast<size_t>(t)].dispatched) {
        check_reads_of(t, c);
      }
    }
    // The result block must survive from its producer to the end of replay.
    const ValueRef& res = plan_.result();
    if (res.loc == ValueLoc::kArena && RefIdsOk(res)) {
      const int prod = producer_of_[static_cast<size_t>(res.node_id)];
      if (prod >= 0) {
        check_interval(prod, n, {res.offset, res.offset + Elems(res.shape_id)}, res.node_id);
      }
    }
  }

  // ---- (G) stats vs. re-derived counts -------------------------------------
  void CheckStats() {
    const auto& steps = plan_.steps();
    const PlanStats& st = plan_.stats();
    int num_inplace = 0;
    int num_pit = 0;
    int num_fused = 0;
    for (const OpCall& c : steps) {
      num_inplace += c.inplace ? 1 : 0;
      num_pit += c.use_pit ? 1 : 0;
      num_fused += c.fuse_relu ? 1 : 0;
    }
    auto expect = [&](int64_t got, int64_t claimed, const char* what) {
      if (got != claimed) {
        Add(PlanViolationKind::kStatsMismatch, -1, -1, {},
            std::string(what) + ": stats claim " + std::to_string(claimed) +
                ", plan re-derives " + std::to_string(got));
      }
    };
    expect(static_cast<int64_t>(steps.size()), st.num_steps, "num_steps");
    expect(num_inplace, st.num_inplace, "num_inplace");
    expect(num_pit, st.num_pit_steps, "num_pit_steps");
    expect(num_fused, st.num_fused, "num_fused");
    expect(plan_.arena_elems() * static_cast<int64_t>(sizeof(float)), st.arena_bytes,
           "arena_bytes");
    const auto& offsets = plan_.wave_offsets();
    if (!offsets.empty()) {
      const int num_waves = static_cast<int>(offsets.size()) - 1;
      int max_width = 0;
      for (int w = 0; w < num_waves; ++w) {
        max_width = std::max(max_width,
                             offsets[static_cast<size_t>(w) + 1] - offsets[static_cast<size_t>(w)]);
      }
      expect(num_waves, st.num_wavefronts, "num_wavefronts");
      expect(max_width, st.max_wavefront_width, "max_wavefront_width");
    }
  }

  const ExecutionPlan& plan_;
  PlanVerifyReport report_;
  std::vector<Footprint> fp_;
  std::vector<int> producer_of_;  // node id -> producing step (-1: none)
  std::vector<int> wave_of_;      // step -> wave id (-1: reshape / unlisted)
};

}  // namespace

const char* PlanViolationKindName(PlanViolationKind kind) {
  switch (kind) {
    case PlanViolationKind::kMalformedStep:
      return "malformed-step";
    case PlanViolationKind::kArenaOutOfBounds:
      return "arena-out-of-bounds";
    case PlanViolationKind::kMisalignedOffset:
      return "misaligned-offset";
    case PlanViolationKind::kWavePartition:
      return "wave-partition";
    case PlanViolationKind::kConcurrentHazard:
      return "concurrent-hazard";
    case PlanViolationKind::kMissingHazardEdge:
      return "missing-hazard-edge";
    case PlanViolationKind::kClobberedRead:
      return "clobbered-read";
    case PlanViolationKind::kDanglingStorage:
      return "dangling-storage";
    case PlanViolationKind::kFeedBinding:
      return "feed-binding";
    case PlanViolationKind::kPitOrder:
      return "pit-order";
    case PlanViolationKind::kFusedStep:
      return "fused-step";
    case PlanViolationKind::kStatsMismatch:
      return "stats-mismatch";
  }
  return "unknown";
}

bool PlanVerifyReport::Has(PlanViolationKind kind) const {
  for (const PlanViolation& v : violations) {
    if (v.kind == kind) {
      return true;
    }
  }
  return false;
}

std::string PlanVerifyReport::ToString() const {
  std::ostringstream os;
  os << "plan verify: " << violations_total << " violation(s) over " << steps_checked
     << " steps, " << waves_checked << " waves, " << blocks_checked << " blocks ("
     << oracle_pairs << " oracle pairs, " << oracle_edges << " edges)";
  for (const PlanViolation& v : violations) {
    os << "\n  [" << PlanViolationKindName(v.kind) << "]";
    if (v.step_a >= 0) {
      os << " step " << v.step_a;
      if (v.wave_a >= 0) {
        os << " (wave " << v.wave_a << ")";
      }
    }
    if (v.step_b >= 0) {
      os << " vs step " << v.step_b;
      if (v.wave_b >= 0) {
        os << " (wave " << v.wave_b << ")";
      }
    }
    if (v.byte_lo != v.byte_hi) {
      os << " bytes [" << v.byte_lo << ", " << v.byte_hi << ")";
    }
    os << ": " << v.message;
  }
  if (violations_total > static_cast<int64_t>(violations.size())) {
    os << "\n  ... " << (violations_total - static_cast<int64_t>(violations.size()))
       << " more violation(s) suppressed";
  }
  return os.str();
}

PlanVerifyReport VerifyPlan(const ExecutionPlan& plan) { return Verifier(plan).Run(); }

void VerifyPlanOrDie(const ExecutionPlan& plan, const char* what) {
  const PlanVerifyReport report = VerifyPlan(plan);
  PIT_CHECK(report.ok()) << "PIT_VERIFY_PLAN: " << what
                         << " failed plan verification\n" << report.ToString();
}

}  // namespace pit
