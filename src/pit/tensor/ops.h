// Reference dense operators. These are the "ground truth" implementations that
// every sparse execution path in the repository is validated against, and the
// functional building blocks of the nn substrate.
#ifndef PIT_TENSOR_OPS_H_
#define PIT_TENSOR_OPS_H_

#include "pit/tensor/tensor.h"

namespace pit {

// C[m,n] = A[m,k] * B[k,n].
Tensor MatMul(const Tensor& a, const Tensor& b);
// C[b,m,n] = A[b,m,k] * B[b,k,n].
Tensor BatchMatMul(const Tensor& a, const Tensor& b);
// C[m,n] = A[m,k] * B[k,n] with an additive row-broadcast bias[n].
Tensor MatMulBias(const Tensor& a, const Tensor& b, const Tensor& bias);

Tensor Add(const Tensor& a, const Tensor& b);
Tensor Mul(const Tensor& a, const Tensor& b);  // element-wise (Hadamard)
Tensor Relu(const Tensor& a);
Tensor Gelu(const Tensor& a);  // tanh approximation
Tensor Transpose2D(const Tensor& a);

// Row-wise softmax over the last axis of a 2-D tensor. Entries where
// mask (same shape, 0/1) is zero are excluded (set to -inf before softmax);
// pass nullptr for an unmasked softmax.
Tensor Softmax(const Tensor& a, const Tensor* mask = nullptr);

// out = a * factor, element-wise.
Tensor Scale(const Tensor& a, float factor);

// LayerNorm over the last axis with per-feature gain/bias.
Tensor LayerNorm(const Tensor& a, const Tensor& gamma, const Tensor& beta, float eps = 1e-5f);

// Sum over axis 1 of a 2-D tensor: out[m] = sum_k a[m,k].
Tensor ReduceSumAxis1(const Tensor& a);

// out[i,j] = a[i,j] if mask[i,j] != 0 else 0 — the paper's dynamic masking.
Tensor ApplyMask(const Tensor& a, const Tensor& mask);

// 2-D convolution, NCHW activations x FCHW weights, stride 1, no padding.
// Used by the expr tests to exercise the non-PIT axes of convolution.
// Reference backend: the naive 6-loop kernel (the oracle). Blocked backend:
// per-image im2col into a reused scratch panel + one GemmF32 per image, whose
// k order (channel, kh, kw) matches the naive accumulation order exactly.
Tensor Conv2D(const Tensor& input, const Tensor& weight);

// ---- View-based kernels ----------------------------------------------------
//
// The planned graph executor dispatches these: identical math to the Tensor
// wrappers above (the wrappers call them), but the caller owns the output
// storage — typically a slice of the execution arena. Output views must not
// alias inputs except where noted; every function fully defines the output
// (MatMul*Into zero-fill before accumulating, SoftmaxInto writes zeros for
// fully-masked rows).
void MatMulInto(ConstTensorView a, ConstTensorView b, TensorView c);
void MatMulBiasInto(ConstTensorView a, ConstTensorView b, ConstTensorView bias, TensorView c);
// Fused matmul(+bias)+relu — the planned executor's fused-epilogue step for a
// matmul whose only consumer is a ReLU. Bitwise identical to the separate
// MatMul(Bias)Into followed by ReluInto for either backend: the blocked GEMM
// clamps in its (final-panel) epilogue with the exact ReluInto formula, the
// reference path runs the two scalar passes verbatim.
void MatMulReluInto(ConstTensorView a, ConstTensorView b, TensorView c);
void MatMulBiasReluInto(ConstTensorView a, ConstTensorView b, ConstTensorView bias,
                        TensorView c);
// C[b,m,n] = A[b,m,k] * B[b,k,n], one independent GEMM per batch slice.
// `c` must not alias the inputs.
void BatchMatMulInto(ConstTensorView a, ConstTensorView b, TensorView c);
// Element-wise kernels; `c` may alias any input (read-then-write per element).
void AddInto(ConstTensorView a, ConstTensorView b, TensorView c);
void ReluInto(ConstTensorView a, TensorView c);
void ApplyMaskInto(ConstTensorView a, ConstTensorView mask, TensorView c);
void ScaleInto(ConstTensorView a, float factor, TensorView c);
// Axis-swap copy. Supported: rank-2 with (axis0, axis1) == (0, 1); rank-3
// with (0, 1) ([a,b,c] -> [b,a,c], the head split/merge move) or (1, 2)
// (batched 2-D transpose). `c` must not alias `a`.
void TransposeInto(ConstTensorView a, int axis0, int axis1, TensorView c);
// Row-wise softmax over the last axis of a rank-2 or rank-3 tensor; `mask`
// may be null. A rank-2 mask under a rank-3 input broadcasts over axis 0
// (one [tokens, tokens] attention mask shared by every head). `c` may alias
// `a` but must not alias the mask.
void SoftmaxInto(ConstTensorView a, const ConstTensorView* mask, TensorView c);
// Masked-softmax span skipping switch. When enabled (default) and the blocked
// backend is active, each masked row is processed as its maximal runs of
// unmasked columns: fully-masked spans skip the max/exp/sum work entirely and
// write zeros (block-diagonal ragged-batch masks zero most of every row).
// Skipping is exact — a masked column contributes -inf to the max and +0.0f
// to the sum, both identities — so the scalar skip path is bitwise equal to
// the unskipped scalar loop. Under a SIMD tier the vector kernels run
// span-relative (lanes grouped from each span's start), which keeps a packed
// request row bitwise identical to the same request served 1:1 at offset 0.
// The switch exists so tests/benches can pin the unskipped oracle.
bool SoftmaxMaskSkipEnabled();
void SetSoftmaxMaskSkip(bool enabled);

class ScopedSoftmaxMaskSkip {
 public:
  explicit ScopedSoftmaxMaskSkip(bool enabled) : saved_(SoftmaxMaskSkipEnabled()) {
    SetSoftmaxMaskSkip(enabled);
  }
  ~ScopedSoftmaxMaskSkip() { SetSoftmaxMaskSkip(saved_); }
  ScopedSoftmaxMaskSkip(const ScopedSoftmaxMaskSkip&) = delete;
  ScopedSoftmaxMaskSkip& operator=(const ScopedSoftmaxMaskSkip&) = delete;

 private:
  bool saved_;
};
// LayerNorm over the last axis of a 2-D tensor; gamma/beta are [n]. `c` may
// alias `a` (each row's statistics are read before the row is rewritten).
void LayerNormInto(ConstTensorView a, ConstTensorView gamma, ConstTensorView beta, TensorView c,
                   float eps = 1e-5f);

}  // namespace pit

#endif  // PIT_TENSOR_OPS_H_
