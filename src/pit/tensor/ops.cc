#include "pit/tensor/ops.h"

#include <cmath>
#include <limits>

namespace pit {

Tensor MatMul(const Tensor& a, const Tensor& b) {
  PIT_CHECK_EQ(a.rank(), 2);
  PIT_CHECK_EQ(b.rank(), 2);
  const int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  PIT_CHECK_EQ(k, b.dim(0));
  Tensor c({m, n});
  // ikj loop order: streams B rows, keeps C row hot.
  for (int64_t i = 0; i < m; ++i) {
    float* crow = c.data() + i * n;
    for (int64_t p = 0; p < k; ++p) {
      const float av = a.At(i, p);
      if (av == 0.0f) {
        continue;  // free win on sparse inputs; exact math is unchanged
      }
      const float* brow = b.data() + p * n;
      for (int64_t j = 0; j < n; ++j) {
        crow[j] += av * brow[j];
      }
    }
  }
  return c;
}

Tensor BatchMatMul(const Tensor& a, const Tensor& b) {
  PIT_CHECK_EQ(a.rank(), 3);
  PIT_CHECK_EQ(b.rank(), 3);
  const int64_t bs = a.dim(0), m = a.dim(1), k = a.dim(2), n = b.dim(2);
  PIT_CHECK_EQ(bs, b.dim(0));
  PIT_CHECK_EQ(k, b.dim(1));
  Tensor c({bs, m, n});
  for (int64_t s = 0; s < bs; ++s) {
    for (int64_t i = 0; i < m; ++i) {
      float* crow = c.data() + (s * m + i) * n;
      for (int64_t p = 0; p < k; ++p) {
        const float av = a.At(s, i, p);
        if (av == 0.0f) {
          continue;
        }
        const float* brow = b.data() + (s * k + p) * n;
        for (int64_t j = 0; j < n; ++j) {
          crow[j] += av * brow[j];
        }
      }
    }
  }
  return c;
}

Tensor MatMulBias(const Tensor& a, const Tensor& b, const Tensor& bias) {
  Tensor c = MatMul(a, b);
  PIT_CHECK_EQ(bias.size(), c.dim(1));
  for (int64_t i = 0; i < c.dim(0); ++i) {
    for (int64_t j = 0; j < c.dim(1); ++j) {
      c.At(i, j) += bias[j];
    }
  }
  return c;
}

Tensor Add(const Tensor& a, const Tensor& b) {
  PIT_CHECK(a.shape() == b.shape());
  Tensor c(a.shape());
  for (int64_t i = 0; i < a.size(); ++i) {
    c[i] = a[i] + b[i];
  }
  return c;
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  PIT_CHECK(a.shape() == b.shape());
  Tensor c(a.shape());
  for (int64_t i = 0; i < a.size(); ++i) {
    c[i] = a[i] * b[i];
  }
  return c;
}

Tensor Relu(const Tensor& a) {
  Tensor c(a.shape());
  for (int64_t i = 0; i < a.size(); ++i) {
    c[i] = a[i] > 0.0f ? a[i] : 0.0f;
  }
  return c;
}

Tensor Gelu(const Tensor& a) {
  Tensor c(a.shape());
  for (int64_t i = 0; i < a.size(); ++i) {
    const float x = a[i];
    c[i] = 0.5f * x * (1.0f + std::tanh(0.7978845608f * (x + 0.044715f * x * x * x)));
  }
  return c;
}

Tensor Transpose2D(const Tensor& a) {
  PIT_CHECK_EQ(a.rank(), 2);
  Tensor c({a.dim(1), a.dim(0)});
  for (int64_t i = 0; i < a.dim(0); ++i) {
    for (int64_t j = 0; j < a.dim(1); ++j) {
      c.At(j, i) = a.At(i, j);
    }
  }
  return c;
}

Tensor Softmax(const Tensor& a, const Tensor* mask) {
  PIT_CHECK_EQ(a.rank(), 2);
  if (mask != nullptr) {
    PIT_CHECK(mask->shape() == a.shape());
  }
  const int64_t m = a.dim(0), n = a.dim(1);
  Tensor c({m, n});
  constexpr float kNegInf = -std::numeric_limits<float>::infinity();
  for (int64_t i = 0; i < m; ++i) {
    float maxv = kNegInf;
    for (int64_t j = 0; j < n; ++j) {
      const float v = (mask && mask->At(i, j) == 0.0f) ? kNegInf : a.At(i, j);
      maxv = std::max(maxv, v);
    }
    if (maxv == kNegInf) {
      continue;  // fully-masked row stays all-zero
    }
    float sum = 0.0f;
    for (int64_t j = 0; j < n; ++j) {
      const float v = (mask && mask->At(i, j) == 0.0f) ? kNegInf : a.At(i, j);
      const float e = v == kNegInf ? 0.0f : std::exp(v - maxv);
      c.At(i, j) = e;
      sum += e;
    }
    for (int64_t j = 0; j < n; ++j) {
      c.At(i, j) /= sum;
    }
  }
  return c;
}

Tensor LayerNorm(const Tensor& a, const Tensor& gamma, const Tensor& beta, float eps) {
  PIT_CHECK_EQ(a.rank(), 2);
  const int64_t m = a.dim(0), n = a.dim(1);
  PIT_CHECK_EQ(gamma.size(), n);
  PIT_CHECK_EQ(beta.size(), n);
  Tensor c({m, n});
  for (int64_t i = 0; i < m; ++i) {
    float mean = 0.0f;
    for (int64_t j = 0; j < n; ++j) {
      mean += a.At(i, j);
    }
    mean /= static_cast<float>(n);
    float var = 0.0f;
    for (int64_t j = 0; j < n; ++j) {
      const float d = a.At(i, j) - mean;
      var += d * d;
    }
    var /= static_cast<float>(n);
    const float inv = 1.0f / std::sqrt(var + eps);
    for (int64_t j = 0; j < n; ++j) {
      c.At(i, j) = (a.At(i, j) - mean) * inv * gamma[j] + beta[j];
    }
  }
  return c;
}

Tensor ReduceSumAxis1(const Tensor& a) {
  PIT_CHECK_EQ(a.rank(), 2);
  Tensor c({a.dim(0)});
  for (int64_t i = 0; i < a.dim(0); ++i) {
    float s = 0.0f;
    for (int64_t j = 0; j < a.dim(1); ++j) {
      s += a.At(i, j);
    }
    c[i] = s;
  }
  return c;
}

Tensor ApplyMask(const Tensor& a, const Tensor& mask) {
  PIT_CHECK(a.shape() == mask.shape());
  Tensor c(a.shape());
  for (int64_t i = 0; i < a.size(); ++i) {
    c[i] = mask[i] != 0.0f ? a[i] : 0.0f;
  }
  return c;
}

Tensor Conv2D(const Tensor& input, const Tensor& weight) {
  PIT_CHECK_EQ(input.rank(), 4);   // N, C, H, W
  PIT_CHECK_EQ(weight.rank(), 4);  // F, C, KH, KW
  const int64_t n = input.dim(0), c = input.dim(1), h = input.dim(2), w = input.dim(3);
  const int64_t f = weight.dim(0), kh = weight.dim(2), kw = weight.dim(3);
  PIT_CHECK_EQ(c, weight.dim(1));
  const int64_t oh = h - kh + 1, ow = w - kw + 1;
  PIT_CHECK_GT(oh, 0);
  PIT_CHECK_GT(ow, 0);
  Tensor out({n, f, oh, ow});
  auto in_at = [&](int64_t b, int64_t ch, int64_t y, int64_t x) {
    return input[((b * c + ch) * h + y) * w + x];
  };
  auto w_at = [&](int64_t ff, int64_t ch, int64_t y, int64_t x) {
    return weight[((ff * c + ch) * kh + y) * kw + x];
  };
  for (int64_t b = 0; b < n; ++b) {
    for (int64_t ff = 0; ff < f; ++ff) {
      for (int64_t y = 0; y < oh; ++y) {
        for (int64_t x = 0; x < ow; ++x) {
          float acc = 0.0f;
          for (int64_t ch = 0; ch < c; ++ch) {
            for (int64_t i = 0; i < kh; ++i) {
              for (int64_t j = 0; j < kw; ++j) {
                acc += in_at(b, ch, y + i, x + j) * w_at(ff, ch, i, j);
              }
            }
          }
          out[((b * f + ff) * oh + y) * ow + x] = acc;
        }
      }
    }
  }
  return out;
}

}  // namespace pit
