#include "pit/tensor/ops.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>
#include <limits>
#include <utility>
#include <vector>

#include "pit/common/backend.h"
#include "pit/common/gemm_microkernel.h"
#include "pit/common/parallel_for.h"
#include "pit/common/simd_kernels.h"

namespace pit {

namespace {

std::atomic<bool> g_softmax_mask_skip{true};

// Row kernels for the active ISA tier, or null for the scalar loops. The
// reference backend always gets null: it is the oracle and must not share
// code with the kernels under test.
inline const simd::RowKernels* ActiveRowKernels() {
  return UseSimd() ? simd::RowKernelsFor(ActiveIsa()) : nullptr;
}

// Iterations per dispatched chunk for cheap element-wise loops; keeps the pool
// out of the picture for small tensors.
constexpr int64_t kElemGrain = 1 << 14;

// Reference scalar matmul, ikj order. Kept verbatim as the oracle the blocked
// backend is differential-tested against.
void ReferenceMatMulInto(const float* a, const float* b, float* c, int64_t m, int64_t k,
                         int64_t n) {
  for (int64_t i = 0; i < m; ++i) {
    float* crow = c + i * n;
    const float* arow = a + i * k;
    for (int64_t p = 0; p < k; ++p) {
      const float av = arow[p];
      if (av == 0.0f) {
        continue;  // free win on sparse inputs; exact math is unchanged
      }
      const float* brow = b + p * n;
      for (int64_t j = 0; j < n; ++j) {
        crow[j] += av * brow[j];
      }
    }
  }
}

}  // namespace

void MatMulInto(ConstTensorView a, ConstTensorView b, TensorView c) {
  PIT_CHECK_EQ(a.rank(), 2);
  PIT_CHECK_EQ(b.rank(), 2);
  PIT_CHECK_EQ(c.rank(), 2);
  const int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  PIT_CHECK_EQ(k, b.dim(0));
  PIT_CHECK_EQ(c.dim(0), m);
  PIT_CHECK_EQ(c.dim(1), n);
  std::fill(c.data(), c.data() + c.size(), 0.0f);  // kernels accumulate into C
  if (UseBlockedBackend()) {
    GemmF32(m, n, k, a.data(), k, b.data(), n, c.data(), n);
  } else {
    ReferenceMatMulInto(a.data(), b.data(), c.data(), m, k, n);
  }
}

Tensor MatMul(const Tensor& a, const Tensor& b) {
  PIT_CHECK_EQ(a.rank(), 2);
  PIT_CHECK_EQ(b.rank(), 2);
  Tensor c({a.dim(0), b.dim(1)});
  MatMulInto(a, b, c);
  return c;
}

void BatchMatMulInto(ConstTensorView a, ConstTensorView b, TensorView c) {
  PIT_CHECK_EQ(a.rank(), 3);
  PIT_CHECK_EQ(b.rank(), 3);
  PIT_CHECK_EQ(c.rank(), 3);
  const int64_t bs = a.dim(0), m = a.dim(1), k = a.dim(2), n = b.dim(2);
  PIT_CHECK_EQ(bs, b.dim(0));
  PIT_CHECK_EQ(k, b.dim(1));
  PIT_CHECK_EQ(c.dim(0), bs);
  PIT_CHECK_EQ(c.dim(1), m);
  PIT_CHECK_EQ(c.dim(2), n);
  std::fill(c.data(), c.data() + c.size(), 0.0f);  // kernels accumulate into C
  if (UseBlockedBackend()) {
    // Parallel over batch slices when there are enough of them to fill the
    // pool; otherwise keep the batch loop serial so each slice's GEMM can use
    // every worker (a per-slice GEMM called from a pool worker runs inline).
    const int64_t batch_grain = bs >= NumThreads() ? 1 : bs;
    ParallelFor(bs, batch_grain, [&](int64_t s0, int64_t s1) {
      for (int64_t s = s0; s < s1; ++s) {
        GemmF32(m, n, k, a.data() + s * m * k, k, b.data() + s * k * n, n,
                c.data() + s * m * n, n);
      }
    });
  } else {
    for (int64_t s = 0; s < bs; ++s) {
      ReferenceMatMulInto(a.data() + s * m * k, b.data() + s * k * n, c.data() + s * m * n, m, k,
                          n);
    }
  }
}

Tensor BatchMatMul(const Tensor& a, const Tensor& b) {
  PIT_CHECK_EQ(a.rank(), 3);
  PIT_CHECK_EQ(b.rank(), 3);
  Tensor c({a.dim(0), a.dim(1), b.dim(2)});
  BatchMatMulInto(a, b, c);
  return c;
}

void MatMulBiasInto(ConstTensorView a, ConstTensorView b, ConstTensorView bias, TensorView c) {
  PIT_CHECK_EQ(a.rank(), 2);
  PIT_CHECK_EQ(b.rank(), 2);
  PIT_CHECK_EQ(c.rank(), 2);
  const int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  PIT_CHECK_EQ(k, b.dim(0));
  PIT_CHECK_EQ(bias.size(), n);
  PIT_CHECK_EQ(c.dim(0), m);
  PIT_CHECK_EQ(c.dim(1), n);
  std::fill(c.data(), c.data() + c.size(), 0.0f);
  if (UseBlockedBackend()) {
    // Bias is fused into the GEMM epilogue: C is written exactly once.
    GemmF32(m, n, k, a.data(), k, b.data(), n, c.data(), n, bias.data());
  } else {
    ReferenceMatMulInto(a.data(), b.data(), c.data(), m, k, n);
    for (int64_t i = 0; i < m; ++i) {
      for (int64_t j = 0; j < n; ++j) {
        c.At(i, j) += bias[j];
      }
    }
  }
}

Tensor MatMulBias(const Tensor& a, const Tensor& b, const Tensor& bias) {
  PIT_CHECK_EQ(a.rank(), 2);
  PIT_CHECK_EQ(b.rank(), 2);
  Tensor c({a.dim(0), b.dim(1)});
  MatMulBiasInto(a, b, bias, c);
  return c;
}

void MatMulReluInto(ConstTensorView a, ConstTensorView b, TensorView c) {
  PIT_CHECK_EQ(a.rank(), 2);
  PIT_CHECK_EQ(b.rank(), 2);
  PIT_CHECK_EQ(c.rank(), 2);
  const int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  PIT_CHECK_EQ(k, b.dim(0));
  PIT_CHECK_EQ(c.dim(0), m);
  PIT_CHECK_EQ(c.dim(1), n);
  std::fill(c.data(), c.data() + c.size(), 0.0f);
  if (UseBlockedBackend()) {
    GemmF32(m, n, k, a.data(), k, b.data(), n, c.data(), n, /*bias=*/nullptr, /*relu=*/true);
  } else {
    ReferenceMatMulInto(a.data(), b.data(), c.data(), m, k, n);
    for (int64_t i = 0; i < c.size(); ++i) {
      c[i] = c[i] > 0.0f ? c[i] : 0.0f;
    }
  }
}

void MatMulBiasReluInto(ConstTensorView a, ConstTensorView b, ConstTensorView bias,
                        TensorView c) {
  PIT_CHECK_EQ(a.rank(), 2);
  PIT_CHECK_EQ(b.rank(), 2);
  PIT_CHECK_EQ(c.rank(), 2);
  const int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  PIT_CHECK_EQ(k, b.dim(0));
  PIT_CHECK_EQ(bias.size(), n);
  PIT_CHECK_EQ(c.dim(0), m);
  PIT_CHECK_EQ(c.dim(1), n);
  std::fill(c.data(), c.data() + c.size(), 0.0f);
  if (UseBlockedBackend()) {
    // Bias and ReLU both fuse into the GEMM epilogue: C is written once.
    GemmF32(m, n, k, a.data(), k, b.data(), n, c.data(), n, bias.data(), /*relu=*/true);
  } else {
    ReferenceMatMulInto(a.data(), b.data(), c.data(), m, k, n);
    for (int64_t i = 0; i < m; ++i) {
      for (int64_t j = 0; j < n; ++j) {
        c.At(i, j) += bias[j];
      }
    }
    for (int64_t i = 0; i < c.size(); ++i) {
      c[i] = c[i] > 0.0f ? c[i] : 0.0f;
    }
  }
}

void AddInto(ConstTensorView a, ConstTensorView b, TensorView c) {
  PIT_CHECK(a.ShapeEquals(b));
  PIT_CHECK_EQ(a.size(), c.size());
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  // Lane-wise IEEE add: the vector path is bitwise equal to the scalar loop.
  const simd::RowKernels* rk = ActiveRowKernels();
  ParallelFor(a.size(), GrainOrSerial(a.size(), kElemGrain), [&](int64_t lo, int64_t hi) {
    if (rk != nullptr) {
      rk->add(pa + lo, pb + lo, pc + lo, hi - lo);
      return;
    }
    for (int64_t i = lo; i < hi; ++i) {
      pc[i] = pa[i] + pb[i];
    }
  });
}

Tensor Add(const Tensor& a, const Tensor& b) {
  PIT_CHECK(a.shape() == b.shape());
  Tensor c(a.shape());
  AddInto(a, b, c);
  return c;
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  PIT_CHECK(a.shape() == b.shape());
  Tensor c(a.shape());
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  ParallelFor(a.size(), GrainOrSerial(a.size(), kElemGrain), [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      pc[i] = pa[i] * pb[i];
    }
  });
  return c;
}

void ReluInto(ConstTensorView a, TensorView c) {
  PIT_CHECK_EQ(a.size(), c.size());
  const float* pa = a.data();
  float* pc = c.data();
  // max(x, 0) lanes match the scalar ternary bit-for-bit (incl. NaN and -0),
  // so the vector path is bitwise equal — and stays interchangeable with the
  // GEMM kernels' fused relu epilogue.
  const simd::RowKernels* rk = ActiveRowKernels();
  ParallelFor(a.size(), GrainOrSerial(a.size(), kElemGrain), [&](int64_t lo, int64_t hi) {
    if (rk != nullptr) {
      rk->relu(pa + lo, pc + lo, hi - lo);
      return;
    }
    for (int64_t i = lo; i < hi; ++i) {
      pc[i] = pa[i] > 0.0f ? pa[i] : 0.0f;
    }
  });
}

Tensor Relu(const Tensor& a) {
  Tensor c(a.shape());
  ReluInto(a, c);
  return c;
}

void ScaleInto(ConstTensorView a, float factor, TensorView c) {
  PIT_CHECK_EQ(a.size(), c.size());
  const float* pa = a.data();
  float* pc = c.data();
  // Lane-wise IEEE multiply: the vector path is bitwise equal to the scalar
  // loop.
  const simd::RowKernels* rk = ActiveRowKernels();
  ParallelFor(a.size(), GrainOrSerial(a.size(), kElemGrain), [&](int64_t lo, int64_t hi) {
    if (rk != nullptr) {
      rk->scale(pa + lo, factor, pc + lo, hi - lo);
      return;
    }
    for (int64_t i = lo; i < hi; ++i) {
      pc[i] = pa[i] * factor;
    }
  });
}

Tensor Scale(const Tensor& a, float factor) {
  Tensor c(a.shape());
  ScaleInto(a, factor, c);
  return c;
}

Tensor Gelu(const Tensor& a) {
  Tensor c(a.shape());
  const float* pa = a.data();
  float* pc = c.data();
  // tanh is ~20x an add; use a finer grain so mid-sized tensors still fan out.
  ParallelFor(a.size(), GrainOrSerial(a.size(), kElemGrain / 16), [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      const float x = pa[i];
      pc[i] = 0.5f * x * (1.0f + std::tanh(0.7978845608f * (x + 0.044715f * x * x * x)));
    }
  });
  return c;
}

namespace {

// Blocked 2-D transpose of one contiguous [rows, cols] plane into [cols, rows].
// 32x32 blocks: both the read and write streams stay within a few cache
// lines per block. Parallel over row blocks (disjoint output columns).
void Transpose2DPlane(const float* pa, float* pc, int64_t rows, int64_t cols) {
  constexpr int64_t kBlk = 32;
  const int64_t row_blocks = (rows + kBlk - 1) / kBlk;
  ParallelFor(row_blocks,
              GrainOrSerial(row_blocks, std::max<int64_t>(1, (1 << 16) / std::max<int64_t>(1, kBlk * cols))),
              [&](int64_t b0, int64_t b1) {
                for (int64_t rb = b0; rb < b1; ++rb) {
                  const int64_t r0 = rb * kBlk, r1 = std::min(rows, r0 + kBlk);
                  for (int64_t c0 = 0; c0 < cols; c0 += kBlk) {
                    const int64_t c1 = std::min(cols, c0 + kBlk);
                    for (int64_t r = r0; r < r1; ++r) {
                      for (int64_t cc = c0; cc < c1; ++cc) {
                        pc[cc * rows + r] = pa[r * cols + cc];
                      }
                    }
                  }
                }
              });
}

}  // namespace

Tensor Transpose2D(const Tensor& a) {
  PIT_CHECK_EQ(a.rank(), 2);
  Tensor c({a.dim(1), a.dim(0)});
  Transpose2DPlane(a.data(), c.data(), a.dim(0), a.dim(1));
  return c;
}

void TransposeInto(ConstTensorView a, int axis0, int axis1, TensorView c) {
  PIT_CHECK_EQ(a.size(), c.size());
  if (a.rank() == 2) {
    PIT_CHECK(axis0 == 0 && axis1 == 1) << "rank-2 transpose swaps axes (0, 1)";
    PIT_CHECK_EQ(c.rank(), 2);
    PIT_CHECK_EQ(c.dim(0), a.dim(1));
    PIT_CHECK_EQ(c.dim(1), a.dim(0));
    Transpose2DPlane(a.data(), c.data(), a.dim(0), a.dim(1));
    return;
  }
  PIT_CHECK_EQ(a.rank(), 3);
  PIT_CHECK_EQ(c.rank(), 3);
  const int64_t d0 = a.dim(0), d1 = a.dim(1), d2 = a.dim(2);
  const float* pa = a.data();
  float* pc = c.data();
  if (axis0 == 0 && axis1 == 1) {
    // [d0, d1, d2] -> [d1, d0, d2]: row-of-d2 moves are contiguous memcpys.
    PIT_CHECK(c.dim(0) == d1 && c.dim(1) == d0 && c.dim(2) == d2);
    ParallelFor(d0, GrainOrSerial(d0, std::max<int64_t>(1, kElemGrain / std::max<int64_t>(1, d1 * d2))),
                [&](int64_t i0, int64_t i1) {
                  for (int64_t i = i0; i < i1; ++i) {
                    for (int64_t j = 0; j < d1; ++j) {
                      std::memcpy(pc + (j * d0 + i) * d2, pa + (i * d1 + j) * d2,
                                  static_cast<size_t>(d2) * sizeof(float));
                    }
                  }
                });
    return;
  }
  PIT_CHECK(axis0 == 1 && axis1 == 2) << "rank-3 transpose swaps axes (0,1) or (1,2)";
  // [d0, d1, d2] -> [d0, d2, d1]: one 2-D transpose per batch slice.
  PIT_CHECK(c.dim(0) == d0 && c.dim(1) == d2 && c.dim(2) == d1);
  ParallelFor(d0, GrainOrSerial(d0, std::max<int64_t>(1, kElemGrain / std::max<int64_t>(1, d1 * d2))),
              [&](int64_t s0, int64_t s1) {
                for (int64_t s = s0; s < s1; ++s) {
                  const float* src = pa + s * d1 * d2;
                  float* dst = pc + s * d1 * d2;
                  for (int64_t r = 0; r < d1; ++r) {
                    for (int64_t cc = 0; cc < d2; ++cc) {
                      dst[cc * d1 + r] = src[r * d2 + cc];
                    }
                  }
                }
              });
}

void SoftmaxInto(ConstTensorView a, const ConstTensorView* mask, TensorView c) {
  PIT_CHECK(a.rank() == 2 || a.rank() == 3);
  const int64_t n = a.dim(a.rank() - 1);
  const int64_t m = a.size() / std::max<int64_t>(1, n);  // independent rows
  PIT_CHECK_EQ(a.size(), c.size());
  PIT_CHECK_EQ(c.dim(c.rank() - 1), n);
  // The mask matches the input row-for-row, or — under a rank-3 input — is a
  // single trailing [dim(1), n] plane broadcast over axis 0 (one attention
  // mask shared by every head). Anything else (a mask that merely divides the
  // flattened row count) would be applied with the wrong period: reject it.
  int64_t mask_rows = 0;
  if (mask != nullptr) {
    PIT_CHECK_EQ(mask->dim(mask->rank() - 1), n);
    mask_rows = mask->size() / std::max<int64_t>(1, n);
    PIT_CHECK(mask_rows == m || (a.rank() == 3 && mask_rows == a.dim(1)))
        << "softmax mask must match the input rows or its trailing plane";
  }
  constexpr float kNegInf = -std::numeric_limits<float>::infinity();
  // Resolved once per call: vector row kernels under a SIMD tier, and span
  // skipping for masked rows under the blocked backend. Skipping is exact —
  // a masked column contributes -inf to the max and +0.0f to the sum, both
  // identities, and its 0-write equals the oracle's 0/sum — so the scalar
  // skip path is bitwise equal to the unskipped loop. The vector kernels run
  // span-relative (lanes grouped from each span's start), so a packed
  // request row (one block-diagonal span at offset o) is bitwise identical
  // to the same request served 1:1 at offset 0.
  const simd::RowKernels* rk = ActiveRowKernels();
  const bool skip = mask != nullptr && UseBlockedBackend() && SoftmaxMaskSkipEnabled();
  // Rows are independent; per-row math is identical to the reference loop.
  ParallelFor(m, GrainOrSerial(m, std::max<int64_t>(1, kElemGrain / (4 * std::max<int64_t>(1, n)))),
              [&](int64_t i0, int64_t i1) {
                thread_local std::vector<std::pair<int64_t, int64_t>> spans;
                for (int64_t i = i0; i < i1; ++i) {
                  const float* arow = a.data() + i * n;
                  float* crow = c.data() + i * n;
                  const float* mrow =
                      mask != nullptr ? mask->data() + (i % mask_rows) * n : nullptr;
                  if ((mrow != nullptr && !skip) || (mrow == nullptr && rk == nullptr)) {
                    // Scalar full-row loop: the reference/blocked oracle, and
                    // the unskipped differential oracle for the span path.
                    float maxv = kNegInf;
                    for (int64_t j = 0; j < n; ++j) {
                      const float v = (mrow && mrow[j] == 0.0f) ? kNegInf : arow[j];
                      maxv = std::max(maxv, v);
                    }
                    if (maxv == kNegInf) {
                      // Fully-masked row is all-zero; the output may be a
                      // dirty arena slice, so write the zeros explicitly.
                      for (int64_t j = 0; j < n; ++j) {
                        crow[j] = 0.0f;
                      }
                      continue;
                    }
                    float sum = 0.0f;
                    for (int64_t j = 0; j < n; ++j) {
                      const float v = (mrow && mrow[j] == 0.0f) ? kNegInf : arow[j];
                      const float e = v == kNegInf ? 0.0f : std::exp(v - maxv);
                      crow[j] = e;
                      sum += e;
                    }
                    for (int64_t j = 0; j < n; ++j) {
                      crow[j] /= sum;
                    }
                    continue;
                  }
                  // Span path: process the row as its maximal runs of
                  // unmasked columns (one [0, n) span when unmasked); the
                  // fully-masked gaps write zeros without touching exp.
                  spans.clear();
                  if (mrow == nullptr) {
                    spans.emplace_back(0, n);
                  } else {
                    for (int64_t j = 0; j < n;) {
                      while (j < n && mrow[j] == 0.0f) {
                        ++j;
                      }
                      const int64_t s = j;
                      while (j < n && mrow[j] != 0.0f) {
                        ++j;
                      }
                      if (j > s) {
                        spans.emplace_back(s, j);
                      }
                    }
                  }
                  float maxv = kNegInf;
                  for (const auto& [s, e] : spans) {
                    if (rk != nullptr) {
                      maxv = std::max(maxv, rk->row_max(arow + s, e - s));
                    } else {
                      for (int64_t j = s; j < e; ++j) {
                        maxv = std::max(maxv, arow[j]);
                      }
                    }
                  }
                  if (maxv == kNegInf) {
                    // Fully masked (or all unmasked scores -inf): all-zero
                    // row, written explicitly for dirty arena slices.
                    for (int64_t j = 0; j < n; ++j) {
                      crow[j] = 0.0f;
                    }
                    continue;
                  }
                  float sum = 0.0f;
                  int64_t prev = 0;
                  for (const auto& [s, e] : spans) {
                    for (int64_t j = prev; j < s; ++j) {
                      crow[j] = 0.0f;
                    }
                    if (rk != nullptr) {
                      sum += rk->exp_sum(arow + s, e - s, maxv, crow + s);
                    } else {
                      for (int64_t j = s; j < e; ++j) {
                        const float ev =
                            arow[j] == kNegInf ? 0.0f : std::exp(arow[j] - maxv);
                        crow[j] = ev;
                        sum += ev;
                      }
                    }
                    prev = e;
                  }
                  for (int64_t j = prev; j < n; ++j) {
                    crow[j] = 0.0f;
                  }
                  for (const auto& [s, e] : spans) {
                    if (rk != nullptr) {
                      rk->div_inplace(crow + s, e - s, sum);
                    } else {
                      for (int64_t j = s; j < e; ++j) {
                        crow[j] /= sum;
                      }
                    }
                  }
                }
              });
}

bool SoftmaxMaskSkipEnabled() { return g_softmax_mask_skip.load(std::memory_order_relaxed); }

void SetSoftmaxMaskSkip(bool enabled) {
  g_softmax_mask_skip.store(enabled, std::memory_order_relaxed);
}

Tensor Softmax(const Tensor& a, const Tensor* mask) {
  PIT_CHECK_EQ(a.rank(), 2);
  Tensor c(a.shape());
  if (mask != nullptr) {
    const ConstTensorView mask_view(*mask);
    SoftmaxInto(a, &mask_view, c);
  } else {
    SoftmaxInto(a, nullptr, c);
  }
  return c;
}

void LayerNormInto(ConstTensorView a, ConstTensorView gamma, ConstTensorView beta, TensorView c,
                   float eps) {
  PIT_CHECK_EQ(a.rank(), 2);
  const int64_t m = a.dim(0), n = a.dim(1);
  PIT_CHECK_EQ(gamma.size(), n);
  PIT_CHECK_EQ(beta.size(), n);
  PIT_CHECK_EQ(c.dim(0), m);
  PIT_CHECK_EQ(c.dim(1), n);
  const float* pg = gamma.data();
  const float* pb = beta.data();
  // Vector path per row: lane-grouped sum / squared-diff-sum reductions and
  // an fma normalize — tolerance vs the scalar loops (reassociated mean and
  // variance), deterministic for a fixed row length.
  const simd::RowKernels* rk = ActiveRowKernels();
  ParallelFor(m, GrainOrSerial(m, std::max<int64_t>(1, kElemGrain / (4 * std::max<int64_t>(1, n)))),
              [&](int64_t i0, int64_t i1) {
                for (int64_t i = i0; i < i1; ++i) {
                  const float* arow = a.data() + i * n;
                  float* crow = c.data() + i * n;
                  if (rk != nullptr) {
                    const float mean = rk->sum(arow, n) / static_cast<float>(n);
                    const float var = rk->sqdiff_sum(arow, n, mean) / static_cast<float>(n);
                    const float inv = 1.0f / std::sqrt(var + eps);
                    rk->normalize(arow, n, mean, inv, pg, pb, crow);
                    continue;
                  }
                  float mean = 0.0f;
                  for (int64_t j = 0; j < n; ++j) {
                    mean += arow[j];
                  }
                  mean /= static_cast<float>(n);
                  float var = 0.0f;
                  for (int64_t j = 0; j < n; ++j) {
                    const float d = arow[j] - mean;
                    var += d * d;
                  }
                  var /= static_cast<float>(n);
                  const float inv = 1.0f / std::sqrt(var + eps);
                  for (int64_t j = 0; j < n; ++j) {
                    crow[j] = (arow[j] - mean) * inv * pg[j] + pb[j];
                  }
                }
              });
}

Tensor LayerNorm(const Tensor& a, const Tensor& gamma, const Tensor& beta, float eps) {
  PIT_CHECK_EQ(a.rank(), 2);
  Tensor c({a.dim(0), a.dim(1)});
  LayerNormInto(a, gamma, beta, c, eps);
  return c;
}

Tensor ReduceSumAxis1(const Tensor& a) {
  PIT_CHECK_EQ(a.rank(), 2);
  const int64_t m = a.dim(0), n = a.dim(1);
  Tensor c({m});
  ParallelFor(m, GrainOrSerial(m, std::max<int64_t>(1, kElemGrain / std::max<int64_t>(1, n))),
              [&](int64_t i0, int64_t i1) {
                for (int64_t i = i0; i < i1; ++i) {
                  const float* arow = a.data() + i * n;
                  float s = 0.0f;
                  for (int64_t j = 0; j < n; ++j) {
                    s += arow[j];
                  }
                  c[i] = s;
                }
              });
  return c;
}

void ApplyMaskInto(ConstTensorView a, ConstTensorView mask, TensorView c) {
  PIT_CHECK(a.ShapeEquals(mask));
  PIT_CHECK_EQ(a.size(), c.size());
  const float* pa = a.data();
  const float* pm = mask.data();
  float* pc = c.data();
  ParallelFor(a.size(), GrainOrSerial(a.size(), kElemGrain), [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      pc[i] = pm[i] != 0.0f ? pa[i] : 0.0f;
    }
  });
}

Tensor ApplyMask(const Tensor& a, const Tensor& mask) {
  PIT_CHECK(a.shape() == mask.shape());
  Tensor c(a.shape());
  ApplyMaskInto(a, mask, c);
  return c;
}

Tensor Conv2D(const Tensor& input, const Tensor& weight) {
  PIT_CHECK_EQ(input.rank(), 4);   // N, C, H, W
  PIT_CHECK_EQ(weight.rank(), 4);  // F, C, KH, KW
  const int64_t n = input.dim(0), c = input.dim(1), h = input.dim(2), w = input.dim(3);
  const int64_t f = weight.dim(0), kh = weight.dim(2), kw = weight.dim(3);
  PIT_CHECK_EQ(c, weight.dim(1));
  const int64_t oh = h - kh + 1, ow = w - kw + 1;
  PIT_CHECK_GT(oh, 0);
  PIT_CHECK_GT(ow, 0);
  Tensor out({n, f, oh, ow});
  if (UseBlockedBackend()) {
    // im2col + GEMM: the weight [F, C*KH*KW] is already a contiguous row-major
    // matrix; lowering each image to a column panel [C*KH*KW, OH*OW] turns the
    // convolution into one GemmF32 per image whose output IS the [F, OH*OW]
    // output plane block — no post-hoc permutation. The GEMM's ascending-k
    // accumulation order equals the naive kernel's (ch, i, j) order, so the
    // two backends agree to the last bit.
    const int64_t ckk = c * kh * kw;
    const int64_t plane = oh * ow;
    // Per-call scratch (not thread_local): the panel is C*KH*KW x OH*OW and
    // pinning the largest-ever size per thread would hoard memory on big
    // activations; one allocation per conv call is noise next to the GEMM.
    std::vector<float> col(static_cast<size_t>(ckk * plane));
    float* pcol = col.data();
    for (int64_t b = 0; b < n; ++b) {
      // Each col row (ch, i, j) is OH shifted row-segments of the input — all
      // contiguous memcpys. Rows are disjoint: parallel across them.
      ParallelFor(ckk, GrainOrSerial(ckk, std::max<int64_t>(1, kElemGrain / std::max<int64_t>(1, plane))),
                  [&](int64_t r0, int64_t r1) {
                    for (int64_t r = r0; r < r1; ++r) {
                      const int64_t ch = r / (kh * kw);
                      const int64_t i = (r / kw) % kh;
                      const int64_t j = r % kw;
                      const float* src = input.data() + ((b * c + ch) * h + i) * w + j;
                      float* dst = pcol + r * plane;
                      for (int64_t y = 0; y < oh; ++y) {
                        std::memcpy(dst + y * ow, src + y * w,
                                    static_cast<size_t>(ow) * sizeof(float));
                      }
                    }
                  });
      GemmF32(f, plane, ckk, weight.data(), ckk, pcol, plane, out.data() + b * f * plane, plane);
    }
    return out;
  }
  auto in_at = [&](int64_t b, int64_t ch, int64_t y, int64_t x) {
    return input[((b * c + ch) * h + y) * w + x];
  };
  auto w_at = [&](int64_t ff, int64_t ch, int64_t y, int64_t x) {
    return weight[((ff * c + ch) * kh + y) * kw + x];
  };
  // Reference oracle: the naive 6-loop kernel, serial per output plane.
  const int64_t work_per_plane = oh * ow * c * kh * kw;
  ParallelFor(n * f,
              GrainOrSerial(n * f, std::max<int64_t>(1, kElemGrain / std::max<int64_t>(1, work_per_plane))),
              [&](int64_t lo, int64_t hi) {
                for (int64_t bf = lo; bf < hi; ++bf) {
                  const int64_t b = bf / f, ff = bf % f;
                  for (int64_t y = 0; y < oh; ++y) {
                    for (int64_t x = 0; x < ow; ++x) {
                      float acc = 0.0f;
                      for (int64_t ch = 0; ch < c; ++ch) {
                        for (int64_t i = 0; i < kh; ++i) {
                          for (int64_t j = 0; j < kw; ++j) {
                            acc += in_at(b, ch, y + i, x + j) * w_at(ff, ch, i, j);
                          }
                        }
                      }
                      out[((b * f + ff) * oh + y) * ow + x] = acc;
                    }
                  }
                }
              });
  return out;
}

}  // namespace pit
