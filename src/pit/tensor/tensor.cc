#include "pit/tensor/tensor.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace pit {

int64_t NumElements(const Shape& shape) {
  int64_t n = 1;
  for (int64_t d : shape) {
    PIT_CHECK_GE(d, 0);
    n *= d;
  }
  return n;
}

std::string ShapeToString(const Shape& shape) {
  std::ostringstream os;
  os << "[";
  for (size_t i = 0; i < shape.size(); ++i) {
    os << (i ? "," : "") << shape[i];
  }
  os << "]";
  return os.str();
}

Tensor Tensor::Full(Shape shape, float value) {
  Tensor t(std::move(shape));
  std::fill(t.data_.begin(), t.data_.end(), value);
  return t;
}

Tensor Tensor::Random(Shape shape, Rng& rng, float lo, float hi) {
  Tensor t(std::move(shape));
  for (auto& v : t.data_) {
    v = rng.NextFloat(lo, hi);
  }
  return t;
}

Tensor Tensor::RandomSparse(Shape shape, double sparsity, Rng& rng) {
  PIT_CHECK_GE(sparsity, 0.0);
  PIT_CHECK_LE(sparsity, 1.0);
  Tensor t(std::move(shape));
  for (auto& v : t.data_) {
    if (!rng.NextBool(sparsity)) {
      // Nonzero draws avoid tiny magnitudes so zero-detection is unambiguous.
      float x = rng.NextFloat(0.1f, 1.0f);
      v = rng.NextBool(0.5) ? x : -x;
    }
  }
  return t;
}

Tensor Tensor::RandomBlockSparse(int64_t rows, int64_t cols, int64_t bm, int64_t bn,
                                 double sparsity, Rng& rng) {
  PIT_CHECK_GT(bm, 0);
  PIT_CHECK_GT(bn, 0);
  PIT_CHECK_EQ(rows % bm, 0);
  PIT_CHECK_EQ(cols % bn, 0);
  Tensor t({rows, cols});
  for (int64_t br = 0; br < rows / bm; ++br) {
    for (int64_t bc = 0; bc < cols / bn; ++bc) {
      if (rng.NextBool(sparsity)) {
        continue;  // whole block stays zero
      }
      for (int64_t i = 0; i < bm; ++i) {
        for (int64_t j = 0; j < bn; ++j) {
          float x = rng.NextFloat(0.1f, 1.0f);
          t.At(br * bm + i, bc * bn + j) = rng.NextBool(0.5) ? x : -x;
        }
      }
    }
  }
  return t;
}

Tensor Tensor::Reshape(Shape new_shape) const {
  PIT_CHECK_EQ(NumElements(new_shape), size()) << "reshape element count mismatch";
  Tensor t;
  t.shape_ = std::move(new_shape);
  t.data_ = data_;
  return t;
}

namespace {

// Single definition of the nonzero count so Tensor and the views agree
// bit-for-bit (the compiler cache keys sparsity buckets on this).
int64_t CountNonZeroImpl(const float* data, int64_t n, float tol) {
  int64_t count = 0;
  for (int64_t i = 0; i < n; ++i) {
    if (std::fabs(data[i]) > tol) {
      ++count;
    }
  }
  return count;
}

}  // namespace

int64_t Tensor::CountNonZero(float tol) const {
  return CountNonZeroImpl(data_.data(), size(), tol);
}

double Tensor::SparsityRatio(float tol) const {
  if (empty()) {
    return 0.0;
  }
  return 1.0 - static_cast<double>(CountNonZero(tol)) / static_cast<double>(size());
}

int64_t ConstTensorView::CountNonZero(float tol) const {
  return CountNonZeroImpl(data_, size_, tol);
}

double ConstTensorView::SparsityRatio(float tol) const {
  if (empty()) {
    return 0.0;
  }
  return 1.0 - static_cast<double>(CountNonZero(tol)) / static_cast<double>(size());
}

bool AllClose(const Tensor& a, const Tensor& b, float rtol, float atol) {
  if (a.shape() != b.shape()) {
    return false;
  }
  for (int64_t i = 0; i < a.size(); ++i) {
    const float diff = std::fabs(a[i] - b[i]);
    if (diff > atol + rtol * std::fabs(b[i])) {
      return false;
    }
  }
  return true;
}

float MaxAbsDiff(const Tensor& a, const Tensor& b) {
  PIT_CHECK(a.shape() == b.shape());
  float m = 0.0f;
  for (int64_t i = 0; i < a.size(); ++i) {
    m = std::max(m, std::fabs(a[i] - b[i]));
  }
  return m;
}

}  // namespace pit
