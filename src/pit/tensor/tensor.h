// Dense row-major float tensor used as the functional substrate for PIT.
//
// The paper's artifact operates on CUDA device tensors; here the same data is
// held in host memory and all kernels (PIT's gather/compute/scatter as well as
// every baseline) run functionally on it so that results can be compared
// bit-for-bit against dense references in tests.
#ifndef PIT_TENSOR_TENSOR_H_
#define PIT_TENSOR_TENSOR_H_

#include <cstdint>
#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include "pit/common/check.h"
#include "pit/common/rng.h"

namespace pit {

// Shape of a tensor; rank is bounded only by practicality.
using Shape = std::vector<int64_t>;

int64_t NumElements(const Shape& shape);
std::string ShapeToString(const Shape& shape);

// A dense row-major float32 tensor with value semantics (copy copies data).
// float is the only runtime dtype: the paper's fp16-vs-fp32 distinction only
// affects the cost model (bytes moved, tensor-core eligibility), never the
// functional math, so the cost model carries the precision instead.
class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(Shape shape) : shape_(std::move(shape)), data_(NumElements(shape_), 0.0f) {}
  Tensor(Shape shape, std::vector<float> data) : shape_(std::move(shape)), data_(std::move(data)) {
    PIT_CHECK_EQ(static_cast<int64_t>(data_.size()), NumElements(shape_));
  }

  static Tensor Zeros(Shape shape) { return Tensor(std::move(shape)); }
  static Tensor Full(Shape shape, float value);
  // Dense uniform values in [lo, hi).
  static Tensor Random(Shape shape, Rng& rng, float lo = -1.0f, float hi = 1.0f);
  // Element-wise sparse tensor: each element is nonzero with prob. (1 - sparsity).
  static Tensor RandomSparse(Shape shape, double sparsity, Rng& rng);
  // Block-sparse tensor (2-D only): nonzero blocks of size bm x bn with
  // probability (1 - sparsity); values within a live block are all nonzero.
  // This is the "sparsity granularity" of the paper's §5.3/§5.5.
  static Tensor RandomBlockSparse(int64_t rows, int64_t cols, int64_t bm, int64_t bn,
                                  double sparsity, Rng& rng);

  const Shape& shape() const { return shape_; }
  int rank() const { return static_cast<int>(shape_.size()); }
  int64_t dim(int i) const { return shape_.at(static_cast<size_t>(i)); }
  int64_t size() const { return static_cast<int64_t>(data_.size()); }
  bool empty() const { return data_.empty(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  float& operator[](int64_t i) { return data_[static_cast<size_t>(i)]; }
  float operator[](int64_t i) const { return data_[static_cast<size_t>(i)]; }

  // 2-D accessors (checked rank, unchecked bounds for speed in kernels).
  float& At(int64_t r, int64_t c) { return data_[static_cast<size_t>(r * shape_[1] + c)]; }
  float At(int64_t r, int64_t c) const { return data_[static_cast<size_t>(r * shape_[1] + c)]; }
  // 3-D accessor.
  float& At(int64_t b, int64_t r, int64_t c) {
    return data_[static_cast<size_t>((b * shape_[1] + r) * shape_[2] + c)];
  }
  float At(int64_t b, int64_t r, int64_t c) const {
    return data_[static_cast<size_t>((b * shape_[1] + r) * shape_[2] + c)];
  }

  // Reinterprets the data with a new shape of identical element count.
  Tensor Reshape(Shape new_shape) const;

  int64_t CountNonZero(float tol = 0.0f) const;
  double SparsityRatio(float tol = 0.0f) const;  // fraction of zeros

  int64_t bytes() const { return size() * static_cast<int64_t>(sizeof(float)); }

 private:
  Shape shape_;
  std::vector<float> data_;
};

// Non-owning views over dense row-major float32 data.
//
// A view is (data pointer, dims pointer, rank): both pointers borrow — the
// owning Tensor (or arena slice plus a stable Shape) must outlive the view.
// Views are how planned execution hands kernels an arena slice to write into
// without materializing a value-semantics Tensor per intermediate; they are
// four words, cheap to pass by value.
class ConstTensorView {
 public:
  ConstTensorView() = default;
  ConstTensorView(const float* data, const Shape& shape)
      : data_(data), dims_(shape.data()), rank_(static_cast<int>(shape.size())),
        size_(NumElements(shape)) {}
  // Implicit: any Tensor is viewable.
  ConstTensorView(const Tensor& t)  // NOLINT(google-explicit-constructor)
      : data_(t.data()), dims_(t.shape().data()), rank_(t.rank()), size_(t.size()) {}

  int rank() const { return rank_; }
  int64_t dim(int i) const { return dims_[i]; }
  int64_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  const float* data() const { return data_; }

  float operator[](int64_t i) const { return data_[i]; }
  float At(int64_t r, int64_t c) const { return data_[r * dims_[1] + c]; }
  float At(int64_t b, int64_t r, int64_t c) const {
    return data_[(b * dims_[1] + r) * dims_[2] + c];
  }

  // Shape copy (allocates; for checks and error paths, not hot loops).
  Shape shape() const { return Shape(dims_, dims_ + rank_); }
  bool ShapeEquals(const ConstTensorView& o) const {
    if (rank_ != o.rank_) {
      return false;
    }
    for (int i = 0; i < rank_; ++i) {
      if (dims_[i] != o.dims_[i]) {
        return false;
      }
    }
    return true;
  }

  int64_t CountNonZero(float tol = 0.0f) const;
  double SparsityRatio(float tol = 0.0f) const;  // fraction of zeros

 private:
  friend class TensorView;
  ConstTensorView(const float* data, const int64_t* dims, int rank, int64_t size)
      : data_(data), dims_(dims), rank_(rank), size_(size) {}

  const float* data_ = nullptr;
  const int64_t* dims_ = nullptr;
  int rank_ = 0;
  int64_t size_ = 0;
};

// Mutable variant; converts implicitly to ConstTensorView.
class TensorView {
 public:
  TensorView() = default;
  TensorView(float* data, const Shape& shape)
      : data_(data), dims_(shape.data()), rank_(static_cast<int>(shape.size())),
        size_(NumElements(shape)) {}
  TensorView(Tensor& t)  // NOLINT(google-explicit-constructor)
      : data_(t.data()), dims_(t.shape().data()), rank_(t.rank()), size_(t.size()) {}

  operator ConstTensorView() const {  // NOLINT(google-explicit-constructor)
    return ConstTensorView(data_, dims_, rank_, size_);
  }

  int rank() const { return rank_; }
  int64_t dim(int i) const { return dims_[i]; }
  int64_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  float* data() const { return data_; }

  float& operator[](int64_t i) const { return data_[i]; }
  float& At(int64_t r, int64_t c) const { return data_[r * dims_[1] + c]; }
  float& At(int64_t b, int64_t r, int64_t c) const {
    return data_[(b * dims_[1] + r) * dims_[2] + c];
  }

  Shape shape() const { return Shape(dims_, dims_ + rank_); }

 private:
  friend class ConstTensorView;
  float* data_ = nullptr;
  const int64_t* dims_ = nullptr;
  int rank_ = 0;
  int64_t size_ = 0;
};

// True when |a - b| <= atol + rtol * |b| element-wise and shapes match.
bool AllClose(const Tensor& a, const Tensor& b, float rtol = 1e-4f, float atol = 1e-5f);
// Largest absolute element-wise difference (shapes must match).
float MaxAbsDiff(const Tensor& a, const Tensor& b);

}  // namespace pit

#endif  // PIT_TENSOR_TENSOR_H_
