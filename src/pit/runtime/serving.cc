#include "pit/runtime/serving.h"

#include <algorithm>
#include <cmath>

#include "pit/common/check.h"
#include "pit/common/parallel_for.h"

namespace pit {

namespace {

struct Request {
  double arrival_us = 0.0;
  int64_t len = 0;
};

}  // namespace

double PercentileNearestRank(const std::vector<double>& sorted_values, double q) {
  PIT_CHECK(!sorted_values.empty()) << "percentile of an empty sample";
  PIT_CHECK(q > 0.0 && q <= 1.0) << "percentile fraction out of (0, 1]";
  const auto n = static_cast<double>(sorted_values.size());
  const auto rank = static_cast<size_t>(std::ceil(q * n));  // 1-based
  const size_t index = std::min(sorted_values.size() - 1, std::max<size_t>(rank, 1) - 1);
  return sorted_values[index];
}

ServingStats SimulateServing(const CostModel& model, Engine engine, const TransformerDims& dims,
                             const SeqLenDistribution& dist, const ServingConfig& config,
                             Rng& rng) {
  PIT_CHECK_GT(config.arrival_rate_rps, 0.0);
  PIT_CHECK_GT(config.num_requests, 0);
  PIT_CHECK_GT(config.max_batch, 0);

  // Generate the arrival trace (Poisson: exponential gaps) and lengths.
  std::vector<Request> requests(static_cast<size_t>(config.num_requests));
  const double mean_gap_us = 1e6 / config.arrival_rate_rps;
  double t = 0.0;
  for (auto& r : requests) {
    double u = rng.NextDouble();
    if (u < 1e-12) {
      u = 1e-12;
    }
    t += -std::log(u) * mean_gap_us;
    r.arrival_us = t;
    r.len = SampleBatchLens(dist, 1, rng)[0];
  }

  ServingStats stats;
  stats.requests = config.num_requests;
  std::vector<double> latencies;
  latencies.reserve(requests.size());

  double device_free_at = 0.0;
  size_t next = 0;
  while (next < requests.size()) {
    // The scheduler closes a batch when the device is free and either the
    // batch is full or the head request has waited max_wait_us (batching
    // window measured from the head request's arrival).
    const double head_arrival = requests[next].arrival_us;
    double start = std::max(device_free_at, head_arrival);
    size_t end = next;
    std::vector<int64_t> lens;
    while (end < requests.size() && static_cast<int64_t>(end - next) < config.max_batch) {
      const double deadline = head_arrival + config.max_wait_us;
      const double close_time = std::max(start, deadline);
      if (requests[end].arrival_us <= close_time) {
        lens.push_back(requests[end].len);
        ++end;
      } else {
        break;
      }
    }
    // Batch launch time: device free, all members arrived, window respected.
    start = std::max(start, requests[end - 1].arrival_us);

    ModelRunCost run = TransformerRun(model, engine, dims, lens);
    const double finish = start + run.cost.Total();
    for (size_t i = next; i < end; ++i) {
      latencies.push_back(finish - requests[i].arrival_us);
    }
    stats.gpu_busy_us += run.cost.Total();
    ++stats.batches;
    device_free_at = finish;
    next = end;
  }

  std::sort(latencies.begin(), latencies.end());
  double sum = 0.0;
  for (double l : latencies) {
    sum += l;
  }
  stats.mean_latency_us = sum / static_cast<double>(latencies.size());
  stats.p50_latency_us = PercentileNearestRank(latencies, 0.5);
  stats.p99_latency_us = PercentileNearestRank(latencies, 0.99);
  stats.makespan_us = device_free_at - requests.front().arrival_us;
  return stats;
}

std::vector<ServingStats> SimulateServingGrid(const CostModel& model, const TransformerDims& dims,
                                              const SeqLenDistribution& dist,
                                              const std::vector<ServingScenario>& scenarios) {
  std::vector<ServingStats> results(scenarios.size());
  ParallelFor(static_cast<int64_t>(scenarios.size()), 1, [&](int64_t s0, int64_t s1) {
    for (int64_t s = s0; s < s1; ++s) {
      const ServingScenario& sc = scenarios[static_cast<size_t>(s)];
      Rng rng(sc.seed);
      results[static_cast<size_t>(s)] =
          SimulateServing(model, sc.engine, dims, dist, sc.config, rng);
    }
  });
  return results;
}

}  // namespace pit
