// Paged KV cache — the paper's §6 connection to vLLM/PagedAttention.
//
// The paper observes that Paged Attention is a domain-specific instance of
// PIT: tokens are stored "sparsely" in non-contiguous physical pages and
// gathered on demand, exactly an SRead over micro-tiles of one token row.
// This module implements that substrate: a page pool holding ragged
// sequences, SRead-style gathering for attention, and the memory accounting
// that shows the win over max-length preallocation.
#ifndef PIT_RUNTIME_PAGED_KV_H_
#define PIT_RUNTIME_PAGED_KV_H_

#include <cstdint>
#include <vector>

#include "pit/tensor/tensor.h"

namespace pit {

class PagedKvCache {
 public:
  // page_size = tokens per page; hidden = floats per token.
  PagedKvCache(int64_t page_size, int64_t hidden);

  // Registers a new sequence; returns its id.
  int AddSequence();
  // Appends one token's vector (hidden floats) to the sequence, allocating a
  // page when the current one is full. Freed pages are reused first.
  void AppendToken(int seq, const float* token);
  void AppendToken(int seq, const Tensor& token);  // [hidden]
  // Releases the sequence's pages back to the free list.
  void FreeSequence(int seq);

  int64_t SequenceLength(int seq) const;
  // SRead: gathers the sequence's scattered pages into a contiguous
  // [len, hidden] tensor (what the attention kernel consumes).
  Tensor GatherSequence(int seq) const;
  // Reads one token (bounds-checked) without materializing the sequence.
  void ReadToken(int seq, int64_t pos, float* out) const;

  int64_t num_pages_allocated() const { return static_cast<int64_t>(pool_.size()); }
  int64_t num_pages_free() const { return static_cast<int64_t>(free_pages_.size()); }
  int64_t AllocatedBytes() const;

  // Bytes a padded preallocation would need for the same sequences.
  static int64_t PaddedBytes(int64_t num_seqs, int64_t max_len, int64_t hidden) {
    return num_seqs * max_len * hidden * static_cast<int64_t>(sizeof(float));
  }

 private:
  struct Sequence {
    std::vector<int64_t> pages;
    int64_t length = 0;
    bool freed = false;
  };
  int64_t AllocatePage();

  int64_t page_size_;
  int64_t hidden_;
  std::vector<std::vector<float>> pool_;  // page -> page_size*hidden floats
  std::vector<int64_t> free_pages_;
  std::vector<Sequence> sequences_;
};

// Single-query paged attention: softmax(q K^T / sqrt(d)) V with K/V rows read
// directly from the cache (the PagedAttention kernel shape). Returns [hidden].
Tensor PagedAttendOne(const PagedKvCache& keys, const PagedKvCache& values, int seq,
                      const Tensor& query);

}  // namespace pit

#endif  // PIT_RUNTIME_PAGED_KV_H_
