// Discrete-event serving simulator (extension experiment).
//
// The paper's e2e numbers are per-batch; serving systems care about what the
// per-batch win buys under load: shorter batches drain the queue faster, so
// tail latency improves super-linearly. This simulator plays a Poisson
// request stream through a batching scheduler and executes each batch with an
// engine's cost function, yielding p50/p99 latency and throughput per engine.
// It is also the natural home for the vLLM discussion in the paper's §6
// (PIT as a general mechanism under a serving scheduler).
#ifndef PIT_RUNTIME_SERVING_H_
#define PIT_RUNTIME_SERVING_H_

#include <vector>

#include "pit/common/rng.h"
#include "pit/runtime/models.h"
#include "pit/workloads/seq_len.h"

namespace pit {

struct ServingConfig {
  double arrival_rate_rps = 50.0;  // Poisson arrivals, requests/second
  int64_t num_requests = 400;
  int64_t max_batch = 32;          // scheduler closes a batch at this size
  double max_wait_us = 20000.0;    // ...or after the oldest request waits this long
};

// Nearest-rank percentile of an ascending-sorted sample: the smallest element
// whose cumulative rank covers fraction `q` of the sample, i.e. index
// ceil(q*n) - 1. The single definition behind every reported percentile —
// the previous p50 used n/2, which over-reads by one element for even n
// (e.g. the 3rd of 4 values instead of the 2nd).
double PercentileNearestRank(const std::vector<double>& sorted_values, double q);

struct ServingStats {
  int64_t requests = 0;
  int64_t batches = 0;
  double mean_latency_us = 0.0;  // arrival -> completion
  double p50_latency_us = 0.0;
  double p99_latency_us = 0.0;
  double makespan_us = 0.0;      // first arrival -> last completion
  double gpu_busy_us = 0.0;
  double ThroughputRps() const {
    return makespan_us > 0.0 ? static_cast<double>(requests) / (makespan_us / 1e6) : 0.0;
  }
  double Utilization() const { return makespan_us > 0.0 ? gpu_busy_us / makespan_us : 0.0; }
};

// Simulates serving `dist`-distributed requests through `engine` on `dims`.
// Deterministic for a given rng seed. The device executes one batch at a
// time (single-stream, as in the paper's latency experiments).
ServingStats SimulateServing(const CostModel& model, Engine engine, const TransformerDims& dims,
                             const SeqLenDistribution& dist, const ServingConfig& config,
                             Rng& rng);

// One cell of a serving sweep: an engine under a load configuration, with its
// own deterministic seed.
struct ServingScenario {
  Engine engine = Engine::kPit;
  ServingConfig config;
  uint64_t seed = 1;
};

// Runs every scenario independently on the ParallelFor worker pool (each with
// its own Rng) — batch-level parallelism across the sweep grid, honoring the
// PIT_NUM_THREADS override. Results come back in input order and are bitwise
// identical to running each scenario sequentially, for any thread count.
std::vector<ServingStats> SimulateServingGrid(const CostModel& model, const TransformerDims& dims,
                                              const SeqLenDistribution& dist,
                                              const std::vector<ServingScenario>& scenarios);

}  // namespace pit

#endif  // PIT_RUNTIME_SERVING_H_
