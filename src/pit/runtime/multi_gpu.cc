#include "pit/runtime/multi_gpu.h"

#include "pit/common/check.h"

namespace pit {

double RingAllReduceUs(int64_t bytes, const TensorParallelConfig& config) {
  PIT_CHECK_GT(config.num_gpus, 0);
  if (config.num_gpus == 1) {
    return 0.0;
  }
  // Ring all-reduce moves 2*(N-1)/N of the payload over each link.
  const double n = static_cast<double>(config.num_gpus);
  const double volume = 2.0 * (n - 1.0) / n * static_cast<double>(bytes);
  return volume / config.link_bw_bytes_us + config.collective_overhead_us;
}

ModelRunCost TensorParallel(const ModelRunCost& single, const TransformerDims& dims,
                            int64_t tokens, const TensorParallelConfig& config,
                            Precision precision, bool training) {
  PIT_CHECK_GT(config.num_gpus, 0);
  const double n = static_cast<double>(config.num_gpus);
  ModelRunCost tp;
  // Compute and memory-bound work shard across devices; launches replicate
  // (each device launches its shard's kernels), conversion/index shards too.
  tp.cost.compute_us = single.cost.compute_us / n;
  tp.cost.memory_us = single.cost.memory_us / n;
  tp.cost.launch_us = single.cost.launch_us;
  tp.cost.convert_us = single.cost.convert_us / n;
  tp.cost.index_us = single.cost.index_us / n;

  // Two all-reduces per layer over the activation tensor [tokens, hidden];
  // backward adds the mirrored gradient collectives.
  const int64_t payload = tokens * dims.hidden * BytesPerElement(precision);
  const double per_layer = 2.0 * RingAllReduceUs(payload, config);
  const double passes = training ? 2.0 : 1.0;
  // Communication lands in memory_us (it is bandwidth-bound time).
  tp.cost.memory_us += per_layer * static_cast<double>(dims.layers) * passes;

  // Per-device memory: weights and weight-state shard; activations for the
  // local shard also shard by N (sequence stays replicated in the payload).
  tp.memory_bytes = single.memory_bytes / config.num_gpus;
  tp.oom = single.oom;
  return tp;
}

}  // namespace pit
