#include "pit/runtime/models.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "pit/common/check.h"
#include "pit/core/sparsity_detector.h"
#include "pit/sparse/coverage.h"
#include "pit/tensor/ops.h"
#include "pit/workloads/moe_routing.h"
#include "pit/workloads/seq_len.h"

namespace pit {

TransformerDims BertBase() { return {"BERT-base", 12, 768, 12, 3072, 30522}; }
TransformerDims BertLarge() { return {"BERT-large", 24, 1024, 16, 4096, 30522}; }
TransformerDims LongformerBase() { return {"Longformer-base", 12, 768, 12, 3072, 50265}; }
TransformerDims LongformerLarge() { return {"Longformer-large", 24, 1024, 16, 4096, 50265}; }
TransformerDims MuseformerDims() { return {"Museformer", 6, 512, 8, 2048, 1253, true}; }

TransformerDims OptDims(const std::string& size) {
  if (size == "125M") {
    return {"OPT-125M", 12, 768, 12, 3072, 50272, true};
  }
  if (size == "350M") {
    return {"OPT-350M", 24, 1024, 16, 4096, 50272, true};
  }
  if (size == "1.3B") {
    return {"OPT-1.3B", 24, 2048, 32, 8192, 50272, true};
  }
  if (size == "13B") {
    return {"OPT-13B", 40, 5120, 40, 20480, 50272, true};
  }
  if (size == "30B") {
    return {"OPT-30B", 48, 7168, 56, 28672, 50272, true};
  }
  PIT_CHECK(false) << "unknown OPT size: " << size;
  return {};
}

TransformerDims SwitchDims() { return {"SwitchTransformer", 12, 768, 12, 3072, 32128}; }
TransformerDims SwinMoeDims() { return {"Swin-MoE", 12, 1024, 32, 4096, 0}; }

namespace {

// ---- shared pricing helpers -------------------------------------------------

// Dense matmul; returns latency without launch overhead (callers batch
// launches). `tile` defaults to the well-tuned cuBLAS-like tile; engines with
// weaker kernels (Triton block sparse, framework fallbacks) pass smaller ones.
double MatmulUs(const CostModel& model, int64_t m, int64_t k, int64_t n, double overhead = 0.0,
                TileShape tile = TileShape{64, 64, 64}) {
  if (m <= 0 || k <= 0 || n <= 0) {
    return 0.0;
  }
  CostBreakdown c = model.DenseMatmul(m, k, n, tile);
  return c.compute_us * (1.0 + overhead);
}

// Triton's block-sparse GEMM tile (32x32 blocks) — measurably less efficient
// than the tuned dense tile, which is why PyTorch-S can lose to PyTorch even
// when it skips padding (§5.1 OPT discussion).
constexpr TileShape kTritonTile{32, 32, 64};

double LaunchUs(const CostModel& model, double count) {
  return model.device().launch_overhead_us * count;
}

// Memory-bound elementwise/softmax op over `elems` elements (read + write).
double ElementwiseUs(const CostModel& model, int64_t elems) {
  return model.MemoryTime(2 * elems * model.ElemBytes());
}

// PyTorch-S per-operator conversion: build the ordered sparse index of an
// activation of `elems` elements and materialize the sparse copy.
double ConvertUs(const CostModel& model, int64_t elems, int64_t nnz) {
  return SparsityDetector::OrderedDetectCostUs(model, elems, std::max<int64_t>(nnz / 32, 1)) +
         model.ScatteredMemoryTime(nnz * model.ElemBytes(), 16);
}

struct TokenCounts {
  int64_t padded = 0;   // batch * max_len
  int64_t block32 = 0;  // per-sequence lengths padded to multiples of 32
  int64_t effective = 0;
};

TokenCounts CountTokens(const std::vector<int64_t>& lens) {
  TokenCounts t;
  const int64_t max_len = MaxLen(lens);
  t.padded = static_cast<int64_t>(lens.size()) * max_len;
  for (int64_t l : lens) {
    t.block32 += (l + 31) / 32 * 32;
    t.effective += l;
  }
  return t;
}

// Sum over sequences of L^2 (attention score area), with optional padding.
int64_t ScoreArea(const std::vector<int64_t>& lens, bool padded) {
  const int64_t max_len = MaxLen(lens);
  int64_t area = 0;
  for (int64_t l : lens) {
    const int64_t ll = padded ? max_len : l;
    area += ll * ll;
  }
  return area;
}

int64_t WeightBytes(const TransformerDims& d, int64_t elem_bytes) {
  const int64_t per_layer = 4 * d.hidden * d.hidden + 2 * d.hidden * d.ffn_hidden;
  return (d.layers * per_layer + d.vocab * d.hidden) * elem_bytes;
}

}  // namespace

ModelRunCost TransformerRun(const CostModel& model, Engine engine, const TransformerDims& dims,
                            const std::vector<int64_t>& lens, bool training) {
  const TokenCounts tc = CountTokens(lens);
  const int64_t h = dims.hidden, f = dims.ffn_hidden;
  const int64_t eb = model.ElemBytes();

  // Engine-dependent processed-token count and per-matmul overhead.
  int64_t tokens = tc.padded;
  double overhead = 0.0;
  bool padded_scores = true;
  switch (engine) {
    case Engine::kPyTorch:
    case Engine::kDeepSpeed:
    case Engine::kTvm:
      tokens = tc.padded;
      break;
    case Engine::kTutel:
    case Engine::kMegaBlocks:
      tokens = tc.padded;  // non-MoE backbone is dense in these systems
      break;
    case Engine::kPyTorchS:
      // Triton's 32-token block granularity on encoders; decoder-only models
      // keep the padded batch (the sparse backend only sees the activations).
      tokens = dims.decoder ? tc.padded : tc.block32;
      padded_scores = dims.decoder;
      break;
    case Engine::kTurboTransformer:
      // Length-sorted sub-batches: compute close to effective with slack.
      tokens = tc.effective + (tc.padded - tc.effective) / 8;
      padded_scores = false;
      break;
    case Engine::kPit:
    case Engine::kPitNoSparseMoe:
    case Engine::kPitNoActivation:
      tokens = tc.effective;
      overhead = 0.05;  // SRead/SWrite
      padded_scores = false;
      break;
    case Engine::kLongformerS:
      tokens = tc.padded;
      break;
  }
  // TVM's Ansor-tuned kernels are a bit faster than the stock dense ones.
  const double tvm_gain = engine == Engine::kTvm ? 0.9 : 1.0;

  ModelRunCost run;
  // PyTorch-S runs its matmuls through Triton block-sparse kernels.
  TileShape mm_tile{64, 64, 64};
  if (engine == Engine::kPyTorchS) {
    mm_tile = kTritonTile;
    overhead = 0.15;  // block-index lookups inside the kernel
  }
  // Per layer: QKV + output projection (4 h->h), FFN up + down.
  double matmul_us = MatmulUs(model, tokens, h, 3 * h, overhead, mm_tile) +
                     MatmulUs(model, tokens, h, h, overhead, mm_tile) +
                     MatmulUs(model, tokens, h, f, overhead, mm_tile) +
                     MatmulUs(model, tokens, f, h, overhead, mm_tile);
  // Attention scores + weighted values: 4*L^2*h FLOPs per sequence.
  const int64_t score_area = ScoreArea(lens, padded_scores);
  const TileShape score_tile{32, 64, 32};
  const double score_flops = 4.0 * static_cast<double>(score_area) * static_cast<double>(h);
  const double score_eff = model.TileEfficiency(score_tile);
  double peak = model.device().fp32_flops_per_sm_us * model.device().num_sms;
  if (model.precision() == Precision::kFp16) {
    peak *= model.device().fp16_multiplier;
  }
  double attn_us = score_flops / (peak * score_eff) * (1.0 + overhead);
  // Softmax + layernorms + residuals (memory-bound).
  double elem_us = ElementwiseUs(model, score_area * dims.heads) +
                   ElementwiseUs(model, 6 * tokens * h);

  double launches_per_layer = 12.0;
  double convert_us = 0.0;
  double index_us = 0.0;
  switch (engine) {
    case Engine::kDeepSpeed:
      launches_per_layer = 4.0;  // fused attention + fused FFN
      elem_us *= 0.6;
      break;
    case Engine::kPyTorchS:
      // Six sparse ops per layer, each converting its activation input.
      convert_us = 6.0 * ConvertUs(model, tc.padded * h, tc.effective * h);
      launches_per_layer = 16.0;
      break;
    case Engine::kTurboTransformer:
      launches_per_layer = 12.0 * 3.0;  // one pass per length bucket
      elem_us *= 0.7;                   // fused kernels
      break;
    case Engine::kPit:
    case Engine::kPitNoSparseMoe:
    case Engine::kPitNoActivation:
      // Unordered micro-tile index over the token mask, once per layer input.
      index_us = SparsityDetector::DetectCostUs(model, tc.padded, std::max<int64_t>(tc.effective / 32, 1));
      launches_per_layer = 13.0;
      break;
    default:
      break;
  }

  double layer_us = (matmul_us + attn_us) * tvm_gain + elem_us +
                    LaunchUs(model, launches_per_layer) + convert_us + index_us;
  double total_us = layer_us * static_cast<double>(dims.layers);
  if (training) {
    // Backward: dgrad + wgrad double the matmul work; elementwise ~2x.
    total_us *= 3.0;
  }

  run.cost.compute_us = (matmul_us + attn_us) * tvm_gain * static_cast<double>(dims.layers) *
                        (training ? 3.0 : 1.0);
  run.cost.memory_us = elem_us * static_cast<double>(dims.layers) * (training ? 3.0 : 1.0);
  run.cost.launch_us = LaunchUs(model, launches_per_layer) * static_cast<double>(dims.layers) *
                       (training ? 2.0 : 1.0);
  run.cost.convert_us = convert_us * static_cast<double>(dims.layers);
  run.cost.index_us = index_us * static_cast<double>(dims.layers);

  // Memory: weights (+grads/optimizer for training) + activations + scores.
  const int64_t weights = WeightBytes(dims, eb);
  int64_t act_tokens = tokens;
  double act_factor = 8.0;
  if (engine == Engine::kDeepSpeed || engine == Engine::kTurboTransformer) {
    act_factor = training ? 8.0 : 3.0;  // fused layers avoid intermediates
  }
  if (engine == Engine::kPyTorchS) {
    act_factor = 10.0;  // dense + sparse copies coexist
  }
  int64_t scores = score_area * dims.heads * eb;
  int64_t act = static_cast<int64_t>(static_cast<double>(act_tokens * h * eb) * act_factor) +
                scores;
  if (training) {
    act *= dims.layers;                      // stored for backward
    run.memory_bytes = weights * 4 + act;    // grads + Adam moments
  } else {
    run.memory_bytes = weights + act;
  }
  return run;
}

// ---- MoE ------------------------------------------------------------------

namespace {

// Cost of one MoE FFN layer (two expert matmuls per token) under an engine.
ModelRunCost MoeLayerCost(const CostModel& model, Engine engine, int64_t h, int64_t f,
                          const std::vector<int64_t>& loads) {
  ModelRunCost run;
  const int64_t eb = model.ElemBytes();
  const int num_experts = static_cast<int>(loads.size());
  int64_t total_tokens = 0;
  for (int64_t l : loads) {
    total_tokens += l;
  }

  switch (engine) {
    case Engine::kPyTorch: {
      // Sequential expert execution: two matmuls + dispatch per expert. Small
      // per-expert batches fall back to the framework's generic (small-tile)
      // kernels and pay index_select/cat traffic on both sides.
      double us = 0.0;
      for (int64_t l : loads) {
        if (l == 0) {
          continue;
        }
        us += MatmulUs(model, l, h, f, 0.0, TileShape{32, 32, 64}) +
              MatmulUs(model, l, f, h, 0.0, TileShape{32, 32, 64});
        us += model.MemoryTime(4 * l * h * eb);  // gather + scatter, in + out
      }
      run.cost.compute_us = us;
      int active = 0;
      for (int64_t l : loads) {
        active += l > 0 ? 1 : 0;
      }
      // Eager-mode per-expert dispatch (index_select/cat/kernel picks) costs
      // ~100 us of host time per expert — the scaling wall of Fig. 8.
      run.cost.launch_us = LaunchUs(model, 4.0 * num_experts) + 100.0 * active;
      run.memory_bytes = total_tokens * (h + f) * eb;
      break;
    }
    case Engine::kPyTorchS: {
      // Masked block-sparse expert compute at 32-token granularity.
      int64_t t32 = 0;
      for (int64_t l : loads) {
        t32 += (l + 31) / 32 * 32;
      }
      run.cost.compute_us = MatmulUs(model, t32, h, f) + MatmulUs(model, t32, f, h);
      run.cost.convert_us =
          ConvertUs(model, static_cast<int64_t>(num_experts) * total_tokens, total_tokens);
      run.cost.launch_us = LaunchUs(model, 8.0);
      run.memory_bytes = (t32 + total_tokens) * (h + f) * eb;
      break;
    }
    case Engine::kTutel:
    case Engine::kDeepSpeed: {
      // Capacity-padded BatchMatmul: every expert padded to a common
      // capacity. Tutel additionally aligns the capacity up to its dispatch
      // granularity (128 tokens) and enforces a minimum capacity factor,
      // which is why it degrades far faster than DeepSpeed at high expert
      // counts (Fig. 8). Memory holds dispatch buffers + intermediates.
      int64_t cap = MaxLoad(loads);
      if (engine == Engine::kTutel) {
        cap = std::max<int64_t>(cap, 2 * total_tokens / std::max(num_experts, 1));
        cap = (cap + 127) / 128 * 128;
      }
      const int64_t padded = cap * num_experts;
      const double dispatch_scale = engine == Engine::kDeepSpeed ? 0.8 : 1.0;
      run.cost.compute_us = MatmulUs(model, padded, h, f) + MatmulUs(model, padded, f, h);
      run.cost.memory_us = model.MemoryTime(2 * padded * h * eb) * dispatch_scale;
      run.cost.launch_us = LaunchUs(model, engine == Engine::kDeepSpeed ? 3.0 : 6.0);
      run.memory_bytes = padded * 2 * (h + f) * eb;
      break;
    }
    case Engine::kMegaBlocks: {
      // Grouped block-sparse GEMM: loads rounded to 128-row blocks, plus the
      // token reorganization traffic PIT's SRead/SWrite avoids.
      int64_t t128 = 0;
      for (int64_t l : loads) {
        t128 += (l + 63) / 64 * 64;  // grouped-GEMM block granularity
      }
      run.cost.compute_us = MatmulUs(model, t128, h, f, 0.06) + MatmulUs(model, t128, f, h, 0.06);
      run.cost.memory_us = model.MemoryTime(4 * total_tokens * h * eb);  // regroup in+out
      run.cost.index_us = SparsityDetector::OrderedDetectCostUs(
          model, total_tokens, std::max<int64_t>(t128 / 128, 1));
      run.cost.launch_us = LaunchUs(model, 6.0);
      run.memory_bytes = (t128 + total_tokens) * (h + f) * eb;
      break;
    }
    case Engine::kPit: {
      // Sparse expert computation: exact loads, SRead/SWrite piggybacked.
      run.cost.compute_us =
          MatmulUs(model, total_tokens, h, f, 0.05) + MatmulUs(model, total_tokens, f, h, 0.05);
      run.cost.index_us = SparsityDetector::DetectCostUs(
          model, total_tokens, std::max<int64_t>(total_tokens / 32, 1));
      run.cost.launch_us = LaunchUs(model, 3.0);
      run.memory_bytes = total_tokens * (h + f) * eb;
      break;
    }
    case Engine::kPitNoSparseMoe: {
      // Ablation: PIT handles the backbone but the MoE layer runs like the
      // capacity-padded BatchMatmul systems.
      const int64_t cap = MaxLoad(loads);
      const int64_t padded = cap * num_experts;
      run.cost.compute_us = MatmulUs(model, padded, h, f) + MatmulUs(model, padded, f, h);
      run.cost.memory_us = model.MemoryTime(2 * padded * h * eb);
      run.cost.launch_us = LaunchUs(model, 6.0);
      run.memory_bytes = padded * 2 * (h + f) * eb;
      break;
    }
    default:
      PIT_CHECK(false) << "engine not applicable to MoE layer";
  }
  return run;
}

}  // namespace

ModelRunCost SwitchTransformerRun(const CostModel& model, Engine engine,
                                  const TransformerDims& dims, const std::vector<int64_t>& lens,
                                  const MoeRunConfig& moe) {
  // Backbone (attention + non-MoE FFN halves). MoE replaces the FFN in every
  // other layer; price the backbone with FFN in all layers then subtract the
  // dense FFN of the MoE layers and add the MoE cost.
  Engine backbone_engine = engine;
  if (engine == Engine::kTutel || engine == Engine::kDeepSpeed ||
      engine == Engine::kMegaBlocks) {
    backbone_engine = Engine::kPyTorch;  // these systems keep the dense backbone
  }
  if (engine == Engine::kPitNoSparseMoe) {
    backbone_engine = Engine::kPit;
  }
  ModelRunCost run = TransformerRun(model, backbone_engine, dims, lens, /*training=*/false);

  const TokenCounts tc = CountTokens(lens);
  const int64_t num_moe_layers = static_cast<int64_t>(moe.layer_loads.size());
  // Remove the dense FFN cost of the MoE layers from the backbone figure.
  int64_t backbone_tokens = tc.padded;
  if (backbone_engine == Engine::kPit) {
    backbone_tokens = tc.effective;
  } else if (backbone_engine == Engine::kPyTorchS) {
    backbone_tokens = tc.block32;
  }
  const double dense_ffn_us = MatmulUs(model, backbone_tokens, dims.hidden, dims.ffn_hidden) +
                              MatmulUs(model, backbone_tokens, dims.ffn_hidden, dims.hidden);
  run.cost.compute_us -= dense_ffn_us * static_cast<double>(num_moe_layers);

  // Dispatch/intermediate buffers are held per MoE layer for the whole pass
  // (the framework graph keeps them alive), so they accumulate across layers
  // — this is what drives Tutel/DeepSpeed into OOM at high expert counts.
  int64_t moe_memory = 0;
  for (const auto& loads : moe.layer_loads) {
    ModelRunCost layer = MoeLayerCost(model, engine, dims.hidden, dims.ffn_hidden, loads);
    run.cost += layer.cost;
    moe_memory += layer.memory_bytes;
  }
  // Expert weights for all MoE layers resident.
  const int64_t expert_weights = num_moe_layers * static_cast<int64_t>(moe.num_experts) * 2 *
                                 dims.hidden * dims.ffn_hidden * model.ElemBytes();
  run.memory_bytes += expert_weights + moe_memory;
  run.oom = run.memory_bytes > moe.device_memory_bytes;
  return run;
}

ModelRunCost SwinMoeRun(const CostModel& model, Engine engine, const TransformerDims& dims,
                        int64_t batch, int64_t tokens_per_image, const MoeRunConfig& moe) {
  // Vision batches have a fixed sequence length: no padding sparsity, so the
  // backbone is identical across engines and only the MoE layers differ.
  std::vector<int64_t> lens(static_cast<size_t>(batch), tokens_per_image);
  return SwitchTransformerRun(model, engine, dims, lens, moe);
}

ModelRunCost OptRun(const CostModel& model, Engine engine, const TransformerDims& dims,
                    const std::vector<int64_t>& lens, const OptRunConfig& config) {
  ModelRunCost run = TransformerRun(model, engine, dims, lens, config.training);
  const TokenCounts tc = CountTokens(lens);

  // ReLU-activation sparsity in the FFN second matmul [T, f] x [f, h]:
  // replace the dense FFN-down cost priced by TransformerRun with the
  // engine's sparse execution of it.
  int64_t tokens = tc.padded;
  if (engine == Engine::kPit || engine == Engine::kPitNoActivation) {
    tokens = tc.effective;
  } else if (engine == Engine::kPyTorchS) {
    tokens = tc.block32;
  }
  const double dense_down_us = MatmulUs(
      model, tokens, dims.ffn_hidden, dims.hidden,
      engine == Engine::kPit || engine == Engine::kPitNoActivation ? 0.05 : 0.0);
  const double scale = config.training ? 3.0 : 1.0;

  const AnalyticPattern act(tokens > 0 ? tokens : 1, dims.ffn_hidden, 1, 1,
                            config.activation_sparsity);
  double sparse_down_us = dense_down_us;
  double extra_index_us = 0.0;
  if (engine == Engine::kPit) {
    // Micro-tile [32,1] along k: compute only covered column slices.
    const double covered = act.NonZeroProb(MicroTileShape{32, 1});
    sparse_down_us = dense_down_us * covered;
    extra_index_us = SparsityDetector::DetectCostUs(
        model, tokens * dims.ffn_hidden,
        std::max<int64_t>(static_cast<int64_t>(covered * static_cast<double>(
                                                    tokens * dims.ffn_hidden / 32)),
                          1));
  } else if (engine == Engine::kPyTorchS) {
    // Triton 32x32 blocks: nearly everything is covered at 99% element
    // sparsity, plus the per-batch conversion of the activation tensor.
    const double covered = act.NonZeroProb(MicroTileShape{32, 32});
    sparse_down_us = dense_down_us * covered;
    extra_index_us = ConvertUs(model, tokens * dims.ffn_hidden,
                               static_cast<int64_t>((1.0 - config.activation_sparsity) *
                                                    static_cast<double>(tokens) *
                                                    static_cast<double>(dims.ffn_hidden)));
  }
  run.cost.compute_us += (sparse_down_us - dense_down_us) * static_cast<double>(dims.layers) * scale;
  run.cost.index_us += extra_index_us * static_cast<double>(dims.layers) * scale;

  run.oom = run.memory_bytes > config.device_memory_bytes;
  return run;
}

ModelRunCost SparseAttentionRun(const CostModel& model, Engine engine,
                                const TransformerDims& dims,
                                const SparseAttentionRunConfig& config) {
  const int64_t L = config.seq_len, h = dims.hidden, f = dims.ffn_hidden;
  const int64_t tokens = config.batch * L;
  const int64_t eb = model.ElemBytes();

  // Dense backbone (projections + FFN) is shared; attention differs.
  double matmul_us = MatmulUs(model, tokens, h, 3 * h) + MatmulUs(model, tokens, h, h) +
                     MatmulUs(model, tokens, h, f) + MatmulUs(model, tokens, f, h);

  const double full_area = static_cast<double>(config.batch) * static_cast<double>(L) *
                           static_cast<double>(L);
  double density = 1.0;
  double overhead = 0.0;
  double convert_us = 0.0;
  double index_us = 0.0;
  double temporaries = 0.0;  // extra memory factor on the score buffers
  switch (engine) {
    case Engine::kPyTorch:
      density = 1.0;
      break;
    case Engine::kPyTorchS:
    case Engine::kDeepSpeed:
      density = config.block32_density;
      if (engine == Engine::kPyTorchS) {
        convert_us = ConvertUs(model, static_cast<int64_t>(full_area),
                               static_cast<int64_t>(full_area * config.mask_density));
      }
      temporaries = 0.3;
      break;
    case Engine::kLongformerS:
      // Pattern decomposition covers the window+global structure with a small
      // over-approximation; its banded kernels pay for the input rearrangement
      // (a scattered copy into temporaries — the "large data rearrangement
      // overheads") and run below the dense tile's efficiency.
      density = config.mask_density * 1.15;
      overhead = 0.35;
      convert_us = model.ScatteredMemoryTime(
          static_cast<int64_t>(4.0 * full_area * density * static_cast<double>(eb)), 8);
      temporaries = 1.0;
      break;
    case Engine::kPit:
      density = config.mask_density;
      overhead = 0.05;
      index_us = SparsityDetector::DetectCostUs(
          model, static_cast<int64_t>(full_area),
          std::max<int64_t>(static_cast<int64_t>(full_area * density / 32.0), 1));
      break;
    default:
      density = 1.0;
      break;
  }

  const double score_flops = 4.0 * full_area * static_cast<double>(h) * density;
  const TileShape score_tile{32, 64, 32};
  double peak = model.device().fp32_flops_per_sm_us * model.device().num_sms;
  if (model.precision() == Precision::kFp16) {
    peak *= model.device().fp16_multiplier;
  }
  const double attn_us = score_flops / (peak * model.TileEfficiency(score_tile)) *
                         (1.0 + overhead);
  const double softmax_us = model.MemoryTime(static_cast<int64_t>(
      2.0 * full_area * density * static_cast<double>(dims.heads * eb)));

  ModelRunCost run;
  const double layers = static_cast<double>(dims.layers);
  run.cost.compute_us = (matmul_us + attn_us) * layers;
  run.cost.memory_us = (softmax_us + ElementwiseUs(model, 6 * tokens * h)) * layers;
  run.cost.launch_us = LaunchUs(model, 12.0) * layers;
  run.cost.convert_us = convert_us * layers;
  run.cost.index_us = index_us * layers;

  const int64_t scores = static_cast<int64_t>(
      full_area * density * static_cast<double>(dims.heads * eb) * (1.0 + temporaries));
  run.memory_bytes = WeightBytes(dims, eb) + tokens * h * eb * 8 + scores;
  run.oom = run.memory_bytes > config.device_memory_bytes;
  return run;
}

ModelRunCost SparseTrainingRun(const CostModel& model, Engine engine,
                               const TransformerDims& dims,
                               const SparseTrainingRunConfig& config) {
  const int64_t tokens = config.batch * config.seq_len;
  const int64_t h = dims.hidden, f = dims.ffn_hidden;
  const int64_t eb = model.ElemBytes();

  // Weight-sparse matmul fraction executed per engine. `kernel_eff` scales
  // the masked matmuls for engines whose sparse kernels run below the tuned
  // dense tile's efficiency (Triton block sparse).
  const AnalyticPattern weights(h, f, config.block_rows, config.block_cols, config.sparsity);
  double frac = 1.0;
  double kernel_eff = 1.0;
  double per_layer_convert = 0.0;
  double per_layer_index = 0.0;
  switch (engine) {
    case Engine::kPyTorch:
      frac = 1.0;  // dense compute, mask applied elementwise
      break;
    case Engine::kPyTorchS: {
      // Triton 32x32 block kernels: fine granularities (32x1) are padded up,
      // and the mask changes every step -> per-batch ordered index rebuild
      // for every sparse weight of every layer.
      frac = weights.NonZeroProb(MicroTileShape{32, 32});
      kernel_eff = 1.5;
      const int64_t weight_elems = 4 * h * h + 2 * h * f;
      per_layer_convert = ConvertUs(model, weight_elems,
                                    static_cast<int64_t>((1.0 - config.sparsity) *
                                                         static_cast<double>(weight_elems)));
      break;
    }
    case Engine::kPit: {
      // Micro-tile [32,1] covers any granularity >= 32x1 exactly; unordered
      // index rebuild per step is nearly free.
      frac = weights.NonZeroProb(MicroTileShape{32, 1});
      const int64_t weight_elems = 4 * h * h + 2 * h * f;
      per_layer_index = SparsityDetector::DetectCostUs(
          model, weight_elems,
          std::max<int64_t>(static_cast<int64_t>(frac * static_cast<double>(weight_elems / 32)),
                            1));
      break;
    }
    default:
      PIT_CHECK(false) << "engine not applicable to sparse training";
  }

  // Per layer: 6 weight matmuls (QKV, out, FFN up/down), x3 for fwd+bwd.
  const double dense_matmuls_us =
      MatmulUs(model, tokens, h, 3 * h) + MatmulUs(model, tokens, h, h) +
      MatmulUs(model, tokens, h, f) + MatmulUs(model, tokens, f, h);
  const double attn_area = static_cast<double>(config.batch) *
                           static_cast<double>(config.seq_len) *
                           static_cast<double>(config.seq_len);
  const double attn_flops = 4.0 * attn_area * static_cast<double>(h);
  double peak = model.device().fp32_flops_per_sm_us * model.device().num_sms;
  const double attn_us = attn_flops / (peak * model.TileEfficiency(TileShape{32, 64, 32}));

  ModelRunCost run;
  const double layers = static_cast<double>(dims.layers);
  run.cost.compute_us = (dense_matmuls_us * frac * kernel_eff + attn_us) * 3.0 * layers;
  run.cost.memory_us = ElementwiseUs(model, 8 * tokens * h) * 3.0 * layers;
  run.cost.launch_us = LaunchUs(model, 24.0) * layers;
  run.cost.convert_us = per_layer_convert * layers;  // rebuilt once per step
  run.cost.index_us = per_layer_index * layers;

  // Memory: PyTorch* hold dense weights/grads/moments; PIT holds the covered
  // fraction of weight state. Activations dominate and are engine-equal.
  const int64_t weight_state = WeightBytes(dims, eb) * 4;  // w + g + 2 moments
  const int64_t acts = tokens * h * eb * 12 * dims.layers;
  if (engine == Engine::kPit) {
    const double covered = weights.NonZeroProb(MicroTileShape{32, 1});
    run.memory_bytes = static_cast<int64_t>(static_cast<double>(weight_state) *
                                            (0.15 + 0.85 * covered)) + acts;
  } else if (engine == Engine::kPyTorchS) {
    run.memory_bytes = weight_state + acts + WeightBytes(dims, eb) / 2;  // sparse copies
  } else {
    run.memory_bytes = weight_state + acts;
  }
  return run;
}

// ---- PlannedFfnStack -------------------------------------------------------

namespace {

Tensor StackInit(int64_t in, int64_t out, Rng& rng) {
  const float bound = std::sqrt(6.0f / static_cast<float>(in + out));
  return Tensor::Random({in, out}, rng, -bound, bound);
}

}  // namespace

PlannedFfnStack::PlannedFfnStack(int64_t layers, int64_t hidden, int64_t ffn_hidden, Rng& rng)
    : hidden_(hidden) {
  PIT_CHECK_GT(layers, 0);
  weights_.reserve(static_cast<size_t>(layers));
  for (int64_t l = 0; l < layers; ++l) {
    LayerWeights w;
    w.w_up = StackInit(hidden, ffn_hidden, rng);
    w.b_up = Tensor::Random({ffn_hidden}, rng, -0.01f, 0.01f);
    w.w_down = StackInit(ffn_hidden, hidden, rng);
    w.b_down = Tensor::Random({hidden}, rng, -0.01f, 0.01f);
    weights_.push_back(std::move(w));
  }
}

PlannedFfnStack::~PlannedFfnStack() = default;

PlannedFfnStack::TokenEntry& PlannedFfnStack::EntryFor(int64_t tokens) const {
  auto it = entries_.find(tokens);
  if (it != entries_.end()) {
    return it->second;
  }
  // Bound the per-token-count cache (one graph + plan + staging tensor per
  // layer per entry): variable-length serving must not pin arenas forever.
  constexpr size_t kMaxEntries = 16;
  if (entries_.size() >= kMaxEntries) {
    entries_.clear();
  }
  TokenEntry entry;
  entry.graphs.reserve(weights_.size());
  entry.decisions.reserve(weights_.size());
  entry.outs.reserve(weights_.size());
  for (const LayerWeights& w : weights_) {
    auto g = std::make_unique<Graph>();
    const int x = g->AddInput("x", {tokens, hidden_});
    const int w_up = g->AddWeightRef("w_up", &w.w_up);
    const int b_up = g->AddWeightRef("b_up", &w.b_up);
    const int w_down = g->AddWeightRef("w_down", &w.w_down);
    const int b_down = g->AddWeightRef("b_down", &w.b_down);
    const int up = g->AddMatmulBias("up_proj", x, w_up, b_up);
    const int act = g->AddRelu("relu", up);
    const int down = g->AddMatmulBias("down_proj", act, w_down, b_down);
    g->AddAdd("residual", x, down);
    g->PropagateSparsity();
    entry.decisions.push_back(g->PitPass());
    entry.graphs.push_back(std::move(g));
    entry.outs.emplace_back(Shape{tokens, hidden_});
  }
  entry.feeds = {{"x", nullptr}};
  return entries_.emplace(tokens, std::move(entry)).first->second;
}

Tensor PlannedFfnStack::RunPlanned(const Tensor& x, PitCompiler* compiler) const {
  PIT_CHECK_EQ(x.rank(), 2);
  PIT_CHECK_EQ(x.dim(1), hidden_);
  // Plans share one arena + staging buffer set per shape: serialize forwards.
  std::lock_guard<std::mutex> lock(mu_);
  TokenEntry& entry = EntryFor(x.dim(0));
  const Tensor* cur = &x;
  for (size_t l = 0; l < entry.graphs.size(); ++l) {
    entry.feeds["x"] = cur;
    ExecutionPlan& plan =
        entry.graphs[l]->Plan(compiler != nullptr ? &entry.decisions[l] : nullptr);
    ConstTensorView out = plan.Run(entry.feeds, compiler);
    // Stage the layer output: the next layer binds it as its feed while this
    // layer's arena slot gets reused. The staging tensors are allocated once
    // per token count, so steady-state forwards stay allocation-free.
    std::copy(out.data(), out.data() + out.size(), entry.outs[l].data());
    cur = &entry.outs[l];
  }
  return *cur;  // value copy for the caller; staging stays reusable
}

int64_t PlannedFfnStack::Stream::ArenaBytes() const {
  int64_t total = 0;
  for (const auto& ctx : contexts) {
    total += ctx->arena_bytes();
  }
  return total;
}

PlannedFfnStack::Stream PlannedFfnStack::MakeStream(int64_t tokens, bool pit) const {
  Stream stream;
  {
    std::lock_guard<std::mutex> lock(mu_);
    TokenEntry& entry = EntryFor(tokens);
    stream.plans.reserve(entry.graphs.size());
    for (size_t l = 0; l < entry.graphs.size(); ++l) {
      stream.plans.push_back(
          entry.graphs[l]->PlanShared(pit ? &entry.decisions[l] : nullptr));
    }
  }
  // Contexts, feeds, and staging are private to the stream; the co-owning
  // plan handles keep the compiled plans alive across cache eviction.
  stream.contexts.reserve(stream.plans.size());
  for (const auto& plan : stream.plans) {
    stream.contexts.push_back(std::make_unique<ExecutionContext>(*plan));
  }
  // One staging slot per layer but the last, which writes straight into the
  // caller's output.
  for (size_t l = 0; l + 1 < stream.plans.size(); ++l) {
    stream.staging.emplace_back(Shape{tokens, hidden_});
  }
  stream.feeds = {{"x", nullptr}};
  stream.tokens = tokens;
  return stream;
}

void PlannedFfnStack::ForwardWith(Stream& stream, const Tensor& x, PitCompiler* compiler,
                                  Tensor* out) const {
  PIT_CHECK(!stream.plans.empty()) << "stream not initialized";
  PIT_CHECK_EQ(x.rank(), 2);
  PIT_CHECK(x.dim(0) == stream.tokens && x.dim(1) == hidden_)
      << "input shape does not match the stream's plans";
  PIT_CHECK(out != nullptr);
  PIT_CHECK(out->dim(0) == x.dim(0) && out->dim(1) == x.dim(1));
  const Tensor* cur = &x;
  for (size_t l = 0; l < stream.plans.size(); ++l) {
    stream.feeds["x"] = cur;
    ConstTensorView res = stream.plans[l]->RunWith(*stream.contexts[l], stream.feeds, compiler);
    // Stage into the stream-private buffer (the caller's `out` for the last
    // layer): the next layer binds it as its feed while this layer's arena
    // is reused. Steady-state forwards allocate nothing.
    Tensor* dst = l + 1 < stream.plans.size() ? &stream.staging[l] : out;
    std::copy(res.data(), res.data() + res.size(), dst->data());
    cur = dst;
  }
}

Tensor PlannedFfnStack::Forward(const Tensor& x) const { return RunPlanned(x, nullptr); }

Tensor PlannedFfnStack::ForwardPit(const Tensor& x, PitCompiler& compiler) const {
  return RunPlanned(x, &compiler);
}

Tensor PlannedFfnStack::ForwardEager(const Tensor& x) const {
  Tensor cur = x;
  for (const LayerWeights& w : weights_) {
    cur = Add(cur, MatMulBias(Relu(MatMulBias(cur, w.w_up, w.b_up)), w.w_down, w.b_down));
  }
  return cur;
}

PlanStats PlannedFfnStack::StatsFor(int64_t tokens) const {
  std::lock_guard<std::mutex> lock(mu_);
  TokenEntry& entry = EntryFor(tokens);
  PlanStats total;
  for (const auto& g : entry.graphs) {
    const PlanStats& s = g->Plan().stats();
    total.arena_bytes += s.arena_bytes;
    total.sum_temporary_bytes += s.sum_temporary_bytes;
    total.num_steps += s.num_steps;
    total.num_inplace += s.num_inplace;
    total.num_pit_steps += s.num_pit_steps;
    total.num_fused += s.num_fused;
    total.num_wavefronts += s.num_wavefronts;
    total.max_wavefront_width = std::max(total.max_wavefront_width, s.max_wavefront_width);
    total.parallel_step_work = std::max(total.parallel_step_work, s.parallel_step_work);
    total.wavefront_profitable = total.wavefront_profitable || s.wavefront_profitable;
  }
  return total;
}

// ---- PlannedTransformerStack -----------------------------------------------

PlannedTransformerStack::PlannedTransformerStack(int64_t layers, int64_t hidden, int64_t heads,
                                                 int64_t ffn_hidden, Rng& rng)
    : hidden_(hidden) {
  PIT_CHECK_GT(layers, 0);
  layers_.reserve(static_cast<size_t>(layers));
  for (int64_t l = 0; l < layers; ++l) {
    layers_.push_back(std::make_unique<TransformerEncoderLayer>(hidden, heads, ffn_hidden, rng));
  }
}

PlannedTransformerStack::~PlannedTransformerStack() = default;

Tensor PlannedTransformerStack::RunPlanned(const Tensor& x, const Tensor* attn_mask,
                                           PitCompiler* compiler) const {
  Tensor out(Shape{x.dim(0), x.dim(1)});
  ForwardInto(x, attn_mask, compiler, &out);
  return out;
}

void PlannedTransformerStack::ForwardInto(const Tensor& x, const Tensor* attn_mask,
                                          PitCompiler* compiler, Tensor* out) const {
  PIT_CHECK_EQ(x.rank(), 2);
  PIT_CHECK_EQ(x.dim(1), hidden_);
  PIT_CHECK(out != nullptr);
  PIT_CHECK(out->dim(0) == x.dim(0) && out->dim(1) == x.dim(1));
  // Staging buffers are shared per shape: serialize forwards. Each layer's
  // own plan lock nests safely inside (no other path takes both).
  std::lock_guard<std::mutex> lock(mu_);
  auto it = staging_.find(x.dim(0));
  if (it == staging_.end()) {
    constexpr size_t kMaxEntries = 16;  // match the layer plan-cache bound
    if (staging_.size() >= kMaxEntries) {
      staging_.clear();
    }
    // One staging slot per layer but the last, which writes straight into
    // the caller's output.
    std::vector<Tensor> outs;
    outs.reserve(layers_.size());
    for (size_t l = 0; l + 1 < layers_.size(); ++l) {
      outs.emplace_back(Shape{x.dim(0), hidden_});
    }
    it = staging_.emplace(x.dim(0), std::move(outs)).first;
  }
  std::vector<Tensor>& outs = it->second;
  const Tensor* cur = &x;
  for (size_t l = 0; l < layers_.size(); ++l) {
    // The layer writes straight into its staging slot: the next layer binds
    // it as a feed while this layer's arena gets reused. Steady-state
    // forwards therefore allocate nothing.
    Tensor* dst = l + 1 < layers_.size() ? &outs[l] : out;
    layers_[l]->ForwardInto(*cur, attn_mask, compiler, dst);
    cur = dst;
  }
}

int64_t PlannedTransformerStack::Stream::ArenaBytes() const {
  int64_t total = 0;
  for (const auto& layer : layers) {
    total += layer.ctx->arena_bytes();
  }
  return total;
}

PlannedTransformerStack::Stream PlannedTransformerStack::MakeStream(int64_t tokens, bool masked,
                                                                    bool pit) const {
  Stream stream;
  stream.layers.reserve(layers_.size());
  for (const auto& layer : layers_) {
    stream.layers.push_back(layer->MakeStream(tokens, masked, pit));
  }
  // One staging slot per layer but the last, which writes straight into the
  // caller's output. Private to the stream — no stack lock anywhere on this
  // path (each layer's MakeStream took its own plan-cache lock above).
  for (size_t l = 0; l + 1 < layers_.size(); ++l) {
    stream.staging.emplace_back(Shape{tokens, hidden_});
  }
  stream.tokens = tokens;
  stream.masked = masked;
  return stream;
}

void PlannedTransformerStack::ForwardWith(Stream& stream, const Tensor& x,
                                          const Tensor* attn_mask, PitCompiler* compiler,
                                          Tensor* out) const {
  PIT_CHECK_EQ(stream.layers.size(), layers_.size()) << "stream not initialized for this stack";
  PIT_CHECK_EQ(x.rank(), 2);
  PIT_CHECK(x.dim(0) == stream.tokens && x.dim(1) == hidden_)
      << "input shape does not match the stream's plans";
  PIT_CHECK((attn_mask != nullptr) == stream.masked)
      << "mask presence does not match the stream's plans";
  PIT_CHECK(out != nullptr);
  PIT_CHECK(out->dim(0) == x.dim(0) && out->dim(1) == x.dim(1));
  const Tensor* cur = &x;
  for (size_t l = 0; l < layers_.size(); ++l) {
    Tensor* dst = l + 1 < layers_.size() ? &stream.staging[l] : out;
    layers_[l]->ForwardWith(stream.layers[l], *cur, attn_mask, compiler, dst);
    cur = dst;
  }
}

Tensor PlannedTransformerStack::Forward(const Tensor& x, const Tensor* attn_mask) const {
  return RunPlanned(x, attn_mask, nullptr);
}

Tensor PlannedTransformerStack::ForwardPit(const Tensor& x, PitCompiler& compiler,
                                           const Tensor* attn_mask) const {
  return RunPlanned(x, attn_mask, &compiler);
}

Tensor PlannedTransformerStack::ForwardEager(const Tensor& x, const Tensor* attn_mask) const {
  Tensor cur = x;
  for (const auto& layer : layers_) {
    cur = layer->ForwardEager(cur, attn_mask);
  }
  return cur;
}

PlanStats PlannedTransformerStack::StatsFor(int64_t tokens, bool masked) const {
  PlanStats total;
  for (const auto& layer : layers_) {
    const PlanStats s = layer->PlanStatsFor(tokens, masked);
    total.arena_bytes += s.arena_bytes;
    total.sum_temporary_bytes += s.sum_temporary_bytes;
    total.num_steps += s.num_steps;
    total.num_inplace += s.num_inplace;
    total.num_pit_steps += s.num_pit_steps;
    total.num_fused += s.num_fused;
    total.num_wavefronts += s.num_wavefronts;
    total.max_wavefront_width = std::max(total.max_wavefront_width, s.max_wavefront_width);
    total.parallel_step_work = std::max(total.parallel_step_work, s.parallel_step_work);
    total.wavefront_profitable = total.wavefront_profitable || s.wavefront_profitable;
  }
  return total;
}

}  // namespace pit
