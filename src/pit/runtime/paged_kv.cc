#include "pit/runtime/paged_kv.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "pit/common/check.h"
#include "pit/tensor/ops.h"

namespace pit {

PagedKvCache::PagedKvCache(int64_t page_size, int64_t hidden)
    : page_size_(page_size), hidden_(hidden) {
  PIT_CHECK_GT(page_size, 0);
  PIT_CHECK_GT(hidden, 0);
}

int PagedKvCache::AddSequence() {
  sequences_.push_back(Sequence{});
  return static_cast<int>(sequences_.size()) - 1;
}

int64_t PagedKvCache::AllocatePage() {
  if (!free_pages_.empty()) {
    const int64_t page = free_pages_.back();
    free_pages_.pop_back();
    return page;
  }
  pool_.emplace_back(static_cast<size_t>(page_size_ * hidden_), 0.0f);
  return static_cast<int64_t>(pool_.size()) - 1;
}

void PagedKvCache::AppendToken(int seq, const float* token) {
  Sequence& s = sequences_.at(static_cast<size_t>(seq));
  PIT_CHECK(!s.freed) << "appending to a freed sequence";
  const int64_t slot = s.length % page_size_;
  if (slot == 0) {
    s.pages.push_back(AllocatePage());
  }
  float* page = pool_[static_cast<size_t>(s.pages.back())].data();
  std::memcpy(page + slot * hidden_, token, static_cast<size_t>(hidden_) * sizeof(float));
  ++s.length;
}

void PagedKvCache::AppendToken(int seq, const Tensor& token) {
  PIT_CHECK_EQ(token.size(), hidden_);
  AppendToken(seq, token.data());
}

void PagedKvCache::FreeSequence(int seq) {
  Sequence& s = sequences_.at(static_cast<size_t>(seq));
  PIT_CHECK(!s.freed);
  for (int64_t page : s.pages) {
    free_pages_.push_back(page);
  }
  s.pages.clear();
  s.length = 0;
  s.freed = true;
}

int64_t PagedKvCache::SequenceLength(int seq) const {
  return sequences_.at(static_cast<size_t>(seq)).length;
}

void PagedKvCache::ReadToken(int seq, int64_t pos, float* out) const {
  const Sequence& s = sequences_.at(static_cast<size_t>(seq));
  PIT_CHECK(!s.freed);
  PIT_CHECK_GE(pos, 0);
  PIT_CHECK_LT(pos, s.length);
  const int64_t page = s.pages[static_cast<size_t>(pos / page_size_)];
  const float* src = pool_[static_cast<size_t>(page)].data() + (pos % page_size_) * hidden_;
  std::memcpy(out, src, static_cast<size_t>(hidden_) * sizeof(float));
}

Tensor PagedKvCache::GatherSequence(int seq) const {
  const Sequence& s = sequences_.at(static_cast<size_t>(seq));
  PIT_CHECK(!s.freed);
  Tensor out({s.length, hidden_});
  for (int64_t pos = 0; pos < s.length; ++pos) {
    ReadToken(seq, pos, out.data() + pos * hidden_);
  }
  return out;
}

int64_t PagedKvCache::AllocatedBytes() const {
  return static_cast<int64_t>(pool_.size()) * page_size_ * hidden_ *
         static_cast<int64_t>(sizeof(float));
}

Tensor PagedAttendOne(const PagedKvCache& keys, const PagedKvCache& values, int seq,
                      const Tensor& query) {
  const int64_t len = keys.SequenceLength(seq);
  PIT_CHECK_EQ(len, values.SequenceLength(seq));
  PIT_CHECK_EQ(query.rank(), 1);
  const int64_t d = query.size();
  Tensor k = keys.GatherSequence(seq);    // [len, d]
  Tensor v = values.GatherSequence(seq);  // [len, d]
  PIT_CHECK_EQ(k.dim(1), d);
  // scores = q . k_t / sqrt(d), softmax, weighted sum of v.
  const float scale = 1.0f / std::sqrt(static_cast<float>(d));
  Tensor scores({1, len});
  for (int64_t t = 0; t < len; ++t) {
    float acc = 0.0f;
    for (int64_t j = 0; j < d; ++j) {
      acc += query[j] * k.At(t, j);
    }
    scores.At(0, t) = acc * scale;
  }
  Tensor probs = Softmax(scores);
  Tensor out({d});
  for (int64_t t = 0; t < len; ++t) {
    const float p = probs.At(0, t);
    for (int64_t j = 0; j < d; ++j) {
      out[j] += p * v.At(t, j);
    }
  }
  return out;
}

}  // namespace pit
