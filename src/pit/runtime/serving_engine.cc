#include "pit/runtime/serving_engine.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <map>
#include <utility>

#include "pit/common/check.h"
#include "pit/common/parallel_for.h"
#include "pit/gpusim/device.h"
#include "pit/runtime/serving.h"

namespace pit {

namespace {

// Per-stream shape-pool bound, matching the nn-layer plan-cache bound: a
// long-lived engine under variable-length traffic must not pin arenas for
// every token count it ever saw.
constexpr size_t kMaxPooledShapes = 16;

int ResolveNumStreams(const ServingEngineOptions& options) {
  if (options.num_streams > 0) {
    return options.num_streams;
  }
  if (const char* env = std::getenv("PIT_NUM_STREAMS")) {
    return ParseNumStreamsEnv(env);
  }
  return NumThreads();
}

}  // namespace

// One request stream: a private pool of per-shape stack streams (shared plan
// + private contexts), reused across requests and Serve calls, plus the
// stream's private PitCompiler. Nothing in here is ever touched by another
// stream.
struct ServingEngine::StreamState {
  std::map<std::pair<int64_t, bool>, PlannedTransformerStack::Stream> transformer_pool;
  std::map<int64_t, PlannedFfnStack::Stream> ffn_pool;
  std::unique_ptr<PitCompiler> compiler;
  int64_t requests = 0;
  // This stream's share of the engine-wide pool accounting.
  int64_t pooled_contexts = 0;
  int64_t pooled_arena_bytes = 0;
};

ServingEngine::ServingEngine(const PlannedTransformerStack& stack,
                             const ServingEngineOptions& options)
    : transformer_(&stack) {
  Init(options);
}

ServingEngine::ServingEngine(const PlannedFfnStack& stack, const ServingEngineOptions& options)
    : ffn_(&stack) {
  Init(options);
}

void ServingEngine::Init(const ServingEngineOptions& options) {
  num_streams_ = ResolveNumStreams(options);
  use_pit_ = options.use_pit;
  streams_.reserve(static_cast<size_t>(num_streams_));
  for (int s = 0; s < num_streams_; ++s) {
    auto state = std::make_unique<StreamState>();
    if (use_pit_) {
      state->compiler = std::make_unique<PitCompiler>(V100());
    }
    streams_.push_back(std::move(state));
  }
  stats_.num_streams = num_streams_;
  stats_.per_stream_requests.assign(static_cast<size_t>(num_streams_), 0);
}

ServingEngine::~ServingEngine() = default;

void ServingEngine::AccountPoolDelta(int64_t contexts_delta, int64_t bytes_delta) {
  const int64_t contexts =
      pool_contexts_.fetch_add(contexts_delta, std::memory_order_relaxed) + contexts_delta;
  const int64_t bytes =
      pool_arena_bytes_.fetch_add(bytes_delta, std::memory_order_relaxed) + bytes_delta;
  // Fold into the lifetime peaks at growth time: a pool evicted later in the
  // same Serve must not erase the peak it reached.
  int64_t hw = pool_contexts_highwater_.load(std::memory_order_relaxed);
  while (contexts > hw &&
         !pool_contexts_highwater_.compare_exchange_weak(hw, contexts,
                                                         std::memory_order_relaxed)) {
  }
  hw = pool_arena_bytes_highwater_.load(std::memory_order_relaxed);
  while (bytes > hw && !pool_arena_bytes_highwater_.compare_exchange_weak(
                           hw, bytes, std::memory_order_relaxed)) {
  }
}

template <typename Pool, typename Key, typename MakeStreamFn>
typename Pool::mapped_type& ServingEngine::PooledStream(StreamState& stream, Pool& pool,
                                                        const Key& key, MakeStreamFn&& make) {
  auto it = pool.find(key);
  if (it == pool.end()) {
    if (pool.size() >= kMaxPooledShapes) {
      AccountPoolDelta(-stream.pooled_contexts, -stream.pooled_arena_bytes);
      stream.pooled_contexts = 0;
      stream.pooled_arena_bytes = 0;
      pool.clear();
    }
    it = pool.emplace(key, make()).first;
    stream.pooled_contexts += it->second.NumContexts();
    stream.pooled_arena_bytes += it->second.ArenaBytes();
    AccountPoolDelta(it->second.NumContexts(), it->second.ArenaBytes());
  }
  return it->second;
}

void ServingEngine::ServeOn(StreamState& stream, const ServeRequest& request, Tensor* out) {
  PIT_CHECK_EQ(request.x.rank(), 2);
  PitCompiler* compiler = stream.compiler.get();
  if (transformer_ != nullptr) {
    const std::pair<int64_t, bool> key{request.x.dim(0), request.attn_mask != nullptr};
    PlannedTransformerStack::Stream& pooled =
        PooledStream(stream, stream.transformer_pool, key, [&] {
          return transformer_->MakeStream(key.first, key.second, use_pit_);
        });
    transformer_->ForwardWith(pooled, request.x, request.attn_mask, compiler, out);
    return;
  }
  PIT_CHECK(request.attn_mask == nullptr) << "FFN-stack serving takes no attention mask";
  const int64_t key = request.x.dim(0);
  PlannedFfnStack::Stream& pooled = PooledStream(
      stream, stream.ffn_pool, key, [&] { return ffn_->MakeStream(key, use_pit_); });
  ffn_->ForwardWith(pooled, request.x, compiler, out);
}

std::vector<Tensor> ServingEngine::Serve(const std::vector<ServeRequest>& requests) {
  const int64_t n = static_cast<int64_t>(requests.size());
  std::vector<Tensor> outputs;
  outputs.reserve(static_cast<size_t>(n));
  const int64_t hidden = transformer_ != nullptr ? transformer_->hidden() : ffn_->hidden();
  for (const ServeRequest& request : requests) {
    PIT_CHECK(request.x.rank() == 2 && request.x.dim(1) == hidden)
        << "request activation must be [tokens, hidden]";
    outputs.emplace_back(Shape{request.x.dim(0), request.x.dim(1)});
  }
  std::vector<double> latencies(static_cast<size_t>(n), 0.0);

  // Work-conserving M:N dispatch: each stream worker greedily claims the
  // next unserved request, so a long request never leaves streams idle while
  // work remains. Requests never split across streams — per-request replay
  // order (and therefore bits) is independent of the claim interleaving.
  std::atomic<int64_t> next{0};
  const auto t0 = std::chrono::steady_clock::now();
  const auto elapsed_us = [&t0] {
    return std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() - t0)
        .count();
  };
  const int budget = std::max(1, NumThreads() / std::max(1, num_streams_));
  ParallelTasks(num_streams_, budget, [&](int64_t s) {
    StreamState& stream = *streams_[static_cast<size_t>(s)];
    for (int64_t i = next.fetch_add(1, std::memory_order_relaxed); i < n;
         i = next.fetch_add(1, std::memory_order_relaxed)) {
      ServeOn(stream, requests[static_cast<size_t>(i)], &outputs[static_cast<size_t>(i)]);
      latencies[static_cast<size_t>(i)] = elapsed_us();
      ++stream.requests;
    }
  });
  const double wall_us = elapsed_us();

  // Lifetime + last-call statistics (single-caller engine: no worker is
  // running here anymore, so plain reads of the stream states are safe).
  stats_.requests += n;
  stats_.wall_us = wall_us;
  stats_.requests_per_sec = wall_us > 0.0 ? static_cast<double>(n) / (wall_us / 1e6) : 0.0;
  for (int s = 0; s < num_streams_; ++s) {
    stats_.per_stream_requests[static_cast<size_t>(s)] = streams_[static_cast<size_t>(s)]->requests;
  }
  stats_.pool_contexts = pool_contexts_.load(std::memory_order_relaxed);
  stats_.pool_contexts_highwater = pool_contexts_highwater_.load(std::memory_order_relaxed);
  stats_.pool_arena_bytes = pool_arena_bytes_.load(std::memory_order_relaxed);
  stats_.pool_arena_bytes_highwater = pool_arena_bytes_highwater_.load(std::memory_order_relaxed);
  if (n > 0) {
    double sum = 0.0;
    for (double l : latencies) {
      sum += l;
    }
    stats_.mean_latency_us = sum / static_cast<double>(n);
    std::sort(latencies.begin(), latencies.end());
    stats_.p50_latency_us = PercentileNearestRank(latencies, 0.50);
    stats_.p99_latency_us = PercentileNearestRank(latencies, 0.99);
  }
  return outputs;
}

}  // namespace pit
