#include "pit/runtime/serving_engine.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <map>
#include <span>
#include <utility>

#include "pit/common/backend.h"
#include "pit/common/check.h"
#include "pit/common/parallel_for.h"
#include "pit/core/sread_swrite.h"
#include "pit/graph/plan_verifier.h"
#include "pit/gpusim/device.h"
#include "pit/runtime/serving.h"
#include "pit/workloads/attention_masks.h"
#include "pit/workloads/seq_len.h"

namespace pit {

namespace {

// Per-stream shape-pool bound, matching the nn-layer plan-cache bound: a
// long-lived engine under variable-length traffic must not pin arenas for
// every token count it ever saw. Ragged batching keeps the working set far
// under this bound by construction (power-of-two buckets).
constexpr size_t kMaxPooledShapes = 16;
// Floor of the power-of-two sum-token bucket grid: batches smaller than this
// still replay the 16-token plan rather than minting tiny plan keys.
constexpr int64_t kMinBatchBucket = 16;
// Token budget per packed batch when neither the option nor PIT_BATCH_TOKENS
// sets one.
constexpr int kDefaultMaxBatchTokens = 512;

int ResolveNumStreams(const ServingEngineOptions& options) {
  if (options.num_streams > 0) {
    return options.num_streams;
  }
  if (const char* env = std::getenv("PIT_NUM_STREAMS")) {
    return ParseNumStreamsEnv(env);
  }
  return NumThreads();
}

int ResolveBatchWindow(const ServingEngineOptions& options) {
  if (options.batch_window > 0) {
    return options.batch_window;
  }
  if (const char* env = std::getenv("PIT_BATCH_WINDOW")) {
    return ParseBatchWindowEnv(env);
  }
  return 1;  // batching off: every request replays at its exact token count
}

int ResolveMaxBatchTokens(const ServingEngineOptions& options) {
  if (options.max_batch_tokens > 0) {
    return options.max_batch_tokens;
  }
  if (const char* env = std::getenv("PIT_BATCH_TOKENS")) {
    return ParseBatchTokensEnv(env);
  }
  return kDefaultMaxBatchTokens;
}

// The padded token count a pool entry is keyed by, for the per-bucket pool
// accounting (the transformer pool's key carries a masked flag on top).
int64_t BucketOfPoolKey(const std::pair<int64_t, bool>& key) { return key.first; }
int64_t BucketOfPoolKey(int64_t key) { return key; }

// Pooled-plan verification (PIT_VERIFY_PLAN): a stream entering the pool
// replays its plans for the rest of the engine's lifetime, so the invariants
// concurrent replay rides on are proven once at pool entry. The compile hook
// already verified freshly compiled plans; this catches pool entries built
// from plans cached before the knob engaged.
void VerifyPooledPlans(const PlannedTransformerStack::Stream& pooled) {
  for (const TransformerEncoderLayer::Stream& layer : pooled.layers) {
    if (layer.plan != nullptr) {
      VerifyPlanOrDie(*layer.plan, "ServingEngine pooled transformer plan");
    }
  }
}

void VerifyPooledPlans(const PlannedFfnStack::Stream& pooled) {
  for (const std::shared_ptr<ExecutionPlan>& plan : pooled.plans) {
    if (plan != nullptr) {
      VerifyPlanOrDie(*plan, "ServingEngine pooled FFN plan");
    }
  }
}

}  // namespace

// One request stream: a private pool of per-shape stack streams (shared plan
// + private contexts), reused across requests and Serve calls, plus the
// stream's private PitCompiler and packed-batch staging. Nothing in here is
// ever touched by another stream.
struct ServingEngine::StreamState {
  // Reused packed tiles for one bucket: requests gather into x, the plan
  // replays into out, and (transformer only) the block-diagonal mask is
  // rebuilt in place per batch. Keyed by bucket so steady-state batching
  // allocates nothing.
  struct BatchStaging {
    Tensor x;     // [bucket, hidden]
    Tensor out;   // [bucket, hidden]
    Tensor mask;  // [bucket, bucket], transformer stacks only
  };
  struct BucketCounters {
    int64_t batches = 0;
    int64_t requests = 0;
    int64_t packed_tokens = 0;
    int64_t computed_tokens = 0;
    int64_t plan_hits = 0;
    int64_t plan_misses = 0;
  };

  std::map<std::pair<int64_t, bool>, PlannedTransformerStack::Stream> transformer_pool;
  std::map<int64_t, PlannedFfnStack::Stream> ffn_pool;
  std::unique_ptr<PitCompiler> compiler;
  std::map<int64_t, BatchStaging> staging;
  std::map<int64_t, BucketCounters> bucket_counters;
  // Identity row ids 0..max_len-1: every request's token rows are a prefix
  // span of this one reusable vector for SRead/SWrite purposes.
  std::vector<int64_t> iota;
  // Per-batch scratch (lengths and embedded per-request masks).
  std::vector<int64_t> lens;
  std::vector<const Tensor*> request_masks;
  int64_t requests = 0;
  // This stream's share of the engine-wide pool accounting.
  int64_t pooled_contexts = 0;
  int64_t pooled_arena_bytes = 0;
};

ServingEngine::ServingEngine(const PlannedTransformerStack& stack,
                             const ServingEngineOptions& options)
    : transformer_(&stack) {
  Init(options);
}

ServingEngine::ServingEngine(const PlannedFfnStack& stack, const ServingEngineOptions& options)
    : ffn_(&stack) {
  Init(options);
}

void ServingEngine::Init(const ServingEngineOptions& options) {
  num_streams_ = ResolveNumStreams(options);
  use_pit_ = options.use_pit;
  batch_window_ = ResolveBatchWindow(options);
  max_batch_tokens_ = ResolveMaxBatchTokens(options);
  streams_.reserve(static_cast<size_t>(num_streams_));
  for (int s = 0; s < num_streams_; ++s) {
    auto state = std::make_unique<StreamState>();
    if (use_pit_) {
      state->compiler = std::make_unique<PitCompiler>(V100());
    }
    streams_.push_back(std::move(state));
  }
  stats_.num_streams = num_streams_;
  stats_.batch_window = batch_window_;
  stats_.max_batch_tokens = max_batch_tokens_;
  stats_.per_stream_requests.assign(static_cast<size_t>(num_streams_), 0);
}

ServingEngine::~ServingEngine() = default;

void ServingEngine::AccountPoolDelta(int64_t contexts_delta, int64_t bytes_delta) {
  const int64_t contexts =
      pool_contexts_.fetch_add(contexts_delta, std::memory_order_relaxed) + contexts_delta;
  const int64_t bytes =
      pool_arena_bytes_.fetch_add(bytes_delta, std::memory_order_relaxed) + bytes_delta;
  // Fold into the lifetime peaks at growth time: a pool evicted later in the
  // same Serve must not erase the peak it reached.
  int64_t hw = pool_contexts_highwater_.load(std::memory_order_relaxed);
  while (contexts > hw &&
         !pool_contexts_highwater_.compare_exchange_weak(hw, contexts,
                                                         std::memory_order_relaxed)) {
  }
  hw = pool_arena_bytes_highwater_.load(std::memory_order_relaxed);
  while (bytes > hw && !pool_arena_bytes_highwater_.compare_exchange_weak(
                           hw, bytes, std::memory_order_relaxed)) {
  }
}

void ServingEngine::AccountBucketPool(int64_t bucket, int64_t contexts_delta) {
  std::lock_guard<std::mutex> lock(bucket_pool_mu_);
  std::pair<int64_t, int64_t>& entry = bucket_pool_[bucket];
  entry.first += contexts_delta;
  entry.second = std::max(entry.second, entry.first);
}

template <typename Pool, typename Key, typename MakeStreamFn>
typename Pool::mapped_type& ServingEngine::PooledStream(StreamState& stream, Pool& pool,
                                                        const Key& key, MakeStreamFn&& make) {
  const int64_t bucket = BucketOfPoolKey(key);
  auto it = pool.find(key);
  if (it != pool.end()) {
    ++stream.bucket_counters[bucket].plan_hits;
    return it->second;
  }
  ++stream.bucket_counters[bucket].plan_misses;
  if (pool.size() >= kMaxPooledShapes) {
    for (const auto& entry : pool) {
      AccountBucketPool(BucketOfPoolKey(entry.first), -entry.second.NumContexts());
    }
    AccountPoolDelta(-stream.pooled_contexts, -stream.pooled_arena_bytes);
    stream.pooled_contexts = 0;
    stream.pooled_arena_bytes = 0;
    pool.clear();
  }
  it = pool.emplace(key, make()).first;
  if (PlanVerifyEngaged()) {
    VerifyPooledPlans(it->second);
  }
  stream.pooled_contexts += it->second.NumContexts();
  stream.pooled_arena_bytes += it->second.ArenaBytes();
  AccountPoolDelta(it->second.NumContexts(), it->second.ArenaBytes());
  AccountBucketPool(bucket, it->second.NumContexts());
  return it->second;
}

void ServingEngine::ServeOn(StreamState& stream, const ServeRequest& request, Tensor* out,
                            int64_t* bucket_out) {
  PIT_CHECK_EQ(request.x.rank(), 2);
  const int64_t tokens = request.x.dim(0);
  PitCompiler* compiler = stream.compiler.get();
  if (transformer_ != nullptr) {
    const std::pair<int64_t, bool> key{tokens, request.attn_mask != nullptr};
    PlannedTransformerStack::Stream& pooled =
        PooledStream(stream, stream.transformer_pool, key, [&] {
          return transformer_->MakeStream(key.first, key.second, use_pit_);
        });
    transformer_->ForwardWith(pooled, request.x, request.attn_mask, compiler, out);
  } else {
    PIT_CHECK(request.attn_mask == nullptr) << "FFN-stack serving takes no attention mask";
    PlannedFfnStack::Stream& pooled = PooledStream(
        stream, stream.ffn_pool, tokens, [&] { return ffn_->MakeStream(tokens, use_pit_); });
    ffn_->ForwardWith(pooled, request.x, compiler, out);
  }
  // 1:1 serving degenerates to one "bucket" per distinct request length —
  // exactly the plan-pool cardinality contrast batching exists to collapse.
  StreamState::BucketCounters& c = stream.bucket_counters[tokens];
  ++c.batches;
  ++c.requests;
  c.packed_tokens += tokens;
  c.computed_tokens += tokens;
  *bucket_out = tokens;
}

void ServingEngine::ServeBatchOn(StreamState& stream, const std::vector<ServeRequest>& requests,
                                 int64_t begin, int64_t end, std::vector<Tensor>& outputs,
                                 std::vector<int64_t>& bucket_of) {
  const int64_t hidden = transformer_ != nullptr ? transformer_->hidden() : ffn_->hidden();
  stream.lens.clear();
  stream.request_masks.clear();
  int64_t sum = 0;
  int64_t max_len = 0;
  for (int64_t i = begin; i < end; ++i) {
    const ServeRequest& request = requests[static_cast<size_t>(i)];
    PIT_CHECK_EQ(request.x.rank(), 2);
    if (ffn_ != nullptr) {
      PIT_CHECK(request.attn_mask == nullptr) << "FFN-stack serving takes no attention mask";
    }
    const int64_t len = request.x.dim(0);
    stream.lens.push_back(len);
    stream.request_masks.push_back(request.attn_mask);
    sum += len;
    max_len = std::max(max_len, len);
  }
  const int64_t bucket = BucketTokensPow2(sum, kMinBatchBucket);
  if (static_cast<int64_t>(stream.iota.size()) < max_len) {
    const int64_t old = static_cast<int64_t>(stream.iota.size());
    stream.iota.resize(static_cast<size_t>(max_len));
    for (int64_t i = old; i < max_len; ++i) {
      stream.iota[static_cast<size_t>(i)] = i;
    }
  }
  StreamState::BatchStaging& st = stream.staging[bucket];
  if (st.x.empty()) {
    st.x = Tensor({bucket, hidden});
    st.out = Tensor({bucket, hidden});
    if (transformer_ != nullptr) {
      st.mask = Tensor({bucket, bucket});
    }
  }
  // Padding rows must be re-zeroed every batch: stale activations from a
  // previous fuller batch would replay through the padding rows, and a
  // non-finite value there would poison the real rows through 0 * NaN in the
  // masked context matmul. Zeroed padding rows keep every padded computation
  // finite, so the real rows' bits depend only on the real rows.
  std::fill(st.x.data() + sum * hidden, st.x.data() + bucket * hidden, 0.0f);
  int64_t off = 0;
  for (int64_t i = begin; i < end; ++i) {
    const int64_t len = stream.lens[static_cast<size_t>(i - begin)];
    SReadRowsInto(requests[static_cast<size_t>(i)].x,
                  std::span<const int64_t>(stream.iota.data(), static_cast<size_t>(len)), st.x,
                  off);
    off += len;
  }
  PitCompiler* compiler = stream.compiler.get();
  if (transformer_ != nullptr) {
    BlockDiagonalMaskInto(stream.lens, stream.request_masks, st.mask);
    PlannedTransformerStack::Stream& pooled =
        PooledStream(stream, stream.transformer_pool, std::pair<int64_t, bool>{bucket, true},
                     [&] { return transformer_->MakeStream(bucket, true, use_pit_); });
    transformer_->ForwardWith(pooled, st.x, &st.mask, compiler, &st.out);
  } else {
    PlannedFfnStack::Stream& pooled = PooledStream(
        stream, stream.ffn_pool, bucket, [&] { return ffn_->MakeStream(bucket, use_pit_); });
    ffn_->ForwardWith(pooled, st.x, compiler, &st.out);
  }
  off = 0;
  for (int64_t i = begin; i < end; ++i) {
    const int64_t len = stream.lens[static_cast<size_t>(i - begin)];
    SWriteRowsFrom(st.out, off,
                   std::span<const int64_t>(stream.iota.data(), static_cast<size_t>(len)),
                   outputs[static_cast<size_t>(i)]);
    off += len;
    bucket_of[static_cast<size_t>(i)] = bucket;
  }
  StreamState::BucketCounters& c = stream.bucket_counters[bucket];
  ++c.batches;
  c.requests += end - begin;
  c.packed_tokens += sum;
  c.computed_tokens += bucket;
}

void ServingEngine::MergeBucketStats(const std::vector<int64_t>& bucket_of,
                                     const std::vector<double>& latencies) {
  std::map<int64_t, ServingBucketStats> merged;
  for (const std::unique_ptr<StreamState>& stream : streams_) {
    for (const auto& [bucket, c] : stream->bucket_counters) {
      ServingBucketStats& b = merged[bucket];
      b.bucket = bucket;
      b.batches += c.batches;
      b.requests += c.requests;
      b.packed_tokens += c.packed_tokens;
      b.computed_tokens += c.computed_tokens;
      b.plan_hits += c.plan_hits;
      b.plan_misses += c.plan_misses;
    }
  }
  {
    std::lock_guard<std::mutex> lock(bucket_pool_mu_);
    for (const auto& [bucket, live_and_peak] : bucket_pool_) {
      ServingBucketStats& b = merged[bucket];
      b.bucket = bucket;
      b.pool_contexts = live_and_peak.first;
      b.pool_contexts_highwater = live_and_peak.second;
    }
  }
  std::map<int64_t, std::vector<double>> latencies_by_bucket;
  for (size_t i = 0; i < bucket_of.size(); ++i) {
    latencies_by_bucket[bucket_of[i]].push_back(latencies[i]);
  }
  int64_t batches = 0;
  int64_t packed = 0;
  int64_t computed = 0;
  stats_.buckets.clear();
  for (auto& [bucket, b] : merged) {
    auto it = latencies_by_bucket.find(bucket);
    if (it != latencies_by_bucket.end()) {
      std::sort(it->second.begin(), it->second.end());
      b.p50_latency_us = PercentileNearestRank(it->second, 0.50);
      b.p99_latency_us = PercentileNearestRank(it->second, 0.99);
    }
    batches += b.batches;
    packed += b.packed_tokens;
    computed += b.computed_tokens;
    stats_.buckets.push_back(b);
  }
  stats_.batches = batches;
  stats_.packed_utilization =
      computed > 0 ? static_cast<double>(packed) / static_cast<double>(computed) : 1.0;
}

std::vector<Tensor> ServingEngine::Serve(const std::vector<ServeRequest>& requests) {
  const int64_t n = static_cast<int64_t>(requests.size());
  std::vector<Tensor> outputs;
  outputs.reserve(static_cast<size_t>(n));
  const int64_t hidden = transformer_ != nullptr ? transformer_->hidden() : ffn_->hidden();
  for (const ServeRequest& request : requests) {
    PIT_CHECK(request.x.rank() == 2 && request.x.dim(1) == hidden)
        << "request activation must be [tokens, hidden]";
    outputs.emplace_back(Shape{request.x.dim(0), request.x.dim(1)});
  }
  std::vector<double> latencies(static_cast<size_t>(n), 0.0);
  std::vector<int64_t> bucket_of(static_cast<size_t>(n), 0);

  // Work-conserving M:N dispatch: each stream worker greedily claims the next
  // unserved request span, so a long request never leaves streams idle while
  // work remains. Requests never split across streams, and claims advance the
  // cursor in fixed batch-window strides, so span (and therefore batch)
  // composition is independent of which stream claims what — per-request
  // replay bits are independent of the claim interleaving.
  std::atomic<int64_t> next{0};
  const auto t0 = std::chrono::steady_clock::now();
  const auto elapsed_us = [&t0] {
    return std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() - t0)
        .count();
  };
  const int budget = std::max(1, NumThreads() / std::max(1, num_streams_));
  const int64_t window = batch_window_;
  const int64_t max_tokens = max_batch_tokens_;
  ParallelTasks(num_streams_, budget, [&](int64_t s) {
    StreamState& stream = *streams_[static_cast<size_t>(s)];
    for (int64_t i0 = next.fetch_add(window, std::memory_order_relaxed); i0 < n;
         i0 = next.fetch_add(window, std::memory_order_relaxed)) {
      const int64_t i_end = std::min(i0 + window, n);
      int64_t b0 = i0;
      while (b0 < i_end) {
        int64_t b1 = b0 + 1;
        if (window > 1) {
          // Greedy admission under the token budget: extend while the next
          // request still fits; a single oversized request forms its own
          // batch. Composition depends only on (window, budget, request
          // order), never on the stream count or claim timing.
          int64_t sum = requests[static_cast<size_t>(b0)].x.dim(0);
          while (b1 < i_end &&
                 sum + requests[static_cast<size_t>(b1)].x.dim(0) <= max_tokens) {
            sum += requests[static_cast<size_t>(b1)].x.dim(0);
            ++b1;
          }
          ServeBatchOn(stream, requests, b0, b1, outputs, bucket_of);
        } else {
          ServeOn(stream, requests[static_cast<size_t>(b0)], &outputs[static_cast<size_t>(b0)],
                  &bucket_of[static_cast<size_t>(b0)]);
        }
        const double done = elapsed_us();
        for (int64_t i = b0; i < b1; ++i) {
          latencies[static_cast<size_t>(i)] = done;
        }
        stream.requests += b1 - b0;
        b0 = b1;
      }
    }
  });
  const double wall_us = elapsed_us();

  // Lifetime + last-call statistics (single-caller engine: no worker is
  // running here anymore, so plain reads of the stream states are safe).
  stats_.requests += n;
  stats_.wall_us = wall_us;
  stats_.requests_per_sec = wall_us > 0.0 ? static_cast<double>(n) / (wall_us / 1e6) : 0.0;
  for (int s = 0; s < num_streams_; ++s) {
    stats_.per_stream_requests[static_cast<size_t>(s)] = streams_[static_cast<size_t>(s)]->requests;
  }
  stats_.pool_contexts = pool_contexts_.load(std::memory_order_relaxed);
  stats_.pool_contexts_highwater = pool_contexts_highwater_.load(std::memory_order_relaxed);
  stats_.pool_arena_bytes = pool_arena_bytes_.load(std::memory_order_relaxed);
  stats_.pool_arena_bytes_highwater = pool_arena_bytes_highwater_.load(std::memory_order_relaxed);
  MergeBucketStats(bucket_of, latencies);
  if (n > 0) {
    double sum = 0.0;
    for (double l : latencies) {
      sum += l;
    }
    stats_.mean_latency_us = sum / static_cast<double>(n);
    std::sort(latencies.begin(), latencies.end());
    stats_.p50_latency_us = PercentileNearestRank(latencies, 0.50);
    stats_.p99_latency_us = PercentileNearestRank(latencies, 0.99);
  }
  return outputs;
}

}  // namespace pit
