#include "pit/runtime/serving_engine.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <optional>
#include <span>
#include <sstream>
#include <string>
#include <thread>
#include <utility>

#include "pit/common/backend.h"
#include "pit/common/check.h"
#include "pit/common/fault_injection.h"
#include "pit/common/parallel_for.h"
#include "pit/core/sread_swrite.h"
#include "pit/graph/plan_verifier.h"
#include "pit/gpusim/device.h"
#include "pit/runtime/serving.h"
#include "pit/workloads/attention_masks.h"
#include "pit/workloads/seq_len.h"

namespace pit {

namespace {

// Per-stream shape-pool bound, matching the nn-layer plan-cache bound: a
// long-lived engine under variable-length traffic must not pin arenas for
// every token count it ever saw. Ragged batching keeps the working set far
// under this bound by construction (power-of-two buckets).
constexpr size_t kMaxPooledShapes = 16;
// Floor of the power-of-two sum-token bucket grid: batches smaller than this
// still replay the 16-token plan rather than minting tiny plan keys.
constexpr int64_t kMinBatchBucket = 16;
// Token budget per packed batch when neither the option nor PIT_BATCH_TOKENS
// sets one.
constexpr int kDefaultMaxBatchTokens = 512;

int ResolveNumStreams(const ServingEngineOptions& options) {
  if (options.num_streams > 0) {
    return options.num_streams;
  }
  if (const char* env = std::getenv("PIT_NUM_STREAMS")) {
    return ParseNumStreamsEnv(env);
  }
  return NumThreads();
}

int ResolveBatchWindow(const ServingEngineOptions& options) {
  if (options.batch_window > 0) {
    return options.batch_window;
  }
  if (const char* env = std::getenv("PIT_BATCH_WINDOW")) {
    return ParseBatchWindowEnv(env);
  }
  return 1;  // batching off: every request replays at its exact token count
}

int ResolveMaxBatchTokens(const ServingEngineOptions& options) {
  if (options.max_batch_tokens > 0) {
    return options.max_batch_tokens;
  }
  if (const char* env = std::getenv("PIT_BATCH_TOKENS")) {
    return ParseBatchTokensEnv(env);
  }
  return kDefaultMaxBatchTokens;
}

int64_t ResolveDeadlineUs(const ServingEngineOptions& options) {
  if (options.deadline_us > 0) {
    return options.deadline_us;
  }
  if (const char* env = std::getenv("PIT_SERVE_DEADLINE_US")) {
    return ParseServeDeadlineEnv(env);
  }
  return 0;  // no default deadline
}

int ResolveQueueCapacity(const ServingEngineOptions& options) {
  if (options.queue_capacity > 0) {
    return options.queue_capacity;
  }
  if (const char* env = std::getenv("PIT_SERVE_QUEUE")) {
    return ParseServeQueueEnv(env);
  }
  return 0;  // unbounded admission queue
}

int64_t ResolveWatchdogUs(const ServingEngineOptions& options) {
  if (options.watchdog_us > 0) {
    return options.watchdog_us;
  }
  if (const char* env = std::getenv("PIT_WATCHDOG_US")) {
    return ParseWatchdogUsEnv(env);
  }
  return 0;  // supervision off
}

WatchdogMode ResolveWatchdogMode(const ServingEngineOptions& options) {
  if (options.watchdog_mode != WatchdogMode::kDefault) {
    return options.watchdog_mode;
  }
  if (const char* env = std::getenv("PIT_WATCHDOG")) {
    return ParseWatchdogModeEnv(env);
  }
  return WatchdogMode::kReport;
}

// Finiteness scan: one NaN or inf in an activation (or mask) poisons every
// dot product its rows feed, so non-finite inputs are rejected at admission
// rather than silently corrupting a packed batch's shared forward.
bool AllFinite(const Tensor& t) {
  const float* data = t.data();
  const int64_t n = t.size();
  for (int64_t i = 0; i < n; ++i) {
    if (!std::isfinite(data[i])) {
      return false;
    }
  }
  return true;
}

// The padded token count a pool entry is keyed by, for the per-bucket pool
// accounting (the transformer pool's key carries a masked flag on top).
int64_t BucketOfPoolKey(const std::pair<int64_t, bool>& key) { return key.first; }
int64_t BucketOfPoolKey(int64_t key) { return key; }

// Pooled-plan verification (PIT_VERIFY_PLAN): a stream entering the pool
// replays its plans for the rest of the engine's lifetime, so the invariants
// concurrent replay rides on are proven once at pool entry. The compile hook
// already verified freshly compiled plans; this catches pool entries built
// from plans cached before the knob engaged.
void VerifyPooledPlans(const PlannedTransformerStack::Stream& pooled) {
  for (const TransformerEncoderLayer::Stream& layer : pooled.layers) {
    if (layer.plan != nullptr) {
      VerifyPlanOrDie(*layer.plan, "ServingEngine pooled transformer plan");
    }
  }
}

void VerifyPooledPlans(const PlannedFfnStack::Stream& pooled) {
  for (const std::shared_ptr<ExecutionPlan>& plan : pooled.plans) {
    if (plan != nullptr) {
      VerifyPlanOrDie(*plan, "ServingEngine pooled FFN plan");
    }
  }
}

}  // namespace

const char* ServeStatusName(ServeStatus status) {
  switch (status) {
    case ServeStatus::kOk:
      return "ok";
    case ServeStatus::kInvalidArgument:
      return "invalid_argument";
    case ServeStatus::kDeadlineExceeded:
      return "deadline_exceeded";
    case ServeStatus::kRejectedOverload:
      return "rejected_overload";
    case ServeStatus::kInternal:
      return "internal";
    case ServeStatus::kCancelled:
      return "cancelled";
  }
  PIT_CHECK(false) << "unknown ServeStatus " << static_cast<int>(status);
  return "";
}

WatchdogMode ParseWatchdogModeEnv(const char* value) {
  PIT_CHECK(value != nullptr && value[0] != '\0')
      << "PIT_WATCHDOG is set but empty; expected report|abort";
  const std::string text(value);
  if (text == "report") {
    return WatchdogMode::kReport;
  }
  if (text == "abort") {
    return WatchdogMode::kAbort;
  }
  // A typo'd mode must never silently supervise in a different mode than the
  // operator asked for (abort vs report is a production-impact decision).
  PIT_CHECK(false) << "PIT_WATCHDOG must be report|abort, got \"" << text << "\"";
  return WatchdogMode::kReport;
}

std::string ServingEngineStats::ToString() const {
  std::ostringstream os;
  os << "ServingEngineStats{requests=" << requests << " streams=" << num_streams
     << " window=" << batch_window << " max_tokens=" << max_batch_tokens
     << " batches=" << batches << " util=" << packed_utilization << "; "
     << ServeStatusName(ServeStatus::kInvalidArgument) << "=" << rejected_invalid << " "
     << ServeStatusName(ServeStatus::kRejectedOverload) << "=" << rejected_overload << " "
     << ServeStatusName(ServeStatus::kDeadlineExceeded) << "=" << timed_out
     << " (in_flight=" << timed_out_inflight << ") "
     << ServeStatusName(ServeStatus::kCancelled) << "=" << cancelled
     << "; faults=" << faults_injected << " retries=" << retries
     << " degraded=" << degraded_forwards << " internal=" << internal_failures
     << " cancelled_forwards=" << cancelled_forwards
     << "; stalls_injected=" << stalls_injected << " stalls_detected=" << stalls_detected
     << " stall_silence_us=[" << stall_min_silence_us << ", " << stall_max_silence_us << "]}";
  return os.str();
}

// One request stream: a private pool of per-shape stack streams (shared plan
// + private contexts), reused across requests and Serve calls, plus the
// stream's private PitCompiler and packed-batch staging. Nothing in here is
// ever touched by another stream.
struct ServingEngine::StreamState {
  // Reused packed tiles for one bucket: requests gather into x, the plan
  // replays into out, and (transformer only) the block-diagonal mask is
  // rebuilt in place per batch. Keyed by bucket so steady-state batching
  // allocates nothing.
  struct BatchStaging {
    Tensor x;     // [bucket, hidden]
    Tensor out;   // [bucket, hidden]
    Tensor mask;  // [bucket, bucket], transformer stacks only
  };
  struct BucketCounters {
    int64_t batches = 0;
    int64_t requests = 0;
    int64_t packed_tokens = 0;
    int64_t computed_tokens = 0;
    int64_t plan_hits = 0;
    int64_t plan_misses = 0;
  };

  std::map<std::pair<int64_t, bool>, PlannedTransformerStack::Stream> transformer_pool;
  std::map<int64_t, PlannedFfnStack::Stream> ffn_pool;
  std::unique_ptr<PitCompiler> compiler;
  std::map<int64_t, BatchStaging> staging;
  std::map<int64_t, BucketCounters> bucket_counters;
  // Identity row ids 0..max_len-1: every request's token rows are a prefix
  // span of this one reusable vector for SRead/SWrite purposes.
  std::vector<int64_t> iota;
  // Per-batch scratch (lengths and embedded per-request masks).
  std::vector<int64_t> lens;
  std::vector<const Tensor*> request_masks;
  // Per-claim scratch: the original request indices that survived the
  // deadline sweep and enter the packed forward.
  std::vector<int64_t> span;
  int64_t requests = 0;
  // This stream's share of the engine-wide pool accounting.
  int64_t pooled_contexts = 0;
  int64_t pooled_arena_bytes = 0;
  // Liveness state. `cancel` is installed on every acquired stack stream's
  // contexts before a forward, so replays stop at the next step/wavefront
  // boundary once it fires. `heartbeat` is the step-progress counter those
  // replays bump (via the thread-local sink); `hb_active` marks the worker
  // mid-claim so the watchdog only measures silence while work is actually
  // in flight, and `hb_bucket` is the claim's token bucket for diagnostics.
  CancelToken cancel;
  std::atomic<uint64_t> heartbeat{0};
  std::atomic<bool> hb_active{false};
  std::atomic<int64_t> hb_bucket{0};
};

ServingEngine::ServingEngine(const PlannedTransformerStack& stack,
                             const ServingEngineOptions& options)
    : transformer_(&stack) {
  Init(options);
}

ServingEngine::ServingEngine(const PlannedFfnStack& stack, const ServingEngineOptions& options)
    : ffn_(&stack) {
  Init(options);
}

void ServingEngine::Init(const ServingEngineOptions& options) {
  // Option misuse is API misuse, not request data: fail fast at construction
  // (0 always means "resolve env / default", never "negative").
  PIT_CHECK(options.num_streams >= 0)
      << "ServingEngineOptions::num_streams must be >= 0, got " << options.num_streams;
  PIT_CHECK(options.batch_window >= 0)
      << "ServingEngineOptions::batch_window must be >= 0, got " << options.batch_window;
  PIT_CHECK(options.max_batch_tokens >= 0)
      << "ServingEngineOptions::max_batch_tokens must be >= 0, got " << options.max_batch_tokens;
  PIT_CHECK(options.deadline_us >= 0)
      << "ServingEngineOptions::deadline_us must be >= 0, got " << options.deadline_us;
  PIT_CHECK(options.queue_capacity >= 0)
      << "ServingEngineOptions::queue_capacity must be >= 0, got " << options.queue_capacity;
  PIT_CHECK(options.watchdog_us >= 0)
      << "ServingEngineOptions::watchdog_us must be >= 0, got " << options.watchdog_us;
  num_streams_ = ResolveNumStreams(options);
  use_pit_ = options.use_pit;
  batch_window_ = ResolveBatchWindow(options);
  max_batch_tokens_ = ResolveMaxBatchTokens(options);
  deadline_us_ = ResolveDeadlineUs(options);
  queue_capacity_ = ResolveQueueCapacity(options);
  watchdog_us_ = ResolveWatchdogUs(options);
  watchdog_mode_ = ResolveWatchdogMode(options);
  streams_.reserve(static_cast<size_t>(num_streams_));
  for (int s = 0; s < num_streams_; ++s) {
    auto state = std::make_unique<StreamState>();
    if (use_pit_) {
      state->compiler = std::make_unique<PitCompiler>(V100());
    }
    streams_.push_back(std::move(state));
  }
  stats_.num_streams = num_streams_;
  stats_.batch_window = batch_window_;
  stats_.max_batch_tokens = max_batch_tokens_;
  stats_.per_stream_requests.assign(static_cast<size_t>(num_streams_), 0);
  // Supervision starts last: the watchdog reads streams_, which is immutable
  // from here on.
  if (watchdog_us_ > 0) {
    watchdog_ = std::thread([this] { WatchdogLoop(); });
  }
}

ServingEngine::~ServingEngine() {
  // A dying engine never strands a caller: cut in-flight work at the next
  // step boundary, wait out any concurrent Serve, then stop supervision.
  Drain(DrainPolicy::kCancelInFlight);
  StopWatchdog();
}

void ServingEngine::Drain(DrainPolicy policy) {
  std::unique_lock<std::mutex> lock(serve_mu_);
  draining_.store(true, std::memory_order_release);
  if (policy == DrainPolicy::kCancelInFlight) {
    // Sticky manual cancel on every stream token: in-flight replays stop at
    // the next step/wavefront boundary and their requests resolve
    // kCancelled. Tokens stay cancelled forever — a drained engine is
    // permanently quiesced.
    for (const std::unique_ptr<StreamState>& stream : streams_) {
      stream->cancel.Cancel();
    }
  }
  // Workers stop claiming at the next span boundary (they poll draining_),
  // so serve_active_ reaches zero without outside help; idempotent because a
  // re-entered Drain just re-publishes the flag and the wait is immediate.
  serve_cv_.wait(lock, [this] { return serve_active_ == 0; });
}

void ServingEngine::StopWatchdog() {
  {
    std::lock_guard<std::mutex> lock(watchdog_mu_);
    watchdog_stop_ = true;
  }
  watchdog_cv_.notify_all();
  if (watchdog_.joinable()) {
    watchdog_.join();
  }
}

void ServingEngine::WatchdogLoop() {
  // Per-stream observation the watchdog keeps for itself: the heartbeat
  // count it last saw, when it saw it change (on the watchdog's own clock,
  // so no cross-thread timestamp races), and whether the current silence
  // episode was already reported (one detection per episode).
  struct Observed {
    uint64_t count = 0;
    int64_t since_us = 0;
    bool reported = false;
  };
  std::vector<Observed> seen(static_cast<size_t>(num_streams_));
  const int64_t start_us = SteadyNowUs();
  for (Observed& o : seen) {
    o.since_us = start_us;
  }
  // Tick at a quarter of the threshold so detection lands well inside the
  // acceptance bound of 2x the threshold even with scheduling slop.
  const int64_t tick_us = std::max<int64_t>(watchdog_us_ / 4, 100);
  std::unique_lock<std::mutex> lock(watchdog_mu_);
  while (!watchdog_stop_) {
    watchdog_cv_.wait_for(lock, std::chrono::microseconds(tick_us),
                          [this] { return watchdog_stop_; });
    if (watchdog_stop_) {
      break;
    }
    const int64_t now_us = SteadyNowUs();
    for (int s = 0; s < num_streams_; ++s) {
      StreamState& stream = *streams_[static_cast<size_t>(s)];
      Observed& o = seen[static_cast<size_t>(s)];
      const uint64_t count = stream.heartbeat.load(std::memory_order_relaxed);
      if (!stream.hb_active.load(std::memory_order_acquire) || count != o.count) {
        // Idle, or progressing: reset the episode baseline.
        o.count = count;
        o.since_us = now_us;
        o.reported = false;
        continue;
      }
      const int64_t silence_us = now_us - o.since_us;
      if (silence_us <= watchdog_us_ || o.reported) {
        continue;
      }
      o.reported = true;
      ctr_stalls_detected_.fetch_add(1, std::memory_order_relaxed);
      int64_t cur = ctr_stall_min_silence_us_.load(std::memory_order_relaxed);
      while ((cur == 0 || silence_us < cur) &&
             !ctr_stall_min_silence_us_.compare_exchange_weak(cur, silence_us,
                                                              std::memory_order_relaxed)) {
      }
      cur = ctr_stall_max_silence_us_.load(std::memory_order_relaxed);
      while (silence_us > cur && !ctr_stall_max_silence_us_.compare_exchange_weak(
                                     cur, silence_us, std::memory_order_relaxed)) {
      }
      const int64_t bucket = stream.hb_bucket.load(std::memory_order_relaxed);
      std::fprintf(stderr,
                   "[PIT WATCHDOG] stream %d stalled: token bucket %lld, step %llu, "
                   "silent %lld us (threshold %lld us, mode %s)\n",
                   s, static_cast<long long>(bucket), static_cast<unsigned long long>(count),
                   static_cast<long long>(silence_us), static_cast<long long>(watchdog_us_),
                   watchdog_mode_ == WatchdogMode::kAbort ? "abort" : "report");
      if (watchdog_mode_ == WatchdogMode::kAbort) {
        PIT_CHECK(false) << "PIT_WATCHDOG=abort: stream " << s << " stalled (token bucket "
                         << bucket << ", step " << count << ", silent " << silence_us
                         << " us > threshold " << watchdog_us_ << " us)";
      }
    }
  }
}

void ServingEngine::AccountPoolDelta(int64_t contexts_delta, int64_t bytes_delta) {
  const int64_t contexts =
      pool_contexts_.fetch_add(contexts_delta, std::memory_order_relaxed) + contexts_delta;
  const int64_t bytes =
      pool_arena_bytes_.fetch_add(bytes_delta, std::memory_order_relaxed) + bytes_delta;
  // Fold into the lifetime peaks at growth time: a pool evicted later in the
  // same Serve must not erase the peak it reached.
  int64_t hw = pool_contexts_highwater_.load(std::memory_order_relaxed);
  while (contexts > hw &&
         !pool_contexts_highwater_.compare_exchange_weak(hw, contexts,
                                                         std::memory_order_relaxed)) {
  }
  hw = pool_arena_bytes_highwater_.load(std::memory_order_relaxed);
  while (bytes > hw && !pool_arena_bytes_highwater_.compare_exchange_weak(
                           hw, bytes, std::memory_order_relaxed)) {
  }
}

void ServingEngine::AccountBucketPool(int64_t bucket, int64_t contexts_delta) {
  std::lock_guard<std::mutex> lock(bucket_pool_mu_);
  std::pair<int64_t, int64_t>& entry = bucket_pool_[bucket];
  entry.first += contexts_delta;
  entry.second = std::max(entry.second, entry.first);
}

template <typename Pool, typename Key, typename MakeStreamFn>
typename Pool::mapped_type* ServingEngine::PooledStream(StreamState& stream, Pool& pool,
                                                        const Key& key, MakeStreamFn&& make) {
  const int64_t bucket = BucketOfPoolKey(key);
  auto it = pool.find(key);
  if (it != pool.end()) {
    ++stream.bucket_counters[bucket].plan_hits;
    return &it->second;
  }
  ++stream.bucket_counters[bucket].plan_misses;
  if (pool.size() >= kMaxPooledShapes) {
    for (const auto& entry : pool) {
      AccountBucketPool(BucketOfPoolKey(entry.first), -entry.second.NumContexts());
    }
    AccountPoolDelta(-stream.pooled_contexts, -stream.pooled_arena_bytes);
    stream.pooled_contexts = 0;
    stream.pooled_arena_bytes = 0;
    pool.clear();
  }
  auto built = make();
  if (!built.has_value()) {
    // Injected persistent compile failure: nothing enters the pool; the
    // caller's degradation ladder owns what happens to the requests.
    return nullptr;
  }
  it = pool.emplace(key, std::move(*built)).first;
  if (PlanVerifyEngaged()) {
    VerifyPooledPlans(it->second);
  }
  stream.pooled_contexts += it->second.NumContexts();
  stream.pooled_arena_bytes += it->second.ArenaBytes();
  AccountPoolDelta(it->second.NumContexts(), it->second.ArenaBytes());
  AccountBucketPool(bucket, it->second.NumContexts());
  return &it->second;
}

template <typename Pool, typename Key, typename MakeStreamFn>
typename Pool::mapped_type* ServingEngine::AcquireStream(
    StreamState& stream, Pool& pool, const Key& key, MakeStreamFn&& make,
    std::optional<typename Pool::mapped_type>& transient) {
  using Mapped = typename Pool::mapped_type;
  if (FaultProbe(FaultSite::kContextAcquire)) {
    // Pool-exhaustion rung: degrade to a transient stream over the same
    // shared plans — identical bits (the plans are immutable and shared;
    // only the private contexts are fresh), nothing pinned once the span
    // completes, and the pool itself is left untouched.
    ctr_faults_.fetch_add(1, std::memory_order_relaxed);
    ctr_degraded_.fetch_add(1, std::memory_order_relaxed);
    ScopedFaultRetryImmunity immune;
    transient.emplace(make());
    return &*transient;
  }
  return PooledStream(stream, pool, key, [&]() -> std::optional<Mapped> {
    if (FaultProbe(FaultSite::kPlanCompile)) {
      // Transient compile failure: retry the build once.
      ctr_faults_.fetch_add(1, std::memory_order_relaxed);
      ctr_retries_.fetch_add(1, std::memory_order_relaxed);
      ScopedFaultRetryImmunity immune;
      if (FaultProbe(FaultSite::kPlanCompile)) {
        // Persistent (fail_retries configs only): surface to the caller.
        ctr_faults_.fetch_add(1, std::memory_order_relaxed);
        return std::nullopt;
      }
      return make();
    }
    return make();
  });
}

ServeStatus ServingEngine::AdmissionStatus(const ServeRequest& request) const {
  const int64_t hidden = transformer_ != nullptr ? transformer_->hidden() : ffn_->hidden();
  if (request.x.rank() != 2 || request.x.dim(0) <= 0 || request.x.dim(1) != hidden) {
    return ServeStatus::kInvalidArgument;
  }
  if (request.deadline_us < 0) {
    return ServeStatus::kInvalidArgument;
  }
  if (request.attn_mask != nullptr) {
    if (ffn_ != nullptr) {
      // FFN stacks have no attention: a masked request is malformed data,
      // not grounds to abort the batch it arrived in.
      return ServeStatus::kInvalidArgument;
    }
    const Tensor& mask = *request.attn_mask;
    const int64_t tokens = request.x.dim(0);
    // A mismatched mask used to abort deep inside the packed masked-softmax
    // with a kernel-level diagnostic; reject it at the request boundary.
    if (mask.rank() != 2 || mask.dim(0) != tokens || mask.dim(1) != tokens) {
      return ServeStatus::kInvalidArgument;
    }
    if (!AllFinite(mask)) {
      return ServeStatus::kInvalidArgument;
    }
  }
  if (!AllFinite(request.x)) {
    return ServeStatus::kInvalidArgument;
  }
  return ServeStatus::kOk;
}

ServeStatus ServingEngine::ServeOne(StreamState& stream, const ServeRequest& request,
                                    int64_t deadline_abs_us, Tensor* out, int64_t* bucket_out) {
  const int64_t tokens = request.x.dim(0);
  PitCompiler* compiler = stream.compiler.get();
  // The stream token guards exactly this forward: armed with the request's
  // absolute deadline (kNoDeadline leaves only manual cancellation live) and
  // cleared on every exit path. A 1:1 forward has a single member, so the
  // "every member lapsed" in-flight rule degenerates to its own deadline.
  stream.cancel.ArmDeadline(deadline_abs_us);
  if (transformer_ != nullptr) {
    const std::pair<int64_t, bool> key{tokens, request.attn_mask != nullptr};
    std::optional<PlannedTransformerStack::Stream> transient;
    PlannedTransformerStack::Stream* pooled = AcquireStream(
        stream, stream.transformer_pool, key,
        [&] { return transformer_->MakeStream(key.first, key.second, use_pit_); }, transient);
    if (pooled == nullptr) {
      stream.cancel.ClearDeadline();
      ctr_internal_.fetch_add(1, std::memory_order_relaxed);
      return ServeStatus::kInternal;
    }
    pooled->SetCancelToken(&stream.cancel);
    transformer_->ForwardWith(*pooled, request.x, request.attn_mask, compiler, out);
    if (ConsumeFaultPending()) {
      // Kernel-dispatch fault: retry the identical forward once — the plan
      // and context are intact (an abandoned replay only leaves stale arena
      // data, fully overwritten by the retry). A cancelled token makes the
      // retry exit at replay entry, so the ladder stays hang-free.
      ctr_faults_.fetch_add(1, std::memory_order_relaxed);
      ctr_retries_.fetch_add(1, std::memory_order_relaxed);
      ScopedFaultRetryImmunity immune;
      transformer_->ForwardWith(*pooled, request.x, request.attn_mask, compiler, out);
      if (ConsumeFaultPending()) {
        stream.cancel.ClearDeadline();
        ctr_faults_.fetch_add(1, std::memory_order_relaxed);
        ctr_internal_.fetch_add(1, std::memory_order_relaxed);
        return ServeStatus::kInternal;
      }
    }
  } else {
    std::optional<PlannedFfnStack::Stream> transient;
    PlannedFfnStack::Stream* pooled =
        AcquireStream(stream, stream.ffn_pool, tokens,
                      [&] { return ffn_->MakeStream(tokens, use_pit_); }, transient);
    if (pooled == nullptr) {
      stream.cancel.ClearDeadline();
      ctr_internal_.fetch_add(1, std::memory_order_relaxed);
      return ServeStatus::kInternal;
    }
    pooled->SetCancelToken(&stream.cancel);
    ffn_->ForwardWith(*pooled, request.x, compiler, out);
    if (ConsumeFaultPending()) {
      ctr_faults_.fetch_add(1, std::memory_order_relaxed);
      ctr_retries_.fetch_add(1, std::memory_order_relaxed);
      ScopedFaultRetryImmunity immune;
      ffn_->ForwardWith(*pooled, request.x, compiler, out);
      if (ConsumeFaultPending()) {
        stream.cancel.ClearDeadline();
        ctr_faults_.fetch_add(1, std::memory_order_relaxed);
        ctr_internal_.fetch_add(1, std::memory_order_relaxed);
        return ServeStatus::kInternal;
      }
    }
  }
  const bool manual_cancel = stream.cancel.cancelled_manual();
  const bool lapsed = stream.cancel.deadline_lapsed();
  stream.cancel.ClearDeadline();
  if (manual_cancel) {
    // Drain cut the forward (or it finished right at the cut): either way
    // the request resolves kCancelled and surrenders its output.
    ctr_cancelled_forwards_.fetch_add(1, std::memory_order_relaxed);
    return ServeStatus::kCancelled;
  }
  if (lapsed) {
    ctr_timed_out_inflight_.fetch_add(1, std::memory_order_relaxed);
    ctr_cancelled_forwards_.fetch_add(1, std::memory_order_relaxed);
    return ServeStatus::kDeadlineExceeded;
  }
  // 1:1 serving degenerates to one "bucket" per distinct request length —
  // exactly the plan-pool cardinality contrast batching exists to collapse.
  StreamState::BucketCounters& c = stream.bucket_counters[tokens];
  ++c.batches;
  ++c.requests;
  c.packed_tokens += tokens;
  c.computed_tokens += tokens;
  *bucket_out = tokens;
  return ServeStatus::kOk;
}

bool ServingEngine::TryPackedForward(StreamState& stream,
                                     const std::vector<ServeRequest>& requests,
                                     const std::vector<int64_t>& span,
                                     const std::vector<int64_t>& deadline_abs,
                                     std::vector<ServeOutcome>& outcomes,
                                     std::vector<int64_t>& bucket_of) {
  const int64_t hidden = transformer_ != nullptr ? transformer_->hidden() : ffn_->hidden();
  // In-flight deadline arming: the batch is cancellable mid-replay only when
  // EVERY member carries a deadline — the token then arms with the latest
  // member deadline, so a mid-replay lapse proves every member has already
  // lapsed. A mixed batch never arms: its forward always completes, and the
  // lapsed members are marked at egress without output, leaving the
  // survivors' bits identical to fault-free 1:1 replay.
  bool all_deadlined = true;
  int64_t latest_deadline_us = 0;
  for (const int64_t idx : span) {
    const int64_t d = deadline_abs[static_cast<size_t>(idx)];
    if (d == CancelToken::kNoDeadline) {
      all_deadlined = false;
      break;
    }
    latest_deadline_us = std::max(latest_deadline_us, d);
  }
  if (all_deadlined) {
    stream.cancel.ArmDeadline(latest_deadline_us);
  } else {
    stream.cancel.ClearDeadline();
  }
  stream.lens.clear();
  stream.request_masks.clear();
  int64_t sum = 0;
  int64_t max_len = 0;
  for (const int64_t idx : span) {
    const ServeRequest& request = requests[static_cast<size_t>(idx)];
    const int64_t len = request.x.dim(0);
    stream.lens.push_back(len);
    stream.request_masks.push_back(request.attn_mask);
    sum += len;
    max_len = std::max(max_len, len);
  }
  const int64_t bucket = BucketTokensPow2(sum, kMinBatchBucket);
  if (static_cast<int64_t>(stream.iota.size()) < max_len) {
    const int64_t old = static_cast<int64_t>(stream.iota.size());
    stream.iota.resize(static_cast<size_t>(max_len));
    for (int64_t i = old; i < max_len; ++i) {
      stream.iota[static_cast<size_t>(i)] = i;
    }
  }
  StreamState::BatchStaging& st = stream.staging[bucket];
  if (st.x.empty()) {
    st.x = Tensor({bucket, hidden});
    st.out = Tensor({bucket, hidden});
    if (transformer_ != nullptr) {
      st.mask = Tensor({bucket, bucket});
    }
  }
  // Padding rows must be re-zeroed every batch: stale activations from a
  // previous fuller batch would replay through the padding rows, and a
  // non-finite value there would poison the real rows through 0 * NaN in the
  // masked context matmul. Zeroed padding rows keep every padded computation
  // finite, so the real rows' bits depend only on the real rows.
  std::fill(st.x.data() + sum * hidden, st.x.data() + bucket * hidden, 0.0f);
  int64_t off = 0;
  for (size_t i = 0; i < span.size(); ++i) {
    const int64_t len = stream.lens[i];
    SReadRowsInto(requests[static_cast<size_t>(span[i])].x,
                  std::span<const int64_t>(stream.iota.data(), static_cast<size_t>(len)), st.x,
                  off);
    off += len;
  }
  PitCompiler* compiler = stream.compiler.get();
  if (transformer_ != nullptr) {
    BlockDiagonalMaskInto(stream.lens, stream.request_masks, st.mask);
    std::optional<PlannedTransformerStack::Stream> transient;
    PlannedTransformerStack::Stream* pooled =
        AcquireStream(stream, stream.transformer_pool, std::pair<int64_t, bool>{bucket, true},
                      [&] { return transformer_->MakeStream(bucket, true, use_pit_); }, transient);
    if (pooled == nullptr) {
      stream.cancel.ClearDeadline();
      return false;  // injected compile double-fault; caller's ladder decides
    }
    pooled->SetCancelToken(&stream.cancel);
    transformer_->ForwardWith(*pooled, st.x, &st.mask, compiler, &st.out);
  } else {
    std::optional<PlannedFfnStack::Stream> transient;
    PlannedFfnStack::Stream* pooled =
        AcquireStream(stream, stream.ffn_pool, bucket,
                      [&] { return ffn_->MakeStream(bucket, use_pit_); }, transient);
    if (pooled == nullptr) {
      stream.cancel.ClearDeadline();
      return false;
    }
    pooled->SetCancelToken(&stream.cancel);
    ffn_->ForwardWith(*pooled, st.x, compiler, &st.out);
  }
  const bool manual_cancel = stream.cancel.cancelled_manual();
  const bool batch_lapsed = all_deadlined && stream.cancel.deadline_lapsed();
  stream.cancel.ClearDeadline();
  if (ConsumeFaultPending()) {
    // Kernel-dispatch fault mid-replay: staging holds garbage; scatter
    // nothing. The fired probe is compensated by whichever rung the caller
    // takes next (1:1 fallback, packed retry, or terminal failure). A fired
    // cancel token makes every later rung exit at replay entry, so the
    // ladder re-lands here immediately with no fault pending.
    ctr_faults_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  if (manual_cancel) {
    // Drain cut the batch mid-replay: every member resolves kCancelled —
    // a definitive outcome, not a degradation rung.
    for (const int64_t idx : span) {
      outcomes[static_cast<size_t>(idx)].status = ServeStatus::kCancelled;
    }
    ctr_cancelled_forwards_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  if (batch_lapsed) {
    // The batch deadline (max over members) lapsed mid-replay, so every
    // member has lapsed: the forward was cancelled at a step boundary and
    // the whole batch resolves kDeadlineExceeded without output.
    for (const int64_t idx : span) {
      outcomes[static_cast<size_t>(idx)].status = ServeStatus::kDeadlineExceeded;
    }
    ctr_timed_out_inflight_.fetch_add(static_cast<int64_t>(span.size()),
                                      std::memory_order_relaxed);
    ctr_cancelled_forwards_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  // Egress: one clock read decides which members still have a live deadline;
  // lapsed members are marked kDeadlineExceeded without output (their rows
  // were computed, but nobody is waiting), survivors scatter bitwise
  // identical to fault-free 1:1 replay.
  const int64_t egress_now_us = SteadyNowUs();
  off = 0;
  for (size_t i = 0; i < span.size(); ++i) {
    const int64_t idx = span[i];
    const int64_t len = stream.lens[i];
    if (deadline_abs[static_cast<size_t>(idx)] <= egress_now_us) {
      outcomes[static_cast<size_t>(idx)].status = ServeStatus::kDeadlineExceeded;
      ctr_timed_out_inflight_.fetch_add(1, std::memory_order_relaxed);
      off += len;
      continue;
    }
    SWriteRowsFrom(st.out, off,
                   std::span<const int64_t>(stream.iota.data(), static_cast<size_t>(len)),
                   outcomes[static_cast<size_t>(idx)].output);
    off += len;
    bucket_of[static_cast<size_t>(idx)] = bucket;
    outcomes[static_cast<size_t>(idx)].status = ServeStatus::kOk;
  }
  StreamState::BucketCounters& c = stream.bucket_counters[bucket];
  ++c.batches;
  c.requests += static_cast<int64_t>(span.size());
  c.packed_tokens += sum;
  c.computed_tokens += bucket;
  return true;
}

void ServingEngine::ServeSpanOneByOne(StreamState& stream,
                                      const std::vector<ServeRequest>& requests,
                                      const std::vector<int64_t>& span,
                                      const std::vector<int64_t>& deadline_abs,
                                      std::vector<ServeOutcome>& outcomes,
                                      std::vector<int64_t>& bucket_of) {
  for (const int64_t idx : span) {
    ServeOutcome& outcome = outcomes[static_cast<size_t>(idx)];
    outcome.status = ServeOne(stream, requests[static_cast<size_t>(idx)],
                              deadline_abs[static_cast<size_t>(idx)], &outcome.output,
                              &bucket_of[static_cast<size_t>(idx)]);
  }
}

void ServingEngine::ServeSpan(StreamState& stream, const std::vector<ServeRequest>& requests,
                              const std::vector<int64_t>& span,
                              const std::vector<int64_t>& deadline_abs,
                              std::vector<ServeOutcome>& outcomes,
                              std::vector<int64_t>& bucket_of) {
  const auto mark_internal = [&] {
    ctr_internal_.fetch_add(1, std::memory_order_relaxed);
    for (const int64_t idx : span) {
      outcomes[static_cast<size_t>(idx)].status = ServeStatus::kInternal;
    }
  };
  if (FaultProbe(FaultSite::kBatchPack)) {
    ctr_faults_.fetch_add(1, std::memory_order_relaxed);
    if (!use_pit_) {
      // Pack failure, dense stack: unbatch. The PR 6 contract makes each
      // request's output independent of batch composition, so the 1:1
      // fallback is bitwise invisible to the requests.
      ctr_degraded_.fetch_add(1, std::memory_order_relaxed);
      ServeSpanOneByOne(stream, requests, span, deadline_abs, outcomes, bucket_of);
      return;
    }
    // PIT: kernel selection sees the packed tile's sparsity, so unbatching
    // would change bits — retry the pack at identical composition instead.
    ctr_retries_.fetch_add(1, std::memory_order_relaxed);
    ScopedFaultRetryImmunity immune;
    if (!TryPackedForward(stream, requests, span, deadline_abs, outcomes, bucket_of)) {
      mark_internal();
    }
    return;
  }
  if (TryPackedForward(stream, requests, span, deadline_abs, outcomes, bucket_of)) {
    return;
  }
  // A rung inside the packed attempt failed terminally for this composition
  // (compile double-fault or kernel dispatch fault): same split as above —
  // dense unbatches, PIT retries the identical packed composition once.
  if (!use_pit_) {
    ctr_degraded_.fetch_add(1, std::memory_order_relaxed);
    ServeSpanOneByOne(stream, requests, span, deadline_abs, outcomes, bucket_of);
    return;
  }
  ctr_retries_.fetch_add(1, std::memory_order_relaxed);
  ScopedFaultRetryImmunity immune;
  if (!TryPackedForward(stream, requests, span, deadline_abs, outcomes, bucket_of)) {
    mark_internal();
  }
}

void ServingEngine::MergeBucketStats(const std::vector<int64_t>& bucket_of,
                                     const std::vector<double>& latencies) {
  std::map<int64_t, ServingBucketStats> merged;
  for (const std::unique_ptr<StreamState>& stream : streams_) {
    for (const auto& [bucket, c] : stream->bucket_counters) {
      ServingBucketStats& b = merged[bucket];
      b.bucket = bucket;
      b.batches += c.batches;
      b.requests += c.requests;
      b.packed_tokens += c.packed_tokens;
      b.computed_tokens += c.computed_tokens;
      b.plan_hits += c.plan_hits;
      b.plan_misses += c.plan_misses;
    }
  }
  {
    std::lock_guard<std::mutex> lock(bucket_pool_mu_);
    for (const auto& [bucket, live_and_peak] : bucket_pool_) {
      ServingBucketStats& b = merged[bucket];
      b.bucket = bucket;
      b.pool_contexts = live_and_peak.first;
      b.pool_contexts_highwater = live_and_peak.second;
    }
  }
  std::map<int64_t, std::vector<double>> latencies_by_bucket;
  for (size_t i = 0; i < bucket_of.size(); ++i) {
    latencies_by_bucket[bucket_of[i]].push_back(latencies[i]);
  }
  int64_t batches = 0;
  int64_t packed = 0;
  int64_t computed = 0;
  stats_.buckets.clear();
  for (auto& [bucket, b] : merged) {
    auto it = latencies_by_bucket.find(bucket);
    // Guarded by presence *and* non-emptiness: a bucket served in an earlier
    // call but untouched by this one keeps percentiles of 0 rather than
    // feeding an empty sample into PercentileNearestRank.
    if (it != latencies_by_bucket.end() && !it->second.empty()) {
      std::sort(it->second.begin(), it->second.end());
      b.p50_latency_us = PercentileNearestRank(it->second, 0.50);
      b.p99_latency_us = PercentileNearestRank(it->second, 0.99);
    }
    batches += b.batches;
    packed += b.packed_tokens;
    computed += b.computed_tokens;
    stats_.buckets.push_back(b);
  }
  stats_.batches = batches;
  stats_.packed_utilization =
      computed > 0 ? static_cast<double>(packed) / static_cast<double>(computed) : 1.0;
}

std::vector<ServeOutcome> ServingEngine::ServeWithStatus(
    const std::vector<ServeRequest>& requests) {
  const int64_t n = static_cast<int64_t>(requests.size());
  std::vector<ServeOutcome> outcomes(static_cast<size_t>(n));
  // Serve/Drain handshake: a drained engine rejects the whole call with a
  // definite status (never an abort, never a hang); otherwise the call
  // registers as active so Drain() can wait it out.
  {
    std::lock_guard<std::mutex> lock(serve_mu_);
    if (draining_.load(std::memory_order_acquire)) {
      for (ServeOutcome& outcome : outcomes) {
        outcome.status = ServeStatus::kCancelled;
      }
      stats_.requests += n;
      stats_.cancelled += n;
      return outcomes;
    }
    ++serve_active_;
  }
  const int64_t hidden = transformer_ != nullptr ? transformer_->hidden() : ffn_->hidden();
  const int64_t t0_abs_us = SteadyNowUs();
  const auto t0 = std::chrono::steady_clock::now();
  const auto elapsed_us = [&t0] {
    return std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() - t0)
        .count();
  };

  // Admission: validate every request up front (pure per-request work, so it
  // fans out), then admit in arrival order against the bounded queue —
  // shedding is deterministic, independent of streams/threads/timing. A
  // rejected request never reaches a stream, so it cannot perturb the batch
  // composition of admitted neighbours beyond its absence (which the PR 6
  // contract makes bitwise invisible).
  std::vector<ServeStatus> admit(static_cast<size_t>(n), ServeStatus::kOk);
  ParallelFor(n, 1, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) {
      admit[static_cast<size_t>(i)] = AdmissionStatus(requests[static_cast<size_t>(i)]);
    }
  });
  std::vector<int64_t> queue;
  queue.reserve(static_cast<size_t>(n));
  int64_t rejected_invalid = 0;
  int64_t rejected_overload = 0;
  for (int64_t i = 0; i < n; ++i) {
    if (admit[static_cast<size_t>(i)] != ServeStatus::kOk) {
      outcomes[static_cast<size_t>(i)].status = admit[static_cast<size_t>(i)];
      ++rejected_invalid;
      continue;
    }
    if (queue_capacity_ > 0 && static_cast<int64_t>(queue.size()) >= queue_capacity_) {
      outcomes[static_cast<size_t>(i)].status = ServeStatus::kRejectedOverload;
      ++rejected_overload;
      continue;
    }
    queue.push_back(i);
  }
  // Absolute per-request deadlines on the steady clock (kNoDeadline when
  // neither the request nor the engine sets a budget). Queued requests start
  // in kCancelled, not the kInternal default: if Drain() stops the claim loop
  // before a worker reaches them, they already carry the definite status the
  // drain contract promises.
  std::vector<int64_t> deadline_abs(static_cast<size_t>(n), CancelToken::kNoDeadline);
  for (const int64_t idx : queue) {
    const ServeRequest& request = requests[static_cast<size_t>(idx)];
    const int64_t budget_us = request.deadline_us > 0 ? request.deadline_us : deadline_us_;
    if (budget_us > 0) {
      deadline_abs[static_cast<size_t>(idx)] = t0_abs_us + budget_us;
    }
    outcomes[static_cast<size_t>(idx)].status = ServeStatus::kCancelled;
    outcomes[static_cast<size_t>(idx)].output = Tensor({request.x.dim(0), hidden});
  }
  const int64_t qn = static_cast<int64_t>(queue.size());
  std::vector<double> latencies(static_cast<size_t>(n), 0.0);
  std::vector<int64_t> bucket_of(static_cast<size_t>(n), 0);

  // Work-conserving M:N dispatch: each stream worker greedily claims the next
  // unserved request span, so a long request never leaves streams idle while
  // work remains. Requests never split across streams, and claims advance the
  // cursor in fixed batch-window strides, so span (and therefore batch)
  // composition is independent of which stream claims what — per-request
  // replay bits are independent of the claim interleaving.
  std::atomic<int64_t> next{0};
  std::atomic<int64_t> timed_out{0};
  const int64_t inflight_lapses_before = ctr_timed_out_inflight_.load(std::memory_order_relaxed);
  const int budget = std::max(1, NumThreads() / std::max(1, num_streams_));
  const int64_t window = batch_window_;
  const int64_t max_tokens = max_batch_tokens_;
  ParallelTasks(num_streams_, budget, [&](int64_t s) {
    // Fault probes are live only inside engine workers: plan replays
    // anywhere else in the process never observe injected faults.
    ScopedFaultArming arming;
    StreamState& stream = *streams_[static_cast<size_t>(s)];
    // Route this worker's replay step checkpoints into the stream's
    // heartbeat counter for the watchdog.
    ScopedThreadHeartbeat heartbeat_scope(&stream.heartbeat);
    for (int64_t i0 = next.fetch_add(window, std::memory_order_relaxed); i0 < qn;
         i0 = next.fetch_add(window, std::memory_order_relaxed)) {
      // Drain stops claiming at span boundaries: already-claimed spans run
      // to their definite outcome (finished or cancelled mid-replay by the
      // stream token), unclaimed requests keep their kCancelled status.
      if (draining_.load(std::memory_order_acquire)) {
        break;
      }
      const int64_t i_end = std::min(i0 + window, qn);
      int64_t b0 = i0;
      while (b0 < i_end) {
        int64_t b1 = b0 + 1;
        if (window > 1) {
          // Greedy admission under the token budget: extend while the next
          // request still fits; a single oversized request forms its own
          // batch. Composition depends only on (window, budget, request
          // order), never on the stream count or claim timing.
          int64_t sum = requests[static_cast<size_t>(queue[static_cast<size_t>(b0)])].x.dim(0);
          while (b1 < i_end) {
            const int64_t len =
                requests[static_cast<size_t>(queue[static_cast<size_t>(b1)])].x.dim(0);
            if (sum + len > max_tokens) {
              break;
            }
            sum += len;
            ++b1;
          }
        }
        // Deadline-expiry sweep at claim time: a request whose latency
        // budget lapsed while it waited for a stream is shed before packing,
        // so an overloaded engine stops spending compute on requests nobody
        // is waiting for anymore.
        stream.span.clear();
        const int64_t sweep_now_us = SteadyNowUs();
        for (int64_t j = b0; j < b1; ++j) {
          const int64_t idx = queue[static_cast<size_t>(j)];
          if (deadline_abs[static_cast<size_t>(idx)] <= sweep_now_us) {
            outcomes[static_cast<size_t>(idx)].status = ServeStatus::kDeadlineExceeded;
            timed_out.fetch_add(1, std::memory_order_relaxed);
          } else {
            stream.span.push_back(idx);
          }
        }
        if (!stream.span.empty()) {
          // Mark the stream mid-claim for the watchdog, then draw the seeded
          // stall probe: a fired stall wedges the worker *before* the
          // forward, so watchdog detection and in-flight deadline lapse
          // both become reachable deterministically.
          int64_t span_tokens = 0;
          for (const int64_t idx : stream.span) {
            span_tokens += requests[static_cast<size_t>(idx)].x.dim(0);
          }
          stream.hb_bucket.store(
              window > 1 ? BucketTokensPow2(span_tokens, kMinBatchBucket) : span_tokens,
              std::memory_order_relaxed);
          stream.hb_active.store(true, std::memory_order_release);
          if (FaultProbe(FaultSite::kStall)) {
            ctr_stalls_injected_.fetch_add(1, std::memory_order_relaxed);
            std::this_thread::sleep_for(std::chrono::microseconds(ActiveFaultConfig().stall_us));
          }
          if (window > 1) {
            ServeSpan(stream, requests, stream.span, deadline_abs, outcomes, bucket_of);
          } else {
            const int64_t idx = stream.span[0];
            ServeOutcome& outcome = outcomes[static_cast<size_t>(idx)];
            outcome.status = ServeOne(stream, requests[static_cast<size_t>(idx)],
                                      deadline_abs[static_cast<size_t>(idx)], &outcome.output,
                                      &bucket_of[static_cast<size_t>(idx)]);
          }
          stream.hb_active.store(false, std::memory_order_release);
          const double done = elapsed_us();
          int64_t completed = 0;
          for (const int64_t idx : stream.span) {
            if (outcomes[static_cast<size_t>(idx)].status == ServeStatus::kOk) {
              latencies[static_cast<size_t>(idx)] = done;
              ++completed;
            }
          }
          stream.requests += completed;
        }
        b0 = b1;
      }
    }
  });
  const double wall_us = elapsed_us();

  // Every claim ends in a definite status, and queued-but-unclaimed requests
  // (possible only under Drain) already hold kCancelled, so nothing leaves
  // here with the kInternal default unless a ladder genuinely exhausted.
  // Non-kOk outcomes surrender their output buffer (the structured contract:
  // output iff kOk).
  std::vector<int64_t> ok_buckets;
  std::vector<double> ok_latencies;
  ok_buckets.reserve(static_cast<size_t>(qn));
  ok_latencies.reserve(static_cast<size_t>(qn));
  int64_t cancelled_now = 0;
  for (int64_t i = 0; i < n; ++i) {
    ServeOutcome& outcome = outcomes[static_cast<size_t>(i)];
    if (outcome.status == ServeStatus::kOk) {
      ok_buckets.push_back(bucket_of[static_cast<size_t>(i)]);
      ok_latencies.push_back(latencies[static_cast<size_t>(i)]);
    } else {
      if (outcome.status == ServeStatus::kCancelled) {
        ++cancelled_now;
      }
      outcome.output = Tensor();
    }
  }
  const int64_t served_ok = static_cast<int64_t>(ok_latencies.size());

  // Lifetime + last-call statistics (single-caller engine: no worker is
  // running here anymore, so plain reads of the stream states are safe).
  stats_.requests += n;
  stats_.wall_us = wall_us;
  stats_.requests_per_sec =
      wall_us > 0.0 ? static_cast<double>(served_ok) / (wall_us / 1e6) : 0.0;
  stats_.rejected_invalid += rejected_invalid;
  stats_.rejected_overload += rejected_overload;
  stats_.timed_out += timed_out.load(std::memory_order_relaxed) +
                      (ctr_timed_out_inflight_.load(std::memory_order_relaxed) -
                       inflight_lapses_before);
  stats_.timed_out_inflight = ctr_timed_out_inflight_.load(std::memory_order_relaxed);
  stats_.cancelled += cancelled_now;
  stats_.cancelled_forwards = ctr_cancelled_forwards_.load(std::memory_order_relaxed);
  stats_.stalls_injected = ctr_stalls_injected_.load(std::memory_order_relaxed);
  stats_.stalls_detected = ctr_stalls_detected_.load(std::memory_order_relaxed);
  stats_.stall_min_silence_us = ctr_stall_min_silence_us_.load(std::memory_order_relaxed);
  stats_.stall_max_silence_us = ctr_stall_max_silence_us_.load(std::memory_order_relaxed);
  stats_.faults_injected = ctr_faults_.load(std::memory_order_relaxed);
  stats_.retries = ctr_retries_.load(std::memory_order_relaxed);
  stats_.degraded_forwards = ctr_degraded_.load(std::memory_order_relaxed);
  stats_.internal_failures = ctr_internal_.load(std::memory_order_relaxed);
  for (int s = 0; s < num_streams_; ++s) {
    stats_.per_stream_requests[static_cast<size_t>(s)] = streams_[static_cast<size_t>(s)]->requests;
  }
  stats_.pool_contexts = pool_contexts_.load(std::memory_order_relaxed);
  stats_.pool_contexts_highwater = pool_contexts_highwater_.load(std::memory_order_relaxed);
  stats_.pool_arena_bytes = pool_arena_bytes_.load(std::memory_order_relaxed);
  stats_.pool_arena_bytes_highwater = pool_arena_bytes_highwater_.load(std::memory_order_relaxed);
  MergeBucketStats(ok_buckets, ok_latencies);
  if (served_ok > 0) {
    double sum = 0.0;
    for (const double l : ok_latencies) {
      sum += l;
    }
    stats_.mean_latency_us = sum / static_cast<double>(served_ok);
    std::sort(ok_latencies.begin(), ok_latencies.end());
    stats_.p50_latency_us = PercentileNearestRank(ok_latencies, 0.50);
    stats_.p99_latency_us = PercentileNearestRank(ok_latencies, 0.99);
  } else {
    // Zero completions (empty call, or everything rejected/shed/timed out):
    // the latency report is explicitly zero, never 0/0 or a percentile of an
    // empty sample.
    stats_.mean_latency_us = 0.0;
    stats_.p50_latency_us = 0.0;
    stats_.p99_latency_us = 0.0;
  }
  {
    // Notify under the lock: once a drainer observes serve_active_ == 0 the
    // engine may be destroyed, so the notify must happen-before that
    // observation, not after.
    std::lock_guard<std::mutex> lock(serve_mu_);
    --serve_active_;
    serve_cv_.notify_all();
  }
  return outcomes;
}

std::vector<Tensor> ServingEngine::Serve(const std::vector<ServeRequest>& requests) {
  std::vector<ServeOutcome> outcomes = ServeWithStatus(requests);
  std::vector<Tensor> outputs;
  outputs.reserve(outcomes.size());
  for (size_t i = 0; i < outcomes.size(); ++i) {
    // The legacy API promises outputs for every request, so any contained
    // failure escalates back into the fail-fast domain here — at the API
    // boundary, with the request named, not deep inside a kernel.
    PIT_CHECK(outcomes[i].status == ServeStatus::kOk)
        << "Serve(): request " << i << " failed with status "
        << ServeStatusName(outcomes[i].status) << "; use ServeWithStatus for structured handling";
    outputs.push_back(std::move(outcomes[i].output));
  }
  return outputs;
}

}  // namespace pit
