// Throughput-oriented multi-stream serving engine over the planned stacks.
//
// The compile-once/execute-many seam (shared immutable ExecutionPlans, PR 2-4)
// served one request stream: a plan's arena was its execution state, so a
// second in-flight forward had to wait. This engine exploits the plan/context
// split: every stream holds private ExecutionContexts over the stack's shared
// plans (one per layer per served shape, pooled and reused across requests),
// so N streams replay the same compiled plans concurrently with zero
// cross-stream shared mutable state — inter-request parallelism, which
// BENCH_pr4 showed is where the hardware headroom is once intra-plan
// wavefronts stop paying (small per-step work at serving-size shapes).
//
// Scheduling: one worker per stream on the task-capable ParallelFor pool
// (ParallelTasks), each greedily pulling the next request off a shared atomic
// cursor — a work-conserving M:N scheduler, not a static partition, so a
// stream stuck on a long request never idles the others. Each worker runs
// with an intra-op width budget of ~threads/streams; inside a worker the
// plan replays sequentially (ParallelRegionActive) and its kernels fan out
// to the worker's budget, which keeps every result bitwise identical to
// single-stream replay at any (streams x threads x scheduler) combination:
// requests never split across streams, contexts never cross streams, and
// every kernel is chunk-count deterministic.
//
// The stream count resolves from ServingEngineOptions::num_streams, else the
// strict-parsed PIT_NUM_STREAMS environment knob, else NumThreads().
#ifndef PIT_RUNTIME_SERVING_ENGINE_H_
#define PIT_RUNTIME_SERVING_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "pit/runtime/models.h"
#include "pit/tensor/tensor.h"

namespace pit {

// One inference request: an activation batch and an optional attention mask
// (transformer stacks only; FFN stacks require mask == nullptr). The mask
// must outlive the Serve call.
struct ServeRequest {
  Tensor x;                           // [tokens, hidden]
  const Tensor* attn_mask = nullptr;  // [tokens, tokens] or nullptr
};

struct ServingEngineOptions {
  // > 0: explicit stream count. 0: resolve PIT_NUM_STREAMS (strict-parsed,
  // like PIT_NUM_THREADS), falling back to NumThreads().
  int num_streams = 0;
  // Route the stacks' sparse matmuls through PIT. Each stream owns a private
  // PitCompiler (the compiler's JIT cache is not thread-safe) with periodic
  // resampling left disabled, so kernel selection is a pure function of the
  // input and results stay independent of request-to-stream assignment.
  bool use_pit = false;
};

// Aggregate statistics of the engine's lifetime (latencies of the most
// recent Serve call; pool high-water marks across all calls).
struct ServingEngineStats {
  int num_streams = 0;
  int64_t requests = 0;       // total requests served over the engine lifetime
  double wall_us = 0.0;       // wall-clock of the last Serve call
  double requests_per_sec = 0.0;
  double mean_latency_us = 0.0;  // arrival (= Serve start) -> completion
  double p50_latency_us = 0.0;   // nearest-rank percentiles (PercentileNearestRank)
  double p99_latency_us = 0.0;
  // Context/arena pool accounting: streams cache one context set per served
  // (token count, masked?) shape and reuse it across requests; high-water
  // marks track the peak pinned footprint over the engine's lifetime.
  int64_t pool_contexts = 0;             // currently pooled ExecutionContexts
  int64_t pool_contexts_highwater = 0;
  int64_t pool_arena_bytes = 0;          // bytes pinned by pooled arenas
  int64_t pool_arena_bytes_highwater = 0;
  std::vector<int64_t> per_stream_requests;  // lifetime request count per stream
};

// Drives a pinned PlannedTransformerStack (or PlannedFfnStack) over request
// streams. The engine is itself single-caller (one Serve at a time); all
// parallelism is internal. Streams and their context pools persist across
// Serve calls, so steady-state serving recompiles and reallocates nothing
// for already-seen shapes.
class ServingEngine {
 public:
  explicit ServingEngine(const PlannedTransformerStack& stack,
                         const ServingEngineOptions& options = {});
  explicit ServingEngine(const PlannedFfnStack& stack, const ServingEngineOptions& options = {});
  ~ServingEngine();

  ServingEngine(const ServingEngine&) = delete;
  ServingEngine& operator=(const ServingEngine&) = delete;

  // Serves every request to completion across the engine's streams and
  // returns the outputs in request order. Per-request results are bitwise
  // identical to single-stream replay (and to the stack's Forward) for any
  // (streams x threads x scheduler) combination.
  std::vector<Tensor> Serve(const std::vector<ServeRequest>& requests);

  int num_streams() const { return num_streams_; }
  const ServingEngineStats& stats() const { return stats_; }

 private:
  struct StreamState;

  // Shared constructor body: stream-state allocation, per-stream compilers,
  // stats init (the two public constructors differ only in which stack
  // pointer they set).
  void Init(const ServingEngineOptions& options);
  void ServeOn(StreamState& stream, const ServeRequest& request, Tensor* out);
  // Finds (or builds, evicting at the shape bound) the stream's pooled state
  // for `key` — the one implementation of the lookup/evict/account protocol
  // both stack types go through.
  template <typename Pool, typename Key, typename MakeStreamFn>
  typename Pool::mapped_type& PooledStream(StreamState& stream, Pool& pool, const Key& key,
                                           MakeStreamFn&& make);
  // Adjusts the live pool totals by the given deltas and folds the result
  // into the high-water marks. Called from concurrent stream workers at the
  // moment a pool grows (or is evicted), so the marks capture mid-Serve
  // peaks, not just the Serve-end snapshot.
  void AccountPoolDelta(int64_t contexts_delta, int64_t bytes_delta);

  const PlannedTransformerStack* transformer_ = nullptr;  // exactly one of the
  const PlannedFfnStack* ffn_ = nullptr;                  // two stacks is set
  int num_streams_ = 1;
  bool use_pit_ = false;
  std::vector<std::unique_ptr<StreamState>> streams_;
  // Live pool totals + lifetime peaks, updated by workers as pools change.
  std::atomic<int64_t> pool_contexts_{0};
  std::atomic<int64_t> pool_arena_bytes_{0};
  std::atomic<int64_t> pool_contexts_highwater_{0};
  std::atomic<int64_t> pool_arena_bytes_highwater_{0};
  ServingEngineStats stats_;
};

}  // namespace pit

#endif  // PIT_RUNTIME_SERVING_ENGINE_H_
