// Throughput-oriented multi-stream serving engine over the planned stacks.
//
// The compile-once/execute-many seam (shared immutable ExecutionPlans, PR 2-4)
// served one request stream: a plan's arena was its execution state, so a
// second in-flight forward had to wait. This engine exploits the plan/context
// split: every stream holds private ExecutionContexts over the stack's shared
// plans (one per layer per served shape, pooled and reused across requests),
// so N streams replay the same compiled plans concurrently with zero
// cross-stream shared mutable state — inter-request parallelism, which
// BENCH_pr4 showed is where the hardware headroom is once intra-plan
// wavefronts stop paying (small per-step work at serving-size shapes).
//
// Continuous ragged batching (PR 6) applies the paper's micro-tile
// permutation to the batch axis: a padded mixed-length batch is a dynamically
// row-sparse tensor (§2.1 Fig. 2c), so a stream coalesces several in-flight
// requests of *different* token counts into one dense forward by
// SRead-gathering each request's token rows into a packed
// [sum_tokens, hidden] tile, replaying the stack's shared plan over it with a
// block-diagonal attention mask (requests never attend across batch
// boundaries; padding rows self-attend), and SWrite-scattering per-request
// outputs back. Packed batches are padded to power-of-two sum-token buckets,
// so the plan pool holds O(log max_tokens) keys instead of one per distinct
// request length. The batched result is bitwise identical per request to 1:1
// single-stream replay for dense serving: every kernel in the stack is
// row-independent (GEMM rows, layernorm, residuals) and the masked softmax
// contributes exact 0.0f for foreign columns, so a request's rows cannot
// observe its batch neighbours.
//
// Scheduling: one worker per stream on the task-capable ParallelFor pool
// (ParallelTasks), each greedily pulling the next request span off a shared
// atomic cursor — a work-conserving M:N scheduler, not a static partition, so
// a stream stuck on a long request never idles the others. Claims advance the
// cursor by the batch window, so span composition (and therefore batch
// composition) is independent of which stream claims it. Each worker runs
// with an intra-op width budget of ~threads/streams; inside a worker the
// plan replays sequentially (ParallelRegionActive) and its kernels fan out
// to the worker's budget, which keeps every result bitwise identical to
// single-stream replay at any (streams x threads x scheduler) combination:
// requests never split across streams, contexts never cross streams, and
// every kernel is chunk-count deterministic.
//
// The stream count resolves from ServingEngineOptions::num_streams, else the
// strict-parsed PIT_NUM_STREAMS environment knob, else NumThreads(). The
// batching admission knobs resolve the same way from
// ServingEngineOptions::batch_window / max_batch_tokens, else the
// strict-parsed PIT_BATCH_WINDOW / PIT_BATCH_TOKENS knobs, else defaults
// (window 1 — batching off — and 512 token rows).
#ifndef PIT_RUNTIME_SERVING_ENGINE_H_
#define PIT_RUNTIME_SERVING_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "pit/runtime/models.h"
#include "pit/tensor/tensor.h"

namespace pit {

// One inference request: an activation batch and an optional attention mask
// (transformer stacks only; FFN stacks require mask == nullptr). The mask
// must outlive the Serve call.
struct ServeRequest {
  Tensor x;                           // [tokens, hidden]
  const Tensor* attn_mask = nullptr;  // [tokens, tokens] or nullptr
};

struct ServingEngineOptions {
  // > 0: explicit stream count. 0: resolve PIT_NUM_STREAMS (strict-parsed,
  // like PIT_NUM_THREADS), falling back to NumThreads().
  int num_streams = 0;
  // Route the stacks' sparse matmuls through PIT. Each stream owns a private
  // PitCompiler (the compiler's JIT cache is not thread-safe) with periodic
  // resampling left disabled, so kernel selection is a pure function of the
  // input and results stay independent of request-to-stream assignment.
  bool use_pit = false;
  // Continuous ragged-batching admission policy. batch_window is the maximum
  // number of consecutive requests a stream coalesces into packed forwards
  // per claim (the latency bound: a request waits for at most window - 1
  // batchmates); max_batch_tokens closes a batch early when admitting the
  // next request would push the packed row count past it (the compute bound;
  // a single longer request forms its own batch). > 0: explicit. 0: resolve
  // the strict-parsed PIT_BATCH_WINDOW / PIT_BATCH_TOKENS knobs, falling back
  // to 1 (batching off — every request replays at its exact token count, the
  // pre-PR 6 behavior) and 512.
  int batch_window = 0;
  int max_batch_tokens = 0;
};

// Per-bucket plan-pool and service accounting. A "bucket" is the padded
// token count a plan is keyed by: the power-of-two sum-token capacity of a
// packed batch under ragged batching, or a request's exact token count when
// serving 1:1 — so the bucket list is exactly the engine's plan-pool key
// cardinality, and the 1:1 vs batched contrast (distinct lengths vs
// O(log max) buckets) is directly observable.
struct ServingBucketStats {
  int64_t bucket = 0;           // padded token count (plan-pool key)
  int64_t batches = 0;          // lifetime packed forwards at this bucket
  int64_t requests = 0;         // lifetime requests served through them
  int64_t packed_tokens = 0;    // lifetime real token rows packed
  int64_t computed_tokens = 0;  // lifetime rows computed (batches x bucket)
  // Pooled-stream lookups: hits reused a pooled plan+context set, misses
  // built (and possibly compiled) one.
  int64_t plan_hits = 0;
  int64_t plan_misses = 0;
  // ExecutionContexts currently pooled for this bucket across all streams,
  // and the lifetime peak.
  int64_t pool_contexts = 0;
  int64_t pool_contexts_highwater = 0;
  // Nearest-rank latency percentiles of the last Serve call's requests that
  // landed in this bucket (0 when none did).
  double p50_latency_us = 0.0;
  double p99_latency_us = 0.0;
};

// Aggregate statistics of the engine's lifetime (latencies of the most
// recent Serve call; pool high-water marks across all calls).
struct ServingEngineStats {
  int num_streams = 0;
  int batch_window = 1;
  int max_batch_tokens = 0;
  int64_t requests = 0;       // total requests served over the engine lifetime
  int64_t batches = 0;        // total forwards dispatched (== requests unbatched)
  double wall_us = 0.0;       // wall-clock of the last Serve call
  double requests_per_sec = 0.0;
  double mean_latency_us = 0.0;  // arrival (= Serve start) -> completion
  double p50_latency_us = 0.0;   // nearest-rank percentiles (PercentileNearestRank)
  double p99_latency_us = 0.0;
  // Lifetime fraction of computed token rows that were real request rows
  // (1.0 unbatched; batching trades bucket-padding waste for plan reuse and
  // dense-batch efficiency).
  double packed_utilization = 1.0;
  // Context/arena pool accounting: streams cache one context set per served
  // bucket and reuse it across requests; high-water marks track the peak
  // pinned footprint over the engine's lifetime.
  int64_t pool_contexts = 0;             // currently pooled ExecutionContexts
  int64_t pool_contexts_highwater = 0;
  int64_t pool_arena_bytes = 0;          // bytes pinned by pooled arenas
  int64_t pool_arena_bytes_highwater = 0;
  std::vector<int64_t> per_stream_requests;  // lifetime request count per stream
  std::vector<ServingBucketStats> buckets;   // ascending by bucket
};

// Drives a pinned PlannedTransformerStack (or PlannedFfnStack) over request
// streams. The engine is itself single-caller (one Serve at a time); all
// parallelism is internal. Streams and their context pools persist across
// Serve calls, so steady-state serving recompiles and reallocates nothing
// for already-seen shapes.
class ServingEngine {
 public:
  explicit ServingEngine(const PlannedTransformerStack& stack,
                         const ServingEngineOptions& options = {});
  explicit ServingEngine(const PlannedFfnStack& stack, const ServingEngineOptions& options = {});
  ~ServingEngine();

  ServingEngine(const ServingEngine&) = delete;
  ServingEngine& operator=(const ServingEngine&) = delete;

  // Serves every request to completion across the engine's streams and
  // returns the outputs in request order. Per-request results are bitwise
  // identical to single-stream replay (and, for dense serving, to the 1:1
  // unbatched engine and the stack's eager oracle) for any
  // (streams x threads x scheduler x batching) combination. PIT serving is
  // deterministic and stream-assignment independent, but its kernel
  // selection sees the packed tile's sparsity, so batched PIT results match
  // batched single-stream PIT replay rather than the 1:1 PIT engine.
  std::vector<Tensor> Serve(const std::vector<ServeRequest>& requests);

  int num_streams() const { return num_streams_; }
  int batch_window() const { return batch_window_; }
  int max_batch_tokens() const { return max_batch_tokens_; }
  const ServingEngineStats& stats() const { return stats_; }

 private:
  struct StreamState;

  // Shared constructor body: stream-state allocation, per-stream compilers,
  // stats init (the two public constructors differ only in which stack
  // pointer they set).
  void Init(const ServingEngineOptions& options);
  void ServeOn(StreamState& stream, const ServeRequest& request, Tensor* out, int64_t* bucket);
  // Packs requests [begin, end) into one bucket-padded dense forward on
  // `stream` and scatters per-request outputs; records each request's bucket.
  void ServeBatchOn(StreamState& stream, const std::vector<ServeRequest>& requests,
                    int64_t begin, int64_t end, std::vector<Tensor>& outputs,
                    std::vector<int64_t>& bucket_of);
  // Finds (or builds, evicting at the shape bound) the stream's pooled state
  // for `key` — the one implementation of the lookup/evict/account protocol
  // both stack types go through. Tallies the hit/miss and per-bucket context
  // accounting.
  template <typename Pool, typename Key, typename MakeStreamFn>
  typename Pool::mapped_type& PooledStream(StreamState& stream, Pool& pool, const Key& key,
                                           MakeStreamFn&& make);
  // Adjusts the live pool totals by the given deltas and folds the result
  // into the high-water marks. Called from concurrent stream workers at the
  // moment a pool grows (or is evicted), so the marks capture mid-Serve
  // peaks, not just the Serve-end snapshot.
  void AccountPoolDelta(int64_t contexts_delta, int64_t bytes_delta);
  // Per-bucket share of the context-pool accounting (mutex-protected: only
  // touched when a pool entry is built or evicted, never per request).
  void AccountBucketPool(int64_t bucket, int64_t contexts_delta);
  // Folds the streams' per-bucket counters and the last Serve's per-request
  // (bucket, latency) pairs into stats_.buckets.
  void MergeBucketStats(const std::vector<int64_t>& bucket_of,
                        const std::vector<double>& latencies);

  const PlannedTransformerStack* transformer_ = nullptr;  // exactly one of the
  const PlannedFfnStack* ffn_ = nullptr;                  // two stacks is set
  int num_streams_ = 1;
  bool use_pit_ = false;
  int batch_window_ = 1;
  int max_batch_tokens_ = 0;
  std::vector<std::unique_ptr<StreamState>> streams_;
  // Live pool totals + lifetime peaks, updated by workers as pools change.
  std::atomic<int64_t> pool_contexts_{0};
  std::atomic<int64_t> pool_arena_bytes_{0};
  std::atomic<int64_t> pool_contexts_highwater_{0};
  std::atomic<int64_t> pool_arena_bytes_highwater_{0};
  std::mutex bucket_pool_mu_;
  std::map<int64_t, std::pair<int64_t, int64_t>> bucket_pool_;  // live, highwater
  ServingEngineStats stats_;
};

}  // namespace pit

#endif  // PIT_RUNTIME_SERVING_ENGINE_H_
