// Throughput-oriented multi-stream serving engine over the planned stacks.
//
// The compile-once/execute-many seam (shared immutable ExecutionPlans, PR 2-4)
// served one request stream: a plan's arena was its execution state, so a
// second in-flight forward had to wait. This engine exploits the plan/context
// split: every stream holds private ExecutionContexts over the stack's shared
// plans (one per layer per served shape, pooled and reused across requests),
// so N streams replay the same compiled plans concurrently with zero
// cross-stream shared mutable state — inter-request parallelism, which
// BENCH_pr4 showed is where the hardware headroom is once intra-plan
// wavefronts stop paying (small per-step work at serving-size shapes).
//
// Continuous ragged batching (PR 6) applies the paper's micro-tile
// permutation to the batch axis: a padded mixed-length batch is a dynamically
// row-sparse tensor (§2.1 Fig. 2c), so a stream coalesces several in-flight
// requests of *different* token counts into one dense forward by
// SRead-gathering each request's token rows into a packed
// [sum_tokens, hidden] tile, replaying the stack's shared plan over it with a
// block-diagonal attention mask (requests never attend across batch
// boundaries; padding rows self-attend), and SWrite-scattering per-request
// outputs back. Packed batches are padded to power-of-two sum-token buckets,
// so the plan pool holds O(log max_tokens) keys instead of one per distinct
// request length. The batched result is bitwise identical per request to 1:1
// single-stream replay for dense serving: every kernel in the stack is
// row-independent (GEMM rows, layernorm, residuals) and the masked softmax
// contributes exact 0.0f for foreign columns, so a request's rows cannot
// observe its batch neighbours.
//
// Scheduling: one worker per stream on the task-capable ParallelFor pool
// (ParallelTasks), each greedily pulling the next request span off a shared
// atomic cursor — a work-conserving M:N scheduler, not a static partition, so
// a stream stuck on a long request never idles the others. Claims advance the
// cursor by the batch window, so span composition (and therefore batch
// composition) is independent of which stream claims it. Each worker runs
// with an intra-op width budget of ~threads/streams; inside a worker the
// plan replays sequentially (ParallelRegionActive) and its kernels fan out
// to the worker's budget, which keeps every result bitwise identical to
// single-stream replay at any (streams x threads x scheduler) combination:
// requests never split across streams, contexts never cross streams, and
// every kernel is chunk-count deterministic.
//
// Fault containment (PR 9): the error domain is split in two. *API misuse* —
// a null stack, negative option values, legacy Serve() on a failed request —
// stays fail-fast (PIT_CHECK abort, check.h). *Data-dependent request
// failures* are contained at the request boundary and reported as a
// per-request ServeStatus: admission validates shape, mask dimensions and
// finiteness up front (kInvalidArgument), a bounded admission queue sheds
// overflow (kRejectedOverload), a deadline sweep sheds requests whose latency
// budget lapsed while queued (kDeadlineExceeded), and injected or transient
// infrastructure faults ride a degradation ladder — retry a failed plan
// compile once, fall back to a transient unpooled context on pool
// exhaustion, fall back to 1:1 unbatched serving on pack failure (dense;
// PIT retries at identical batch composition since its kernel selection sees
// the packed tile) — that ends in kOk or, only under persistent injected
// faults, kInternal. A rejected request is excluded from its packed batch
// without perturbing batchmates: the PR 6 contract makes per-request outputs
// independent of batch composition, so every degradation rung is bitwise
// invisible to the surviving requests. The fault taps themselves live in
// common/fault_injection.h (PIT_FAULT=site:rate:seed) and fire only inside
// the engine's stream workers.
//
// Liveness (PR 10): fault containment alone still hangs when work *stops*
// instead of failing, so the engine carries the liveness half of isolation.
// Every stream owns a CancelToken installed on its pooled contexts; both plan
// schedulers poll it at step/wavefront boundaries (kernels stay
// uninterruptible), giving bounded time-to-release: deadlines are enforced
// *in flight*, not just at claim time — a packed batch whose every member
// lapsed mid-replay is released kDeadlineExceeded without completing the
// forward, while a batch with surviving members completes and marks only the
// lapsed members at egress (without output), so surviving outputs stay
// bitwise identical to fault-free 1:1 replay. An engine-owned watchdog thread
// reads per-stream heartbeat counters (bumped at replay checkpoints) for
// bounded time-to-*detection*: a mid-request stream silent past
// PIT_WATCHDOG_US is logged and counted (stalls_detected), and PIT_WATCHDOG=
// abort escalates to fail-fast. The deterministic `stall` fault site
// (PIT_FAULT=stall:rate:seed, a seeded worker sleep) makes both provable in
// chaos. Drain()/the destructor stop claiming, cancel or finish in-flight
// work per policy, release queued requests kCancelled, and reject later
// Serves with a definite status.
//
// The stream count resolves from ServingEngineOptions::num_streams, else the
// strict-parsed PIT_NUM_STREAMS environment knob, else NumThreads(). The
// batching admission knobs resolve the same way from
// ServingEngineOptions::batch_window / max_batch_tokens, else the
// strict-parsed PIT_BATCH_WINDOW / PIT_BATCH_TOKENS knobs, else defaults
// (window 1 — batching off — and 512 token rows). The containment knobs
// resolve from ServingEngineOptions::deadline_us / queue_capacity, else the
// strict-parsed PIT_SERVE_DEADLINE_US / PIT_SERVE_QUEUE knobs, else 0 (no
// default deadline, unbounded queue). The liveness knobs resolve from
// ServingEngineOptions::watchdog_us / watchdog_mode, else the strict-parsed
// PIT_WATCHDOG_US / PIT_WATCHDOG knobs, else off / report.
#ifndef PIT_RUNTIME_SERVING_ENGINE_H_
#define PIT_RUNTIME_SERVING_ENGINE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "pit/common/cancellation.h"
#include "pit/runtime/models.h"
#include "pit/tensor/tensor.h"

namespace pit {

// Terminal state of one served request. Every submitted request ends in
// exactly one of these; the engine never aborts on malformed request *data*
// (aborting remains reserved for API misuse).
enum class ServeStatus {
  kOk = 0,                // output holds the [tokens, hidden] result
  kInvalidArgument = 1,   // rejected at admission: shape/mask/finiteness
  kDeadlineExceeded = 2,  // latency budget lapsed (queued, mid-replay, or at egress)
  kRejectedOverload = 3,  // shed by the bounded admission queue
  kInternal = 4,          // degradation ladder exhausted (persistent faults)
  kCancelled = 5,         // engine drained: in-flight work cut, queued work
                          // released unserved, or Serve called after Drain
};

// Human-readable status name ("ok", "invalid_argument", ...).
const char* ServeStatusName(ServeStatus status);

// What the watchdog does when a stream stays silent past the threshold.
// kDefault resolves the strict-parsed PIT_WATCHDOG knob (report | abort),
// falling back to report. Report increments stalls_detected and logs the
// diagnostic; abort additionally fail-fasts the process with the dump — for
// deployments where a wedged stream is worse dead than slow.
enum class WatchdogMode {
  kDefault = 0,
  kReport = 1,
  kAbort = 2,
};

// Strict parser behind the PIT_WATCHDOG resolution: exactly "report" or
// "abort", anything else is a loud PIT_CHECK abort (a typo'd mode must never
// silently supervise with the wrong escalation).
WatchdogMode ParseWatchdogModeEnv(const char* value);

// What Drain() does with spans already claimed by a stream worker. Unclaimed
// queued requests are always released unserved with kCancelled — draining
// stops claiming first in either policy.
enum class DrainPolicy {
  kFinishInFlight = 0,  // let claimed spans complete normally (kOk etc.)
  kCancelInFlight = 1,  // fire the streams' cancel tokens: claimed spans stop
                        // at the next step boundary and end kCancelled
};

// One inference request: an activation batch and an optional attention mask
// (transformer stacks only; FFN stacks reject masked requests at admission).
// The mask must outlive the Serve call.
struct ServeRequest {
  Tensor x;                           // [tokens, hidden]
  const Tensor* attn_mask = nullptr;  // [tokens, tokens] or nullptr
  // Latency budget in microseconds, measured from submission (Serve entry):
  // a request still waiting for a stream when its budget lapses is shed with
  // kDeadlineExceeded before packing, so an overloaded engine stops spending
  // compute on requests nobody is waiting for anymore. 0 inherits the
  // engine's default deadline (ServingEngineOptions::deadline_us /
  // PIT_SERVE_DEADLINE_US; 0 there too means no deadline). Negative budgets
  // are rejected at admission with kInvalidArgument.
  int64_t deadline_us = 0;
};

// Terminal outcome of one request: its status and, iff status == kOk, the
// [tokens, hidden] output (empty otherwise).
struct ServeOutcome {
  ServeStatus status = ServeStatus::kInternal;
  Tensor output;
};

struct ServingEngineOptions {
  // > 0: explicit stream count. 0: resolve PIT_NUM_STREAMS (strict-parsed,
  // like PIT_NUM_THREADS), falling back to NumThreads().
  int num_streams = 0;
  // Route the stacks' sparse matmuls through PIT. Each stream owns a private
  // PitCompiler (the compiler's JIT cache is not thread-safe) with periodic
  // resampling left disabled, so kernel selection is a pure function of the
  // input and results stay independent of request-to-stream assignment.
  bool use_pit = false;
  // Continuous ragged-batching admission policy. batch_window is the maximum
  // number of consecutive requests a stream coalesces into packed forwards
  // per claim (the latency bound: a request waits for at most window - 1
  // batchmates); max_batch_tokens closes a batch early when admitting the
  // next request would push the packed row count past it (the compute bound;
  // a single longer request forms its own batch). > 0: explicit. 0: resolve
  // the strict-parsed PIT_BATCH_WINDOW / PIT_BATCH_TOKENS knobs, falling back
  // to 1 (batching off — every request replays at its exact token count, the
  // pre-PR 6 behavior) and 512.
  int batch_window = 0;
  int max_batch_tokens = 0;
  // Default per-request latency budget in microseconds (requests may carry a
  // tighter or looser one in ServeRequest::deadline_us). > 0: explicit.
  // 0: resolve the strict-parsed PIT_SERVE_DEADLINE_US knob, falling back to
  // no deadline. Negative values are API misuse (PIT_CHECK).
  int64_t deadline_us = 0;
  // Bounded admission queue: at most this many requests per Serve call are
  // admitted; the rest are shed with kRejectedOverload (admission order, so
  // shedding is deterministic). > 0: explicit. 0: resolve the strict-parsed
  // PIT_SERVE_QUEUE knob, falling back to unbounded. Negative values are API
  // misuse (PIT_CHECK).
  int queue_capacity = 0;
  // Per-stream stall-detection threshold in microseconds: an engine-owned
  // watchdog thread reads the streams' heartbeat counters (bumped at replay
  // step/wavefront checkpoints) and flags any stream that is mid-request but
  // silent for longer than this. > 0: explicit. 0: resolve the strict-parsed
  // PIT_WATCHDOG_US knob, falling back to no watchdog. Negative values are
  // API misuse (PIT_CHECK).
  int64_t watchdog_us = 0;
  // Escalation on detection; kDefault resolves PIT_WATCHDOG (report|abort),
  // falling back to report.
  WatchdogMode watchdog_mode = WatchdogMode::kDefault;
};

// Per-bucket plan-pool and service accounting. A "bucket" is the padded
// token count a plan is keyed by: the power-of-two sum-token capacity of a
// packed batch under ragged batching, or a request's exact token count when
// serving 1:1 — so the bucket list is exactly the engine's plan-pool key
// cardinality, and the 1:1 vs batched contrast (distinct lengths vs
// O(log max) buckets) is directly observable.
struct ServingBucketStats {
  int64_t bucket = 0;           // padded token count (plan-pool key)
  int64_t batches = 0;          // lifetime packed forwards at this bucket
  int64_t requests = 0;         // lifetime requests served through them
  int64_t packed_tokens = 0;    // lifetime real token rows packed
  int64_t computed_tokens = 0;  // lifetime rows computed (batches x bucket)
  // Pooled-stream lookups: hits reused a pooled plan+context set, misses
  // built (and possibly compiled) one.
  int64_t plan_hits = 0;
  int64_t plan_misses = 0;
  // ExecutionContexts currently pooled for this bucket across all streams,
  // and the lifetime peak.
  int64_t pool_contexts = 0;
  int64_t pool_contexts_highwater = 0;
  // Nearest-rank latency percentiles of the last Serve call's kOk requests
  // that landed in this bucket (0 when none did).
  double p50_latency_us = 0.0;
  double p99_latency_us = 0.0;
};

// Aggregate statistics of the engine's lifetime (latencies of the most
// recent Serve call; pool high-water marks across all calls).
struct ServingEngineStats {
  int num_streams = 0;
  int batch_window = 1;
  int max_batch_tokens = 0;
  int64_t requests = 0;       // total requests submitted over the engine lifetime
  int64_t batches = 0;        // total forwards dispatched (== requests unbatched)
  double wall_us = 0.0;       // wall-clock of the last Serve call
  double requests_per_sec = 0.0;  // kOk completions per second, last call
  // Latency statistics over the last Serve call's kOk requests; all 0 when
  // none completed (an empty or fully-shed call must not divide by zero or
  // take a percentile of nothing).
  double mean_latency_us = 0.0;  // arrival (= Serve start) -> completion
  double p50_latency_us = 0.0;   // nearest-rank percentiles (PercentileNearestRank)
  double p99_latency_us = 0.0;
  // Lifetime fraction of computed token rows that were real request rows
  // (1.0 unbatched or before any forward; batching trades bucket-padding
  // waste for plan reuse and dense-batch efficiency).
  double packed_utilization = 1.0;
  // Fault-containment accounting (lifetime). The injected-fault ledger
  // reconciles exactly: faults_injected == retries + degraded_forwards +
  // internal_failures — every injected fault is compensated by exactly one
  // retry, one degraded (but successful) forward, or one terminal internal
  // failure. internal_failures counts terminal *forwards*; a packed forward
  // that dies maps to one internal failure but fails every request in it.
  int64_t rejected_invalid = 0;   // admission rejections (kInvalidArgument)
  int64_t rejected_overload = 0;  // queue shed (kRejectedOverload)
  int64_t timed_out = 0;          // all kDeadlineExceeded requests (sweep + in-flight)
  // The in-flight subset of timed_out: requests whose budget lapsed after
  // their batch was claimed — released mid-replay (the whole batch lapsed) or
  // marked at egress without output (some batchmates survived).
  int64_t timed_out_inflight = 0;
  // Requests ended kCancelled (drain cut them, released them unclaimed, or
  // rejected a post-Drain Serve).
  int64_t cancelled = 0;
  // Packed forwards released early by a fired cancel token (every member's
  // deadline lapsed mid-replay, or drain) instead of completing.
  int64_t cancelled_forwards = 0;
  // Liveness chaos + supervision: stall-site probes that fired in this
  // engine's workers (seeded sleeps), watchdog detections, and the
  // min/max silence the watchdog observed at detection time (microseconds;
  // the detection-latency bound the chaos gate asserts against).
  int64_t stalls_injected = 0;
  int64_t stalls_detected = 0;
  int64_t stall_min_silence_us = 0;
  int64_t stall_max_silence_us = 0;
  int64_t faults_injected = 0;    // fault-injection probes that fired in this engine
  int64_t retries = 0;            // same-composition retry rungs taken
  int64_t degraded_forwards = 0;  // transient-context / 1:1-fallback rungs taken
  int64_t internal_failures = 0;  // forwards whose ladder exhausted (kInternal)
  // Context/arena pool accounting: streams cache one context set per served
  // bucket and reuse it across requests; high-water marks track the peak
  // pinned footprint over the engine's lifetime.
  int64_t pool_contexts = 0;             // currently pooled ExecutionContexts
  int64_t pool_contexts_highwater = 0;
  int64_t pool_arena_bytes = 0;          // bytes pinned by pooled arenas
  int64_t pool_arena_bytes_highwater = 0;
  std::vector<int64_t> per_stream_requests;  // lifetime kOk completions per stream
  std::vector<ServingBucketStats> buckets;   // ascending by bucket

  // Multi-line human-readable summary with symbolic status names, for chaos
  // diagnostics and test-failure messages (never parsed programmatically).
  std::string ToString() const;
};

// Drives a pinned PlannedTransformerStack (or PlannedFfnStack) over request
// streams. The engine is itself single-caller (one Serve at a time); all
// parallelism is internal. Streams and their context pools persist across
// Serve calls, so steady-state serving recompiles and reallocates nothing
// for already-seen shapes.
class ServingEngine {
 public:
  explicit ServingEngine(const PlannedTransformerStack& stack,
                         const ServingEngineOptions& options = {});
  explicit ServingEngine(const PlannedFfnStack& stack, const ServingEngineOptions& options = {});
  ~ServingEngine();

  ServingEngine(const ServingEngine&) = delete;
  ServingEngine& operator=(const ServingEngine&) = delete;

  // Serves every request to a definite terminal status across the engine's
  // streams and returns the outcomes in request order; never aborts on
  // malformed request data. kOk outputs are bitwise identical to
  // single-stream replay (and, for dense serving, to the 1:1 unbatched
  // engine and the stack's eager oracle) for any (streams x threads x
  // scheduler x batching) combination, and independent of which batchmates
  // were rejected, shed or timed out around them (PR 6 contract). PIT
  // serving is deterministic and stream-assignment independent, but its
  // kernel selection sees the packed tile's sparsity, so batched PIT results
  // match batched single-stream PIT replay rather than the 1:1 PIT engine.
  std::vector<ServeOutcome> ServeWithStatus(const std::vector<ServeRequest>& requests);

  // Legacy strict wrapper: serves via ServeWithStatus and requires every
  // request to end kOk — any contained failure is escalated to the fail-fast
  // domain (PIT_CHECK abort naming the request and its status). For callers
  // whose traffic is correct by construction (benches, examples, tests).
  std::vector<Tensor> Serve(const std::vector<ServeRequest>& requests);

  // Graceful shutdown: stops span claiming, then per policy cancels claimed
  // spans at their next step boundary (kCancelInFlight, their requests end
  // kCancelled) or lets them complete (kFinishInFlight), and blocks until no
  // Serve call is inside the engine. Unclaimed queued requests are released
  // unserved with kCancelled either way. Idempotent — a second Drain (any
  // policy) returns immediately — and permanent: every later Serve call is
  // rejected with all-kCancelled outcomes (never an abort via
  // ServeWithStatus). The destructor drains with kCancelInFlight.
  void Drain(DrainPolicy policy = DrainPolicy::kFinishInFlight);
  bool drained() const { return draining_.load(std::memory_order_acquire); }

  int num_streams() const { return num_streams_; }
  int batch_window() const { return batch_window_; }
  int max_batch_tokens() const { return max_batch_tokens_; }
  int64_t deadline_us() const { return deadline_us_; }
  int queue_capacity() const { return queue_capacity_; }
  int64_t watchdog_us() const { return watchdog_us_; }
  WatchdogMode watchdog_mode() const { return watchdog_mode_; }
  const ServingEngineStats& stats() const { return stats_; }

 private:
  struct StreamState;

  // Shared constructor body: option validation (misuse is fail-fast),
  // stream-state allocation, per-stream compilers, stats init (the two
  // public constructors differ only in which stack pointer they set).
  void Init(const ServingEngineOptions& options);
  // Admission validation — the data-dependent half of the error domain:
  // activation shape, deadline sign, mask shape (and absence for FFN
  // stacks), finiteness of activations and mask. Pure per-request.
  ServeStatus AdmissionStatus(const ServeRequest& request) const;
  // Serves one request 1:1 with the kernel-fault retry rung; returns its
  // terminal status and records its bucket. `deadline_abs_us` is the
  // request's absolute steady-clock lapse time (CancelToken::kNoDeadline for
  // none): the stream's token is armed with it so a mid-replay lapse stops
  // the forward at the next step boundary (kDeadlineExceeded).
  ServeStatus ServeOne(StreamState& stream, const ServeRequest& request, int64_t deadline_abs_us,
                       Tensor* out, int64_t* bucket_out);
  // Serves the span's requests (original indices) through one packed
  // bucket-padded forward, running the batch-level degradation ladder:
  // dense falls back to 1:1 unbatched serving (bitwise-free by the PR 6
  // contract), PIT retries at identical composition. `deadline_abs` maps
  // every original request index to its absolute lapse time.
  void ServeSpan(StreamState& stream, const std::vector<ServeRequest>& requests,
                 const std::vector<int64_t>& span, const std::vector<int64_t>& deadline_abs,
                 std::vector<ServeOutcome>& outcomes, std::vector<int64_t>& bucket_of);
  // The 1:1 fallback rung: serves every span request individually.
  void ServeSpanOneByOne(StreamState& stream, const std::vector<ServeRequest>& requests,
                         const std::vector<int64_t>& span,
                         const std::vector<int64_t>& deadline_abs,
                         std::vector<ServeOutcome>& outcomes, std::vector<int64_t>& bucket_of);
  // One packed forward attempt: gather, mask, replay, scatter. In-flight
  // deadline enforcement happens here: the stream's token is armed with the
  // latest member deadline iff *every* member carries one (the batch is
  // cancelled mid-replay only when every member has lapsed — all end
  // kDeadlineExceeded without the forward completing); otherwise the forward
  // completes and members whose own budget lapsed are marked at egress
  // without scattering, so surviving outputs stay bitwise identical to
  // fault-free 1:1 replay. Returns false when a rung inside failed (injected
  // compile double-fault or kernel dispatch fault) — staging contents are
  // then undefined and nothing was scattered; the caller's ladder decides
  // the next rung. Cancellation and lapse are definitive outcomes (true),
  // never ladder rungs.
  bool TryPackedForward(StreamState& stream, const std::vector<ServeRequest>& requests,
                        const std::vector<int64_t>& span,
                        const std::vector<int64_t>& deadline_abs,
                        std::vector<ServeOutcome>& outcomes, std::vector<int64_t>& bucket_of);
  // Pooled-stream acquisition with the infrastructure fault taps: a
  // context-acquire fault degrades to a transient unpooled stream (same
  // shared plans, same bits, nothing pinned afterwards — built into
  // `transient`, which must outlive the forward); a plan-compile fault
  // retries the build once. Returns nullptr only when the retried build
  // failed again (persistent faults), for the caller's ladder.
  template <typename Pool, typename Key, typename MakeStreamFn>
  typename Pool::mapped_type* AcquireStream(StreamState& stream, Pool& pool, const Key& key,
                                            MakeStreamFn&& make,
                                            std::optional<typename Pool::mapped_type>& transient);
  // Finds (or builds, evicting at the shape bound) the stream's pooled state
  // for `key` — the one implementation of the lookup/evict/account protocol
  // both stack types go through. Tallies the hit/miss and per-bucket context
  // accounting. `make` returns an optional: nullopt (a failed injected
  // build) enters nothing into the pool and returns nullptr.
  template <typename Pool, typename Key, typename MakeStreamFn>
  typename Pool::mapped_type* PooledStream(StreamState& stream, Pool& pool, const Key& key,
                                           MakeStreamFn&& make);
  // Adjusts the live pool totals by the given deltas and folds the result
  // into the high-water marks. Called from concurrent stream workers at the
  // moment a pool grows (or is evicted), so the marks capture mid-Serve
  // peaks, not just the Serve-end snapshot.
  void AccountPoolDelta(int64_t contexts_delta, int64_t bytes_delta);
  // Per-bucket share of the context-pool accounting (mutex-protected: only
  // touched when a pool entry is built or evicted, never per request).
  void AccountBucketPool(int64_t bucket, int64_t contexts_delta);
  // Folds the streams' per-bucket counters and the last Serve's per-request
  // (bucket, latency) pairs — kOk requests only — into stats_.buckets.
  void MergeBucketStats(const std::vector<int64_t>& bucket_of,
                        const std::vector<double>& latencies);
  // The supervision thread's body: every ~watchdog_us_/4 it compares each
  // mid-request stream's heartbeat counter against the last observation;
  // a stream silent past watchdog_us_ is flagged once per stall episode
  // (diagnostic to stderr, stalls_detected, silence bounds; PIT_CHECK abort
  // under WatchdogMode::kAbort).
  void WatchdogLoop();
  void StopWatchdog();

  const PlannedTransformerStack* transformer_ = nullptr;  // exactly one of the
  const PlannedFfnStack* ffn_ = nullptr;                  // two stacks is set
  int num_streams_ = 1;
  bool use_pit_ = false;
  int batch_window_ = 1;
  int max_batch_tokens_ = 0;
  int64_t deadline_us_ = 0;  // default per-request budget; 0 = none
  int queue_capacity_ = 0;   // admission bound; 0 = unbounded
  int64_t watchdog_us_ = 0;  // stall threshold; 0 = no watchdog thread
  WatchdogMode watchdog_mode_ = WatchdogMode::kReport;
  std::vector<std::unique_ptr<StreamState>> streams_;
  // Supervision thread + its shutdown channel (condvar so StopWatchdog never
  // waits out a full tick).
  std::thread watchdog_;
  std::mutex watchdog_mu_;
  std::condition_variable watchdog_cv_;
  bool watchdog_stop_ = false;  // guarded by watchdog_mu_
  // Drain/lifecycle synchronization: draining_ stops span claiming (workers
  // poll it at claim boundaries) and permanently rejects later Serves;
  // serve_active_/serve_cv_ let Drain wait for in-flight Serve calls to exit
  // (notified under serve_mu_, so the condvar is never touched after the
  // waiter proceeds).
  std::atomic<bool> draining_{false};
  std::mutex serve_mu_;
  std::condition_variable serve_cv_;
  int serve_active_ = 0;  // guarded by serve_mu_
  // Live pool totals + lifetime peaks, updated by workers as pools change.
  std::atomic<int64_t> pool_contexts_{0};
  std::atomic<int64_t> pool_arena_bytes_{0};
  std::atomic<int64_t> pool_contexts_highwater_{0};
  std::atomic<int64_t> pool_arena_bytes_highwater_{0};
  // Fault-containment ledger (lifetime, updated by concurrent workers).
  std::atomic<int64_t> ctr_faults_{0};
  std::atomic<int64_t> ctr_retries_{0};
  std::atomic<int64_t> ctr_degraded_{0};
  std::atomic<int64_t> ctr_internal_{0};
  // Liveness accounting (lifetime): in-flight deadline lapses, cancelled
  // forwards, injected stalls, and watchdog detections with the min/max
  // silence observed at detection. (Cancelled *requests* are tallied from
  // the outcome statuses at Serve aggregation, not a worker counter.)
  std::atomic<int64_t> ctr_timed_out_inflight_{0};
  std::atomic<int64_t> ctr_cancelled_forwards_{0};
  std::atomic<int64_t> ctr_stalls_injected_{0};
  std::atomic<int64_t> ctr_stalls_detected_{0};
  std::atomic<int64_t> ctr_stall_min_silence_us_{0};
  std::atomic<int64_t> ctr_stall_max_silence_us_{0};
  std::mutex bucket_pool_mu_;
  std::map<int64_t, std::pair<int64_t, int64_t>> bucket_pool_;  // live, highwater
  ServingEngineStats stats_;
};

}  // namespace pit

#endif  // PIT_RUNTIME_SERVING_ENGINE_H_
