// Execution-engine taxonomy for the end-to-end experiments.
//
// Each enumerator names one system the paper compares (§5.1/§5.2) and maps to
// an execution *strategy* in runtime/models.cc: how tokens are padded, which
// kernels run, what conversion/index costs are paid, and what memory is held.
#ifndef PIT_RUNTIME_ENGINE_H_
#define PIT_RUNTIME_ENGINE_H_

namespace pit {

enum class Engine {
  kPyTorch,          // dense, padded, one kernel per op
  kPyTorchS,         // best sparse backend (Triton 32x32) + per-batch convert
  kDeepSpeed,        // fused dense inference/training (padded)
  kTutel,            // MoE capacity-padded BatchMatmul
  kMegaBlocks,       // MoE grouped block-sparse (fp16 only)
  kTurboTransformer, // length-sorted dynamic batching (BERT only)
  kLongformerS,      // Longformer's hand-written sparse attention
  kTvm,              // Ansor-tuned dense kernels (Fig. 19)
  kPit,              // this paper
  kPitNoSparseMoe,   // ablation: PIT without the sparse-MoE optimization
  kPitNoActivation,  // ablation: PIT without ReLU-activation sparsity (OPT)
};

const char* EngineName(Engine e);

}  // namespace pit

#endif  // PIT_RUNTIME_ENGINE_H_
