// End-to-end model cost functions for the paper's evaluation figures.
//
// Each function prices one model's forward (or forward+backward) pass under a
// chosen engine strategy on a concrete dynamic-sparsity workload, returning
// simulated latency and a memory footprint. These are the generators behind
// Figs. 8–15 and 19; the mapping from figure to function is in DESIGN.md §4.
#ifndef PIT_RUNTIME_MODELS_H_
#define PIT_RUNTIME_MODELS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "pit/core/compiler.h"
#include "pit/gpusim/cost_model.h"
#include "pit/graph/execution_plan.h"
#include "pit/nn/modules.h"
#include "pit/runtime/engine.h"
#include "pit/tensor/tensor.h"

namespace pit {

struct TransformerDims {
  std::string name;
  int64_t layers = 12;
  int64_t hidden = 768;
  int64_t heads = 12;
  int64_t ffn_hidden = 3072;
  int64_t vocab = 32000;
  // Decoder-only models: PyTorch-S cannot exploit sequence-length sparsity
  // there (no 32-block row structure in causal attention), so it keeps the
  // padded batch (§5.1 OPT: only PIT removes the padding).
  bool decoder = false;
};

TransformerDims BertBase();
TransformerDims BertLarge();
TransformerDims LongformerBase();
TransformerDims LongformerLarge();
TransformerDims MuseformerDims();
// OPT family: "125M", "350M", "1.3B", "13B", "30B".
TransformerDims OptDims(const std::string& size);
// Switch Transformer (encoder-decoder backbone priced as 2x encoder stack).
TransformerDims SwitchDims();
TransformerDims SwinMoeDims();

struct ModelRunCost {
  CostBreakdown cost;
  int64_t memory_bytes = 0;
  bool oom = false;  // exceeded device memory (Tutel/DeepSpeed at 256 experts)
  double LatencyMs() const { return cost.Total() / 1000.0; }
  double MemoryGb() const { return static_cast<double>(memory_bytes) / (1024.0 * 1024.0 * 1024.0); }
};

// ---- Dense-backbone transformer with varying sequence lengths (BERT, Fig.11;
//      also the backbone part of every other model).
ModelRunCost TransformerRun(const CostModel& model, Engine engine, const TransformerDims& dims,
                            const std::vector<int64_t>& lens, bool training = false);

// ---- MoE models -----------------------------------------------------------
struct MoeRunConfig {
  int num_experts = 64;
  // Tokens per expert for each MoE layer (outer: layer; inner: expert).
  std::vector<std::vector<int64_t>> layer_loads;
  int64_t device_memory_bytes = 80ll << 30;  // A100-80GB
};

// Switch Transformer (Fig. 8): backbone with every-other-layer MoE FFN.
ModelRunCost SwitchTransformerRun(const CostModel& model, Engine engine,
                                  const TransformerDims& dims, const std::vector<int64_t>& lens,
                                  const MoeRunConfig& moe);

// Swin-MoE (Fig. 9): vision backbone, fixed sequence length per image.
ModelRunCost SwinMoeRun(const CostModel& model, Engine engine, const TransformerDims& dims,
                        int64_t batch, int64_t tokens_per_image, const MoeRunConfig& moe);

// ---- OPT (Fig. 10 inference, Fig. 14 training) -----------------------------
struct OptRunConfig {
  double activation_sparsity = 0.99;  // ReLU output sparsity in the FFN
  bool training = false;
  int64_t device_memory_bytes = 8ll * (32ll << 30);  // 8x V100-32GB
};
ModelRunCost OptRun(const CostModel& model, Engine engine, const TransformerDims& dims,
                    const std::vector<int64_t>& lens, const OptRunConfig& config);

// ---- Sparse attention models (Longformer Fig. 12, Museformer Fig. 13) ------
struct SparseAttentionRunConfig {
  int64_t seq_len = 2048;
  int64_t batch = 1;
  double mask_density = 0.1;      // nonzero fraction of the attention mask
  double block32_density = 0.2;   // fraction covered at 32x32 blocks (PyTorch-S)
  int64_t device_memory_bytes = 32ll << 30;  // V100-32GB
};
ModelRunCost SparseAttentionRun(const CostModel& model, Engine engine,
                                const TransformerDims& dims,
                                const SparseAttentionRunConfig& config);

// ---- Sparse training by iterative pruning (Fig. 15) ------------------------
struct SparseTrainingRunConfig {
  int64_t batch = 32;
  int64_t seq_len = 128;
  int64_t block_rows = 32;  // pruning granularity
  int64_t block_cols = 64;
  double sparsity = 0.9;    // weight sparsity ratio
};
ModelRunCost SparseTrainingRun(const CostModel& model, Engine engine,
                               const TransformerDims& dims,
                               const SparseTrainingRunConfig& config);

// ---- Planned real-tensor execution ----------------------------------------
//
// Unlike the cost functions above (which price simulated latency), this is a
// functional model trunk — an OPT-style stack of residual FFN blocks
// (x + Down(ReLU(Up(x)))) on real tensors — whose per-layer forwards replay
// cached ExecutionPlans: graphs are compiled once per token count, weights
// are referenced in place, intermediates live in reused arenas, and the PIT
// variant dispatches each layer's sparse down-projection through the
// compiler's per-site kernel handles. This is the serving-side execution
// seam later batching/multi-stream work builds on.
class PlannedFfnStack {
 public:
  PlannedFfnStack(int64_t layers, int64_t hidden, int64_t ffn_hidden, Rng& rng);
  ~PlannedFfnStack();
  // Plans reference the stack's weights in place: the object is pinned.
  PlannedFfnStack(const PlannedFfnStack&) = delete;
  PlannedFfnStack& operator=(const PlannedFfnStack&) = delete;

  // Planned dense forward; x: [tokens, hidden].
  Tensor Forward(const Tensor& x) const;
  // Planned PIT forward: each layer's down-projection consumes its ReLU
  // activation through `compiler`'s sparse path.
  Tensor ForwardPit(const Tensor& x, PitCompiler& compiler) const;
  // Eager reference: direct ops, one fresh tensor per intermediate — the
  // differential oracle and the bench baseline for the planned path.
  Tensor ForwardEager(const Tensor& x) const;

  // Per-stream replay state over the stack's shared compiled plans for one
  // token count: a co-owning plan handle + private ExecutionContext + feed
  // map per layer, plus private staging buffers. Distinct streams forward
  // concurrently over the same plans with zero shared mutable state.
  struct Stream {
    std::vector<std::shared_ptr<ExecutionPlan>> plans;          // one per layer
    std::vector<std::unique_ptr<ExecutionContext>> contexts;    // one per layer
    std::map<std::string, const Tensor*> feeds;
    std::vector<Tensor> staging;  // per-layer output staging, allocated once
    int64_t tokens = 0;
    // Arena bytes the stream's contexts pin (for serving-pool accounting).
    int64_t ArenaBytes() const;
    int64_t NumContexts() const { return static_cast<int64_t>(contexts.size()); }
    // Installs one shared cancel token on every layer context, so a token
    // fired mid-forward stops the remaining layers' replays at their next
    // step boundary (cancellation.h). Borrowed: the token must outlive every
    // ForwardWith. Re-installing the same pointer is free (pooled streams).
    void SetCancelToken(const CancelToken* token) {
      for (std::unique_ptr<ExecutionContext>& ctx : contexts) {
        ctx->set_cancel_token(token);
      }
    }
  };
  // Builds a stream for `tokens`, compiling/caching the shared plans if
  // needed (the only part that takes the stack lock). `pit` plans the layers
  // with their PIT-pass decisions; replay then needs one compiler per
  // concurrent stream.
  Stream MakeStream(int64_t tokens, bool pit = false) const;
  // Lock-free forward over a stream's private contexts: safe concurrently
  // with other streams' ForwardWith, bitwise identical to Forward.
  void ForwardWith(Stream& stream, const Tensor& x, PitCompiler* compiler, Tensor* out) const;

  // Aggregate memory-planning stats over the dense plans for this token
  // count (compiles them if needed).
  PlanStats StatsFor(int64_t tokens) const;
  int64_t layers() const { return static_cast<int64_t>(weights_.size()); }
  int64_t hidden() const { return hidden_; }

 private:
  struct LayerWeights {
    Tensor w_up, b_up, w_down, b_down;
  };
  struct TokenEntry {
    std::vector<std::unique_ptr<Graph>> graphs;             // one per layer
    std::vector<std::vector<MatmulDecision>> decisions;     // PIT pass per layer
    std::map<std::string, const Tensor*> feeds;
    std::vector<Tensor> outs;  // per-layer output staging, allocated once
  };
  TokenEntry& EntryFor(int64_t tokens) const;
  Tensor RunPlanned(const Tensor& x, PitCompiler* compiler) const;

  int64_t hidden_ = 0;
  std::vector<LayerWeights> weights_;
  mutable std::map<int64_t, TokenEntry> entries_;  // keyed by token count, bounded
  mutable std::mutex mu_;  // forwards share plan arenas; serialize them
};

// ---- Planned full-transformer execution ------------------------------------
//
// The PlannedFfnStack's seam extended to whole encoder blocks: a stack of
// TransformerEncoderLayers (pre-norm attention + FFN) whose per-layer
// forwards replay cached whole-block ExecutionPlans — layernorms, per-head
// batched attention, masked softmax, residuals, and the FFN all dispatch as
// compiled arena steps. Steady-state dense forwards perform ~zero heap
// allocations: layer outputs stage into per-token-count buffers allocated
// once, and each layer's plan reuses its own arena.
class PlannedTransformerStack {
 public:
  PlannedTransformerStack(int64_t layers, int64_t hidden, int64_t heads, int64_t ffn_hidden,
                          Rng& rng);
  ~PlannedTransformerStack();
  // Plans reference the layers' weights in place: the object is pinned.
  PlannedTransformerStack(const PlannedTransformerStack&) = delete;
  PlannedTransformerStack& operator=(const PlannedTransformerStack&) = delete;

  // Planned dense forward; x: [tokens, hidden], mask: [tokens, tokens] or
  // nullptr (shared by every layer).
  Tensor Forward(const Tensor& x, const Tensor* attn_mask = nullptr) const;
  // Planned PIT forward: each layer's FFN down-projection consumes its ReLU
  // activation through `compiler`'s per-site kernel handles.
  Tensor ForwardPit(const Tensor& x, PitCompiler& compiler,
                    const Tensor* attn_mask = nullptr) const;
  // Allocation-free seam for steady-state serving loops (and the bench's
  // thread-sweep measurements): writes the stack's output into the
  // preallocated `out` ([tokens, hidden]); the final layer targets it
  // directly, so no per-call result tensor is materialized. `compiler`
  // nullptr runs dense.
  void ForwardInto(const Tensor& x, const Tensor* attn_mask, PitCompiler* compiler,
                   Tensor* out) const;
  // Eager reference: direct ops, one fresh tensor per intermediate — the
  // differential oracle and the bench baseline for the planned path.
  Tensor ForwardEager(const Tensor& x, const Tensor* attn_mask = nullptr) const;

  // Per-stream replay state over the stack's shared compiled plans for one
  // (tokens, masked?) shape: a layer stream per encoder block plus private
  // staging buffers. ForwardWith over distinct streams is concurrency-safe
  // and bitwise identical to single-stream Forward — the ServingEngine's
  // execution seam.
  struct Stream {
    std::vector<TransformerEncoderLayer::Stream> layers;
    std::vector<Tensor> staging;  // layers-1 buffers; last layer writes `out`
    int64_t tokens = 0;
    bool masked = false;
    // Arena bytes the stream's contexts pin (for serving-pool accounting).
    int64_t ArenaBytes() const;
    int64_t NumContexts() const { return static_cast<int64_t>(layers.size()); }
    // Installs one shared cancel token on every layer's context (see the
    // PlannedFfnStack::Stream overload for the lifetime contract).
    void SetCancelToken(const CancelToken* token) {
      for (TransformerEncoderLayer::Stream& layer : layers) {
        layer.ctx->set_cancel_token(token);
      }
    }
  };
  // Builds a stream for (tokens, masked?), compiling/caching the layers'
  // shared plans if needed (locks each layer's plan cache once). `pit` plans
  // the blocks with their PIT decisions; replay then needs one compiler per
  // concurrent stream.
  Stream MakeStream(int64_t tokens, bool masked, bool pit = false) const;
  // Lock-free forward over a stream's private contexts: safe concurrently
  // with other streams' ForwardWith, bitwise identical to Forward/ForwardInto.
  void ForwardWith(Stream& stream, const Tensor& x, const Tensor* attn_mask,
                   PitCompiler* compiler, Tensor* out) const;

  // Aggregate memory-planning stats over the layers' dense plans for this
  // shape (compiles them if needed).
  PlanStats StatsFor(int64_t tokens, bool masked = false) const;
  int64_t layers() const { return static_cast<int64_t>(layers_.size()); }
  int64_t hidden() const { return hidden_; }

 private:
  Tensor RunPlanned(const Tensor& x, const Tensor* attn_mask, PitCompiler* compiler) const;

  int64_t hidden_ = 0;
  std::vector<std::unique_ptr<TransformerEncoderLayer>> layers_;
  // Per-layer output staging, allocated once per token count (bounded).
  mutable std::map<int64_t, std::vector<Tensor>> staging_;
  mutable std::mutex mu_;  // staging buffers are shared; serialize forwards
};

}  // namespace pit

#endif  // PIT_RUNTIME_MODELS_H_
