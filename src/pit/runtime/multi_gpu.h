// Tensor-parallel multi-GPU scaling model.
//
// The paper runs OPT-13B/30B on 8x V100-32GB (Table 2). This module scales a
// single-device ModelRunCost to an N-way tensor-parallel execution: matmul
// and elementwise work shard by N, weights shard by N, and every layer pays
// two ring all-reduces over the activations (the Megatron-style TP pattern).
// Engine comparisons are preserved because the sharding applies identically
// to every engine.
#ifndef PIT_RUNTIME_MULTI_GPU_H_
#define PIT_RUNTIME_MULTI_GPU_H_

#include "pit/runtime/models.h"

namespace pit {

struct TensorParallelConfig {
  int num_gpus = 8;
  // Per-link interconnect bandwidth (NVLink2: ~150 GB/s per direction).
  double link_bw_bytes_us = 0.15e6;
  // Per-collective launch/latency overhead.
  double collective_overhead_us = 10.0;
};

// Scales `single` (one-device cost of the whole model) to TP execution.
// `tokens` and `hidden` size the per-layer all-reduce payload; `layers` sets
// the collective count (2 per layer: post-attention and post-FFN).
ModelRunCost TensorParallel(const ModelRunCost& single, const TransformerDims& dims,
                            int64_t tokens, const TensorParallelConfig& config,
                            Precision precision, bool training = false);

// Ring all-reduce time for `bytes` over `num_gpus` links.
double RingAllReduceUs(int64_t bytes, const TensorParallelConfig& config);

}  // namespace pit

#endif  // PIT_RUNTIME_MULTI_GPU_H_
