#include "pit/runtime/engine.h"

namespace pit {

const char* EngineName(Engine e) {
  switch (e) {
    case Engine::kPyTorch:
      return "PyTorch";
    case Engine::kPyTorchS:
      return "PyTorch-S";
    case Engine::kDeepSpeed:
      return "DeepSpeed";
    case Engine::kTutel:
      return "Tutel";
    case Engine::kMegaBlocks:
      return "MegaBlocks";
    case Engine::kTurboTransformer:
      return "TurboTransformer";
    case Engine::kLongformerS:
      return "Longformer-S";
    case Engine::kTvm:
      return "TVM";
    case Engine::kPit:
      return "PIT";
    case Engine::kPitNoSparseMoe:
      return "PIT w/o Sparse MoE";
    case Engine::kPitNoActivation:
      return "PIT w/o activation";
  }
  return "?";
}

}  // namespace pit
