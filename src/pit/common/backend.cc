#include "pit/common/backend.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "pit/common/check.h"

namespace pit {
namespace {

constexpr int kUnresolved = -1;

ComputeBackend DefaultBackend() {
  if (const char* env = std::getenv("PIT_BACKEND")) {
    return ParseBackendEnv(env);
  }
  return ComputeBackend::kBlocked;
}

std::atomic<int> g_backend{kUnresolved};

}  // namespace

ComputeBackend ParseBackendEnv(const char* value) {
  PIT_CHECK(value != nullptr && *value != '\0')
      << "PIT_BACKEND is set but empty; expected \"blocked\" or \"reference\"";
  if (std::strcmp(value, "reference") == 0) {
    return ComputeBackend::kReference;
  }
  PIT_CHECK(std::strcmp(value, "blocked") == 0)
      << "unrecognized PIT_BACKEND=\"" << value << "\"; expected \"blocked\" or \"reference\"";
  return ComputeBackend::kBlocked;
}

ComputeBackend ActiveBackend() {
  int v = g_backend.load(std::memory_order_relaxed);
  if (v == kUnresolved) {
    v = static_cast<int>(DefaultBackend());
    g_backend.store(v, std::memory_order_relaxed);
  }
  return static_cast<ComputeBackend>(v);
}

void SetBackend(ComputeBackend backend) {
  g_backend.store(static_cast<int>(backend), std::memory_order_relaxed);
}

}  // namespace pit
