#include "pit/common/backend.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace pit {
namespace {

constexpr int kUnresolved = -1;

ComputeBackend DefaultBackend() {
  if (const char* env = std::getenv("PIT_BACKEND")) {
    if (std::strcmp(env, "reference") == 0) {
      return ComputeBackend::kReference;
    }
    if (std::strcmp(env, "blocked") != 0) {
      std::fprintf(stderr,
                   "[PIT] unrecognized PIT_BACKEND=\"%s\" (expected \"blocked\" or "
                   "\"reference\"); using blocked\n",
                   env);
    }
  }
  return ComputeBackend::kBlocked;
}

std::atomic<int> g_backend{kUnresolved};

}  // namespace

ComputeBackend ActiveBackend() {
  int v = g_backend.load(std::memory_order_relaxed);
  if (v == kUnresolved) {
    v = static_cast<int>(DefaultBackend());
    g_backend.store(v, std::memory_order_relaxed);
  }
  return static_cast<ComputeBackend>(v);
}

void SetBackend(ComputeBackend backend) {
  g_backend.store(static_cast<int>(backend), std::memory_order_relaxed);
}

}  // namespace pit
