#include "pit/common/backend.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "pit/common/check.h"

namespace pit {
namespace {

constexpr int kUnresolved = -1;

ComputeBackend DefaultBackend() {
  if (const char* env = std::getenv("PIT_BACKEND")) {
    return ParseBackendEnv(env);
  }
  return ComputeBackend::kBlocked;
}

std::atomic<int> g_backend{kUnresolved};

IsaTier DefaultIsa() {
  if (const char* env = std::getenv("PIT_ISA")) {
    return ParseIsaEnv(env);
  }
  return DetectedIsa();
}

std::atomic<int> g_isa{kUnresolved};

PlanSched DefaultPlanSched() {
  if (const char* env = std::getenv("PIT_PLAN_SCHED")) {
    return ParsePlanSchedEnv(env);
  }
  return PlanSched::kWavefront;
}

std::atomic<int> g_plan_sched{kUnresolved};

PlanVerifyMode DefaultPlanVerifyMode() {
  if (const char* env = std::getenv("PIT_VERIFY_PLAN")) {
    return ParsePlanVerifyEnv(env);
  }
  return PlanVerifyMode::kAuto;
}

std::atomic<int> g_plan_verify{kUnresolved};

}  // namespace

ComputeBackend ParseBackendEnv(const char* value) {
  PIT_CHECK(value != nullptr && *value != '\0')
      << "PIT_BACKEND is set but empty; expected \"blocked\" or \"reference\"";
  if (std::strcmp(value, "reference") == 0) {
    return ComputeBackend::kReference;
  }
  PIT_CHECK(std::strcmp(value, "blocked") == 0)
      << "unrecognized PIT_BACKEND=\"" << value << "\"; expected \"blocked\" or \"reference\"";
  return ComputeBackend::kBlocked;
}

ComputeBackend ActiveBackend() {
  int v = g_backend.load(std::memory_order_relaxed);
  if (v == kUnresolved) {
    v = static_cast<int>(DefaultBackend());
    g_backend.store(v, std::memory_order_relaxed);
  }
  return static_cast<ComputeBackend>(v);
}

void SetBackend(ComputeBackend backend) {
  g_backend.store(static_cast<int>(backend), std::memory_order_relaxed);
}

IsaTier DetectedIsa() {
#if PIT_SIMD_X86
  // Static: the CPU's feature set cannot change underneath a running process.
  static const IsaTier detected = [] {
    if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
      if (__builtin_cpu_supports("avx512f")) {
        return IsaTier::kAvx512;
      }
      return IsaTier::kAvx2;
    }
    return IsaTier::kScalar;
  }();
  return detected;
#else
  return IsaTier::kScalar;
#endif
}

IsaTier ParseIsaEnv(const char* value) {
  PIT_CHECK(value != nullptr && *value != '\0')
      << "PIT_ISA is set but empty; expected \"auto\", \"avx2\", or \"scalar\"";
  if (std::strcmp(value, "scalar") == 0) {
    return IsaTier::kScalar;
  }
  if (std::strcmp(value, "avx2") == 0) {
    PIT_CHECK(DetectedIsa() != IsaTier::kScalar)
        << "PIT_ISA=avx2 forced but this build/CPU lacks AVX2+FMA; a silent "
           "scalar downgrade would invalidate the tier's bench numbers";
    return IsaTier::kAvx2;
  }
  PIT_CHECK(std::strcmp(value, "auto") == 0)
      << "unrecognized PIT_ISA=\"" << value << "\"; expected \"auto\", \"avx2\", or \"scalar\"";
  return DetectedIsa();
}

IsaTier ActiveIsa() {
  int v = g_isa.load(std::memory_order_relaxed);
  if (v == kUnresolved) {
    v = static_cast<int>(DefaultIsa());
    g_isa.store(v, std::memory_order_relaxed);
  }
  return static_cast<IsaTier>(v);
}

void SetIsa(IsaTier tier) { g_isa.store(static_cast<int>(tier), std::memory_order_relaxed); }

const char* IsaName(IsaTier tier) {
  switch (tier) {
    case IsaTier::kScalar:
      return "scalar";
    case IsaTier::kAvx2:
      return "avx2";
    case IsaTier::kAvx512:
      return "avx512";
  }
  return "unknown";
}

bool UseSimd() { return UseBlockedBackend() && ActiveIsa() != IsaTier::kScalar; }

PlanSched ParsePlanSchedEnv(const char* value) {
  PIT_CHECK(value != nullptr && *value != '\0')
      << "PIT_PLAN_SCHED is set but empty; expected \"seq\" or \"wavefront\"";
  if (std::strcmp(value, "seq") == 0) {
    return PlanSched::kSequential;
  }
  PIT_CHECK(std::strcmp(value, "wavefront") == 0)
      << "unrecognized PIT_PLAN_SCHED=\"" << value << "\"; expected \"seq\" or \"wavefront\"";
  return PlanSched::kWavefront;
}

PlanSched ActivePlanSched() {
  int v = g_plan_sched.load(std::memory_order_relaxed);
  if (v == kUnresolved) {
    v = static_cast<int>(DefaultPlanSched());
    g_plan_sched.store(v, std::memory_order_relaxed);
  }
  return static_cast<PlanSched>(v);
}

void SetPlanSched(PlanSched sched) {
  g_plan_sched.store(static_cast<int>(sched), std::memory_order_relaxed);
}

PlanVerifyMode ParsePlanVerifyEnv(const char* value) {
  PIT_CHECK(value != nullptr && *value != '\0')
      << "PIT_VERIFY_PLAN is set but empty; expected \"auto\", \"on\", or \"off\"";
  if (std::strcmp(value, "on") == 0) {
    return PlanVerifyMode::kOn;
  }
  if (std::strcmp(value, "off") == 0) {
    return PlanVerifyMode::kOff;
  }
  PIT_CHECK(std::strcmp(value, "auto") == 0)
      << "unrecognized PIT_VERIFY_PLAN=\"" << value
      << "\"; expected \"auto\", \"on\", or \"off\"";
  return PlanVerifyMode::kAuto;
}

PlanVerifyMode ActivePlanVerifyMode() {
  int v = g_plan_verify.load(std::memory_order_relaxed);
  if (v == kUnresolved) {
    v = static_cast<int>(DefaultPlanVerifyMode());
    g_plan_verify.store(v, std::memory_order_relaxed);
  }
  return static_cast<PlanVerifyMode>(v);
}

void SetPlanVerifyMode(PlanVerifyMode mode) {
  g_plan_verify.store(static_cast<int>(mode), std::memory_order_relaxed);
}

bool PlanVerifyEngaged() {
  switch (ActivePlanVerifyMode()) {
    case PlanVerifyMode::kOn:
      return true;
    case PlanVerifyMode::kOff:
      return false;
    case PlanVerifyMode::kAuto:
#ifdef NDEBUG
      return false;
#else
      return true;
#endif
  }
  return false;
}

namespace {
std::atomic<bool> g_wavefront_gate{true};
}  // namespace

bool WavefrontGateEnabled() { return g_wavefront_gate.load(std::memory_order_relaxed); }

void SetWavefrontGateEnabled(bool enabled) {
  g_wavefront_gate.store(enabled, std::memory_order_relaxed);
}

}  // namespace pit
