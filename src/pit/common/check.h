// Lightweight assertion helpers used across the PIT library.
//
// PIT_CHECK is always on (release and debug): the library is a research
// runtime where silent corruption is far worse than an abort, matching the
// "fail fast, fail loudly" convention of systems code.
#ifndef PIT_COMMON_CHECK_H_
#define PIT_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace pit {

[[noreturn]] inline void FatalError(const char* file, int line, const std::string& msg) {
  std::fprintf(stderr, "[PIT FATAL] %s:%d: %s\n", file, line, msg.c_str());
  std::abort();
}

namespace internal {

// Builds a failure message lazily via an ostringstream so call sites can
// stream extra context: PIT_CHECK(a == b) << "a=" << a;
class CheckMessage {
 public:
  CheckMessage(const char* file, int line, const char* expr) : file_(file), line_(line) {
    stream_ << "check failed: " << expr;
  }
  [[noreturn]] ~CheckMessage() { FatalError(file_, line_, stream_.str()); }

  template <typename T>
  CheckMessage& operator<<(const T& value) {
    stream_ << " " << value;
    return *this;
  }

 private:
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace pit

#define PIT_CHECK(cond) \
  if (cond) {           \
  } else                \
    ::pit::internal::CheckMessage(__FILE__, __LINE__, #cond)

#define PIT_CHECK_EQ(a, b) PIT_CHECK((a) == (b)) << "(" << (a) << " vs " << (b) << ")"
#define PIT_CHECK_NE(a, b) PIT_CHECK((a) != (b))
#define PIT_CHECK_LT(a, b) PIT_CHECK((a) < (b)) << "(" << (a) << " vs " << (b) << ")"
#define PIT_CHECK_LE(a, b) PIT_CHECK((a) <= (b)) << "(" << (a) << " vs " << (b) << ")"
#define PIT_CHECK_GT(a, b) PIT_CHECK((a) > (b)) << "(" << (a) << " vs " << (b) << ")"
#define PIT_CHECK_GE(a, b) PIT_CHECK((a) >= (b)) << "(" << (a) << " vs " << (b) << ")"

#endif  // PIT_COMMON_CHECK_H_
