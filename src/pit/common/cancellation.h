// Cooperative cancellation + liveness primitives for the replay stack.
//
// CancelToken is an atomic, shareable cancellation flag with an optional
// absolute steady-clock deadline. Kernels stay uninterruptible: the plan
// schedulers poll the token at step/wavefront boundaries and return a
// kCancelled replay status instead of completing, so cancellation latency is
// bounded by one step, never by a whole forward.
//
// The heartbeat half is the detection side of the same contract: replaying
// threads publish step progress into a per-stream atomic counter via a
// thread-local pointer (installed with ScopedThreadHeartbeat), and the serving
// engine's watchdog thread reads those counters to spot streams that stopped
// making progress (see PIT_WATCHDOG_US in runtime/serving_engine.h).
#ifndef PIT_COMMON_CANCELLATION_H_
#define PIT_COMMON_CANCELLATION_H_

#include <atomic>
#include <cstdint>

namespace pit {

// Monotonic wall time in microseconds (steady clock — immune to NTP steps).
// All deadlines in this header are absolute values on this clock.
int64_t SteadyNowUs();

// Shareable cancellation flag. Writers call Cancel() (sticky manual cancel,
// used by Drain) or ArmDeadline() (absolute steady-clock lapse, used for
// in-flight batch deadlines); readers poll cancelled() at replay checkpoints.
// All members are atomics: any number of threads may poll while one arms.
class CancelToken {
 public:
  static constexpr int64_t kNoDeadline = INT64_MAX;

  // Sticky manual cancellation. Survives ClearDeadline()/Reset of the
  // deadline; only Reset() clears it (tests / stream reuse).
  void Cancel() { manual_.store(true, std::memory_order_release); }

  // Arms an absolute steady-clock deadline (microseconds, SteadyNowUs()
  // epoch). A deadline already in the past cancels immediately.
  void ArmDeadline(int64_t deadline_us) {
    deadline_us_.store(deadline_us, std::memory_order_release);
  }
  void ClearDeadline() {
    deadline_us_.store(kNoDeadline, std::memory_order_release);
  }

  // Clears both the manual flag and the deadline.
  void Reset() {
    manual_.store(false, std::memory_order_release);
    deadline_us_.store(kNoDeadline, std::memory_order_release);
  }

  // Poll side. The fast path (no manual cancel, no armed deadline) is two
  // relaxed-ish atomic loads and no clock read.
  bool cancelled() const {
    if (manual_.load(std::memory_order_acquire)) return true;
    const int64_t d = deadline_us_.load(std::memory_order_acquire);
    if (d == kNoDeadline) return false;
    return SteadyNowUs() >= d;
  }
  bool cancelled_manual() const {
    return manual_.load(std::memory_order_acquire);
  }
  bool deadline_armed() const {
    return deadline_us_.load(std::memory_order_acquire) != kNoDeadline;
  }
  bool deadline_lapsed() const {
    const int64_t d = deadline_us_.load(std::memory_order_acquire);
    return d != kNoDeadline && SteadyNowUs() >= d;
  }

 private:
  std::atomic<bool> manual_{false};
  std::atomic<int64_t> deadline_us_{kNoDeadline};
};

namespace liveness_internal {
// Per-thread heartbeat sink. Null (the default) makes HeartbeatTick() a
// single TLS load + branch, so replay outside a supervised engine pays
// nothing measurable.
extern thread_local std::atomic<uint64_t>* tls_heartbeat;
}  // namespace liveness_internal

// Bumps the calling thread's published heartbeat counter, if any. Called at
// replay checkpoints (step / wavefront boundaries) — frequency is bounded by
// plan step count, so a relaxed fetch_add is plenty.
inline void HeartbeatTick() {
  std::atomic<uint64_t>* hb = liveness_internal::tls_heartbeat;
  if (hb != nullptr) hb->fetch_add(1, std::memory_order_relaxed);
}

// Installs a heartbeat counter for the current thread for the scope's
// lifetime, restoring the previous sink on exit (nesting-safe: an inner
// engine's workers shadow, never clobber, an outer installation).
class ScopedThreadHeartbeat {
 public:
  explicit ScopedThreadHeartbeat(std::atomic<uint64_t>* sink)
      : prev_(liveness_internal::tls_heartbeat) {
    liveness_internal::tls_heartbeat = sink;
  }
  ~ScopedThreadHeartbeat() { liveness_internal::tls_heartbeat = prev_; }

  ScopedThreadHeartbeat(const ScopedThreadHeartbeat&) = delete;
  ScopedThreadHeartbeat& operator=(const ScopedThreadHeartbeat&) = delete;

 private:
  std::atomic<uint64_t>* prev_;
};

}  // namespace pit

#endif  // PIT_COMMON_CANCELLATION_H_
