#include "pit/common/simd_kernels.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "pit/common/check.h"

#if PIT_SIMD_X86
#include <immintrin.h>
#endif

namespace pit {
namespace simd {

#if PIT_SIMD_X86

// Everything below carries a function-level target attribute so this TU
// compiles under baseline -march (e.g. the TSan job's -DPIT_NATIVE_ARCH=OFF
// build); the tables at the bottom are only handed out after a runtime
// DetectedIsa() gate, so no vector instruction executes on unsupported CPUs.
#define PIT_TARGET_AVX2 __attribute__((target("avx2,fma")))
#define PIT_TARGET_AVX512 __attribute__((target("avx512f")))

namespace {

// The packed microkernels hint the next block's packed A/B lines at these
// row-block boundaries, matching the scalar packed kernel: hints inside the
// hot loop make the compiler spill the accumulator tile (measured ~8x
// slower in the scalar kernel; the same hazard applies here).
constexpr int64_t kPrefetchBlockRows = 64;

// ---- GEMM 4x16 --------------------------------------------------------------

// Fused epilogue on one 8-lane accumulator: bias add then relu clamp, the
// exact per-lane order of the scalar Epilogue (add, then v > 0 ? v : 0 —
// _mm256_max_ps(v, 0) matches that ternary bit-for-bit including NaN -> 0
// and -0 -> +0).
PIT_TARGET_AVX2 inline __m256 Epilogue8(__m256 acc, const float* bias, bool relu) {
  if (bias != nullptr) {
    acc = _mm256_add_ps(acc, _mm256_loadu_ps(bias));
  }
  if (relu) {
    acc = _mm256_max_ps(acc, _mm256_setzero_ps());
  }
  return acc;
}

PIT_TARGET_AVX2 void GemmTile4x16Avx2(const float* a, int64_t lda, const float* b, int64_t ldb,
                                      float* c, int64_t ldc, int64_t p0, int64_t p1,
                                      const float* bias, bool relu) {
  __m256 acc00 = _mm256_loadu_ps(c);
  __m256 acc01 = _mm256_loadu_ps(c + 8);
  __m256 acc10 = _mm256_loadu_ps(c + ldc);
  __m256 acc11 = _mm256_loadu_ps(c + ldc + 8);
  __m256 acc20 = _mm256_loadu_ps(c + 2 * ldc);
  __m256 acc21 = _mm256_loadu_ps(c + 2 * ldc + 8);
  __m256 acc30 = _mm256_loadu_ps(c + 3 * ldc);
  __m256 acc31 = _mm256_loadu_ps(c + 3 * ldc + 8);
  for (int64_t p = p0; p < p1; ++p) {
    const float* brow = b + p * ldb;
    const __m256 b0 = _mm256_loadu_ps(brow);
    const __m256 b1 = _mm256_loadu_ps(brow + 8);
    const __m256 a0 = _mm256_broadcast_ss(a + p);
    acc00 = _mm256_fmadd_ps(a0, b0, acc00);
    acc01 = _mm256_fmadd_ps(a0, b1, acc01);
    const __m256 a1 = _mm256_broadcast_ss(a + lda + p);
    acc10 = _mm256_fmadd_ps(a1, b0, acc10);
    acc11 = _mm256_fmadd_ps(a1, b1, acc11);
    const __m256 a2 = _mm256_broadcast_ss(a + 2 * lda + p);
    acc20 = _mm256_fmadd_ps(a2, b0, acc20);
    acc21 = _mm256_fmadd_ps(a2, b1, acc21);
    const __m256 a3 = _mm256_broadcast_ss(a + 3 * lda + p);
    acc30 = _mm256_fmadd_ps(a3, b0, acc30);
    acc31 = _mm256_fmadd_ps(a3, b1, acc31);
  }
  _mm256_storeu_ps(c, Epilogue8(acc00, bias, relu));
  _mm256_storeu_ps(c + 8, Epilogue8(acc01, bias ? bias + 8 : nullptr, relu));
  _mm256_storeu_ps(c + ldc, Epilogue8(acc10, bias, relu));
  _mm256_storeu_ps(c + ldc + 8, Epilogue8(acc11, bias ? bias + 8 : nullptr, relu));
  _mm256_storeu_ps(c + 2 * ldc, Epilogue8(acc20, bias, relu));
  _mm256_storeu_ps(c + 2 * ldc + 8, Epilogue8(acc21, bias ? bias + 8 : nullptr, relu));
  _mm256_storeu_ps(c + 3 * ldc, Epilogue8(acc30, bias, relu));
  _mm256_storeu_ps(c + 3 * ldc + 8, Epilogue8(acc31, bias ? bias + 8 : nullptr, relu));
}

PIT_TARGET_AVX2 void GemmTile4x16PackedAAvx2(const float* apack, const float* b, int64_t ldb,
                                             float* c, int64_t ldc, int64_t rows,
                                             const float* bias, bool relu) {
  __m256 acc00 = _mm256_loadu_ps(c);
  __m256 acc01 = _mm256_loadu_ps(c + 8);
  __m256 acc10 = _mm256_loadu_ps(c + ldc);
  __m256 acc11 = _mm256_loadu_ps(c + ldc + 8);
  __m256 acc20 = _mm256_loadu_ps(c + 2 * ldc);
  __m256 acc21 = _mm256_loadu_ps(c + 2 * ldc + 8);
  __m256 acc30 = _mm256_loadu_ps(c + 3 * ldc);
  __m256 acc31 = _mm256_loadu_ps(c + 3 * ldc + 8);
  for (int64_t pb = 0; pb < rows; pb += kPrefetchBlockRows) {
    const int64_t pe = std::min(rows, pb + kPrefetchBlockRows);
    if (pe < rows) {
      _mm_prefetch(reinterpret_cast<const char*>(apack + pe * 4), _MM_HINT_T2);
      _mm_prefetch(reinterpret_cast<const char*>(apack + pe * 4 + 16), _MM_HINT_T2);
      _mm_prefetch(reinterpret_cast<const char*>(b + pe * ldb), _MM_HINT_T2);
    }
    for (int64_t p = pb; p < pe; ++p) {
      const float* ap = apack + p * 4;
      const float* brow = b + p * ldb;
      const __m256 b0 = _mm256_loadu_ps(brow);
      const __m256 b1 = _mm256_loadu_ps(brow + 8);
      const __m256 a0 = _mm256_broadcast_ss(ap);
      acc00 = _mm256_fmadd_ps(a0, b0, acc00);
      acc01 = _mm256_fmadd_ps(a0, b1, acc01);
      const __m256 a1 = _mm256_broadcast_ss(ap + 1);
      acc10 = _mm256_fmadd_ps(a1, b0, acc10);
      acc11 = _mm256_fmadd_ps(a1, b1, acc11);
      const __m256 a2 = _mm256_broadcast_ss(ap + 2);
      acc20 = _mm256_fmadd_ps(a2, b0, acc20);
      acc21 = _mm256_fmadd_ps(a2, b1, acc21);
      const __m256 a3 = _mm256_broadcast_ss(ap + 3);
      acc30 = _mm256_fmadd_ps(a3, b0, acc30);
      acc31 = _mm256_fmadd_ps(a3, b1, acc31);
    }
  }
  _mm256_storeu_ps(c, Epilogue8(acc00, bias, relu));
  _mm256_storeu_ps(c + 8, Epilogue8(acc01, bias ? bias + 8 : nullptr, relu));
  _mm256_storeu_ps(c + ldc, Epilogue8(acc10, bias, relu));
  _mm256_storeu_ps(c + ldc + 8, Epilogue8(acc11, bias ? bias + 8 : nullptr, relu));
  _mm256_storeu_ps(c + 2 * ldc, Epilogue8(acc20, bias, relu));
  _mm256_storeu_ps(c + 2 * ldc + 8, Epilogue8(acc21, bias ? bias + 8 : nullptr, relu));
  _mm256_storeu_ps(c + 3 * ldc, Epilogue8(acc30, bias, relu));
  _mm256_storeu_ps(c + 3 * ldc + 8, Epilogue8(acc31, bias ? bias + 8 : nullptr, relu));
}

// Ragged-edge tile under the SIMD tiers: scalar loops contracted with fmaf
// (lowered to vfmadd under the target attribute) in the same ascending-p
// order as the vector lanes, so the per-element chain — and therefore the
// result — is identical regardless of which kernel covers an element. That
// uniformity is what keeps the tier's results independent of row position,
// column splits, packing, and tiling.
PIT_TARGET_AVX2 void GemmEdgeFma(const float* a, int64_t lda, const float* b, int64_t ldb,
                                 float* c, int64_t ldc, int64_t mr, int64_t nr, int64_t p0,
                                 int64_t p1, const float* bias, bool relu) {
  float acc[4][16];
  for (int64_t r = 0; r < mr; ++r) {
    for (int64_t j = 0; j < nr; ++j) {
      acc[r][j] = c[r * ldc + j];
    }
  }
  for (int64_t p = p0; p < p1; ++p) {
    const float* brow = b + p * ldb;
    for (int64_t r = 0; r < mr; ++r) {
      const float av = a[r * lda + p];
      for (int64_t j = 0; j < nr; ++j) {
        acc[r][j] = __builtin_fmaf(av, brow[j], acc[r][j]);
      }
    }
  }
  for (int64_t r = 0; r < mr; ++r) {
    for (int64_t j = 0; j < nr; ++j) {
      float v = bias ? acc[r][j] + bias[j] : acc[r][j];
      if (relu) {
        v = v > 0.0f ? v : 0.0f;
      }
      c[r * ldc + j] = v;
    }
  }
}

PIT_TARGET_AVX512 inline __m512 Epilogue16(__m512 acc, const float* bias, bool relu) {
  if (bias != nullptr) {
    acc = _mm512_add_ps(acc, _mm512_loadu_ps(bias));
  }
  if (relu) {
    acc = _mm512_max_ps(acc, _mm512_setzero_ps());
  }
  return acc;
}

// AVX-512 full tile: one 16-lane accumulator per row. Each lane runs the
// same per-element fma chain as the AVX2 lanes, so the two SIMD tiers are
// bitwise identical.
PIT_TARGET_AVX512 void GemmTile4x16Avx512(const float* a, int64_t lda, const float* b,
                                          int64_t ldb, float* c, int64_t ldc, int64_t p0,
                                          int64_t p1, const float* bias, bool relu) {
  __m512 acc0 = _mm512_loadu_ps(c);
  __m512 acc1 = _mm512_loadu_ps(c + ldc);
  __m512 acc2 = _mm512_loadu_ps(c + 2 * ldc);
  __m512 acc3 = _mm512_loadu_ps(c + 3 * ldc);
  for (int64_t p = p0; p < p1; ++p) {
    const __m512 bv = _mm512_loadu_ps(b + p * ldb);
    acc0 = _mm512_fmadd_ps(_mm512_set1_ps(a[p]), bv, acc0);
    acc1 = _mm512_fmadd_ps(_mm512_set1_ps(a[lda + p]), bv, acc1);
    acc2 = _mm512_fmadd_ps(_mm512_set1_ps(a[2 * lda + p]), bv, acc2);
    acc3 = _mm512_fmadd_ps(_mm512_set1_ps(a[3 * lda + p]), bv, acc3);
  }
  _mm512_storeu_ps(c, Epilogue16(acc0, bias, relu));
  _mm512_storeu_ps(c + ldc, Epilogue16(acc1, bias, relu));
  _mm512_storeu_ps(c + 2 * ldc, Epilogue16(acc2, bias, relu));
  _mm512_storeu_ps(c + 3 * ldc, Epilogue16(acc3, bias, relu));
}

PIT_TARGET_AVX512 void GemmTile4x16PackedAAvx512(const float* apack, const float* b, int64_t ldb,
                                                 float* c, int64_t ldc, int64_t rows,
                                                 const float* bias, bool relu) {
  __m512 acc0 = _mm512_loadu_ps(c);
  __m512 acc1 = _mm512_loadu_ps(c + ldc);
  __m512 acc2 = _mm512_loadu_ps(c + 2 * ldc);
  __m512 acc3 = _mm512_loadu_ps(c + 3 * ldc);
  for (int64_t pb = 0; pb < rows; pb += kPrefetchBlockRows) {
    const int64_t pe = std::min(rows, pb + kPrefetchBlockRows);
    if (pe < rows) {
      _mm_prefetch(reinterpret_cast<const char*>(apack + pe * 4), _MM_HINT_T2);
      _mm_prefetch(reinterpret_cast<const char*>(apack + pe * 4 + 16), _MM_HINT_T2);
      _mm_prefetch(reinterpret_cast<const char*>(b + pe * ldb), _MM_HINT_T2);
    }
    for (int64_t p = pb; p < pe; ++p) {
      const float* ap = apack + p * 4;
      const __m512 bv = _mm512_loadu_ps(b + p * ldb);
      acc0 = _mm512_fmadd_ps(_mm512_set1_ps(ap[0]), bv, acc0);
      acc1 = _mm512_fmadd_ps(_mm512_set1_ps(ap[1]), bv, acc1);
      acc2 = _mm512_fmadd_ps(_mm512_set1_ps(ap[2]), bv, acc2);
      acc3 = _mm512_fmadd_ps(_mm512_set1_ps(ap[3]), bv, acc3);
    }
  }
  _mm512_storeu_ps(c, Epilogue16(acc0, bias, relu));
  _mm512_storeu_ps(c + ldc, Epilogue16(acc1, bias, relu));
  _mm512_storeu_ps(c + 2 * ldc, Epilogue16(acc2, bias, relu));
  _mm512_storeu_ps(c + 3 * ldc, Epilogue16(acc3, bias, relu));
}

// ---- Vector exp -------------------------------------------------------------

// Cephes-style expf: range-reduce by log2(e), 5th-order polynomial on the
// remainder, scale by 2^n through the exponent bits. ~2 ulp over the clamped
// range. The scalar mirror below runs the exact same fma chain (fmaf lowers
// to vfmadd under the target attribute), so tail elements equal what a
// vector lane would have produced — per-element values are position
// independent.
constexpr float kExpHi = 88.3762626647950f;
constexpr float kExpLo = -87.3365478515625f;
constexpr float kLog2E = 1.44269504088896341f;
constexpr float kLn2Hi = 0.693359375f;
constexpr float kLn2Lo = -2.12194440e-4f;
constexpr float kExpP0 = 1.9875691500e-4f;
constexpr float kExpP1 = 1.3981999507e-3f;
constexpr float kExpP2 = 8.3334519073e-3f;
constexpr float kExpP3 = 4.1665795894e-2f;
constexpr float kExpP4 = 1.6666665459e-1f;
constexpr float kExpP5 = 5.0000001201e-1f;

PIT_TARGET_AVX2 inline __m256 ExpPoly8(__m256 x) {
  x = _mm256_min_ps(x, _mm256_set1_ps(kExpHi));
  x = _mm256_max_ps(x, _mm256_set1_ps(kExpLo));
  __m256 fx = _mm256_fmadd_ps(x, _mm256_set1_ps(kLog2E), _mm256_set1_ps(0.5f));
  fx = _mm256_floor_ps(fx);
  x = _mm256_sub_ps(x, _mm256_mul_ps(fx, _mm256_set1_ps(kLn2Hi)));
  x = _mm256_sub_ps(x, _mm256_mul_ps(fx, _mm256_set1_ps(kLn2Lo)));
  const __m256 z = _mm256_mul_ps(x, x);
  __m256 y = _mm256_set1_ps(kExpP0);
  y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(kExpP1));
  y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(kExpP2));
  y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(kExpP3));
  y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(kExpP4));
  y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(kExpP5));
  y = _mm256_fmadd_ps(y, z, x);
  y = _mm256_add_ps(y, _mm256_set1_ps(1.0f));
  const __m256i n = _mm256_cvttps_epi32(fx);
  const __m256i pow2 = _mm256_slli_epi32(_mm256_add_epi32(n, _mm256_set1_epi32(0x7f)), 23);
  return _mm256_mul_ps(y, _mm256_castsi256_ps(pow2));
}

// Scalar mirror of ExpPoly8: same clamps (min/max lane semantics), same fma
// chain, same exponent-bit 2^n.
PIT_TARGET_AVX2 inline float ExpPoly1(float x) {
  x = x < kExpHi ? x : kExpHi;
  x = x > kExpLo ? x : kExpLo;
  float fx = __builtin_fmaf(x, kLog2E, 0.5f);
  fx = std::floor(fx);
  x -= fx * kLn2Hi;
  x -= fx * kLn2Lo;
  const float z = x * x;
  float y = kExpP0;
  y = __builtin_fmaf(y, x, kExpP1);
  y = __builtin_fmaf(y, x, kExpP2);
  y = __builtin_fmaf(y, x, kExpP3);
  y = __builtin_fmaf(y, x, kExpP4);
  y = __builtin_fmaf(y, x, kExpP5);
  y = __builtin_fmaf(y, z, x);
  y += 1.0f;
  const int32_t n = static_cast<int32_t>(fx);
  const uint32_t bits = static_cast<uint32_t>(n + 127) << 23;
  float pow2;
  std::memcpy(&pow2, &bits, sizeof(pow2));
  return y * pow2;
}

// ---- Row kernels (AVX2, shared by both SIMD tiers) --------------------------

PIT_TARGET_AVX2 inline float HorizontalSum8(__m256 v) {
  const __m128 lo = _mm256_castps256_ps128(v);
  const __m128 hi = _mm256_extractf128_ps(v, 1);
  __m128 s = _mm_add_ps(lo, hi);
  s = _mm_add_ps(s, _mm_movehl_ps(s, s));
  s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 1));
  return _mm_cvtss_f32(s);
}

PIT_TARGET_AVX2 inline float HorizontalMax8(__m256 v) {
  const __m128 lo = _mm256_castps256_ps128(v);
  const __m128 hi = _mm256_extractf128_ps(v, 1);
  __m128 s = _mm_max_ps(lo, hi);
  s = _mm_max_ps(s, _mm_movehl_ps(s, s));
  s = _mm_max_ss(s, _mm_shuffle_ps(s, s, 1));
  return _mm_cvtss_f32(s);
}

PIT_TARGET_AVX2 float RowMaxAvx2(const float* x, int64_t n) {
  constexpr float kNegInf = -__builtin_inff();
  float maxv = kNegInf;
  int64_t i = 0;
  if (n >= 8) {
    __m256 acc = _mm256_set1_ps(kNegInf);
    for (; i + 8 <= n; i += 8) {
      acc = _mm256_max_ps(acc, _mm256_loadu_ps(x + i));
    }
    maxv = HorizontalMax8(acc);
  }
  for (; i < n; ++i) {
    maxv = std::max(maxv, x[i]);
  }
  return maxv;
}

PIT_TARGET_AVX2 float ExpSumAvx2(const float* x, int64_t n, float maxv, float* out) {
  constexpr float kNegInf = -__builtin_inff();
  const __m256 vneg_inf = _mm256_set1_ps(kNegInf);
  const __m256 vmax = _mm256_set1_ps(maxv);
  __m256 vsum = _mm256_setzero_ps();
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 v = _mm256_loadu_ps(x + i);
    // A raw -inf score must contribute exactly 0, the scalar oracle's
    // convention (clamped poly exp would give ~1e-38 instead).
    const __m256 is_ninf = _mm256_cmp_ps(v, vneg_inf, _CMP_EQ_OQ);
    const __m256 e = _mm256_andnot_ps(is_ninf, ExpPoly8(_mm256_sub_ps(v, vmax)));
    _mm256_storeu_ps(out + i, e);
    vsum = _mm256_add_ps(vsum, e);
  }
  float sum = n >= 8 ? HorizontalSum8(vsum) : 0.0f;
  for (; i < n; ++i) {
    const float e = x[i] == kNegInf ? 0.0f : ExpPoly1(x[i] - maxv);
    out[i] = e;
    sum += e;
  }
  return sum;
}

PIT_TARGET_AVX2 void DivInplaceAvx2(float* x, int64_t n, float denom) {
  const __m256 vd = _mm256_set1_ps(denom);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(x + i, _mm256_div_ps(_mm256_loadu_ps(x + i), vd));
  }
  for (; i < n; ++i) {
    x[i] /= denom;
  }
}

PIT_TARGET_AVX2 void AddAvx2(const float* a, const float* b, float* c, int64_t n) {
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(c + i, _mm256_add_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i)));
  }
  for (; i < n; ++i) {
    c[i] = a[i] + b[i];
  }
}

PIT_TARGET_AVX2 void ReluAvx2(const float* a, float* c, int64_t n) {
  const __m256 zero = _mm256_setzero_ps();
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(c + i, _mm256_max_ps(_mm256_loadu_ps(a + i), zero));
  }
  for (; i < n; ++i) {
    c[i] = a[i] > 0.0f ? a[i] : 0.0f;
  }
}

PIT_TARGET_AVX2 void ScaleAvx2(const float* a, float factor, float* c, int64_t n) {
  const __m256 vf = _mm256_set1_ps(factor);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(c + i, _mm256_mul_ps(_mm256_loadu_ps(a + i), vf));
  }
  for (; i < n; ++i) {
    c[i] = a[i] * factor;
  }
}

PIT_TARGET_AVX2 float SumAvx2(const float* x, int64_t n) {
  __m256 vsum = _mm256_setzero_ps();
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    vsum = _mm256_add_ps(vsum, _mm256_loadu_ps(x + i));
  }
  float sum = n >= 8 ? HorizontalSum8(vsum) : 0.0f;
  for (; i < n; ++i) {
    sum += x[i];
  }
  return sum;
}

PIT_TARGET_AVX2 float SqDiffSumAvx2(const float* x, int64_t n, float mean) {
  const __m256 vmean = _mm256_set1_ps(mean);
  __m256 vsum = _mm256_setzero_ps();
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 d = _mm256_sub_ps(_mm256_loadu_ps(x + i), vmean);
    vsum = _mm256_fmadd_ps(d, d, vsum);
  }
  float sum = n >= 8 ? HorizontalSum8(vsum) : 0.0f;
  for (; i < n; ++i) {
    const float d = x[i] - mean;
    sum = __builtin_fmaf(d, d, sum);
  }
  return sum;
}

PIT_TARGET_AVX2 void NormalizeAvx2(const float* x, int64_t n, float mean, float inv,
                                   const float* gamma, const float* beta, float* c) {
  const __m256 vmean = _mm256_set1_ps(mean);
  const __m256 vinv = _mm256_set1_ps(inv);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 t = _mm256_mul_ps(_mm256_sub_ps(_mm256_loadu_ps(x + i), vmean), vinv);
    _mm256_storeu_ps(c + i, _mm256_fmadd_ps(t, _mm256_loadu_ps(gamma + i),
                                            _mm256_loadu_ps(beta + i)));
  }
  for (; i < n; ++i) {
    const float t = (x[i] - mean) * inv;
    c[i] = __builtin_fmaf(t, gamma[i], beta[i]);
  }
}

PIT_TARGET_AVX2 bool SpanNonZeroAvx2(const float* p, int64_t count) {
  // Same predicate as the scalar integer-OR scan: nonzero magnitude bits
  // anywhere in the span, early exit every 64-byte stride.
  const __m256i mag = _mm256_set1_epi32(0x7fffffff);
  int64_t i = 0;
  for (; i + 16 <= count; i += 16) {
    const __m256i w0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + i));
    const __m256i w1 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + i + 8));
    const __m256i v = _mm256_and_si256(_mm256_or_si256(w0, w1), mag);
    if (!_mm256_testz_si256(v, v)) {
      return true;
    }
  }
  if (i + 8 <= count) {
    const __m256i w =
        _mm256_and_si256(_mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + i)), mag);
    if (!_mm256_testz_si256(w, w)) {
      return true;
    }
    i += 8;
  }
  for (; i < count; ++i) {
    if (p[i] != 0.0f) {
      return true;
    }
  }
  return false;
}

PIT_TARGET_AVX2 void CopyAvx2(const float* src, float* dst, int64_t n) {
  int64_t i = 0;
  for (; i + 16 <= n; i += 16) {
    _mm256_storeu_ps(dst + i, _mm256_loadu_ps(src + i));
    _mm256_storeu_ps(dst + i + 8, _mm256_loadu_ps(src + i + 8));
  }
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(dst + i, _mm256_loadu_ps(src + i));
  }
  for (; i < n; ++i) {
    dst[i] = src[i];
  }
}

const GemmKernels kGemmAvx2{GemmTile4x16Avx2, GemmTile4x16PackedAAvx2, GemmEdgeFma};
const GemmKernels kGemmAvx512{GemmTile4x16Avx512, GemmTile4x16PackedAAvx512, GemmEdgeFma};
const RowKernels kRowAvx2{RowMaxAvx2, ExpSumAvx2, DivInplaceAvx2, AddAvx2,      ReluAvx2,
                          ScaleAvx2,  SumAvx2,    SqDiffSumAvx2,  NormalizeAvx2, SpanNonZeroAvx2,
                          CopyAvx2};

}  // namespace

#endif  // PIT_SIMD_X86

const GemmKernels* GemmKernelsFor(IsaTier tier) {
#if PIT_SIMD_X86
  if (tier == IsaTier::kScalar) {
    return nullptr;
  }
  PIT_CHECK(static_cast<int>(tier) <= static_cast<int>(DetectedIsa()))
      << "IsaTier " << IsaName(tier) << " forced above DetectedIsa()="
      << IsaName(DetectedIsa()) << "; executing its kernels would SIGILL";
  return tier == IsaTier::kAvx512 ? &kGemmAvx512 : &kGemmAvx2;
#else
  (void)tier;
  return nullptr;
#endif
}

const RowKernels* RowKernelsFor(IsaTier tier) {
#if PIT_SIMD_X86
  if (tier == IsaTier::kScalar) {
    return nullptr;
  }
  PIT_CHECK(static_cast<int>(tier) <= static_cast<int>(DetectedIsa()))
      << "IsaTier " << IsaName(tier) << " forced above DetectedIsa()="
      << IsaName(DetectedIsa()) << "; executing its kernels would SIGILL";
  return &kRowAvx2;
#else
  (void)tier;
  return nullptr;
#endif
}

}  // namespace simd
}  // namespace pit
