// Register-blocked, cache-tiled f32 GEMM — the compute core of the blocked
// backend.
//
// The kernel walks C in 4x16 register tiles (small enough to live entirely in
// vector registers under -O3 auto-vectorisation), streams B a k-panel at a
// time so the panel stays hot in L2 across row blocks, and parallelises over
// 4-row blocks of C. Chunk boundaries are aligned to the 4-row register tile,
// so every output element sees the exact same floating-point operation order
// regardless of the thread count — outputs are bitwise reproducible.
#ifndef PIT_COMMON_GEMM_MICROKERNEL_H_
#define PIT_COMMON_GEMM_MICROKERNEL_H_

#include <cstdint>

namespace pit {

// C[m,n] += A[m,k] * B[k,n], all row-major with leading dimensions lda/ldb/ldc
// (elements, not bytes). C must be initialised by the caller; the kernel
// accumulates into it. If `bias` is non-null it points at n floats added to
// every row of C in the epilogue of the final k-panel — fused so C is written
// exactly once (no second pass). If `relu` is true the epilogue additionally
// clamps each written element at zero (x > 0 ? x : 0, the exact ReluInto
// formula) after the bias add, so a fused matmul(+bias)+relu is bitwise
// identical to the two separate passes. Runs on the ParallelFor pool; safe to
// call from inside another ParallelFor (it then runs inline or fans out to
// the caller's width budget).
void GemmF32(int64_t m, int64_t n, int64_t k, const float* a, int64_t lda, const float* b,
             int64_t ldb, float* c, int64_t ldc, const float* bias = nullptr,
             bool relu = false);

// B-panel packing switch. When enabled (default) and B is large enough that
// its panels thrash L2 (>= 2 MiB), each worker packs the current k-panel of B
// into a contiguous thread-local scratch panel (16-wide tiles, zero-padded at
// the ragged edge) before streaming it through the register kernels: the
// inner loop then reads dense 64-byte rows instead of ldb-strided ones.
// Packing copies values only — the accumulation order, and therefore the
// result, is bit-identical either way. The switch exists so the bench harness
// can measure the packed-vs-unpacked single-core delta.
bool GemmPackBEnabled();
void SetGemmPackB(bool enabled);

// A-panel (m-panel) packing switch. When enabled (default) and the problem is
// tall with enough column-tile reuse to amortise the pack pass (m >= 4n,
// m >= 1024, n within 192..384, k >= 2048 — the measured single-core win
// band), each worker repacks 64-row groups of the current A k-panel
// into a register-tile-interleaved thread-local scratch (element (r, p) of a
// 4-row block at [p*4 + r]) before the kernels stream it: the four broadcast
// loads per inner-loop iteration then come from one contiguous 16-byte run
// instead of four lda-strided streams. The packed kernels also issue software
// prefetch hints for the upcoming packed A/B rows. Copy-only, so results are
// bit-identical either way; the switch exists for the bench's tall-GEMM
// packed-vs-unpacked single-core delta.
bool GemmPackAEnabled();
void SetGemmPackA(bool enabled);

class ScopedGemmPackB {
 public:
  explicit ScopedGemmPackB(bool enabled) : saved_(GemmPackBEnabled()) { SetGemmPackB(enabled); }
  ~ScopedGemmPackB() { SetGemmPackB(saved_); }
  ScopedGemmPackB(const ScopedGemmPackB&) = delete;
  ScopedGemmPackB& operator=(const ScopedGemmPackB&) = delete;

 private:
  bool saved_;
};

class ScopedGemmPackA {
 public:
  explicit ScopedGemmPackA(bool enabled) : saved_(GemmPackAEnabled()) { SetGemmPackA(enabled); }
  ~ScopedGemmPackA() { SetGemmPackA(saved_); }
  ScopedGemmPackA(const ScopedGemmPackA&) = delete;
  ScopedGemmPackA& operator=(const ScopedGemmPackA&) = delete;

 private:
  bool saved_;
};

}  // namespace pit

#endif  // PIT_COMMON_GEMM_MICROKERNEL_H_
