// Register-blocked, cache-tiled f32 GEMM — the compute core of the blocked
// backend.
//
// The kernel walks C in 4x16 register tiles (small enough to live entirely in
// vector registers under -O3 auto-vectorisation), streams B a k-panel at a
// time so the panel stays hot in L2 across row blocks, and parallelises over
// 4-row blocks of C. Chunk boundaries are aligned to the 4-row register tile,
// so every output element sees the exact same floating-point operation order
// regardless of the thread count — outputs are bitwise reproducible.
#ifndef PIT_COMMON_GEMM_MICROKERNEL_H_
#define PIT_COMMON_GEMM_MICROKERNEL_H_

#include <cstdint>

namespace pit {

// C[m,n] += A[m,k] * B[k,n], all row-major with leading dimensions lda/ldb/ldc
// (elements, not bytes). C must be initialised by the caller; the kernel
// accumulates into it. If `bias` is non-null it points at n floats added to
// every row of C in the epilogue of the final k-panel — fused so C is written
// exactly once (no second pass). Runs on the ParallelFor pool; safe to call
// from inside another ParallelFor (it then runs inline).
void GemmF32(int64_t m, int64_t n, int64_t k, const float* a, int64_t lda, const float* b,
             int64_t ldb, float* c, int64_t ldc, const float* bias = nullptr);

// B-panel packing switch. When enabled (default) and B is large enough that
// its panels thrash L2 (>= 2 MiB), each worker packs the current k-panel of B
// into a contiguous thread-local scratch panel (16-wide tiles, zero-padded at
// the ragged edge) before streaming it through the register kernels: the
// inner loop then reads dense 64-byte rows instead of ldb-strided ones.
// Packing copies values only — the accumulation order, and therefore the
// result, is bit-identical either way. The switch exists so the bench harness
// can measure the packed-vs-unpacked single-core delta.
bool GemmPackBEnabled();
void SetGemmPackB(bool enabled);

class ScopedGemmPackB {
 public:
  explicit ScopedGemmPackB(bool enabled) : saved_(GemmPackBEnabled()) { SetGemmPackB(enabled); }
  ~ScopedGemmPackB() { SetGemmPackB(saved_); }
  ScopedGemmPackB(const ScopedGemmPackB&) = delete;
  ScopedGemmPackB& operator=(const ScopedGemmPackB&) = delete;

 private:
  bool saved_;
};

}  // namespace pit

#endif  // PIT_COMMON_GEMM_MICROKERNEL_H_
