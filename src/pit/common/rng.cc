#include "pit/common/rng.h"

#include <cmath>

namespace pit {

float Rng::NextGaussian() {
  // Box–Muller; guard against log(0).
  double u1 = NextDouble();
  if (u1 < 1e-300) {
    u1 = 1e-300;
  }
  const double u2 = NextDouble();
  return static_cast<float>(std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2));
}

}  // namespace pit
