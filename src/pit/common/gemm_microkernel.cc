#include "pit/common/gemm_microkernel.h"

#include <algorithm>

#include "pit/common/parallel_for.h"

namespace pit {
namespace {

constexpr int64_t kMr = 4;    // register-tile rows
constexpr int64_t kNr = 16;   // register-tile cols (2 cache lines)
constexpr int64_t kKc = 256;  // k-panel depth: panel of B stays hot in L2

// Full 4x16 register tile: C[0:4, 0:16] += A[0:4, p0:p1] * B[p0:p1, 0:16].
// `a` is the tile's first A row, `b`/`c` are offset to the tile's first
// column. The accumulator array is small enough that -O3 keeps it entirely in
// vector registers; the inner loop is a broadcast-axpy that auto-vectorises.
inline void Kernel4x16(const float* a, int64_t lda, const float* b, int64_t ldb, float* c,
                       int64_t ldc, int64_t p0, int64_t p1, const float* bias) {
  float acc[kMr][kNr];
  for (int64_t r = 0; r < kMr; ++r) {
    for (int64_t j = 0; j < kNr; ++j) {
      acc[r][j] = c[r * ldc + j];
    }
  }
  for (int64_t p = p0; p < p1; ++p) {
    const float* brow = b + p * ldb;
    const float a0 = a[p];
    const float a1 = a[lda + p];
    const float a2 = a[2 * lda + p];
    const float a3 = a[3 * lda + p];
    for (int64_t j = 0; j < kNr; ++j) {
      const float bv = brow[j];
      acc[0][j] += a0 * bv;
      acc[1][j] += a1 * bv;
      acc[2][j] += a2 * bv;
      acc[3][j] += a3 * bv;
    }
  }
  for (int64_t r = 0; r < kMr; ++r) {
    for (int64_t j = 0; j < kNr; ++j) {
      c[r * ldc + j] = bias ? acc[r][j] + bias[j] : acc[r][j];
    }
  }
}

// Ragged-edge tile (mr < 4 and/or nr < 16). Accumulates in the same p-ascending
// per-element order as Kernel4x16, so which kernel covers a row never changes
// the numeric result.
inline void KernelEdge(const float* a, int64_t lda, const float* b, int64_t ldb, float* c,
                       int64_t ldc, int64_t mr, int64_t nr, int64_t p0, int64_t p1,
                       const float* bias) {
  float acc[kMr][kNr];
  for (int64_t r = 0; r < mr; ++r) {
    for (int64_t j = 0; j < nr; ++j) {
      acc[r][j] = c[r * ldc + j];
    }
  }
  for (int64_t p = p0; p < p1; ++p) {
    const float* brow = b + p * ldb;
    for (int64_t r = 0; r < mr; ++r) {
      const float av = a[r * lda + p];
      for (int64_t j = 0; j < nr; ++j) {
        acc[r][j] += av * brow[j];
      }
    }
  }
  for (int64_t r = 0; r < mr; ++r) {
    for (int64_t j = 0; j < nr; ++j) {
      c[r * ldc + j] = bias ? acc[r][j] + bias[j] : acc[r][j];
    }
  }
}

}  // namespace

void GemmF32(int64_t m, int64_t n, int64_t k, const float* a, int64_t lda, const float* b,
             int64_t ldb, float* c, int64_t ldc, const float* bias) {
  if (m <= 0 || n <= 0) {
    return;
  }
  if (k <= 0) {
    if (bias != nullptr) {
      for (int64_t i = 0; i < m; ++i) {
        for (int64_t j = 0; j < n; ++j) {
          c[i * ldc + j] += bias[j];
        }
      }
    }
    return;
  }
  // Parallel over 4-row blocks of C (disjoint outputs, tile-aligned chunk
  // boundaries => bitwise-identical results for any thread count). Grain keeps
  // at least ~1 MFLOP per dispatched chunk.
  const int64_t row_blocks = (m + kMr - 1) / kMr;
  const int64_t flops_per_block = 2 * kMr * n * k;
  const int64_t grain = (1 << 20) / std::max<int64_t>(1, flops_per_block) + 1;
  ParallelFor(row_blocks, grain, [&](int64_t blk0, int64_t blk1) {
    for (int64_t pc = 0; pc < k; pc += kKc) {  // k-panels: B panel reused across row blocks
      const int64_t p1 = std::min(k, pc + kKc);
      const float* panel_bias = (p1 == k) ? bias : nullptr;  // epilogue on final panel only
      for (int64_t blk = blk0; blk < blk1; ++blk) {
        const int64_t i0 = blk * kMr;
        const int64_t mr = std::min(kMr, m - i0);
        const float* atile = a + i0 * lda;
        float* ctile = c + i0 * ldc;
        for (int64_t j = 0; j < n; j += kNr) {
          const int64_t nr = std::min(kNr, n - j);
          const float* bias_j = panel_bias ? panel_bias + j : nullptr;
          if (mr == kMr && nr == kNr) {
            Kernel4x16(atile, lda, b + j, ldb, ctile + j, ldc, pc, p1, bias_j);
          } else {
            KernelEdge(atile, lda, b + j, ldb, ctile + j, ldc, mr, nr, pc, p1, bias_j);
          }
        }
      }
    }
  });
}

}  // namespace pit
