#include "pit/common/gemm_microkernel.h"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <vector>

#include "pit/common/backend.h"
#include "pit/common/gemm_scalar_kernels.h"
#include "pit/common/parallel_for.h"
#include "pit/common/simd_kernels.h"

namespace pit {
namespace {

// Scalar register-tile kernels (the kScalar tier / differential oracle) live
// in gemm_scalar_kernels.cc, compiled with auto-vectorization off.
using scalar_kernels::Kernel4x16;
using scalar_kernels::Kernel4x16PackedA;
using scalar_kernels::KernelEdge;
using scalar_kernels::kMr;
using scalar_kernels::kNr;

constexpr int64_t kKc = 256;  // k-panel depth: panel of B stays hot in L2

std::atomic<bool> g_pack_b{true};
std::atomic<bool> g_pack_a{true};

// A chunk must reuse the packed panel across at least this many 4-row blocks
// before the pack pass (one read + one write of the panel) pays for itself.
constexpr int64_t kMinRowBlocksToPack = 4;

// Pack only when B no longer fits in a typical L2: below this the strided
// rows stay resident anyway and the pack pass is pure overhead.
constexpr int64_t kMinBBytesToPack = 2ll << 20;

// Cap on the per-worker thread_local pack scratch (one k-panel across the
// full width of B): extremely wide GEMMs fall back to strided access instead
// of pinning tens of MiB per pool thread for the process lifetime.
constexpr int64_t kMaxPackScratchBytes = 8ll << 20;

// A-packing gates, from single-core sweeps over tall shapes: the pack pass
// (an extra strided read + dense write of the A panel) only pays when each
// packed element is reused across enough column tiles (n around 12..24 tiles
// of 16) while A traffic still dominates (m >= 4n, deep k so the strided
// source rows span many pages). Below the reuse band the pack never
// amortises; above it (wide n) the B panel dominates traffic and the extra A
// pass washes out.
constexpr int64_t kMinMToPackA = 1024;
constexpr int64_t kTallRatioToPackA = 4;
constexpr int64_t kMinNToPackA = 12 * kNr;
constexpr int64_t kMaxNToPackA = 24 * kNr;
constexpr int64_t kMinKToPackA = 2048;
// Rows per packed A group: 16 row blocks x kKc panel = 64 KiB of scratch,
// resident in L1/L2 while its blocks stream through the column tiles.
constexpr int64_t kPackARowBlocks = 16;

// Packs B[p0:p1, 0:n] into `out` as consecutive 16-wide tiles, each tile laid
// out p-major with dense kNr rows (ragged last tile zero-padded). Tile jt
// starts at out + jt * (p1 - p0) * kNr.
void PackBPanel(const float* b, int64_t ldb, int64_t n, int64_t p0, int64_t p1, float* out) {
  const int64_t rows = p1 - p0;
  for (int64_t j = 0, jt = 0; j < n; j += kNr, ++jt) {
    const int64_t nr = std::min(kNr, n - j);
    float* dst = out + jt * rows * kNr;
    const float* src = b + p0 * ldb + j;
    if (nr == kNr) {
      for (int64_t p = 0; p < rows; ++p) {
        std::memcpy(dst + p * kNr, src + p * ldb, static_cast<size_t>(kNr) * sizeof(float));
      }
    } else {
      for (int64_t p = 0; p < rows; ++p) {
        std::memcpy(dst + p * kNr, src + p * ldb, static_cast<size_t>(nr) * sizeof(float));
        std::memset(dst + p * kNr + nr, 0, static_cast<size_t>(kNr - nr) * sizeof(float));
      }
    }
  }
}

// Packs the full 4-row blocks [blk0, blk1) of A's k-panel [p0, p1) into `out`
// register-tile interleaved: block blk's element (r, p) lands at
// out[(blk - blk0) * 4 * rows + (p - p0) * 4 + r]. The four broadcast loads
// of one inner-loop iteration are then a single contiguous 16-byte run.
// Ragged trailing blocks (mr < 4) are not packed; callers keep them on the
// strided path.
void PackAPanel(const float* a, int64_t lda, int64_t blk0, int64_t blk1, int64_t p0, int64_t p1,
                float* out) {
  const int64_t rows = p1 - p0;
  for (int64_t blk = blk0; blk < blk1; ++blk) {
    const float* src = a + blk * kMr * lda;
    float* dst = out + (blk - blk0) * kMr * rows;
    for (int64_t p = p0; p < p1; ++p) {
      float* d = dst + (p - p0) * kMr;
      d[0] = src[p];
      d[1] = src[lda + p];
      d[2] = src[2 * lda + p];
      d[3] = src[3 * lda + p];
    }
  }
}

}  // namespace

void GemmF32(int64_t m, int64_t n, int64_t k, const float* a, int64_t lda, const float* b,
             int64_t ldb, float* c, int64_t ldc, const float* bias, bool relu) {
  if (m <= 0 || n <= 0) {
    return;
  }
  if (k <= 0) {
    if (bias != nullptr || relu) {
      for (int64_t i = 0; i < m; ++i) {
        for (int64_t j = 0; j < n; ++j) {
          float v = c[i * ldc + j] + (bias ? bias[j] : 0.0f);
          c[i * ldc + j] = relu ? (v > 0.0f ? v : 0.0f) : v;
        }
      }
    }
    return;
  }
  // Resolve the ISA tier's kernel table once per call: every chunk of this
  // GEMM — and the scalar edge kernel inside it — then contracts with the
  // same fma chain, so results are independent of tiling, packing, and
  // thread count within the tier. Null table = scalar blocked kernels (the
  // differential oracle).
  const simd::GemmKernels* sk = UseSimd() ? simd::GemmKernelsFor(ActiveIsa()) : nullptr;
  // Parallel over 4-row blocks of C (disjoint outputs, tile-aligned chunk
  // boundaries => bitwise-identical results for any thread count). Grain keeps
  // at least ~1 MFLOP per dispatched chunk.
  const int64_t row_blocks = (m + kMr - 1) / kMr;
  const int64_t flops_per_block = 2 * kMr * n * k;
  const int64_t grain = (1 << 20) / std::max<int64_t>(1, flops_per_block) + 1;
  ParallelFor(row_blocks, grain, [&](int64_t blk0, int64_t blk1) {
    // Pack the k-panel of B once per chunk when enough row blocks reuse it.
    // The packed tiles are read in the exact same (p, j) order as the strided
    // original, so packing never changes the floating-point result.
    const int64_t n_tiles = (n + kNr - 1) / kNr;
    const int64_t scratch_elems = kKc * n_tiles * kNr;
    const bool pack = g_pack_b.load(std::memory_order_relaxed) &&
                      blk1 - blk0 >= kMinRowBlocksToPack &&
                      k * n * static_cast<int64_t>(sizeof(float)) >= kMinBBytesToPack &&
                      scratch_elems * static_cast<int64_t>(sizeof(float)) <= kMaxPackScratchBytes;
    thread_local std::vector<float> bpack;
    if (pack && static_cast<int64_t>(bpack.size()) < scratch_elems) {
      bpack.resize(static_cast<size_t>(scratch_elems));
    }
    // A-panel packing for tall problems: repack 64-row groups of the current
    // k-panel register-tile interleaved so the kernels' four broadcast loads
    // come from one dense run. Copy-only — bitwise identical either way.
    const bool pack_a = g_pack_a.load(std::memory_order_relaxed) && m >= kMinMToPackA &&
                        m >= kTallRatioToPackA * n && n >= kMinNToPackA && n <= kMaxNToPackA &&
                        k >= kMinKToPackA;
    thread_local std::vector<float> apack;
    if (pack_a && static_cast<int64_t>(apack.size()) < kPackARowBlocks * kMr * kKc) {
      apack.resize(static_cast<size_t>(kPackARowBlocks * kMr * kKc));
    }
    for (int64_t pc = 0; pc < k; pc += kKc) {  // k-panels: B panel reused across row blocks
      const int64_t p1 = std::min(k, pc + kKc);
      const float* panel_bias = (p1 == k) ? bias : nullptr;  // epilogue on final panel only
      const bool panel_relu = (p1 == k) && relu;
      if (pack) {
        PackBPanel(b, ldb, n, pc, p1, bpack.data());
      }
      const int64_t panel_rows = p1 - pc;
      for (int64_t grp0 = blk0; grp0 < blk1; grp0 += kPackARowBlocks) {
        const int64_t grp1 = std::min(blk1, grp0 + kPackARowBlocks);
        // Pack only this group's full 4-row blocks; a ragged trailing block
        // stays on the strided path.
        int64_t packed_end = grp0;  // first block NOT in the packed A group
        if (pack_a) {
          packed_end = grp1;
          if (grp1 * kMr > m) {
            packed_end = grp1 - 1;  // ragged final block
          }
          if (packed_end > grp0) {
            PackAPanel(a, lda, grp0, packed_end, pc, p1, apack.data());
          }
        }
        for (int64_t blk = grp0; blk < grp1; ++blk) {
          const int64_t i0 = blk * kMr;
          const int64_t mr = std::min(kMr, m - i0);
          const float* atile = a + i0 * lda;
          const float* apack_tile =
              blk < packed_end ? apack.data() + (blk - grp0) * kMr * panel_rows : nullptr;
          float* ctile = c + i0 * ldc;
          for (int64_t j = 0, jt = 0; j < n; j += kNr, ++jt) {
            const int64_t nr = std::min(kNr, n - j);
            const float* bias_j = panel_bias ? panel_bias + j : nullptr;
            if (pack) {
              // Packed tile rows are [0, panel_rows); rebase the A pointer by
              // pc so the kernels' shared p index walks both operands in
              // lockstep.
              const float* btile = bpack.data() + jt * panel_rows * kNr;
              if (mr == kMr && nr == kNr) {
                if (apack_tile != nullptr) {
                  if (sk) {
                    sk->tile4x16_packed_a(apack_tile, btile, kNr, ctile + j, ldc, panel_rows,
                                          bias_j, panel_relu);
                  } else {
                    Kernel4x16PackedA(apack_tile, btile, kNr, ctile + j, ldc, panel_rows, bias_j,
                                      panel_relu);
                  }
                } else if (sk) {
                  sk->tile4x16(atile + pc, lda, btile, kNr, ctile + j, ldc, 0, panel_rows, bias_j,
                               panel_relu);
                } else {
                  Kernel4x16(atile + pc, lda, btile, kNr, ctile + j, ldc, 0, panel_rows, bias_j,
                             panel_relu);
                }
              } else if (sk) {
                sk->edge(atile + pc, lda, btile, kNr, ctile + j, ldc, mr, nr, 0, panel_rows,
                         bias_j, panel_relu);
              } else {
                KernelEdge(atile + pc, lda, btile, kNr, ctile + j, ldc, mr, nr, 0, panel_rows,
                           bias_j, panel_relu);
              }
            } else if (mr == kMr && nr == kNr) {
              if (apack_tile != nullptr) {
                if (sk) {
                  sk->tile4x16_packed_a(apack_tile, b + pc * ldb + j, ldb, ctile + j, ldc,
                                        panel_rows, bias_j, panel_relu);
                } else {
                  Kernel4x16PackedA(apack_tile, b + pc * ldb + j, ldb, ctile + j, ldc, panel_rows,
                                    bias_j, panel_relu);
                }
              } else if (sk) {
                sk->tile4x16(atile, lda, b + j, ldb, ctile + j, ldc, pc, p1, bias_j, panel_relu);
              } else {
                Kernel4x16(atile, lda, b + j, ldb, ctile + j, ldc, pc, p1, bias_j, panel_relu);
              }
            } else if (sk) {
              sk->edge(atile, lda, b + j, ldb, ctile + j, ldc, mr, nr, pc, p1, bias_j, panel_relu);
            } else {
              KernelEdge(atile, lda, b + j, ldb, ctile + j, ldc, mr, nr, pc, p1, bias_j,
                         panel_relu);
            }
          }
        }
      }
    }
  });
}

bool GemmPackBEnabled() { return g_pack_b.load(std::memory_order_relaxed); }

void SetGemmPackB(bool enabled) { g_pack_b.store(enabled, std::memory_order_relaxed); }

bool GemmPackAEnabled() { return g_pack_a.load(std::memory_order_relaxed); }

void SetGemmPackA(bool enabled) { g_pack_a.store(enabled, std::memory_order_relaxed); }

}  // namespace pit
