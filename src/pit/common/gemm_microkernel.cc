#include "pit/common/gemm_microkernel.h"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <vector>

#include "pit/common/parallel_for.h"

namespace pit {
namespace {

constexpr int64_t kMr = 4;    // register-tile rows
constexpr int64_t kNr = 16;   // register-tile cols (2 cache lines)
constexpr int64_t kKc = 256;  // k-panel depth: panel of B stays hot in L2

std::atomic<bool> g_pack_b{true};
std::atomic<bool> g_pack_a{true};

// A chunk must reuse the packed panel across at least this many 4-row blocks
// before the pack pass (one read + one write of the panel) pays for itself.
constexpr int64_t kMinRowBlocksToPack = 4;

// Pack only when B no longer fits in a typical L2: below this the strided
// rows stay resident anyway and the pack pass is pure overhead.
constexpr int64_t kMinBBytesToPack = 2ll << 20;

// Cap on the per-worker thread_local pack scratch (one k-panel across the
// full width of B): extremely wide GEMMs fall back to strided access instead
// of pinning tens of MiB per pool thread for the process lifetime.
constexpr int64_t kMaxPackScratchBytes = 8ll << 20;

// A-packing gates, from single-core sweeps over tall shapes: the pack pass
// (an extra strided read + dense write of the A panel) only pays when each
// packed element is reused across enough column tiles (n around 12..24 tiles
// of 16) while A traffic still dominates (m >= 4n, deep k so the strided
// source rows span many pages). Below the reuse band the pack never
// amortises; above it (wide n) the B panel dominates traffic and the extra A
// pass washes out.
constexpr int64_t kMinMToPackA = 1024;
constexpr int64_t kTallRatioToPackA = 4;
constexpr int64_t kMinNToPackA = 12 * kNr;
constexpr int64_t kMaxNToPackA = 24 * kNr;
constexpr int64_t kMinKToPackA = 2048;
// Rows per packed A group: 16 row blocks x kKc panel = 64 KiB of scratch,
// resident in L1/L2 while its blocks stream through the column tiles.
constexpr int64_t kPackARowBlocks = 16;

// The packed microkernel walks its p loop in blocks of this many rows and
// hints the next block's packed A/B lines between blocks. Hints must stay out
// of the inner loop: a prefetch intrinsic inside it makes the compiler spill
// the accumulator tile to the stack (measured ~8x slower).
constexpr int64_t kPrefetchBlockRows = 64;

#if defined(__GNUC__) || defined(__clang__)
#define PIT_PREFETCH(addr) __builtin_prefetch((addr), 0, 1)
#else
#define PIT_PREFETCH(addr) ((void)0)
#endif

// Packs B[p0:p1, 0:n] into `out` as consecutive 16-wide tiles, each tile laid
// out p-major with dense kNr rows (ragged last tile zero-padded). Tile jt
// starts at out + jt * (p1 - p0) * kNr.
void PackBPanel(const float* b, int64_t ldb, int64_t n, int64_t p0, int64_t p1, float* out) {
  const int64_t rows = p1 - p0;
  for (int64_t j = 0, jt = 0; j < n; j += kNr, ++jt) {
    const int64_t nr = std::min(kNr, n - j);
    float* dst = out + jt * rows * kNr;
    const float* src = b + p0 * ldb + j;
    if (nr == kNr) {
      for (int64_t p = 0; p < rows; ++p) {
        std::memcpy(dst + p * kNr, src + p * ldb, static_cast<size_t>(kNr) * sizeof(float));
      }
    } else {
      for (int64_t p = 0; p < rows; ++p) {
        std::memcpy(dst + p * kNr, src + p * ldb, static_cast<size_t>(nr) * sizeof(float));
        std::memset(dst + p * kNr + nr, 0, static_cast<size_t>(kNr - nr) * sizeof(float));
      }
    }
  }
}

// Packs the full 4-row blocks [blk0, blk1) of A's k-panel [p0, p1) into `out`
// register-tile interleaved: block blk's element (r, p) lands at
// out[(blk - blk0) * 4 * rows + (p - p0) * 4 + r]. The four broadcast loads
// of one inner-loop iteration are then a single contiguous 16-byte run.
// Ragged trailing blocks (mr < 4) are not packed; callers keep them on the
// strided path.
void PackAPanel(const float* a, int64_t lda, int64_t blk0, int64_t blk1, int64_t p0, int64_t p1,
                float* out) {
  const int64_t rows = p1 - p0;
  for (int64_t blk = blk0; blk < blk1; ++blk) {
    const float* src = a + blk * kMr * lda;
    float* dst = out + (blk - blk0) * kMr * rows;
    for (int64_t p = p0; p < p1; ++p) {
      float* d = dst + (p - p0) * kMr;
      d[0] = src[p];
      d[1] = src[lda + p];
      d[2] = src[2 * lda + p];
      d[3] = src[3 * lda + p];
    }
  }
}

// Epilogue store shared by every kernel: bias add then optional ReLU clamp,
// in the exact per-element order of the separate MatMulBiasInto + ReluInto
// passes, so fusing never changes a bit.
inline float Epilogue(float acc, const float* bias, int64_t j, bool relu) {
  float v = bias ? acc + bias[j] : acc;
  if (relu) {
    v = v > 0.0f ? v : 0.0f;
  }
  return v;
}

// Full 4x16 register tile: C[0:4, 0:16] += A[0:4, p0:p1] * B[p0:p1, 0:16].
// `a` is the tile's first A row, `b`/`c` are offset to the tile's first
// column. The accumulator array is small enough that -O3 keeps it entirely in
// vector registers; the inner loop is a broadcast-axpy that auto-vectorises.
inline void Kernel4x16(const float* a, int64_t lda, const float* b, int64_t ldb, float* c,
                       int64_t ldc, int64_t p0, int64_t p1, const float* bias, bool relu) {
  float acc[kMr][kNr];
  for (int64_t r = 0; r < kMr; ++r) {
    for (int64_t j = 0; j < kNr; ++j) {
      acc[r][j] = c[r * ldc + j];
    }
  }
  for (int64_t p = p0; p < p1; ++p) {
    const float* brow = b + p * ldb;
    const float a0 = a[p];
    const float a1 = a[lda + p];
    const float a2 = a[2 * lda + p];
    const float a3 = a[3 * lda + p];
    for (int64_t j = 0; j < kNr; ++j) {
      const float bv = brow[j];
      acc[0][j] += a0 * bv;
      acc[1][j] += a1 * bv;
      acc[2][j] += a2 * bv;
      acc[3][j] += a3 * bv;
    }
  }
  for (int64_t r = 0; r < kMr; ++r) {
    for (int64_t j = 0; j < kNr; ++j) {
      c[r * ldc + j] = Epilogue(acc[r][j], bias, j, relu);
    }
  }
}

// As Kernel4x16 but reading a register-tile-interleaved packed A tile
// (element (r, p) at apack[p*4 + r], p relative to the panel) — the packed
// microkernel. Issues prefetch hints for the upcoming packed A run and the
// upcoming B row (dense kNr-wide rows when B is packed too). Accumulation
// order per element is identical to the strided kernel.
inline void Kernel4x16PackedA(const float* apack, const float* b, int64_t ldb, float* c,
                              int64_t ldc, int64_t rows, const float* bias, bool relu) {
  float acc[kMr][kNr];
  for (int64_t r = 0; r < kMr; ++r) {
    for (int64_t j = 0; j < kNr; ++j) {
      acc[r][j] = c[r * ldc + j];
    }
  }
  for (int64_t pb = 0; pb < rows; pb += kPrefetchBlockRows) {
    const int64_t pe = std::min(rows, pb + kPrefetchBlockRows);
    if (pe < rows) {
      // Hint the head of the next block's packed A run and B rows while this
      // block streams — outside the hot loop so the accumulators stay in
      // registers.
      PIT_PREFETCH(apack + pe * kMr);
      PIT_PREFETCH(apack + pe * kMr + 16);
      PIT_PREFETCH(b + pe * ldb);
    }
    for (int64_t p = pb; p < pe; ++p) {
      const float* ap = apack + p * kMr;
      const float* brow = b + p * ldb;
      const float a0 = ap[0];
      const float a1 = ap[1];
      const float a2 = ap[2];
      const float a3 = ap[3];
      for (int64_t j = 0; j < kNr; ++j) {
        const float bv = brow[j];
        acc[0][j] += a0 * bv;
        acc[1][j] += a1 * bv;
        acc[2][j] += a2 * bv;
        acc[3][j] += a3 * bv;
      }
    }
  }
  for (int64_t r = 0; r < kMr; ++r) {
    for (int64_t j = 0; j < kNr; ++j) {
      c[r * ldc + j] = Epilogue(acc[r][j], bias, j, relu);
    }
  }
}

// Ragged-edge tile (mr < 4 and/or nr < 16). Accumulates in the same p-ascending
// per-element order as Kernel4x16, so which kernel covers a row never changes
// the numeric result.
inline void KernelEdge(const float* a, int64_t lda, const float* b, int64_t ldb, float* c,
                       int64_t ldc, int64_t mr, int64_t nr, int64_t p0, int64_t p1,
                       const float* bias, bool relu) {
  float acc[kMr][kNr];
  for (int64_t r = 0; r < mr; ++r) {
    for (int64_t j = 0; j < nr; ++j) {
      acc[r][j] = c[r * ldc + j];
    }
  }
  for (int64_t p = p0; p < p1; ++p) {
    const float* brow = b + p * ldb;
    for (int64_t r = 0; r < mr; ++r) {
      const float av = a[r * lda + p];
      for (int64_t j = 0; j < nr; ++j) {
        acc[r][j] += av * brow[j];
      }
    }
  }
  for (int64_t r = 0; r < mr; ++r) {
    for (int64_t j = 0; j < nr; ++j) {
      c[r * ldc + j] = Epilogue(acc[r][j], bias, j, relu);
    }
  }
}

}  // namespace

void GemmF32(int64_t m, int64_t n, int64_t k, const float* a, int64_t lda, const float* b,
             int64_t ldb, float* c, int64_t ldc, const float* bias, bool relu) {
  if (m <= 0 || n <= 0) {
    return;
  }
  if (k <= 0) {
    if (bias != nullptr || relu) {
      for (int64_t i = 0; i < m; ++i) {
        for (int64_t j = 0; j < n; ++j) {
          float v = c[i * ldc + j] + (bias ? bias[j] : 0.0f);
          c[i * ldc + j] = relu ? (v > 0.0f ? v : 0.0f) : v;
        }
      }
    }
    return;
  }
  // Parallel over 4-row blocks of C (disjoint outputs, tile-aligned chunk
  // boundaries => bitwise-identical results for any thread count). Grain keeps
  // at least ~1 MFLOP per dispatched chunk.
  const int64_t row_blocks = (m + kMr - 1) / kMr;
  const int64_t flops_per_block = 2 * kMr * n * k;
  const int64_t grain = (1 << 20) / std::max<int64_t>(1, flops_per_block) + 1;
  ParallelFor(row_blocks, grain, [&](int64_t blk0, int64_t blk1) {
    // Pack the k-panel of B once per chunk when enough row blocks reuse it.
    // The packed tiles are read in the exact same (p, j) order as the strided
    // original, so packing never changes the floating-point result.
    const int64_t n_tiles = (n + kNr - 1) / kNr;
    const int64_t scratch_elems = kKc * n_tiles * kNr;
    const bool pack = g_pack_b.load(std::memory_order_relaxed) &&
                      blk1 - blk0 >= kMinRowBlocksToPack &&
                      k * n * static_cast<int64_t>(sizeof(float)) >= kMinBBytesToPack &&
                      scratch_elems * static_cast<int64_t>(sizeof(float)) <= kMaxPackScratchBytes;
    thread_local std::vector<float> bpack;
    if (pack && static_cast<int64_t>(bpack.size()) < scratch_elems) {
      bpack.resize(static_cast<size_t>(scratch_elems));
    }
    // A-panel packing for tall problems: repack 64-row groups of the current
    // k-panel register-tile interleaved so the kernels' four broadcast loads
    // come from one dense run. Copy-only — bitwise identical either way.
    const bool pack_a = g_pack_a.load(std::memory_order_relaxed) && m >= kMinMToPackA &&
                        m >= kTallRatioToPackA * n && n >= kMinNToPackA && n <= kMaxNToPackA &&
                        k >= kMinKToPackA;
    thread_local std::vector<float> apack;
    if (pack_a && static_cast<int64_t>(apack.size()) < kPackARowBlocks * kMr * kKc) {
      apack.resize(static_cast<size_t>(kPackARowBlocks * kMr * kKc));
    }
    for (int64_t pc = 0; pc < k; pc += kKc) {  // k-panels: B panel reused across row blocks
      const int64_t p1 = std::min(k, pc + kKc);
      const float* panel_bias = (p1 == k) ? bias : nullptr;  // epilogue on final panel only
      const bool panel_relu = (p1 == k) && relu;
      if (pack) {
        PackBPanel(b, ldb, n, pc, p1, bpack.data());
      }
      const int64_t panel_rows = p1 - pc;
      for (int64_t grp0 = blk0; grp0 < blk1; grp0 += kPackARowBlocks) {
        const int64_t grp1 = std::min(blk1, grp0 + kPackARowBlocks);
        // Pack only this group's full 4-row blocks; a ragged trailing block
        // stays on the strided path.
        int64_t packed_end = grp0;  // first block NOT in the packed A group
        if (pack_a) {
          packed_end = grp1;
          if (grp1 * kMr > m) {
            packed_end = grp1 - 1;  // ragged final block
          }
          if (packed_end > grp0) {
            PackAPanel(a, lda, grp0, packed_end, pc, p1, apack.data());
          }
        }
        for (int64_t blk = grp0; blk < grp1; ++blk) {
          const int64_t i0 = blk * kMr;
          const int64_t mr = std::min(kMr, m - i0);
          const float* atile = a + i0 * lda;
          const float* apack_tile =
              blk < packed_end ? apack.data() + (blk - grp0) * kMr * panel_rows : nullptr;
          float* ctile = c + i0 * ldc;
          for (int64_t j = 0, jt = 0; j < n; j += kNr, ++jt) {
            const int64_t nr = std::min(kNr, n - j);
            const float* bias_j = panel_bias ? panel_bias + j : nullptr;
            if (pack) {
              // Packed tile rows are [0, panel_rows); rebase the A pointer by
              // pc so the kernels' shared p index walks both operands in
              // lockstep.
              const float* btile = bpack.data() + jt * panel_rows * kNr;
              if (mr == kMr && nr == kNr) {
                if (apack_tile != nullptr) {
                  Kernel4x16PackedA(apack_tile, btile, kNr, ctile + j, ldc, panel_rows, bias_j,
                                    panel_relu);
                } else {
                  Kernel4x16(atile + pc, lda, btile, kNr, ctile + j, ldc, 0, panel_rows, bias_j,
                             panel_relu);
                }
              } else {
                KernelEdge(atile + pc, lda, btile, kNr, ctile + j, ldc, mr, nr, 0, panel_rows,
                           bias_j, panel_relu);
              }
            } else if (mr == kMr && nr == kNr) {
              if (apack_tile != nullptr) {
                Kernel4x16PackedA(apack_tile, b + pc * ldb + j, ldb, ctile + j, ldc, panel_rows,
                                  bias_j, panel_relu);
              } else {
                Kernel4x16(atile, lda, b + j, ldb, ctile + j, ldc, pc, p1, bias_j, panel_relu);
              }
            } else {
              KernelEdge(atile, lda, b + j, ldb, ctile + j, ldc, mr, nr, pc, p1, bias_j,
                         panel_relu);
            }
          }
        }
      }
    }
  });
}

bool GemmPackBEnabled() { return g_pack_b.load(std::memory_order_relaxed); }

void SetGemmPackB(bool enabled) { g_pack_b.store(enabled, std::memory_order_relaxed); }

bool GemmPackAEnabled() { return g_pack_a.load(std::memory_order_relaxed); }

void SetGemmPackA(bool enabled) { g_pack_a.store(enabled, std::memory_order_relaxed); }

}  // namespace pit
