// Runtime selection between the two compute backends.
//
//  - kReference: the original single-threaded scalar loops, kept verbatim as
//    the ground-truth oracle every optimised kernel is differential-tested
//    against.
//  - kBlocked: the register-blocked, cache-tiled, multi-threaded backend
//    (gemm_microkernel + parallel_for). Default.
//
// The active backend is process-global. Select it with SetBackend(), the
// ScopedBackend RAII guard (tests), or the PIT_BACKEND environment variable
// ("reference" or "blocked").
#ifndef PIT_COMMON_BACKEND_H_
#define PIT_COMMON_BACKEND_H_

#include <cstdint>

namespace pit {

enum class ComputeBackend {
  kReference,  // scalar single-threaded oracle
  kBlocked,    // cache-blocked + multi-threaded
};

// The backend hot paths dispatch on. First call resolves PIT_BACKEND; defaults
// to kBlocked.
ComputeBackend ActiveBackend();

// Strict parser behind the PIT_BACKEND resolution: "blocked" or "reference"
// only. A typo'd backend name must fail loudly (PIT_CHECK abort), not
// silently run the default backend while the operator believes the oracle is
// active.
ComputeBackend ParseBackendEnv(const char* value);

void SetBackend(ComputeBackend backend);

// True when the blocked backend is active — the common dispatch predicate.
inline bool UseBlockedBackend() { return ActiveBackend() == ComputeBackend::kBlocked; }

// ParallelFor grain under the active backend: the given grain when blocked,
// the whole range (one sequential chunk) under the reference oracle. Every
// kernel that parallelises via grain uses this so the reference backend never
// spawns pool work.
inline int64_t GrainOrSerial(int64_t n, int64_t grain) {
  return UseBlockedBackend() ? grain : (n > 1 ? n : 1);
}

// RAII backend override for differential tests.
class ScopedBackend {
 public:
  explicit ScopedBackend(ComputeBackend backend) : saved_(ActiveBackend()) {
    SetBackend(backend);
  }
  ~ScopedBackend() { SetBackend(saved_); }
  ScopedBackend(const ScopedBackend&) = delete;
  ScopedBackend& operator=(const ScopedBackend&) = delete;

 private:
  ComputeBackend saved_;
};

// ---- SIMD instruction-set tier ---------------------------------------------
//
// Orthogonal to the backend choice: within the blocked backend, the hot inner
// loops (GEMM 4x16 microkernel, softmax, layernorm, elementwise, row gathers,
// the detector's span scan) dispatch to explicit vector microkernels when the
// CPU supports them.
//  - kScalar: the portable scalar blocked loops — the differential oracle for
//    every vector kernel. Forced whenever the reference backend is active.
//  - kAvx2:   AVX2 + FMA vector microkernels.
//  - kAvx512: AVX-512F GEMM microkernel (wider accumulator tile); every other
//    kernel shares the AVX2 paths, so non-GEMM results are bitwise identical
//    across the two SIMD tiers — and the GEMM per-element fma chain is too.
//
// Correctness contract: vector kernels lane across the n/column dimension, so
// kernels without a reduction or contraction (relu/add/scale, the detector
// scan, row gathers) are bitwise equal to the scalar tier. GEMM contracts with
// fma (one rounding instead of two per multiply-add) and softmax/layernorm
// use a vector exp polynomial / reassociated row reductions — those differ
// from scalar within documented tolerance but stay bitwise deterministic
// across threads x streams x scheduler at a fixed tier, because every
// per-element operation chain is independent of tiling, packing, row
// position, and thread count.
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define PIT_SIMD_X86 1
#else
#define PIT_SIMD_X86 0
#endif

enum class IsaTier {
  kScalar,  // portable scalar blocked loops (oracle)
  kAvx2,    // AVX2 + FMA microkernels
  kAvx512,  // AVX-512F GEMM, AVX2 elsewhere
};

// Best tier this build + CPU supports (cached CPUID probe). kScalar on
// non-x86 builds or CPUs without AVX2+FMA.
IsaTier DetectedIsa();

// The tier SIMD-dispatching kernels run at: SetIsa() override > PIT_ISA env >
// DetectedIsa(). First call resolves PIT_ISA.
IsaTier ActiveIsa();

// Strict parser behind the PIT_ISA resolution: exactly "auto", "avx2", or
// "scalar". A typo'd tier must fail loudly (PIT_CHECK abort), not silently
// run the default while the operator believes the oracle is active. "avx2" on
// hardware without AVX2+FMA also aborts — a forced tier that silently
// downgraded would invalidate every downstream bench number. ("avx512" is not
// spellable: the widest tier is only reachable through "auto" detection.)
IsaTier ParseIsaEnv(const char* value);

void SetIsa(IsaTier tier);

// Human-readable tier name ("scalar", "avx2", "avx512") for logs and bench
// metadata.
const char* IsaName(IsaTier tier);

// True when vector microkernels should dispatch: blocked backend AND a SIMD
// tier. The reference backend always runs scalar — it is the ground-truth
// oracle and must not share code with the kernels under test.
bool UseSimd();

// RAII tier override for differential tests and benches.
class ScopedIsa {
 public:
  explicit ScopedIsa(IsaTier tier) : saved_(ActiveIsa()) { SetIsa(tier); }
  ~ScopedIsa() { SetIsa(saved_); }
  ScopedIsa(const ScopedIsa&) = delete;
  ScopedIsa& operator=(const ScopedIsa&) = delete;

 private:
  IsaTier saved_;
};

// ---- ExecutionPlan replay scheduler ----------------------------------------
//
// How a compiled ExecutionPlan replays its steps:
//  - kSequential: one step at a time in compile order — the scheduling oracle
//    every concurrent schedule is differential-tested against.
//  - kWavefront: independent steps (disjoint arena intervals, no data or
//    reuse hazard) of the same dependency wavefront dispatch concurrently on
//    the ParallelFor pool. Default. Bitwise identical to kSequential for any
//    thread count: concurrent steps write disjoint 64-byte-aligned arena
//    blocks and every kernel is order-deterministic internally.
enum class PlanSched {
  kSequential,  // in-order oracle replay
  kWavefront,   // inter-op parallel replay (default)
};

// The scheduler plan replay dispatches on. First call resolves
// PIT_PLAN_SCHED; defaults to kWavefront.
PlanSched ActivePlanSched();

// Strict parser behind the PIT_PLAN_SCHED resolution: "seq" or "wavefront"
// only. A typo'd scheduler name must fail loudly (PIT_CHECK abort), not
// silently run the default while the operator believes the oracle is active.
PlanSched ParsePlanSchedEnv(const char* value);

void SetPlanSched(PlanSched sched);

// Compile-time wavefront profitability gate (PlanStats.wavefront_profitable):
// when enabled (default), plans whose parallel waves average too little work
// per step replay sequentially even under PIT_PLAN_SCHED=wavefront —
// BENCH_pr4 measured inter-op overlap losing to intra-op kernel parallelism
// on small-step plans. Tests disable the gate to force the wavefront path on
// arbitrary (small) plans; the schedule stays bitwise identical either way.
bool WavefrontGateEnabled();
void SetWavefrontGateEnabled(bool enabled);

// RAII gate override for tests and benches that must exercise (or pin down)
// the wavefront dispatch path regardless of plan size.
class ScopedWavefrontGate {
 public:
  explicit ScopedWavefrontGate(bool enabled) : saved_(WavefrontGateEnabled()) {
    SetWavefrontGateEnabled(enabled);
  }
  ~ScopedWavefrontGate() { SetWavefrontGateEnabled(saved_); }
  ScopedWavefrontGate(const ScopedWavefrontGate&) = delete;
  ScopedWavefrontGate& operator=(const ScopedWavefrontGate&) = delete;

 private:
  bool saved_;
};

// ---- Compiled-plan verification ---------------------------------------------
//
// Whether every ExecutionPlan compile (and every pooled-plan creation in the
// ServingEngine) runs the independent static verifier
// (graph/plan_verifier.h) and aborts on any invariant violation:
//  - kAuto: engage in debug builds (!NDEBUG), skip in release — the default.
//    Test/debug builds prove every plan they compile; release serving does
//    not pay the O(steps^2) oracle per compile.
//  - kOn:   always verify (CI release legs, `pitctl verify`, investigations).
//  - kOff:  never verify implicitly (explicit VerifyPlan calls still work).
enum class PlanVerifyMode {
  kAuto,  // debug builds verify, release builds skip (default)
  kOn,    // verify every compile
  kOff,   // implicit verification off
};

// The mode the compile hooks dispatch on. First call resolves
// PIT_VERIFY_PLAN; defaults to kAuto.
PlanVerifyMode ActivePlanVerifyMode();

// Strict parser behind the PIT_VERIFY_PLAN resolution: exactly "auto", "on",
// or "off". A typo'd mode must fail loudly (PIT_CHECK abort), not silently
// run without the verification the operator believes is active.
PlanVerifyMode ParsePlanVerifyEnv(const char* value);

void SetPlanVerifyMode(PlanVerifyMode mode);

// True when implicit (compile-hook) verification should run under the active
// mode: kOn always, kAuto in debug builds only.
bool PlanVerifyEngaged();

// RAII mode override for tests that force verification on (the positive
// sweep) or off (the corruption suite, which must mutate a compiled plan
// without the compile hook re-checking it first).
class ScopedPlanVerify {
 public:
  explicit ScopedPlanVerify(PlanVerifyMode mode) : saved_(ActivePlanVerifyMode()) {
    SetPlanVerifyMode(mode);
  }
  ~ScopedPlanVerify() { SetPlanVerifyMode(saved_); }
  ScopedPlanVerify(const ScopedPlanVerify&) = delete;
  ScopedPlanVerify& operator=(const ScopedPlanVerify&) = delete;

 private:
  PlanVerifyMode saved_;
};

// RAII scheduler override for differential tests and benches.
class ScopedPlanSched {
 public:
  explicit ScopedPlanSched(PlanSched sched) : saved_(ActivePlanSched()) { SetPlanSched(sched); }
  ~ScopedPlanSched() { SetPlanSched(saved_); }
  ScopedPlanSched(const ScopedPlanSched&) = delete;
  ScopedPlanSched& operator=(const ScopedPlanSched&) = delete;

 private:
  PlanSched saved_;
};

}  // namespace pit

#endif  // PIT_COMMON_BACKEND_H_
