// Explicit vector microkernels behind the IsaTier dispatch (common/backend.h).
//
// Kernels are grouped into two dispatch tables resolved once per op call:
//  - GemmKernels: the 4x16 register-tile GEMM kernels (strided, packed-A, and
//    ragged-edge variants) with the fused bias / bias+relu epilogue. The AVX2
//    and AVX-512 variants contract with fma — one rounding per multiply-add
//    instead of two — so they differ from the scalar blocked oracle within
//    tolerance; but every variant (vector lanes AND the scalar fma edge
//    kernel) applies the exact same ascending-p fma chain per element, so a
//    result never depends on which kernel covered it, on tiling, packing, row
//    position, or thread count. AVX-512 lanes run the same per-element chain
//    as AVX2 lanes: the two SIMD tiers are bitwise identical to each other.
//  - RowKernels: row/segment primitives for softmax (max / exp-sum / divide),
//    layernorm (sum / squared-diff sum / normalize), the elementwise kernels
//    (add/relu/scale), the detector's span-nonzero scan, and the row-gather
//    copy. All lane across the column dimension. add/relu/scale/copy and
//    span_nonzero perform per-lane IEEE ops with no reduction, so they are
//    bitwise equal to the scalar tier. row_max is an exact reduction (max is
//    associative). exp_sum uses a polynomial exp and a lane-grouped sum,
//    sum/sqdiff_sum are lane-grouped: tolerance vs scalar, deterministic for
//    a fixed span length. Both SIMD tiers share the AVX2 row kernels.
//
// All intrinsics live in simd_kernels.cc behind function-level
// __attribute__((target(...))), so this TU builds even when the global flags
// lack -mavx2 (e.g. -DPIT_NATIVE_ARCH=OFF); dispatch is gated at runtime on
// DetectedIsa().
#ifndef PIT_COMMON_SIMD_KERNELS_H_
#define PIT_COMMON_SIMD_KERNELS_H_

#include <cstdint>

#include "pit/common/backend.h"

namespace pit {
namespace simd {

struct GemmKernels {
  // C[0:4, 0:16] += A[0:4, p0:p1] * B[p0:p1, 0:16]; same contract as the
  // scalar Kernel4x16 (a = tile's first A row, b/c offset to the tile's
  // first column).
  void (*tile4x16)(const float* a, int64_t lda, const float* b, int64_t ldb, float* c,
                   int64_t ldc, int64_t p0, int64_t p1, const float* bias, bool relu);
  // Register-tile-interleaved packed-A variant (element (r, p) at
  // apack[p*4 + r], p relative to the panel); same contract as the scalar
  // Kernel4x16PackedA, including the block-boundary prefetch hints.
  void (*tile4x16_packed_a)(const float* apack, const float* b, int64_t ldb, float* c,
                            int64_t ldc, int64_t rows, const float* bias, bool relu);
  // Ragged-edge tile (mr < 4 and/or nr < 16): scalar loops contracted with
  // fmaf so the per-element chain matches the vector lanes exactly.
  void (*edge)(const float* a, int64_t lda, const float* b, int64_t ldb, float* c, int64_t ldc,
               int64_t mr, int64_t nr, int64_t p0, int64_t p1, const float* bias, bool relu);
};

struct RowKernels {
  // max over x[0:n) (exact; -inf identity seed like the scalar loop).
  float (*row_max)(const float* x, int64_t n);
  // out[i] = poly_exp(x[i] - maxv), with x[i] == -inf blended to exactly 0
  // (the scalar oracle's masked-lane convention); returns sum(out). Every
  // element — vector lane or tail — runs the identical fma polynomial, so
  // per-element values are position-independent; only the returned sum is
  // lane-grouped.
  float (*exp_sum)(const float* x, int64_t n, float maxv, float* out);
  // x[i] /= denom in place (per-lane IEEE division, bitwise equal to the
  // scalar divide given the same inputs).
  void (*div_inplace)(float* x, int64_t n, float denom);
  // Elementwise c = a + b / c = max(a, 0) / c = a * factor: bitwise equal to
  // the scalar loops.
  void (*add)(const float* a, const float* b, float* c, int64_t n);
  void (*relu)(const float* a, float* c, int64_t n);
  void (*scale)(const float* a, float factor, float* c, int64_t n);
  // sum over x[0:n) (lane-grouped; layernorm mean).
  float (*sum)(const float* x, int64_t n);
  // sum of (x[i] - mean)^2 (lane-grouped fma; layernorm variance).
  float (*sqdiff_sum)(const float* x, int64_t n, float mean);
  // c[i] = fmaf((x[i] - mean) * inv, gamma[i], beta[i]) — the layernorm
  // normalize pass; identical chain for lanes and tail.
  void (*normalize)(const float* x, int64_t n, float mean, float inv, const float* gamma,
                    const float* beta, float* c);
  // Any element of p[0:count) != 0.0f — the detector's magnitude-masked
  // integer-OR scan; exact predicate, bitwise-identical tile sets.
  bool (*span_nonzero)(const float* p, int64_t count);
  // dst[0:n) = src[0:n): the row-gather copy (exact).
  void (*copy)(const float* src, float* dst, int64_t n);
};

// Kernel tables for a SIMD tier; nullptr when `tier` is kScalar or the build
// lacks x86 intrinsics. Forcing a tier above DetectedIsa() aborts — executing
// those kernels would SIGILL.
const GemmKernels* GemmKernelsFor(IsaTier tier);
const RowKernels* RowKernelsFor(IsaTier tier);

}  // namespace simd
}  // namespace pit

#endif  // PIT_COMMON_SIMD_KERNELS_H_
