// The scalar GEMM register-tile kernels — the kScalar ISA tier and the
// differential oracle every SIMD tier is tested against.
//
// These live in their own translation unit, compiled with the compiler's
// auto-vectorizer disabled (see CMakeLists.txt): with -march=native the
// broadcast-axpy inner loops otherwise compile to the host's full vector ISA,
// which makes PIT_ISA=scalar mean "whatever the build flags produced" instead
// of a true scalar baseline. Pinning the tier to scalar code keeps its
// meaning (and its timings in BENCH_pr7.json) stable across build
// configurations. De-vectorization changes no results: the lanes of the j
// loop are independent, so every per-element accumulation chain is the same
// ascending-p sequence either way.
#ifndef PIT_COMMON_GEMM_SCALAR_KERNELS_H_
#define PIT_COMMON_GEMM_SCALAR_KERNELS_H_

#include <cstdint>

namespace pit::scalar_kernels {

inline constexpr int64_t kMr = 4;   // register-tile rows
inline constexpr int64_t kNr = 16;  // register-tile cols (2 cache lines)

// Full 4x16 register tile: C[0:4, 0:16] += A[0:4, p0:p1] * B[p0:p1, 0:16].
// `a` is the tile's first A row, `b`/`c` are offset to the tile's first
// column; bias/relu form the shared fused epilogue.
void Kernel4x16(const float* a, int64_t lda, const float* b, int64_t ldb, float* c, int64_t ldc,
                int64_t p0, int64_t p1, const float* bias, bool relu);

// As Kernel4x16 but reading a register-tile-interleaved packed A tile
// (element (r, p) at apack[p*4 + r], p relative to the panel). Accumulation
// order per element is identical to the strided kernel.
void Kernel4x16PackedA(const float* apack, const float* b, int64_t ldb, float* c, int64_t ldc,
                       int64_t rows, const float* bias, bool relu);

// Ragged-edge tile (mr < 4 and/or nr < 16), same p-ascending per-element
// order, so which kernel covers a row never changes the numeric result.
void KernelEdge(const float* a, int64_t lda, const float* b, int64_t ldb, float* c, int64_t ldc,
                int64_t mr, int64_t nr, int64_t p0, int64_t p1, const float* bias, bool relu);

}  // namespace pit::scalar_kernels

#endif  // PIT_COMMON_GEMM_SCALAR_KERNELS_H_
