#include "pit/common/fault_injection.h"

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <string>

#include "pit/common/check.h"

namespace pit {
namespace {

// Global active config. Written only from SetFaultConfig (tests / process
// setup, outside any serving call); read lock-free by probes. The engine's
// worker fan-out synchronizes the write with the readers (pool submission is
// a happens-before edge), so probes never race a config change mid-Serve.
FaultInjectionConfig g_config;
std::once_flag g_env_once;

// Per-site probe sequence (claims the deterministic index k) and fired count.
struct SiteCounters {
  std::atomic<uint64_t> sequence{0};
  std::atomic<int64_t> fired{0};
};
SiteCounters g_sites[kNumFaultSites];

thread_local int tls_retry_immune = 0;
thread_local bool tls_pending = false;

// SplitMix64 finalizer: a well-mixed pure function of the probe key, so the
// fire/no-fire decision for (seed, site, k) is identical on every platform.
uint64_t Mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

void ResolveEnvConfig() {
  const char* value = std::getenv("PIT_FAULT");
  if (value != nullptr && value[0] != '\0') {
    g_config = ParseFaultEnv(value);
  }
}

// Strict decimal fraction in (0, 1]: digits and at most one '.', full
// consumption. Rejects exponents, signs, inf/nan spellings outright.
bool ParseRate(const std::string& text, double* out) {
  if (text.empty()) {
    return false;
  }
  int dots = 0;
  for (char c : text) {
    if (c == '.') {
      ++dots;
    } else if (c < '0' || c > '9') {
      return false;
    }
  }
  if (dots > 1 || text == ".") {
    return false;
  }
  *out = std::strtod(text.c_str(), nullptr);
  return *out > 0.0 && *out <= 1.0;
}

// Strict unsigned decimal (seeds may use the full 64-bit range).
bool ParseSeed(const std::string& text, uint64_t* out) {
  if (text.empty() || text.size() > 20) {
    return false;
  }
  uint64_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') {
      return false;
    }
    const uint64_t digit = static_cast<uint64_t>(c - '0');
    if (value > (UINT64_MAX - digit) / 10) {
      return false;  // overflow
    }
    value = value * 10 + digit;
  }
  *out = value;
  return true;
}

bool ParseSite(const std::string& text, FaultInjectionConfig* config) {
  if (text == "all") {
    // "all" spells the failure sites only: stall is a delay fault (liveness
    // chaos) and must never ride along with a failure sweep unasked — a
    // high-rate all-site sweep sleeping 50 ms per claim would turn every
    // containment test into a wall-clock test.
    for (int i = 0; i < kNumFaultSites; ++i) {
      config->site_enabled[i] = static_cast<FaultSite>(i) != FaultSite::kStall;
    }
    return true;
  }
  for (int i = 0; i < kNumFaultSites; ++i) {
    if (text == FaultSiteName(static_cast<FaultSite>(i))) {
      config->site_enabled[i] = true;
      return true;
    }
  }
  return false;
}

}  // namespace

namespace fault_internal {
thread_local bool tls_armed = false;

bool StepProbeSlow() {
  if (tls_pending) {
    return true;  // a fault already aborted this forward; keep it stopped
  }
  if (FaultProbe(FaultSite::kKernelDispatch)) {
    tls_pending = true;
    return true;
  }
  return false;
}
}  // namespace fault_internal

const char* FaultSiteName(FaultSite site) {
  switch (site) {
    case FaultSite::kPlanCompile:
      return "plan_compile";
    case FaultSite::kContextAcquire:
      return "context_acquire";
    case FaultSite::kBatchPack:
      return "batch_pack";
    case FaultSite::kKernelDispatch:
      return "kernel_dispatch";
    case FaultSite::kStall:
      return "stall";
  }
  PIT_CHECK(false) << "unknown FaultSite " << static_cast<int>(site);
  return "";
}

FaultInjectionConfig ParseFaultEnv(const char* value) {
  PIT_CHECK(value != nullptr && value[0] != '\0')
      << "PIT_FAULT must be site:rate:seed (site: plan_compile|context_acquire|"
         "batch_pack|kernel_dispatch|stall|all, rate in (0,1], seed unsigned decimal)";
  const std::string text(value);
  const size_t first = text.find(':');
  const size_t second = first == std::string::npos ? std::string::npos : text.find(':', first + 1);
  const bool well_formed = first != std::string::npos && second != std::string::npos &&
                           text.find(':', second + 1) == std::string::npos;
  PIT_CHECK(well_formed) << "PIT_FAULT must have exactly three ':'-separated fields "
                            "(site:rate:seed), got \""
                         << text << "\"";
  FaultInjectionConfig config;
  const std::string site = text.substr(0, first);
  const std::string rate = text.substr(first + 1, second - first - 1);
  const std::string seed = text.substr(second + 1);
  PIT_CHECK(ParseSite(site, &config))
      << "PIT_FAULT site must be plan_compile|context_acquire|batch_pack|"
         "kernel_dispatch|stall|all, got \""
      << site << "\"";
  PIT_CHECK(ParseRate(rate, &config.rate))
      << "PIT_FAULT rate must be a plain decimal in (0, 1], got \"" << rate << "\"";
  PIT_CHECK(ParseSeed(seed, &config.seed))
      << "PIT_FAULT seed must be a plain unsigned decimal, got \"" << seed << "\"";
  config.enabled = true;
  // fail_retries stays false: environment-driven chaos injects transient
  // faults only, so every degradation ladder terminates in a served request.
  return config;
}

const FaultInjectionConfig& ActiveFaultConfig() {
  std::call_once(g_env_once, ResolveEnvConfig);
  return g_config;
}

void SetFaultConfig(const FaultInjectionConfig& config) {
  std::call_once(g_env_once, ResolveEnvConfig);  // pin resolution order
  g_config = config;
  ResetFaultCounters();
}

bool FaultInjectionEnabled() { return ActiveFaultConfig().enabled; }

bool FaultProbe(FaultSite site) {
  if (!fault_internal::tls_armed) {
    return false;
  }
  const FaultInjectionConfig& config = ActiveFaultConfig();
  if (!config.enabled || !config.site_enabled[static_cast<int>(site)]) {
    return false;
  }
  if (tls_retry_immune > 0 && !config.fail_retries) {
    return false;
  }
  SiteCounters& counters = g_sites[static_cast<int>(site)];
  const uint64_t k = counters.sequence.fetch_add(1, std::memory_order_relaxed);
  bool fire = true;
  if (config.rate < 1.0) {
    const uint64_t key =
        config.seed ^ Mix64((static_cast<uint64_t>(site) + 1) * 0x9E3779B97F4A7C15ULL + k);
    // Map the hash to [0, 1) and compare against the rate; both sides are
    // exact doubles, so the decision is platform-independent.
    const double u =
        static_cast<double>(Mix64(key) >> 11) * (1.0 / 9007199254740992.0);  // 2^53
    fire = u < config.rate;
  }
  if (fire) {
    counters.fired.fetch_add(1, std::memory_order_relaxed);
  }
  return fire;
}

int64_t FaultProbesFired(FaultSite site) {
  return g_sites[static_cast<int>(site)].fired.load(std::memory_order_relaxed);
}

int64_t FaultProbesFiredTotal() {
  int64_t total = 0;
  for (int i = 0; i < kNumFaultSites; ++i) {
    total += g_sites[i].fired.load(std::memory_order_relaxed);
  }
  return total;
}

void ResetFaultCounters() {
  for (int i = 0; i < kNumFaultSites; ++i) {
    g_sites[i].sequence.store(0, std::memory_order_relaxed);
    g_sites[i].fired.store(0, std::memory_order_relaxed);
  }
}

bool FaultPending() { return tls_pending; }

bool ConsumeFaultPending() {
  const bool pending = tls_pending;
  tls_pending = false;
  return pending;
}

ScopedFaultArming::ScopedFaultArming() : saved_(fault_internal::tls_armed) {
  fault_internal::tls_armed = FaultInjectionEnabled();
}

ScopedFaultArming::~ScopedFaultArming() { fault_internal::tls_armed = saved_; }

ScopedFaultRetryImmunity::ScopedFaultRetryImmunity() { ++tls_retry_immune; }

ScopedFaultRetryImmunity::~ScopedFaultRetryImmunity() { --tls_retry_immune; }

ScopedFaultInjection::ScopedFaultInjection(FaultSite site, double rate, uint64_t seed,
                                           bool fail_retries)
    : saved_(ActiveFaultConfig()) {
  PIT_CHECK(rate > 0.0 && rate <= 1.0) << "ScopedFaultInjection rate must be in (0, 1]";
  FaultInjectionConfig config;
  config.enabled = true;
  config.site_enabled[static_cast<int>(site)] = true;
  config.rate = rate;
  config.seed = seed;
  config.fail_retries = fail_retries;
  SetFaultConfig(config);
}

ScopedFaultInjection::ScopedFaultInjection(const FaultInjectionConfig& config)
    : saved_(ActiveFaultConfig()) {
  SetFaultConfig(config);
}

ScopedFaultInjection::~ScopedFaultInjection() { SetFaultConfig(saved_); }

}  // namespace pit
