// Shared-memory parallel loop primitive backing the blocked compute backend.
//
// A lazily-created persistent thread pool executes loops split into contiguous
// static chunks. Determinism contract: chunks are contiguous, ordered ranges
// of the iteration space, so any per-chunk partial results merged in chunk
// order reproduce the sequential order exactly — results are independent of
// the thread count. Nested ParallelFor calls from inside a worker run inline
// (sequentially) instead of deadlocking, so kernels may freely compose.
//
// The worker count defaults to the hardware concurrency and can be overridden
// by the PIT_NUM_THREADS environment variable or SetNumThreads().
#ifndef PIT_COMMON_PARALLEL_FOR_H_
#define PIT_COMMON_PARALLEL_FOR_H_

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

namespace pit {

// Worker-thread count used by ParallelFor. Resolution order: SetNumThreads()
// override, then PIT_NUM_THREADS, then std::thread::hardware_concurrency().
int NumThreads();

// Strict parser behind the PIT_NUM_THREADS resolution: the value must be a
// plain positive decimal integer (no trailing junk, no zero, no negatives —
// a typo'd thread count must fail loudly, not silently fall back to the
// hardware default). Aborts via PIT_CHECK on anything else.
int ParseNumThreadsEnv(const char* value);

// Overrides the worker count at runtime (clamped to >= 1). Intended for tests
// and benchmarks; takes effect for subsequent ParallelFor calls.
void SetNumThreads(int n);

// RAII thread-count override.
class ScopedNumThreads {
 public:
  explicit ScopedNumThreads(int n) : saved_(NumThreads()) { SetNumThreads(n); }
  ~ScopedNumThreads() { SetNumThreads(saved_); }
  ScopedNumThreads(const ScopedNumThreads&) = delete;
  ScopedNumThreads& operator=(const ScopedNumThreads&) = delete;

 private:
  int saved_;
};

// fn(begin, end): process the contiguous range [begin, end).
using RangeFn = std::function<void(int64_t begin, int64_t end)>;
// fn(chunk, begin, end): as RangeFn plus the 0-based chunk index, for loops
// that accumulate into per-chunk buffers merged in chunk order afterwards.
using ChunkFn = std::function<void(int chunk, int64_t begin, int64_t end)>;

// True while the calling thread is already executing inside a ParallelFor
// chunk (nested loops run inline). Exposed so the header-level ParallelFor
// shim can take the serial path without constructing a std::function.
bool ParallelRegionActive();

// Chunk count for an n-iteration loop with the given grain:
// min(NumThreads(), ceil(n / grain)), at least 1. Size per-chunk buffers with
// this and pass the value to ParallelForChunks — passing it (rather than
// having ParallelForChunks recompute it) guarantees the loop never uses more
// chunks than the caller allocated, even if the thread count changes
// concurrently.
int ParallelChunkCount(int64_t n, int64_t grain);

// Out-of-line pool dispatch behind ParallelFor; call ParallelFor instead.
void ParallelForRange(int64_t n, int num_chunks, const RangeFn& fn);

// Splits [0, n) into contiguous chunks and runs them on the pool (the calling
// thread participates). `grain` is the minimum number of iterations worth
// dispatching to a thread; loops smaller than one grain run inline on the
// caller. Blocks until every chunk finished.
//
// Template shim: the serial cases (single chunk, nested call, one worker) run
// the callable directly, so small planned-executor steps dispatch with zero
// heap allocations — only a genuine fan-out pays the std::function wrap.
template <typename Fn>
void ParallelFor(int64_t n, int64_t grain, Fn&& fn) {
  if (n <= 0) {
    return;
  }
  const int num_chunks = ParallelChunkCount(n, grain);
  if (num_chunks <= 1 || ParallelRegionActive()) {
    fn(static_cast<int64_t>(0), n);
    return;
  }
  ParallelForRange(n, num_chunks, RangeFn(std::forward<Fn>(fn)));
}

// As ParallelFor but with explicit chunking: runs exactly `num_chunks`
// contiguous chunks (or a single inline chunk 0 when nested/degenerate) and
// hands the chunk index — always < num_chunks — to the callback. Get
// `num_chunks` from ParallelChunkCount.
void ParallelForChunks(int64_t n, int num_chunks, const ChunkFn& fn);

// fn(begin, end, out): append the hits found in [begin, end) to `out`, in
// ascending order.
using GatherFn = std::function<void(int64_t begin, int64_t end, std::vector<int64_t>* out)>;

// Parallel ordered gather: scans [0, n) in `num_chunks` contiguous chunks,
// each appending to a private vector, and returns the vectors concatenated in
// chunk order — which reproduces the sequential ascending scan exactly, for
// any chunk count. The shared primitive behind the sparsity detector's
// block-row scan and the live-channel/filter scans.
std::vector<int64_t> ParallelOrderedGather(int64_t n, int num_chunks, const GatherFn& fn);

}  // namespace pit

#endif  // PIT_COMMON_PARALLEL_FOR_H_
