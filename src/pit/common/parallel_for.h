// Shared-memory parallel loop primitive backing the blocked compute backend.
//
// A lazily-created persistent thread pool executes loops split into contiguous
// static chunks. Determinism contract: chunks are contiguous, ordered ranges
// of the iteration space, so any per-chunk partial results merged in chunk
// order reproduce the sequential order exactly — results are independent of
// the thread count AND of the chunk count.
//
// The pool is task-capable: several jobs may be in flight at once (the
// wavefront plan scheduler submits independent plan steps as tasks), and a
// worker running a task may itself submit a nested ParallelFor without
// deadlock. Nested submission is governed by a per-thread *width budget*: a
// task dispatched through ParallelTasks runs with an explicit budget of
// nested chunks (the intra-op share of the thread pool granted to that task);
// any other nested ParallelFor call runs inline (sequentially), exactly as
// before. Deadlock-freedom is structural: the submitter of every job drains
// that job's chunk queue itself before waiting, so a job can always complete
// even if no other thread ever helps.
//
// The worker count defaults to the hardware concurrency and can be overridden
// by the PIT_NUM_THREADS environment variable or SetNumThreads().
#ifndef PIT_COMMON_PARALLEL_FOR_H_
#define PIT_COMMON_PARALLEL_FOR_H_

#include <cstdint>
#include <functional>
#include <type_traits>
#include <utility>
#include <vector>

namespace pit {

// Worker-thread count used by ParallelFor. Resolution order: SetNumThreads()
// override, then PIT_NUM_THREADS, then std::thread::hardware_concurrency().
int NumThreads();

// Strict parser behind the PIT_NUM_THREADS resolution: the value must be a
// plain positive decimal integer (no trailing junk, no zero, no negatives —
// a typo'd thread count must fail loudly, not silently fall back to the
// hardware default). Aborts via PIT_CHECK on anything else.
int ParseNumThreadsEnv(const char* value);

// Strict parser behind the ServingEngine's PIT_NUM_STREAMS resolution; same
// contract as ParseNumThreadsEnv (plain positive decimal integer or a loud
// PIT_CHECK abort — a typo'd stream count must never silently serve
// single-stream).
int ParseNumStreamsEnv(const char* value);

namespace env_internal {
// The single out-of-line strict-parse core every positive-integer knob
// funnels through (one death-tested error path for the whole knob surface):
// plain positive decimal in 1..max_value or a loud PIT_CHECK abort naming
// `name`. Call through ParsePositiveEnv<T>, not directly.
int64_t ParsePositiveCore(const char* name, const char* value, int64_t max_value);
}  // namespace env_internal

// The one shared strict positive-integer env parser behind every PIT_* knob
// (thread/stream counts, batching admission, deadlines, watchdog): plain
// positive decimal in 1..max_value or a loud PIT_CHECK abort naming `name` —
// a typo'd knob must fail loudly, never silently fall back to a default the
// operator did not ask for. All widths share the one core error path, so new
// knobs inherit the exact contract (and its death tests) for free.
template <typename T>
T ParsePositiveEnv(const char* name, const char* value, T max_value) {
  static_assert(std::is_integral_v<T> && std::is_signed_v<T> && sizeof(T) <= sizeof(int64_t),
                "positive env knobs are signed integers up to 64 bits");
  return static_cast<T>(
      env_internal::ParsePositiveCore(name, value, static_cast<int64_t>(max_value)));
}

// Count-knob instantiation (historical 1..65536 envelope): the parser behind
// PIT_NUM_THREADS, PIT_NUM_STREAMS, PIT_BATCH_TOKENS, PIT_BATCH_WINDOW and
// PIT_SERVE_QUEUE.
int ParsePositiveIntEnv(const char* name, const char* value);

// Wide-range instantiation for knobs whose natural range exceeds the count
// ceiling (microsecond deadlines and watchdog thresholds).
int64_t ParsePositiveInt64Env(const char* name, const char* value, int64_t max_value);

// Strict parsers behind the ServingEngine's ragged-batching admission knobs:
// PIT_BATCH_TOKENS (token-row budget a packed batch never exceeds) and
// PIT_BATCH_WINDOW (max requests coalesced into one packed forward). Same
// contract as ParseNumThreadsEnv — a typo'd knob must never silently serve
// unbatched.
int ParseBatchTokensEnv(const char* value);
int ParseBatchWindowEnv(const char* value);

// Strict parsers behind the ServingEngine's fault-containment and liveness
// knobs: PIT_SERVE_DEADLINE_US (default per-request latency budget in
// microseconds, 1..86400000000 — one day), PIT_SERVE_QUEUE (bounded
// admission-queue capacity in requests), and PIT_WATCHDOG_US (per-stream
// stall-detection threshold in microseconds, same one-day envelope). Same
// contract as ParseNumThreadsEnv — a typo'd knob must never silently serve
// without the deadline/shedding/supervision the operator asked for.
int64_t ParseServeDeadlineEnv(const char* value);
int ParseServeQueueEnv(const char* value);
int64_t ParseWatchdogUsEnv(const char* value);

// Overrides the worker count at runtime (clamped to >= 1). Intended for tests
// and benchmarks; takes effect for subsequent ParallelFor calls.
void SetNumThreads(int n);

// RAII thread-count override.
class ScopedNumThreads {
 public:
  explicit ScopedNumThreads(int n) : saved_(NumThreads()) { SetNumThreads(n); }
  ~ScopedNumThreads() { SetNumThreads(saved_); }
  ScopedNumThreads(const ScopedNumThreads&) = delete;
  ScopedNumThreads& operator=(const ScopedNumThreads&) = delete;

 private:
  int saved_;
};

// fn(begin, end): process the contiguous range [begin, end).
using RangeFn = std::function<void(int64_t begin, int64_t end)>;
// fn(chunk, begin, end): as RangeFn plus the 0-based chunk index, for loops
// that accumulate into per-chunk buffers merged in chunk order afterwards.
using ChunkFn = std::function<void(int chunk, int64_t begin, int64_t end)>;

// True while the calling thread is already executing inside a ParallelFor
// chunk or a ParallelTasks task (nested loops without a width budget run
// inline). Exposed so the header-level ParallelFor shim can take the serial
// path without constructing a std::function.
bool ParallelRegionActive();

// The calling thread's nested-parallelism width budget: how many chunks a
// nested ParallelFor submitted from inside the current task may fan out to.
// 0 (the default inside plain ParallelFor chunks) means nested calls run
// inline; > 1 only inside tasks dispatched through ParallelTasks.
int ParallelWidthBudget();

// Chunk count for an n-iteration loop with the given grain:
// min(width, ceil(n / grain)), at least 1, where `width` is the calling
// thread's width budget when inside a task and NumThreads() otherwise. Size
// per-chunk buffers with this and pass the value to ParallelForChunks —
// passing it (rather than having ParallelForChunks recompute it) guarantees
// the loop never uses more chunks than the caller allocated, even if the
// thread count changes concurrently.
int ParallelChunkCount(int64_t n, int64_t grain);

// Out-of-line pool dispatch behind ParallelFor; call ParallelFor instead.
void ParallelForRange(int64_t n, int num_chunks, const RangeFn& fn);

// Splits [0, n) into contiguous chunks and runs them on the pool (the calling
// thread participates). `grain` is the minimum number of iterations worth
// dispatching to a thread; loops smaller than one grain run inline on the
// caller. Blocks until every chunk finished.
//
// Template shim: the serial cases (single chunk, nested call without a width
// budget, one worker) run the callable directly, so small planned-executor
// steps dispatch with zero heap allocations — only a genuine fan-out pays the
// std::function wrap.
template <typename Fn>
void ParallelFor(int64_t n, int64_t grain, Fn&& fn) {
  if (n <= 0) {
    return;
  }
  const int num_chunks = ParallelChunkCount(n, grain);
  if (num_chunks <= 1 || (ParallelRegionActive() && ParallelWidthBudget() <= 1)) {
    fn(static_cast<int64_t>(0), n);
    return;
  }
  ParallelForRange(n, num_chunks, RangeFn(std::forward<Fn>(fn)));
}

// As ParallelFor but with explicit chunking: runs exactly `num_chunks`
// contiguous chunks (or a single inline chunk 0 when nested/degenerate) and
// hands the chunk index — always < num_chunks — to the callback. Get
// `num_chunks` from ParallelChunkCount.
void ParallelForChunks(int64_t n, int num_chunks, const ChunkFn& fn);

// Out-of-line pool dispatch behind ParallelTasks; call ParallelTasks instead.
// fn(begin, end) runs tasks [begin, end); each claimed range executes with
// `nested_width` installed as the claiming thread's width budget.
void ParallelTasksRange(int64_t n, int nested_width, const RangeFn& fn);

// Task-parallel region: runs fn(task) for task in [0, n) concurrently on the
// pool, one task per chunk (the calling thread participates). Each task runs
// with a nested-parallelism width budget of `nested_width` chunks, so a task
// may itself call ParallelFor and fan out to its share of the pool — this is
// the inter-op seam the wavefront plan scheduler dispatches through. Blocks
// until every task finished. Tasks must be mutually independent; the order in
// which they execute is unspecified. Serial cases (one task, one worker,
// nested call) run inline with zero heap allocations.
template <typename Fn>
void ParallelTasks(int64_t n, int nested_width, Fn&& fn) {
  if (n <= 0) {
    return;
  }
  if (n == 1 || NumThreads() <= 1 || ParallelRegionActive()) {
    for (int64_t i = 0; i < n; ++i) {
      fn(i);
    }
    return;
  }
  ParallelTasksRange(n, nested_width, RangeFn([&fn](int64_t begin, int64_t end) {
                       for (int64_t i = begin; i < end; ++i) {
                         fn(i);
                       }
                     }));
}

// fn(begin, end, out): append the hits found in [begin, end) to `out`, in
// ascending order.
using GatherFn = std::function<void(int64_t begin, int64_t end, std::vector<int64_t>* out)>;

// Parallel ordered gather: scans [0, n) in `num_chunks` contiguous chunks,
// each appending to a private vector, and returns the vectors concatenated in
// chunk order — which reproduces the sequential ascending scan exactly, for
// any chunk count. The shared primitive behind the sparsity detector's
// block-row scan and the live-channel/filter scans.
std::vector<int64_t> ParallelOrderedGather(int64_t n, int num_chunks, const GatherFn& fn);

}  // namespace pit

#endif  // PIT_COMMON_PARALLEL_FOR_H_
