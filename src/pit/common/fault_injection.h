// Deterministic fault injection for the serving stack's containment ladder.
//
// The library's baseline contract is fail-fast on misuse (check.h), but the
// serving engine additionally promises *graceful degradation* for transient
// data-dependent failures: a plan compile that must be retried, a context
// pool that is exhausted, a batch pack that cannot proceed, a kernel dispatch
// that dies mid-replay. Those paths are unreachable from well-formed inputs
// by construction, so this module makes them reachable on demand: seeded,
// site-keyed probes that "fail" deterministically at a configured rate, so
// tests and the `pitctl chaos` gate can prove the degradation ladder ends in
// a definite per-request ServeStatus — never an abort, never a lost request,
// never divergent bits for requests that still succeed.
//
// Determinism contract: the k-th probe of a site fires iff
// mix(seed, site, k) < rate (a pure function). Probe indices are claimed from
// a per-site atomic sequence, so the *multiset* of fire/no-fire outcomes over
// any N probes is a pure function of (seed, rate, N) — which request observes
// the k-th outcome may vary with thread timing, but every containment
// invariant the chaos harness checks (definite statuses, bitwise-identical
// kOk outputs, counter reconciliation) is independent of that assignment.
//
// Probes only fire inside an *armed* scope (ScopedFaultArming, installed by
// the ServingEngine around its stream workers): a PIT_FAULT sweep over the
// full test suite perturbs serving-engine traffic only, not every plan replay
// in the process. Probes inside a *retry-immune* scope (the engine's
// degradation rungs) are skipped unless the config's test-only fail_retries
// flag is set: env-configured chaos models transient faults, so every rung
// terminates; tests opt into persistent faults to exercise kInternal.
//
// Configure with the strict-parsed PIT_FAULT=site:rate:seed environment knob
// (site: plan_compile | context_acquire | batch_pack | kernel_dispatch |
// stall | all; rate: decimal in (0, 1]; seed: unsigned decimal) or the
// ScopedFaultInjection RAII guard for tests.
//
// The stall site is the liveness counterpart of the failure sites: a fired
// probe makes a stream worker sleep for `stall_us` (a seeded wedge, not an
// error), so watchdog detection and in-flight deadline enforcement become
// provable. Because a stall is a delay rather than a failure, it never enters
// the engine's fault ledger, and "all" spells the four *failure* sites only —
// stall is opt-in by name so latency-oriented chaos never silently rides
// along with failure sweeps.
#ifndef PIT_COMMON_FAULT_INJECTION_H_
#define PIT_COMMON_FAULT_INJECTION_H_

#include <cstdint>

namespace pit {

// The seams a fault can be injected into. Sites are keyed independently: a
// config enables one site (or all), and each site draws from its own
// deterministic probe sequence.
enum class FaultSite : int {
  kPlanCompile = 0,     // building a pooled plan+context set (ServingEngine)
  kContextAcquire = 1,  // acquiring a pooled execution context (ServingEngine)
  kBatchPack = 2,       // packing a ragged batch (ServingEngine)
  kKernelDispatch = 3,  // dispatching a plan step (ExecutionPlan replay)
  kStall = 4,           // seeded sleep inside a stream worker (liveness chaos)
};
inline constexpr int kNumFaultSites = 5;

// Human-readable site name ("plan_compile", ...), for logs and the chaos
// harness.
const char* FaultSiteName(FaultSite site);

struct FaultInjectionConfig {
  bool enabled = false;
  bool site_enabled[kNumFaultSites] = {false, false, false, false, false};
  double rate = 0.0;  // fire probability per probe, in (0, 1] when enabled
  uint64_t seed = 0;
  // Sleep duration of a fired stall probe, microseconds. Long enough by
  // default that the default-tick watchdog provably detects the wedge;
  // tests and chaos cells dial it down to keep wall time bounded.
  int64_t stall_us = 50000;
  // Test-only (not spellable via PIT_FAULT): evaluate probes inside
  // retry-immune scopes too, so a retried operation can fail again and the
  // terminal kInternal rung becomes reachable. Environment-configured chaos
  // keeps retries immune — injected faults model *transient* failures, so
  // every degradation ladder provably terminates in success.
  bool fail_retries = false;
};

// Strict parser behind the PIT_FAULT resolution: exactly "site:rate:seed".
// A typo'd site, a rate outside (0, 1], or trailing junk must fail loudly
// (PIT_CHECK abort), never silently run without the faults the operator
// believes are being injected.
FaultInjectionConfig ParseFaultEnv(const char* value);

// The active config. First call resolves PIT_FAULT; defaults to disabled.
const FaultInjectionConfig& ActiveFaultConfig();

// Installs `config` and resets the probe sequences and fired counters, so a
// test (or chaos cell) observes the deterministic sequence from k = 0.
void SetFaultConfig(const FaultInjectionConfig& config);

// True when any site is enabled — the cheap predicate the engine arms on.
bool FaultInjectionEnabled();

// Draws the next probe for `site`: true = the injected fault fires. False
// when disarmed, disabled, the site is off, or the scope is retry-immune
// (unless fail_retries). Fired probes are counted per site.
bool FaultProbe(FaultSite site);

// Lifetime fired-probe counters since the last SetFaultConfig/reset.
int64_t FaultProbesFired(FaultSite site);
int64_t FaultProbesFiredTotal();
void ResetFaultCounters();

namespace fault_internal {
// Thread-local fast-path flag behind the replay-loop step probe: reading one
// thread-local bool is the entire per-step cost when injection is disarmed.
extern thread_local bool tls_armed;
bool StepProbeSlow();
}  // namespace fault_internal

// Per-step probe for the ExecutionPlan replay loop: when a kernel-dispatch
// fault fires (or one already fired earlier in this forward), the replay must
// stop dispatching steps and return — the engine consumes the pending fault
// and owns the retry/fallback ladder. Near-free when disarmed.
inline bool FaultStepProbe() {
  return fault_internal::tls_armed && fault_internal::StepProbeSlow();
}

// The pending-fault channel between the replay loop and the engine (same
// thread: probes run on the thread that submits plan steps). FaultPending()
// lets later plan replays of the same forward no-op fast; the engine calls
// ConsumeFaultPending() after each dispatch to learn whether the forward was
// aborted (and to clear the flag for the next attempt).
bool FaultPending();
bool ConsumeFaultPending();

// Arms fault probes on the calling thread for the guard's lifetime. The
// ServingEngine installs this inside each stream worker; code outside an
// armed scope (eager oracles, nn-layer forwards, benches) never observes an
// injected fault. Arms only when injection is enabled, so the common case
// stays a no-op.
class ScopedFaultArming {
 public:
  ScopedFaultArming();
  ~ScopedFaultArming();
  ScopedFaultArming(const ScopedFaultArming&) = delete;
  ScopedFaultArming& operator=(const ScopedFaultArming&) = delete;

 private:
  bool saved_;
};

// Marks the calling thread's current operation as a degradation rung (a
// retry or fallback attempt): probes are skipped inside, unless the config's
// fail_retries flag asks for persistent faults. Nestable.
class ScopedFaultRetryImmunity {
 public:
  ScopedFaultRetryImmunity();
  ~ScopedFaultRetryImmunity();
  ScopedFaultRetryImmunity(const ScopedFaultRetryImmunity&) = delete;
  ScopedFaultRetryImmunity& operator=(const ScopedFaultRetryImmunity&) = delete;
};

// RAII config override for tests and the chaos harness: installs a
// single-site (or all-site) config, resets counters, and restores the
// previous config (resetting counters again) on destruction.
class ScopedFaultInjection {
 public:
  ScopedFaultInjection(FaultSite site, double rate, uint64_t seed, bool fail_retries = false);
  explicit ScopedFaultInjection(const FaultInjectionConfig& config);
  ~ScopedFaultInjection();
  ScopedFaultInjection(const ScopedFaultInjection&) = delete;
  ScopedFaultInjection& operator=(const ScopedFaultInjection&) = delete;

 private:
  FaultInjectionConfig saved_;
};

}  // namespace pit

#endif  // PIT_COMMON_FAULT_INJECTION_H_
