// Deterministic random number generation.
//
// All stochastic pieces of the repository (sparsity masks, routing decisions,
// synthetic datasets) draw from this generator so that every test and every
// benchmark is exactly reproducible across runs and machines.
#ifndef PIT_COMMON_RNG_H_
#define PIT_COMMON_RNG_H_

#include <cstdint>

namespace pit {

// SplitMix64-seeded xoshiro256** — small, fast, and good enough statistical
// quality for workload synthesis. Not cryptographic.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull) {
    // SplitMix64 expansion of the seed into the xoshiro state.
    uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9e3779b97f4a7c15ull;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      s = z ^ (z >> 31);
    }
  }

  uint64_t NextU64() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, 1).
  double NextDouble() { return static_cast<double>(NextU64() >> 11) * 0x1.0p-53; }

  // Uniform in [0, n).
  uint64_t NextBelow(uint64_t n) { return n == 0 ? 0 : NextU64() % n; }

  // Uniform integer in [lo, hi] inclusive.
  int64_t NextInt(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(NextBelow(static_cast<uint64_t>(hi - lo + 1)));
  }

  // Uniform float in [lo, hi).
  float NextFloat(float lo = 0.0f, float hi = 1.0f) {
    return lo + static_cast<float>(NextDouble()) * (hi - lo);
  }

  // Bernoulli draw with probability p of true.
  bool NextBool(double p) { return NextDouble() < p; }

  // Standard normal via Box–Muller (one value per call; no caching to keep
  // the generator state trivially serializable).
  float NextGaussian();

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
};

}  // namespace pit

#endif  // PIT_COMMON_RNG_H_
