// Scalar GEMM register-tile kernels. This TU is compiled with the
// auto-vectorizer off (CMakeLists.txt) so the kScalar ISA tier is genuinely
// scalar regardless of -march; see the header for why that matters and why it
// cannot change results.
#include "pit/common/gemm_scalar_kernels.h"

#include <algorithm>

namespace pit::scalar_kernels {
namespace {

// The packed kernel walks its p loop in blocks of this many rows and hints
// the next block's packed A/B lines between blocks. Hints must stay out of
// the inner loop: a prefetch intrinsic inside it makes the compiler spill the
// accumulator tile to the stack (measured ~8x slower). Keep in lockstep with
// the SIMD kernels' constant (simd_kernels.cc).
constexpr int64_t kPrefetchBlockRows = 64;

#if defined(__GNUC__) || defined(__clang__)
#define PIT_PREFETCH(addr) __builtin_prefetch((addr), 0, 1)
#else
#define PIT_PREFETCH(addr) ((void)0)
#endif

// Epilogue store shared by every kernel: bias add then optional ReLU clamp,
// in the exact per-element order of the separate MatMulBiasInto + ReluInto
// passes, so fusing never changes a bit.
inline float Epilogue(float acc, const float* bias, int64_t j, bool relu) {
  float v = bias ? acc + bias[j] : acc;
  if (relu) {
    v = v > 0.0f ? v : 0.0f;
  }
  return v;
}

}  // namespace

void Kernel4x16(const float* a, int64_t lda, const float* b, int64_t ldb, float* c, int64_t ldc,
                int64_t p0, int64_t p1, const float* bias, bool relu) {
  float acc[kMr][kNr];
  for (int64_t r = 0; r < kMr; ++r) {
    for (int64_t j = 0; j < kNr; ++j) {
      acc[r][j] = c[r * ldc + j];
    }
  }
  for (int64_t p = p0; p < p1; ++p) {
    const float* brow = b + p * ldb;
    const float a0 = a[p];
    const float a1 = a[lda + p];
    const float a2 = a[2 * lda + p];
    const float a3 = a[3 * lda + p];
    for (int64_t j = 0; j < kNr; ++j) {
      const float bv = brow[j];
      acc[0][j] += a0 * bv;
      acc[1][j] += a1 * bv;
      acc[2][j] += a2 * bv;
      acc[3][j] += a3 * bv;
    }
  }
  for (int64_t r = 0; r < kMr; ++r) {
    for (int64_t j = 0; j < kNr; ++j) {
      c[r * ldc + j] = Epilogue(acc[r][j], bias, j, relu);
    }
  }
}

void Kernel4x16PackedA(const float* apack, const float* b, int64_t ldb, float* c, int64_t ldc,
                       int64_t rows, const float* bias, bool relu) {
  float acc[kMr][kNr];
  for (int64_t r = 0; r < kMr; ++r) {
    for (int64_t j = 0; j < kNr; ++j) {
      acc[r][j] = c[r * ldc + j];
    }
  }
  for (int64_t pb = 0; pb < rows; pb += kPrefetchBlockRows) {
    const int64_t pe = std::min(rows, pb + kPrefetchBlockRows);
    if (pe < rows) {
      // Hint the head of the next block's packed A run and B rows while this
      // block streams — outside the hot loop so the accumulators stay in
      // registers.
      PIT_PREFETCH(apack + pe * kMr);
      PIT_PREFETCH(apack + pe * kMr + 16);
      PIT_PREFETCH(b + pe * ldb);
    }
    for (int64_t p = pb; p < pe; ++p) {
      const float* ap = apack + p * kMr;
      const float* brow = b + p * ldb;
      const float a0 = ap[0];
      const float a1 = ap[1];
      const float a2 = ap[2];
      const float a3 = ap[3];
      for (int64_t j = 0; j < kNr; ++j) {
        const float bv = brow[j];
        acc[0][j] += a0 * bv;
        acc[1][j] += a1 * bv;
        acc[2][j] += a2 * bv;
        acc[3][j] += a3 * bv;
      }
    }
  }
  for (int64_t r = 0; r < kMr; ++r) {
    for (int64_t j = 0; j < kNr; ++j) {
      c[r * ldc + j] = Epilogue(acc[r][j], bias, j, relu);
    }
  }
}

void KernelEdge(const float* a, int64_t lda, const float* b, int64_t ldb, float* c, int64_t ldc,
                int64_t mr, int64_t nr, int64_t p0, int64_t p1, const float* bias, bool relu) {
  float acc[kMr][kNr];
  for (int64_t r = 0; r < mr; ++r) {
    for (int64_t j = 0; j < nr; ++j) {
      acc[r][j] = c[r * ldc + j];
    }
  }
  for (int64_t p = p0; p < p1; ++p) {
    const float* brow = b + p * ldb;
    for (int64_t r = 0; r < mr; ++r) {
      const float av = a[r * lda + p];
      for (int64_t j = 0; j < nr; ++j) {
        acc[r][j] += av * brow[j];
      }
    }
  }
  for (int64_t r = 0; r < mr; ++r) {
    for (int64_t j = 0; j < nr; ++j) {
      c[r * ldc + j] = Epilogue(acc[r][j], bias, j, relu);
    }
  }
}

}  // namespace pit::scalar_kernels
