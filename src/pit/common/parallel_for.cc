#include "pit/common/parallel_for.h"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <condition_variable>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "pit/common/check.h"

namespace pit {
namespace {

int DefaultNumThreads() {
  if (const char* env = std::getenv("PIT_NUM_THREADS")) {
    return ParseNumThreadsEnv(env);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

std::atomic<int> g_num_threads{0};  // 0 = not yet resolved

// Set while a thread is executing chunks; nested ParallelFor calls from a
// worker (or from the caller while it participates) run inline.
thread_local bool tls_in_parallel = false;

// One loop's shared state. Heap-held via shared_ptr so a worker that wakes
// late for an already-finished job reads only this job's (exhausted) chunk
// counter and never touches a newer job's state.
struct Job {
  const ChunkFn* fn = nullptr;
  int64_t n = 0;
  int64_t per_chunk = 0;
  int num_chunks = 0;
  std::atomic<int> next_chunk{0};
  std::atomic<int> remaining{0};
};

class Pool {
 public:
  static Pool& Get() {
    static Pool* pool = new Pool();  // leaked: workers live for the process
    return *pool;
  }

  void Run(const ChunkFn& fn, int64_t n, int num_chunks, int helper_threads) {
    std::lock_guard<std::mutex> job_lock(job_mu_);  // one loop at a time
    EnsureWorkers(helper_threads);
    auto job = std::make_shared<Job>();
    job->fn = &fn;
    job->n = n;
    job->num_chunks = num_chunks;
    job->per_chunk = (n + num_chunks - 1) / num_chunks;
    job->remaining.store(num_chunks, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lk(mu_);
      job_ = job;
      ++job_version_;
    }
    work_cv_.notify_all();
    Work(*job);  // the caller is a full participant
    {
      std::unique_lock<std::mutex> lk(mu_);
      done_cv_.wait(lk, [&] { return job->remaining.load(std::memory_order_acquire) == 0; });
      job_.reset();
    }
  }

 private:
  Pool() = default;

  void EnsureWorkers(int count) {
    std::lock_guard<std::mutex> lk(mu_);
    while (static_cast<int>(workers_.size()) < count) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  void WorkerLoop() {
    uint64_t seen_version = 0;
    tls_in_parallel = true;  // workers never spawn nested parallel loops
    for (;;) {
      std::shared_ptr<Job> job;
      {
        std::unique_lock<std::mutex> lk(mu_);
        work_cv_.wait(lk, [&] { return job_version_ != seen_version && job_ != nullptr; });
        seen_version = job_version_;
        job = job_;
      }
      Work(*job);
    }
  }

  static void Work(Job& job) {
    const bool was_in_parallel = tls_in_parallel;
    tls_in_parallel = true;
    for (;;) {
      const int c = job.next_chunk.fetch_add(1, std::memory_order_relaxed);
      if (c >= job.num_chunks) {
        break;
      }
      const int64_t begin = static_cast<int64_t>(c) * job.per_chunk;
      const int64_t end = std::min<int64_t>(job.n, begin + job.per_chunk);
      if (begin < end) {
        (*job.fn)(c, begin, end);
      }
      if (job.remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        Pool& pool = Pool::Get();
        { std::lock_guard<std::mutex> lk(pool.mu_); }  // fence vs. the waiter's predicate check
        pool.done_cv_.notify_all();
      }
    }
    tls_in_parallel = was_in_parallel;
  }

  std::mutex job_mu_;  // serialises whole loops
  std::mutex mu_;      // guards job_/job_version_/workers_
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::vector<std::thread> workers_;
  std::shared_ptr<Job> job_;
  uint64_t job_version_ = 0;
};

}  // namespace

int ParseNumThreadsEnv(const char* value) {
  PIT_CHECK(value != nullptr && *value != '\0')
      << "PIT_NUM_THREADS is set but empty; expected a positive integer";
  // Strict decimal: digits only (strtol would silently skip leading
  // whitespace and accept a sign).
  PIT_CHECK(*value >= '0' && *value <= '9')
      << "PIT_NUM_THREADS=\"" << value << "\" is not a plain positive integer";
  errno = 0;
  char* end = nullptr;
  const long v = std::strtol(value, &end, 10);
  PIT_CHECK(end != value && *end == '\0')
      << "PIT_NUM_THREADS=\"" << value << "\" is not an integer";
  PIT_CHECK(errno != ERANGE && v >= 1 && v <= (1 << 16))
      << "PIT_NUM_THREADS=\"" << value << "\" out of range; expected 1.." << (1 << 16);
  return static_cast<int>(v);
}

int NumThreads() {
  int v = g_num_threads.load(std::memory_order_relaxed);
  if (v == 0) {
    v = DefaultNumThreads();
    g_num_threads.store(v, std::memory_order_relaxed);
  }
  return v;
}

void SetNumThreads(int n) { g_num_threads.store(std::max(1, n), std::memory_order_relaxed); }

int ParallelChunkCount(int64_t n, int64_t grain) {
  if (n <= 0) {
    return 1;
  }
  grain = std::max<int64_t>(1, grain);
  const int64_t by_grain = (n + grain - 1) / grain;
  return static_cast<int>(std::clamp<int64_t>(std::min<int64_t>(by_grain, NumThreads()), 1,
                                              1 << 10));
}

void ParallelForChunks(int64_t n, int num_chunks, const ChunkFn& fn) {
  if (n <= 0) {
    return;
  }
  num_chunks = static_cast<int>(std::clamp<int64_t>(num_chunks, 1, n));
  if (num_chunks <= 1 || tls_in_parallel) {
    fn(0, 0, n);
    return;
  }
  Pool::Get().Run(fn, n, num_chunks, num_chunks - 1);
}

bool ParallelRegionActive() { return tls_in_parallel; }

void ParallelForRange(int64_t n, int num_chunks, const RangeFn& fn) {
  ParallelForChunks(n, num_chunks,
                    [&fn](int /*chunk*/, int64_t begin, int64_t end) { fn(begin, end); });
}

std::vector<int64_t> ParallelOrderedGather(int64_t n, int num_chunks, const GatherFn& fn) {
  if (n <= 0) {
    return {};
  }
  num_chunks = static_cast<int>(std::clamp<int64_t>(num_chunks, 1, n));
  std::vector<std::vector<int64_t>> parts(static_cast<size_t>(num_chunks));
  ParallelForChunks(n, num_chunks, [&](int chunk, int64_t begin, int64_t end) {
    fn(begin, end, &parts[static_cast<size_t>(chunk)]);
  });
  size_t total = 0;
  for (const auto& part : parts) {
    total += part.size();
  }
  std::vector<int64_t> out;
  out.reserve(total);
  for (const auto& part : parts) {
    out.insert(out.end(), part.begin(), part.end());
  }
  return out;
}

}  // namespace pit
