#include "pit/common/parallel_for.h"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <condition_variable>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "pit/common/check.h"

namespace pit {
namespace {

int DefaultNumThreads() {
  if (const char* env = std::getenv("PIT_NUM_THREADS")) {
    return ParseNumThreadsEnv(env);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

std::atomic<int> g_num_threads{0};  // 0 = not yet resolved

// Set while a thread is executing chunks; nested ParallelFor calls from a
// worker (or from the caller while it participates) run inline unless the
// enclosing job granted a width budget.
thread_local bool tls_in_parallel = false;
// Nested-fanout budget installed while executing a ParallelTasks task: how
// many chunks a nested ParallelFor from this thread may use. 0/1 = inline.
thread_local int tls_width_budget = 0;

// One job's shared state. A job is either a data-parallel loop (ParallelFor)
// or a task batch (ParallelTasks); both are chunk queues. Heap-held via
// shared_ptr so a worker that picks up an already-finished job reads only
// this job's (exhausted) chunk counter and never touches freed state.
struct Job {
  const ChunkFn* fn = nullptr;
  int64_t n = 0;
  int64_t per_chunk = 0;
  int num_chunks = 0;
  // Width budget installed on the claiming thread while it runs this job's
  // chunks (ParallelTasks tasks); 0 for plain loops (nested calls inline).
  int nested_width = 0;
  std::atomic<int> next_chunk{0};
  std::atomic<int> remaining{0};
};

// Multi-job work-sharing pool. Any thread — external callers and pool workers
// alike — may submit a job; the submitter always participates and fully
// drains its own chunk queue before waiting, so every job can complete even
// if no worker ever helps (this is what makes nested submission from a
// worker deadlock-free: the blocked submitter has already claimed every
// outstanding chunk, and chunks claimed by other threads run to completion
// without ever waiting on this job).
class Pool {
 public:
  static Pool& Get() {
    static Pool* pool = new Pool();  // leaked: workers live for the process
    return *pool;
  }

  void Run(const ChunkFn& fn, int64_t n, int num_chunks, int nested_width) {
    auto job = std::make_shared<Job>();
    job->fn = &fn;
    job->n = n;
    job->num_chunks = num_chunks;
    job->per_chunk = (n + num_chunks - 1) / num_chunks;
    job->nested_width = nested_width;
    job->remaining.store(num_chunks, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lk(mu_);
      // Size the pool to the job's full concurrency demand: its own chunks
      // TIMES the width budget each chunk's nested loops may fan out to —
      // a wavefront of 3 tasks with budget 3 needs up to 9 runnable chunks,
      // not 3 (all capped by the configured thread count).
      const int64_t demand =
          static_cast<int64_t>(num_chunks) * std::max(1, nested_width) - 1;
      EnsureWorkersLocked(static_cast<int>(std::min<int64_t>(demand, NumThreads() - 1)));
      active_.push_back(job);
      ++job_version_;
    }
    work_cv_.notify_all();
    Work(*job);  // the caller is a full participant and drains the queue
    {
      std::unique_lock<std::mutex> lk(mu_);
      // The queue is exhausted (Work returned), so no worker can still claim
      // a chunk: drop the job from the active list and wait out the chunks
      // other threads claimed.
      active_.erase(std::find(active_.begin(), active_.end(), job));
      done_cv_.wait(lk, [&] { return job->remaining.load(std::memory_order_acquire) == 0; });
    }
  }

 private:
  Pool() = default;

  void EnsureWorkersLocked(int count) {
    while (static_cast<int>(workers_.size()) < count) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  // First active job with unclaimed chunks, or nullptr. Caller holds mu_.
  std::shared_ptr<Job> FindClaimableLocked() {
    for (const auto& job : active_) {
      if (job->next_chunk.load(std::memory_order_relaxed) < job->num_chunks) {
        return job;
      }
    }
    return nullptr;
  }

  void WorkerLoop() {
    uint64_t seen_version = 0;
    for (;;) {
      std::shared_ptr<Job> job;
      {
        std::unique_lock<std::mutex> lk(mu_);
        while ((job = FindClaimableLocked()) == nullptr) {
          work_cv_.wait(lk, [&] { return job_version_ != seen_version; });
          seen_version = job_version_;
        }
      }
      Work(*job);
    }
  }

  static void Work(Job& job) {
    const bool was_in_parallel = tls_in_parallel;
    const int saved_budget = tls_width_budget;
    tls_in_parallel = true;
    tls_width_budget = job.nested_width;
    for (;;) {
      const int c = job.next_chunk.fetch_add(1, std::memory_order_relaxed);
      if (c >= job.num_chunks) {
        break;
      }
      const int64_t begin = static_cast<int64_t>(c) * job.per_chunk;
      const int64_t end = std::min<int64_t>(job.n, begin + job.per_chunk);
      if (begin < end) {
        (*job.fn)(c, begin, end);
      }
      if (job.remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        Pool& pool = Pool::Get();
        { std::lock_guard<std::mutex> lk(pool.mu_); }  // fence vs. the waiter's predicate check
        pool.done_cv_.notify_all();
      }
    }
    tls_width_budget = saved_budget;
    tls_in_parallel = was_in_parallel;
  }

  std::mutex mu_;  // guards active_/job_version_/workers_
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::vector<std::thread> workers_;
  std::vector<std::shared_ptr<Job>> active_;  // jobs that may have unclaimed chunks
  uint64_t job_version_ = 0;
};

}  // namespace

// The single strict-parse core behind every positive-integer knob (reached
// through the ParsePositiveEnv<T> template): a typo'd value must fail loudly,
// never silently fall back to a default the operator did not ask for.
namespace env_internal {
int64_t ParsePositiveCore(const char* name, const char* value, int64_t max_value) {
  PIT_CHECK(value != nullptr && *value != '\0')
      << name << " is set but empty; expected a positive integer";
  // Strict decimal: digits only (strtoll would silently skip leading
  // whitespace and accept a sign).
  PIT_CHECK(*value >= '0' && *value <= '9')
      << name << "=\"" << value << "\" is not a plain positive integer";
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(value, &end, 10);
  PIT_CHECK(end != value && *end == '\0') << name << "=\"" << value << "\" is not an integer";
  PIT_CHECK(errno != ERANGE && v >= 1 && v <= max_value)
      << name << "=\"" << value << "\" out of range; expected 1.." << max_value;
  return static_cast<int64_t>(v);
}
}  // namespace env_internal

int ParsePositiveIntEnv(const char* name, const char* value) {
  return ParsePositiveEnv<int>(name, value, 1 << 16);
}

int64_t ParsePositiveInt64Env(const char* name, const char* value, int64_t max_value) {
  return ParsePositiveEnv<int64_t>(name, value, max_value);
}

int ParseNumThreadsEnv(const char* value) {
  return ParsePositiveIntEnv("PIT_NUM_THREADS", value);
}

int ParseNumStreamsEnv(const char* value) {
  return ParsePositiveIntEnv("PIT_NUM_STREAMS", value);
}

int ParseBatchTokensEnv(const char* value) {
  return ParsePositiveIntEnv("PIT_BATCH_TOKENS", value);
}

int ParseBatchWindowEnv(const char* value) {
  return ParsePositiveIntEnv("PIT_BATCH_WINDOW", value);
}

int64_t ParseServeDeadlineEnv(const char* value) {
  // Microsecond deadlines need headroom far past the count-knob ceiling; one
  // day bounds any sane serving deadline while still rejecting overflow junk.
  return ParsePositiveInt64Env("PIT_SERVE_DEADLINE_US", value, 86400000000LL);
}

int ParseServeQueueEnv(const char* value) {
  return ParsePositiveIntEnv("PIT_SERVE_QUEUE", value);
}

int64_t ParseWatchdogUsEnv(const char* value) {
  // Stall-detection thresholds share the deadline knobs' one-day envelope.
  return ParsePositiveEnv<int64_t>("PIT_WATCHDOG_US", value, 86400000000LL);
}

int NumThreads() {
  int v = g_num_threads.load(std::memory_order_relaxed);
  if (v == 0) {
    v = DefaultNumThreads();
    g_num_threads.store(v, std::memory_order_relaxed);
  }
  return v;
}

void SetNumThreads(int n) { g_num_threads.store(std::max(1, n), std::memory_order_relaxed); }

int ParallelChunkCount(int64_t n, int64_t grain) {
  if (n <= 0) {
    return 1;
  }
  grain = std::max<int64_t>(1, grain);
  const int64_t by_grain = (n + grain - 1) / grain;
  const int width = tls_in_parallel ? std::max(1, tls_width_budget) : NumThreads();
  return static_cast<int>(std::clamp<int64_t>(std::min<int64_t>(by_grain, width), 1, 1 << 10));
}

void ParallelForChunks(int64_t n, int num_chunks, const ChunkFn& fn) {
  if (n <= 0) {
    return;
  }
  num_chunks = static_cast<int>(std::clamp<int64_t>(num_chunks, 1, n));
  if (num_chunks <= 1 || (tls_in_parallel && tls_width_budget <= 1)) {
    fn(0, 0, n);
    return;
  }
  Pool::Get().Run(fn, n, num_chunks, /*nested_width=*/0);
}

bool ParallelRegionActive() { return tls_in_parallel; }

int ParallelWidthBudget() { return tls_width_budget; }

void ParallelForRange(int64_t n, int num_chunks, const RangeFn& fn) {
  ParallelForChunks(n, num_chunks,
                    [&fn](int /*chunk*/, int64_t begin, int64_t end) { fn(begin, end); });
}

void ParallelTasksRange(int64_t n, int nested_width, const RangeFn& fn) {
  if (n <= 0) {
    return;
  }
  if (n == 1 || NumThreads() <= 1 || tls_in_parallel) {
    fn(0, n);
    return;
  }
  // One task per chunk: independent tasks have no ordering constraint, so
  // maximal chunking gives the scheduler full claim granularity.
  const int num_chunks = static_cast<int>(std::min<int64_t>(n, 1 << 10));
  const ChunkFn chunk_fn = [&fn](int /*chunk*/, int64_t begin, int64_t end) { fn(begin, end); };
  Pool::Get().Run(chunk_fn, n, num_chunks, std::max(1, nested_width));
}

std::vector<int64_t> ParallelOrderedGather(int64_t n, int num_chunks, const GatherFn& fn) {
  if (n <= 0) {
    return {};
  }
  num_chunks = static_cast<int>(std::clamp<int64_t>(num_chunks, 1, n));
  std::vector<std::vector<int64_t>> parts(static_cast<size_t>(num_chunks));
  ParallelForChunks(n, num_chunks, [&](int chunk, int64_t begin, int64_t end) {
    fn(begin, end, &parts[static_cast<size_t>(chunk)]);
  });
  size_t total = 0;
  for (const auto& part : parts) {
    total += part.size();
  }
  std::vector<int64_t> out;
  out.reserve(total);
  for (const auto& part : parts) {
    out.insert(out.end(), part.begin(), part.end());
  }
  return out;
}

}  // namespace pit
