#include "pit/common/cancellation.h"

#include <chrono>

namespace pit {

int64_t SteadyNowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

namespace liveness_internal {
thread_local std::atomic<uint64_t>* tls_heartbeat = nullptr;
}  // namespace liveness_internal

}  // namespace pit
