#include "pit/workloads/pattern_repeat.h"

#include <algorithm>

namespace pit {

namespace {
// FNV-1a 64-bit.
constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

uint64_t FnvMix(uint64_t h, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xff;
    h *= kFnvPrime;
  }
  return h;
}
}  // namespace

bool PatternRepeatTracker::Observe(uint64_t pattern_hash) {
  ++observed_;
  const bool hit = !seen_.insert(pattern_hash).second;
  if (hit) {
    ++hits_;
  }
  return hit;
}

uint64_t HashSeqLenPattern(const std::vector<int64_t>& lens) {
  std::vector<int64_t> sorted = lens;
  std::sort(sorted.begin(), sorted.end());
  uint64_t h = kFnvOffset;
  for (int64_t l : sorted) {
    h = FnvMix(h, static_cast<uint64_t>(l));
  }
  return h;
}

uint64_t HashMaskPattern(const std::vector<bool>& mask) {
  uint64_t h = kFnvOffset;
  uint64_t word = 0;
  int bits = 0;
  for (bool b : mask) {
    word = (word << 1) | (b ? 1u : 0u);
    if (++bits == 64) {
      h = FnvMix(h, word);
      word = 0;
      bits = 0;
    }
  }
  if (bits > 0) {
    h = FnvMix(h, word);
  }
  return h;
}

}  // namespace pit
