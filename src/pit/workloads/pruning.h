// Sparse-training workload: magnitude-based iterative pruning (Fig. 2d, §5.2).
//
// At every step the pruning algorithm recomputes a block mask over each
// weight matrix from the current magnitudes, so the sparsity *pattern*
// changes continuously even when the *ratio* is held — the property that
// forces PyTorch-S to rebuild its sparse index every batch (Fig. 15).
#ifndef PIT_WORKLOADS_PRUNING_H_
#define PIT_WORKLOADS_PRUNING_H_

#include <cstdint>
#include <vector>

#include "pit/common/rng.h"
#include "pit/tensor/tensor.h"

namespace pit {

struct PruningConfig {
  int64_t block_rows = 32;  // mask granularity (paper: 32x64 and 32x1)
  int64_t block_cols = 64;
  double sparsity = 0.9;    // fraction of blocks pruned
};

// Magnitude pruning: keeps the (1-sparsity) fraction of blocks with the
// largest L1 norm; returns a 0/1 mask shaped like `weights`.
Tensor MagnitudePruneMask(const Tensor& weights, const PruningConfig& config);

// One training step's weight drift: w += noise; models optimizer updates so
// successive MagnitudePruneMask calls yield different patterns.
void PerturbWeights(Tensor* weights, float scale, Rng& rng);

// Fraction of mask blocks that changed between two masks of equal config —
// the pattern-churn statistic behind Fig. 20's low hit ratio.
double MaskChurn(const Tensor& prev_mask, const Tensor& next_mask);

}  // namespace pit

#endif  // PIT_WORKLOADS_PRUNING_H_
