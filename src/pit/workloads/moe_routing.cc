#include "pit/workloads/moe_routing.h"

#include <algorithm>
#include <cmath>

#include "pit/common/check.h"

namespace pit {

std::vector<int> RouteTokens(int64_t num_tokens, const MoeRoutingConfig& config, Rng& rng) {
  PIT_CHECK_GT(config.num_experts, 0);
  // Expert popularity ~ rank^(-imbalance), randomly permuted so the "hot"
  // expert differs across batches (dynamic pattern).
  std::vector<double> weight(static_cast<size_t>(config.num_experts));
  for (int e = 0; e < config.num_experts; ++e) {
    weight[static_cast<size_t>(e)] = std::pow(static_cast<double>(e + 1), -config.imbalance);
  }
  for (size_t i = weight.size(); i > 1; --i) {
    std::swap(weight[i - 1], weight[rng.NextBelow(i)]);
  }
  std::vector<double> cdf(weight.size());
  double total = 0.0;
  for (size_t i = 0; i < weight.size(); ++i) {
    total += weight[i];
    cdf[i] = total;
  }
  std::vector<int> routing(static_cast<size_t>(num_tokens));
  for (auto& r : routing) {
    const double x = rng.NextDouble() * total;
    r = static_cast<int>(std::lower_bound(cdf.begin(), cdf.end(), x) - cdf.begin());
    r = std::min(r, config.num_experts - 1);
  }
  return routing;
}

std::vector<int64_t> ExpertLoads(const std::vector<int>& routing, int num_experts) {
  std::vector<int64_t> loads(static_cast<size_t>(num_experts), 0);
  for (int e : routing) {
    PIT_CHECK_GE(e, 0);
    PIT_CHECK_LT(e, num_experts);
    loads[static_cast<size_t>(e)]++;
  }
  return loads;
}

int64_t MaxLoad(const std::vector<int64_t>& loads) {
  int64_t m = 0;
  for (int64_t l : loads) {
    m = std::max(m, l);
  }
  return m;
}

double CapacityPaddingWaste(const std::vector<int64_t>& loads) {
  if (loads.empty()) {
    return 0.0;
  }
  const int64_t padded = static_cast<int64_t>(loads.size()) * MaxLoad(loads);
  if (padded == 0) {
    return 0.0;
  }
  int64_t total = 0;
  for (int64_t l : loads) {
    total += l;
  }
  return 1.0 - static_cast<double>(total) / static_cast<double>(padded);
}

}  // namespace pit
