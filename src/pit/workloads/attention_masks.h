// Dynamic sparse attention masks (Fig. 2a; Longformer §5.1, Museformer §5.1).
//
// Both models attend over a structured sparse mask whose *positions* depend
// on the input (which tokens are global / which bars are summarized), making
// the pattern dynamic. Functional masks are materialized for tests/examples;
// the density functions are closed-form for the large e2e sweeps.
#ifndef PIT_WORKLOADS_ATTENTION_MASKS_H_
#define PIT_WORKLOADS_ATTENTION_MASKS_H_

#include <cstdint>
#include <vector>

#include "pit/common/rng.h"
#include "pit/tensor/tensor.h"

namespace pit {

struct LongformerMaskConfig {
  int64_t seq_len = 2048;
  int64_t window = 256;       // sliding local attention window (one-sided: w/2)
  int64_t num_global = 16;    // input-dependent global tokens
};

// 0/1 mask [seq, seq]: sliding window plus full rows+columns for the global
// tokens, whose positions are sampled per input (the dynamic part).
Tensor LongformerMask(const LongformerMaskConfig& config, Rng& rng);
// Fraction of nonzero entries, closed form (matches the materialized mask).
double LongformerMaskDensity(const LongformerMaskConfig& config);

struct MuseformerMaskConfig {
  int64_t seq_len = 4096;
  int64_t bar_len = 128;       // tokens per music bar
  int64_t fine_bars = 4;       // recent bars attended at token granularity
  double coarse_fraction = 0.05;  // summary tokens per earlier bar
};

// Museformer's fine-and-coarse attention: causal fine attention within the
// most recent bars plus coarse attention to sampled summary tokens of all
// earlier bars.
Tensor MuseformerMask(const MuseformerMaskConfig& config, Rng& rng);
double MuseformerMaskDensity(const MuseformerMaskConfig& config);

// Generic ReLU-style activation sparsity: [rows, cols] with each element
// nonzero with probability (1 - sparsity). The paper measures 95–99.9 % for
// OPT/Switch/T5 activations (§2.1).
Tensor ActivationSparseTensor(int64_t rows, int64_t cols, double sparsity, Rng& rng);

// ---- Ragged-batch block-diagonal mask (batched serving, Fig. 2c) ----------
//
// Requests of lengths `lens` packed row-concatenated into a
// [padded_tokens, hidden] tile attend through a [padded_tokens, padded_tokens]
// 0/1 mask that confines attention to each request's own diagonal block, so
// requests never attend across batch boundaries. `request_masks` (empty, or
// one entry per request: a [len, len] mask or nullptr for full attention)
// embeds each request's own attention mask inside its block, reproducing the
// exact mask the request would carry served 1:1. Padding rows
// [sum(lens), padded_tokens) attend only to themselves: their softmax rows
// stay finite, so the (discarded) padding outputs can never poison the real
// rows through NaN propagation in later layers.
//
// The Into form fills a caller-owned [padded_tokens, padded_tokens] view in
// place — the serving engine rebuilds the mask into reused staging per batch.
void BlockDiagonalMaskInto(const std::vector<int64_t>& lens,
                           const std::vector<const Tensor*>& request_masks, TensorView mask);
Tensor BlockDiagonalMask(const std::vector<int64_t>& lens, int64_t padded_tokens,
                         const std::vector<const Tensor*>& request_masks = {});

}  // namespace pit

#endif  // PIT_WORKLOADS_ATTENTION_MASKS_H_
