// Mixture-of-Experts routing workload (Fig. 2b, §5.1).
//
// A gating function assigns each token to one expert; real routers produce
// *uneven* loads, which is exactly what makes capacity-padded baselines
// (Tutel/DeepSpeed) wasteful and sparse execution (MegaBlocks, PIT) win.
// Imbalance is synthesized with a Dirichlet-like power-law expert popularity.
#ifndef PIT_WORKLOADS_MOE_ROUTING_H_
#define PIT_WORKLOADS_MOE_ROUTING_H_

#include <cstdint>
#include <vector>

#include "pit/common/rng.h"

namespace pit {

struct MoeRoutingConfig {
  int num_experts = 64;
  // Power-law exponent of expert popularity: 0 = uniform; ~0.8 reproduces the
  // skew reported for Switch-Transformer top-1 routing on MNLI.
  double imbalance = 0.8;
};

// Routes `num_tokens` tokens; returns expert id per token.
std::vector<int> RouteTokens(int64_t num_tokens, const MoeRoutingConfig& config, Rng& rng);

// Tokens per expert.
std::vector<int64_t> ExpertLoads(const std::vector<int>& routing, int num_experts);

int64_t MaxLoad(const std::vector<int64_t>& loads);

// Fraction of capacity-padded compute that is padding when every expert is
// padded to the max load (the Tutel/DeepSpeed BatchMatmul strategy).
double CapacityPaddingWaste(const std::vector<int64_t>& loads);

}  // namespace pit

#endif  // PIT_WORKLOADS_MOE_ROUTING_H_
