#include "pit/workloads/attention_masks.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "pit/common/check.h"

namespace pit {

Tensor LongformerMask(const LongformerMaskConfig& config, Rng& rng) {
  const int64_t n = config.seq_len;
  const int64_t half = config.window / 2;
  Tensor mask({n, n});
  // Sliding window.
  for (int64_t i = 0; i < n; ++i) {
    const int64_t lo = std::max<int64_t>(0, i - half);
    const int64_t hi = std::min<int64_t>(n - 1, i + half);
    for (int64_t j = lo; j <= hi; ++j) {
      mask.At(i, j) = 1.0f;
    }
  }
  // Input-dependent global tokens: full row + column.
  std::set<int64_t> globals;
  while (static_cast<int64_t>(globals.size()) < std::min(config.num_global, n)) {
    globals.insert(static_cast<int64_t>(rng.NextBelow(static_cast<uint64_t>(n))));
  }
  for (int64_t g : globals) {
    for (int64_t j = 0; j < n; ++j) {
      mask.At(g, j) = 1.0f;
      mask.At(j, g) = 1.0f;
    }
  }
  return mask;
}

double LongformerMaskDensity(const LongformerMaskConfig& config) {
  const double n = static_cast<double>(config.seq_len);
  const double w = static_cast<double>(config.window) + 1.0;  // window + self
  const double g = static_cast<double>(config.num_global);
  // window band + global rows and columns (minus double counting, minus the
  // band overlap — second-order, ignored for small g/n and w/n).
  const double band = std::min(1.0, w / n);
  const double global = 2.0 * g / n - (g / n) * (g / n);
  return std::min(1.0, band + global - band * global);
}

Tensor MuseformerMask(const MuseformerMaskConfig& config, Rng& rng) {
  const int64_t n = config.seq_len;
  const int64_t bar = config.bar_len;
  Tensor mask({n, n});
  const int64_t fine_span = config.fine_bars * bar;
  // Coarse summary tokens: sample per bar.
  std::vector<std::vector<int64_t>> summaries(static_cast<size_t>((n + bar - 1) / bar));
  const int64_t per_bar =
      std::max<int64_t>(1, static_cast<int64_t>(std::llround(config.coarse_fraction *
                                                             static_cast<double>(bar))));
  for (size_t b = 0; b < summaries.size(); ++b) {
    std::set<int64_t> picks;
    const int64_t start = static_cast<int64_t>(b) * bar;
    const int64_t len = std::min(bar, n - start);
    while (static_cast<int64_t>(picks.size()) < std::min(per_bar, len)) {
      picks.insert(start + static_cast<int64_t>(rng.NextBelow(static_cast<uint64_t>(len))));
    }
    summaries[b].assign(picks.begin(), picks.end());
  }
  for (int64_t i = 0; i < n; ++i) {
    // Fine causal attention within the recent bars.
    const int64_t lo = std::max<int64_t>(0, i - fine_span);
    for (int64_t j = lo; j <= i; ++j) {
      mask.At(i, j) = 1.0f;
    }
    // Coarse attention to summary tokens of all earlier bars.
    const int64_t my_bar = i / bar;
    for (int64_t b = 0; b < my_bar; ++b) {
      for (int64_t s : summaries[static_cast<size_t>(b)]) {
        if (s <= i) {
          mask.At(i, s) = 1.0f;
        }
      }
    }
  }
  return mask;
}

double MuseformerMaskDensity(const MuseformerMaskConfig& config) {
  const double n = static_cast<double>(config.seq_len);
  const double fine = static_cast<double>(config.fine_bars * config.bar_len);
  // Average fine coverage per row ~ min(fine, i); integrate: fine*(n-fine/2)/n^2
  const double fine_frac = fine >= n ? 0.5 : fine * (n - fine / 2.0) / (n * n);
  const double coarse_frac = config.coarse_fraction * 0.5;  // causal half
  return std::min(1.0, fine_frac + coarse_frac);
}

Tensor ActivationSparseTensor(int64_t rows, int64_t cols, double sparsity, Rng& rng) {
  return Tensor::RandomSparse({rows, cols}, sparsity, rng);
}

void BlockDiagonalMaskInto(const std::vector<int64_t>& lens,
                           const std::vector<const Tensor*>& request_masks, TensorView mask) {
  PIT_CHECK_EQ(mask.rank(), 2);
  PIT_CHECK_EQ(mask.dim(0), mask.dim(1));
  const int64_t padded = mask.dim(0);
  PIT_CHECK(request_masks.empty() || request_masks.size() == lens.size())
      << "request_masks must be empty or one entry per request";
  int64_t sum = 0;
  for (int64_t l : lens) {
    PIT_CHECK_GE(l, 1);
    sum += l;
  }
  PIT_CHECK_LE(sum, padded) << "packed rows exceed the padded mask size";
  std::fill(mask.data(), mask.data() + mask.size(), 0.0f);
  int64_t off = 0;
  for (size_t r = 0; r < lens.size(); ++r) {
    const int64_t len = lens[r];
    const Tensor* own = request_masks.empty() ? nullptr : request_masks[r];
    if (own != nullptr) {
      PIT_CHECK(own->rank() == 2 && own->dim(0) == len && own->dim(1) == len)
          << "request mask must be [len, len]";
      for (int64_t i = 0; i < len; ++i) {
        const float* srow = own->data() + i * len;
        float* drow = mask.data() + (off + i) * padded + off;
        for (int64_t j = 0; j < len; ++j) {
          drow[j] = srow[j] != 0.0f ? 1.0f : 0.0f;
        }
      }
    } else {
      for (int64_t i = 0; i < len; ++i) {
        std::fill_n(mask.data() + (off + i) * padded + off, len, 1.0f);
      }
    }
    off += len;
  }
  // Padding rows self-attend so every softmax row has a live column: the
  // padding outputs stay finite by construction instead of leaning on the
  // softmax kernel's fully-masked-row special case.
  for (int64_t i = sum; i < padded; ++i) {
    mask.data()[i * padded + i] = 1.0f;
  }
}

Tensor BlockDiagonalMask(const std::vector<int64_t>& lens, int64_t padded_tokens,
                         const std::vector<const Tensor*>& request_masks) {
  PIT_CHECK_GE(padded_tokens, 0);
  Tensor mask({padded_tokens, padded_tokens});
  BlockDiagonalMaskInto(lens, request_masks, mask);
  return mask;
}

}  // namespace pit
