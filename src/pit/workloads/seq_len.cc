#include "pit/workloads/seq_len.h"

#include <algorithm>
#include <cmath>

#include "pit/common/check.h"

namespace pit {

SeqLenDistribution DatasetSeqLens(const std::string& dataset) {
  // (mean, sigma, max): rough published token statistics. GLUE single-sentence
  // tasks are short; pair tasks medium; document datasets long.
  struct Row {
    const char* name;
    double mean, sigma;
    int64_t max_len;
  };
  static const Row kRows[] = {
      {"mnli", 39, 0.45, 128},  {"mrpc", 53, 0.30, 128},    {"cola", 11, 0.35, 64},
      {"rte", 64, 0.50, 256},   {"qqp", 30, 0.40, 128},     {"sst2", 25, 0.55, 64},
      {"wnli", 37, 0.35, 128},  {"qnli", 50, 0.45, 256},    {"stsb", 30, 0.40, 128},
      {"imdb", 300, 0.60, 512}, {"xscience", 450, 0.45, 512}, {"news", 600, 0.55, 1024},
      {"alpaca", 160, 0.70, 512}, {"arxiv", 3000, 0.50, 4096},
  };
  for (const Row& r : kRows) {
    if (dataset == r.name) {
      return SeqLenDistribution{r.name, r.mean, r.sigma, 4, r.max_len};
    }
  }
  PIT_CHECK(false) << "unknown dataset: " << dataset;
  return {};
}

std::vector<std::string> BertDatasets() {
  return {"mnli", "mrpc", "cola", "rte",  "qqp",  "sst2",
          "wnli", "qnli", "stsb", "imdb", "xscience", "news"};
}

std::vector<int64_t> SampleBatchLens(const SeqLenDistribution& dist, int64_t batch, Rng& rng) {
  std::vector<int64_t> lens;
  lens.reserve(static_cast<size_t>(batch));
  const double mu = std::log(dist.mean) - 0.5 * dist.sigma * dist.sigma;
  for (int64_t i = 0; i < batch; ++i) {
    const double x = std::exp(mu + dist.sigma * rng.NextGaussian());
    lens.push_back(std::clamp<int64_t>(static_cast<int64_t>(std::llround(x)), dist.min_len,
                                       dist.max_len));
  }
  return lens;
}

int64_t SumLens(const std::vector<int64_t>& lens) {
  int64_t s = 0;
  for (int64_t l : lens) {
    s += l;
  }
  return s;
}

int64_t MaxLen(const std::vector<int64_t>& lens) {
  int64_t m = 0;
  for (int64_t l : lens) {
    m = std::max(m, l);
  }
  return m;
}

double PaddingWaste(const std::vector<int64_t>& lens) {
  if (lens.empty()) {
    return 0.0;
  }
  const int64_t padded = static_cast<int64_t>(lens.size()) * MaxLen(lens);
  return padded == 0 ? 0.0 : 1.0 - static_cast<double>(SumLens(lens)) / static_cast<double>(padded);
}

int64_t BucketTokensPow2(int64_t tokens, int64_t min_bucket) {
  PIT_CHECK_GE(tokens, 1);
  PIT_CHECK_GE(min_bucket, 1);
  int64_t bucket = 1;
  while (bucket < min_bucket || bucket < tokens) {
    bucket <<= 1;
  }
  return bucket;
}

int64_t BucketTokensStride(int64_t tokens, int64_t stride) {
  PIT_CHECK_GE(tokens, 1);
  PIT_CHECK_GE(stride, 1);
  return (tokens + stride - 1) / stride * stride;
}

std::vector<std::vector<bool>> TokenMask(const std::vector<int64_t>& lens, int64_t max_len) {
  std::vector<std::vector<bool>> mask;
  mask.reserve(lens.size());
  for (int64_t l : lens) {
    std::vector<bool> row(static_cast<size_t>(max_len), false);
    for (int64_t i = 0; i < std::min(l, max_len); ++i) {
      row[static_cast<size_t>(i)] = true;
    }
    mask.push_back(std::move(row));
  }
  return mask;
}

}  // namespace pit
