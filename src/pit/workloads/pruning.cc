#include "pit/workloads/pruning.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "pit/common/check.h"

namespace pit {

Tensor MagnitudePruneMask(const Tensor& weights, const PruningConfig& config) {
  PIT_CHECK_EQ(weights.rank(), 2);
  const int64_t rows = weights.dim(0), cols = weights.dim(1);
  const int64_t br = config.block_rows, bc = config.block_cols;
  const int64_t grid_r = (rows + br - 1) / br;
  const int64_t grid_c = (cols + bc - 1) / bc;
  // Block L1 norms.
  std::vector<float> norms(static_cast<size_t>(grid_r * grid_c), 0.0f);
  for (int64_t r = 0; r < rows; ++r) {
    for (int64_t c = 0; c < cols; ++c) {
      norms[static_cast<size_t>((r / br) * grid_c + (c / bc))] += std::fabs(weights.At(r, c));
    }
  }
  // Keep the top (1-sparsity) fraction.
  const int64_t keep = static_cast<int64_t>(
      std::llround((1.0 - config.sparsity) * static_cast<double>(grid_r * grid_c)));
  std::vector<int64_t> order(norms.size());
  std::iota(order.begin(), order.end(), 0);
  std::nth_element(order.begin(), order.begin() + std::min<int64_t>(keep, static_cast<int64_t>(order.size())),
                   order.end(), [&](int64_t a, int64_t b) {
                     return norms[static_cast<size_t>(a)] > norms[static_cast<size_t>(b)];
                   });
  std::vector<bool> live(norms.size(), false);
  for (int64_t i = 0; i < std::min<int64_t>(keep, static_cast<int64_t>(order.size())); ++i) {
    live[static_cast<size_t>(order[static_cast<size_t>(i)])] = true;
  }
  Tensor mask({rows, cols});
  for (int64_t r = 0; r < rows; ++r) {
    for (int64_t c = 0; c < cols; ++c) {
      if (live[static_cast<size_t>((r / br) * grid_c + (c / bc))]) {
        mask.At(r, c) = 1.0f;
      }
    }
  }
  return mask;
}

void PerturbWeights(Tensor* weights, float scale, Rng& rng) {
  PIT_CHECK(weights != nullptr);
  for (int64_t i = 0; i < weights->size(); ++i) {
    (*weights)[i] += scale * rng.NextGaussian();
  }
}

double MaskChurn(const Tensor& prev_mask, const Tensor& next_mask) {
  PIT_CHECK(prev_mask.shape() == next_mask.shape());
  int64_t diff = 0;
  for (int64_t i = 0; i < prev_mask.size(); ++i) {
    if ((prev_mask[i] != 0.0f) != (next_mask[i] != 0.0f)) {
      ++diff;
    }
  }
  return static_cast<double>(diff) / static_cast<double>(prev_mask.size());
}

}  // namespace pit
