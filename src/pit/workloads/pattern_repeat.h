// Sparsity-pattern repetition study (Fig. 20, §5.6).
//
// Tests the alternative design of memoizing compiled kernels per observed
// sparsity pattern: how often does the exact pattern of a batch recur? The
// paper finds ~0.4 % hit ratio for sequence-length patterns and ~0.1 % for
// ReLU masks — invalidating compile-and-cache for dynamic sparsity.
#ifndef PIT_WORKLOADS_PATTERN_REPEAT_H_
#define PIT_WORKLOADS_PATTERN_REPEAT_H_

#include <cstdint>
#include <unordered_set>
#include <vector>

namespace pit {

// Streaming tracker of pattern recurrence: feed a hash per batch, read the
// cumulative hit ratio at any point.
class PatternRepeatTracker {
 public:
  // Returns true if this pattern hash was seen before (a "hit").
  bool Observe(uint64_t pattern_hash);

  int64_t observed() const { return observed_; }
  int64_t hits() const { return hits_; }
  double HitRatio() const {
    return observed_ == 0 ? 0.0 : static_cast<double>(hits_) / static_cast<double>(observed_);
  }

 private:
  std::unordered_set<uint64_t> seen_;
  int64_t observed_ = 0;
  int64_t hits_ = 0;
};

// Order-insensitive hash of a batch's sequence lengths (a kernel compiled for
// a multiset of lengths is reusable under permutation).
uint64_t HashSeqLenPattern(const std::vector<int64_t>& lens);

// Hash of a boolean mask (ReLU-style sparsity pattern).
uint64_t HashMaskPattern(const std::vector<bool>& mask);

}  // namespace pit

#endif  // PIT_WORKLOADS_PATTERN_REPEAT_H_
