// Sequence-length workload synthesis (dynamic sparsity from padding, Fig. 2c).
//
// The e2e experiments consume only the *length statistics* of each dataset —
// the padding waste is fully determined by the distribution of lengths within
// a batch. Parameters below approximate the published token-length statistics
// of each dataset (GLUE tasks are short, IMDB/Multi-News are long documents).
#ifndef PIT_WORKLOADS_SEQ_LEN_H_
#define PIT_WORKLOADS_SEQ_LEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "pit/common/rng.h"

namespace pit {

struct SeqLenDistribution {
  std::string name;
  double mean = 64;     // mean token length
  double sigma = 0.5;   // lognormal shape
  int64_t min_len = 4;
  int64_t max_len = 512;  // model context / padding target
};

// Named distributions for the paper's datasets (Fig. 11, Fig. 19):
// mnli, mrpc, cola, rte, qqp, sst2, wnli, qnli, stsb, imdb, xscience, news,
// plus "alpaca" (OPT, Fig. 10/14) and "arxiv" (Longformer docs).
SeqLenDistribution DatasetSeqLens(const std::string& dataset);
// All 12 BERT evaluation datasets in the paper's Fig. 11 order.
std::vector<std::string> BertDatasets();

// Samples a batch of lengths.
std::vector<int64_t> SampleBatchLens(const SeqLenDistribution& dist, int64_t batch, Rng& rng);

int64_t SumLens(const std::vector<int64_t>& lens);
int64_t MaxLen(const std::vector<int64_t>& lens);
// Fraction of the padded batch that is padding: 1 - sum / (batch * max).
double PaddingWaste(const std::vector<int64_t>& lens);

// ---- Sum-token bucket policies for batched serving plans -------------------
//
// Plans are shape-specialized, so serving mixed-length traffic 1:1 keys a
// plan (and pins an arena) per distinct token count. Batched serving instead
// pads each packed batch's sum-token count up to a coarse bucket grid: plan
// pool cardinality drops from O(distinct lengths) to O(log max) (power-of-two
// policy) or O(max / stride) (fixed-stride policy), at the cost of computing
// the padding rows.
//
// Next power of two >= tokens, floored at min_bucket (itself rounded up to a
// power of two). tokens must be >= 1.
int64_t BucketTokensPow2(int64_t tokens, int64_t min_bucket = 16);
// tokens rounded up to the next multiple of stride. tokens, stride >= 1.
int64_t BucketTokensStride(int64_t tokens, int64_t stride);

// A 0/1 token mask [batch, max_len] for functional tests.
std::vector<std::vector<bool>> TokenMask(const std::vector<int64_t>& lens, int64_t max_len);

}  // namespace pit

#endif  // PIT_WORKLOADS_SEQ_LEN_H_
