// Baseline sparse-matmul execution strategies.
//
// Each engine re-implements the execution strategy of one system the paper
// compares against, on the same tensor substrate and priced by the same cost
// model, so that PIT-vs-baseline comparisons vary only the strategy:
//   * DenseEngine        — cuBLAS-style dense matmul (ignores sparsity)
//   * CusparseEngine     — CSR conversion + fine-grained per-nonzero SpMM
//   * SputnikEngine      — CSR, vector-row kernel (Gale et al., SC'20)
//   * TritonBlockEngine  — OpenAI/Triton 32x32 block-sparse + block index
//   * SpartaEngine       — AOT-specialised kernel (OSDI'22): best aligned
//                          execution but minutes-scale compile per pattern
//   * PitEngine          — this paper: Algorithm-1 selection + micro-tiles
// Engines expose both a Price() (simulated CostBreakdown for a pattern) and a
// functional Execute() whose numerics tests compare against dense reference.
#ifndef PIT_BASELINES_ENGINES_H_
#define PIT_BASELINES_ENGINES_H_

#include <memory>
#include <string>
#include <vector>

#include "pit/core/compiler.h"
#include "pit/gpusim/cost_model.h"
#include "pit/sparse/coverage.h"
#include "pit/sparse/csr.h"
#include "pit/tensor/tensor.h"

namespace pit {

struct EnginePrice {
  CostBreakdown cost;            // runtime cost (per invocation)
  double aot_compile_us = 0.0;   // ahead-of-time cost (SparTA), reported apart
  double wasted_fraction = 0.0;  // zeros covered by executed compute
};

class SparseMatmulEngine {
 public:
  virtual ~SparseMatmulEngine() = default;
  virtual std::string name() const = 0;
  // Simulated cost of C[m,n] = A[m,k] * B[k,n], sparse A with `pattern`.
  // `include_convert` toggles whether per-invocation format conversion /
  // index construction is charged (dynamic sparsity) or not (static, Fig.16).
  virtual EnginePrice Price(const CostModel& model, const SparsityPattern& pattern, int64_t m,
                            int64_t k, int64_t n, bool include_convert) const = 0;
  // Functional execution (exact numerics).
  virtual Tensor Execute(const Tensor& a, const Tensor& b) const = 0;
};

class DenseEngine : public SparseMatmulEngine {
 public:
  std::string name() const override { return "cuBLAS(dense)"; }
  EnginePrice Price(const CostModel& model, const SparsityPattern& pattern, int64_t m, int64_t k,
                    int64_t n, bool include_convert) const override;
  Tensor Execute(const Tensor& a, const Tensor& b) const override;
};

class CusparseEngine : public SparseMatmulEngine {
 public:
  std::string name() const override { return "cuSPARSE"; }
  EnginePrice Price(const CostModel& model, const SparsityPattern& pattern, int64_t m, int64_t k,
                    int64_t n, bool include_convert) const override;
  Tensor Execute(const Tensor& a, const Tensor& b) const override;
};

class SputnikEngine : public SparseMatmulEngine {
 public:
  std::string name() const override { return "Sputnik"; }
  EnginePrice Price(const CostModel& model, const SparsityPattern& pattern, int64_t m, int64_t k,
                    int64_t n, bool include_convert) const override;
  Tensor Execute(const Tensor& a, const Tensor& b) const override;
};

class TritonBlockEngine : public SparseMatmulEngine {
 public:
  explicit TritonBlockEngine(int64_t block = 32) : block_(block) {}
  std::string name() const override { return "OpenAI-BlockSparse"; }
  EnginePrice Price(const CostModel& model, const SparsityPattern& pattern, int64_t m, int64_t k,
                    int64_t n, bool include_convert) const override;
  Tensor Execute(const Tensor& a, const Tensor& b) const override;

 private:
  int64_t block_;
};

class SpartaEngine : public SparseMatmulEngine {
 public:
  std::string name() const override { return "SparTA"; }
  EnginePrice Price(const CostModel& model, const SparsityPattern& pattern, int64_t m, int64_t k,
                    int64_t n, bool include_convert) const override;
  Tensor Execute(const Tensor& a, const Tensor& b) const override;
};

class PitEngine : public SparseMatmulEngine {
 public:
  // Optional fixed rule (for ablations); by default runs Algorithm 1.
  std::string name() const override { return "PIT"; }
  EnginePrice Price(const CostModel& model, const SparsityPattern& pattern, int64_t m, int64_t k,
                    int64_t n, bool include_convert) const override;
  Tensor Execute(const Tensor& a, const Tensor& b) const override;
};

// All engines, in the paper's Fig. 16 ordering.
std::vector<std::unique_ptr<SparseMatmulEngine>> MakeAllEngines();

}  // namespace pit

#endif  // PIT_BASELINES_ENGINES_H_
