#include "pit/baselines/engines.h"

#include <algorithm>
#include <cmath>

#include "pit/common/check.h"
#include "pit/core/sparse_kernel.h"
#include "pit/core/sparsity_detector.h"
#include "pit/tensor/ops.h"

namespace pit {

namespace {

// Expected nonzero elements of A under the pattern.
int64_t ExpectedNnz(const SparsityPattern& pattern) {
  return static_cast<int64_t>(std::llround((1.0 - pattern.ElementSparsity()) *
                                           static_cast<double>(pattern.rows() * pattern.cols())));
}

// CSR build cost shared by cuSPARSE/Sputnik: a dense scan per pass (nnz
// count, prefix sum, compaction), per-element predicate/position bookkeeping
// (dense2csr runs ~10 G elem/s), plus scattered writes of (col_idx, value).
double CsrConvertCost(const CostModel& model, int64_t elems, int64_t nnz) {
  const double passes = 3.0 * model.MemoryTime(elems * model.ElemBytes());
  const double per_elem = static_cast<double>(elems) * 0.0001;
  const double prefix = 2.0 * model.MemoryTime(elems / 8);
  const double scatter = model.ScatteredMemoryTime(nnz * 12, 12);
  return passes + per_elem + prefix + scatter + 4.0 * model.device().launch_overhead_us;
}

}  // namespace

// ---------------------------------------------------------------- Dense
EnginePrice DenseEngine::Price(const CostModel& model, const SparsityPattern& pattern, int64_t m,
                               int64_t k, int64_t n, bool include_convert) const {
  EnginePrice price;
  const TileShape tile{64, 64, 64};
  price.cost = model.DenseMatmul(m, k, n, tile);
  price.wasted_fraction = pattern.ElementSparsity();
  return price;
}

Tensor DenseEngine::Execute(const Tensor& a, const Tensor& b) const { return MatMul(a, b); }

// ---------------------------------------------------------------- cuSPARSE
EnginePrice CusparseEngine::Price(const CostModel& model, const SparsityPattern& pattern,
                                  int64_t m, int64_t k, int64_t n, bool include_convert) const {
  EnginePrice price;
  const int64_t nnz = ExpectedNnz(pattern);
  if (include_convert) {
    price.cost.convert_us = CsrConvertCost(model, m * k, nnz);
  }
  // Fine-grained SpMM: every nonzero touches a full row of B with poor reuse.
  const double flop_us = model.FineGrainedFlopCost(2 * nnz * n);
  const double b_traffic_us =
      model.MemoryTime(static_cast<int64_t>(0.25 * static_cast<double>(nnz) *
                                            static_cast<double>(n) *
                                            static_cast<double>(model.ElemBytes())));
  price.cost.compute_us = std::max(flop_us, b_traffic_us);
  price.cost.launch_us = model.device().launch_overhead_us;
  price.wasted_fraction = 0.0;  // computes exactly the nonzeros
  return price;
}

Tensor CusparseEngine::Execute(const Tensor& a, const Tensor& b) const {
  return CsrMatrix::FromDense(a).SpMM(b);
}

// ---------------------------------------------------------------- Sputnik
EnginePrice SputnikEngine::Price(const CostModel& model, const SparsityPattern& pattern,
                                 int64_t m, int64_t k, int64_t n, bool include_convert) const {
  EnginePrice price;
  const int64_t nnz = ExpectedNnz(pattern);
  if (include_convert) {
    price.cost.convert_us = CsrConvertCost(model, m * k, nnz);
  }
  // Vector-row kernel (SC'20): subwarp per row, vectorized loads of B keep
  // reuse much higher than scalar CSR. ~10% of peak on unstructured patterns.
  double peak = model.device().fp32_flops_per_sm_us * model.device().num_sms;
  if (model.precision() == Precision::kFp16) {
    peak *= model.device().fp16_multiplier;
  }
  const double flop_us = static_cast<double>(2 * nnz * n) / (peak * 0.10);
  const double b_traffic_us =
      model.MemoryTime(static_cast<int64_t>(0.05 * static_cast<double>(nnz) *
                                            static_cast<double>(n) *
                                            static_cast<double>(model.ElemBytes())));
  price.cost.compute_us = std::max(flop_us, b_traffic_us);
  price.cost.launch_us = model.device().launch_overhead_us;
  price.wasted_fraction = 0.0;
  return price;
}

Tensor SputnikEngine::Execute(const Tensor& a, const Tensor& b) const {
  return CsrMatrix::FromDense(a).SpMM(b);
}

// ---------------------------------------------------------------- Triton
EnginePrice TritonBlockEngine::Price(const CostModel& model, const SparsityPattern& pattern,
                                     int64_t m, int64_t k, int64_t n,
                                     bool include_convert) const {
  EnginePrice price;
  // Covered 32x32 blocks of A; each contributes a [block, block] x [block, n
  // tile] dense MAC. Anything finer than 32x32 is padded up — the waste the
  // paper calls out for OPT's 1x32 activation sparsity.
  const MicroTileShape block{block_, block_};
  const double p = pattern.NonZeroProb(block);
  const int64_t grid_m = (m + block_ - 1) / block_;
  const int64_t grid_k = (k + block_ - 1) / block_;
  const int64_t nnz_blocks = static_cast<int64_t>(std::llround(
      p * static_cast<double>(grid_m * grid_k)));
  const TileShape tile{block_, block_, 64};
  const int64_t n_tiles = (n + tile.n - 1) / tile.n;
  price.cost.compute_us = model.WaveLatency(nnz_blocks * n_tiles, model.MatmulTileCost(tile));
  price.cost.launch_us = model.device().launch_overhead_us;
  if (include_convert) {
    // Triton's block index is built ordered on host/device (Fig. 18).
    price.cost.index_us = SparsityDetector::OrderedDetectCostUs(
        model, m * k, std::max<int64_t>(nnz_blocks, 1));
  }
  const double covered = p;  // fraction of A area executed
  const double nz = 1.0 - pattern.ElementSparsity();
  price.wasted_fraction = covered > 0.0 ? std::clamp(1.0 - nz / covered, 0.0, 1.0) : 0.0;
  return price;
}

Tensor TritonBlockEngine::Execute(const Tensor& a, const Tensor& b) const {
  return BsrMatrix::FromDense(a, block_, block_).SpMM(b);
}

// ---------------------------------------------------------------- SparTA
EnginePrice SpartaEngine::Price(const CostModel& model, const SparsityPattern& pattern, int64_t m,
                                int64_t k, int64_t n, bool include_convert) const {
  EnginePrice price;
  // SparTA specializes a kernel per (static) pattern: condensed execution
  // close to PIT's coverage, but with a fixed 32x32x32 tile, extra per-tile
  // data-rearrangement (no SRead piggyback), and a minutes-scale AOT compile,
  // which is what disqualifies it for dynamic sparsity (Fig. 3b).
  const TileShape tile{32, 32, 32};
  const PitRule rule = MakeRuleForSparseA(tile, MatmulAxis::kK, Layout::kRowMajor);
  PlanOptions opts;
  opts.sread_overhead = 0.25;
  opts.include_index_build = false;  // index baked into the specialized kernel
  const PitMatmulPlan plan = PlanSparseMatmul(model, rule, m, k, n, pattern, opts);
  price.cost = plan.cost;
  price.wasted_fraction = WastedComputationFraction(pattern, rule.micro_tile);
  price.aot_compile_us = 500.0 * 1e6;  // 400–600 s compile (§2.2, Fig. 3b)
  if (include_convert) {
    // Under dynamic sparsity the compile lands on the critical path.
    price.cost.convert_us = price.aot_compile_us;
  }
  return price;
}

Tensor SpartaEngine::Execute(const Tensor& a, const Tensor& b) const {
  // Functionally the specialized kernel computes the exact masked product.
  return PitKGatherMatmul(a, b, /*block_m=*/32);
}

// ---------------------------------------------------------------- PIT
EnginePrice PitEngine::Price(const CostModel& model, const SparsityPattern& pattern, int64_t m,
                             int64_t k, int64_t n, bool include_convert) const {
  EnginePrice price;
  TileDatabase db = TileDatabase::BuildDefault(model);
  SelectionOptions opts;
  opts.plan.include_index_build = include_convert;
  const SelectionResult sel = SelectKernel(model, db, {&pattern}, m, k, n, opts);
  price.cost = sel.best.cost;
  price.wasted_fraction = sel.best.fallback_dense
                              ? pattern.ElementSparsity()
                              : WastedComputationFraction(pattern, sel.best.rule.micro_tile);
  return price;
}

Tensor PitEngine::Execute(const Tensor& a, const Tensor& b) const {
  PitCompiler compiler(V100());
  return compiler.SparseMatmul(a, b).output;
}

std::vector<std::unique_ptr<SparseMatmulEngine>> MakeAllEngines() {
  std::vector<std::unique_ptr<SparseMatmulEngine>> engines;
  engines.push_back(std::make_unique<CusparseEngine>());
  engines.push_back(std::make_unique<SputnikEngine>());
  engines.push_back(std::make_unique<TritonBlockEngine>());
  engines.push_back(std::make_unique<SpartaEngine>());
  engines.push_back(std::make_unique<PitEngine>());
  return engines;
}

}  // namespace pit
