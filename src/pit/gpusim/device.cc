#include "pit/gpusim/device.h"

namespace pit {

DeviceSpec V100() {
  DeviceSpec d;
  d.name = "V100";
  d.num_sms = 80;
  d.fp32_flops_per_sm_us = 196e3;  // 15.7 TFLOPS fp32 total
  d.fp16_multiplier = 2.0;
  d.tensor_core_multiplier = 8.0;  // 125 TFLOPS fp16 tensor core
  d.mem_bw_bytes_us = 0.9e6;       // 900 GB/s HBM2
  d.launch_overhead_us = 5.0;
  d.transaction_bytes = 32;
  return d;
}

DeviceSpec A100() {
  DeviceSpec d;
  d.name = "A100";
  d.num_sms = 108;
  d.fp32_flops_per_sm_us = 180e3;  // 19.5 TFLOPS fp32 total
  d.fp16_multiplier = 2.0;
  d.tensor_core_multiplier = 16.0;  // 312 TFLOPS fp16 tensor core
  d.mem_bw_bytes_us = 2.0e6;        // ~2 TB/s HBM2e
  d.launch_overhead_us = 4.0;
  d.transaction_bytes = 32;
  return d;
}

int64_t MinMicroTileElems(const DeviceSpec& dev, Precision p) {
  return dev.transaction_bytes / BytesPerElement(p);
}

}  // namespace pit
