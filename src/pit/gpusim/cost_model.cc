#include "pit/gpusim/cost_model.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "pit/common/check.h"

namespace pit {

std::string TileShape::ToString() const {
  std::ostringstream os;
  os << "[" << m << "," << k << "]x[" << k << "," << n << "]";
  return os.str();
}

CostBreakdown& CostBreakdown::operator+=(const CostBreakdown& o) {
  compute_us += o.compute_us;
  memory_us += o.memory_us;
  launch_us += o.launch_us;
  convert_us += o.convert_us;
  index_us += o.index_us;
  return *this;
}

double CostModel::TileEfficiency(const TileShape& tile, bool tensor_core) const {
  PIT_CHECK_GT(tile.m, 0);
  PIT_CHECK_GT(tile.n, 0);
  // Data-reuse term: the tile's arithmetic intensity (FLOPs per byte of
  // A/B traffic) against the machine balance. For an [m,k]x[k,n] tile the
  // intensity is 2*m*n / ((m+n) * elem_bytes) — independent of k.
  const double elem_bytes = static_cast<double>(ElemBytes());
  const double intensity =
      2.0 * static_cast<double>(tile.m) * static_cast<double>(tile.n) /
      (static_cast<double>(tile.m + tile.n) * elem_bytes);
  double balance = dev_.BalanceFlopsPerByte();
  if (precision_ == Precision::kFp16) {
    balance *= dev_.fp16_multiplier;
  }
  if (tensor_core) {
    balance *= dev_.tensor_core_multiplier;
  }
  const double reuse = intensity / (intensity + balance);
  // Occupancy term: small output blocks under-fill the SM's warps.
  const double mn = static_cast<double>(tile.m) * static_cast<double>(tile.n);
  const double occupancy = mn / (mn + 128.0);
  return reuse * occupancy;
}

double CostModel::MatmulTileCost(const TileShape& tile, bool tensor_core) const {
  PIT_CHECK_GT(tile.k, 0) << "tile reduction depth must be concrete";
  double peak = dev_.fp32_flops_per_sm_us;
  if (precision_ == Precision::kFp16) {
    peak *= dev_.fp16_multiplier;
  }
  if (tensor_core) {
    peak *= dev_.tensor_core_multiplier;
  }
  const double flops = 2.0 * static_cast<double>(tile.m) * static_cast<double>(tile.n) *
                       static_cast<double>(tile.k);
  const double eff = TileEfficiency(tile, tensor_core);
  return flops / (peak * eff);
}

double CostModel::WaveLatency(int64_t num_tiles, double tile_cost_us) const {
  if (num_tiles <= 0) {
    return 0.0;
  }
  const int64_t waves = (num_tiles + dev_.num_sms - 1) / dev_.num_sms;
  return static_cast<double>(waves) * tile_cost_us;
}

CostBreakdown CostModel::DenseMatmul(int64_t m, int64_t k, int64_t n, const TileShape& tile,
                                     bool tensor_core) const {
  // Count k-steps as separate tile instances (same total FLOPs, finer wave
  // accounting) so dense and sparse executions quantize identically.
  const int64_t tiles_m = (m + tile.m - 1) / tile.m;
  const int64_t tiles_n = (n + tile.n - 1) / tile.n;
  const int64_t tiles_k = (k + tile.k - 1) / tile.k;
  CostBreakdown c;
  c.compute_us = WaveLatency(tiles_m * tiles_n * tiles_k, MatmulTileCost(tile, tensor_core));
  c.launch_us = dev_.launch_overhead_us;
  return c;
}

CostBreakdown CostModel::SparseMatmul(int64_t num_exec_tiles, int64_t k, const TileShape& tile,
                                      double gather_overhead, bool tensor_core) const {
  TileShape full = tile;
  full.k = k;
  CostBreakdown c;
  const double per_tile = MatmulTileCost(full, tensor_core) * (1.0 + gather_overhead);
  c.compute_us = WaveLatency(num_exec_tiles, per_tile);
  c.launch_us = dev_.launch_overhead_us;
  return c;
}

double CostModel::ScatteredMemoryTime(int64_t bytes, int64_t granularity_bytes) const {
  PIT_CHECK_GT(granularity_bytes, 0);
  // Each access still pays a full transaction; below-transaction granularity
  // wastes the difference.
  const double waste =
      std::max(1.0, static_cast<double>(dev_.transaction_bytes) /
                        static_cast<double>(granularity_bytes));
  return MemoryTime(static_cast<int64_t>(static_cast<double>(bytes) * waste));
}

double CostModel::FineGrainedFlopCost(int64_t flops) const {
  // Irregular per-nonzero gathers run far from peak; ~8% of device peak is in
  // line with measured cuSPARSE CSR SpMM efficiency on unstructured patterns.
  double peak = dev_.fp32_flops_per_sm_us * dev_.num_sms;
  if (precision_ == Precision::kFp16) {
    peak *= dev_.fp16_multiplier;
  }
  return static_cast<double>(flops) / (peak * 0.08);
}

namespace {
constexpr WmmaShape kWmmaShapes[] = {{16, 16, 16}, {32, 8, 16}, {8, 32, 16}};
}

const WmmaShape* WmmaShapes(int* count) {
  *count = 3;
  return kWmmaShapes;
}

bool WmmaCompatible(const TileShape& tile) {
  int n = 0;
  const WmmaShape* shapes = WmmaShapes(&n);
  for (int i = 0; i < n; ++i) {
    const WmmaShape& w = shapes[i];
    if (tile.m % w.m == 0 && tile.n % w.n == 0 && (tile.k == 0 || tile.k % w.k == 0)) {
      return true;
    }
  }
  return false;
}

}  // namespace pit
