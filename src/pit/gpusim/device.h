// Analytical GPU device model.
//
// The paper evaluates on NVIDIA V100 and A100. This repository substitutes an
// analytical execution model for the physical device (see DESIGN.md §2): a
// kernel is a set of tiles scheduled in waves over the SMs; each tile's time
// follows a roofline with a tile-shape-dependent efficiency factor. The model
// is deterministic, so every figure regenerates identically on any machine.
#ifndef PIT_GPUSIM_DEVICE_H_
#define PIT_GPUSIM_DEVICE_H_

#include <cstdint>
#include <string>

namespace pit {

enum class Precision { kFp32, kFp16 };

inline int64_t BytesPerElement(Precision p) { return p == Precision::kFp32 ? 4 : 2; }
inline const char* PrecisionName(Precision p) { return p == Precision::kFp32 ? "fp32" : "fp16"; }

// Static description of an accelerator. Units: time in microseconds, so
// throughputs are FLOPs/us and bytes/us.
struct DeviceSpec {
  std::string name;
  int num_sms = 80;
  // Peak fp32 FLOPs per SM per microsecond (CUDA cores).
  double fp32_flops_per_sm_us = 196e3;
  // fp16 throughput multiplier on CUDA cores (half2 math).
  double fp16_multiplier = 2.0;
  // Additional multiplier when a kernel can use tensor cores (wmma/mma).
  double tensor_core_multiplier = 8.0;
  // Global memory bandwidth in bytes per microsecond.
  double mem_bw_bytes_us = 0.9e6;
  // Fixed kernel-launch overhead in microseconds.
  double launch_overhead_us = 5.0;
  // Global-memory read/write transaction granularity in bytes (CUDA: 32 B).
  int transaction_bytes = 32;

  // Machine balance in FLOPs per byte at fp32 — the roofline ridge point.
  double BalanceFlopsPerByte() const {
    return fp32_flops_per_sm_us * num_sms / mem_bw_bytes_us;
  }
};

// Specs follow the public datasheets (V100-SXM2 32GB, A100-SXM4 80GB).
DeviceSpec V100();
DeviceSpec A100();

// Smallest micro-tile (elements along the contiguous axis) that saturates one
// memory transaction: 32 B / elem_size, i.e. 1x8 fp32 or 1x16 fp16 (§3.1).
int64_t MinMicroTileElems(const DeviceSpec& dev, Precision p);

}  // namespace pit

#endif  // PIT_GPUSIM_DEVICE_H_
