// Tile-level roofline cost model.
//
// Every execution strategy in the repository — PIT's micro-tile kernels and
// all baselines — is priced by this model on identical terms: a kernel is
// `num_tiles` instances of a dense computation tile scheduled in waves across
// the SMs, plus launch overhead and any format-conversion / index-construction
// cost the strategy incurs. This mirrors how the paper reasons about the
// tiling dilemma (Fig. 1, Fig. 3a): tile efficiency vs coverage waste.
#ifndef PIT_GPUSIM_COST_MODEL_H_
#define PIT_GPUSIM_COST_MODEL_H_

#include <cstdint>
#include <string>

#include "pit/gpusim/device.h"

namespace pit {

// A dense matmul computation tile: C[m,n] += A[m,k] * B[k,n] processed with
// an output block of m x n and a reduction depth k (k = 0 means "full
// reduction extent decided by the problem").
struct TileShape {
  int64_t m = 32;
  int64_t k = 32;
  int64_t n = 32;

  bool operator==(const TileShape&) const = default;
  std::string ToString() const;
};

// Decomposition of a kernel's simulated latency, all in microseconds.
struct CostBreakdown {
  double compute_us = 0.0;  // tile math, waves over SMs
  double memory_us = 0.0;   // extra global traffic not hidden by compute
  double launch_us = 0.0;   // kernel launch(es)
  double convert_us = 0.0;  // sparse-format conversion (CSR build, padding...)
  double index_us = 0.0;    // sparsity-index construction

  double Total() const { return compute_us + memory_us + launch_us + convert_us + index_us; }
  CostBreakdown& operator+=(const CostBreakdown& o);
};

class CostModel {
 public:
  explicit CostModel(DeviceSpec dev, Precision precision = Precision::kFp32)
      : dev_(std::move(dev)), precision_(precision) {}

  const DeviceSpec& device() const { return dev_; }
  Precision precision() const { return precision_; }

  // Fraction of an SM's peak throughput a dense tile of this shape achieves.
  // Combines the tile's arithmetic intensity against the machine balance
  // (data-reuse term) with an occupancy term penalising small tiles — the
  // two effects behind the paper's Fig. 3a dilemma.
  double TileEfficiency(const TileShape& tile, bool tensor_core = false) const;

  // Simulated execution time of ONE dense tile on one SM (microseconds).
  double MatmulTileCost(const TileShape& tile, bool tensor_core = false) const;

  // Wave-scheduled latency of `num_tiles` tile instances (no launch cost).
  double WaveLatency(int64_t num_tiles, double tile_cost_us) const;

  // Dense matmul C[m,n] = A[m,k] * B[k,n] with the given tile.
  CostBreakdown DenseMatmul(int64_t m, int64_t k, int64_t n, const TileShape& tile,
                            bool tensor_core = false) const;

  // Sparse matmul where only `num_exec_tiles` of the output tiles execute
  // (the rest were proven all-zero). `gather_overhead` inflates each tile's
  // cost for strategies that gather scattered data (PIT's SRead/SWrite piggy-
  // backs on the shared-memory load, so for PIT this is a few percent).
  CostBreakdown SparseMatmul(int64_t num_exec_tiles, int64_t k, const TileShape& tile,
                             double gather_overhead = 0.0, bool tensor_core = false) const;

  // Time to stream `bytes` through global memory at full bandwidth.
  double MemoryTime(int64_t bytes) const { return static_cast<double>(bytes) / dev_.mem_bw_bytes_us; }

  // Time to stream `bytes` when accesses are scattered at `granularity_bytes`
  // (< transaction size wastes transaction bandwidth).
  double ScatteredMemoryTime(int64_t bytes, int64_t granularity_bytes) const;

  // Per-nonzero cost of a fine-grained (element-granularity) sparse kernel,
  // e.g. cuSPARSE CSR SpMM. Dominated by irregular gathers.
  double FineGrainedFlopCost(int64_t flops) const;

  int64_t ElemBytes() const { return BytesPerElement(precision_); }

 private:
  DeviceSpec dev_;
  Precision precision_;
};

// The three wmma fragment shapes supported in half precision (§5.3): m-n-k.
struct WmmaShape {
  int64_t m, n, k;
};
const WmmaShape* WmmaShapes(int* count);
// True if a dense tile can be assembled from whole wmma fragments.
bool WmmaCompatible(const TileShape& tile);

}  // namespace pit

#endif  // PIT_GPUSIM_COST_MODEL_H_
