#include "pit/core/sread_swrite.h"

#include <algorithm>
#include <cstring>

#include "pit/common/check.h"

namespace pit {

Tensor SReadRows(const Tensor& src, std::span<const int64_t> row_ids) {
  PIT_CHECK_EQ(src.rank(), 2);
  const int64_t cols = src.dim(1);
  Tensor out({static_cast<int64_t>(row_ids.size()), cols});
  for (size_t i = 0; i < row_ids.size(); ++i) {
    const int64_t r = row_ids[i];
    PIT_CHECK_GE(r, 0);
    PIT_CHECK_LT(r, src.dim(0));
    std::memcpy(out.data() + static_cast<int64_t>(i) * cols, src.data() + r * cols,
                static_cast<size_t>(cols) * sizeof(float));
  }
  return out;
}

Tensor SReadCols(const Tensor& src, std::span<const int64_t> col_ids) {
  PIT_CHECK_EQ(src.rank(), 2);
  const int64_t rows = src.dim(0), cols = src.dim(1);
  Tensor out({rows, static_cast<int64_t>(col_ids.size())});
  for (int64_t r = 0; r < rows; ++r) {
    const float* srow = src.data() + r * cols;
    float* drow = out.data() + r * static_cast<int64_t>(col_ids.size());
    for (size_t i = 0; i < col_ids.size(); ++i) {
      const int64_t c = col_ids[i];
      PIT_CHECK_GE(c, 0);
      PIT_CHECK_LT(c, cols);
      drow[i] = srow[c];
    }
  }
  return out;
}

void SWriteRows(const Tensor& packed, std::span<const int64_t> row_ids, Tensor* dst) {
  PIT_CHECK(dst != nullptr);
  PIT_CHECK_EQ(packed.rank(), 2);
  PIT_CHECK_EQ(dst->rank(), 2);
  PIT_CHECK_EQ(packed.dim(0), static_cast<int64_t>(row_ids.size()));
  PIT_CHECK_EQ(packed.dim(1), dst->dim(1));
  const int64_t cols = dst->dim(1);
  for (size_t i = 0; i < row_ids.size(); ++i) {
    const int64_t r = row_ids[i];
    PIT_CHECK_GE(r, 0);
    PIT_CHECK_LT(r, dst->dim(0));
    std::memcpy(dst->data() + r * cols, packed.data() + static_cast<int64_t>(i) * cols,
                static_cast<size_t>(cols) * sizeof(float));
  }
}

void SWriteColsAdd(const Tensor& packed, std::span<const int64_t> col_ids, Tensor* dst) {
  PIT_CHECK(dst != nullptr);
  PIT_CHECK_EQ(packed.rank(), 2);
  PIT_CHECK_EQ(dst->rank(), 2);
  PIT_CHECK_EQ(packed.dim(0), dst->dim(0));
  PIT_CHECK_EQ(packed.dim(1), static_cast<int64_t>(col_ids.size()));
  for (int64_t r = 0; r < dst->dim(0); ++r) {
    const float* srow = packed.data() + r * packed.dim(1);
    float* drow = dst->data() + r * dst->dim(1);
    for (size_t i = 0; i < col_ids.size(); ++i) {
      drow[col_ids[i]] += srow[i];
    }
  }
}

Tensor SReadMicroTiles(const Tensor& src, const MicroTileIndex& index) {
  PIT_CHECK_EQ(src.rank(), 2);
  const auto& mt = index.micro_tile;
  const int64_t rows = src.dim(0), cols = src.dim(1);
  Tensor out({index.NumNonZero() * mt.rows, mt.cols});
  for (int64_t i = 0; i < index.NumNonZero(); ++i) {
    const int64_t br = index.BlockRowOf(index.offsets[static_cast<size_t>(i)]);
    const int64_t bc = index.BlockColOf(index.offsets[static_cast<size_t>(i)]);
    for (int64_t r = 0; r < mt.rows; ++r) {
      const int64_t sr = br * mt.rows + r;
      for (int64_t c = 0; c < mt.cols; ++c) {
        const int64_t sc = bc * mt.cols + c;
        const float v = (sr < rows && sc < cols) ? src.At(sr, sc) : 0.0f;
        out.At(i * mt.rows + r, c) = v;
      }
    }
  }
  return out;
}

void SWriteMicroTiles(const Tensor& packed, const MicroTileIndex& index, Tensor* dst) {
  PIT_CHECK(dst != nullptr);
  PIT_CHECK_EQ(dst->rank(), 2);
  const auto& mt = index.micro_tile;
  PIT_CHECK_EQ(packed.dim(0), index.NumNonZero() * mt.rows);
  PIT_CHECK_EQ(packed.dim(1), mt.cols);
  const int64_t rows = dst->dim(0), cols = dst->dim(1);
  for (int64_t i = 0; i < index.NumNonZero(); ++i) {
    const int64_t br = index.BlockRowOf(index.offsets[static_cast<size_t>(i)]);
    const int64_t bc = index.BlockColOf(index.offsets[static_cast<size_t>(i)]);
    for (int64_t r = 0; r < mt.rows; ++r) {
      const int64_t dr = br * mt.rows + r;
      if (dr >= rows) {
        continue;
      }
      for (int64_t c = 0; c < mt.cols; ++c) {
        const int64_t dc = bc * mt.cols + c;
        if (dc >= cols) {
          continue;
        }
        dst->At(dr, dc) = packed.At(i * mt.rows + r, c);
      }
    }
  }
}

}  // namespace pit
