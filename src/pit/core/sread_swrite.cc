#include "pit/core/sread_swrite.h"

#include <algorithm>
#include <cstring>

#include "pit/common/backend.h"
#include "pit/common/check.h"
#include "pit/common/parallel_for.h"
#include "pit/common/simd_kernels.h"

namespace pit {

namespace {

// Bytes worth moving per dispatched chunk; below this the loops run inline.
constexpr int64_t kCopyGrainBytes = 1 << 16;

int64_t RowGrain(int64_t cols) {
  return std::max<int64_t>(1, kCopyGrainBytes / std::max<int64_t>(1, cols * 4));
}

// Copies beyond this take memcpy's bulk (ERMS) path; below it the vector
// copy avoids the call and size-dispatch overhead that dominates short
// gather rows. Both paths move bits unchanged.
constexpr int64_t kSimdCopyMaxElems = 1024;

inline const simd::RowKernels* GatherRowKernels() {
  return UseSimd() ? simd::RowKernelsFor(ActiveIsa()) : nullptr;
}

inline void CopyRowSpan(const simd::RowKernels* rk, const float* src, float* dst, int64_t n) {
  if (rk != nullptr && n <= kSimdCopyMaxElems) {
    rk->copy(src, dst, n);
  } else {
    std::memcpy(dst, src, static_cast<size_t>(n) * sizeof(float));
  }
}

}  // namespace

Tensor SReadRows(ConstTensorView src, std::span<const int64_t> row_ids) {
  PIT_CHECK_EQ(src.rank(), 2);
  const int64_t cols = src.dim(1);
  const int64_t n = static_cast<int64_t>(row_ids.size());
  Tensor out({n, cols});
  // Row-chunk gather; each output row is owned by exactly one chunk.
  const simd::RowKernels* rk = GatherRowKernels();
  ParallelFor(n, GrainOrSerial(n, RowGrain(cols)), [&](int64_t i0, int64_t i1) {
    for (int64_t i = i0; i < i1; ++i) {
      const int64_t r = row_ids[static_cast<size_t>(i)];
      PIT_CHECK_GE(r, 0);
      PIT_CHECK_LT(r, src.dim(0));
      CopyRowSpan(rk, src.data() + r * cols, out.data() + i * cols, cols);
    }
  });
  return out;
}

Tensor SReadRows(const Tensor& src, std::span<const int64_t> row_ids) {
  return SReadRows(ConstTensorView(src), row_ids);
}

Tensor SReadCols(ConstTensorView src, std::span<const int64_t> col_ids) {
  PIT_CHECK_EQ(src.rank(), 2);
  const int64_t rows = src.dim(0), cols = src.dim(1);
  const int64_t n = static_cast<int64_t>(col_ids.size());
  for (int64_t c : col_ids) {
    PIT_CHECK_GE(c, 0);
    PIT_CHECK_LT(c, cols);
  }
  Tensor out({rows, n});
  ParallelFor(rows, GrainOrSerial(rows, RowGrain(n)), [&](int64_t r0, int64_t r1) {
    for (int64_t r = r0; r < r1; ++r) {
      const float* srow = src.data() + r * cols;
      float* drow = out.data() + r * n;
      for (int64_t i = 0; i < n; ++i) {
        drow[i] = srow[col_ids[static_cast<size_t>(i)]];
      }
    }
  });
  return out;
}

Tensor SReadCols(const Tensor& src, std::span<const int64_t> col_ids) {
  return SReadCols(ConstTensorView(src), col_ids);
}

void SWriteRows(ConstTensorView packed, std::span<const int64_t> row_ids, TensorView dst) {
  PIT_CHECK_EQ(packed.rank(), 2);
  PIT_CHECK_EQ(dst.rank(), 2);
  PIT_CHECK_EQ(packed.dim(0), static_cast<int64_t>(row_ids.size()));
  PIT_CHECK_EQ(packed.dim(1), dst.dim(1));
  const int64_t cols = dst.dim(1);
  // row_ids are distinct (they come from a micro-tile index), so the scatter
  // targets are disjoint and the chunks race-free.
  const int64_t n_ids = static_cast<int64_t>(row_ids.size());
  const simd::RowKernels* rk = GatherRowKernels();
  ParallelFor(n_ids, GrainOrSerial(n_ids, RowGrain(cols)), [&](int64_t i0, int64_t i1) {
    for (int64_t i = i0; i < i1; ++i) {
      const int64_t r = row_ids[static_cast<size_t>(i)];
      PIT_CHECK_GE(r, 0);
      PIT_CHECK_LT(r, dst.dim(0));
      CopyRowSpan(rk, packed.data() + i * cols, dst.data() + r * cols, cols);
    }
  });
}

void SWriteRows(const Tensor& packed, std::span<const int64_t> row_ids, Tensor* dst) {
  PIT_CHECK(dst != nullptr);
  SWriteRows(ConstTensorView(packed), row_ids, TensorView(*dst));
}

void SReadRowsInto(ConstTensorView src, std::span<const int64_t> row_ids, TensorView dst,
                   int64_t dst_row0) {
  PIT_CHECK_EQ(src.rank(), 2);
  PIT_CHECK_EQ(dst.rank(), 2);
  PIT_CHECK_EQ(src.dim(1), dst.dim(1));
  const int64_t n = static_cast<int64_t>(row_ids.size());
  PIT_CHECK_GE(dst_row0, 0);
  PIT_CHECK_LE(dst_row0 + n, dst.dim(0));
  const int64_t cols = src.dim(1);
  // Chunk over the packed rows; inside a chunk, maximal runs of consecutive
  // source ids collapse into one copy (a request's token rows are one run).
  // Chunk boundaries only split runs, never reorder rows, so the result is
  // chunk-count independent.
  const simd::RowKernels* rk = GatherRowKernels();
  ParallelFor(n, GrainOrSerial(n, RowGrain(cols)), [&](int64_t i0, int64_t i1) {
    for (int64_t i = i0; i < i1;) {
      const int64_t r = row_ids[static_cast<size_t>(i)];
      PIT_CHECK_GE(r, 0);
      PIT_CHECK_LT(r, src.dim(0));
      int64_t run = 1;
      while (i + run < i1 && row_ids[static_cast<size_t>(i + run)] == r + run &&
             r + run < src.dim(0)) {
        ++run;
      }
      CopyRowSpan(rk, src.data() + r * cols, dst.data() + (dst_row0 + i) * cols, run * cols);
      i += run;
    }
  });
}

void SWriteRowsFrom(ConstTensorView packed, int64_t src_row0, std::span<const int64_t> row_ids,
                    TensorView dst) {
  PIT_CHECK_EQ(packed.rank(), 2);
  PIT_CHECK_EQ(dst.rank(), 2);
  PIT_CHECK_EQ(packed.dim(1), dst.dim(1));
  const int64_t n = static_cast<int64_t>(row_ids.size());
  PIT_CHECK_GE(src_row0, 0);
  PIT_CHECK_LE(src_row0 + n, packed.dim(0));
  const int64_t cols = dst.dim(1);
  // Distinct ids make the parallel scatter race-free; consecutive-id runs
  // coalesce exactly as in SReadRowsInto.
  const simd::RowKernels* rk = GatherRowKernels();
  ParallelFor(n, GrainOrSerial(n, RowGrain(cols)), [&](int64_t i0, int64_t i1) {
    for (int64_t i = i0; i < i1;) {
      const int64_t r = row_ids[static_cast<size_t>(i)];
      PIT_CHECK_GE(r, 0);
      PIT_CHECK_LT(r, dst.dim(0));
      int64_t run = 1;
      while (i + run < i1 && row_ids[static_cast<size_t>(i + run)] == r + run &&
             r + run < dst.dim(0)) {
        ++run;
      }
      CopyRowSpan(rk, packed.data() + (src_row0 + i) * cols, dst.data() + r * cols, run * cols);
      i += run;
    }
  });
}

void SWriteColsAdd(const Tensor& packed, std::span<const int64_t> col_ids, Tensor* dst) {
  PIT_CHECK(dst != nullptr);
  PIT_CHECK_EQ(packed.rank(), 2);
  PIT_CHECK_EQ(dst->rank(), 2);
  PIT_CHECK_EQ(packed.dim(0), dst->dim(0));
  PIT_CHECK_EQ(packed.dim(1), static_cast<int64_t>(col_ids.size()));
  const int64_t n = packed.dim(1);
  // Parallel over destination rows: each row accumulates independently.
  ParallelFor(dst->dim(0), GrainOrSerial(dst->dim(0), RowGrain(n)), [&](int64_t r0, int64_t r1) {
    for (int64_t r = r0; r < r1; ++r) {
      const float* srow = packed.data() + r * n;
      float* drow = dst->data() + r * dst->dim(1);
      for (int64_t i = 0; i < n; ++i) {
        drow[col_ids[static_cast<size_t>(i)]] += srow[i];
      }
    }
  });
}

Tensor SReadMicroTiles(const Tensor& src, const MicroTileIndex& index) {
  PIT_CHECK_EQ(src.rank(), 2);
  const auto& mt = index.micro_tile;
  const int64_t rows = src.dim(0), cols = src.dim(1);
  Tensor out({index.NumNonZero() * mt.rows, mt.cols});
  const int64_t tile_elems = mt.rows * mt.cols;
  // Each index entry owns a disjoint band of `out` rows. Interior tiles take
  // the contiguous row-chunk memcpy fast path; ragged edge tiles fall back to
  // the scalar zero-padded loop.
  ParallelFor(index.NumNonZero(),
              GrainOrSerial(index.NumNonZero(),
                            std::max<int64_t>(1, kCopyGrainBytes / std::max<int64_t>(4, tile_elems * 4))),
              [&](int64_t t0, int64_t t1) {
                for (int64_t i = t0; i < t1; ++i) {
                  const int64_t off = index.offsets[static_cast<size_t>(i)];
                  const int64_t br = index.BlockRowOf(off);
                  const int64_t bc = index.BlockColOf(off);
                  const int64_t r0 = br * mt.rows, c0 = bc * mt.cols;
                  float* tile = out.data() + i * tile_elems;
                  if (r0 + mt.rows <= rows && c0 + mt.cols <= cols) {
                    const float* s = src.data() + r0 * cols + c0;
                    for (int64_t r = 0; r < mt.rows; ++r) {
                      std::memcpy(tile + r * mt.cols, s + r * cols,
                                  static_cast<size_t>(mt.cols) * sizeof(float));
                    }
                  } else {
                    for (int64_t r = 0; r < mt.rows; ++r) {
                      const int64_t sr = r0 + r;
                      for (int64_t c = 0; c < mt.cols; ++c) {
                        const int64_t sc = c0 + c;
                        tile[r * mt.cols + c] =
                            (sr < rows && sc < cols) ? src.At(sr, sc) : 0.0f;
                      }
                    }
                  }
                }
              });
  return out;
}

void SWriteMicroTiles(const Tensor& packed, const MicroTileIndex& index, Tensor* dst) {
  PIT_CHECK(dst != nullptr);
  PIT_CHECK_EQ(dst->rank(), 2);
  const auto& mt = index.micro_tile;
  PIT_CHECK_EQ(packed.dim(0), index.NumNonZero() * mt.rows);
  PIT_CHECK_EQ(packed.dim(1), mt.cols);
  const int64_t rows = dst->dim(0), cols = dst->dim(1);
  const int64_t tile_elems = mt.rows * mt.cols;
  // Offsets are distinct micro-tiles, so destination regions are disjoint and
  // the parallel scatter is race-free and order-independent.
  ParallelFor(index.NumNonZero(),
              GrainOrSerial(index.NumNonZero(),
                            std::max<int64_t>(1, kCopyGrainBytes / std::max<int64_t>(4, tile_elems * 4))),
              [&](int64_t t0, int64_t t1) {
                for (int64_t i = t0; i < t1; ++i) {
                  const int64_t off = index.offsets[static_cast<size_t>(i)];
                  const int64_t br = index.BlockRowOf(off);
                  const int64_t bc = index.BlockColOf(off);
                  const int64_t r0 = br * mt.rows, c0 = bc * mt.cols;
                  const float* tile = packed.data() + i * tile_elems;
                  if (r0 + mt.rows <= rows && c0 + mt.cols <= cols) {
                    float* d = dst->data() + r0 * cols + c0;
                    for (int64_t r = 0; r < mt.rows; ++r) {
                      std::memcpy(d + r * cols, tile + r * mt.cols,
                                  static_cast<size_t>(mt.cols) * sizeof(float));
                    }
                  } else {
                    for (int64_t r = 0; r < mt.rows; ++r) {
                      const int64_t dr = r0 + r;
                      if (dr >= rows) {
                        continue;
                      }
                      for (int64_t c = 0; c < mt.cols; ++c) {
                        const int64_t dc = c0 + c;
                        if (dc >= cols) {
                          continue;
                        }
                        dst->At(dr, dc) = tile[r * mt.cols + c];
                      }
                    }
                  }
                }
              });
}

}  // namespace pit
