#include "pit/core/batched_kernel.h"

#include <cstring>

#include "pit/common/backend.h"
#include "pit/common/check.h"
#include "pit/common/parallel_for.h"
#include "pit/core/sparse_kernel.h"
#include "pit/tensor/ops.h"

namespace pit {

namespace {

// Copies batch slice `b` of a [B, R, C] tensor into a fresh [R, C] tensor.
Tensor Slice(const Tensor& t, int64_t b) {
  const int64_t r = t.dim(1), c = t.dim(2);
  Tensor out({r, c});
  std::memcpy(out.data(), t.data() + b * r * c, static_cast<size_t>(r * c) * sizeof(float));
  return out;
}

void WriteSlice(const Tensor& slice, int64_t b, Tensor* t) {
  const int64_t r = t->dim(1), c = t->dim(2);
  std::memcpy(t->data() + b * r * c, slice.data(), static_cast<size_t>(r * c) * sizeof(float));
}

}  // namespace

Tensor PitBatchRowGatherMatmul(const Tensor& a, const Tensor& b,
                               const SparsityDetector& detector) {
  PIT_CHECK_EQ(a.rank(), 3);
  PIT_CHECK_EQ(b.rank(), 3);
  PIT_CHECK_EQ(a.dim(0), b.dim(0));
  PIT_CHECK_EQ(a.dim(2), b.dim(1));
  Tensor c({a.dim(0), a.dim(1), b.dim(2)});
  // Batch slices are independent: fan the per-slice pipelines out across the
  // pool (inner kernels run inline inside a worker).
  const int64_t bs = a.dim(0);
  // Serial when the batch can't fill the pool: inner kernels then parallelize.
  ParallelFor(bs, GrainOrSerial(bs, bs >= NumThreads() ? 1 : bs), [&](int64_t s0, int64_t s1) {
    for (int64_t s = s0; s < s1; ++s) {
      WriteSlice(PitRowGatherMatmul(Slice(a, s), Slice(b, s), detector), s, &c);
    }
  });
  return c;
}

Tensor PitBatchKGatherMatmul(const Tensor& a, const Tensor& b, int64_t block_m,
                             const SparsityDetector& detector) {
  PIT_CHECK_EQ(a.rank(), 3);
  PIT_CHECK_EQ(b.rank(), 3);
  PIT_CHECK_EQ(a.dim(0), b.dim(0));
  PIT_CHECK_EQ(a.dim(2), b.dim(1));
  Tensor c({a.dim(0), a.dim(1), b.dim(2)});
  const int64_t bs = a.dim(0);
  ParallelFor(bs, GrainOrSerial(bs, bs >= NumThreads() ? 1 : bs), [&](int64_t s0, int64_t s1) {
    for (int64_t s = s0; s < s1; ++s) {
      WriteSlice(PitKGatherMatmul(Slice(a, s), Slice(b, s), block_m, detector), s, &c);
    }
  });
  return c;
}

bool BatchBroadcastable(const Tensor& b) {
  PIT_CHECK_EQ(b.rank(), 3);
  const int64_t slice = b.dim(1) * b.dim(2);
  for (int64_t s = 1; s < b.dim(0); ++s) {
    if (std::memcmp(b.data(), b.data() + s * slice, static_cast<size_t>(slice) * sizeof(float)) !=
        0) {
      return false;
    }
  }
  return true;
}

Tensor PitMultiAxisRowGatherMatmul(const Tensor& a, const Tensor& shared_b,
                                   const SparsityDetector& detector) {
  PIT_CHECK_EQ(a.rank(), 3);
  PIT_CHECK_EQ(shared_b.rank(), 2);
  PIT_CHECK_EQ(a.dim(2), shared_b.dim(0));
  // Joint (b,m) permutation: flatten to [b*m, k]; the shared B makes any row
  // placement valid, so a single row-gather kernel handles the whole batch.
  Tensor flat = a.Reshape({a.dim(0) * a.dim(1), a.dim(2)});
  Tensor flat_c = PitRowGatherMatmul(flat, shared_b, detector);
  return flat_c.Reshape({a.dim(0), a.dim(1), shared_b.dim(1)});
}

}  // namespace pit
