#include "pit/core/sparse_kernel.h"

#include <algorithm>
#include <cmath>

#include "pit/common/backend.h"
#include "pit/common/check.h"
#include "pit/common/parallel_for.h"
#include "pit/core/sread_swrite.h"
#include "pit/tensor/ops.h"

namespace pit {

PitMatmulPlan PlanSparseMatmul(const CostModel& model, const PitRule& rule, int64_t m, int64_t k,
                               int64_t n, const SparsityPattern& pattern,
                               const PlanOptions& opts) {
  PIT_CHECK_EQ(pattern.rows(), m);
  PIT_CHECK_EQ(pattern.cols(), k);
  PitMatmulPlan plan;
  plan.rule = rule;
  plan.m = m;
  plan.k = k;
  plan.n = n;

  const TileShape& tile = rule.dense_tile;
  const int64_t n_tiles = (n + tile.n - 1) / tile.n;
  const double tile_cost =
      model.MatmulTileCost(tile, rule.tensor_core) * (1.0 + opts.sread_overhead);

  switch (rule.axis) {
    case MatmulAxis::kM:
    case MatmulAxis::kN: {
      // Row-slice gather along m, independently per k block: micro-tiles of
      // shape [1, tile.k] at column block c are merged across rows into a
      // dense tile for that block (partial products accumulate over k, which
      // is itself a PIT-axis). Whole-row gathering is the tile.k == k case.
      const double p = pattern.NonZeroProb(rule.micro_tile);
      const int64_t k_tiles = (k + tile.k - 1) / tile.k;
      const int64_t row_tiles_per_block = static_cast<int64_t>(
          std::ceil(p * static_cast<double>(m) / static_cast<double>(tile.m)));
      plan.num_micro_tiles =
          static_cast<int64_t>(std::llround(p * static_cast<double>(m * k_tiles)));
      plan.num_exec_tiles = std::max<int64_t>(row_tiles_per_block, 0) * k_tiles * n_tiles;
      plan.covered_fraction = p;
      break;
    }
    case MatmulAxis::kK: {
      // Column-slice gather per block row of the output grid.
      const double p = pattern.NonZeroProb(rule.micro_tile);
      const int64_t block_rows = (m + tile.m - 1) / tile.m;
      const double nz_k_per_row = p * static_cast<double>(k);
      const int64_t k_tiles_per_row =
          static_cast<int64_t>(std::ceil(nz_k_per_row / static_cast<double>(tile.k)));
      plan.num_micro_tiles =
          static_cast<int64_t>(std::llround(p * static_cast<double>(block_rows * k)));
      plan.num_exec_tiles = block_rows * std::max<int64_t>(k_tiles_per_row, 0) * n_tiles;
      plan.covered_fraction = p;
      break;
    }
  }
  plan.sparsity_after_cover = 1.0 - plan.covered_fraction;

  plan.cost.compute_us = model.WaveLatency(plan.num_exec_tiles, tile_cost);
  plan.cost.launch_us = model.device().launch_overhead_us;
  if (opts.include_index_build) {
    plan.cost.index_us =
        SparsityDetector::DetectCostUs(model, m * k, std::max<int64_t>(plan.num_micro_tiles, 1));
  }
  return plan;
}

void PitRowGatherMatmulInto(ConstTensorView a, ConstTensorView b, TensorView c,
                            const SparsityDetector& detector) {
  PIT_CHECK_EQ(a.rank(), 2);
  PIT_CHECK_EQ(b.rank(), 2);
  PIT_CHECK_EQ(a.dim(1), b.dim(0));
  PIT_CHECK_EQ(c.dim(0), a.dim(0));
  PIT_CHECK_EQ(c.dim(1), b.dim(1));
  // Online detection with micro-tile [1, K] == whole rows.
  MicroTileIndex index = detector.Detect(a, MicroTileShape{1, a.dim(1)});
  // The index is unordered; SRead consumes it as-is (PIT-axis m permits any
  // permutation) and SWrite restores original row positions.
  std::vector<int64_t> rows;
  rows.reserve(index.offsets.size());
  for (int64_t off : index.offsets) {
    rows.push_back(index.BlockRowOf(off));
  }
  Tensor packed_a = SReadRows(a, rows);
  Tensor packed_c({static_cast<int64_t>(rows.size()), b.dim(1)});
  MatMulInto(packed_a, b, packed_c);
  std::fill(c.data(), c.data() + c.size(), 0.0f);  // zero rows of A stay zero in C
  SWriteRows(packed_c, rows, c);
}

Tensor PitRowGatherMatmul(const Tensor& a, const Tensor& b, const SparsityDetector& detector) {
  Tensor c({a.dim(0), b.dim(1)});
  PitRowGatherMatmulInto(a, b, c, detector);
  return c;
}

void PitKGatherMatmulInto(ConstTensorView a, ConstTensorView b, int64_t block_m, TensorView c,
                          const SparsityDetector& detector) {
  PIT_CHECK_EQ(a.rank(), 2);
  PIT_CHECK_EQ(b.rank(), 2);
  PIT_CHECK_EQ(a.dim(1), b.dim(0));
  PIT_CHECK_GT(block_m, 0);
  const int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  PIT_CHECK_EQ(c.dim(0), m);
  PIT_CHECK_EQ(c.dim(1), n);
  std::fill(c.data(), c.data() + c.size(), 0.0f);  // all-zero blocks stay zero
  // Row blocks are independent (disjoint slices of C): run them on the pool.
  // Inner kernels detect they are already inside a parallel region and run
  // inline, so the parallelism does not nest runaway.
  const int64_t num_blocks = (m + block_m - 1) / block_m;
  // Under the reference backend a single chunk keeps the path sequential.
  ParallelFor(num_blocks, GrainOrSerial(num_blocks, 1), [&](int64_t blk0, int64_t blk1) {
    for (int64_t blk = blk0; blk < blk1; ++blk) {
      const int64_t r0 = blk * block_m;
      const int64_t rows = std::min(block_m, m - r0);
      // View of this block of A (copy; host-side stand-in for a tile pointer).
      Tensor block({rows, k});
      std::copy(a.data() + r0 * k, a.data() + (r0 + rows) * k, block.data());
      // Detect nonzero k slices with micro-tile [rows, 1] — unordered.
      MicroTileIndex index = detector.Detect(block, MicroTileShape{rows, 1});
      std::vector<int64_t> ks;
      ks.reserve(index.offsets.size());
      for (int64_t off : index.offsets) {
        ks.push_back(index.BlockColOf(off));
      }
      if (ks.empty()) {
        continue;
      }
      Tensor packed_a = SReadCols(block, ks);  // [rows, |ks|]
      Tensor packed_b = SReadRows(b, ks);      // [|ks|, n]
      Tensor block_c = MatMul(packed_a, packed_b);
      for (int64_t r = 0; r < rows; ++r) {
        std::copy(block_c.data() + r * n, block_c.data() + (r + 1) * n, c.data() + (r0 + r) * n);
      }
    }
  });
}

Tensor PitKGatherMatmul(const Tensor& a, const Tensor& b, int64_t block_m,
                        const SparsityDetector& detector) {
  Tensor c({a.dim(0), b.dim(1)});
  PitKGatherMatmulInto(a, b, block_m, c, detector);
  return c;
}

Tensor PitMicroTileMatmul(const Tensor& a, const Tensor& b, const MicroTileShape& micro,
                          const SparsityDetector& detector) {
  PIT_CHECK_EQ(a.rank(), 2);
  PIT_CHECK_EQ(b.rank(), 2);
  PIT_CHECK_EQ(a.dim(1), b.dim(0));
  const int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  MicroTileIndex index = detector.Detect(a, micro);
  Tensor c({m, n});
  // Group the (unordered) index by block row; within a block row the covered
  // k-ranges can be gathered in any order (k is a PIT-axis).
  std::vector<std::vector<int64_t>> cols_of_row(static_cast<size_t>(index.block_rows));
  for (int64_t off : index.offsets) {
    cols_of_row[static_cast<size_t>(index.BlockRowOf(off))].push_back(index.BlockColOf(off));
  }
  // Block rows own disjoint slices of C — parallel across the pool.
  ParallelFor(index.block_rows, GrainOrSerial(index.block_rows, 1),
              [&](int64_t br0, int64_t br1) {
    for (int64_t br = br0; br < br1; ++br) {
      const auto& blocks = cols_of_row[static_cast<size_t>(br)];
      if (blocks.empty()) {
        continue;
      }
      const int64_t r0 = br * micro.rows;
      const int64_t rows = std::min(micro.rows, m - r0);
      // Expand covered micro-tile columns into concrete k indices (clipped at
      // the ragged edge).
      std::vector<int64_t> ks;
      for (int64_t bc : blocks) {
        for (int64_t kk = bc * micro.cols; kk < std::min(k, (bc + 1) * micro.cols); ++kk) {
          ks.push_back(kk);
        }
      }
      // SRead the block's rows restricted to the covered columns, and the
      // matching B rows; dense matmul; write back this block row of C.
      Tensor packed_a({rows, static_cast<int64_t>(ks.size())});
      for (int64_t r = 0; r < rows; ++r) {
        const float* srow = a.data() + (r0 + r) * k;
        float* drow = packed_a.data() + r * static_cast<int64_t>(ks.size());
        for (size_t i = 0; i < ks.size(); ++i) {
          drow[i] = srow[ks[i]];
        }
      }
      Tensor packed_b = SReadRows(b, ks);
      Tensor block_c = MatMul(packed_a, packed_b);
      for (int64_t r = 0; r < rows; ++r) {
        std::copy(block_c.data() + r * n, block_c.data() + (r + 1) * n, c.data() + (r0 + r) * n);
      }
    }
  });
  return c;
}

Tensor PitDualKGatherMatmul(const Tensor& a, const Tensor& b, const SparsityDetector& detector) {
  PIT_CHECK_EQ(a.rank(), 2);
  PIT_CHECK_EQ(b.rank(), 2);
  PIT_CHECK_EQ(a.dim(1), b.dim(0));
  const int64_t k = a.dim(1);
  // k index participates iff A's column AND B's row both have a nonzero.
  MicroTileIndex a_cols = detector.Detect(a, MicroTileShape{a.dim(0), 1});
  MicroTileIndex b_rows = detector.Detect(b, MicroTileShape{1, b.dim(1)});
  std::vector<bool> a_nz(static_cast<size_t>(k), false);
  for (int64_t off : a_cols.offsets) {
    a_nz[static_cast<size_t>(a_cols.BlockColOf(off))] = true;
  }
  std::vector<int64_t> ks;
  for (int64_t off : b_rows.offsets) {
    const int64_t kk = b_rows.BlockRowOf(off);
    if (a_nz[static_cast<size_t>(kk)]) {
      ks.push_back(kk);
    }
  }
  Tensor c({a.dim(0), b.dim(1)});
  if (ks.empty()) {
    return c;
  }
  Tensor packed_a = SReadCols(a, ks);
  Tensor packed_b = SReadRows(b, ks);
  return MatMul(packed_a, packed_b);
}

Tensor PitMoEMatmul(const Tensor& tokens, const std::vector<Tensor>& expert_weights,
                    const std::vector<int>& expert_of) {
  PIT_CHECK_EQ(tokens.rank(), 2);
  PIT_CHECK(!expert_weights.empty());
  PIT_CHECK_EQ(static_cast<int64_t>(expert_of.size()), tokens.dim(0));
  const int64_t f = expert_weights[0].dim(1);
  Tensor out({tokens.dim(0), f});
  for (const Tensor& w : expert_weights) {
    PIT_CHECK_EQ(w.dim(0), tokens.dim(1));
    PIT_CHECK_EQ(w.dim(1), f);
  }
  // Experts touch disjoint token rows (each token routes to one expert), so
  // the per-expert gather/matmul/scatter pipelines run concurrently.
  const int64_t num_experts = static_cast<int64_t>(expert_weights.size());
  ParallelFor(num_experts, GrainOrSerial(num_experts, 1), [&](int64_t e0, int64_t e1) {
    for (int64_t e = e0; e < e1; ++e) {
      std::vector<int64_t> mine;
      for (size_t t = 0; t < expert_of.size(); ++t) {
        if (expert_of[t] == static_cast<int>(e)) {
          mine.push_back(static_cast<int64_t>(t));
        }
      }
      if (mine.empty()) {
        continue;
      }
      Tensor packed = SReadRows(tokens, mine);
      Tensor result = MatMul(packed, expert_weights[static_cast<size_t>(e)]);
      SWriteRows(result, mine, &out);
    }
  });
  return out;
}

}  // namespace pit
