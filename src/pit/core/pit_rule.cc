#include "pit/core/pit_rule.h"

#include <sstream>

#include "pit/common/check.h"

namespace pit {

std::string MicroTileShape::ToString() const {
  std::ostringstream os;
  os << "(" << rows << "," << cols << ")";
  return os.str();
}

const char* MatmulAxisName(MatmulAxis axis) {
  switch (axis) {
    case MatmulAxis::kM:
      return "m";
    case MatmulAxis::kK:
      return "k";
    case MatmulAxis::kN:
      return "n";
  }
  return "?";
}

std::string PitRule::ToString() const {
  std::ostringstream os;
  os << "PitRule{axis=" << MatmulAxisName(axis) << ", micro=" << micro_tile.ToString()
     << ", tile=" << dense_tile.ToString() << (tensor_core ? ", wmma" : "")
     << (needs_layout_flip ? ", flip" : "") << "}";
  return os.str();
}

MicroTileShape DeriveMicroTileForA(const TileShape& dense_tile, MatmulAxis axis, Layout a_layout,
                                   bool* needs_flip) {
  *needs_flip = false;
  switch (axis) {
    case MatmulAxis::kM:
      // Micro-tile spans one m index and the tile's full k extent. Row-major
      // A is already non-contiguous across m, so rows can be fetched in
      // parallel transactions; column-major A would need a flip.
      *needs_flip = (a_layout == Layout::kColMajor);
      return MicroTileShape{1, dense_tile.k};
    case MatmulAxis::kK:
      // Micro-tile spans one k index and the tile's full m extent. This is
      // the Table-3 "(16,1)"-style micro-tile. Row-major A is contiguous on
      // k, so the layout must be flipped (piggybacked on the producer).
      *needs_flip = (a_layout == Layout::kRowMajor);
      return MicroTileShape{dense_tile.m, 1};
    case MatmulAxis::kN:
      // n does not index A at all; permuting n only affects B/C. The sparse-A
      // rule degenerates to whole-row coverage (same as m for costing).
      *needs_flip = false;
      return MicroTileShape{1, dense_tile.k};
  }
  PIT_CHECK(false) << "unreachable";
  return {};
}

PitRule MakeRuleForSparseA(const TileShape& dense_tile, MatmulAxis axis, Layout a_layout,
                           bool tensor_core) {
  PitRule rule;
  rule.axis = axis;
  rule.dense_tile = dense_tile;
  rule.tensor_core = tensor_core;
  rule.micro_tile = DeriveMicroTileForA(dense_tile, axis, a_layout, &rule.needs_layout_flip);
  return rule;
}

}  // namespace pit
