// PIT rules for BatchMatMul (Table 1: PIT-axes b, m, n, k) and the paper's
// future-work extension of multi-axis permutation over (b, m).
//
// C[b,m,n] += A[b,m,k] * B[b,k,n]: each of b/m/k can be permuted per the
// usual single-axis rules. Joint (b,m) permutation — moving a row across
// batch slices — is additionally valid when B is broadcast across the batch
// (B[b,*] all equal), because then every row meets the same B regardless of
// its batch slot. That broadcast case is exactly the MoE / varying-length
// workload (same weight, ragged token groups), where flattening (b,m) lets
// one dense tile mix rows from different batch elements and removes the
// per-batch wave-quantization waste.
#ifndef PIT_CORE_BATCHED_KERNEL_H_
#define PIT_CORE_BATCHED_KERNEL_H_

#include "pit/core/sparsity_detector.h"
#include "pit/tensor/tensor.h"

namespace pit {

// Per-batch row gather (single-axis m rule applied slice-wise):
// for each batch b, gathers the nonzero rows of A[b], multiplies with B[b],
// scatters rows of C[b]. Zero rows of A yield zero rows of C.
Tensor PitBatchRowGatherMatmul(const Tensor& a, const Tensor& b,
                               const SparsityDetector& detector = SparsityDetector());

// Per-batch k gather (single-axis k rule slice-wise) with block_m row blocks.
Tensor PitBatchKGatherMatmul(const Tensor& a, const Tensor& b, int64_t block_m,
                             const SparsityDetector& detector = SparsityDetector());

// Multi-axis (b,m) rule with broadcast B: A is [b, m, k], B is [k, n] shared
// by all batches. Flattens (b,m), gathers nonzero rows across the whole
// batch into shared dense tiles, computes once, scatters back. Requires no
// condition on A's sparsity structure.
Tensor PitMultiAxisRowGatherMatmul(const Tensor& a, const Tensor& shared_b,
                                   const SparsityDetector& detector = SparsityDetector());

// True if every batch slice of B equals slice 0 (the broadcast precondition
// for the multi-axis rule). Tolerance 0: the rule requires exact sharing.
bool BatchBroadcastable(const Tensor& b);

}  // namespace pit

#endif  // PIT_CORE_BATCHED_KERNEL_H_
