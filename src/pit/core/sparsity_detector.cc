#include "pit/core/sparsity_detector.h"

#include <algorithm>
#include <cstring>

#include "pit/common/backend.h"
#include "pit/common/check.h"
#include "pit/common/parallel_for.h"
#include "pit/common/rng.h"
#include "pit/common/simd_kernels.h"

namespace pit {

namespace {

// Any element of p[0:count) != 0.0f. +0.0f and -0.0f are the only float bit
// patterns that compare equal to zero, so the predicate reduces to an integer
// OR with the sign bits masked out — 8 bytes at a time instead of a branch
// per element (~1.6x the scalar scan at the bench's 95% sparsity), with an
// early exit every 64-byte stride so whole-row micro-tiles ([1, K], the
// row-gather shape) still stop near the first nonzero on dense-ish rows.
inline bool SpanNonZero(const float* p, int64_t count) {
  constexpr uint64_t kMagnitudeMask = 0x7fffffff7fffffffull;
  int64_t i = 0;
  for (; i + 16 <= count; i += 16) {
    uint64_t w[8];
    std::memcpy(w, p + i, sizeof(w));
    if (((w[0] | w[1] | w[2] | w[3] | w[4] | w[5] | w[6] | w[7]) & kMagnitudeMask) != 0) {
      return true;
    }
  }
  if (i + 8 <= count) {
    uint64_t w[4];
    std::memcpy(w, p + i, sizeof(w));
    if (((w[0] | w[1] | w[2] | w[3]) & kMagnitudeMask) != 0) {
      return true;
    }
    i += 8;
  }
  for (; i + 2 <= count; i += 2) {
    uint64_t w;
    std::memcpy(&w, p + i, sizeof(w));
    if ((w & kMagnitudeMask) != 0) {
      return true;
    }
  }
  return i < count && p[i] != 0.0f;
}

// SpanNonZero under the active ISA tier: the AVX2 scan evaluates the exact
// same magnitude-masked integer-OR predicate 32 bytes per op (testz), so the
// detected tile set is bitwise identical across tiers. Tiny spans stay on the
// inline scalar path — below ~16 elements the indirect call into the kernel
// table costs more than the whole scan (the mt1x8 shape regressed 25% when
// every 8-element span went through the pointer), while full-row spans (the
// row-gather shape, count == K) amortize it to nothing. Mixing paths is safe:
// the predicate is exact on both.
constexpr int64_t kMinSimdSpanElems = 16;

inline bool SpanNonZeroTiered(const simd::RowKernels* rk, const float* p, int64_t count) {
  return rk != nullptr && count >= kMinSimdSpanElems ? rk->span_nonzero(p, count)
                                                     : SpanNonZero(p, count);
}

// Single-row micro-tiles of a compile-time width W: the constant count folds
// SpanNonZero's stride dispatch into a handful of straight-line OR blocks,
// about 2x the throughput of the runtime-width loop below.
template <int64_t W>
void ScanRowTiles(const simd::RowKernels* rk, const float* row, int64_t cols, int64_t block_cols,
                  int64_t base, std::vector<int64_t>* out) {
  const int64_t full = cols / W;
  for (int64_t bc = 0; bc < full; ++bc) {
    if (SpanNonZeroTiered(rk, row + bc * W, W)) {
      out->push_back(base + bc);
    }
  }
  if (full < block_cols && SpanNonZeroTiered(rk, row + full * W, cols - full * W)) {
    out->push_back(base + full);
  }
}

// Appends the nonzero micro-tile offsets of block row `br` to `out`, in
// ascending block-column order.
void ScanBlockRow(const simd::RowKernels* rk, ConstTensorView tensor, const MicroTileIndex& index,
                  int64_t br, std::vector<int64_t>* out) {
  const int64_t rows = tensor.dim(0), cols = tensor.dim(1);
  const auto& micro_tile = index.micro_tile;
  const int64_t r0 = br * micro_tile.rows;
  const int64_t r1 = std::min(rows, r0 + micro_tile.rows);
  if (r1 - r0 == 1) {
    const float* row = tensor.data() + r0 * cols;
    const int64_t base = br * index.block_cols;
    switch (micro_tile.cols) {
      case 8:
        return ScanRowTiles<8>(rk, row, cols, index.block_cols, base, out);
      case 16:
        return ScanRowTiles<16>(rk, row, cols, index.block_cols, base, out);
      case 32:
        return ScanRowTiles<32>(rk, row, cols, index.block_cols, base, out);
      default:
        break;
    }
  }
  for (int64_t bc = 0; bc < index.block_cols; ++bc) {
    const int64_t c0 = bc * micro_tile.cols;
    const int64_t c1 = std::min(cols, c0 + micro_tile.cols);
    bool nonzero = false;
    for (int64_t r = r0; r < r1 && !nonzero; ++r) {
      nonzero = SpanNonZeroTiered(rk, tensor.data() + r * cols + c0, c1 - c0);
    }
    if (nonzero) {
      out->push_back(br * index.block_cols + bc);
    }
  }
}

}  // namespace

MicroTileIndex SparsityDetector::Detect(const Tensor& tensor,
                                        const MicroTileShape& micro_tile) const {
  return Detect(ConstTensorView(tensor), micro_tile);
}

MicroTileIndex SparsityDetector::Detect(ConstTensorView tensor,
                                        const MicroTileShape& micro_tile) const {
  PIT_CHECK_EQ(tensor.rank(), 2);
  PIT_CHECK_GT(micro_tile.rows, 0);
  PIT_CHECK_GT(micro_tile.cols, 0);
  const int64_t rows = tensor.dim(0), cols = tensor.dim(1);
  MicroTileIndex index;
  index.micro_tile = micro_tile;
  index.block_rows = (rows + micro_tile.rows - 1) / micro_tile.rows;
  index.block_cols = (cols + micro_tile.cols - 1) / micro_tile.cols;

  // Parallel block-row scan; the ordered gather's chunk-order concatenation
  // reproduces the sequential row-major scan for any thread count, so the
  // shuffle below stays deterministic. A single chunk keeps the reference
  // backend sequential (the scalar oracle). The 1<<14-element grain fans out
  // earlier than the old 1<<16: with the vectorised segment scan a block row
  // costs ~an L1 fill, so mid-sized activations were leaving every worker but
  // one idle (the flat detector_scan case of BENCH_pr1).
  const int64_t elems_per_block_row = micro_tile.rows * cols;
  const int64_t grain =
      std::max<int64_t>(1, (1 << 14) / std::max<int64_t>(1, elems_per_block_row));
  const int chunks =
      UseBlockedBackend() ? ParallelChunkCount(index.block_rows, grain) : 1;
  // Resolve the span-scan variant once per Detect; exact predicate either
  // way, so the tile set (and the deterministic shuffle below) is identical
  // across ISA tiers.
  const simd::RowKernels* rk = UseSimd() ? simd::RowKernelsFor(ActiveIsa()) : nullptr;
  index.offsets = ParallelOrderedGather(
      index.block_rows, chunks, [&](int64_t b0, int64_t b1, std::vector<int64_t>* out) {
        // Guess a quarter of the chunk's tiles nonzero: one growth step on
        // dense inputs instead of the full doubling ladder from empty.
        out->reserve(static_cast<size_t>((b1 - b0) * index.block_cols / 4 + 16));
        for (int64_t br = b0; br < b1; ++br) {
          ScanBlockRow(rk, tensor, index, br, out);
        }
      });

  // Emulate the unordered atomic-append: permute deterministically by seed.
  Rng rng(shuffle_seed_);
  for (size_t i = index.offsets.size(); i > 1; --i) {
    std::swap(index.offsets[i - 1], index.offsets[rng.NextBelow(i)]);
  }
  return index;
}

MicroTileIndex SparsityDetector::DetectOrdered(const Tensor& tensor,
                                               const MicroTileShape& micro_tile) const {
  MicroTileIndex index = Detect(tensor, micro_tile);
  std::sort(index.offsets.begin(), index.offsets.end());
  return index;
}

double SparsityDetector::DetectCostUs(const CostModel& model, int64_t tensor_elems,
                                      int64_t nonzero_micro_tiles) {
  // One coalesced streaming pass over the tensor; each detected micro-tile
  // costs one warp-aggregated atomicAdd + one 8-byte index write. Aggregated
  // atomics amortize to ~0.05 ns per append.
  const double scan_us = model.MemoryTime(tensor_elems * model.ElemBytes());
  const double append_us = static_cast<double>(nonzero_micro_tiles) * 0.00005;
  const double write_us = model.MemoryTime(nonzero_micro_tiles * 8);
  return scan_us + append_us + write_us + model.device().launch_overhead_us;
}

double SparsityDetector::OrderedDetectCostUs(const CostModel& model, int64_t tensor_elems,
                                             int64_t nonzero_micro_tiles) {
  // Ordered (CSR/Triton-style) construction: count pass + exclusive prefix
  // sum + compaction pass, each a separate kernel, per-element predicate and
  // position bookkeeping (~10 G elem/s, matching measured dense2csr rates),
  // plus scattered ordered writes.
  const double pass_us = model.MemoryTime(tensor_elems * model.ElemBytes());
  const double per_elem_us = static_cast<double>(tensor_elems) * 0.0001;
  const double prefix_us = model.MemoryTime(tensor_elems / 8 * 4) * 2.0;  // up + down sweep
  const double scatter_us = model.ScatteredMemoryTime(nonzero_micro_tiles * 8, 8);
  return 3.0 * pass_us + per_elem_us + prefix_us + scatter_us +
         4.0 * model.device().launch_overhead_us;
}

std::vector<int64_t> NonZeroMicroTilesPerBlockRow(const MicroTileIndex& index) {
  std::vector<int64_t> counts(static_cast<size_t>(index.block_rows), 0);
  for (int64_t off : index.offsets) {
    counts[static_cast<size_t>(index.BlockRowOf(off))]++;
  }
  return counts;
}

}  // namespace pit
