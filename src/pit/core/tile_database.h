// Dense computation tile database with "offline profiled" costs (§3.2, §4).
//
// The paper profiles ~500 dense kernels per GPU type once, offline, and keeps
// a performance lookup table; Algorithm 1 then only multiplies tile counts by
// the profiled per-tile cost at runtime. Here the offline profiling step runs
// the gpusim cost model over the same tile-shape grid and memoizes results.
#ifndef PIT_CORE_TILE_DATABASE_H_
#define PIT_CORE_TILE_DATABASE_H_

#include <cstdint>
#include <vector>

#include "pit/gpusim/cost_model.h"

namespace pit {

struct TileEntry {
  TileShape shape;
  bool tensor_core = false;
  double tile_cost_us = 0.0;  // profiled cost of one tile instance
};

class TileDatabase {
 public:
  // "Offline profiling": enumerates the default tile-shape grid (m in
  // {8..128}, n in {32,128}, k in {32,64}) and records each shape's cost under
  // `model`. With wmma=true, additionally registers tensor-core variants for
  // wmma-compatible shapes (fp16 only, as on real hardware).
  static TileDatabase BuildDefault(const CostModel& model, bool include_wmma = false);

  const std::vector<TileEntry>& entries() const { return entries_; }
  // Fastest dense execution of an m-k-n matmul over all entries.
  const TileEntry& BestDenseTile(const CostModel& model, int64_t m, int64_t k, int64_t n) const;

  void Add(TileEntry entry) { entries_.push_back(entry); }
  size_t size() const { return entries_.size(); }

 private:
  std::vector<TileEntry> entries_;
};

}  // namespace pit

#endif  // PIT_CORE_TILE_DATABASE_H_
