#include "pit/core/sparse_ops.h"

#include <algorithm>

#include "pit/common/backend.h"
#include "pit/common/check.h"
#include "pit/common/parallel_for.h"
#include "pit/tensor/ops.h"

namespace pit {

namespace {

// Parallel "which of n candidates is live" scan on the shared ordered-gather
// primitive; the result matches the sequential ascending scan exactly.
std::vector<int64_t> ParallelLiveScan(int64_t n, int64_t work_per_item,
                                      const std::function<bool(int64_t)>& is_live) {
  const int64_t grain = std::max<int64_t>(1, (1 << 16) / std::max<int64_t>(1, work_per_item));
  const int chunks = UseBlockedBackend() ? ParallelChunkCount(n, grain) : 1;
  return ParallelOrderedGather(n, chunks, [&](int64_t i0, int64_t i1, std::vector<int64_t>* out) {
    for (int64_t i = i0; i < i1; ++i) {
      if (is_live(i)) {
        out->push_back(i);
      }
    }
  });
}

}  // namespace

std::vector<int64_t> LiveInputChannels(const Tensor& input) {
  PIT_CHECK_EQ(input.rank(), 4);
  const int64_t n = input.dim(0), c = input.dim(1), hw = input.dim(2) * input.dim(3);
  return ParallelLiveScan(c, n * hw, [&](int64_t ch) {
    for (int64_t b = 0; b < n; ++b) {
      const float* base = input.data() + (b * c + ch) * hw;
      for (int64_t i = 0; i < hw; ++i) {
        if (base[i] != 0.0f) {
          return true;
        }
      }
    }
    return false;
  });
}

std::vector<int64_t> LiveFilters(const Tensor& weight) {
  PIT_CHECK_EQ(weight.rank(), 4);
  const int64_t f = weight.dim(0), per = weight.dim(1) * weight.dim(2) * weight.dim(3);
  return ParallelLiveScan(f, per, [&](int64_t ff) {
    const float* base = weight.data() + ff * per;
    for (int64_t i = 0; i < per; ++i) {
      if (base[i] != 0.0f) {
        return true;
      }
    }
    return false;
  });
}

namespace {

// Gathers channels `chs` of a [N,C,H,W] tensor into [N, |chs|, H, W].
Tensor GatherChannels(const Tensor& input, const std::vector<int64_t>& chs) {
  const int64_t n = input.dim(0), c = input.dim(1), hw = input.dim(2) * input.dim(3);
  const int64_t nc = static_cast<int64_t>(chs.size());
  Tensor out({n, nc, input.dim(2), input.dim(3)});
  // Plane copies are independent: parallel over (batch, channel) pairs.
  ParallelFor(n * nc,
              GrainOrSerial(n * nc, std::max<int64_t>(1, (1 << 14) / std::max<int64_t>(1, hw))),
              [&](int64_t lo, int64_t hi) {
                for (int64_t p = lo; p < hi; ++p) {
                  const int64_t b = p / nc, i = p % nc;
                  const float* src = input.data() + (b * c + chs[static_cast<size_t>(i)]) * hw;
                  std::copy(src, src + hw, out.data() + p * hw);
                }
              });
  return out;
}

// Gathers input-channel slices `chs` of a [F,C,KH,KW] weight.
Tensor GatherWeightChannels(const Tensor& weight, const std::vector<int64_t>& chs) {
  const int64_t f = weight.dim(0), c = weight.dim(1), khw = weight.dim(2) * weight.dim(3);
  Tensor out({f, static_cast<int64_t>(chs.size()), weight.dim(2), weight.dim(3)});
  for (int64_t ff = 0; ff < f; ++ff) {
    for (size_t i = 0; i < chs.size(); ++i) {
      const float* src = weight.data() + (ff * c + chs[i]) * khw;
      float* dst =
          out.data() + (ff * static_cast<int64_t>(chs.size()) + static_cast<int64_t>(i)) * khw;
      std::copy(src, src + khw, dst);
    }
  }
  return out;
}

}  // namespace

Tensor PitChannelGatherConv2D(const Tensor& input, const Tensor& weight) {
  PIT_CHECK_EQ(input.rank(), 4);
  PIT_CHECK_EQ(weight.rank(), 4);
  PIT_CHECK_EQ(input.dim(1), weight.dim(1));
  const std::vector<int64_t> live = LiveInputChannels(input);
  const int64_t oh = input.dim(2) - weight.dim(2) + 1;
  const int64_t ow = input.dim(3) - weight.dim(3) + 1;
  if (live.empty()) {
    return Tensor({input.dim(0), weight.dim(0), oh, ow});
  }
  // SRead on the channel (m) axis of both operands; the packed convolution is
  // dense. No SWrite remap needed: the output layout is unchanged.
  return Conv2D(GatherChannels(input, live), GatherWeightChannels(weight, live));
}

Tensor PitFilterGatherConv2D(const Tensor& input, const Tensor& weight) {
  PIT_CHECK_EQ(input.rank(), 4);
  PIT_CHECK_EQ(weight.rank(), 4);
  PIT_CHECK_EQ(input.dim(1), weight.dim(1));
  const std::vector<int64_t> live = LiveFilters(weight);
  const int64_t n = input.dim(0), f = weight.dim(0);
  const int64_t oh = input.dim(2) - weight.dim(2) + 1;
  const int64_t ow = input.dim(3) - weight.dim(3) + 1;
  Tensor out({n, f, oh, ow});
  if (live.empty()) {
    return out;
  }
  // Gather live filters, convolve packed, SWrite-scatter output channels.
  const int64_t per = weight.dim(1) * weight.dim(2) * weight.dim(3);
  Tensor packed_w({static_cast<int64_t>(live.size()), weight.dim(1), weight.dim(2), weight.dim(3)});
  for (size_t i = 0; i < live.size(); ++i) {
    const float* src = weight.data() + live[i] * per;
    std::copy(src, src + per, packed_w.data() + static_cast<int64_t>(i) * per);
  }
  Tensor packed_out = Conv2D(input, packed_w);  // [n, |live|, oh, ow]
  const int64_t ohw = oh * ow;
  for (int64_t b = 0; b < n; ++b) {
    for (size_t i = 0; i < live.size(); ++i) {
      const float* src =
          packed_out.data() + (b * static_cast<int64_t>(live.size()) + static_cast<int64_t>(i)) * ohw;
      float* dst = out.data() + (b * f + live[i]) * ohw;
      std::copy(src, src + ohw, dst);
    }
  }
  return out;
}

Tensor PitSparseReduceSum(const Tensor& a, int64_t micro_cols, const SparsityDetector& detector) {
  PIT_CHECK_EQ(a.rank(), 2);
  PIT_CHECK_GT(micro_cols, 0);
  MicroTileIndex index = detector.Detect(a, MicroTileShape{1, micro_cols});
  Tensor c({a.dim(0)});
  const int64_t cols = a.dim(1);
  // Unordered accumulation over nonzero micro-tiles: valid because + is
  // commutative and associative (Theorem 1's reduction-axis condition).
  for (int64_t off : index.offsets) {
    const int64_t r = index.BlockRowOf(off);
    const int64_t c0 = index.BlockColOf(off) * micro_cols;
    const int64_t c1 = std::min(cols, c0 + micro_cols);
    float acc = 0.0f;
    for (int64_t j = c0; j < c1; ++j) {
      acc += a.At(r, j);
    }
    c[r] += acc;
  }
  return c;
}

Tensor PitSparseVectorAdd(const Tensor& a, const Tensor& b, int64_t micro_cols,
                          const SparsityDetector& detector) {
  PIT_CHECK(a.shape() == b.shape());
  PIT_CHECK_EQ(a.rank(), 1);
  const int64_t n = a.dim(0);
  // Detect on a 2-D view [1, n] of each operand; union of live micro-tiles.
  Tensor av = a.Reshape({1, n});
  Tensor bv = b.Reshape({1, n});
  MicroTileIndex ia = detector.Detect(av, MicroTileShape{1, micro_cols});
  MicroTileIndex ib = detector.Detect(bv, MicroTileShape{1, micro_cols});
  std::vector<bool> live(static_cast<size_t>(ia.TotalMicroTiles()), false);
  for (int64_t off : ia.offsets) {
    live[static_cast<size_t>(off)] = true;
  }
  for (int64_t off : ib.offsets) {
    live[static_cast<size_t>(off)] = true;
  }
  Tensor c({n});
  for (size_t t = 0; t < live.size(); ++t) {
    if (!live[t]) {
      continue;
    }
    const int64_t c0 = static_cast<int64_t>(t) * micro_cols;
    const int64_t c1 = std::min(n, c0 + micro_cols);
    for (int64_t j = c0; j < c1; ++j) {
      c[j] = a[j] + b[j];
    }
  }
  return c;
}

}  // namespace pit
