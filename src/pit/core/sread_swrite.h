// SRead / SWrite: PIT's data-rearrangement primitives (§3.1).
//
// On the GPU these piggyback the sparse->dense gather (and dense->sparse
// scatter) on the global-memory <-> shared-memory movement that a tiled kernel
// performs anyway, which is why the transformation is nearly free. Here they
// are functional host implementations operating on whole operands: SRead
// packs the micro-tiles named by an index into a dense buffer, the dense tile
// computation runs on the packed buffer, and SWrite scatters results back to
// their original coordinates. Tests verify the round-trip and the permutation
// invariance (any index order produces identical results).
//
// All primitives run on the shared ParallelFor pool with row-chunk memcpy
// fast paths. The scatters assume distinct ids (guaranteed for ids derived
// from a MicroTileIndex), which makes the parallel writes race-free.
#ifndef PIT_CORE_SREAD_SWRITE_H_
#define PIT_CORE_SREAD_SWRITE_H_

#include <cstdint>
#include <span>

#include "pit/core/sparsity_detector.h"
#include "pit/tensor/tensor.h"

namespace pit {

// Gathers rows `row_ids` of `src` into a packed [row_ids.size(), cols] tensor,
// in index order. The view form reads straight out of an arena slice.
Tensor SReadRows(ConstTensorView src, std::span<const int64_t> row_ids);
Tensor SReadRows(const Tensor& src, std::span<const int64_t> row_ids);

// Gathers columns `col_ids` of `src` into a packed [rows, col_ids.size()]
// tensor, in index order.
Tensor SReadCols(ConstTensorView src, std::span<const int64_t> col_ids);
Tensor SReadCols(const Tensor& src, std::span<const int64_t> col_ids);

// Scatters the rows of `packed` back to rows `row_ids` of `dst`. The view
// form scatters into an arena slice without materializing a Tensor.
void SWriteRows(ConstTensorView packed, std::span<const int64_t> row_ids, TensorView dst);
void SWriteRows(const Tensor& packed, std::span<const int64_t> row_ids, Tensor* dst);

// Batch-axis packing fast paths (the paper's micro-tile permutation applied
// to the batch dimension): a ragged request batch is a dynamically row-sparse
// tensor, and these gather/scatter its live token rows into (out of) a packed
// dense tile in place — no intermediate Tensor, so the serving engine can
// stage straight into a reused [sum_tokens, hidden] buffer. Runs of
// consecutive row ids (the common case: each request's rows are contiguous)
// coalesce into single memcpys.
//
// Gathers rows `row_ids` of `src` into rows [dst_row0, dst_row0 + n) of `dst`.
void SReadRowsInto(ConstTensorView src, std::span<const int64_t> row_ids, TensorView dst,
                   int64_t dst_row0);
// Inverse: scatters rows [src_row0, src_row0 + n) of `packed` to rows
// `row_ids` of `dst`. Ids must be distinct (disjoint scatter targets).
void SWriteRowsFrom(ConstTensorView packed, int64_t src_row0, std::span<const int64_t> row_ids,
                    TensorView dst);

// Accumulating scatter of columns (dst[:, col_ids[i]] += packed[:, i]).
void SWriteColsAdd(const Tensor& packed, std::span<const int64_t> col_ids, Tensor* dst);

// Gathers the micro-tiles named by `index` out of `src` into a packed tensor
// of shape [nnz * micro.rows, micro.cols] (micro-tiles stacked in index
// order). General form used by the block-sparse execution paths.
Tensor SReadMicroTiles(const Tensor& src, const MicroTileIndex& index);

// Inverse of SReadMicroTiles: scatters packed micro-tiles back into `dst`.
void SWriteMicroTiles(const Tensor& packed, const MicroTileIndex& index, Tensor* dst);

}  // namespace pit

#endif  // PIT_CORE_SREAD_SWRITE_H_
