#include "pit/core/compiler.h"

#include <cmath>

#include "pit/common/check.h"
#include "pit/tensor/ops.h"

namespace pit {

PitCompiler::PitCompiler(DeviceSpec device, Precision precision)
    : model_(std::move(device), precision), db_(TileDatabase::BuildDefault(model_)) {}

PitCompiler::CacheKey PitCompiler::MakeKey(int64_t m, int64_t k, int64_t n,
                                           double sparsity) const {
  // Bucket sparsity at 5% steps: a kernel selected at 90% sparsity stays
  // optimal in a neighbourhood, so re-selection would be wasted work.
  return {m, k, n, static_cast<int>(std::lround(sparsity * 20.0))};
}

SelectionResult PitCompiler::Plan(const SparsityPattern& pattern, int64_t m, int64_t k, int64_t n,
                                  const SelectionOptions& opts) {
  return SelectKernel(model_, db_, {&pattern}, m, k, n, opts);
}

PitExecution PitCompiler::SparseMatmul(const Tensor& a, const Tensor& b) {
  PIT_CHECK_EQ(a.rank(), 2);
  PIT_CHECK_EQ(b.rank(), 2);
  PIT_CHECK_EQ(a.dim(1), b.dim(0));
  const int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);

  PitExecution exec;
  MaskPattern pattern(&a);
  const CacheKey key = MakeKey(m, k, n, a.SparsityRatio());
  ++exec_count_;
  const bool resample = resample_every_ > 0 && exec_count_ % resample_every_ == 0;
  auto it = cache_.find(key);
  if (it == cache_.end()) {
    SelectionResult selected = SelectKernel(model_, db_, {&pattern}, m, k, n);
    it = cache_.emplace(key, std::move(selected)).first;
    ++kernels_compiled_;
  } else if (resample) {
    // Periodic sample (Fig. 5): re-run Algorithm 1 on this input and replace
    // the cached kernel if the pattern has drifted to a different optimum.
    SelectionResult fresh = SelectKernel(model_, db_, {&pattern}, m, k, n);
    if (fresh.best.rule.axis != it->second.best.rule.axis ||
        !(fresh.best.rule.dense_tile == it->second.best.rule.dense_tile) ||
        fresh.best.fallback_dense != it->second.best.fallback_dense) {
      it->second = std::move(fresh);
      ++reselections_;
    } else {
      ++cache_hits_;
      exec.cache_hit = true;
    }
  } else {
    ++cache_hits_;
    exec.cache_hit = true;
  }
  const SelectionResult& sel = it->second;
  exec.plan = sel.best;
  // Re-price for this exact tensor's sparsity (the cached rule is reused; the
  // cost always reflects the current input).
  if (!sel.best.fallback_dense) {
    exec.plan = PlanSparseMatmul(model_, sel.best.rule, m, k, n, pattern);
  }

  if (sel.best.fallback_dense) {
    exec.output = MatMul(a, b);
  } else if (sel.best.rule.axis == MatmulAxis::kK) {
    exec.output = PitKGatherMatmul(a, b, sel.best.rule.dense_tile.m);
  } else {
    exec.output = PitRowGatherMatmul(a, b);
  }
  return exec;
}

}  // namespace pit
