#include "pit/core/compiler.h"

#include <cmath>

#include "pit/common/check.h"
#include "pit/tensor/ops.h"

namespace pit {

PitCompiler::PitCompiler(DeviceSpec device, Precision precision)
    : model_(std::move(device), precision), db_(TileDatabase::BuildDefault(model_)) {}

PitCompiler::CacheKey PitCompiler::MakeKey(int64_t m, int64_t k, int64_t n,
                                           double sparsity) const {
  // Bucket sparsity at 5% steps: a kernel selected at 90% sparsity stays
  // optimal in a neighbourhood, so re-selection would be wasted work.
  return {m, k, n, static_cast<int>(std::lround(sparsity * 20.0))};
}

SelectionResult PitCompiler::Plan(const SparsityPattern& pattern, int64_t m, int64_t k, int64_t n,
                                  const SelectionOptions& opts) {
  return SelectKernel(model_, db_, {&pattern}, m, k, n, opts);
}

PitExecution PitCompiler::SparseMatmul(const Tensor& a, const Tensor& b) {
  PIT_CHECK_EQ(a.rank(), 2);
  PIT_CHECK_EQ(b.rank(), 2);
  Tensor out({a.dim(0), b.dim(1)});
  const PitDispatch dispatch = SparseMatmulInto(a, b, out);
  PitExecution exec;
  exec.output = std::move(out);
  exec.plan = dispatch.plan;
  exec.cache_hit = dispatch.cache_hit;
  return exec;
}

PitDispatch PitCompiler::SparseMatmulInto(ConstTensorView a, ConstTensorView b, TensorView out,
                                          PitKernelHandle* handle) {
  PIT_CHECK_EQ(a.rank(), 2);
  PIT_CHECK_EQ(b.rank(), 2);
  PIT_CHECK_EQ(a.dim(1), b.dim(0));
  const int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  PIT_CHECK_EQ(out.dim(0), m);
  PIT_CHECK_EQ(out.dim(1), n);

  PitDispatch dispatch;
  MaskPattern pattern(a);
  const double sparsity = a.SparsityRatio();
  const CacheKey key = MakeKey(m, k, n, sparsity);
  const int bucket = std::get<3>(key);
  ++exec_count_;
  const bool resample = resample_every_ > 0 && exec_count_ % resample_every_ == 0;

  const SelectionResult* sel = nullptr;
  if (handle != nullptr && handle->valid && handle->compiler == this && !resample &&
      handle->m == m && handle->k == k && handle->n == n && handle->sparsity_bucket == bucket &&
      handle->generation == selection_generation_) {
    // Plan-site hit: same shape and sparsity bucket as when this step's
    // kernel was selected — reuse it without consulting the cache map.
    ++cache_hits_;
    dispatch.cache_hit = true;
    sel = &handle->selection;
  } else {
    auto it = cache_.find(key);
    if (it == cache_.end()) {
      SelectionResult selected = SelectKernel(model_, db_, {&pattern}, m, k, n);
      it = cache_.emplace(key, std::move(selected)).first;
      ++kernels_compiled_;
    } else if (resample) {
      // Periodic sample (Fig. 5): re-run Algorithm 1 on this input and replace
      // the cached kernel if the pattern has drifted to a different optimum.
      SelectionResult fresh = SelectKernel(model_, db_, {&pattern}, m, k, n);
      if (fresh.best.rule.axis != it->second.best.rule.axis ||
          !(fresh.best.rule.dense_tile == it->second.best.rule.dense_tile) ||
          fresh.best.fallback_dense != it->second.best.fallback_dense) {
        it->second = std::move(fresh);
        ++reselections_;
        // Compiler-global invalidation: every plan-site handle re-validates
        // against the map on its next dispatch (cheap, and reselections are
        // rare — a per-key generation would only save those lookups).
        ++selection_generation_;
      } else {
        ++cache_hits_;
        dispatch.cache_hit = true;
      }
    } else {
      ++cache_hits_;
      dispatch.cache_hit = true;
    }
    if (handle != nullptr) {
      handle->valid = true;
      handle->compiler = this;
      handle->m = m;
      handle->k = k;
      handle->n = n;
      handle->sparsity_bucket = bucket;
      handle->generation = selection_generation_;
      handle->selection = it->second;
      sel = &handle->selection;  // stable even if the map rehashes later
    } else {
      sel = &it->second;
    }
  }
  dispatch.plan = sel->best;
  // Re-price for this exact tensor's sparsity (the cached rule is reused; the
  // cost always reflects the current input).
  if (!sel->best.fallback_dense) {
    dispatch.plan = PlanSparseMatmul(model_, sel->best.rule, m, k, n, pattern);
  }

  if (sel->best.fallback_dense) {
    MatMulInto(a, b, out);
  } else if (sel->best.rule.axis == MatmulAxis::kK) {
    PitKGatherMatmulInto(a, b, sel->best.rule.dense_tile.m, out);
  } else {
    PitRowGatherMatmulInto(a, b, out);
  }
  return dispatch;
}

}  // namespace pit
