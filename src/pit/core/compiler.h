// PitCompiler: the user-facing facade (Fig. 5).
//
// Owns the device cost model, the offline-profiled tile database, and a JIT
// cache of selected kernels keyed by (operator shape, sparsity signature).
// Given a sparse operand it runs online detection, selects (or re-uses) a
// kernel via Algorithm 1, and executes the corresponding functional path.
#ifndef PIT_CORE_COMPILER_H_
#define PIT_CORE_COMPILER_H_

#include <cstdint>
#include <map>
#include <tuple>

#include "pit/core/kernel_selection.h"
#include "pit/core/sparse_kernel.h"
#include "pit/gpusim/cost_model.h"
#include "pit/tensor/tensor.h"

namespace pit {

// Result of one compiled+executed sparse matmul.
struct PitExecution {
  Tensor output;
  PitMatmulPlan plan;       // simulated cost of the chosen kernel
  bool cache_hit = false;   // kernel came from the JIT cache
};

class PitCompiler {
 public:
  explicit PitCompiler(DeviceSpec device, Precision precision = Precision::kFp32);

  // C = A * B with dynamically sparse A: detect -> select -> execute.
  // Selection uses the actual sparsity of `a` as its (single) online sample.
  PitExecution SparseMatmul(const Tensor& a, const Tensor& b);

  // Pure planning entry for analytic patterns (benchmarks).
  SelectionResult Plan(const SparsityPattern& pattern, int64_t m, int64_t k, int64_t n,
                       const SelectionOptions& opts = {});

  const CostModel& cost_model() const { return model_; }
  const TileDatabase& tile_database() const { return db_; }

  // Fig. 5's "sparse tensor samples, periodically": every `every` executions
  // the compiler re-runs Algorithm 1 on the current input even on a cache
  // hit, so a drifting pattern (e.g. granularity change at the same sparsity
  // ratio) migrates to a better kernel. 0 disables re-sampling.
  void EnablePeriodicResample(int64_t every) { resample_every_ = every; }
  int64_t reselections() const { return reselections_; }

  int64_t kernels_compiled() const { return kernels_compiled_; }
  int64_t cache_hits() const { return cache_hits_; }

 private:
  // Sparsity signature: coarse bucket of sparsity ratio + shape, the cache key
  // granularity at which a selected kernel stays optimal.
  using CacheKey = std::tuple<int64_t, int64_t, int64_t, int>;
  CacheKey MakeKey(int64_t m, int64_t k, int64_t n, double sparsity) const;

  CostModel model_;
  TileDatabase db_;
  std::map<CacheKey, SelectionResult> cache_;
  int64_t kernels_compiled_ = 0;
  int64_t cache_hits_ = 0;
  int64_t resample_every_ = 0;
  int64_t exec_count_ = 0;
  int64_t reselections_ = 0;
};

}  // namespace pit

#endif  // PIT_CORE_COMPILER_H_
