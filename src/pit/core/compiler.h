// PitCompiler: the user-facing facade (Fig. 5).
//
// Owns the device cost model, the offline-profiled tile database, and a JIT
// cache of selected kernels keyed by (operator shape, sparsity signature).
// Given a sparse operand it runs online detection, selects (or re-uses) a
// kernel via Algorithm 1, and executes the corresponding functional path.
#ifndef PIT_CORE_COMPILER_H_
#define PIT_CORE_COMPILER_H_

#include <cstdint>
#include <map>
#include <tuple>

#include "pit/core/kernel_selection.h"
#include "pit/core/sparse_kernel.h"
#include "pit/gpusim/cost_model.h"
#include "pit/tensor/tensor.h"

namespace pit {

// Result of one compiled+executed sparse matmul.
struct PitExecution {
  Tensor output;
  PitMatmulPlan plan;       // simulated cost of the chosen kernel
  bool cache_hit = false;   // kernel came from the JIT cache
};

// As PitExecution but for the view form, which writes into caller storage
// instead of materializing an output tensor.
struct PitDispatch {
  PitMatmulPlan plan;
  bool cache_hit = false;
};

// Per-call-site kernel slot for planned execution. An ExecutionPlan owns one
// handle per PIT dispatch step; when the step's shape and sparsity bucket
// match the handle (and no periodic resample is due) the dispatch reuses the
// kernel selected at the same site without touching the JIT cache map — the
// compiler is hooked into the plan rather than consulted per call.
struct PitKernelHandle {
  bool valid = false;
  const void* compiler = nullptr;  // the PitCompiler that filled the handle
  int64_t m = 0, k = 0, n = 0;
  int sparsity_bucket = -1;  // 5%-step bucket, same granularity as the cache key
  int64_t generation = -1;   // compiler's reselection generation at fill time
  SelectionResult selection;
};

class PitCompiler {
 public:
  explicit PitCompiler(DeviceSpec device, Precision precision = Precision::kFp32);

  // C = A * B with dynamically sparse A: detect -> select -> execute.
  // Selection uses the actual sparsity of `a` as its (single) online sample.
  PitExecution SparseMatmul(const Tensor& a, const Tensor& b);

  // View form behind SparseMatmul and the planned executor's PIT steps:
  // writes C into `out` (typically an arena slice). `handle`, when given, is
  // the call site's cached kernel: a matching handle skips the cache map, a
  // stale or empty one falls through to the exact SparseMatmul selection path
  // (shared map, shared counters, periodic resampling included) and is
  // refreshed. Outputs are bitwise identical with or without a handle.
  PitDispatch SparseMatmulInto(ConstTensorView a, ConstTensorView b, TensorView out,
                               PitKernelHandle* handle = nullptr);

  // Pure planning entry for analytic patterns (benchmarks).
  SelectionResult Plan(const SparsityPattern& pattern, int64_t m, int64_t k, int64_t n,
                       const SelectionOptions& opts = {});

  const CostModel& cost_model() const { return model_; }
  const TileDatabase& tile_database() const { return db_; }

  // Fig. 5's "sparse tensor samples, periodically": every `every` executions
  // the compiler re-runs Algorithm 1 on the current input even on a cache
  // hit, so a drifting pattern (e.g. granularity change at the same sparsity
  // ratio) migrates to a better kernel. 0 disables re-sampling.
  void EnablePeriodicResample(int64_t every) { resample_every_ = every; }
  int64_t reselections() const { return reselections_; }

  int64_t kernels_compiled() const { return kernels_compiled_; }
  int64_t cache_hits() const { return cache_hits_; }

 private:
  // Sparsity signature: coarse bucket of sparsity ratio + shape, the cache key
  // granularity at which a selected kernel stays optimal.
  using CacheKey = std::tuple<int64_t, int64_t, int64_t, int>;
  CacheKey MakeKey(int64_t m, int64_t k, int64_t n, double sparsity) const;

  CostModel model_;
  TileDatabase db_;
  std::map<CacheKey, SelectionResult> cache_;
  // Bumped whenever a resample replaces a cached selection; handles filled
  // under an older generation fall back to the map, so a plan site always
  // dispatches exactly what the eager (map-only) path would.
  int64_t selection_generation_ = 0;
  int64_t kernels_compiled_ = 0;
  int64_t cache_hits_ = 0;
  int64_t resample_every_ = 0;
  int64_t exec_count_ = 0;
  int64_t reselections_ = 0;
};

}  // namespace pit

#endif  // PIT_CORE_COMPILER_H_
