// PIT sparse matmul: planning (cost) and functional execution.
//
// The generated sparse kernel of Fig. 7 has two phases — SRead/SWrite data
// rearrangement and dense-tile computation. The functional kernels here
// perform exactly those phases on host tensors; the planner prices the same
// execution with the gpusim cost model, including the online index build.
#ifndef PIT_CORE_SPARSE_KERNEL_H_
#define PIT_CORE_SPARSE_KERNEL_H_

#include <cstdint>

#include "pit/core/pit_rule.h"
#include "pit/core/sparsity_detector.h"
#include "pit/gpusim/cost_model.h"
#include "pit/sparse/coverage.h"
#include "pit/tensor/tensor.h"

namespace pit {

// Fractional extra time per dense tile for SRead/SWrite. The paper measures
// the rearrangement as "running at a speed close to the original dense
// computation tile" (§5.3); a few percent models the extra index reads.
inline constexpr double kSReadSWriteOverhead = 0.05;

// Plan (simulated execution) of one PIT sparse matmul.
struct PitMatmulPlan {
  PitRule rule;
  int64_t m = 0, k = 0, n = 0;
  int64_t num_exec_tiles = 0;       // dense computation tiles actually run
  int64_t num_micro_tiles = 0;      // nonzero micro-tiles gathered
  double covered_fraction = 0.0;    // micro-tile nonzero probability
  double sparsity_after_cover = 0.0;
  CostBreakdown cost;               // compute + launch + index build
  bool fallback_dense = false;      // plan degenerated to the dense kernel
};

struct PlanOptions {
  double sread_overhead = kSReadSWriteOverhead;
  bool include_index_build = true;
  bool tensor_core = false;
};

// Prices a sparse matmul C[m,n] = A[m,k] * B[k,n] with sparse A whose pattern
// is `pattern`, executed under `rule` (PIT-axis + micro-tile + dense tile).
PitMatmulPlan PlanSparseMatmul(const CostModel& model, const PitRule& rule, int64_t m, int64_t k,
                               int64_t n, const SparsityPattern& pattern,
                               const PlanOptions& opts = {});

// ---- Functional execution paths (numerics verified against MatMul) ----

// PIT rule on the m axis with micro-tile [1, K]: detect nonzero rows of A,
// SRead-gather them, run a dense matmul on the packed rows, SWrite-scatter
// the result rows back into C. Zero rows of A yield zero rows of C.
Tensor PitRowGatherMatmul(const Tensor& a, const Tensor& b,
                          const SparsityDetector& detector = SparsityDetector());

// PIT rule on the k axis with micro-tile [block_m, 1]: for each block of
// block_m rows of A, detect the k positions with any nonzero, gather those
// columns of A and the matching rows of B, and run a dense matmul per block.
Tensor PitKGatherMatmul(const Tensor& a, const Tensor& b, int64_t block_m,
                        const SparsityDetector& detector = SparsityDetector());

// View forms of the two planned-dispatch kernels: identical math, but the
// caller owns the output storage (typically an execution-arena slice). The
// output is fully defined — uncovered rows/blocks are written as zeros.
void PitRowGatherMatmulInto(ConstTensorView a, ConstTensorView b, TensorView c,
                            const SparsityDetector& detector = SparsityDetector());
void PitKGatherMatmulInto(ConstTensorView a, ConstTensorView b, int64_t block_m, TensorView c,
                          const SparsityDetector& detector = SparsityDetector());

// General 2-D micro-tile kernel (the literal Fig. 7 structure): detects
// nonzero micro-tiles of shape `micro` in A, and per block row gathers the
// covered k-ranges of A and B into packed operands before one dense matmul
// per block row. PitKGatherMatmul is the micro.cols == 1 special case;
// PitRowGatherMatmul is micro == [1, K]. Exact for any micro shape.
Tensor PitMicroTileMatmul(const Tensor& a, const Tensor& b, const MicroTileShape& micro,
                          const SparsityDetector& detector = SparsityDetector());

// Both-sparse variant of Fig. 4 (right): gathers k indices where A's column
// AND B's row are both nonzero (a zero on either side contributes nothing).
Tensor PitDualKGatherMatmul(const Tensor& a, const Tensor& b,
                            const SparsityDetector& detector = SparsityDetector());

// MoE-style grouped matmul: tokens[t, h] routed by expert_of[t] to one of
// `weights` [E][h, f]; each expert SRead-gathers only its tokens, computes
// densely, and SWrites rows into the output (§5.1, Switch Transformer).
Tensor PitMoEMatmul(const Tensor& tokens, const std::vector<Tensor>& expert_weights,
                    const std::vector<int>& expert_of);

}  // namespace pit

#endif  // PIT_CORE_SPARSE_KERNEL_H_
