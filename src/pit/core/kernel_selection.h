// Algorithm 1: kernel selection for a dynamically sparse operator.
//
// Iterates over every dense computation tile in the tile database and every
// PIT-axis of the operator, derives the micro-tile, counts covering
// micro-tiles with CoverAlgo over the sparsity samples, and estimates cost as
// num_tiles * tile_cost. Falls back to dense execution when no sparse plan
// beats the best dense kernel (low sparsity). The search itself is priced so
// the §5.5 claim (30–100 us online search) can be checked.
#ifndef PIT_CORE_KERNEL_SELECTION_H_
#define PIT_CORE_KERNEL_SELECTION_H_

#include <cstdint>
#include <vector>

#include "pit/core/sparse_kernel.h"
#include "pit/core/tile_database.h"
#include "pit/sparse/coverage.h"

namespace pit {

struct SelectionResult {
  PitMatmulPlan best;              // plan under the winning rule (or dense)
  double dense_cost_us = 0.0;      // best dense alternative
  int candidates_evaluated = 0;    // (tile, axis) pairs scored
  double search_wall_us = 0.0;     // measured host time of the search itself
};

struct SelectionOptions {
  // PIT-axes to consider for the sparse-A matmul family.
  std::vector<MatmulAxis> axes = {MatmulAxis::kM, MatmulAxis::kK};
  Layout a_layout = Layout::kRowMajor;
  PlanOptions plan;
};

// Selects the best kernel for C[m,n] = A[m,k] * B[k,n] with sparse A.
// `samples` are sparsity samples of A (the paper feeds n samples; costs are
// summed across them, Algorithm 1 line 7).
SelectionResult SelectKernel(const CostModel& model, const TileDatabase& db,
                             const std::vector<const SparsityPattern*>& samples, int64_t m,
                             int64_t k, int64_t n, const SelectionOptions& opts = {});

}  // namespace pit

#endif  // PIT_CORE_KERNEL_SELECTION_H_
