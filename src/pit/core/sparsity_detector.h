// Online sparsity detection (§3.3).
//
// PIT constructs the nonzero index at micro-tile granularity, on the
// accelerator, in an *unordered* fashion: concurrent thread blocks append
// nonzero micro-tile offsets to a pre-allocated array via atomicAdd, so the
// resulting order depends on scheduling. Because the consumer permutes along
// a PIT-axis, no ordering is ever required — which is exactly why this is so
// much cheaper than building CSR. This module reproduces that functionally
// (with a deterministic scheduling shuffle standing in for the GPU's
// unpredictable block order) and prices it with the cost model.
#ifndef PIT_CORE_SPARSITY_DETECTOR_H_
#define PIT_CORE_SPARSITY_DETECTOR_H_

#include <cstdint>
#include <vector>

#include "pit/core/pit_rule.h"
#include "pit/gpusim/cost_model.h"
#include "pit/tensor/tensor.h"

namespace pit {

// Index of the nonzero micro-tiles of a 2-D tensor. `offsets` holds linear
// micro-tile ids (block_row * blocks_per_row + block_col); order is
// unspecified (unordered construction).
struct MicroTileIndex {
  MicroTileShape micro_tile;
  int64_t block_rows = 0;
  int64_t block_cols = 0;
  std::vector<int64_t> offsets;

  int64_t NumNonZero() const { return static_cast<int64_t>(offsets.size()); }
  int64_t TotalMicroTiles() const { return block_rows * block_cols; }
  // Fraction of the tensor area covered by nonzero micro-tiles.
  double CoveredFraction() const {
    return TotalMicroTiles() == 0
               ? 0.0
               : static_cast<double>(NumNonZero()) / static_cast<double>(TotalMicroTiles());
  }
  // The paper's "sparsity ratio after cover" (Table 3).
  double SparsityAfterCover() const { return 1.0 - CoveredFraction(); }

  int64_t BlockRowOf(int64_t offset) const { return offset / block_cols; }
  int64_t BlockColOf(int64_t offset) const { return offset % block_cols; }
};

class SparsityDetector {
 public:
  // `shuffle_seed` stands in for the GPU's unordered thread-block scheduling:
  // two different seeds yield differently-ordered but equivalent indexes.
  explicit SparsityDetector(uint64_t shuffle_seed = 1) : shuffle_seed_(shuffle_seed) {}

  // Scans `tensor` (2-D) and returns the unordered nonzero micro-tile index.
  // Dimensions that do not divide evenly are handled by ragged edge tiles.
  MicroTileIndex Detect(const Tensor& tensor, const MicroTileShape& micro_tile) const;
  // View form: lets the planned executor detect directly on an arena slice.
  MicroTileIndex Detect(ConstTensorView tensor, const MicroTileShape& micro_tile) const;

  // As Detect, but additionally sorts offsets — the ablation arm showing what
  // ordered construction (CSR-style) would force us to pay.
  MicroTileIndex DetectOrdered(const Tensor& tensor, const MicroTileShape& micro_tile) const;

  // Simulated cost of the unordered on-device index build: one streaming scan
  // of the tensor plus an atomic append per nonzero micro-tile.
  static double DetectCostUs(const CostModel& model, int64_t tensor_elems,
                             int64_t nonzero_micro_tiles);

  // Simulated cost when the index must come out ordered (prefix-sum + extra
  // passes) — what cuSPARSE/Triton-style construction pays (Fig. 18).
  static double OrderedDetectCostUs(const CostModel& model, int64_t tensor_elems,
                                    int64_t nonzero_micro_tiles);

 private:
  uint64_t shuffle_seed_;
};

// Convenience: per-block-row count of nonzero micro-tiles, used by k-axis
// coverage costing (each block row gathers its own set of micro-tiles).
std::vector<int64_t> NonZeroMicroTilesPerBlockRow(const MicroTileIndex& index);

}  // namespace pit

#endif  // PIT_CORE_SPARSITY_DETECTOR_H_
