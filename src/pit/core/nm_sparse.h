// N:M Sparse-Tensor-Core augmentation (the future-work extension sketched in
// the paper's §6): NVIDIA's Sparse Tensor Core only accepts a strict 2-in-4
// pattern (every 1x4 tile has exactly >=2 zeros). Real dynamic tensors mix
// three kinds of 1x4 tiles — all-zero, 2:4-conforming, and denser-than-2:4.
// PIT's micro-tile gathering can route each kind to its best engine:
//   * all-zero tiles    -> skipped entirely (SRead never loads them),
//   * conforming tiles  -> sparse tensor core at 2x tensor-core throughput,
//   * dense tiles       -> regular (dense) tensor core.
// This module provides the pattern analysis, the cost comparison against
// "dense TC only" and "strict 2:4 only" execution, and a functional kernel.
#ifndef PIT_CORE_NM_SPARSE_H_
#define PIT_CORE_NM_SPARSE_H_

#include <cstdint>

#include "pit/common/rng.h"
#include "pit/gpusim/cost_model.h"
#include "pit/tensor/tensor.h"

namespace pit {

// Classification of the 1x4 tiles of a 2-D tensor (row-major groups of 4).
struct NmTileStats {
  int64_t total = 0;
  int64_t all_zero = 0;    // 0 nonzeros
  int64_t conforming = 0;  // 1..2 nonzeros (valid 2:4 pattern)
  int64_t dense = 0;       // 3..4 nonzeros (must run on the dense path)

  double AllZeroFraction() const { return Ratio(all_zero); }
  double ConformingFraction() const { return Ratio(conforming); }
  double DenseFraction() const { return Ratio(dense); }

 private:
  double Ratio(int64_t n) const {
    return total == 0 ? 0.0 : static_cast<double>(n) / static_cast<double>(total);
  }
};

NmTileStats AnalyzeNmPattern(const Tensor& a);

// Synthesizes a [rows, cols] tensor whose 1x4 tiles are all-zero /
// 2:4-conforming / dense with the given probabilities (must sum to <= 1;
// the remainder is dense).
Tensor MakeNmMixedTensor(int64_t rows, int64_t cols, double frac_all_zero,
                         double frac_conforming, Rng& rng);

// Cost of C[m,n] = A[m,k] * B[k,n] (fp16) under three execution strategies.
struct NmCostComparison {
  double dense_tc_us = 0.0;       // dense tensor core over everything
  double strict_24_us = 0.0;      // mma.sp if the WHOLE tensor conforms,
                                  // otherwise forced dense fallback
  double pit_augmented_us = 0.0;  // PIT routing per micro-tile kind
  bool strict_24_feasible = false;
};
NmCostComparison CompareNmStrategies(const CostModel& model, const NmTileStats& stats, int64_t m,
                                     int64_t k, int64_t n);

// Functional reference: the augmented execution computes the exact product
// (routing zeros differently cannot change the math). Provided so tests pin
// the equivalence explicitly.
Tensor NmAugmentedMatmul(const Tensor& a, const Tensor& b);

}  // namespace pit

#endif  // PIT_CORE_NM_SPARSE_H_
