// PIT rules: the (PIT-axis, micro-tile, dense computation tile) triples of
// §3.2. A rule describes how sparsely-located micro-tiles are gathered along
// one PIT-axis into a GPU-efficient dense tile.
#ifndef PIT_CORE_PIT_RULE_H_
#define PIT_CORE_PIT_RULE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "pit/gpusim/cost_model.h"

namespace pit {

// Shape of a micro-tile over a 2-D operand (rows x cols). The minimum size is
// set by the memory-transaction granularity (1x8 fp32 on CUDA, §3.1).
struct MicroTileShape {
  int64_t rows = 1;
  int64_t cols = 1;

  int64_t Elems() const { return rows * cols; }
  bool operator==(const MicroTileShape&) const = default;
  std::string ToString() const;
};

// Matmul axes a PIT rule can permute. The paper shows m, n and k are all
// PIT-axes of C[m,n] += A[m,k] * B[k,n] (Table 1); this runtime implements
// rules over each of them for the 2-D matmul family.
enum class MatmulAxis { kM, kK, kN };
const char* MatmulAxisName(MatmulAxis axis);

// Memory layout of the sparse operand. Determines the micro-tile shape: when
// the operand is contiguous on the PIT-axis the layout must first be flipped
// (piggybacked on the producer, §3.2), so the rule derivation assumes the
// non-contiguous orientation is reachable either way but records whether a
// flip is needed.
enum class Layout { kRowMajor, kColMajor };

// A complete PIT rule for sparse matmul.
struct PitRule {
  MatmulAxis axis = MatmulAxis::kM;
  MicroTileShape micro_tile;
  TileShape dense_tile;
  bool tensor_core = false;
  // True if the sparse operand must be re-laid-out (piggybacked, ~free).
  bool needs_layout_flip = false;

  std::string ToString() const;
};

// Derives the micro-tile for a dense tile + PIT-axis + sparse-operand layout,
// per §3.2: micro-tile extent is 1 on the PIT-axis (so micro-tiles can be
// permuted independently) and matches the dense tile on the other axes.
// For the matmul family with sparse A[m,k]:
//   axis m  -> micro-tile [1, tile.k]  (row slices, row-major friendly)
//   axis k  -> micro-tile [tile.m, 1]  (column slices; row-major A needs flip)
// For sparse B[k,n]: axis k -> [1, tile.n] rows of B; axis n -> [tile.k, 1].
MicroTileShape DeriveMicroTileForA(const TileShape& dense_tile, MatmulAxis axis, Layout a_layout,
                                   bool* needs_flip);

// Builds the PIT rule for a dense tile and axis (sparse operand = A).
PitRule MakeRuleForSparseA(const TileShape& dense_tile, MatmulAxis axis, Layout a_layout,
                           bool tensor_core = false);

}  // namespace pit

#endif  // PIT_CORE_PIT_RULE_H_
