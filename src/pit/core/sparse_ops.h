// PIT execution of the remaining Table-1 operators: convolution (PIT-axes
// n, m, f), ReduceSum (p, l) and vector addition (p).
//
// Convolution's spatial axes (x, y, i, j) derive new axes and are NOT
// PIT-axes; the channel axes are. Channel-level sparsity is the dominant
// dynamic-sparsity pattern for convolutions (pruned filters, gated channels),
// and PIT gathers live channels/filters into packed dense convolutions.
#ifndef PIT_CORE_SPARSE_OPS_H_
#define PIT_CORE_SPARSE_OPS_H_

#include <vector>

#include "pit/core/sparsity_detector.h"
#include "pit/tensor/tensor.h"

namespace pit {

// Channel-gathered convolution (PIT-axis m = input channel): detects input
// channels of `input` [N,C,H,W] that are entirely zero across the batch,
// gathers the live channels of input AND the matching channels of `weight`
// [F,C,KH,KW], and convolves the packed operands. Exact: dropped channels
// contribute nothing.
Tensor PitChannelGatherConv2D(const Tensor& input, const Tensor& weight);

// Filter-gathered convolution (PIT-axis f = output filter): skips filters
// whose weights are entirely zero and scatters results into the right output
// channels (zeros elsewhere).
Tensor PitFilterGatherConv2D(const Tensor& input, const Tensor& weight);

// Indices of nonzero input channels ([N,C,H,W], any batch/pixel nonzero).
std::vector<int64_t> LiveInputChannels(const Tensor& input);
// Indices of filters with any nonzero weight ([F,C,KH,KW]).
std::vector<int64_t> LiveFilters(const Tensor& weight);

// Sparse ReduceSum C[p] = sum_l A[p,l] (both axes PIT): detects nonzero
// micro-tiles of shape [1, micro_cols] and accumulates only those, in the
// detector's (unordered) schedule — correctness relies on sum's
// commutativity+associativity exactly as Theorem 1 states.
Tensor PitSparseReduceSum(const Tensor& a, int64_t micro_cols = 8,
                          const SparsityDetector& detector = SparsityDetector());

// Sparse vector addition C[p] = A[p] + B[p] over micro-tiles: tiles where
// both operands are zero are skipped (output stays zero there).
Tensor PitSparseVectorAdd(const Tensor& a, const Tensor& b, int64_t micro_cols = 8,
                          const SparsityDetector& detector = SparsityDetector());

}  // namespace pit

#endif  // PIT_CORE_SPARSE_OPS_H_
