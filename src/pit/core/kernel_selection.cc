#include "pit/core/kernel_selection.h"

#include <chrono>
#include <limits>

#include "pit/common/check.h"

namespace pit {

SelectionResult SelectKernel(const CostModel& model, const TileDatabase& db,
                             const std::vector<const SparsityPattern*>& samples, int64_t m,
                             int64_t k, int64_t n, const SelectionOptions& opts) {
  PIT_CHECK(!samples.empty());
  const auto t0 = std::chrono::steady_clock::now();

  SelectionResult result;
  double best_cost = std::numeric_limits<double>::infinity();

  for (const TileEntry& entry : db.entries()) {
    for (MatmulAxis axis : opts.axes) {
      const PitRule rule = MakeRuleForSparseA(entry.shape, axis, opts.a_layout, entry.tensor_core);
      double total = 0.0;
      PitMatmulPlan last_plan;
      for (const SparsityPattern* sample : samples) {
        last_plan = PlanSparseMatmul(model, rule, m, k, n, *sample, opts.plan);
        total += last_plan.cost.Total();
      }
      ++result.candidates_evaluated;
      if (total < best_cost) {
        best_cost = total;
        result.best = last_plan;  // plan of the final sample under best rule
      }
    }
  }

  // Dense fallback (Algorithm 1's low-sparsity path): if the best dense
  // kernel beats every sparse plan, run dense.
  const TileEntry& dense = db.BestDenseTile(model, m, k, n);
  result.dense_cost_us =
      model.DenseMatmul(m, k, n, dense.shape, dense.tensor_core).Total() *
      static_cast<double>(samples.size());
  if (result.dense_cost_us <= best_cost) {
    result.best.fallback_dense = true;
    result.best.rule.dense_tile = dense.shape;
    result.best.rule.tensor_core = dense.tensor_core;
    result.best.cost = model.DenseMatmul(m, k, n, dense.shape, dense.tensor_core);
    result.best.num_exec_tiles = ((m + dense.shape.m - 1) / dense.shape.m) *
                                 ((k + dense.shape.k - 1) / dense.shape.k) *
                                 ((n + dense.shape.n - 1) / dense.shape.n);
    result.best.covered_fraction = 1.0;
    result.best.sparsity_after_cover = 0.0;
  }

  const auto t1 = std::chrono::steady_clock::now();
  result.search_wall_us = std::chrono::duration<double, std::micro>(t1 - t0).count();
  return result;
}

}  // namespace pit
