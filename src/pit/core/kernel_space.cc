#include "pit/core/kernel_space.h"

namespace pit {

std::vector<PitRule> EnumerateRuleSpace(const TileDatabase& db) {
  std::vector<PitRule> rules;
  for (const TileEntry& entry : db.entries()) {
    for (MatmulAxis axis : {MatmulAxis::kM, MatmulAxis::kK, MatmulAxis::kN}) {
      for (Layout layout : {Layout::kRowMajor, Layout::kColMajor}) {
        rules.push_back(MakeRuleForSparseA(entry.shape, axis, layout, entry.tensor_core));
      }
    }
  }
  return rules;
}

KernelSpaceStats SummarizeKernelSpace(const TileDatabase& db) {
  KernelSpaceStats stats;
  for (const TileEntry& entry : db.entries()) {
    if (entry.tensor_core) {
      ++stats.wmma_kernels;
    } else {
      ++stats.dense_kernels;
    }
  }
  stats.rules_per_dense = 3 * 2;  // axes x layouts
  stats.sparse_kernels = static_cast<int64_t>(EnumerateRuleSpace(db).size());
  return stats;
}

}  // namespace pit
