#include "pit/core/tile_database.h"

#include <limits>

#include "pit/common/check.h"

namespace pit {

TileDatabase TileDatabase::BuildDefault(const CostModel& model, bool include_wmma) {
  TileDatabase db;
  const int64_t ms[] = {8, 16, 32, 64, 128};
  const int64_t ns[] = {32, 64, 128};
  const int64_t ks[] = {32, 64};
  for (int64_t m : ms) {
    for (int64_t n : ns) {
      for (int64_t k : ks) {
        TileShape shape{m, k, n};
        db.Add(TileEntry{shape, false, model.MatmulTileCost(shape, false)});
        if (include_wmma && model.precision() == Precision::kFp16 && WmmaCompatible(shape)) {
          db.Add(TileEntry{shape, true, model.MatmulTileCost(shape, true)});
        }
      }
    }
  }
  return db;
}

const TileEntry& TileDatabase::BestDenseTile(const CostModel& model, int64_t m, int64_t k,
                                             int64_t n) const {
  PIT_CHECK(!entries_.empty());
  const TileEntry* best = nullptr;
  double best_cost = std::numeric_limits<double>::infinity();
  for (const auto& e : entries_) {
    const double cost = model.DenseMatmul(m, k, n, e.shape, e.tensor_core).Total();
    if (cost < best_cost) {
      best_cost = cost;
      best = &e;
    }
  }
  return *best;
}

}  // namespace pit
