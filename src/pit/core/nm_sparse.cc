#include "pit/core/nm_sparse.h"

#include <algorithm>

#include "pit/common/check.h"
#include "pit/core/sparse_kernel.h"
#include "pit/core/sparsity_detector.h"
#include "pit/tensor/ops.h"

namespace pit {

NmTileStats AnalyzeNmPattern(const Tensor& a) {
  PIT_CHECK_EQ(a.rank(), 2);
  PIT_CHECK_EQ(a.dim(1) % 4, 0) << "1x4 tiling requires cols % 4 == 0";
  NmTileStats stats;
  for (int64_t r = 0; r < a.dim(0); ++r) {
    for (int64_t c = 0; c < a.dim(1); c += 4) {
      int nonzeros = 0;
      for (int64_t j = 0; j < 4; ++j) {
        nonzeros += a.At(r, c + j) != 0.0f ? 1 : 0;
      }
      ++stats.total;
      if (nonzeros == 0) {
        ++stats.all_zero;
      } else if (nonzeros <= 2) {
        ++stats.conforming;
      } else {
        ++stats.dense;
      }
    }
  }
  return stats;
}

Tensor MakeNmMixedTensor(int64_t rows, int64_t cols, double frac_all_zero,
                         double frac_conforming, Rng& rng) {
  PIT_CHECK_EQ(cols % 4, 0);
  PIT_CHECK_LE(frac_all_zero + frac_conforming, 1.0 + 1e-12);
  Tensor t({rows, cols});
  for (int64_t r = 0; r < rows; ++r) {
    for (int64_t c = 0; c < cols; c += 4) {
      const double x = rng.NextDouble();
      int nonzeros = 0;
      if (x < frac_all_zero) {
        nonzeros = 0;
      } else if (x < frac_all_zero + frac_conforming) {
        nonzeros = static_cast<int>(rng.NextInt(1, 2));
      } else {
        nonzeros = static_cast<int>(rng.NextInt(3, 4));
      }
      // Place `nonzeros` values at distinct positions within the 1x4 tile.
      int placed = 0;
      while (placed < nonzeros) {
        const int64_t j = static_cast<int64_t>(rng.NextBelow(4));
        if (t.At(r, c + j) == 0.0f) {
          const float v = rng.NextFloat(0.1f, 1.0f);
          t.At(r, c + j) = rng.NextBool(0.5) ? v : -v;
          ++placed;
        }
      }
    }
  }
  return t;
}

NmCostComparison CompareNmStrategies(const CostModel& model, const NmTileStats& stats, int64_t m,
                                     int64_t k, int64_t n) {
  PIT_CHECK(model.precision() == Precision::kFp16) << "sparse tensor cores are fp16";
  NmCostComparison cmp;
  const TileShape tile{32, 32, 64};
  PIT_CHECK(WmmaCompatible(tile));

  // Dense tensor core: every tile executes.
  cmp.dense_tc_us = model.DenseMatmul(m, k, n, tile, /*tensor_core=*/true).Total();

  // Strict 2:4 (mma.sp): only legal when no 1x4 tile has >2 nonzeros (the
  // hardware constraint the paper calls out). All-zero tiles still conform
  // (>=2 zeros) but are *computed* — the hardware cannot skip them.
  cmp.strict_24_feasible = stats.dense == 0;
  const double sp_speedup = 2.0;  // mma.sp executes 2:4 data at 2x TC rate
  cmp.strict_24_us = cmp.strict_24_feasible ? cmp.dense_tc_us / sp_speedup : cmp.dense_tc_us;

  // PIT-augmented: SRead-gather the three tile kinds apart (micro-tile 1x4,
  // k is a PIT-axis). All-zero tiles vanish; conforming tiles run at the
  // sparse-TC rate; dense tiles at the dense-TC rate; plus the SRead/SWrite
  // overhead and the online index build.
  const double conforming_us =
      cmp.dense_tc_us * stats.ConformingFraction() / sp_speedup;
  const double dense_part_us = cmp.dense_tc_us * stats.DenseFraction();
  const double index_us = SparsityDetector::DetectCostUs(
      model, m * k, std::max<int64_t>(stats.conforming + stats.dense, 1));
  cmp.pit_augmented_us =
      (conforming_us + dense_part_us) * (1.0 + kSReadSWriteOverhead) + index_us;
  return cmp;
}

Tensor NmAugmentedMatmul(const Tensor& a, const Tensor& b) {
  // The routing decision only moves zeros between engines; the math is the
  // exact product. (On hardware the three partitions accumulate into the
  // same C via SWrite; k is a PIT-axis, so partition order is irrelevant.)
  return MatMul(a, b);
}

}  // namespace pit
