// Einsum-style tensor-expression IR and PIT-axis analysis.
//
// The paper (§3.2, Table 1, Theorem 1) derives, for each operator expressed as
// a tensor expression, the set of axes whose index order can be permuted
// without changing the result ("PIT-axes"):
//   * axes involved in derived index terms (e.g. convolution's `x + i`) are
//     never PIT-axes;
//   * spatial axes (appearing in the output) only change layout → PIT-axes;
//   * reduction axes are PIT-axes iff the reduction is commutative and
//     associative (sum, max, min, prod).
// This module parses expressions like "C[m,n] += A[m,k] * B[k,n]" and performs
// exactly that analysis.
#ifndef PIT_EXPR_EINSUM_H_
#define PIT_EXPR_EINSUM_H_

#include <optional>
#include <string>
#include <vector>

namespace pit {

// Kind of reduction applied over non-output axes.
enum class ReduceKind {
  kNone,  // pure spatial expression ("=", no reduction axes expected)
  kSum,   // "+=" — commutative & associative
  kMax,
  kMin,
  kProd,
  // A reducer that is not both commutative and associative (e.g. "first",
  // stateful scan). Exists so tests can exercise the negative branch of
  // Theorem 1.
  kNonCommutative,
};

bool ReduceIsCommutativeAssociative(ReduceKind kind);
const char* ReduceKindName(ReduceKind kind);

// One index slot of a tensor reference: either a single variable ("m") or a
// derived term combining several ("x+i"), which poisons its variables for
// PIT purposes.
struct AxisTerm {
  std::vector<std::string> vars;
  bool derived() const { return vars.size() > 1; }
  std::string ToString() const;
};

struct TensorRef {
  std::string name;
  std::vector<AxisTerm> axes;
  std::string ToString() const;
};

// Classification of one index variable of the expression.
enum class AxisKind { kSpatial, kReduction };

struct AxisInfo {
  std::string name;
  AxisKind kind = AxisKind::kSpatial;
  bool is_pit_axis = false;
  bool in_derived_term = false;
  std::string reason;  // human-readable justification (for docs & debugging)
};

// A parsed tensor expression: output op= input0 * input1 * ...
struct EinsumExpr {
  TensorRef output;
  std::vector<TensorRef> inputs;
  ReduceKind reduce = ReduceKind::kSum;
  // True when inputs combine additively ("C[p] = A[p] + B[p]") rather than
  // multiplicatively; only affects printing, not axis analysis.
  bool additive_combine = false;

  std::string ToString() const;

  // Theorem 1: classify every axis and mark PIT-axes.
  std::vector<AxisInfo> AnalyzeAxes() const;
  // Names of the PIT-axes, in order of first appearance.
  std::vector<std::string> PitAxes() const;
  // Lookup a single axis' info; nullopt if the variable does not occur.
  std::optional<AxisInfo> FindAxis(const std::string& name) const;
};

// Parses expressions of the form:
//   "C[m,n] += A[m,k] * B[k,n]"          (sum reduction)
//   "C[p] = A[p] + B[p]"                 (spatial, additive combine)
//   "C[n,f,x,y] += A[n,m,x+i,y+j] * B[f,m,i,j]"   (derived terms)
// Aborts (PIT_CHECK) on malformed input; ParseEinsumOrNull returns nullopt.
EinsumExpr ParseEinsum(const std::string& text);
std::optional<EinsumExpr> ParseEinsumOrNull(const std::string& text);

// The operator table of the paper (Table 1).
EinsumExpr ReduceSumExpr();     // C[p] += A[p,l]
EinsumExpr VectorAddExpr();     // C[p] = A[p] + B[p]
EinsumExpr MatMulExpr();        // C[m,n] += A[m,k] * B[k,n]
EinsumExpr BatchMatMulExpr();   // C[b,m,n] += A[b,m,k] * B[b,k,n]
EinsumExpr ConvolutionExpr();   // C[n,f,x,y] += A[n,m,x+i,y+j] * B[f,m,i,j]

}  // namespace pit

#endif  // PIT_EXPR_EINSUM_H_
