#include "pit/expr/op_registry.h"

#include <sstream>

#include "pit/common/check.h"

namespace pit {

std::string GenericMicroTile::ToString() const {
  std::ostringstream os;
  os << "(";
  for (size_t i = 0; i < extents.size(); ++i) {
    os << (i ? "," : "") << operand_axes[i] << "=" << extents[i];
  }
  os << ")";
  return os.str();
}

std::string GenericRule::ToString() const {
  std::ostringstream os;
  os << "GenericRule{axis=" << pit_axis << ", operand=" << operand_index
     << ", micro=" << micro_tile.ToString() << (needs_layout_flip ? ", flip" : "") << "}";
  return os.str();
}

std::vector<GenericRule> DeriveRules(const EinsumExpr& expr, int operand_index,
                                     int64_t tile_extent) {
  PIT_CHECK_GE(operand_index, 0);
  PIT_CHECK_LT(static_cast<size_t>(operand_index), expr.inputs.size());
  const TensorRef& operand = expr.inputs[static_cast<size_t>(operand_index)];

  // Operand axes must be simple variables for micro-tiling (derived terms
  // like x+i are not permutable and the operand cannot be micro-tiled on
  // them; such dimensions keep extent = full and are skipped as PIT-axes).
  std::vector<GenericRule> rules;
  const auto infos = expr.AnalyzeAxes();
  for (const auto& info : infos) {
    if (!info.is_pit_axis) {
      continue;
    }
    // The axis must index this operand (permuting an axis the operand does
    // not carry never helps its sparsity).
    int axis_dim = -1;
    for (size_t d = 0; d < operand.axes.size(); ++d) {
      if (!operand.axes[d].derived() && operand.axes[d].vars[0] == info.name) {
        axis_dim = static_cast<int>(d);
        break;
      }
    }
    if (axis_dim < 0) {
      continue;
    }
    GenericRule rule;
    rule.pit_axis = info.name;
    rule.operand_index = operand_index;
    for (size_t d = 0; d < operand.axes.size(); ++d) {
      rule.micro_tile.operand_axes.push_back(operand.axes[d].ToString());
      if (static_cast<int>(d) == axis_dim) {
        rule.micro_tile.extents.push_back(1);  // extent 1 on the PIT-axis
      } else if (operand.axes[d].derived()) {
        rule.micro_tile.extents.push_back(0);  // 0 = full extent (not tiled)
      } else {
        rule.micro_tile.extents.push_back(tile_extent);
      }
    }
    // Row-major operands are contiguous on their LAST dimension; if that is
    // the PIT-axis, §3.2 requires flipping the layout at the producer so the
    // micro-tiles can be fetched with saturated transactions.
    rule.needs_layout_flip = axis_dim == static_cast<int>(operand.axes.size()) - 1;
    rules.push_back(std::move(rule));
  }
  return rules;
}

GenericRule FindRuleForAxis(const std::vector<GenericRule>& rules, const std::string& axis) {
  for (const auto& r : rules) {
    if (r.pit_axis == axis) {
      return r;
    }
  }
  PIT_CHECK(false) << "no rule for axis " << axis;
  return {};
}

}  // namespace pit
