// Generic operator registry: from einsum expression to PIT rule candidates.
//
// §3.2 describes micro-tile derivation in terms of an operator's tensor
// expression: pick a PIT-axis, set the micro-tile extent to 1 on that axis
// and to the dense tile's extent on the operand's other axes; if the sparse
// operand's memory layout is contiguous on the PIT-axis, a layout flip must
// be piggybacked at the producer. The matmul-specific derivation in
// core/pit_rule.h is the specialization of the algorithm implemented here,
// which works for ANY parsed einsum expression and any sparse operand —
// including BatchMatMul and the channel axes of convolution.
#ifndef PIT_EXPR_OP_REGISTRY_H_
#define PIT_EXPR_OP_REGISTRY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "pit/expr/einsum.h"

namespace pit {

// Micro-tile extent per axis of one operand: 1 on the PIT-axis, the dense
// tile's extent elsewhere, and the full axis where the tile does not split.
struct GenericMicroTile {
  std::vector<std::string> operand_axes;  // axis variable per dimension
  std::vector<int64_t> extents;           // micro-tile extent per dimension
  std::string ToString() const;
};

// One candidate transformation for a (expression, sparse operand) pair.
struct GenericRule {
  std::string pit_axis;
  int operand_index = 0;      // which input is sparse
  GenericMicroTile micro_tile;
  // True if the operand's innermost (last) dimension is the PIT-axis: the
  // layout is contiguous there and must be flipped at the producer.
  bool needs_layout_flip = false;
  std::string ToString() const;
};

// Derives every feasible rule for `operand_index` of `expr`:
// one per PIT-axis that actually indexes that operand. `tile_extent` is the
// dense tile's extent used for the non-PIT axes of the operand (the k/m
// extents of the matmul specialization); axes absent from the tile keep
// extent 1 so the rule stays valid for any tiling.
std::vector<GenericRule> DeriveRules(const EinsumExpr& expr, int operand_index,
                                     int64_t tile_extent = 32);

// Cross-check helper: the matmul specialization must agree with the generic
// derivation (tested in op_registry_test).
GenericRule FindRuleForAxis(const std::vector<GenericRule>& rules, const std::string& axis);

}  // namespace pit

#endif  // PIT_EXPR_OP_REGISTRY_H_
