#include "pit/expr/einsum.h"

#include <algorithm>
#include <cctype>
#include <sstream>

#include "pit/common/check.h"

namespace pit {

bool ReduceIsCommutativeAssociative(ReduceKind kind) {
  switch (kind) {
    case ReduceKind::kSum:
    case ReduceKind::kMax:
    case ReduceKind::kMin:
    case ReduceKind::kProd:
      return true;
    case ReduceKind::kNone:
    case ReduceKind::kNonCommutative:
      return false;
  }
  return false;
}

const char* ReduceKindName(ReduceKind kind) {
  switch (kind) {
    case ReduceKind::kNone:
      return "none";
    case ReduceKind::kSum:
      return "sum";
    case ReduceKind::kMax:
      return "max";
    case ReduceKind::kMin:
      return "min";
    case ReduceKind::kProd:
      return "prod";
    case ReduceKind::kNonCommutative:
      return "non-commutative";
  }
  return "?";
}

std::string AxisTerm::ToString() const {
  std::string s;
  for (size_t i = 0; i < vars.size(); ++i) {
    if (i) {
      s += "+";
    }
    s += vars[i];
  }
  return s;
}

std::string TensorRef::ToString() const {
  std::string s = name + "[";
  for (size_t i = 0; i < axes.size(); ++i) {
    if (i) {
      s += ",";
    }
    s += axes[i].ToString();
  }
  return s + "]";
}

std::string EinsumExpr::ToString() const {
  std::string s = output.ToString();
  s += reduce == ReduceKind::kNone ? " = " : " += ";
  for (size_t i = 0; i < inputs.size(); ++i) {
    if (i) {
      s += additive_combine ? " + " : " * ";
    }
    s += inputs[i].ToString();
  }
  return s;
}

std::vector<AxisInfo> EinsumExpr::AnalyzeAxes() const {
  std::vector<AxisInfo> infos;
  auto find = [&](const std::string& v) -> AxisInfo* {
    for (auto& info : infos) {
      if (info.name == v) {
        return &info;
      }
    }
    return nullptr;
  };
  auto visit = [&](const TensorRef& ref, bool is_output) {
    for (const auto& term : ref.axes) {
      for (const auto& v : term.vars) {
        AxisInfo* info = find(v);
        if (info == nullptr) {
          infos.push_back(AxisInfo{v, AxisKind::kReduction, false, false, ""});
          info = &infos.back();
        }
        if (is_output) {
          info->kind = AxisKind::kSpatial;
        }
        if (term.derived()) {
          info->in_derived_term = true;
        }
      }
    }
  };
  visit(output, /*is_output=*/true);
  for (const auto& in : inputs) {
    visit(in, /*is_output=*/false);
  }

  for (auto& info : infos) {
    if (info.in_derived_term) {
      // Theorem 1 precondition: axes deriving new axes (x+i) are not
      // commutative — shuffling them changes which elements meet.
      info.is_pit_axis = false;
      info.reason = "appears in a derived index term; permutation changes pairing";
    } else if (info.kind == AxisKind::kSpatial) {
      info.is_pit_axis = true;
      info.reason = "spatial axis: permutation only relabels output layout";
    } else if (ReduceIsCommutativeAssociative(reduce)) {
      info.is_pit_axis = true;
      info.reason = std::string("reduction axis with commutative+associative reducer '") +
                    ReduceKindName(reduce) + "'";
    } else {
      info.is_pit_axis = false;
      info.reason = std::string("reduction axis but reducer '") + ReduceKindName(reduce) +
                    "' is not commutative+associative";
    }
  }
  return infos;
}

std::vector<std::string> EinsumExpr::PitAxes() const {
  std::vector<std::string> out;
  for (const auto& info : AnalyzeAxes()) {
    if (info.is_pit_axis) {
      out.push_back(info.name);
    }
  }
  return out;
}

std::optional<AxisInfo> EinsumExpr::FindAxis(const std::string& name) const {
  for (const auto& info : AnalyzeAxes()) {
    if (info.name == name) {
      return info;
    }
  }
  return std::nullopt;
}

namespace {

// Minimal recursive-descent parser for the expression grammar in the header.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  std::optional<EinsumExpr> Parse() {
    EinsumExpr expr;
    auto out = ParseRef();
    if (!out) {
      return std::nullopt;
    }
    expr.output = *out;
    SkipWs();
    if (Consume("+=")) {
      expr.reduce = ReduceKind::kSum;
    } else if (Consume("=")) {
      expr.reduce = ReduceKind::kNone;
    } else {
      return std::nullopt;
    }
    while (true) {
      auto in = ParseRef();
      if (!in) {
        return std::nullopt;
      }
      expr.inputs.push_back(*in);
      SkipWs();
      if (Consume("*")) {
        continue;
      }
      if (Consume("+")) {
        expr.additive_combine = true;
        continue;
      }
      break;
    }
    SkipWs();
    if (pos_ != text_.size()) {
      return std::nullopt;  // trailing garbage
    }
    if (expr.inputs.empty()) {
      return std::nullopt;
    }
    return expr;
  }

 private:
  void SkipWs() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(const std::string& tok) {
    SkipWs();
    if (text_.compare(pos_, tok.size(), tok) == 0) {
      // "=" must not greedily match the front of "+=" handled by callers:
      // callers try "+=" first, so plain prefix matching is safe.
      pos_ += tok.size();
      return true;
    }
    return false;
  }

  std::optional<std::string> ParseIdent() {
    SkipWs();
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '_')) {
      ++pos_;
    }
    if (pos_ == start) {
      return std::nullopt;
    }
    return text_.substr(start, pos_ - start);
  }

  std::optional<TensorRef> ParseRef() {
    TensorRef ref;
    auto name = ParseIdent();
    if (!name) {
      return std::nullopt;
    }
    ref.name = *name;
    if (!Consume("[")) {
      return std::nullopt;
    }
    while (true) {
      AxisTerm term;
      auto v = ParseIdent();
      if (!v) {
        return std::nullopt;
      }
      term.vars.push_back(*v);
      while (Consume("+")) {
        auto v2 = ParseIdent();
        if (!v2) {
          return std::nullopt;
        }
        term.vars.push_back(*v2);
      }
      ref.axes.push_back(term);
      if (Consume(",")) {
        continue;
      }
      if (Consume("]")) {
        break;
      }
      return std::nullopt;
    }
    return ref;
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

std::optional<EinsumExpr> ParseEinsumOrNull(const std::string& text) {
  return Parser(text).Parse();
}

EinsumExpr ParseEinsum(const std::string& text) {
  auto expr = ParseEinsumOrNull(text);
  PIT_CHECK(expr.has_value()) << "malformed einsum: " << text;
  return *expr;
}

EinsumExpr ReduceSumExpr() { return ParseEinsum("C[p] += A[p,l]"); }
EinsumExpr VectorAddExpr() { return ParseEinsum("C[p] = A[p] + B[p]"); }
EinsumExpr MatMulExpr() { return ParseEinsum("C[m,n] += A[m,k] * B[k,n]"); }
EinsumExpr BatchMatMulExpr() { return ParseEinsum("C[b,m,n] += A[b,m,k] * B[b,k,n]"); }
EinsumExpr ConvolutionExpr() { return ParseEinsum("C[n,f,x,y] += A[n,m,x+i,y+j] * B[f,m,i,j]"); }

}  // namespace pit
