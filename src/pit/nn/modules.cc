#include "pit/nn/modules.h"

#include <algorithm>
#include <cmath>

#include "pit/common/check.h"
#include "pit/core/sparse_kernel.h"
#include "pit/core/sread_swrite.h"
#include "pit/graph/execution_plan.h"
#include "pit/workloads/moe_routing.h"

namespace pit {

namespace {
Tensor XavierInit(int64_t in, int64_t out, Rng& rng) {
  const float bound = std::sqrt(6.0f / static_cast<float>(in + out));
  return Tensor::Random({in, out}, rng, -bound, bound);
}
}  // namespace

// ---------------------------------------------------------------- Linear

Linear::Linear(int64_t in_features, int64_t out_features, Rng& rng)
    : weight_(XavierInit(in_features, out_features, rng)),
      bias_(Tensor::Random({out_features}, rng, -0.01f, 0.01f)) {}

Tensor Linear::Forward(const Tensor& x) const { return MatMulBias(x, weight_, bias_); }

Tensor Linear::ForwardSparse(const Tensor& x, PitCompiler& compiler) const {
  Tensor y = compiler.SparseMatmul(x, weight_).output;
  for (int64_t i = 0; i < y.dim(0); ++i) {
    for (int64_t j = 0; j < y.dim(1); ++j) {
      y.At(i, j) += bias_[j];
    }
  }
  return y;
}

// ---------------------------------------------------------------- FeedForward

FeedForward::FeedForward(int64_t hidden, int64_t ffn_hidden, Rng& rng)
    : up_(hidden, ffn_hidden, rng), down_(ffn_hidden, hidden, rng) {}

FeedForward::GraphNodes FeedForward::AppendToGraph(Graph& g, int x) const {
  const int w_up = g.AddWeightRef("w_up", &up_.weight());
  const int b_up = g.AddWeightRef("b_up", &up_.bias());
  const int w_down = g.AddWeightRef("w_down", &down_.weight());
  const int b_down = g.AddWeightRef("b_down", &down_.bias());
  GraphNodes nodes;
  const int up = g.AddMatmulBias("up_proj", x, w_up, b_up);
  nodes.relu = g.AddRelu("relu", up);
  nodes.out = g.AddMatmulBias("down_proj", nodes.relu, w_down, b_down);
  return nodes;
}

FeedForward::PlanEntry& FeedForward::EntryFor(int64_t tokens) const {
  auto it = plans_.find(tokens);
  if (it != plans_.end()) {
    return it->second;
  }
  // Bound the per-token-count cache: a serving stream with highly variable
  // batch shapes should not pin an arena per distinct length forever.
  constexpr size_t kMaxEntries = 16;
  if (plans_.size() >= kMaxEntries) {
    plans_.clear();
  }
  // First call at this token count: build the block's graph over the module's
  // weights (referenced, not copied) and record the PIT pass decisions. The
  // plan itself compiles lazily inside Graph on first Run.
  PlanEntry entry;
  entry.graph = std::make_unique<Graph>();
  Graph& g = *entry.graph;
  const int x = g.AddInput("x", {tokens, up_.in_features()});
  const GraphNodes nodes = AppendToGraph(g, x);
  entry.relu_node = nodes.relu;
  g.PropagateSparsity();
  entry.decisions = g.PitPass();
  entry.feeds = {{"x", nullptr}};
  return plans_.emplace(tokens, std::move(entry)).first->second;
}

Tensor FeedForward::RunPlanned(const Tensor& x, PitCompiler* compiler) const {
  PIT_CHECK_EQ(x.rank(), 2);
  // Plans share one arena per shape; concurrent const forwards serialize
  // here (they interleaved freely before only by each allocating everything).
  std::lock_guard<std::mutex> lock(mu_);
  PlanEntry& entry = EntryFor(x.dim(0));
  entry.feeds["x"] = &x;
  // The shared handle keeps the plan alive even if the cache is invalidated
  // or evicted while this Run is in flight.
  std::shared_ptr<ExecutionPlan> plan =
      entry.graph->PlanShared(compiler != nullptr ? &entry.decisions : nullptr);
  double sparsity = 0.0;
  const int relu_node = entry.relu_node;
  const StepObserver observe = [&](int node_id, ConstTensorView value) {
    if (node_id == relu_node) {
      sparsity = value.SparsityRatio();
    }
  };
  ConstTensorView out = plan->Run(entry.feeds, compiler, &observe);
  last_activation_sparsity_ = sparsity;
  Tensor result({x.dim(0), down_.out_features()});
  std::copy(out.data(), out.data() + out.size(), result.data());
  return result;
}

Tensor FeedForward::Forward(const Tensor& x) const { return RunPlanned(x, nullptr); }

Tensor FeedForward::ForwardSparse(const Tensor& x, PitCompiler& compiler) const {
  return RunPlanned(x, &compiler);
}

// ------------------------------------------------------- MultiHeadAttention

MultiHeadAttention::MultiHeadAttention(int64_t hidden, int64_t heads, Rng& rng)
    : heads_(heads),
      qkv_(hidden, 3 * hidden, rng),
      out_(hidden, hidden, rng),
      wq_({hidden, hidden}),
      wk_({hidden, hidden}),
      wv_({hidden, hidden}),
      bq_({hidden}),
      bk_({hidden}),
      bv_({hidden}) {
  PIT_CHECK_EQ(hidden % heads, 0);
  // Split the fused qkv projection into its q/k/v column blocks once; the
  // planned graphs reference these in place. The RNG stream (and therefore
  // every weight value) is untouched relative to the fused-only module.
  const Tensor& w = qkv_.weight();  // [hidden, 3*hidden]
  const Tensor& b = qkv_.bias();    // [3*hidden]
  for (int64_t i = 0; i < hidden; ++i) {
    for (int64_t j = 0; j < hidden; ++j) {
      wq_.At(i, j) = w.At(i, j);
      wk_.At(i, j) = w.At(i, hidden + j);
      wv_.At(i, j) = w.At(i, 2 * hidden + j);
    }
  }
  for (int64_t j = 0; j < hidden; ++j) {
    bq_[j] = b[j];
    bk_[j] = b[hidden + j];
    bv_[j] = b[2 * hidden + j];
  }
}

int MultiHeadAttention::AppendToGraph(Graph& g, int x, int mask) const {
  const int64_t tokens = g.node(x).shape[0];
  const int64_t hidden = qkv_.in_features();
  const int64_t dh = hidden / heads_;
  const float scale = 1.0f / std::sqrt(static_cast<float>(dh));

  const int wq = g.AddWeightRef("wq", &wq_);
  const int bq = g.AddWeightRef("bq", &bq_);
  const int wk = g.AddWeightRef("wk", &wk_);
  const int bk = g.AddWeightRef("bk", &bk_);
  const int wv = g.AddWeightRef("wv", &wv_);
  const int bv = g.AddWeightRef("bv", &bv_);

  // Per-part projections, scaled q, then the head split: [tokens, hidden]
  // reinterpreted as [tokens, heads, dk] and transposed to [heads, tokens, dk]
  // (k additionally to [heads, dk, tokens] for the score GEMM).
  const int q_proj = g.AddMatmulBias("q_proj", x, wq, bq);
  const int q_scaled = g.AddScale("q_scale", q_proj, scale);
  const int q_split = g.AddReshape("q_split", q_scaled, {tokens, heads_, dh});
  const int q = g.AddTranspose("q_heads", q_split, 0, 1);
  const int k_proj = g.AddMatmulBias("k_proj", x, wk, bk);
  const int k_split = g.AddReshape("k_split", k_proj, {tokens, heads_, dh});
  const int k_heads = g.AddTranspose("k_heads", k_split, 0, 1);
  const int k_t = g.AddTranspose("k_t", k_heads, 1, 2);
  const int v_proj = g.AddMatmulBias("v_proj", x, wv, bv);
  const int v_split = g.AddReshape("v_split", v_proj, {tokens, heads_, dh});
  const int v = g.AddTranspose("v_heads", v_split, 0, 1);

  const int scores = g.AddBatchMatmul("scores", q, k_t);     // [heads, T, T]
  const int probs = g.AddSoftmax("probs", scores, mask);     // masked rows excluded
  const int ctx_heads = g.AddBatchMatmul("ctx_heads", probs, v);  // [heads, T, dk]
  const int ctx_merge = g.AddTranspose("ctx_merge", ctx_heads, 0, 1);
  const int ctx = g.AddReshape("ctx", ctx_merge, {tokens, hidden});

  const int wo = g.AddWeightRef("wo", &out_.weight());
  const int bo = g.AddWeightRef("bo", &out_.bias());
  return g.AddMatmulBias("attn_out", ctx, wo, bo);
}

MultiHeadAttention::PlanEntry& MultiHeadAttention::EntryFor(int64_t tokens, bool masked) const {
  const std::pair<int64_t, bool> key{tokens, masked};
  auto it = plans_.find(key);
  if (it != plans_.end()) {
    return it->second;
  }
  // Bound the per-shape cache, mirroring FeedForward.
  constexpr size_t kMaxEntries = 16;
  if (plans_.size() >= kMaxEntries) {
    plans_.clear();
  }
  PlanEntry entry;
  entry.graph = std::make_unique<Graph>();
  Graph& g = *entry.graph;
  const int x = g.AddInput("x", {tokens, qkv_.in_features()});
  const int mask = masked ? g.AddInput("mask", {tokens, tokens}) : -1;
  AppendToGraph(g, x, mask);
  entry.feeds = {{"x", nullptr}};
  if (masked) {
    entry.feeds.emplace("mask", nullptr);
  }
  return plans_.emplace(key, std::move(entry)).first->second;
}

Tensor MultiHeadAttention::Forward(const Tensor& x, const Tensor* mask) const {
  PIT_CHECK_EQ(x.rank(), 2);
  PIT_CHECK_EQ(x.dim(1), qkv_.in_features());
  std::lock_guard<std::mutex> lock(mu_);
  PlanEntry& entry = EntryFor(x.dim(0), mask != nullptr);
  entry.feeds["x"] = &x;
  if (mask != nullptr) {
    PIT_CHECK(mask->rank() == 2 && mask->dim(0) == x.dim(0) && mask->dim(1) == x.dim(0))
        << "attention mask must be [tokens, tokens]";
    entry.feeds["mask"] = mask;
  }
  std::shared_ptr<ExecutionPlan> plan = entry.graph->PlanShared();
  ConstTensorView out = plan->Run(entry.feeds);
  Tensor result({x.dim(0), x.dim(1)});
  std::copy(out.data(), out.data() + out.size(), result.data());
  return result;
}

Tensor MultiHeadAttention::ForwardEager(const Tensor& x, const Tensor* mask) const {
  const int64_t tokens = x.dim(0), hidden = x.dim(1);
  const int64_t dh = hidden / heads_;
  Tensor qkv = qkv_.Forward(x);  // [tokens, 3*hidden]
  Tensor ctx({tokens, hidden});
  const float scale = 1.0f / std::sqrt(static_cast<float>(dh));
  for (int64_t head = 0; head < heads_; ++head) {
    // Slice Q, K, V for this head.
    Tensor q({tokens, dh}), kt({dh, tokens}), v({tokens, dh});
    for (int64_t t = 0; t < tokens; ++t) {
      for (int64_t d = 0; d < dh; ++d) {
        q.At(t, d) = qkv.At(t, head * dh + d) * scale;
        kt.At(d, t) = qkv.At(t, hidden + head * dh + d);
        v.At(t, d) = qkv.At(t, 2 * hidden + head * dh + d);
      }
    }
    Tensor scores = MatMul(q, kt);              // [tokens, tokens]
    Tensor probs = Softmax(scores, mask);       // masked rows excluded
    Tensor head_ctx = MatMul(probs, v);         // [tokens, dh]
    for (int64_t t = 0; t < tokens; ++t) {
      for (int64_t d = 0; d < dh; ++d) {
        ctx.At(t, head * dh + d) = head_ctx.At(t, d);
      }
    }
  }
  return out_.Forward(ctx);
}

// ---------------------------------------------------------------- MoELayer

MoELayer::MoELayer(int64_t hidden, int64_t ffn_hidden, int num_experts, Rng& rng)
    : router_(XavierInit(hidden, num_experts, rng)) {
  up_.reserve(static_cast<size_t>(num_experts));
  down_.reserve(static_cast<size_t>(num_experts));
  for (int e = 0; e < num_experts; ++e) {
    up_.push_back(XavierInit(hidden, ffn_hidden, rng));
    down_.push_back(XavierInit(ffn_hidden, hidden, rng));
  }
}

std::vector<int> MoELayer::Route(const Tensor& x) const {
  Tensor logits = MatMul(x, router_);
  std::vector<int> routing(static_cast<size_t>(x.dim(0)));
  for (int64_t t = 0; t < logits.dim(0); ++t) {
    int best = 0;
    for (int64_t e = 1; e < logits.dim(1); ++e) {
      if (logits.At(t, e) > logits.At(t, best)) {
        best = static_cast<int>(e);
      }
    }
    routing[static_cast<size_t>(t)] = best;
  }
  return routing;
}

Tensor MoELayer::ForwardDense(const Tensor& x) const {
  const std::vector<int> routing = Route(x);
  Tensor out({x.dim(0), x.dim(1)});
  // Reference semantics: every expert computes the full batch; only its own
  // tokens' rows are kept (the masked formulation of Fig. 2b).
  for (int e = 0; e < num_experts(); ++e) {
    Tensor mid = Relu(MatMul(x, up_[static_cast<size_t>(e)]));
    Tensor y = MatMul(mid, down_[static_cast<size_t>(e)]);
    for (int64_t t = 0; t < x.dim(0); ++t) {
      if (routing[static_cast<size_t>(t)] == e) {
        for (int64_t j = 0; j < x.dim(1); ++j) {
          out.At(t, j) = y.At(t, j);
        }
      }
    }
  }
  return out;
}

Tensor MoELayer::ForwardPit(const Tensor& x) const {
  const std::vector<int> routing = Route(x);
  Tensor out({x.dim(0), x.dim(1)});
  for (int e = 0; e < num_experts(); ++e) {
    std::vector<int64_t> mine;
    for (size_t t = 0; t < routing.size(); ++t) {
      if (routing[t] == e) {
        mine.push_back(static_cast<int64_t>(t));
      }
    }
    if (mine.empty()) {
      continue;
    }
    Tensor packed = SReadRows(x, mine);
    Tensor y = MatMul(Relu(MatMul(packed, up_[static_cast<size_t>(e)])),
                      down_[static_cast<size_t>(e)]);
    SWriteRows(y, mine, &out);
  }
  return out;
}

Tensor MoELayer::ForwardPadded(const Tensor& x) const {
  const std::vector<int> routing = Route(x);
  const std::vector<int64_t> loads = ExpertLoads(routing, num_experts());
  const int64_t cap = MaxLoad(loads);
  Tensor out({x.dim(0), x.dim(1)});
  for (int e = 0; e < num_experts(); ++e) {
    // Capacity buffer: expert's tokens followed by zero padding rows.
    std::vector<int64_t> mine;
    for (size_t t = 0; t < routing.size(); ++t) {
      if (routing[t] == e) {
        mine.push_back(static_cast<int64_t>(t));
      }
    }
    Tensor buf({cap, x.dim(1)});
    for (size_t i = 0; i < mine.size(); ++i) {
      for (int64_t j = 0; j < x.dim(1); ++j) {
        buf.At(static_cast<int64_t>(i), j) = x.At(mine[i], j);
      }
    }
    Tensor y = MatMul(Relu(MatMul(buf, up_[static_cast<size_t>(e)])),
                      down_[static_cast<size_t>(e)]);
    for (size_t i = 0; i < mine.size(); ++i) {
      for (int64_t j = 0; j < x.dim(1); ++j) {
        out.At(mine[i], j) = y.At(static_cast<int64_t>(i), j);
      }
    }
  }
  return out;
}

// ------------------------------------------------ TransformerEncoderLayer

TransformerEncoderLayer::TransformerEncoderLayer(int64_t hidden, int64_t heads,
                                                 int64_t ffn_hidden, Rng& rng)
    : attn_(hidden, heads, rng),
      ffn_(hidden, ffn_hidden, rng),
      ln1_gamma_(Tensor::Full({hidden}, 1.0f)),
      ln1_beta_(Tensor::Zeros({hidden})),
      ln2_gamma_(Tensor::Full({hidden}, 1.0f)),
      ln2_beta_(Tensor::Zeros({hidden})) {}

TransformerEncoderLayer::PlanEntry& TransformerEncoderLayer::EntryFor(int64_t tokens,
                                                                      bool masked) const {
  const std::pair<int64_t, bool> key{tokens, masked};
  auto it = plans_.find(key);
  if (it != plans_.end()) {
    return it->second;
  }
  constexpr size_t kMaxEntries = 16;
  if (plans_.size() >= kMaxEntries) {
    plans_.clear();
  }
  // The whole pre-norm block as one graph over referenced weights:
  // x + Attn(LN1(x)); h + FFN(LN2(h)).
  PlanEntry entry;
  entry.graph = std::make_unique<Graph>();
  Graph& g = *entry.graph;
  const int64_t hidden = ln1_gamma_.dim(0);
  const int x = g.AddInput("x", {tokens, hidden});
  const int mask = masked ? g.AddInput("mask", {tokens, tokens}) : -1;
  const int g1 = g.AddWeightRef("ln1_gamma", &ln1_gamma_);
  const int b1 = g.AddWeightRef("ln1_beta", &ln1_beta_);
  const int g2 = g.AddWeightRef("ln2_gamma", &ln2_gamma_);
  const int b2 = g.AddWeightRef("ln2_beta", &ln2_beta_);
  const int ln1 = g.AddLayerNorm("ln1", x, g1, b1);
  const int attn_out = attn_.AppendToGraph(g, ln1, mask);
  const int h = g.AddAdd("h", x, attn_out);
  const int ln2 = g.AddLayerNorm("ln2", h, g2, b2);
  const FeedForward::GraphNodes ffn = ffn_.AppendToGraph(g, ln2);
  g.AddAdd("out", h, ffn.out);
  g.PropagateSparsity();
  entry.decisions = g.PitPass();
  entry.feeds = {{"x", nullptr}};
  if (masked) {
    entry.feeds.emplace("mask", nullptr);
  }
  return plans_.emplace(key, std::move(entry)).first->second;
}

void TransformerEncoderLayer::ForwardInto(const Tensor& x, const Tensor* attn_mask,
                                          PitCompiler* compiler, Tensor* out) const {
  PIT_CHECK_EQ(x.rank(), 2);
  PIT_CHECK_EQ(x.dim(1), ln1_gamma_.dim(0));
  PIT_CHECK(out != nullptr);
  PIT_CHECK(out->dim(0) == x.dim(0) && out->dim(1) == x.dim(1));
  std::lock_guard<std::mutex> lock(mu_);
  PlanEntry& entry = EntryFor(x.dim(0), attn_mask != nullptr);
  entry.feeds["x"] = &x;
  if (attn_mask != nullptr) {
    PIT_CHECK(attn_mask->rank() == 2 && attn_mask->dim(0) == x.dim(0) &&
              attn_mask->dim(1) == x.dim(0))
        << "attention mask must be [tokens, tokens]";
    entry.feeds["mask"] = attn_mask;
  }
  std::shared_ptr<ExecutionPlan> plan =
      entry.graph->PlanShared(compiler != nullptr ? &entry.decisions : nullptr);
  ConstTensorView result = plan->Run(entry.feeds, compiler);
  std::copy(result.data(), result.data() + result.size(), out->data());
}

TransformerEncoderLayer::Stream TransformerEncoderLayer::MakeStream(int64_t tokens, bool masked,
                                                                    bool pit) const {
  Stream stream;
  {
    std::lock_guard<std::mutex> lock(mu_);
    PlanEntry& entry = EntryFor(tokens, masked);
    stream.plan = entry.graph->PlanShared(pit ? &entry.decisions : nullptr);
  }
  // The context and feed map are private to the stream: nothing below needs
  // the lock, and the co-owning plan handle keeps the compiled plan alive
  // even if the layer's plan cache is cleared or rebuilt behind it.
  stream.ctx = std::make_unique<ExecutionContext>(*stream.plan);
  stream.feeds = {{"x", nullptr}};
  if (masked) {
    stream.feeds.emplace("mask", nullptr);
  }
  stream.tokens = tokens;
  stream.masked = masked;
  return stream;
}

void TransformerEncoderLayer::ForwardWith(Stream& stream, const Tensor& x,
                                          const Tensor* attn_mask, PitCompiler* compiler,
                                          Tensor* out) const {
  PIT_CHECK(stream.plan != nullptr && stream.ctx != nullptr) << "stream not initialized";
  PIT_CHECK_EQ(x.rank(), 2);
  PIT_CHECK(x.dim(0) == stream.tokens && x.dim(1) == ln1_gamma_.dim(0))
      << "input shape does not match the stream's plan";
  PIT_CHECK((attn_mask != nullptr) == stream.masked)
      << "mask presence does not match the stream's plan";
  PIT_CHECK(out != nullptr);
  PIT_CHECK(out->dim(0) == x.dim(0) && out->dim(1) == x.dim(1));
  stream.feeds["x"] = &x;
  if (attn_mask != nullptr) {
    PIT_CHECK(attn_mask->rank() == 2 && attn_mask->dim(0) == x.dim(0) &&
              attn_mask->dim(1) == x.dim(0))
        << "attention mask must be [tokens, tokens]";
    stream.feeds["mask"] = attn_mask;
  }
  ConstTensorView result = stream.plan->RunWith(*stream.ctx, stream.feeds, compiler);
  std::copy(result.data(), result.data() + result.size(), out->data());
}

Tensor TransformerEncoderLayer::Forward(const Tensor& x, const Tensor* attn_mask) const {
  Tensor out({x.dim(0), x.dim(1)});
  ForwardInto(x, attn_mask, nullptr, &out);
  return out;
}

Tensor TransformerEncoderLayer::ForwardSparse(const Tensor& x, PitCompiler& compiler,
                                              const Tensor* attn_mask) const {
  Tensor out({x.dim(0), x.dim(1)});
  ForwardInto(x, attn_mask, &compiler, &out);
  return out;
}

Tensor TransformerEncoderLayer::ForwardEager(const Tensor& x, const Tensor* attn_mask) const {
  Tensor h = Add(x, attn_.ForwardEager(LayerNorm(x, ln1_gamma_, ln1_beta_), attn_mask));
  Tensor ln2 = LayerNorm(h, ln2_gamma_, ln2_beta_);
  Tensor ffn = MatMulBias(Relu(MatMulBias(ln2, ffn_.up().weight(), ffn_.up().bias())),
                          ffn_.down().weight(), ffn_.down().bias());
  return Add(h, ffn);
}

PlanStats TransformerEncoderLayer::PlanStatsFor(int64_t tokens, bool masked) const {
  std::lock_guard<std::mutex> lock(mu_);
  PlanEntry& entry = EntryFor(tokens, masked);
  return entry.graph->Plan().stats();
}

}  // namespace pit
