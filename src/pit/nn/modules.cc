#include "pit/nn/modules.h"

#include <algorithm>
#include <cmath>

#include "pit/common/check.h"
#include "pit/core/sparse_kernel.h"
#include "pit/core/sread_swrite.h"
#include "pit/graph/execution_plan.h"
#include "pit/workloads/moe_routing.h"

namespace pit {

namespace {
Tensor XavierInit(int64_t in, int64_t out, Rng& rng) {
  const float bound = std::sqrt(6.0f / static_cast<float>(in + out));
  return Tensor::Random({in, out}, rng, -bound, bound);
}
}  // namespace

// ---------------------------------------------------------------- Linear

Linear::Linear(int64_t in_features, int64_t out_features, Rng& rng)
    : weight_(XavierInit(in_features, out_features, rng)),
      bias_(Tensor::Random({out_features}, rng, -0.01f, 0.01f)) {}

Tensor Linear::Forward(const Tensor& x) const { return MatMulBias(x, weight_, bias_); }

Tensor Linear::ForwardSparse(const Tensor& x, PitCompiler& compiler) const {
  Tensor y = compiler.SparseMatmul(x, weight_).output;
  for (int64_t i = 0; i < y.dim(0); ++i) {
    for (int64_t j = 0; j < y.dim(1); ++j) {
      y.At(i, j) += bias_[j];
    }
  }
  return y;
}

// ---------------------------------------------------------------- FeedForward

FeedForward::FeedForward(int64_t hidden, int64_t ffn_hidden, Rng& rng)
    : up_(hidden, ffn_hidden, rng), down_(ffn_hidden, hidden, rng) {}

FeedForward::PlanEntry& FeedForward::EntryFor(int64_t tokens) const {
  auto it = plans_.find(tokens);
  if (it != plans_.end()) {
    return it->second;
  }
  // Bound the per-token-count cache: a serving stream with highly variable
  // batch shapes should not pin an arena per distinct length forever.
  constexpr size_t kMaxEntries = 16;
  if (plans_.size() >= kMaxEntries) {
    plans_.clear();
  }
  // First call at this token count: build the block's graph over the module's
  // weights (referenced, not copied) and record the PIT pass decisions. The
  // plan itself compiles lazily inside Graph on first Run.
  PlanEntry entry;
  entry.graph = std::make_unique<Graph>();
  Graph& g = *entry.graph;
  const int x = g.AddInput("x", {tokens, up_.in_features()});
  const int w_up = g.AddWeightRef("w_up", &up_.weight());
  const int b_up = g.AddWeightRef("b_up", &up_.bias());
  const int w_down = g.AddWeightRef("w_down", &down_.weight());
  const int b_down = g.AddWeightRef("b_down", &down_.bias());
  const int up = g.AddMatmulBias("up_proj", x, w_up, b_up);
  entry.relu_node = g.AddRelu("relu", up);
  g.AddMatmulBias("down_proj", entry.relu_node, w_down, b_down);
  g.PropagateSparsity();
  entry.decisions = g.PitPass();
  entry.feeds = {{"x", nullptr}};
  return plans_.emplace(tokens, std::move(entry)).first->second;
}

Tensor FeedForward::RunPlanned(const Tensor& x, PitCompiler* compiler) const {
  PIT_CHECK_EQ(x.rank(), 2);
  // Plans share one arena per shape; concurrent const forwards serialize
  // here (they interleaved freely before only by each allocating everything).
  std::lock_guard<std::mutex> lock(mu_);
  PlanEntry& entry = EntryFor(x.dim(0));
  entry.feeds["x"] = &x;
  ExecutionPlan& plan =
      entry.graph->Plan(compiler != nullptr ? &entry.decisions : nullptr);
  double sparsity = 0.0;
  const int relu_node = entry.relu_node;
  const StepObserver observe = [&](int node_id, ConstTensorView value) {
    if (node_id == relu_node) {
      sparsity = value.SparsityRatio();
    }
  };
  ConstTensorView out = plan.Run(entry.feeds, compiler, &observe);
  last_activation_sparsity_ = sparsity;
  Tensor result({x.dim(0), down_.out_features()});
  std::copy(out.data(), out.data() + out.size(), result.data());
  return result;
}

Tensor FeedForward::Forward(const Tensor& x) const { return RunPlanned(x, nullptr); }

Tensor FeedForward::ForwardSparse(const Tensor& x, PitCompiler& compiler) const {
  return RunPlanned(x, &compiler);
}

// ------------------------------------------------------- MultiHeadAttention

MultiHeadAttention::MultiHeadAttention(int64_t hidden, int64_t heads, Rng& rng)
    : heads_(heads), qkv_(hidden, 3 * hidden, rng), out_(hidden, hidden, rng) {
  PIT_CHECK_EQ(hidden % heads, 0);
}

Tensor MultiHeadAttention::Forward(const Tensor& x, const Tensor* mask) const {
  const int64_t tokens = x.dim(0), hidden = x.dim(1);
  const int64_t dh = hidden / heads_;
  Tensor qkv = qkv_.Forward(x);  // [tokens, 3*hidden]
  Tensor ctx({tokens, hidden});
  const float scale = 1.0f / std::sqrt(static_cast<float>(dh));
  for (int64_t head = 0; head < heads_; ++head) {
    // Slice Q, K, V for this head.
    Tensor q({tokens, dh}), kt({dh, tokens}), v({tokens, dh});
    for (int64_t t = 0; t < tokens; ++t) {
      for (int64_t d = 0; d < dh; ++d) {
        q.At(t, d) = qkv.At(t, head * dh + d) * scale;
        kt.At(d, t) = qkv.At(t, hidden + head * dh + d);
        v.At(t, d) = qkv.At(t, 2 * hidden + head * dh + d);
      }
    }
    Tensor scores = MatMul(q, kt);              // [tokens, tokens]
    Tensor probs = Softmax(scores, mask);       // masked rows excluded
    Tensor head_ctx = MatMul(probs, v);         // [tokens, dh]
    for (int64_t t = 0; t < tokens; ++t) {
      for (int64_t d = 0; d < dh; ++d) {
        ctx.At(t, head * dh + d) = head_ctx.At(t, d);
      }
    }
  }
  return out_.Forward(ctx);
}

// ---------------------------------------------------------------- MoELayer

MoELayer::MoELayer(int64_t hidden, int64_t ffn_hidden, int num_experts, Rng& rng)
    : router_(XavierInit(hidden, num_experts, rng)) {
  up_.reserve(static_cast<size_t>(num_experts));
  down_.reserve(static_cast<size_t>(num_experts));
  for (int e = 0; e < num_experts; ++e) {
    up_.push_back(XavierInit(hidden, ffn_hidden, rng));
    down_.push_back(XavierInit(ffn_hidden, hidden, rng));
  }
}

std::vector<int> MoELayer::Route(const Tensor& x) const {
  Tensor logits = MatMul(x, router_);
  std::vector<int> routing(static_cast<size_t>(x.dim(0)));
  for (int64_t t = 0; t < logits.dim(0); ++t) {
    int best = 0;
    for (int64_t e = 1; e < logits.dim(1); ++e) {
      if (logits.At(t, e) > logits.At(t, best)) {
        best = static_cast<int>(e);
      }
    }
    routing[static_cast<size_t>(t)] = best;
  }
  return routing;
}

Tensor MoELayer::ForwardDense(const Tensor& x) const {
  const std::vector<int> routing = Route(x);
  Tensor out({x.dim(0), x.dim(1)});
  // Reference semantics: every expert computes the full batch; only its own
  // tokens' rows are kept (the masked formulation of Fig. 2b).
  for (int e = 0; e < num_experts(); ++e) {
    Tensor mid = Relu(MatMul(x, up_[static_cast<size_t>(e)]));
    Tensor y = MatMul(mid, down_[static_cast<size_t>(e)]);
    for (int64_t t = 0; t < x.dim(0); ++t) {
      if (routing[static_cast<size_t>(t)] == e) {
        for (int64_t j = 0; j < x.dim(1); ++j) {
          out.At(t, j) = y.At(t, j);
        }
      }
    }
  }
  return out;
}

Tensor MoELayer::ForwardPit(const Tensor& x) const {
  const std::vector<int> routing = Route(x);
  Tensor out({x.dim(0), x.dim(1)});
  for (int e = 0; e < num_experts(); ++e) {
    std::vector<int64_t> mine;
    for (size_t t = 0; t < routing.size(); ++t) {
      if (routing[t] == e) {
        mine.push_back(static_cast<int64_t>(t));
      }
    }
    if (mine.empty()) {
      continue;
    }
    Tensor packed = SReadRows(x, mine);
    Tensor y = MatMul(Relu(MatMul(packed, up_[static_cast<size_t>(e)])),
                      down_[static_cast<size_t>(e)]);
    SWriteRows(y, mine, &out);
  }
  return out;
}

Tensor MoELayer::ForwardPadded(const Tensor& x) const {
  const std::vector<int> routing = Route(x);
  const std::vector<int64_t> loads = ExpertLoads(routing, num_experts());
  const int64_t cap = MaxLoad(loads);
  Tensor out({x.dim(0), x.dim(1)});
  for (int e = 0; e < num_experts(); ++e) {
    // Capacity buffer: expert's tokens followed by zero padding rows.
    std::vector<int64_t> mine;
    for (size_t t = 0; t < routing.size(); ++t) {
      if (routing[t] == e) {
        mine.push_back(static_cast<int64_t>(t));
      }
    }
    Tensor buf({cap, x.dim(1)});
    for (size_t i = 0; i < mine.size(); ++i) {
      for (int64_t j = 0; j < x.dim(1); ++j) {
        buf.At(static_cast<int64_t>(i), j) = x.At(mine[i], j);
      }
    }
    Tensor y = MatMul(Relu(MatMul(buf, up_[static_cast<size_t>(e)])),
                      down_[static_cast<size_t>(e)]);
    for (size_t i = 0; i < mine.size(); ++i) {
      for (int64_t j = 0; j < x.dim(1); ++j) {
        out.At(mine[i], j) = y.At(static_cast<int64_t>(i), j);
      }
    }
  }
  return out;
}

// ------------------------------------------------ TransformerEncoderLayer

TransformerEncoderLayer::TransformerEncoderLayer(int64_t hidden, int64_t heads,
                                                 int64_t ffn_hidden, Rng& rng)
    : attn_(hidden, heads, rng),
      ffn_(hidden, ffn_hidden, rng),
      ln1_gamma_(Tensor::Full({hidden}, 1.0f)),
      ln1_beta_(Tensor::Zeros({hidden})),
      ln2_gamma_(Tensor::Full({hidden}, 1.0f)),
      ln2_beta_(Tensor::Zeros({hidden})) {}

Tensor TransformerEncoderLayer::Forward(const Tensor& x, const Tensor* attn_mask) const {
  Tensor h = Add(x, attn_.Forward(LayerNorm(x, ln1_gamma_, ln1_beta_), attn_mask));
  return Add(h, ffn_.Forward(LayerNorm(h, ln2_gamma_, ln2_beta_)));
}

Tensor TransformerEncoderLayer::ForwardSparse(const Tensor& x, PitCompiler& compiler,
                                              const Tensor* attn_mask) const {
  Tensor h = Add(x, attn_.Forward(LayerNorm(x, ln1_gamma_, ln1_beta_), attn_mask));
  return Add(h, ffn_.ForwardSparse(LayerNorm(h, ln2_gamma_, ln2_beta_), compiler));
}

}  // namespace pit
