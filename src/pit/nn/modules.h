// Functional neural-network substrate.
//
// Small but real modules (the paper's PyTorch role): deterministic-init
// weights, numerically exact forwards. Sparse-aware modules take a PitCompiler
// (or use the PIT kernels directly) so integration tests can check that a
// whole transformer layer produces identical outputs under dense execution
// and under PIT's sparse execution of its dynamic-sparsity components.
#ifndef PIT_NN_MODULES_H_
#define PIT_NN_MODULES_H_

#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "pit/common/rng.h"
#include "pit/core/compiler.h"
#include "pit/graph/graph.h"
#include "pit/tensor/ops.h"
#include "pit/tensor/tensor.h"

namespace pit {

// y = x W + b, weights initialized Xavier-uniform.
class Linear {
 public:
  Linear(int64_t in_features, int64_t out_features, Rng& rng);

  Tensor Forward(const Tensor& x) const;  // x: [tokens, in]
  // Forward with dynamically sparse input executed through PIT.
  Tensor ForwardSparse(const Tensor& x, PitCompiler& compiler) const;

  const Tensor& weight() const { return weight_; }
  const Tensor& bias() const { return bias_; }
  int64_t in_features() const { return weight_.dim(0); }
  int64_t out_features() const { return weight_.dim(1); }

 private:
  Tensor weight_;  // [in, out]
  Tensor bias_;    // [out]
};

// Post-norm residual feed-forward block with ReLU (the OPT-style FFN whose
// activation sparsity PIT exploits).
//
// The forward passes run through cached ExecutionPlans: the block's graph is
// built once per distinct token count (plans are shape-specialized), and each
// call replays the compiled kernel-dispatch steps over a reused arena instead
// of re-walking ops and materializing intermediates. The graphs reference the
// module's weights in place, which is why the module is pinned (non-copyable,
// non-movable).
class FeedForward {
 public:
  FeedForward(int64_t hidden, int64_t ffn_hidden, Rng& rng);
  FeedForward(const FeedForward&) = delete;
  FeedForward& operator=(const FeedForward&) = delete;

  Tensor Forward(const Tensor& x) const;
  // The second matmul consumes the (sparse) ReLU output through PIT.
  Tensor ForwardSparse(const Tensor& x, PitCompiler& compiler) const;
  // Fraction of zeros in the ReLU activation of the last Forward call.
  double last_activation_sparsity() const { return last_activation_sparsity_; }

 private:
  struct PlanEntry {
    std::unique_ptr<Graph> graph;
    std::vector<MatmulDecision> decisions;  // PIT pass result for this graph
    std::map<std::string, const Tensor*> feeds;
    int relu_node = -1;
  };
  PlanEntry& EntryFor(int64_t tokens) const;
  Tensor RunPlanned(const Tensor& x, PitCompiler* compiler) const;

  Linear up_;
  Linear down_;
  mutable double last_activation_sparsity_ = 0.0;
  mutable std::map<int64_t, PlanEntry> plans_;  // keyed by token count, bounded
  mutable std::mutex mu_;  // forwards share plan arenas; serialize them
};

// Single-head (per-head looped) attention with an optional 0/1 mask over
// scores; mask == nullptr means full attention.
class MultiHeadAttention {
 public:
  MultiHeadAttention(int64_t hidden, int64_t heads, Rng& rng);
  // x: [tokens, hidden]; mask: [tokens, tokens] or nullptr.
  Tensor Forward(const Tensor& x, const Tensor* mask = nullptr) const;

 private:
  int64_t heads_;
  Linear qkv_;
  Linear out_;
};

// Top-1 routed mixture-of-experts FFN (Switch-Transformer style).
class MoELayer {
 public:
  MoELayer(int64_t hidden, int64_t ffn_hidden, int num_experts, Rng& rng);

  // Dense reference: every expert computes every token, gated by a 0/1 mask.
  Tensor ForwardDense(const Tensor& x) const;
  // PIT execution: SRead-gather each expert's tokens, dense compute, SWrite.
  Tensor ForwardPit(const Tensor& x) const;
  // Capacity-padded BatchMatmul execution (Tutel/DeepSpeed strategy);
  // numerically identical, wastes compute on padding.
  Tensor ForwardPadded(const Tensor& x) const;

  std::vector<int> Route(const Tensor& x) const;  // expert id per token
  int num_experts() const { return static_cast<int>(up_.size()); }

 private:
  Tensor router_;                 // [hidden, experts]
  std::vector<Tensor> up_;        // per-expert [hidden, ffn]
  std::vector<Tensor> down_;      // per-expert [ffn, hidden]
};

// Pre-norm transformer encoder layer: x + Attn(LN(x)); x + FFN(LN(x)).
class TransformerEncoderLayer {
 public:
  TransformerEncoderLayer(int64_t hidden, int64_t heads, int64_t ffn_hidden, Rng& rng);
  Tensor Forward(const Tensor& x, const Tensor* attn_mask = nullptr) const;
  Tensor ForwardSparse(const Tensor& x, PitCompiler& compiler,
                       const Tensor* attn_mask = nullptr) const;

 private:
  MultiHeadAttention attn_;
  FeedForward ffn_;
  Tensor ln1_gamma_, ln1_beta_, ln2_gamma_, ln2_beta_;
};

}  // namespace pit

#endif  // PIT_NN_MODULES_H_
