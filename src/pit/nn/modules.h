// Functional neural-network substrate.
//
// Small but real modules (the paper's PyTorch role): deterministic-init
// weights, numerically exact forwards. Sparse-aware modules take a PitCompiler
// (or use the PIT kernels directly) so integration tests can check that a
// whole transformer layer produces identical outputs under dense execution
// and under PIT's sparse execution of its dynamic-sparsity components.
#ifndef PIT_NN_MODULES_H_
#define PIT_NN_MODULES_H_

#include <map>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "pit/common/rng.h"
#include "pit/core/compiler.h"
#include "pit/graph/execution_plan.h"
#include "pit/graph/graph.h"
#include "pit/tensor/ops.h"
#include "pit/tensor/tensor.h"

namespace pit {

// y = x W + b, weights initialized Xavier-uniform.
class Linear {
 public:
  Linear(int64_t in_features, int64_t out_features, Rng& rng);

  Tensor Forward(const Tensor& x) const;  // x: [tokens, in]
  // Forward with dynamically sparse input executed through PIT.
  Tensor ForwardSparse(const Tensor& x, PitCompiler& compiler) const;

  const Tensor& weight() const { return weight_; }
  const Tensor& bias() const { return bias_; }
  int64_t in_features() const { return weight_.dim(0); }
  int64_t out_features() const { return weight_.dim(1); }

 private:
  Tensor weight_;  // [in, out]
  Tensor bias_;    // [out]
};

// Post-norm residual feed-forward block with ReLU (the OPT-style FFN whose
// activation sparsity PIT exploits).
//
// The forward passes run through cached ExecutionPlans: the block's graph is
// built once per distinct token count (plans are shape-specialized), and each
// call replays the compiled kernel-dispatch steps over a reused arena instead
// of re-walking ops and materializing intermediates. The graphs reference the
// module's weights in place, which is why the module is pinned (non-copyable,
// non-movable).
class FeedForward {
 public:
  FeedForward(int64_t hidden, int64_t ffn_hidden, Rng& rng);
  FeedForward(const FeedForward&) = delete;
  FeedForward& operator=(const FeedForward&) = delete;

  Tensor Forward(const Tensor& x) const;
  // The second matmul consumes the (sparse) ReLU output through PIT.
  Tensor ForwardSparse(const Tensor& x, PitCompiler& compiler) const;
  // Fraction of zeros in the ReLU activation of the last Forward call.
  double last_activation_sparsity() const { return last_activation_sparsity_; }

  // Appends the block's ops (MatmulBias -> Relu -> MatmulBias over this
  // module's referenced weights) to a caller-owned graph — the seam larger
  // planned blocks (TransformerEncoderLayer) compose from.
  struct GraphNodes {
    int out = -1;
    int relu = -1;
  };
  GraphNodes AppendToGraph(Graph& g, int x) const;

  const Linear& up() const { return up_; }
  const Linear& down() const { return down_; }

 private:
  struct PlanEntry {
    std::unique_ptr<Graph> graph;
    std::vector<MatmulDecision> decisions;  // PIT pass result for this graph
    std::map<std::string, const Tensor*> feeds;
    int relu_node = -1;
  };
  PlanEntry& EntryFor(int64_t tokens) const;
  Tensor RunPlanned(const Tensor& x, PitCompiler* compiler) const;

  Linear up_;
  Linear down_;
  mutable double last_activation_sparsity_ = 0.0;
  mutable std::map<int64_t, PlanEntry> plans_;  // keyed by token count, bounded
  mutable std::mutex mu_;  // forwards share plan arenas; serialize them
};

// Multi-head attention with an optional 0/1 mask over scores; mask == nullptr
// means full attention.
//
// Forward runs through cached ExecutionPlans (one graph per distinct
// (token count, masked?) shape): per-part q/k/v projections, per-head
// [heads, tokens, dk] batched score/context GEMMs, masked softmax, all over
// referenced weights and a reused arena. The result is bitwise identical to
// ForwardEager — the original per-head slicing loop, kept as the oracle.
// Plans reference the module's weights in place: the module is pinned.
class MultiHeadAttention {
 public:
  MultiHeadAttention(int64_t hidden, int64_t heads, Rng& rng);
  MultiHeadAttention(const MultiHeadAttention&) = delete;
  MultiHeadAttention& operator=(const MultiHeadAttention&) = delete;

  // x: [tokens, hidden]; mask: [tokens, tokens] or nullptr.
  Tensor Forward(const Tensor& x, const Tensor* mask = nullptr) const;
  // The pre-planning implementation (fresh tensor per intermediate), kept
  // verbatim as the differential oracle and the eager bench baseline.
  Tensor ForwardEager(const Tensor& x, const Tensor* mask = nullptr) const;

  // Appends the attention block (projections -> per-head batched attention
  // -> output projection) to a caller-owned graph; `x` is a [tokens, hidden]
  // node, `mask` a [tokens, tokens] node or -1. Returns the output node.
  int AppendToGraph(Graph& g, int x, int mask = -1) const;

  int64_t heads() const { return heads_; }

 private:
  struct PlanEntry {
    std::unique_ptr<Graph> graph;
    std::map<std::string, const Tensor*> feeds;
  };
  PlanEntry& EntryFor(int64_t tokens, bool masked) const;

  int64_t heads_;
  Linear qkv_;
  Linear out_;
  // Column-block splits of the fused qkv projection ([hidden, hidden] +
  // [hidden] each). A matmul against a column block is bitwise identical to
  // the same columns of the fused matmul (each output element accumulates
  // over k independently of its neighbors), which is what lets the planned
  // per-part projections reproduce the eager fused qkv exactly.
  Tensor wq_, wk_, wv_;
  Tensor bq_, bk_, bv_;
  mutable std::map<std::pair<int64_t, bool>, PlanEntry> plans_;  // bounded
  mutable std::mutex mu_;  // forwards share plan arenas; serialize them
};

// Top-1 routed mixture-of-experts FFN (Switch-Transformer style).
class MoELayer {
 public:
  MoELayer(int64_t hidden, int64_t ffn_hidden, int num_experts, Rng& rng);

  // Dense reference: every expert computes every token, gated by a 0/1 mask.
  Tensor ForwardDense(const Tensor& x) const;
  // PIT execution: SRead-gather each expert's tokens, dense compute, SWrite.
  Tensor ForwardPit(const Tensor& x) const;
  // Capacity-padded BatchMatmul execution (Tutel/DeepSpeed strategy);
  // numerically identical, wastes compute on padding.
  Tensor ForwardPadded(const Tensor& x) const;

  std::vector<int> Route(const Tensor& x) const;  // expert id per token
  int num_experts() const { return static_cast<int>(up_.size()); }

 private:
  Tensor router_;                 // [hidden, experts]
  std::vector<Tensor> up_;        // per-expert [hidden, ffn]
  std::vector<Tensor> down_;      // per-expert [ffn, hidden]
};

// Pre-norm transformer encoder layer: x + Attn(LN(x)); x + FFN(LN(x)).
//
// The whole block — both layernorms, the attention (per-head batched), both
// residual adds, and the FFN — is one Graph compiled to one ExecutionPlan per
// distinct (token count, masked?) shape: a steady-state dense forward replays
// kernel dispatches over a single reused arena with ~zero heap allocations,
// bitwise identical to ForwardEager. ForwardSparse runs the same plan with
// the PIT pass decisions (the FFN down-projection consumes its ReLU
// activation through the compiler's per-site kernel handle). Plans reference
// the module's weights in place: the module is pinned.
class TransformerEncoderLayer {
 public:
  TransformerEncoderLayer(int64_t hidden, int64_t heads, int64_t ffn_hidden, Rng& rng);
  TransformerEncoderLayer(const TransformerEncoderLayer&) = delete;
  TransformerEncoderLayer& operator=(const TransformerEncoderLayer&) = delete;

  Tensor Forward(const Tensor& x, const Tensor* attn_mask = nullptr) const;
  Tensor ForwardSparse(const Tensor& x, PitCompiler& compiler,
                       const Tensor* attn_mask = nullptr) const;
  // Allocation-free seam for stacked serving (PlannedTransformerStack):
  // writes the block's output into the preallocated `out` ([tokens, hidden]).
  // `compiler` nullptr runs dense; otherwise the PIT decisions apply.
  void ForwardInto(const Tensor& x, const Tensor* attn_mask, PitCompiler* compiler,
                   Tensor* out) const;

  // Per-stream replay state over the layer's shared compiled plan for one
  // (tokens, masked?) shape: a co-owning plan handle, a private
  // ExecutionContext, and a private feed map. Distinct streams replay the
  // same immutable plan concurrently with zero shared mutable state — the
  // multi-stream serving seam. Movable so callers can pool streams.
  struct Stream {
    std::shared_ptr<ExecutionPlan> plan;
    std::unique_ptr<ExecutionContext> ctx;
    std::map<std::string, const Tensor*> feeds;
    int64_t tokens = 0;
    bool masked = false;
  };
  // Builds a stream for (tokens, masked?), compiling and caching the shared
  // plan if needed (the only part that takes the module lock). `pit` compiles
  // the plan with this layer's PIT-pass decisions; its replay then needs a
  // compiler, one per concurrent stream.
  Stream MakeStream(int64_t tokens, bool masked, bool pit = false) const;
  // Lock-free forward over a stream's private context: safe to call
  // concurrently with any other stream's ForwardWith on this layer, bitwise
  // identical to ForwardInto. Steady-state dense calls allocate nothing.
  void ForwardWith(Stream& stream, const Tensor& x, const Tensor* attn_mask,
                   PitCompiler* compiler, Tensor* out) const;
  // The pre-planning composition (eager attention + explicit FFN ops), kept
  // as the differential oracle and the eager bench baseline.
  Tensor ForwardEager(const Tensor& x, const Tensor* attn_mask = nullptr) const;

  // Memory-planning stats of the block's dense plan at this shape (compiles
  // it if needed).
  PlanStats PlanStatsFor(int64_t tokens, bool masked = false) const;

 private:
  struct PlanEntry {
    std::unique_ptr<Graph> graph;
    std::vector<MatmulDecision> decisions;  // PIT pass result for this graph
    std::map<std::string, const Tensor*> feeds;
  };
  PlanEntry& EntryFor(int64_t tokens, bool masked) const;

  MultiHeadAttention attn_;
  FeedForward ffn_;
  Tensor ln1_gamma_, ln1_beta_, ln2_gamma_, ln2_beta_;
  mutable std::map<std::pair<int64_t, bool>, PlanEntry> plans_;  // bounded
  mutable std::mutex mu_;  // forwards share plan arenas; serialize them
};

}  // namespace pit

#endif  // PIT_NN_MODULES_H_
