#include "pit/nn/autograd.h"

#include <algorithm>

#include "pit/common/check.h"
#include "pit/core/sread_swrite.h"
#include "pit/tensor/ops.h"

namespace pit {

MatmulGrads MatmulBackward(const Tensor& a, const Tensor& b, const Tensor& dc) {
  PIT_CHECK_EQ(a.rank(), 2);
  PIT_CHECK_EQ(b.rank(), 2);
  PIT_CHECK_EQ(dc.rank(), 2);
  PIT_CHECK_EQ(dc.dim(0), a.dim(0));
  PIT_CHECK_EQ(dc.dim(1), b.dim(1));
  MatmulGrads grads;
  grads.da = MatMul(dc, Transpose2D(b));
  grads.db = MatMul(Transpose2D(a), dc);
  return grads;
}

Tensor ReluBackward(const Tensor& x, const Tensor& dy) {
  PIT_CHECK(x.shape() == dy.shape());
  Tensor dx(x.shape());
  for (int64_t i = 0; i < x.size(); ++i) {
    dx[i] = x[i] > 0.0f ? dy[i] : 0.0f;
  }
  return dx;
}

Tensor MaskedWeightGradDense(const Tensor& a, const Tensor& dc, const Tensor& mask) {
  Tensor full = MatMul(Transpose2D(a), dc);
  return ApplyMask(full, mask);
}

Tensor PitMaskedWeightGrad(const Tensor& a, const Tensor& dc, const Tensor& mask,
                           int64_t block_cols, const SparsityDetector& detector) {
  PIT_CHECK_EQ(a.rank(), 2);
  PIT_CHECK_EQ(dc.rank(), 2);
  PIT_CHECK_EQ(mask.rank(), 2);
  PIT_CHECK_EQ(mask.dim(0), a.dim(1));   // K x N weight
  PIT_CHECK_EQ(mask.dim(1), dc.dim(1));
  PIT_CHECK_GT(block_cols, 0);
  // Live column blocks of the mask: micro-tile spanning all rows x block_cols
  // (a column block is dead iff no weight in it survives pruning).
  MicroTileIndex index = detector.Detect(mask, MicroTileShape{mask.dim(0), block_cols});
  std::vector<int64_t> cols;
  for (int64_t off : index.offsets) {
    const int64_t c0 = index.BlockColOf(off) * block_cols;
    for (int64_t c = c0; c < std::min(mask.dim(1), c0 + block_cols); ++c) {
      cols.push_back(c);
    }
  }
  Tensor dw({mask.dim(0), mask.dim(1)});
  if (cols.empty()) {
    return dw;
  }
  // SRead the live columns of dC, compute the packed wgrad, SWrite back.
  Tensor packed_dc = SReadCols(dc, cols);                   // [M, |cols|]
  Tensor packed_dw = MatMul(Transpose2D(a), packed_dc);     // [K, |cols|]
  // Scatter columns back to their original indices.
  for (int64_t r = 0; r < dw.dim(0); ++r) {
    for (size_t i = 0; i < cols.size(); ++i) {
      dw.At(r, cols[i]) = packed_dw.At(r, static_cast<int64_t>(i));
    }
  }
  // General masks may be sparse *within* a live block too.
  return ApplyMask(dw, mask);
}

Tensor MaskedLinearStep(const Tensor& x, const Tensor& w, const Tensor& mask, Tensor* dx) {
  PIT_CHECK(w.shape() == mask.shape());
  Tensor sparse_w = ApplyMask(w, mask);
  Tensor y = MatMul(x, sparse_w);
  // L = 0.5 * sum(y^2)  =>  dL/dy = y.
  MatmulGrads grads = MatmulBackward(x, sparse_w, y);
  if (dx != nullptr) {
    *dx = grads.da;
  }
  return ApplyMask(grads.db, mask);
}

}  // namespace pit
