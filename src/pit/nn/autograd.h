// Manual backward passes for the sparse-training experiments (§5.2).
//
// Iterative pruning trains with a dynamically masked weight: the forward is
// y = x (W ⊙ mask) and the backward needs dL/dx and the *masked* dL/dW (the
// pruned entries receive no update). PIT executes both sides sparsely: the
// dgrad multiplies by the sparse masked weight; the wgrad only computes the
// live blocks, gathered with SRead. Every routine here is validated against
// finite differences and dense references in tests.
#ifndef PIT_NN_AUTOGRAD_H_
#define PIT_NN_AUTOGRAD_H_

#include "pit/core/sparsity_detector.h"
#include "pit/tensor/tensor.h"

namespace pit {

struct MatmulGrads {
  Tensor da;  // dL/dA = dC * B^T
  Tensor db;  // dL/dB = A^T * dC
};

// Backward of C = A * B given upstream dC.
MatmulGrads MatmulBackward(const Tensor& a, const Tensor& b, const Tensor& dc);

// Backward of y = relu(x): dy masked by x > 0.
Tensor ReluBackward(const Tensor& x, const Tensor& dy);

// Dense reference for the masked weight gradient: (A^T * dC) ⊙ mask.
Tensor MaskedWeightGradDense(const Tensor& a, const Tensor& dc, const Tensor& mask);

// PIT execution of the masked weight gradient: detects the live column
// blocks of `mask` (micro-tile [mask_rows, block_cols]), SRead-gathers the
// matching columns of dC, computes the packed A^T * dC', and SWrite-scatters
// into the masked positions. Exact for masks whose dead entries form whole
// column blocks; for general masks a final mask multiply keeps exactness.
Tensor PitMaskedWeightGrad(const Tensor& a, const Tensor& dc, const Tensor& mask,
                           int64_t block_cols = 1,
                           const SparsityDetector& detector = SparsityDetector());

// One full training step of y = x (W ⊙ mask), L = 0.5 * ||y||^2:
// returns dL/dW (masked) and writes dL/dx if non-null. Used by the
// integration tests to pin the whole sparse-training data path.
Tensor MaskedLinearStep(const Tensor& x, const Tensor& w, const Tensor& mask,
                        Tensor* dx = nullptr);

}  // namespace pit

#endif  // PIT_NN_AUTOGRAD_H_
