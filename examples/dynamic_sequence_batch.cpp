// Varying sequence lengths in a batch (§2.1 Fig. 2c; BERT/OPT scenarios).
//
// A padded batch is a dynamically row-sparse tensor — and the serving engine's
// continuous ragged batching is the micro-tile permutation applied to the
// batch axis: mixed-length requests SRead-gather into one bucket-padded dense
// tile, replay a shared plan behind a block-diagonal attention mask, and
// SWrite-scatter back out. The example serves a mixed-length request stream
// end-to-end twice — 1:1 and batched — verifies the outputs are bitwise
// identical, and contrasts pad-to-max waste with packed-bucket utilization
// and plan-pool cardinality.
#include <cstdio>
#include <cstring>

#include "pit/runtime/serving_engine.h"
#include "pit/workloads/seq_len.h"

int main() {
  using namespace pit;
  std::printf("PIT example: continuous ragged batching (padding as sparsity)\n\n");

  Rng rng(21);
  const auto lens = SampleBatchLens(DatasetSeqLens("mnli"), 24, rng);
  std::printf("request lengths:");
  for (int64_t l : lens) {
    std::printf(" %lld", static_cast<long long>(l));
  }
  std::printf("\npad-to-max would compute %lld rows per request -> %.1f%% padding waste\n\n",
              static_cast<long long>(MaxLen(lens)), PaddingWaste(lens) * 100.0);

  const int64_t hidden = 32;
  Rng wr(22);
  PlannedTransformerStack stack(2, hidden, 4, 96, wr);
  std::vector<ServeRequest> requests;
  for (int64_t len : lens) {
    ServeRequest req;
    req.x = Tensor::Random({len, hidden}, rng);
    requests.push_back(std::move(req));
  }

  // 1:1 serving: one plan key (and one pinned arena) per distinct length.
  ServingEngineOptions unbatched_opts;
  unbatched_opts.num_streams = 2;
  unbatched_opts.batch_window = 1;
  ServingEngine unbatched(stack, unbatched_opts);
  const std::vector<Tensor> expected = unbatched.Serve(requests);

  // Ragged batching: up to 8 requests / 256 token rows per packed forward,
  // padded to power-of-two sum-token buckets.
  ServingEngineOptions batched_opts;
  batched_opts.num_streams = 2;
  batched_opts.batch_window = 8;
  batched_opts.max_batch_tokens = 256;
  ServingEngine batched(stack, batched_opts);
  const std::vector<Tensor> outputs = batched.Serve(requests);

  bool bitwise = outputs.size() == expected.size();
  for (size_t i = 0; bitwise && i < outputs.size(); ++i) {
    bitwise = outputs[i].shape() == expected[i].shape() &&
              std::memcmp(outputs[i].data(), expected[i].data(),
                          static_cast<size_t>(outputs[i].size()) * sizeof(float)) == 0;
  }
  std::printf("batched outputs bitwise == 1:1 outputs: %s\n\n", bitwise ? "yes" : "NO");

  const ServingEngineStats& u = unbatched.stats();
  const ServingEngineStats& b = batched.stats();
  std::printf("                  1:1        batched\n");
  std::printf("forwards          %-10lld %lld\n", static_cast<long long>(u.batches),
              static_cast<long long>(b.batches));
  std::printf("plan-pool keys    %-10zu %zu\n", u.buckets.size(), b.buckets.size());
  std::printf("packed util       %-10.3f %.3f\n", u.packed_utilization, b.packed_utilization);
  std::printf("p50 latency (us)  %-10.0f %.0f\n", u.p50_latency_us, b.p50_latency_us);
  std::printf("p99 latency (us)  %-10.0f %.0f\n", u.p99_latency_us, b.p99_latency_us);

  std::printf("\nbatched per-bucket stats:\n");
  std::printf("  bucket  batches  requests  packed  computed  hits  misses\n");
  for (const ServingBucketStats& s : b.buckets) {
    std::printf("  %-7lld %-8lld %-9lld %-7lld %-9lld %-5lld %lld\n",
                static_cast<long long>(s.bucket), static_cast<long long>(s.batches),
                static_cast<long long>(s.requests), static_cast<long long>(s.packed_tokens),
                static_cast<long long>(s.computed_tokens), static_cast<long long>(s.plan_hits),
                static_cast<long long>(s.plan_misses));
  }
  std::printf("\nbucket padding costs %.1f%% of computed rows; pad-to-max would cost %.1f%%\n",
              (1.0 - b.packed_utilization) * 100.0, PaddingWaste(lens) * 100.0);
  return bitwise ? 0 : 1;
}
