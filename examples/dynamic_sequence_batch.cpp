// Varying sequence lengths in a batch (§2.1 Fig. 2c; BERT/OPT scenarios).
//
// A padded batch is a dynamically row-sparse tensor: padding rows are zero.
// The example embeds a ragged batch, shows the padding waste, runs a whole
// transformer encoder layer with PIT executing the FFN on the sparse rows,
// and prices BERT end-to-end across engines.
#include <cstdio>

#include "pit/nn/modules.h"
#include "pit/runtime/models.h"
#include "pit/workloads/seq_len.h"

int main() {
  using namespace pit;
  std::printf("PIT example: dynamic sequence lengths (padding as sparsity)\n\n");

  Rng rng(21);
  auto lens = SampleBatchLens(DatasetSeqLens("mnli"), 8, rng);
  const int64_t max_len = MaxLen(lens);
  std::printf("batch lengths:");
  for (int64_t l : lens) {
    std::printf(" %lld", static_cast<long long>(l));
  }
  std::printf("\npadded to %lld -> padding waste %.1f%%\n\n", static_cast<long long>(max_len),
              PaddingWaste(lens) * 100.0);

  // Embed the ragged batch into [batch*max_len, hidden] with zero padding.
  const int64_t hidden = 32;
  Tensor x = Tensor::Zeros({static_cast<int64_t>(lens.size()) * max_len, hidden});
  for (size_t s = 0; s < lens.size(); ++s) {
    for (int64_t t = 0; t < lens[s]; ++t) {
      for (int64_t j = 0; j < hidden; ++j) {
        x.At(static_cast<int64_t>(s) * max_len + t, j) = rng.NextFloat(-1.0f, 1.0f);
      }
    }
  }
  std::printf("embedded batch row sparsity: %.1f%%\n", x.SparsityRatio() * 100.0);

  // A full encoder layer; PIT executes the FFN over the sparse token rows.
  TransformerEncoderLayer layer(hidden, 4, 64, rng);
  PitCompiler compiler(V100());
  Tensor dense_out = layer.Forward(x);
  Tensor sparse_out = layer.ForwardSparse(x, compiler);
  std::printf("encoder layer sparse == dense: %s\n\n",
              AllClose(sparse_out, dense_out, 1e-3f, 1e-4f) ? "yes" : "NO");

  // BERT end-to-end across datasets and engines.
  CostModel model(V100());
  std::printf("BERT-base, batch 32, simulated latency by engine:\n");
  for (const char* dataset : {"cola", "mnli", "imdb"}) {
    Rng drng(31);
    auto dlens = SampleBatchLens(DatasetSeqLens(dataset), 32, drng);
    std::printf("  %-6s (max %3lld):", dataset, static_cast<long long>(MaxLen(dlens)));
    for (Engine e : {Engine::kPyTorch, Engine::kTurboTransformer, Engine::kPit}) {
      ModelRunCost run = TransformerRun(model, e, BertBase(), dlens);
      std::printf("  %s %.1fms", EngineName(e), run.LatencyMs());
    }
    std::printf("\n");
  }
  return 0;
}
