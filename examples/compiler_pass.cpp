// The PIT compilation pass end to end (Fig. 5 at model level):
//   build a graph -> propagate sparsity sources -> run the PIT pass ->
//   compare the dense and PIT execution plans (cost) -> execute both
//   functionally and verify they agree.
#include <cstdio>

#include "pit/graph/graph_cost.h"
#include "pit/tensor/ops.h"

int main() {
  using namespace pit;
  std::printf("PIT example: the model-level compilation pass\n\n");

  Rng rng(17);
  // An OPT-style FFN block: x -> up_proj -> relu -> down_proj. The ReLU
  // output is the dynamic sparsity source the pass must discover.
  Graph g = BuildFfnGraph(/*tokens=*/2048, /*hidden=*/512, /*ffn_hidden=*/2048, rng);

  std::printf("sparsity annotation after propagation:\n");
  for (int id = 0; id < g.size(); ++id) {
    const GraphNode& n = g.node(id);
    std::printf("  %-10s %-8s sparsity=%s (%.0f%%)\n", n.name.c_str(), OpKindName(n.kind),
                SparsitySourceName(n.sparsity), n.expected_sparsity * 100.0);
  }

  auto decisions = g.PitPass();
  std::printf("\nPIT pass decisions:\n");
  for (const auto& d : decisions) {
    std::printf("  node %d (%s): %s\n", d.node_id, g.node(d.node_id).name.c_str(),
                d.reason.c_str());
  }

  CostModel model(V100());
  TileDatabase db = TileDatabase::BuildDefault(model);
  GraphCostReport dense = EstimateGraphCost(g, model, db, nullptr);
  GraphCostReport pit = EstimateGraphCost(g, model, db, &decisions);
  std::printf("\nsimulated cost: dense %.1f us vs PIT %.1f us (%.2fx, %d/%d matmuls sparse)\n",
              dense.total.Total(), pit.total.Total(), dense.total.Total() / pit.total.Total(),
              pit.matmuls_sparse, pit.matmuls_sparse + pit.matmuls_dense);

  // Functional check on a smaller instance (CPU-friendly).
  Rng srng(18);
  Graph small = BuildFfnGraph(64, 32, 128, srng);
  auto small_decisions = small.PitPass();
  PitCompiler compiler(V100());
  Rng xr(19);
  Tensor x = Tensor::Random({64, 32}, xr);
  Tensor dense_out = small.Run({{"x", x}});
  Tensor pit_out = small.Run({{"x", x}}, &small_decisions, &compiler);
  std::printf("functional agreement (dense vs PIT execution): %s (max diff %.2e)\n",
              AllClose(pit_out, dense_out, 1e-3f, 1e-4f) ? "yes" : "NO",
              MaxAbsDiff(pit_out, dense_out));
  return 0;
}
