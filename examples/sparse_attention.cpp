// Dynamic sparse attention (the Longformer scenario, §5.1).
//
// The attention mask depends on the input (which tokens are global), so the
// sparsity of the score matrix is dynamic. The example builds a Longformer
// mask, runs masked attention functionally, executes the sparse
// scores-times-values product through PIT, and compares engine pricing.
#include <cstdio>

#include "pit/core/compiler.h"
#include "pit/nn/modules.h"
#include "pit/runtime/models.h"
#include "pit/workloads/attention_masks.h"

int main() {
  using namespace pit;
  std::printf("PIT example: dynamic sparse attention (Longformer-style)\n\n");

  Rng rng(3);
  LongformerMaskConfig mask_config{128, 16, 4};
  Tensor mask = LongformerMask(mask_config, rng);
  std::printf("mask: %lldx%lld, density %.1f%% (closed form %.1f%%)\n",
              static_cast<long long>(mask.dim(0)), static_cast<long long>(mask.dim(1)),
              (1.0 - mask.SparsityRatio()) * 100.0,
              LongformerMaskDensity(mask_config) * 100.0);

  // Functional masked attention through the nn module.
  MultiHeadAttention attn(64, 4, rng);
  Tensor x = Tensor::Random({128, 64}, rng);
  Tensor out_masked = attn.Forward(x, &mask);
  Tensor out_full = attn.Forward(x);
  std::printf("masked attention differs from full attention: %s\n\n",
              AllClose(out_masked, out_full) ? "NO (unexpected)" : "yes");

  // The sparse core: masked scores x V through the PIT compiler.
  Tensor scores = Tensor::Random({128, 128}, rng, 0.0f, 1.0f);
  Tensor sparse_scores = ApplyMask(scores, mask);
  Tensor v = Tensor::Random({128, 64}, rng);
  PitCompiler compiler(V100());
  PitExecution exec = compiler.SparseMatmul(sparse_scores, v);
  std::printf("PIT sparse scores*V matches dense: %s, plan: %s\n\n",
              AllClose(exec.output, MatMul(sparse_scores, v), 1e-3f, 1e-4f) ? "yes" : "NO",
              exec.plan.rule.ToString().c_str());

  // End-to-end pricing at paper scale (base backbone, 4k tokens).
  CostModel model(V100());
  LongformerMaskConfig big{4096, 256, 16};
  SparseAttentionRunConfig config;
  config.seq_len = 4096;
  config.batch = 1;
  config.mask_density = LongformerMaskDensity(big);
  config.block32_density = config.mask_density * 2.2;
  std::printf("Longformer-base @4k simulated latency:\n");
  for (Engine e : {Engine::kPyTorch, Engine::kPyTorchS, Engine::kLongformerS, Engine::kPit}) {
    ModelRunCost run = SparseAttentionRun(model, e, LongformerBase(), config);
    std::printf("  %-16s %8.2f ms   %6.2f GB\n", EngineName(e), run.LatencyMs(), run.MemoryGb());
  }
  return 0;
}
