// Sparse training by magnitude iterative pruning (§5.2, Fig. 15).
//
// Every step recomputes the pruning mask from the drifting weights, so the
// sparsity pattern churns continuously. The example runs a few "training
// steps": prune, execute the masked matmul through PIT and through the
// baselines (all must agree), and report the mask churn and per-step cost —
// the dynamic-pattern property that breaks compile-and-memoize systems.
#include <cstdio>

#include "pit/baselines/engines.h"
#include "pit/runtime/models.h"
#include "pit/tensor/ops.h"
#include "pit/workloads/pruning.h"

int main() {
  using namespace pit;
  std::printf("PIT example: dynamic sparse training (magnitude pruning)\n\n");

  Rng rng(13);
  Tensor w = Tensor::Random({128, 256}, rng);
  Tensor x = Tensor::Random({256, 32}, rng);  // activations (transposed form)
  PruningConfig prune{32, 1, 0.9};            // fine 32x1 granularity

  PitEngine pit_engine;
  TritonBlockEngine triton;
  Tensor prev_mask;
  for (int step = 0; step < 4; ++step) {
    Tensor mask = MagnitudePruneMask(w, prune);
    Tensor sparse_w = ApplyMask(w, mask);

    Tensor ref = MatMul(sparse_w, x);
    const bool pit_ok = AllClose(pit_engine.Execute(sparse_w, x), ref, 1e-3f, 1e-4f);
    const bool triton_ok = AllClose(triton.Execute(sparse_w, x), ref, 1e-3f, 1e-4f);
    const double churn = step == 0 ? 0.0 : MaskChurn(prev_mask, mask);
    std::printf("step %d: sparsity %.1f%%, mask churn vs prev %.1f%%, PIT ok=%s, Triton ok=%s\n",
                step, mask.SparsityRatio() * 100.0, churn * 100.0, pit_ok ? "y" : "N",
                triton_ok ? "y" : "N");
    prev_mask = mask;
    PerturbWeights(&w, 0.15f, rng);  // optimizer step drifts the magnitudes
  }

  // Per-step cost at BERT scale, both pruning granularities (Fig. 15).
  CostModel model(V100());
  std::printf("\nBERT iterative pruning, simulated per-batch latency (fwd+bwd):\n");
  for (int64_t bc : {64, 1}) {
    for (double sparsity : {0.9, 0.98}) {
      SparseTrainingRunConfig config;
      config.block_cols = bc;
      config.sparsity = sparsity;
      std::printf("  granularity 32x%-3lld sparsity %.0f%%:", static_cast<long long>(bc),
                  sparsity * 100.0);
      for (Engine e : {Engine::kPyTorch, Engine::kPyTorchS, Engine::kPit}) {
        ModelRunCost run = SparseTrainingRun(model, e, BertBase(), config);
        std::printf("  %s %.1fms", EngineName(e), run.LatencyMs());
      }
      std::printf("\n");
    }
  }
  std::printf("\nNote how PIT's 32x1 latency matches its 32x64 latency (micro-tile coverage)\n"
              "while PyTorch-S degrades on the fine granularity.\n");
  return 0;
}
