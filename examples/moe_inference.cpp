// Mixture-of-Experts inference (the Switch-Transformer scenario, §5.1).
//
// A router assigns each token to one expert; loads are uneven and only known
// at runtime. The example runs the same MoE layer three ways — dense masked
// reference, capacity-padded BatchMatmul (Tutel/DeepSpeed strategy), and
// PIT's SRead/SWrite gather-compute-scatter — verifies they agree, and prices
// the strategies with the cost model to show where the padding waste goes.
#include <cstdio>

#include "pit/nn/modules.h"
#include "pit/runtime/models.h"
#include "pit/workloads/moe_routing.h"
#include "pit/workloads/seq_len.h"

int main() {
  using namespace pit;
  std::printf("PIT example: sparse Mixture-of-Experts execution\n\n");

  Rng rng(7);
  const int64_t hidden = 64, ffn = 128, tokens = 96;
  const int experts = 8;
  MoELayer layer(hidden, ffn, experts, rng);
  Tensor x = Tensor::Random({tokens, hidden}, rng);

  // Routing is data-dependent: inspect the loads.
  auto loads = ExpertLoads(layer.Route(x), experts);
  std::printf("expert loads:");
  for (int64_t l : loads) {
    std::printf(" %lld", static_cast<long long>(l));
  }
  std::printf("  (capacity padding waste: %.1f%%)\n\n", CapacityPaddingWaste(loads) * 100.0);

  Tensor ref = layer.ForwardDense(x);
  Tensor padded = layer.ForwardPadded(x);
  Tensor pit = layer.ForwardPit(x);
  std::printf("padded (Tutel-style) matches reference: %s\n",
              AllClose(padded, ref, 1e-3f, 1e-4f) ? "yes" : "NO");
  std::printf("PIT (SRead/SWrite)  matches reference: %s\n\n",
              AllClose(pit, ref, 1e-3f, 1e-4f) ? "yes" : "NO");

  // End-to-end pricing of a Switch-Transformer-like model on A100.
  CostModel model(A100());
  Rng wrng(11);
  auto lens = SampleBatchLens(DatasetSeqLens("mnli"), 32, wrng);
  MoeRunConfig moe;
  moe.num_experts = 128;
  MoeRoutingConfig routing{128, 0.8};
  for (int l = 0; l < 6; ++l) {
    moe.layer_loads.push_back(ExpertLoads(RouteTokens(SumLens(lens), routing, wrng), 128));
  }
  std::printf("Switch Transformer (128 experts, batch 32) simulated latency:\n");
  for (Engine e : {Engine::kPyTorch, Engine::kTutel, Engine::kDeepSpeed, Engine::kPit}) {
    ModelRunCost run = SwitchTransformerRun(model, e, SwitchDims(), lens, moe);
    std::printf("  %-22s %8.2f ms   %6.2f GB\n", EngineName(e), run.LatencyMs(), run.MemoryGb());
  }
  return 0;
}
