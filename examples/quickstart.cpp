// Quickstart: compile and run a dynamically sparse matmul with PIT.
//
//   1. Build a sparse tensor whose pattern is only known "at runtime".
//   2. Hand it to PitCompiler: it detects the sparsity online (unordered
//      micro-tile index), runs Algorithm 1 over the profiled tile database,
//      picks a PIT rule (PIT-axis + micro-tile + dense tile), and executes
//      SRead -> dense tile -> SWrite.
//   3. Verify against the dense reference and inspect the chosen plan.
#include <cstdio>

#include "pit/core/compiler.h"
#include "pit/tensor/ops.h"

int main() {
  using namespace pit;
  std::printf("PIT quickstart: dynamically sparse matmul\n\n");

  // A [512, 512] activation with 95% sparsity at (8,1) granularity — the kind
  // of pattern a ReLU or a token mask produces, unknown until now.
  Rng rng(2026);
  Tensor a = Tensor::RandomBlockSparse(512, 512, 8, 1, 0.95, rng);
  Tensor b = Tensor::Random({512, 256}, rng);
  std::printf("A: %s, sparsity %.1f%%\n", ShapeToString(a.shape()).c_str(),
              a.SparsityRatio() * 100.0);

  // Compile + execute. The compiler owns a V100 cost model and the
  // offline-profiled tile database; selection happens online per input.
  PitCompiler compiler(V100());
  PitExecution exec = compiler.SparseMatmul(a, b);

  Tensor reference = MatMul(a, b);
  std::printf("result matches dense reference: %s (max diff %.2e)\n",
              AllClose(exec.output, reference, 1e-3f, 1e-4f) ? "yes" : "NO",
              MaxAbsDiff(exec.output, reference));

  const PitMatmulPlan& plan = exec.plan;
  std::printf("\nselected kernel: %s\n", plan.rule.ToString().c_str());
  std::printf("  covered fraction      : %.2f%% of A's area\n", plan.covered_fraction * 100.0);
  std::printf("  sparsity after cover  : %.2f%%\n", plan.sparsity_after_cover * 100.0);
  std::printf("  dense tiles executed  : %lld\n", static_cast<long long>(plan.num_exec_tiles));
  std::printf("  simulated latency     : %.1f us (incl. %.1f us online index build)\n",
              plan.cost.Total(), plan.cost.index_us);
  std::printf("  fell back to dense    : %s\n", plan.fallback_dense ? "yes" : "no");

  // Run again: same shape + sparsity bucket hits the JIT cache.
  compiler.SparseMatmul(a, b);
  std::printf("\nJIT cache: %lld kernel(s) compiled, %lld hit(s)\n",
              static_cast<long long>(compiler.kernels_compiled()),
              static_cast<long long>(compiler.cache_hits()));
  return 0;
}
