// Autoregressive generation with a paged KV cache (the paper's §6 link to
// vLLM: Paged Attention is PIT's SRead specialized to token rows).
//
// Simulates a small decode loop: ragged sequences grow token by token, K/V
// live in scattered pages, attention gathers them on demand. Reports the
// memory saved vs max-length preallocation.
#include <cmath>
#include <cstdio>

#include "pit/runtime/paged_kv.h"
#include "pit/tensor/ops.h"
#include "pit/workloads/seq_len.h"

int main() {
  using namespace pit;
  std::printf("PIT example: paged KV cache generation (vLLM connection, paper §6)\n\n");

  const int64_t hidden = 64, page = 16, max_len = 512;
  PagedKvCache keys(page, hidden), values(page, hidden);
  Rng rng(5);

  // Four sequences with very different target lengths (ragged decode).
  const int64_t targets[] = {40, 300, 120, 500};
  std::vector<int> kseq, vseq;
  for (int i = 0; i < 4; ++i) {
    kseq.push_back(keys.AddSequence());
    vseq.push_back(values.AddSequence());
  }

  // Decode loop: every step each live sequence appends one K/V token and
  // attends over its own (paged) history.
  Tensor query = Tensor::Random({hidden}, rng);
  for (int64_t step = 0; step < 500; ++step) {
    for (int i = 0; i < 4; ++i) {
      if (step >= targets[i]) {
        continue;
      }
      Tensor kt = Tensor::Random({hidden}, rng);
      Tensor vt = Tensor::Random({hidden}, rng);
      keys.AppendToken(kseq[static_cast<size_t>(i)], kt);
      values.AppendToken(vseq[static_cast<size_t>(i)], vt);
    }
  }
  for (int i = 0; i < 4; ++i) {
    Tensor ctx = PagedAttendOne(keys, values, kseq[static_cast<size_t>(i)], query);
    std::printf("seq %d: length %3lld, paged attention output norm %.4f\n", i,
                static_cast<long long>(keys.SequenceLength(kseq[static_cast<size_t>(i)])),
                std::sqrt(static_cast<double>([&] {
                  float s = 0.0f;
                  for (int64_t j = 0; j < ctx.size(); ++j) {
                    s += ctx[j] * ctx[j];
                  }
                  return s;
                }())));
  }

  const int64_t paged_bytes = keys.AllocatedBytes() + values.AllocatedBytes();
  const int64_t padded_bytes = 2 * PagedKvCache::PaddedBytes(4, max_len, hidden);
  std::printf("\nKV memory: paged %.2f KiB vs padded-preallocated %.2f KiB (%.1fx saving)\n",
              paged_bytes / 1024.0, padded_bytes / 1024.0,
              static_cast<double>(padded_bytes) / static_cast<double>(paged_bytes));

  // Free the short sequences; their pages are immediately reusable.
  keys.FreeSequence(kseq[0]);
  values.FreeSequence(vseq[0]);
  std::printf("after freeing seq 0: %lld key pages free for reuse\n",
              static_cast<long long>(keys.num_pages_free()));
  return 0;
}
