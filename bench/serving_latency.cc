// Extension experiment: serving BERT under a Poisson request stream.
// Sweeps arrival rate and reports p50/p99 latency and throughput per engine —
// how the paper's per-batch speedups compound through queueing delay. The
// whole (rate x engine) grid is simulated in parallel on the worker pool
// (PIT_NUM_THREADS-sized); results are deterministic per-seed either way.
#include "bench_util.h"
#include "pit/runtime/serving.h"

using namespace pit;

int main() {
  bench::PrintHeader("Extension — serving tail latency under load (BERT-base, V100)",
                     "Poisson arrivals, MNLI-like lengths, batch<=32, 20ms batching window");
  CostModel model(V100());
  const std::vector<double> rates = {50.0, 150.0, 400.0};
  const std::vector<Engine> engines = {Engine::kPyTorch, Engine::kTurboTransformer,
                                       Engine::kPit};
  std::vector<ServingScenario> grid;
  for (double rate : rates) {
    for (Engine e : engines) {
      ServingScenario sc;
      sc.engine = e;
      sc.config.arrival_rate_rps = rate;
      sc.config.num_requests = 500;
      sc.seed = 1234;
      grid.push_back(sc);
    }
  }
  const std::vector<ServingStats> stats =
      SimulateServingGrid(model, BertBase(), DatasetSeqLens("mnli"), grid);

  bench::Table table({"rate(rps)", "engine", "p50(ms)", "p99(ms)", "tput(rps)", "util"});
  for (size_t i = 0; i < grid.size(); ++i) {
    const ServingStats& s = stats[i];
    table.Row({bench::Fmt(grid[i].config.arrival_rate_rps, "%.0f"), EngineName(grid[i].engine),
               bench::FmtMs(s.p50_latency_us), bench::FmtMs(s.p99_latency_us),
               bench::Fmt(s.ThroughputRps(), "%.1f"), bench::FmtPct(s.Utilization())});
  }
  std::printf("\nExpected shape: at low load the engines differ by the per-batch factor; as\n"
              "load approaches the dense engine's capacity its queue (and p99) blows up\n"
              "while PIT still has headroom — the per-batch win compounds in the tail.\n");
  return 0;
}
