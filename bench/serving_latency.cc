// Extension experiment: serving BERT under a Poisson request stream.
// Sweeps arrival rate and reports p50/p99 latency and throughput per engine —
// how the paper's per-batch speedups compound through queueing delay.
#include "bench_util.h"
#include "pit/runtime/serving.h"

using namespace pit;

int main() {
  bench::PrintHeader("Extension — serving tail latency under load (BERT-base, V100)",
                     "Poisson arrivals, MNLI-like lengths, batch<=32, 20ms batching window");
  CostModel model(V100());
  bench::Table table({"rate(rps)", "engine", "p50(ms)", "p99(ms)", "tput(rps)", "util"});
  for (double rate : {50.0, 150.0, 400.0}) {
    for (Engine e : {Engine::kPyTorch, Engine::kTurboTransformer, Engine::kPit}) {
      ServingConfig config;
      config.arrival_rate_rps = rate;
      config.num_requests = 500;
      Rng rng(1234);
      ServingStats stats =
          SimulateServing(model, e, BertBase(), DatasetSeqLens("mnli"), config, rng);
      table.Row({bench::Fmt(rate, "%.0f"), EngineName(e), bench::FmtMs(stats.p50_latency_us),
                 bench::FmtMs(stats.p99_latency_us), bench::Fmt(stats.ThroughputRps(), "%.1f"),
                 bench::FmtPct(stats.Utilization())});
    }
  }
  std::printf("\nExpected shape: at low load the engines differ by the per-batch factor; as\n"
              "load approaches the dense engine's capacity its queue (and p99) blows up\n"
              "while PIT still has headroom — the per-batch win compounds in the tail.\n");
  return 0;
}
