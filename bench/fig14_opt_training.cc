// Figure 14: OPT-125M/350M/1.3B fine-tuning (fwd+bwd) latency and memory on
// A100-80GB, Alpaca-like lengths, batch 8.
#include "bench_util.h"
#include "pit/runtime/models.h"
#include "pit/runtime/multi_gpu.h"
#include "pit/workloads/seq_len.h"

using namespace pit;

int main() {
  bench::PrintHeader("Figure 14 — OPT training (A100, fp32, batch 8)",
                     "forward+backward per batch; dynamic sparsity = varying sentence lengths");
  CostModel model(A100());
  bench::Table table({"model", "engine", "latency(ms)", "memory(GB)"});
  for (const char* size : {"125M", "350M", "1.3B"}) {
    TransformerDims dims = OptDims(size);
    Rng rng(23);
    auto lens = SampleBatchLens(DatasetSeqLens("alpaca"), 8, rng);
    OptRunConfig config;
    config.training = true;
    config.device_memory_bytes = 80ll << 30;
    for (Engine e : {Engine::kPyTorch, Engine::kPyTorchS, Engine::kDeepSpeed, Engine::kPit}) {
      ModelRunCost run = OptRun(model, e, dims, lens, config);
      table.Row({dims.name, EngineName(e), bench::FmtMs(run.cost.Total()),
                 bench::Fmt(run.MemoryGb(), "%.2f")});
    }
  }
  std::printf("\nExpected shape: PIT 1.9-2.4x over PyTorch, 1.6-1.8x over PyTorch-S, 1.8-2.2x\n"
              "over DeepSpeed (padding savings carry to fwd+bwd; DeepSpeed cannot fuse away\n"
              "activation memory in training).\n");
  return 0;
}
