// Multi-stream serving throughput: requests/sec and latency percentiles of
// the ServingEngine driving a PlannedTransformerStack over a mixed request
// stream, swept over stream counts {1, 2, 4, 8} at a fixed worker-pool width.
//
// This is the PR 5 acceptance bench: per-request outputs must be bitwise
// identical to the single-stream engine at every stream count, and — wherever
// the machine actually provides >= 4-way concurrency (parallel probe, like
// the BENCH_pr1/pr4 asserts) — 4 streams must deliver >= 2.5x the
// requests/sec of 1 stream. The workload is deliberately serving-shaped:
// small per-request token counts, whose plans the wavefront gate replays
// sequentially and whose kernels parallelize poorly intra-op, so the
// headroom the engine must find is inter-request parallelism.
//
// Emits BENCH_pr5.json.
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "pit/common/backend.h"
#include "pit/common/parallel_for.h"
#include "pit/runtime/models.h"
#include "pit/runtime/serving_engine.h"
#include "pit/tensor/ops.h"

using namespace pit;

namespace {

bool BitwiseEqual(const Tensor& a, const Tensor& b) {
  return a.shape() == b.shape() &&
         std::memcmp(a.data(), b.data(), static_cast<size_t>(a.size()) * sizeof(float)) == 0;
}

Tensor MakeMask(int64_t tokens, Rng& rng) {
  Tensor mask = Tensor::RandomSparse({tokens, tokens}, 0.4, rng);
  for (int64_t i = 0; i < mask.size(); ++i) {
    mask[i] = mask[i] != 0.0f ? 1.0f : 0.0f;
  }
  return mask;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_pr5.json";
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0) {
      out_path = argv[i + 1];
    }
  }

  const int threads = NumThreads();
  bench::PrintHeader("Multi-stream serving throughput — shared plans, per-stream contexts",
                     "wall-clock; " + std::to_string(threads) + " pool workers, streams swept");

  bool ok = true;
  bench::JsonReport report("serving_throughput");

  // Serving trunk: 2 encoder blocks at a modest width; requests mix three
  // token counts, a third of them masked — six (tokens, masked?) plan keys.
  constexpr int64_t kLayers = 2;
  constexpr int64_t kHidden = 128;
  constexpr int64_t kHeads = 4;
  constexpr int64_t kFfn = 512;
  Rng wr(1);
  PlannedTransformerStack stack(kLayers, kHidden, kHeads, kFfn, wr);

  Rng rr(2);
  const std::vector<int64_t> token_counts{32, 48, 64};
  std::vector<Tensor> masks;
  masks.reserve(token_counts.size());
  for (int64_t tokens : token_counts) {
    masks.push_back(MakeMask(tokens, rr));
  }
  std::vector<ServeRequest> requests;
  constexpr int kRequests = 48;
  for (int i = 0; i < kRequests; ++i) {
    const size_t pick = static_cast<size_t>(i) % token_counts.size();
    ServeRequest req;
    req.x = Tensor::Random({token_counts[pick], kHidden}, rr);
    if (i % 3 == 2) {
      req.attn_mask = &masks[pick];
    }
    requests.push_back(std::move(req));
  }

  bench::Table table({"streams", "wall(ms)", "req/s", "p50(ms)", "p99(ms)", "vs 1 stream",
                      "pool ctx", "pool KiB"});
  std::vector<Tensor> baseline_outputs;
  double baseline_rps = 0.0;
  double rps_at_4 = 0.0;
  for (const int streams : {1, 2, 4, 8}) {
    ServingEngineOptions options;
    options.num_streams = streams;
    ServingEngine engine(stack, options);
    engine.Serve(requests);  // warm: compiles plans, builds context pools
    std::vector<Tensor> outputs;
    double best_wall_us = 0.0;
    ServingEngineStats best{};
    for (int rep = 0; rep < 3; ++rep) {
      std::vector<Tensor> got = engine.Serve(requests);
      const ServingEngineStats s = engine.stats();
      if (rep == 0 || s.wall_us < best_wall_us) {
        best_wall_us = s.wall_us;
        best = s;
        outputs = std::move(got);
      }
    }
    bool bitwise_vs_1stream = true;
    if (streams == 1) {
      baseline_outputs = outputs;
      baseline_rps = best.requests_per_sec;
    } else {
      for (size_t i = 0; i < outputs.size(); ++i) {
        if (!BitwiseEqual(outputs[i], baseline_outputs[i])) {
          std::fprintf(stderr,
                       "FAIL serving@%d streams: request %zu not bitwise equal to the "
                       "single-stream engine\n",
                       streams, i);
          bitwise_vs_1stream = false;
          ok = false;
        }
      }
    }
    if (streams == 4) {
      rps_at_4 = best.requests_per_sec;
    }
    const double vs1 = baseline_rps > 0.0 ? best.requests_per_sec / baseline_rps : 0.0;
    table.Row({std::to_string(streams), bench::FmtMs(best.wall_us),
               bench::Fmt(best.requests_per_sec, "%.1f"), bench::FmtMs(best.p50_latency_us),
               bench::FmtMs(best.p99_latency_us), bench::Fmt(vs1, "%.2fx"),
               std::to_string(best.pool_contexts_highwater),
               bench::Fmt(static_cast<double>(best.pool_arena_bytes_highwater) / 1024.0, "%.0f")});
    report.Add("serving_streams_" + std::to_string(streams),
               {{"requests", static_cast<double>(kRequests)},
                {"wall_us", best.wall_us},
                {"requests_per_sec", best.requests_per_sec},
                {"p50_latency_us", best.p50_latency_us},
                {"p99_latency_us", best.p99_latency_us},
                {"mean_latency_us", best.mean_latency_us},
                {"speedup_vs_1stream", vs1},
                {"pool_contexts_highwater", static_cast<double>(best.pool_contexts_highwater)},
                {"pool_arena_bytes_highwater",
                 static_cast<double>(best.pool_arena_bytes_highwater)},
                {"bitwise_equal_1stream", bitwise_vs_1stream ? 1.0 : 0.0},
                {"threads", static_cast<double>(threads)}});
  }

  // Scaling acceptance, probe-gated on the concurrency the machine really
  // provides (CI containers routinely advertise more hardware threads than
  // the cgroup quota delivers).
  const unsigned hw = std::thread::hardware_concurrency();
  const double probe4 = bench::ParallelProbeSpeedup(4);
  const double scaling = baseline_rps > 0.0 ? rps_at_4 / baseline_rps : 0.0;
  report.Add("serving_scaling",
             {{"rps_1stream", baseline_rps},
              {"rps_4streams", rps_at_4},
              {"speedup_4v1", scaling},
              {"probe4", probe4},
              {"hardware_threads", static_cast<double>(hw)},
              {"assert_armed", (hw >= 4 && probe4 > 2.0) ? 1.0 : 0.0}});
  if (hw >= 4 && probe4 > 2.0) {
    if (scaling < 2.5) {
      std::fprintf(stderr,
                   "FAIL serving scaling: 4 streams at %.2fx vs 1 stream < 2.5x with %u "
                   "hardware threads (probe %.2fx)\n",
                   scaling, hw, probe4);
      ok = false;
    } else {
      std::printf("serving scaling 4 streams %.2fx >= 2.5x (probe %.2fx) — OK\n", scaling,
                  probe4);
    }
  } else {
    std::printf("serving scaling assertion skipped (hw=%u, probe %.2fx — no effective 4-way "
                "concurrency on this machine); measured %.2fx\n",
                hw, probe4, scaling);
  }

  if (!report.WriteFile(out_path)) {
    std::fprintf(stderr, "failed to write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("\nwrote %s\n", out_path.c_str());
  if (!ok) {
    std::fprintf(stderr, "\nserving-throughput acceptance checks FAILED\n");
    return 1;
  }
  std::printf("serving-throughput acceptance checks passed\n");
  return 0;
}
