// Multi-stream serving throughput: requests/sec and latency percentiles of
// the ServingEngine driving a PlannedTransformerStack over a mixed request
// stream, swept over stream counts {1, 2, 4, 8} at a fixed worker-pool width.
//
// This is the PR 5 acceptance bench: per-request outputs must be bitwise
// identical to the single-stream engine at every stream count, and — wherever
// the machine actually provides >= 4-way concurrency (parallel probe, like
// the BENCH_pr1/pr4 asserts) — 4 streams must deliver >= 2.5x the
// requests/sec of 1 stream. The workload is deliberately serving-shaped:
// small per-request token counts, whose plans the wavefront gate replays
// sequentially and whose kernels parallelize poorly intra-op, so the
// headroom the engine must find is inter-request parallelism.
//
// A second section is the PR 6 acceptance bench: continuous ragged batching
// over a mixed-length request stream (alpaca + mnli length distributions).
// Serving that traffic 1:1 keys a plan per distinct token count — far past
// the 16-shape pool bound, so steady state recompiles continuously — while
// batched serving packs requests into power-of-two sum-token buckets behind a
// block-diagonal mask. Outputs must stay bitwise identical, and wherever the
// probe finds real >= 4-way concurrency, batched throughput must be >= 1.5x
// the 1:1 engine at high load.
//
// Emits BENCH_pr5.json (stream sweep) and BENCH_pr6.json (ragged batching).
#include <cstdio>
#include <cstring>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "pit/common/backend.h"
#include "pit/common/parallel_for.h"
#include "pit/runtime/models.h"
#include "pit/runtime/serving_engine.h"
#include "pit/tensor/ops.h"
#include "pit/workloads/seq_len.h"

using namespace pit;

namespace {

bool BitwiseEqual(const Tensor& a, const Tensor& b) {
  return a.shape() == b.shape() &&
         std::memcmp(a.data(), b.data(), static_cast<size_t>(a.size()) * sizeof(float)) == 0;
}

Tensor MakeMask(int64_t tokens, Rng& rng) {
  Tensor mask = Tensor::RandomSparse({tokens, tokens}, 0.4, rng);
  for (int64_t i = 0; i < mask.size(); ++i) {
    mask[i] = mask[i] != 0.0f ? 1.0f : 0.0f;
  }
  return mask;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_pr5.json";
  std::string out6_path = "BENCH_pr6.json";
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0) {
      out_path = argv[i + 1];
    }
    if (std::strcmp(argv[i], "--out6") == 0) {
      out6_path = argv[i + 1];
    }
  }

  const int threads = NumThreads();
  bench::PrintHeader("Multi-stream serving throughput — shared plans, per-stream contexts",
                     "wall-clock; " + std::to_string(threads) + " pool workers, streams swept");
  // One shared machine probe up front: scaling asserts below gate on the
  // *measured* pool speedup, never on the reported hardware thread count —
  // CI boxes have reported hardware_threads=1 (which silently disarmed every
  // assert here) and, conversely, report more threads than the cgroup quota
  // actually provides.
  const bench::MachineProbe& mp = bench::GetMachineProbe();

  bool ok = true;
  bench::JsonReport report("serving_throughput");

  // Serving trunk: 2 encoder blocks at a modest width; requests mix three
  // token counts, a third of them masked — six (tokens, masked?) plan keys.
  constexpr int64_t kLayers = 2;
  constexpr int64_t kHidden = 128;
  constexpr int64_t kHeads = 4;
  constexpr int64_t kFfn = 512;
  Rng wr(1);
  PlannedTransformerStack stack(kLayers, kHidden, kHeads, kFfn, wr);

  Rng rr(2);
  const std::vector<int64_t> token_counts{32, 48, 64};
  std::vector<Tensor> masks;
  masks.reserve(token_counts.size());
  for (int64_t tokens : token_counts) {
    masks.push_back(MakeMask(tokens, rr));
  }
  std::vector<ServeRequest> requests;
  constexpr int kRequests = 48;
  for (int i = 0; i < kRequests; ++i) {
    const size_t pick = static_cast<size_t>(i) % token_counts.size();
    ServeRequest req;
    req.x = Tensor::Random({token_counts[pick], kHidden}, rr);
    if (i % 3 == 2) {
      req.attn_mask = &masks[pick];
    }
    requests.push_back(std::move(req));
  }

  bench::Table table({"streams", "wall(ms)", "req/s", "p50(ms)", "p99(ms)", "vs 1 stream",
                      "pool ctx", "pool KiB"});
  std::vector<Tensor> baseline_outputs;
  double baseline_rps = 0.0;
  double rps_at_4 = 0.0;
  for (const int streams : {1, 2, 4, 8}) {
    ServingEngineOptions options;
    options.num_streams = streams;
    ServingEngine engine(stack, options);
    engine.Serve(requests);  // warm: compiles plans, builds context pools
    std::vector<Tensor> outputs;
    double best_wall_us = 0.0;
    ServingEngineStats best{};
    for (int rep = 0; rep < 3; ++rep) {
      std::vector<Tensor> got = engine.Serve(requests);
      const ServingEngineStats s = engine.stats();
      if (rep == 0 || s.wall_us < best_wall_us) {
        best_wall_us = s.wall_us;
        best = s;
        outputs = std::move(got);
      }
    }
    bool bitwise_vs_1stream = true;
    if (streams == 1) {
      baseline_outputs = outputs;
      baseline_rps = best.requests_per_sec;
    } else {
      for (size_t i = 0; i < outputs.size(); ++i) {
        if (!BitwiseEqual(outputs[i], baseline_outputs[i])) {
          std::fprintf(stderr,
                       "FAIL serving@%d streams: request %zu not bitwise equal to the "
                       "single-stream engine\n",
                       streams, i);
          bitwise_vs_1stream = false;
          ok = false;
        }
      }
    }
    if (streams == 4) {
      rps_at_4 = best.requests_per_sec;
    }
    const double vs1 = baseline_rps > 0.0 ? best.requests_per_sec / baseline_rps : 0.0;
    table.Row({std::to_string(streams), bench::FmtMs(best.wall_us),
               bench::Fmt(best.requests_per_sec, "%.1f"), bench::FmtMs(best.p50_latency_us),
               bench::FmtMs(best.p99_latency_us), bench::Fmt(vs1, "%.2fx"),
               std::to_string(best.pool_contexts_highwater),
               bench::Fmt(static_cast<double>(best.pool_arena_bytes_highwater) / 1024.0, "%.0f")});
    report.Add("serving_streams_" + std::to_string(streams),
               {{"requests", kRequests},
                {"wall_us", best.wall_us},
                {"requests_per_sec", best.requests_per_sec},
                {"p50_latency_us", best.p50_latency_us},
                {"p99_latency_us", best.p99_latency_us},
                {"mean_latency_us", best.mean_latency_us},
                {"speedup_vs_1stream", vs1},
                {"pool_contexts_highwater", best.pool_contexts_highwater},
                {"pool_arena_bytes_highwater", best.pool_arena_bytes_highwater},
                {"bitwise_equal_1stream", bitwise_vs_1stream ? 1 : 0},
                {"threads", threads}});
  }

  // Scaling acceptance, gated on the concurrency the machine *measurably*
  // provides (mp.probe4). The reported hardware thread count is logged and
  // recorded but never consulted: it misstates the quota in both directions.
  const double scaling = baseline_rps > 0.0 ? rps_at_4 / baseline_rps : 0.0;
  report.Add("serving_scaling",
             {{"rps_1stream", baseline_rps},
              {"rps_4streams", rps_at_4},
              {"speedup_4v1", scaling},
              {"probe4", mp.probe4},
              {"hardware_threads", mp.hardware_threads},
              {"assert_armed", mp.probe4 > 2.0 ? 1 : 0}});
  if (mp.probe4 > 2.0) {
    if (scaling < 2.5) {
      std::fprintf(stderr,
                   "FAIL serving scaling: 4 streams at %.2fx vs 1 stream < 2.5x with measured "
                   "probe %.2fx (reported hw=%lld)\n",
                   scaling, mp.probe4, static_cast<long long>(mp.hardware_threads));
      ok = false;
    } else {
      std::printf("serving scaling 4 streams %.2fx >= 2.5x (probe %.2fx) — OK\n", scaling,
                  mp.probe4);
    }
  } else {
    std::printf("serving scaling assertion skipped (probe %.2fx, reported hw=%lld — no "
                "measured 4-way concurrency on this machine); measured %.2fx\n",
                mp.probe4, static_cast<long long>(mp.hardware_threads), scaling);
  }

  // ---- PR 6: continuous ragged batching at mixed-length high load ----------
  //
  // Lognormal lengths from two datasets interleaved: dozens of distinct token
  // counts, the traffic shape that thrashes 1:1 per-length plan pools (the
  // 16-shape bound evicts continuously, so steady state recompiles per
  // request). Two stacks, same request tensors:
  //
  //  - transformer: correctness showcase. Batched outputs must stay bitwise
  //    identical to 1:1 behind the block-diagonal mask. Throughput is
  //    reported, not asserted: dense block-diagonal attention computes the
  //    full (sum tokens)^2 score tile, a quadratic overhead the dense path
  //    pays for packing requests along the sequence axis.
  //  - FFN (the paper's OPT/alpaca scenario): all ops are linear in rows, so
  //    packed compute matches 1:1 flops and batching wins on plan reuse plus
  //    large-m kernel utilization. This carries the probe-gated speedup
  //    assert, in a single-replica configuration (1 stream, full worker pool
  //    intra-op) — the setting where small per-request tiles cannot fill the
  //    pool and batching is the only route to utilization.
  bench::PrintHeader("Ragged batched serving — mixed alpaca/mnli lengths",
                     "1:1 vs SRead/SWrite-packed batching, " + std::to_string(threads) +
                         " pool workers");
  bench::JsonReport report6("serving_ragged_batching");
  Rng lrng(5);
  const std::vector<int64_t> lens_alpaca = SampleBatchLens(DatasetSeqLens("alpaca"), 32, lrng);
  const std::vector<int64_t> lens_mnli = SampleBatchLens(DatasetSeqLens("mnli"), 32, lrng);
  std::vector<ServeRequest> mixed;
  std::set<int64_t> distinct_lens;
  Rng mrng(6);
  for (size_t i = 0; i < lens_alpaca.size() + lens_mnli.size(); ++i) {
    const int64_t len = i % 2 == 0 ? lens_alpaca[i / 2] : lens_mnli[i / 2];
    distinct_lens.insert(len);
    ServeRequest req;
    req.x = Tensor::Random({len, kHidden}, mrng);
    mixed.push_back(std::move(req));
  }
  const int64_t n_mixed = static_cast<int64_t>(mixed.size());
  Rng fr(7);
  PlannedFfnStack ffn_stack(kLayers, kHidden, kFfn, fr);

  bench::Table table6({"stack/mode", "wall(ms)", "req/s", "p50(ms)", "p99(ms)", "forwards",
                       "plan keys", "packed util"});
  // (stack, streams, window) per measured mode; 1:1 and batched pairs share
  // the stack and stream count so only the admission policy differs.
  struct RaggedMode {
    const char* name;
    bool ffn;
    int streams;
    int window;
  };
  const RaggedMode modes[] = {
      {"xf 1:1", false, 4, 1},
      {"xf batched", false, 4, 8},
      {"ffn 1:1", true, 1, 1},
      {"ffn batched", true, 1, 16},
  };
  std::vector<Tensor> xf_baseline, ffn_baseline;
  double ffn_one_to_one_rps = 0.0;
  double ffn_batched_rps = 0.0;
  for (const RaggedMode& mode : modes) {
    ServingEngineOptions options;
    options.num_streams = mode.streams;
    options.batch_window = mode.window;
    options.max_batch_tokens = 512;
    const std::unique_ptr<ServingEngine> engine =
        mode.ffn ? std::make_unique<ServingEngine>(ffn_stack, options)
                 : std::make_unique<ServingEngine>(stack, options);
    engine->Serve(mixed);  // warm: compiles plans, builds context pools
    std::vector<Tensor> outputs;
    ServingEngineStats best{};
    for (int rep = 0; rep < 2; ++rep) {
      std::vector<Tensor> got = engine->Serve(mixed);
      const ServingEngineStats s = engine->stats();
      if (rep == 0 || s.wall_us < best.wall_us) {
        best = s;
        outputs = std::move(got);
      }
    }
    std::vector<Tensor>& baseline = mode.ffn ? ffn_baseline : xf_baseline;
    if (mode.window == 1) {
      baseline = std::move(outputs);
    } else {
      for (size_t i = 0; i < outputs.size(); ++i) {
        if (!BitwiseEqual(outputs[i], baseline[i])) {
          std::fprintf(stderr,
                       "FAIL ragged batching (%s): request %zu not bitwise equal to the 1:1 "
                       "engine\n",
                       mode.name, i);
          ok = false;
        }
      }
    }
    if (mode.ffn) {
      (mode.window == 1 ? ffn_one_to_one_rps : ffn_batched_rps) = best.requests_per_sec;
    }
    table6.Row({mode.name, bench::FmtMs(best.wall_us), bench::Fmt(best.requests_per_sec, "%.1f"),
                bench::FmtMs(best.p50_latency_us), bench::FmtMs(best.p99_latency_us),
                std::to_string(best.batches), std::to_string(best.buckets.size()),
                bench::Fmt(best.packed_utilization, "%.3f")});
    std::string key = std::string("ragged_") + (mode.ffn ? "ffn_" : "transformer_") +
                      (mode.window == 1 ? "one_to_one" : "batched");
    report6.Add(key, {{"requests", n_mixed},
                      {"wall_us", best.wall_us},
                      {"requests_per_sec", best.requests_per_sec},
                      {"p50_latency_us", best.p50_latency_us},
                      {"p99_latency_us", best.p99_latency_us},
                      {"mean_latency_us", best.mean_latency_us},
                      {"forwards", best.batches},
                      {"plan_pool_keys", static_cast<int64_t>(best.buckets.size())},
                      {"distinct_request_lengths", static_cast<int64_t>(distinct_lens.size())},
                      {"packed_utilization", best.packed_utilization},
                      {"pool_contexts_highwater", best.pool_contexts_highwater},
                      {"pool_arena_bytes_highwater", best.pool_arena_bytes_highwater},
                      {"streams", mode.streams},
                      {"batch_window", mode.window},
                      {"threads", threads}});
  }

  const double batch_speedup =
      ffn_one_to_one_rps > 0.0 ? ffn_batched_rps / ffn_one_to_one_rps : 0.0;
  report6.Add("ragged_batching_speedup",
              {{"rps_one_to_one", ffn_one_to_one_rps},
               {"rps_batched", ffn_batched_rps},
               {"speedup", batch_speedup},
               {"probe4", mp.probe4},
               {"hardware_threads", mp.hardware_threads},
               {"assert_armed", mp.probe4 > 2.0 ? 1 : 0}});
  if (mp.probe4 > 2.0) {
    if (batch_speedup < 1.5) {
      std::fprintf(stderr,
                   "FAIL ragged batching: FFN batched at %.2fx vs 1:1 < 1.5x with measured "
                   "probe %.2fx (reported hw=%lld)\n",
                   batch_speedup, mp.probe4, static_cast<long long>(mp.hardware_threads));
      ok = false;
    } else {
      std::printf("ragged batching (FFN single-replica) %.2fx >= 1.5x vs 1:1 (probe %.2fx) "
                  "— OK\n",
                  batch_speedup, mp.probe4);
    }
  } else {
    std::printf("ragged batching assertion skipped (probe %.2fx, reported hw=%lld — no "
                "measured 4-way concurrency on this machine); measured %.2fx\n",
                mp.probe4, static_cast<long long>(mp.hardware_threads), batch_speedup);
  }

  if (!report.WriteFile(out_path)) {
    std::fprintf(stderr, "failed to write %s\n", out_path.c_str());
    return 1;
  }
  if (!report6.WriteFile(out6_path)) {
    std::fprintf(stderr, "failed to write %s\n", out6_path.c_str());
    return 1;
  }
  std::printf("\nwrote %s and %s\n", out_path.c_str(), out6_path.c_str());
  if (!ok) {
    std::fprintf(stderr, "\nserving-throughput acceptance checks FAILED\n");
    return 1;
  }
  std::printf("serving-throughput acceptance checks passed\n");
  return 0;
}
