// Figure 17: PIT with Tensor Cores (wmma) — fp16 4096^3 sparse matmul with
// micro-tiles 32x1 and 32x64 over sparsity 0-99%. wmma supports only three
// fragment shapes; PIT's transformation feeds gathered micro-tiles to them.
#include "bench_util.h"
#include "pit/core/kernel_selection.h"
#include "pit/sparse/coverage.h"

using namespace pit;

int main() {
  bench::PrintHeader("Figure 17 — PIT + Tensor Core wmma (V100, fp16)",
                     "4096^3, sparse A (column-major), micro-tiles 32x1 and 32x64");
  CostModel model(V100(), Precision::kFp16);
  const int64_t kDim = 4096;

  // The two PIT-generated wmma sparse kernels of §5.3: micro-tile [32,1]
  // (k-axis) and [32,64]-style coverage, both feeding a wmma-compatible
  // 32x64x32 dense tile.
  const TileShape tile{32, 64, 32};
  PIT_CHECK(WmmaCompatible(tile));
  const PitRule rule_fine = MakeRuleForSparseA(tile, MatmulAxis::kK, Layout::kColMajor, true);

  bench::Table table({"sparsity", "granularity", "micro-tile", "latency(ms)"});
  for (double sparsity : {0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 0.99}) {
    {
      AnalyticPattern p(kDim, kDim, 32, 1, sparsity);
      PlanOptions opts;
      opts.tensor_core = true;
      PitMatmulPlan plan = PlanSparseMatmul(model, rule_fine, kDim, kDim, kDim, p, opts);
      table.Row({bench::FmtPct(sparsity), "32x1", plan.rule.micro_tile.ToString(),
                 bench::FmtMs(plan.cost.Total())});
    }
    {
      AnalyticPattern p(kDim, kDim, 32, 64, sparsity);
      PitMatmulPlan plan =
          PlanSparseMatmul(model, rule_fine, kDim, kDim, kDim, p, PlanOptions{0.05, true, true});
      table.Row({bench::FmtPct(sparsity), "32x64", plan.rule.micro_tile.ToString(),
                 bench::FmtMs(plan.cost.Total())});
    }
  }
  std::printf("\nExpected shape: both kernels track each other closely at every sparsity\n"
              "ratio (PIT transformation adds little overhead), latency decreasing with\n"
              "sparsity; wmma shape constraints (16x16x16 etc.) would otherwise forbid a\n"
              "32x1 granularity outright.\n");
  return 0;
}
