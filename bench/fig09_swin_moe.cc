// Figure 9: Swin-MoE end-to-end latency and memory on A100 (fp16),
// batch 8/32, experts 8/16/32.
#include "bench_util.h"
#include "pit/runtime/models.h"
#include "pit/workloads/moe_routing.h"

using namespace pit;

int main() {
  bench::PrintHeader("Figure 9 — Swin-MoE end-to-end (A100, fp16)",
                     "fixed 196 tokens/image (vision), 6 MoE layers; latency + memory");
  const TransformerDims dims = SwinMoeDims();
  CostModel model(A100(), Precision::kFp16);
  const int64_t kTokensPerImage = 196;

  for (int64_t batch : {32, 8}) {
    std::printf("\n--- batch=%lld ---\n", static_cast<long long>(batch));
    bench::Table table({"experts", "engine", "latency(ms)", "memory(GB)"});
    for (int experts : {8, 16, 32}) {
      Rng rng(7 + experts);
      MoeRunConfig moe;
      moe.num_experts = experts;
      MoeRoutingConfig routing{experts, 0.8};
      for (int l = 0; l < 6; ++l) {
        moe.layer_loads.push_back(
            ExpertLoads(RouteTokens(batch * kTokensPerImage, routing, rng), experts));
      }
      for (Engine e : {Engine::kPyTorch, Engine::kPyTorchS, Engine::kTutel, Engine::kDeepSpeed,
                       Engine::kMegaBlocks, Engine::kPit}) {
        ModelRunCost run = SwinMoeRun(model, e, dims, batch, kTokensPerImage, moe);
        table.Row({std::to_string(experts), EngineName(e), bench::FmtMs(run.cost.Total()),
                   bench::Fmt(run.MemoryGb(), "%.2f")});
      }
    }
  }
  std::printf("\nExpected shape: MegaBlocks is the best baseline; PIT improves on it by a\n"
              "modest factor (the MoE layers are only ~24-61%% of e2e latency at 8-32\n"
              "experts), and the overall PIT gain is smaller than on Switch Transformer.\n");
  return 0;
}
