// Figure 18: online sparse-index construction latency for a 4096x4096 tensor
// at tile sizes 1x1 / 16x16 / 32x32 and sparsity 50-99%: PIT's unordered
// micro-tile index vs PyTorch-S (cuSPARSE for 1x1, Triton for blocks).
// Includes the ordered-vs-unordered ablation (what ordering alone costs PIT).
#include <cmath>

#include "bench_util.h"
#include "pit/core/sparsity_detector.h"
#include "pit/sparse/coverage.h"

using namespace pit;

int main() {
  bench::PrintHeader("Figure 18 — index construction latency (V100)",
                     "4096x4096 tensor; PIT unordered vs PyTorch-S ordered construction");
  CostModel model(V100());
  const int64_t kDim = 4096;
  struct Tile {
    const char* name;
    int64_t r, c;
  };
  for (const Tile& t : {Tile{"1x1", 1, 1}, Tile{"16x16", 16, 16}, Tile{"32x32", 32, 32}}) {
    std::printf("\n--- tile size %s ---\n", t.name);
    bench::Table table({"sparsity", "PyTorch-S(ms)", "PIT(ms)", "PIT-ordered(ms)", "speedup"});
    for (double sparsity : {0.50, 0.90, 0.95, 0.99}) {
      AnalyticPattern pattern(kDim, kDim, 1, 1, sparsity);
      const double p = pattern.NonZeroProb(MicroTileShape{t.r, t.c});
      const int64_t grid = (kDim / t.r) * (kDim / t.c);
      const int64_t nnz = static_cast<int64_t>(std::llround(p * static_cast<double>(grid)));
      const double pit = SparsityDetector::DetectCostUs(model, kDim * kDim, nnz);
      const double baseline = SparsityDetector::OrderedDetectCostUs(model, kDim * kDim, nnz);
      table.Row({bench::FmtPct(sparsity), bench::FmtMs(baseline), bench::FmtMs(pit),
                 bench::FmtMs(baseline),  // ordering forces the baseline path
                 bench::Fmt(baseline / pit, "%.1fx")});
    }
  }
  std::printf("\nExpected shape: PIT 3.6-4.7x faster at 1x1 (per-element atomics dominate\n"
              "PIT's cost there) and 11-26x at block tiles (one streaming pass vs multi-pass\n"
              "ordered construction). The unordered index is PIT-legal because any PIT-axis\n"
              "permutation is valid.\n");
  return 0;
}
