// Figure 11: BERT-base end-to-end latency and memory over 12 datasets on
// V100 fp32, batch 32, vs PyTorch / PyTorch-S (+convert) / DeepSpeed /
// TurboTransformer.
#include "bench_util.h"
#include "pit/runtime/models.h"
#include "pit/workloads/seq_len.h"

using namespace pit;

int main() {
  bench::PrintHeader("Figure 11 — BERT across datasets (V100, fp32, batch 32)",
                     "dynamic sparsity = varying sequence lengths within the batch");
  CostModel model(V100());
  const TransformerDims dims = BertBase();
  bench::Table table({"dataset", "engine", "latency(ms)", "convert(ms)", "memory(GB)"});
  for (const auto& dataset : BertDatasets()) {
    Rng rng(101);
    auto lens = SampleBatchLens(DatasetSeqLens(dataset), 32, rng);
    for (Engine e : {Engine::kPyTorch, Engine::kPyTorchS, Engine::kDeepSpeed,
                     Engine::kTurboTransformer, Engine::kPit}) {
      ModelRunCost run = TransformerRun(model, e, dims, lens);
      table.Row({dataset, EngineName(e), bench::FmtMs(run.cost.Total()),
                 bench::FmtMs(run.cost.convert_us + run.cost.index_us),
                 bench::Fmt(run.MemoryGb(), "%.2f")});
    }
  }
  std::printf("\nExpected shape: PIT fastest on every dataset (paper: 1.3-4.9x over PyTorch,\n"
              "1.1-1.9x over TurboTransformer); PyTorch-S hurt by 32-token padding on the\n"
              "short GLUE datasets plus visible conversion; PIT memory lowest.\n");
  return 0;
}
