// Wall-clock speedup of the blocked + multi-threaded backend over the scalar
// ReferenceBackend on the PIT hot paths, with results emitted as a
// BENCH_*.json trajectory file (default BENCH_pr1.json, override with
// --out <path>).
//
// Acceptance targets (4-core runner): >= 4x on dense 512x512x512 MatMul and
// >= 2x on PitRowGatherMatmul at 25% row density.
#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "pit/common/backend.h"
#include "pit/common/parallel_for.h"
#include "pit/core/sparse_kernel.h"
#include "pit/core/sread_swrite.h"
#include "pit/tensor/ops.h"

using namespace pit;

namespace {

struct Case {
  std::string name;
  double reference_us = 0.0;
  double blocked_us = 0.0;
  double Speedup() const { return blocked_us > 0.0 ? reference_us / blocked_us : 0.0; }
};

template <typename Fn>
Case Measure(const std::string& name, Fn&& fn, int reps) {
  Case c;
  c.name = name;
  {
    ScopedBackend guard(ComputeBackend::kReference);
    c.reference_us = bench::TimeUs(fn, reps);
  }
  {
    ScopedBackend guard(ComputeBackend::kBlocked);
    c.blocked_us = bench::TimeUs(fn, reps);
  }
  return c;
}

// Real pool concurrency (shared probe in bench_util.h): the detector check
// below is gated on it, since containers routinely report more hardware
// threads than the cgroup quota actually provides.
double ParallelProbeSpeedup() { return bench::ParallelProbeSpeedup(NumThreads()); }

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_pr1.json";
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0) {
      out_path = argv[i + 1];
    }
  }

  bench::PrintHeader("Backend speedup — blocked+parallel vs. scalar reference",
                     "wall-clock microseconds, best of N reps; threads = " +
                         std::to_string(NumThreads()));

  Rng rng(1);
  std::vector<Case> cases;

  {  // Dense GEMM, the acceptance anchor.
    Tensor a = Tensor::Random({512, 512}, rng);
    Tensor b = Tensor::Random({512, 512}, rng);
    cases.push_back(Measure("matmul_512x512x512", [&] { MatMul(a, b); }, 3));
  }
  {  // Fused bias epilogue.
    Tensor a = Tensor::Random({512, 512}, rng);
    Tensor b = Tensor::Random({512, 512}, rng);
    Tensor bias = Tensor::Random({512}, rng);
    cases.push_back(Measure("matmul_bias_512x512x512", [&] { MatMulBias(a, b, bias); }, 3));
  }
  {  // Batched GEMM.
    Tensor a = Tensor::Random({8, 128, 256}, rng);
    Tensor b = Tensor::Random({8, 256, 128}, rng);
    cases.push_back(Measure("batch_matmul_8x128x256x128", [&] { BatchMatMul(a, b); }, 3));
  }
  {  // Row-gather PIT matmul at 25% row density, the second acceptance anchor.
    Tensor a = Tensor::RandomBlockSparse(512, 512, 1, 512, 0.75, rng);
    Tensor b = Tensor::Random({512, 512}, rng);
    SparsityDetector detector;
    cases.push_back(
        Measure("pit_row_gather_matmul_512_25pct", [&] { PitRowGatherMatmul(a, b, detector); }, 3));
  }
  {  // Detector scan.
    Tensor t = Tensor::RandomSparse({2048, 2048}, 0.95, rng);
    SparsityDetector detector;
    cases.push_back(
        Measure("detector_scan_2048_mt1x8", [&] { detector.Detect(t, MicroTileShape{1, 8}); }, 3));
  }
  {  // Micro-tile gather/scatter round trip.
    Tensor t = Tensor::RandomBlockSparse(1024, 1024, 32, 32, 0.5, rng);
    SparsityDetector detector;
    MicroTileIndex index = detector.Detect(t, MicroTileShape{32, 32});
    Tensor dst = Tensor::Zeros({1024, 1024});
    cases.push_back(Measure("sread_swrite_microtiles_1024_b32",
                            [&] { SWriteMicroTiles(SReadMicroTiles(t, index), index, &dst); }, 3));
  }

  bench::Table table({"case", "reference(ms)", "blocked(ms)", "speedup"});
  bench::JsonReport report("backend_speedup");
  for (const Case& c : cases) {
    table.Row({c.name, bench::FmtMs(c.reference_us), bench::FmtMs(c.blocked_us),
               bench::Fmt(c.Speedup(), "%.2fx")});
    report.Add(c.name, {{"reference_us", c.reference_us},
                        {"blocked_us", c.blocked_us},
                        {"speedup", c.Speedup()},
                        {"threads", static_cast<double>(NumThreads())}});
  }
  if (!report.WriteFile(out_path)) {
    std::fprintf(stderr, "failed to write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("\nwrote %s\n", out_path.c_str());

  // The detector scan must genuinely win under the blocked backend wherever
  // the pool has real cores to run on (the PR 1 result was flat because the
  // scan was a branchy scalar loop and the grain starved the workers).
  const double probe = ParallelProbeSpeedup();
  for (const Case& c : cases) {
    if (c.name.rfind("detector_scan", 0) != 0) {
      continue;
    }
    if (NumThreads() > 1 && probe > 1.3) {
      if (c.Speedup() <= 1.2) {
        std::fprintf(stderr,
                     "FAIL %s: blocked speedup %.2fx <= 1.2x with %d effective workers "
                     "(parallel probe %.2fx)\n",
                     c.name.c_str(), c.Speedup(), NumThreads(), probe);
        return 1;
      }
      std::printf("%s speedup %.2fx > 1.2x (probe %.2fx) — OK\n", c.name.c_str(), c.Speedup(),
                  probe);
    } else {
      std::printf("%s: parallel assertion skipped (threads=%d, probe %.2fx — no effective "
                  "concurrency in this environment)\n",
                  c.name.c_str(), NumThreads(), probe);
    }
  }
  return 0;
}
