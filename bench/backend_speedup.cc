// Wall-clock speedup of the blocked + multi-threaded backend over the scalar
// ReferenceBackend on the PIT hot paths, with results emitted as a
// BENCH_*.json trajectory file (default BENCH_pr1.json, override with
// --out <path>), plus the PR 7 per-kernel scalar-vs-SIMD ISA-tier section
// (default BENCH_pr7.json, override with --out7 <path>).
//
// Acceptance targets (4-core runner): >= 4x on dense 512x512x512 MatMul and
// >= 2x on PitRowGatherMatmul at 25% row density. PR 7 target: >= 2x on the
// 1024^3 GEMM from the AVX2/FMA tier over the scalar blocked kernels at the
// same thread count, armed whenever CPUID detects AVX2+FMA.
#include <cmath>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "pit/common/backend.h"
#include "pit/common/parallel_for.h"
#include "pit/core/sparse_kernel.h"
#include "pit/core/sread_swrite.h"
#include "pit/runtime/models.h"
#include "pit/runtime/serving_engine.h"
#include "pit/tensor/ops.h"

using namespace pit;

namespace {

struct Case {
  std::string name;
  double reference_us = 0.0;
  double blocked_scalar_us = 0.0;  // blocked backend pinned to the scalar tier
  double blocked_us = 0.0;         // blocked backend at the active (auto) tier
  double Speedup() const { return blocked_us > 0.0 ? reference_us / blocked_us : 0.0; }
  double IsaSpeedup() const { return blocked_us > 0.0 ? blocked_scalar_us / blocked_us : 0.0; }
};

template <typename Fn>
Case Measure(const std::string& name, Fn&& fn, int reps) {
  Case c;
  c.name = name;
  {
    ScopedBackend guard(ComputeBackend::kReference);
    c.reference_us = bench::TimeUs(fn, reps);
  }
  {
    ScopedBackend guard(ComputeBackend::kBlocked);
    {
      ScopedIsa tier(IsaTier::kScalar);
      c.blocked_scalar_us = bench::TimeUs(fn, reps);
    }
    c.blocked_us = bench::TimeUs(fn, reps);
  }
  return c;
}

// PR 7: same kernel, scalar tier vs the detected SIMD tier, same thread
// count — a pure ISA ratio (thread scaling cancels out, so it arms on ISA
// detection rather than the parallel probe).
struct IsaCase {
  std::string name;
  double scalar_us = 0.0;
  double simd_us = 0.0;
  double Speedup() const { return simd_us > 0.0 ? scalar_us / simd_us : 0.0; }
};

template <typename Fn>
IsaCase MeasureIsa(const std::string& name, Fn&& fn, int reps) {
  IsaCase c;
  c.name = name;
  ScopedBackend guard(ComputeBackend::kBlocked);
  {
    ScopedIsa tier(IsaTier::kScalar);
    c.scalar_us = bench::TimeUs(fn, reps);
  }
  if (DetectedIsa() != IsaTier::kScalar) {
    ScopedIsa tier(DetectedIsa());
    c.simd_us = bench::TimeUs(fn, reps);
  } else {
    c.simd_us = c.scalar_us;  // no SIMD tier on this machine: ratio reads 1.0
  }
  return c;
}

// A block-diagonal [tokens, tokens] mask of `blocks` equal spans — the shape
// ragged batched serving produces, where span skipping pays.
Tensor BlockDiagonalMask(int64_t tokens, int64_t blocks) {
  Tensor mask = Tensor::Zeros({tokens, tokens});
  const int64_t span = tokens / blocks;
  for (int64_t b = 0; b < blocks; ++b) {
    const int64_t lo = b * span;
    const int64_t hi = b + 1 == blocks ? tokens : lo + span;
    for (int64_t i = lo; i < hi; ++i) {
      for (int64_t j = lo; j < hi; ++j) {
        mask.At(i, j) = 1.0f;
      }
    }
  }
  return mask;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_pr1.json";
  std::string out7_path = "BENCH_pr7.json";
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0) {
      out_path = argv[i + 1];
    }
    if (std::strcmp(argv[i], "--out7") == 0) {
      out7_path = argv[i + 1];
    }
  }

  bench::PrintHeader("Backend speedup — blocked+parallel vs. scalar reference",
                     "wall-clock microseconds, best of N reps; threads = " +
                         std::to_string(NumThreads()));
  const bench::MachineProbe& mp = bench::GetMachineProbe();

  Rng rng(1);
  std::vector<Case> cases;

  {  // Dense GEMM, the acceptance anchor.
    Tensor a = Tensor::Random({512, 512}, rng);
    Tensor b = Tensor::Random({512, 512}, rng);
    cases.push_back(Measure("matmul_512x512x512", [&] { MatMul(a, b); }, 3));
  }
  {  // Fused bias epilogue.
    Tensor a = Tensor::Random({512, 512}, rng);
    Tensor b = Tensor::Random({512, 512}, rng);
    Tensor bias = Tensor::Random({512}, rng);
    cases.push_back(Measure("matmul_bias_512x512x512", [&] { MatMulBias(a, b, bias); }, 3));
  }
  {  // Batched GEMM.
    Tensor a = Tensor::Random({8, 128, 256}, rng);
    Tensor b = Tensor::Random({8, 256, 128}, rng);
    cases.push_back(Measure("batch_matmul_8x128x256x128", [&] { BatchMatMul(a, b); }, 3));
  }
  {  // Row-gather PIT matmul at 25% row density, the second acceptance anchor.
    Tensor a = Tensor::RandomBlockSparse(512, 512, 1, 512, 0.75, rng);
    Tensor b = Tensor::Random({512, 512}, rng);
    SparsityDetector detector;
    cases.push_back(
        Measure("pit_row_gather_matmul_512_25pct", [&] { PitRowGatherMatmul(a, b, detector); }, 3));
  }
  {  // Detector scan.
    Tensor t = Tensor::RandomSparse({2048, 2048}, 0.95, rng);
    SparsityDetector detector;
    cases.push_back(
        Measure("detector_scan_2048_mt1x8", [&] { detector.Detect(t, MicroTileShape{1, 8}); }, 3));
  }
  {  // Micro-tile gather/scatter round trip.
    Tensor t = Tensor::RandomBlockSparse(1024, 1024, 32, 32, 0.5, rng);
    SparsityDetector detector;
    MicroTileIndex index = detector.Detect(t, MicroTileShape{32, 32});
    Tensor dst = Tensor::Zeros({1024, 1024});
    cases.push_back(Measure("sread_swrite_microtiles_1024_b32",
                            [&] { SWriteMicroTiles(SReadMicroTiles(t, index), index, &dst); }, 3));
  }

  bench::Table table({"case", "reference(ms)", "blocked scalar(ms)", "blocked(ms)", "speedup",
                      "isa speedup"});
  bench::JsonReport report("backend_speedup");
  for (const Case& c : cases) {
    table.Row({c.name, bench::FmtMs(c.reference_us), bench::FmtMs(c.blocked_scalar_us),
               bench::FmtMs(c.blocked_us), bench::Fmt(c.Speedup(), "%.2fx"),
               bench::Fmt(c.IsaSpeedup(), "%.2fx")});
    report.Add(c.name, {{"reference_us", c.reference_us},
                        {"blocked_scalar_us", c.blocked_scalar_us},
                        {"blocked_us", c.blocked_us},
                        {"speedup", c.Speedup()},
                        {"isa_speedup", c.IsaSpeedup()},
                        {"isa", mp.isa_selected},
                        {"threads", NumThreads()}});
  }
  if (!report.WriteFile(out_path)) {
    std::fprintf(stderr, "failed to write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("\nwrote %s\n", out_path.c_str());

  // The detector scan must genuinely win under the blocked backend wherever
  // the pool has real cores to run on (the PR 1 result was flat because the
  // scan was a branchy scalar loop and the grain starved the workers).
  const double probe = bench::ParallelProbeSpeedup(NumThreads());
  for (const Case& c : cases) {
    if (c.name.rfind("detector_scan", 0) != 0) {
      continue;
    }
    if (NumThreads() > 1 && probe > 1.3) {
      if (c.Speedup() <= 1.2) {
        std::fprintf(stderr,
                     "FAIL %s: blocked speedup %.2fx <= 1.2x with %d effective workers "
                     "(parallel probe %.2fx)\n",
                     c.name.c_str(), c.Speedup(), NumThreads(), probe);
        return 1;
      }
      std::printf("%s speedup %.2fx > 1.2x (probe %.2fx) — OK\n", c.name.c_str(), c.Speedup(),
                  probe);
    } else {
      std::printf("%s: parallel assertion skipped (threads=%d, probe %.2fx — no effective "
                  "concurrency in this environment)\n",
                  c.name.c_str(), NumThreads(), probe);
    }
  }

  // -------------------------------------------------------------------------
  // PR 7: per-kernel ISA-tier speedups — the scalar blocked kernels vs the
  // detected SIMD tier, same backend, same thread count. Same-thread ratios
  // cancel the pool out entirely, so the GEMM acceptance assert arms on ISA
  // detection alone (not on probe4).
  // -------------------------------------------------------------------------
  bench::PrintHeader("ISA-tier speedup — scalar kernels vs " + mp.isa_detected,
                     "wall-clock microseconds, best of N reps; threads = " +
                         std::to_string(NumThreads()) + ", both tiers");

  std::vector<IsaCase> isa_cases;
  {  // The acceptance anchor: 1024^3 GEMM.
    Tensor a = Tensor::Random({1024, 1024}, rng);
    Tensor b = Tensor::Random({1024, 1024}, rng);
    isa_cases.push_back(MeasureIsa("gemm_1024x1024x1024", [&] { MatMul(a, b); }, 3));
  }
  {  // Fused bias+relu epilogue.
    Tensor a = Tensor::Random({512, 512}, rng);
    Tensor b = Tensor::Random({512, 512}, rng);
    Tensor bias = Tensor::Random({512}, rng);
    Tensor out = Tensor::Zeros({512, 512});
    isa_cases.push_back(MeasureIsa("gemm_bias_relu_512x512x512",
                                   [&] { MatMulBiasReluInto(a, b, bias, out); }, 3));
  }
  {  // Unmasked softmax over attention-logit-shaped rows.
    Tensor t = Tensor::Random({2048, 2048}, rng);
    Tensor out = Tensor::Zeros({2048, 2048});
    isa_cases.push_back(
        MeasureIsa("softmax_2048x2048", [&] { SoftmaxInto(t, nullptr, out); }, 3));
  }
  {  // Layernorm over FFN-shaped rows.
    Tensor t = Tensor::Random({2048, 1024}, rng);
    Tensor gamma = Tensor::Random({1024}, rng);
    Tensor beta = Tensor::Random({1024}, rng);
    Tensor out = Tensor::Zeros({2048, 1024});
    isa_cases.push_back(
        MeasureIsa("layernorm_2048x1024", [&] { LayerNormInto(t, gamma, beta, out); }, 3));
  }
  {  // Detector integer-OR span scan, at a span width the SIMD path engages
     // on (spans below 16 elements stay on the inline scalar scan) and a
     // sparsity where most spans scan to the end instead of early-exiting.
    Tensor t = Tensor::RandomSparse({2048, 2048}, 0.999, rng);
    SparsityDetector detector;
    isa_cases.push_back(MeasureIsa("detector_scan_2048_mt1x128_999",
                                   [&] { detector.Detect(t, MicroTileShape{1, 128}); }, 3));
  }
  {  // Elementwise chain (relu/add/scale row kernels).
    Tensor t = Tensor::Random({2048, 1024}, rng);
    Tensor u = Tensor::Random({2048, 1024}, rng);
    Tensor out = Tensor::Zeros({2048, 1024});
    isa_cases.push_back(MeasureIsa("elementwise_relu_add_scale_2048x1024", [&] {
      ReluInto(t, out);
      AddInto(out, u, out);
      ScaleInto(out, 0.5f, out);
    }, 3));
  }
  {  // SRead/SWrite row gather round trip.
    Tensor t = Tensor::RandomBlockSparse(4096, 256, 1, 256, 0.5, rng);
    SparsityDetector detector;
    MicroTileIndex index = detector.DetectOrdered(t, MicroTileShape{1, 256});
    std::vector<int64_t> row_ids;
    row_ids.reserve(index.offsets.size());
    for (int64_t off : index.offsets) {
      row_ids.push_back(index.BlockRowOf(off));
    }
    Tensor dst = Tensor::Zeros({4096, 256});
    isa_cases.push_back(MeasureIsa("row_gather_scatter_4096x256_50pct", [&] {
      Tensor packed = SReadRows(t, row_ids);
      SWriteRows(packed, row_ids, &dst);
    }, 3));
  }
  {  // End-to-end: planned transformer stack forward (GEMM+softmax+layernorm
     // + elementwise under one plan).
    Rng model_rng(7);
    PlannedTransformerStack stack(/*layers=*/2, /*hidden=*/128, /*heads=*/4, /*ffn_hidden=*/512,
                                  model_rng);
    Tensor x = Tensor::Random({128, 128}, rng);
    isa_cases.push_back(
        MeasureIsa("planned_transformer_2L_128t_d128", [&] { stack.Forward(x); }, 3));
  }

  bench::Table table7({"case", "scalar(ms)", mp.isa_detected + "(ms)", "isa speedup"});
  bench::JsonReport report7("isa_speedup");
  for (const IsaCase& c : isa_cases) {
    table7.Row({c.name, bench::FmtMs(c.scalar_us), bench::FmtMs(c.simd_us),
                bench::Fmt(c.Speedup(), "%.2fx")});
    report7.Add(c.name, {{"scalar_us", c.scalar_us},
                         {"simd_us", c.simd_us},
                         {"isa_speedup", c.Speedup()},
                         {"isa", mp.isa_detected},
                         {"threads", NumThreads()}});
  }

  {  // Satellite: masked-softmax span skipping, on vs off, at the active tier
     // (block-diagonal mask of 16 ragged-serving-style spans — 1/16 of each
     // row unmasked, so the skip should approach the density ratio).
    Tensor t = Tensor::Random({2048, 2048}, rng);
    Tensor mask = BlockDiagonalMask(2048, 16);
    const ConstTensorView maskv(mask);
    Tensor out = Tensor::Zeros({2048, 2048});
    ScopedBackend guard(ComputeBackend::kBlocked);
    double skip_on, skip_off;
    {
      ScopedSoftmaxMaskSkip skip(true);
      skip_on = bench::TimeUs([&] { SoftmaxInto(t, &maskv, out); }, 3);
    }
    {
      ScopedSoftmaxMaskSkip skip(false);
      skip_off = bench::TimeUs([&] { SoftmaxInto(t, &maskv, out); }, 3);
    }
    const double skip_speedup = skip_on > 0.0 ? skip_off / skip_on : 0.0;
    table7.Row({"softmax_mask_skip_2048_16spans", bench::FmtMs(skip_off), bench::FmtMs(skip_on),
                bench::Fmt(skip_speedup, "%.2fx")});
    report7.Add("softmax_mask_skip_2048_16spans", {{"skip_off_us", skip_off},
                                                   {"skip_on_us", skip_on},
                                                   {"skip_speedup", skip_speedup},
                                                   {"isa", mp.isa_selected},
                                                   {"threads", NumThreads()}});
  }

  if (!report7.WriteFile(out7_path)) {
    std::fprintf(stderr, "failed to write %s\n", out7_path.c_str());
    return 1;
  }
  std::printf("\nwrote %s\n", out7_path.c_str());

  // Acceptance: the SIMD tier must carry the 1024^3 GEMM to >= 2x over the
  // scalar blocked kernels whenever CPUID actually detected AVX2+FMA.
  for (const IsaCase& c : isa_cases) {
    if (c.name.rfind("gemm_1024", 0) != 0) {
      continue;
    }
    if (mp.isa_detected != "scalar") {
      if (c.Speedup() < 2.0) {
        std::fprintf(stderr, "FAIL %s: %s speedup %.2fx < 2.0x over scalar tier\n",
                     c.name.c_str(), mp.isa_detected.c_str(), c.Speedup());
        return 1;
      }
      std::printf("%s %s speedup %.2fx >= 2.0x — OK\n", c.name.c_str(), mp.isa_detected.c_str(),
                  c.Speedup());
    } else {
      std::printf("%s: SIMD assertion skipped (CPUID detected no AVX2+FMA on this machine)\n",
                  c.name.c_str());
    }
  }
  return 0;
}
