// Figure 15: magnitude iterative pruning of BERT — latency per batch
// (fwd+bwd) and memory, at block granularities 32x64 and 32x1, weight
// sparsity 50-98%, V100 fp32 batch 32.
#include "bench_util.h"
#include "pit/runtime/models.h"

using namespace pit;

int main() {
  bench::PrintHeader("Figure 15 — sparse training by iterative pruning (V100, fp32)",
                     "BERT-base, batch 32, mask recomputed every step (dynamic pattern)");
  CostModel model(V100());
  const TransformerDims dims = BertBase();
  for (int64_t bc : {64, 1}) {
    std::printf("\n--- block granularity 32x%lld ---\n", static_cast<long long>(bc));
    bench::Table table({"sparsity", "engine", "latency(ms)", "convert(ms)", "memory(GB)"});
    for (double sparsity : {0.50, 0.80, 0.90, 0.94, 0.96, 0.98}) {
      SparseTrainingRunConfig config;
      config.block_rows = 32;
      config.block_cols = bc;
      config.sparsity = sparsity;
      for (Engine e : {Engine::kPyTorch, Engine::kPyTorchS, Engine::kPit}) {
        ModelRunCost run = SparseTrainingRun(model, e, dims, config);
        table.Row({bench::FmtPct(sparsity), EngineName(e), bench::FmtMs(run.cost.Total()),
                   bench::FmtMs(run.cost.convert_us + run.cost.index_us),
                   bench::Fmt(run.MemoryGb(), "%.2f")});
      }
    }
  }
  std::printf("\nExpected shape: at 32x64 PIT wins mainly via fast index rebuild (PyTorch-S\n"
              "re-converts every step); at 32x1 PyTorch-S degrades badly (32x32 block\n"
              "coverage) while PIT keeps nearly the 32x64 speed (paper: 2.4x over PyTorch,\n"
              "4.8x over PyTorch-S). PIT memory alone falls as sparsity rises.\n");
  return 0;
}
