// Figure 10: OPT-13B / OPT-30B end-to-end inference latency and memory,
// Alpaca-like lengths, batch 32, on the paper's 8x V100-32GB configuration
// (tensor-parallel sharding with per-layer ring all-reduces).
#include "bench_util.h"
#include "pit/runtime/models.h"
#include "pit/runtime/multi_gpu.h"
#include "pit/workloads/seq_len.h"

using namespace pit;

int main() {
  bench::PrintHeader("Figure 10 — OPT inference (8x V100, fp32, tensor parallel)",
                     "Alpaca-like lengths, batch 32; padding + 99% ReLU activation sparsity");
  CostModel model(V100());
  bench::Table table({"model", "engine", "latency(ms)", "memory(GB)"});
  for (const char* size : {"13B", "30B"}) {
    TransformerDims dims = OptDims(size);
    Rng rng(11);
    auto lens = SampleBatchLens(DatasetSeqLens("alpaca"), 32, rng);
    OptRunConfig config;
    config.activation_sparsity = 0.99;
    TensorParallelConfig tp;
    tp.num_gpus = 8;
    for (Engine e : {Engine::kPyTorch, Engine::kPyTorchS, Engine::kDeepSpeed,
                     Engine::kPitNoActivation, Engine::kPit}) {
      ModelRunCost single = OptRun(model, e, dims, lens, config);
      ModelRunCost run = TensorParallel(single, dims, SumLens(lens), tp, model.precision());
      table.Row({dims.name, EngineName(e), bench::FmtMs(run.cost.Total()),
                 bench::Fmt(run.MemoryGb(), "%.2f") + "/gpu"});
    }
  }
  std::printf("\nExpected shape: PIT ~2x over PyTorch/DeepSpeed; PyTorch-S slowest (Triton\n"
              "kernels + conversion, no gain from 99%% element sparsity at 32x32 blocks);\n"
              "PIT w/o activation isolates the padding gain; the ReLU-sparsity path adds\n"
              "the rest (paper: extra 1.3-1.4x).\n");
  return 0;
}
