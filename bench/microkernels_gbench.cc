// Wall-clock micro-benchmarks (google-benchmark) of the functional host
// kernels: detector scan, SRead/SWrite gather/scatter, PIT sparse matmuls and
// the CSR/BSR baselines. These measure the *reference implementation*, not
// simulated GPU time — useful to track regressions in the library itself.
#include <benchmark/benchmark.h>

#include "pit/core/compiler.h"
#include "pit/core/sparse_kernel.h"
#include "pit/core/sread_swrite.h"
#include "pit/sparse/csr.h"
#include "pit/tensor/ops.h"

namespace pit {
namespace {

void BM_DetectorScan(benchmark::State& state) {
  Rng rng(1);
  Tensor t = Tensor::RandomSparse({512, 512}, 0.95, rng);
  SparsityDetector detector;
  for (auto _ : state) {
    benchmark::DoNotOptimize(detector.Detect(t, MicroTileShape{1, 8}));
  }
}
BENCHMARK(BM_DetectorScan);

void BM_SReadRows(benchmark::State& state) {
  Rng rng(2);
  Tensor t = Tensor::Random({1024, 256}, rng);
  std::vector<int64_t> rows;
  for (int64_t i = 0; i < 1024; i += 3) {
    rows.push_back(i);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(SReadRows(t, rows));
  }
}
BENCHMARK(BM_SReadRows);

void BM_DenseMatmulReference(benchmark::State& state) {
  Rng rng(3);
  Tensor a = Tensor::Random({256, 256}, rng);
  Tensor b = Tensor::Random({256, 256}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatMul(a, b));
  }
}
BENCHMARK(BM_DenseMatmulReference);

void BM_PitRowGatherMatmul(benchmark::State& state) {
  Rng rng(4);
  Tensor a = Tensor::RandomSparse({256, 256}, 0.9, rng);
  Tensor b = Tensor::Random({256, 256}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(PitRowGatherMatmul(a, b));
  }
}
BENCHMARK(BM_PitRowGatherMatmul);

void BM_PitKGatherMatmul(benchmark::State& state) {
  Rng rng(5);
  Tensor a = Tensor::RandomSparse({256, 256}, 0.9, rng);
  Tensor b = Tensor::Random({256, 256}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(PitKGatherMatmul(a, b, 32));
  }
}
BENCHMARK(BM_PitKGatherMatmul);

void BM_CsrSpMM(benchmark::State& state) {
  Rng rng(6);
  Tensor a = Tensor::RandomSparse({256, 256}, 0.9, rng);
  Tensor b = Tensor::Random({256, 256}, rng);
  CsrMatrix csr = CsrMatrix::FromDense(a);
  for (auto _ : state) {
    benchmark::DoNotOptimize(csr.SpMM(b));
  }
}
BENCHMARK(BM_CsrSpMM);

void BM_CsrConversion(benchmark::State& state) {
  Rng rng(7);
  Tensor a = Tensor::RandomSparse({512, 512}, 0.95, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(CsrMatrix::FromDense(a));
  }
}
BENCHMARK(BM_CsrConversion);

void BM_KernelSelection(benchmark::State& state) {
  CostModel model(V100());
  TileDatabase db = TileDatabase::BuildDefault(model);
  AnalyticPattern pattern(4096, 4096, 8, 1, 0.95);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SelectKernel(model, db, {&pattern}, 4096, 4096, 4096));
  }
}
BENCHMARK(BM_KernelSelection);

}  // namespace
}  // namespace pit

BENCHMARK_MAIN();
