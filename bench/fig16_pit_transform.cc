// Figure 16: sparse matmul (4096^3) across sparsity granularities 32x1, 1x64,
// 32x64 and ratios 50-99%, comparing cuSPARSE, Sputnik, OpenAI Block Sparse,
// SparTA and PIT. Static patterns: conversion/compile time excluded.
//
// Also doubles as the SRead/SWrite-overhead ablation: the PIT row is printed
// with and without the gather overhead to show the transformation is cheap.
#include "bench_util.h"
#include "pit/baselines/engines.h"
#include "pit/core/kernel_selection.h"

using namespace pit;

int main() {
  bench::PrintHeader("Figure 16 — effectiveness of PIT transformation (V100, fp32)",
                     "4096^3 matmul, static sparsity, conversion excluded");
  CostModel model(V100());
  TileDatabase db = TileDatabase::BuildDefault(model);
  const int64_t kDim = 4096;
  auto engines = MakeAllEngines();

  struct Gran {
    const char* name;
    int64_t gm, gn;
  };
  for (const Gran& g : {Gran{"32x1", 32, 1}, Gran{"1x64", 1, 64}, Gran{"32x64", 32, 64}}) {
    std::printf("\n--- sparsity granularity %s ---\n", g.name);
    bench::Table table({"sparsity", "engine", "latency(ms)", "waste"});
    for (double sparsity : {0.50, 0.90, 0.95, 0.99}) {
      AnalyticPattern pattern(kDim, kDim, g.gm, g.gn, sparsity);
      for (const auto& engine : engines) {
        const EnginePrice p = engine->Price(model, pattern, kDim, kDim, kDim, false);
        table.Row({bench::FmtPct(sparsity), engine->name(), bench::FmtMs(p.cost.Total()),
                   bench::FmtPct(p.wasted_fraction)});
      }
      // Ablation: PIT without SRead/SWrite overhead = the raw dense tile.
      SelectionOptions opts;
      opts.plan.include_index_build = false;
      opts.plan.sread_overhead = 0.0;
      SelectionResult no_overhead = SelectKernel(model, db, {&pattern}, kDim, kDim, kDim, opts);
      table.Row({bench::FmtPct(sparsity), "PIT(no-SRead-ovh)",
                 bench::FmtMs(no_overhead.best.cost.Total()), "-"});
    }
  }
  std::printf("\nExpected shape: at 32x1 PIT is several-fold faster than Sputnik/SparTA and\n"
              "an order of magnitude over OpenAI Block Sparse (32x32 waste); at 32x64 PIT,\n"
              "SparTA and OpenAI-BS converge (same dense tile); the no-overhead ablation\n"
              "shows SRead/SWrite costs only a few percent.\n");
  return 0;
}
