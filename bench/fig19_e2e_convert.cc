// Figure 19: end-to-end conversion overhead of PIT vs PyTorch-S on BERT over
// the GLUE tasks, with PyTorch and TVM (Ansor-tuned dense) for reference.
// The paper's claim: PIT's index construction is 0.7-1.1% of e2e latency.
#include "bench_util.h"
#include "pit/runtime/models.h"
#include "pit/workloads/seq_len.h"

using namespace pit;

int main() {
  bench::PrintHeader("Figure 19 — e2e conversion overhead on BERT/GLUE (V100, fp32, batch 32)",
                     "PIT Convert = unordered index build; PyTorch-S Convert = format conversion");
  CostModel model(V100());
  const TransformerDims dims = BertBase();
  bench::Table table(
      {"dataset", "engine", "latency(ms)", "convert(ms)", "convert-share"});
  for (const char* dataset : {"mnli", "mrpc", "cola", "rte", "qqp", "sst2", "wnli", "qnli",
                              "stsb"}) {
    Rng rng(5);
    auto lens = SampleBatchLens(DatasetSeqLens(dataset), 32, rng);
    for (Engine e : {Engine::kPyTorch, Engine::kTvm, Engine::kPyTorchS, Engine::kPit}) {
      ModelRunCost run = TransformerRun(model, e, dims, lens);
      const double convert = run.cost.convert_us + run.cost.index_us;
      table.Row({dataset, EngineName(e), bench::FmtMs(run.cost.Total()), bench::FmtMs(convert),
                 bench::FmtPct(convert / run.cost.Total())});
    }
  }
  std::printf("\nExpected shape: PIT's convert share stays ~1%% of e2e latency on every GLUE\n"
              "task while PyTorch-S pays an order of magnitude more; TVM's tuned dense\n"
              "kernels sit slightly below PyTorch but above PIT.\n");
  return 0;
}
