// Figure 12: Longformer inference latency and memory on V100, base/large
// backbones, sequence lengths 2k/4k, dynamic sparse attention (window +
// input-dependent global tokens).
#include "bench_util.h"
#include "pit/runtime/models.h"
#include "pit/workloads/attention_masks.h"

using namespace pit;

int main() {
  bench::PrintHeader("Figure 12 — Longformer (V100, fp32, batch 1)",
                     "window+global dynamic sparse attention; 2k/4k sequence lengths");
  CostModel model(V100());
  bench::Table table({"config", "engine", "latency(ms)", "memory(GB)", "oom"});
  struct Cfg {
    const char* name;
    TransformerDims dims;
    int64_t seq_len;
  };
  const Cfg cfgs[] = {{"base-2k", LongformerBase(), 2048},
                      {"large-2k", LongformerLarge(), 2048},
                      {"base-4k", LongformerBase(), 4096},
                      {"large-4k", LongformerLarge(), 4096}};
  for (const Cfg& cfg : cfgs) {
    LongformerMaskConfig mask{cfg.seq_len, 256, 16};
    SparseAttentionRunConfig run_config;
    run_config.seq_len = cfg.seq_len;
    run_config.batch = 1;
    run_config.mask_density = LongformerMaskDensity(mask);
    // 32x32-block coverage of a banded+global mask: the band rounds up to 32
    // and every global token drags in full block rows/columns.
    LongformerMaskConfig block_mask{cfg.seq_len, ((256 + 31) / 32 + 1) * 32, 16};
    run_config.block32_density = LongformerMaskDensity(block_mask) * 1.6;
    for (Engine e : {Engine::kPyTorch, Engine::kPyTorchS, Engine::kLongformerS,
                     Engine::kDeepSpeed, Engine::kPit}) {
      ModelRunCost run = SparseAttentionRun(model, e, cfg.dims, run_config);
      table.Row({cfg.name, EngineName(e), bench::FmtMs(run.cost.Total()),
                 bench::Fmt(run.MemoryGb(), "%.2f"), run.oom ? "OOM" : ""});
    }
  }
  std::printf("\nExpected shape: PIT fastest (paper: up to 1.9x over PyTorch, 1.8x over\n"
              "Longformer-S, 2.4x over PyTorch-S/DeepSpeed); Longformer-S beats the generic\n"
              "block-sparse backends but pays rearrangement overheads; PIT memory lowest.\n");
  return 0;
}
