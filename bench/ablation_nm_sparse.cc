// Ablation (paper §6 future work): augmenting NVIDIA's Sparse Tensor Core
// with PIT. The hardware's strict 2-in-4 pattern cannot skip all-zero 1x4
// tiles and rejects tensors containing denser tiles; PIT's micro-tile routing
// feeds each tile kind to its best engine. Sweep the all-zero fraction at a
// fixed conforming fraction and compare the three strategies.
#include "bench_util.h"
#include "pit/core/nm_sparse.h"

using namespace pit;

int main() {
  bench::PrintHeader("Ablation — PIT-augmented Sparse Tensor Core (fp16, 4096^3)",
                     "mixed 1x4 tiles: all-zero / 2:4-conforming / dense");
  CostModel model(V100(), Precision::kFp16);
  Rng rng(99);
  bench::Table table({"all-zero", "conforming", "dense", "denseTC(ms)", "strict2:4(ms)",
                      "PIT(ms)", "PIT-vs-best"});
  for (double all_zero : {0.0, 0.2, 0.4, 0.6, 0.8}) {
    const double conforming = std::min(0.9, 1.0 - all_zero) - 0.1;  // keep 10% dense tiles
    Tensor sample = MakeNmMixedTensor(512, 512, all_zero, conforming, rng);
    NmTileStats stats = AnalyzeNmPattern(sample);
    NmCostComparison cmp = CompareNmStrategies(model, stats, 4096, 4096, 4096);
    const double best_baseline = std::min(cmp.dense_tc_us, cmp.strict_24_us);
    table.Row({bench::FmtPct(stats.AllZeroFraction()), bench::FmtPct(stats.ConformingFraction()),
               bench::FmtPct(stats.DenseFraction()), bench::FmtMs(cmp.dense_tc_us),
               bench::FmtMs(cmp.strict_24_us) + (cmp.strict_24_feasible ? "" : " (infeasible)"),
               bench::FmtMs(cmp.pit_augmented_us),
               bench::Fmt(best_baseline / cmp.pit_augmented_us, "%.2fx")});
  }
  std::printf("\nExpected shape: with 10%% dense tiles the strict 2:4 path is infeasible\n"
              "(falls back to dense TC); PIT's advantage grows linearly with the all-zero\n"
              "fraction it can skip, while still exploiting mma.sp on conforming tiles.\n");
  return 0;
}
