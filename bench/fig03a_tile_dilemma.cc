// Figure 3a: latency and wasted computation of different tile sizes on a
// sparse matmul with OPT-style element-wise activation sparsity.
//
// Series: 8x8 / 16x16 / 32x32 fixed tiles and PIT, over sparsity
// 90 / 95 / 99 / 99.9 %. Expected shape: 32x32 fastest until ~99.6%, 8x8
// overtakes only at extreme sparsity, PIT below all of them throughout;
// wasted computation grows with tile size.
#include <cmath>

#include "bench_util.h"
#include "pit/core/kernel_selection.h"
#include "pit/sparse/coverage.h"

using namespace pit;

namespace {

double FixedTileLatencyUs(const CostModel& model, int64_t t, const AnalyticPattern& pattern,
                          int64_t dim) {
  // A t x t output tile executes iff its A block has any nonzero.
  const double p = pattern.NonZeroProb(MicroTileShape{t, t});
  const int64_t grid = (dim / t) * (dim / t);
  const int64_t exec = static_cast<int64_t>(std::llround(p * static_cast<double>(grid)));
  return model.SparseMatmul(exec, dim, TileShape{t, 32, t}).Total();
}

}  // namespace

int main() {
  bench::PrintHeader("Figure 3a — tile-size dilemma under dynamic sparsity",
                     "4096x4096x4096 matmul, element-wise sparse A (OPT activations), V100 fp32");
  CostModel model(V100());
  TileDatabase db = TileDatabase::BuildDefault(model);
  const int64_t kDim = 4096;

  bench::Table table({"sparsity", "tile", "latency(ms)", "wasted-compute"});
  for (double sparsity : {0.90, 0.95, 0.99, 0.999}) {
    AnalyticPattern pattern(kDim, kDim, 1, 1, sparsity);
    for (int64_t t : {8, 16, 32}) {
      const double us = FixedTileLatencyUs(model, t, pattern, kDim);
      const double waste = WastedComputationFraction(pattern, MicroTileShape{t, t});
      table.Row({bench::FmtPct(sparsity), std::to_string(t) + "x" + std::to_string(t),
                 bench::FmtMs(us), bench::FmtPct(waste)});
    }
    SelectionResult pit = SelectKernel(model, db, {&pattern}, kDim, kDim, kDim);
    const double pit_waste = pit.best.fallback_dense
                                 ? sparsity
                                 : WastedComputationFraction(pattern, pit.best.rule.micro_tile);
    table.Row({bench::FmtPct(sparsity),
               std::string("PIT") + (pit.best.fallback_dense ? "(dense)" : ""),
               bench::FmtMs(pit.best.cost.Total()), bench::FmtPct(pit_waste)});
  }
  std::printf("\nExpected shape: 32x32 wins among fixed tiles below ~99.6%% sparsity despite the\n"
              "highest waste; 8x8 only wins at 99.9%%; PIT is fastest everywhere (micro-tile\n"
              "coverage with dense-tile execution).\n");
  return 0;
}
