// Ablation (paper §3.2 future work): multi-axis PIT rules. For BatchMatMul
// with a broadcast B (the MoE / ragged-batch case), permuting jointly over
// (b, m) lets one kernel pack live rows from every batch slice into shared
// dense tiles; single-axis rules must run each batch separately and pay wave
// quantization + per-launch overhead on small slices.
#include <cmath>

#include "bench_util.h"
#include "pit/gpusim/cost_model.h"

using namespace pit;

int main() {
  bench::PrintHeader("Ablation — multi-axis (b,m) PIT rule vs per-batch single-axis",
                     "BatchMatMul, broadcast B [1024,1024], 64 batch slices, ragged live rows");
  CostModel model(V100());
  const TileShape tile{64, 64, 64};
  const double tile_cost = model.MatmulTileCost(tile);
  const int64_t k_tiles = 1024 / 64, n_tiles = 1024 / 64;
  const int64_t batches = 64;

  bench::Table table({"live-rows/slice", "per-batch(ms)", "multi-axis(ms)", "speedup"});
  for (int64_t live : {4, 8, 16, 32, 64, 128}) {
    // Single-axis: each batch gathers its own rows -> ceil(live/tile.m) row
    // tiles, its own kernel launch, its own (often fractional) wave.
    const int64_t row_tiles = (live + tile.m - 1) / tile.m;
    double per_batch = 0.0;
    for (int64_t b = 0; b < batches; ++b) {
      per_batch += model.WaveLatency(row_tiles * k_tiles * n_tiles, tile_cost) +
                   model.device().launch_overhead_us;
    }
    // Multi-axis: all live rows flattened -> one launch, dense waves.
    const int64_t all_rows = live * batches;
    const int64_t all_tiles = (all_rows + tile.m - 1) / tile.m * k_tiles * n_tiles;
    const double multi =
        model.WaveLatency(all_tiles, tile_cost) + model.device().launch_overhead_us;
    table.Row({std::to_string(live), bench::FmtMs(per_batch), bench::FmtMs(multi),
               bench::Fmt(per_batch / multi, "%.2fx")});
  }
  std::printf("\nExpected shape: the multi-axis rule wins big when slices are small relative\n"
              "to the tile (launch + quantization dominate) and converges to parity once\n"
              "each slice fills its own tiles/waves.\n");
  return 0;
}
