// Figure 3b: sparse-format conversion overhead vs computation for
// cuSPARSE / Sputnik / SparTA against dense cuBLAS, under dynamic sparsity.
//
// Expected shape: SparTA's per-pattern compile is seconds-scale (off the
// chart); cuSPARSE/Sputnik conversion rivals or exceeds their computation,
// making them worse than dense execution until sparsity is extreme.
#include "bench_util.h"
#include "pit/baselines/engines.h"

using namespace pit;

int main() {
  bench::PrintHeader("Figure 3b — conversion overheads of sparse libraries",
                     "4096^3 matmul, element-wise sparsity 70/90/99%, V100 fp32, dynamic pattern");
  CostModel model(V100());
  const int64_t kDim = 4096;

  DenseEngine dense;
  CusparseEngine cusparse;
  SputnikEngine sputnik;
  SpartaEngine sparta;

  bench::Table table({"sparsity", "engine", "compute(ms)", "convert(ms)", "total(ms)"});
  for (double sparsity : {0.70, 0.90, 0.99}) {
    AnalyticPattern pattern(kDim, kDim, 1, 1, sparsity);
    const EnginePrice d = dense.Price(model, pattern, kDim, kDim, kDim, true);
    table.Row({bench::FmtPct(sparsity), "cuBLAS(dense)", bench::FmtMs(d.cost.compute_us), "0",
               bench::FmtMs(d.cost.Total())});
    for (SparseMatmulEngine* engine :
         std::initializer_list<SparseMatmulEngine*>{&cusparse, &sputnik}) {
      const EnginePrice p = engine->Price(model, pattern, kDim, kDim, kDim, true);
      table.Row({bench::FmtPct(sparsity), engine->name(), bench::FmtMs(p.cost.compute_us),
                 bench::FmtMs(p.cost.convert_us + p.cost.index_us), bench::FmtMs(p.cost.Total())});
    }
    const EnginePrice sp = sparta.Price(model, pattern, kDim, kDim, kDim, true);
    table.Row({bench::FmtPct(sparsity), "SparTA(AOT)", bench::FmtMs(sp.cost.compute_us),
               bench::Fmt(sp.aot_compile_us / 1e6, "%.0fs") + " compile",
               bench::FmtMs(sp.cost.Total())});
  }
  std::printf("\nExpected shape: conversion costs make cuSPARSE/Sputnik lose to dense execution\n"
              "at 70-90%% sparsity; SparTA's 400-600s compile is impossible online.\n");
  return 0;
}
