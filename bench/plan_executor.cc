// Planned-executor benchmark: steady-state latency of compiled
// ExecutionPlans vs. the eager per-call executor, arena-planner memory
// savings, heap allocations per forward, and the two kernel-level satellite
// deltas of this PR (GEMM B-panel packing, Conv2D im2col lowering).
//
// Emits BENCH_pr2.json and exits nonzero if a hard acceptance criterion
// fails: peak arena bytes must undercut the eager sum of temporaries on every
// multi-step graph, and the dense planned path must run with zero heap
// allocations per steady-state forward (single worker).
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>

#include "bench_util.h"
#include "pit/common/backend.h"
#include "pit/common/gemm_microkernel.h"
#include "pit/common/parallel_for.h"
#include "pit/graph/execution_plan.h"
#include "pit/graph/graph.h"
#include "pit/runtime/models.h"
#include "pit/tensor/ops.h"

namespace {
std::atomic<int64_t> g_alloc_count{0};
}  // namespace

// Global counting allocator: every heap allocation in this binary bumps the
// counter, which is how allocs-per-forward is measured exactly.
void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) {
    return p;
  }
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

using namespace pit;

namespace {

// The pre-refactor executor, reproduced as the eager baseline: one fresh
// Tensor per node per call.
Tensor EagerRun(const Graph& g, const std::map<std::string, Tensor>& feeds) {
  std::map<int, Tensor> values;
  for (int id = 0; id < g.size(); ++id) {
    const GraphNode& n = g.node(id);
    switch (n.kind) {
      case OpKind::kInput:
        values.emplace(id, feeds.at(n.name));
        break;
      case OpKind::kWeight:
        values.emplace(id, g.weight(id));
        break;
      case OpKind::kMatmul:
        values.emplace(id, MatMul(values.at(n.inputs[0]), values.at(n.inputs[1])));
        break;
      case OpKind::kMatmulBias:
        values.emplace(id, MatMulBias(values.at(n.inputs[0]), values.at(n.inputs[1]),
                                      values.at(n.inputs[2])));
        break;
      case OpKind::kRelu:
        values.emplace(id, Relu(values.at(n.inputs[0])));
        break;
      case OpKind::kAdd:
        values.emplace(id, Add(values.at(n.inputs[0]), values.at(n.inputs[1])));
        break;
      case OpKind::kMask:
        values.emplace(id, ApplyMask(values.at(n.inputs[0]), values.at(n.inputs[1])));
        break;
      case OpKind::kSoftmax:
        values.emplace(id, Softmax(values.at(n.inputs[0])));
        break;
      default:
        // The transformer-block ops (PR 3) never appear in this bench's
        // graphs; bench_planned_transformer owns their eager baseline.
        PIT_CHECK(false) << "unexpected op kind in bench graph";
    }
  }
  return values.at(g.size() - 1);
}

std::map<std::string, const Tensor*> PtrFeeds(const std::map<std::string, Tensor>& feeds) {
  std::map<std::string, const Tensor*> ptrs;
  for (const auto& [name, tensor] : feeds) {
    ptrs.emplace(name, &tensor);
  }
  return ptrs;
}

// Allocations of one plan.Run in steady state, measured with a single worker
// (multi-worker dispatch pays a few std::function wraps; the kernels and the
// arena themselves allocate nothing either way).
int64_t AllocsPerForward(ExecutionPlan& plan,
                         const std::map<std::string, const Tensor*>& feeds) {
  ScopedNumThreads one(1);
  plan.Run(feeds);  // warm the thread-local kernel scratch
  constexpr int kReps = 10;
  const int64_t before = g_alloc_count.load(std::memory_order_relaxed);
  for (int i = 0; i < kReps; ++i) {
    plan.Run(feeds);
  }
  const int64_t after = g_alloc_count.load(std::memory_order_relaxed);
  return (after - before) / kReps;
}

struct GraphCase {
  std::string name;
  double eager_us = 0.0;
  double planned_us = 0.0;
  // Planned latency swept over PIT_NUM_THREADS (the PR 3 numbers recorded
  // threads: 1 only): ready-to-emit (planned_us_tN, best-of-N us) fields.
  bench::JsonFields planned_by_threads;
  int64_t arena_bytes = 0;
  int64_t sum_temporary_bytes = 0;
  int64_t allocs_per_forward = -1;
  int num_steps = 0;
  int num_inplace = 0;
};

GraphCase MeasureGraph(const std::string& name, const Graph& g,
                       const std::map<std::string, Tensor>& feeds, bool measure_allocs) {
  GraphCase c;
  c.name = name;
  ExecutionPlan& plan = g.Plan();
  const auto ptr_feeds = PtrFeeds(feeds);
  plan.Run(ptr_feeds);  // warm arena + scratch
  c.eager_us = bench::TimeUs([&] { EagerRun(g, feeds); }, 5);
  c.planned_us = bench::TimeUs([&] { plan.Run(ptr_feeds); }, 5);
  bench::SweepPlannedThreads(&c.planned_by_threads, [&] { plan.Run(ptr_feeds); });
  c.arena_bytes = plan.stats().arena_bytes;
  c.sum_temporary_bytes = plan.stats().sum_temporary_bytes;
  c.num_steps = plan.stats().num_steps;
  c.num_inplace = plan.stats().num_inplace;
  if (measure_allocs) {
    c.allocs_per_forward = AllocsPerForward(plan, ptr_feeds);
  }
  return c;
}

Graph BuildAttentionGraph(int64_t tokens, int64_t dv, Rng& rng) {
  Graph g;
  const int scores = g.AddInput("scores", {tokens, tokens});
  const int mask = g.AddInput("mask", {tokens, tokens}, 0.85);
  const int v = g.AddWeight("v", Tensor::Random({tokens, dv}, rng));
  const int masked = g.AddMask("masked", scores, mask);
  const int probs = g.AddSoftmax("probs", masked);
  g.AddMatmul("ctx", probs, v);
  g.PropagateSparsity();
  return g;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_pr2.json";
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0) {
      out_path = argv[i + 1];
    }
  }

  bench::PrintHeader(
      "Planned graph executor — compiled plans vs. eager execution",
      "wall-clock microseconds, best of N; threads = " + std::to_string(NumThreads()));

  Rng rng(1);
  bool ok = true;
  bench::JsonReport report("plan_executor");
  bench::Table table({"case", "eager(ms)", "planned(ms)", "speedup", "arena/KiB",
                      "temps/KiB", "allocs/fwd"});

  std::vector<GraphCase> cases;
  {  // OPT-style FFN block (the paper's activation-sparsity shape).
    Graph g = BuildFfnGraph(256, 256, 1024, rng);
    Rng xr(2);
    std::map<std::string, Tensor> feeds{{"x", Tensor::Random({256, 256}, xr)}};
    cases.push_back(MeasureGraph("ffn_256x256x1024", g, feeds, /*measure_allocs=*/true));
  }
  {  // Masked-attention core: mask -> softmax -> matmul(V).
    Graph g = BuildAttentionGraph(256, 64, rng);
    Rng xr(3);
    Tensor scores = Tensor::Random({256, 256}, xr);
    Tensor mask = Tensor::RandomSparse({256, 256}, 0.85, xr);
    for (int64_t i = 0; i < mask.size(); ++i) {
      mask[i] = mask[i] != 0.0f ? 1.0f : 0.0f;
    }
    std::map<std::string, Tensor> feeds{{"scores", scores}, {"mask", mask}};
    cases.push_back(MeasureGraph("attention_mask_softmax_256", g, feeds, true));
  }

  for (const GraphCase& c : cases) {
    const double speedup = c.planned_us > 0.0 ? c.eager_us / c.planned_us : 0.0;
    table.Row({c.name, bench::FmtMs(c.eager_us), bench::FmtMs(c.planned_us),
               bench::Fmt(speedup, "%.2fx"), bench::Fmt(c.arena_bytes / 1024.0, "%.0f"),
               bench::Fmt(c.sum_temporary_bytes / 1024.0, "%.0f"),
               bench::Fmt(static_cast<double>(c.allocs_per_forward), "%.0f")});
    bench::JsonFields fields{
        {"eager_us", c.eager_us},
        {"planned_us", c.planned_us},
        {"speedup", speedup},
        {"arena_bytes", static_cast<double>(c.arena_bytes)},
        {"sum_temporary_bytes", static_cast<double>(c.sum_temporary_bytes)},
        {"allocs_per_forward", static_cast<double>(c.allocs_per_forward)},
        {"num_steps", static_cast<double>(c.num_steps)},
        {"num_inplace", static_cast<double>(c.num_inplace)},
        {"threads", static_cast<double>(NumThreads())}};
    fields.insert(fields.end(), c.planned_by_threads.begin(), c.planned_by_threads.end());
    report.Add(c.name, fields);
    if (c.arena_bytes >= c.sum_temporary_bytes) {
      std::fprintf(stderr, "FAIL %s: arena %lld B >= sum of temporaries %lld B\n",
                   c.name.c_str(), static_cast<long long>(c.arena_bytes),
                   static_cast<long long>(c.sum_temporary_bytes));
      ok = false;
    }
    if (c.allocs_per_forward != 0) {
      std::fprintf(stderr, "FAIL %s: %lld heap allocations per steady-state forward (want 0)\n",
                   c.name.c_str(), static_cast<long long>(c.allocs_per_forward));
      ok = false;
    }
  }

  {  // Planned residual-FFN trunk (runtime layer) — dense and PIT variants.
    Rng wr(4);
    PlannedFfnStack stack(4, 256, 1024, wr);
    Rng xr(5);
    Tensor x = Tensor::Random({128, 256}, xr);
    stack.Forward(x);  // warm plans
    const double eager_us = bench::TimeUs([&] { stack.ForwardEager(x); }, 5);
    const double planned_us = bench::TimeUs([&] { stack.Forward(x); }, 5);
    PitCompiler compiler(V100());
    stack.ForwardPit(x, compiler);
    const double pit_us = bench::TimeUs([&] { stack.ForwardPit(x, compiler); }, 5);
    const PlanStats stats = stack.StatsFor(128);
    const double speedup = planned_us > 0.0 ? eager_us / planned_us : 0.0;
    table.Row({"ffn_stack_4x128x256", bench::FmtMs(eager_us), bench::FmtMs(planned_us),
               bench::Fmt(speedup, "%.2fx"), bench::Fmt(stats.arena_bytes / 1024.0, "%.0f"),
               bench::Fmt(stats.sum_temporary_bytes / 1024.0, "%.0f"), "-"});
    bench::JsonFields fields{
        {"eager_us", eager_us},
        {"planned_us", planned_us},
        {"speedup", speedup},
        {"pit_planned_us", pit_us},
        {"arena_bytes", static_cast<double>(stats.arena_bytes)},
        {"sum_temporary_bytes", static_cast<double>(stats.sum_temporary_bytes)},
        {"num_inplace", static_cast<double>(stats.num_inplace)},
        {"num_fused", static_cast<double>(stats.num_fused)},
        {"threads", static_cast<double>(NumThreads())}};
    bench::SweepPlannedThreads(&fields, [&] { stack.Forward(x); });
    report.Add("ffn_stack_4x128x256", fields);
    if (stats.arena_bytes >= stats.sum_temporary_bytes) {
      std::fprintf(stderr, "FAIL ffn_stack: arena >= sum of temporaries\n");
      ok = false;
    }
  }

  // Satellite: GEMM B-panel packing, single-core delta. A preallocated
  // output keeps allocator layout out of the measurement. Packing engages
  // once B exceeds ~L2 (2 MiB); 1024^3 is the representative covered size.
  for (const int64_t dim : {int64_t{1024}}) {
    ScopedNumThreads one(1);
    Rng gr(6);
    Tensor a = Tensor::Random({dim, dim}, gr);
    Tensor b = Tensor::Random({dim, dim}, gr);
    Tensor c({dim, dim});
    double packed_us, unpacked_us;
    {
      ScopedGemmPackB pack(true);
      packed_us = bench::TimeUs([&] { MatMulInto(a, b, c); }, 5);
    }
    {
      ScopedGemmPackB pack(false);
      unpacked_us = bench::TimeUs([&] { MatMulInto(a, b, c); }, 5);
    }
    const double delta = packed_us > 0.0 ? unpacked_us / packed_us : 0.0;
    const std::string name = "gemm_pack_b_" + std::to_string(dim) + "_1core";
    table.Row({name, bench::FmtMs(unpacked_us), bench::FmtMs(packed_us),
               bench::Fmt(delta, "%.2fx"), "-", "-", "-"});
    report.Add(name, {{"unpacked_us", unpacked_us},
                      {"packed_us", packed_us},
                      {"packing_speedup", delta}});
  }

  {  // Satellite: Conv2D im2col + GemmF32 vs the naive 6-loop oracle.
    Rng cr(7);
    Tensor input = Tensor::Random({4, 16, 48, 48}, cr);
    Tensor weight = Tensor::Random({32, 16, 3, 3}, cr);
    double naive_us, im2col_us;
    {
      ScopedBackend ref(ComputeBackend::kReference);
      naive_us = bench::TimeUs([&] { Conv2D(input, weight); }, 3);
    }
    {
      ScopedBackend blk(ComputeBackend::kBlocked);
      im2col_us = bench::TimeUs([&] { Conv2D(input, weight); }, 3);
    }
    const double speedup = im2col_us > 0.0 ? naive_us / im2col_us : 0.0;
    table.Row({"conv2d_im2col_4x16x48_f32k3", bench::FmtMs(naive_us), bench::FmtMs(im2col_us),
               bench::Fmt(speedup, "%.2fx"), "-", "-", "-"});
    report.Add("conv2d_im2col_4x16x48_f32k3",
               {{"naive_us", naive_us}, {"im2col_us", im2col_us}, {"speedup", speedup},
                {"threads", static_cast<double>(NumThreads())}});
  }

  if (!report.WriteFile(out_path)) {
    std::fprintf(stderr, "failed to write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("\nwrote %s\n", out_path.c_str());
  if (!ok) {
    std::fprintf(stderr, "\nplan-executor acceptance checks FAILED\n");
    return 1;
  }
  std::printf("plan-executor acceptance checks passed\n");
  return 0;
}
