// Figure 13: Museformer inference latency and memory vs max sequence length
// (1k..32k) on V100; fine+coarse dynamic sparse attention.
#include "bench_util.h"
#include "pit/runtime/models.h"
#include "pit/workloads/attention_masks.h"

using namespace pit;

int main() {
  bench::PrintHeader("Figure 13 — Museformer vs sequence length (V100, fp32, batch 1)",
                     "fine-grained attention on recent bars + coarse summary attention");
  CostModel model(V100());
  const TransformerDims dims = MuseformerDims();
  bench::Table table({"seq-len", "engine", "latency(ms)", "memory(GB)", "oom"});
  for (int64_t seq : {1024, 4096, 7168, 15360, 20480, 24576, 32768}) {
    MuseformerMaskConfig mask;
    mask.seq_len = seq;
    SparseAttentionRunConfig config;
    config.seq_len = seq;
    config.batch = 1;
    config.mask_density = MuseformerMaskDensity(mask);
    config.block32_density = std::min(1.0, config.mask_density * 2.5);
    config.device_memory_bytes = 32ll << 30;
    for (Engine e : {Engine::kPyTorch, Engine::kPyTorchS, Engine::kDeepSpeed, Engine::kPit}) {
      ModelRunCost run = SparseAttentionRun(model, e, dims, config);
      table.Row({std::to_string(seq), EngineName(e), bench::FmtMs(run.cost.Total()),
                 bench::Fmt(run.MemoryGb(), "%.2f"), run.oom ? "OOM" : ""});
    }
  }
  std::printf("\nExpected shape: PIT ~2-2.5x faster than all baselines and the only engine\n"
              "that survives 32k tokens on a 32GB device (baselines OOM as L^2 scores\n"
              "outgrow memory).\n");
  return 0;
}
