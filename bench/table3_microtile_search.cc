// Table 3: micro-tile online search results — for each sparsity granularity
// and ratio of a 4096^3 matmul, the micro-tile and dense kernel Algorithm 1
// selects, the effective sparsity after coverage, and the estimated latency.
// Also reports the measured search wall time (§5.5: 30-100 us on device).
#include "bench_util.h"
#include "pit/core/kernel_selection.h"

using namespace pit;

int main() {
  bench::PrintHeader("Table 3 — micro-tile online search (V100, fp32, 4096^3)",
                     "Algorithm 1 over the tile database x PIT-axes");
  CostModel model(V100());
  TileDatabase db = TileDatabase::BuildDefault(model);
  const int64_t kDim = 4096;

  bench::Table table({"granularity", "sparsity", "micro-tile", "after-cover", "dense-kernel",
                      "latency(ms)", "search(us)"});
  struct Row {
    int64_t gm, gn;
    double sparsity;
  };
  const Row rows[] = {{2, 1, 0.95},  {2, 1, 0.99},  {4, 1, 0.95},  {4, 1, 0.99},
                      {8, 1, 0.95},  {8, 1, 0.99},  {32, 1, 0.95}, {32, 1, 0.99}};
  for (const Row& r : rows) {
    AnalyticPattern pattern(kDim, kDim, r.gm, r.gn, r.sparsity);
    SelectionResult sel = SelectKernel(model, db, {&pattern}, kDim, kDim, kDim);
    const auto& best = sel.best;
    table.Row({"(" + std::to_string(r.gm) + "," + std::to_string(r.gn) + ")",
               bench::FmtPct(r.sparsity),
               best.fallback_dense ? "dense" : best.rule.micro_tile.ToString(),
               bench::FmtPct(best.sparsity_after_cover), best.rule.dense_tile.ToString(),
               bench::FmtMs(best.cost.Total()), bench::Fmt(sel.search_wall_us, "%.1f")});
  }
  std::printf("\nExpected shape (paper Table 3): fine granularities select (m,1) micro-tiles\n"
              "whose m grows with sparsity; (32,1) data is covered exactly (after-cover =\n"
              "input sparsity); latency decreases with sparsity; search completes in\n"
              "microseconds, fast enough for online use.\n");
  return 0;
}
