// Figure 20: how often do dynamic sparsity patterns repeat? Traverses an
// MNLI-like dataset with batch sizes 8 and 32 and tracks the cumulative hit
// ratio of (a) batch sequence-length patterns and (b) ReLU activation masks.
// A near-zero hit ratio invalidates the compile-and-memoize alternative.
#include "bench_util.h"
#include "pit/core/sparsity_detector.h"
#include "pit/workloads/attention_masks.h"
#include "pit/workloads/pattern_repeat.h"
#include "pit/workloads/seq_len.h"

using namespace pit;

int main() {
  bench::PrintHeader("Figure 20 — sparsity-pattern repetition study",
                     "MNLI-like traversal; cumulative hit ratio after N batches");
  const int kCheckpoints[] = {1, 10, 100, 300, 1000};

  std::printf("\n--- varying sequence lengths (bucketed to 4 tokens, as a kernel cache would) ---\n");
  {
    bench::Table table({"batch-size", "batches", "hit-ratio"});
    for (int64_t batch : {8, 32}) {
      Rng rng(77);
      SeqLenDistribution dist = DatasetSeqLens("mnli");
      PatternRepeatTracker tracker;
      int next = 0;
      for (int i = 1; i <= 1000; ++i) {
        // A memoizing compiler would bucket lengths (e.g. to multiples of 4)
        // to maximize its own hit rate; even so the ratio stays tiny.
        auto lens = SampleBatchLens(dist, batch, rng);
        for (auto& l : lens) {
          l = (l + 3) / 4 * 4;
        }
        tracker.Observe(HashSeqLenPattern(lens));
        if (next < 5 && i == kCheckpoints[next]) {
          table.Row({std::to_string(batch), std::to_string(i),
                     bench::Fmt(tracker.HitRatio(), "%.4f")});
          ++next;
        }
      }
    }
  }

  std::printf("\n--- ReLU activation masks (hashed at 1x32 micro-tile coverage) ---\n");
  {
    bench::Table table({"batch-size", "batches", "hit-ratio"});
    for (int64_t batch : {8, 32}) {
      Rng rng(101);
      SparsityDetector detector;
      PatternRepeatTracker tracker;
      int next = 0;
      for (int i = 1; i <= 1000; ++i) {
        // One batch's FFN activation; a kernel cache keys on the micro-tile
        // coverage bitmap (the finest structure the kernel depends on).
        Tensor act = ActivationSparseTensor(batch, 96, 0.99, rng);
        MicroTileIndex index = detector.Detect(act, MicroTileShape{1, 32});
        std::vector<bool> bitmap(static_cast<size_t>(index.TotalMicroTiles()), false);
        for (int64_t off : index.offsets) {
          bitmap[static_cast<size_t>(off)] = true;
        }
        tracker.Observe(HashMaskPattern(bitmap));
        if (next < 5 && i == kCheckpoints[next]) {
          table.Row({std::to_string(batch), std::to_string(i),
                     bench::Fmt(tracker.HitRatio(), "%.4f")});
          ++next;
        }
      }
    }
  }
  std::printf("\nExpected shape: hit ratios stay ~0.4%% (sequence lengths) and ~0.1%% (ReLU)\n"
              "after 1000 batches — kernels memoized per exact pattern are almost never\n"
              "reusable, so sparsity must be handled online (PIT's approach).\n");
  return 0;
}
