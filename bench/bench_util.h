// Shared helpers for the figure-regeneration benchmarks.
//
// Every bench binary prints a self-describing table of the same series the
// paper's figure reports (markdown-ish, machine-grep-able). Values are
// simulated-latency microseconds/milliseconds from the gpusim cost model
// unless a column explicitly says wall-clock.
#ifndef PIT_BENCH_BENCH_UTIL_H_
#define PIT_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "pit/common/parallel_for.h"

namespace pit::bench {

inline void PrintHeader(const std::string& title, const std::string& what) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("%s\n", what.c_str());
  std::printf("================================================================\n");
}

class Table {
 public:
  explicit Table(std::vector<std::string> columns) : columns_(std::move(columns)) {
    for (size_t i = 0; i < columns_.size(); ++i) {
      std::printf("%s%-18s", i ? " | " : "", columns_[i].c_str());
    }
    std::printf("\n");
    for (size_t i = 0; i < columns_.size(); ++i) {
      std::printf("%s------------------", i ? "-+-" : "");
    }
    std::printf("\n");
  }

  void Row(const std::vector<std::string>& cells) {
    for (size_t i = 0; i < cells.size(); ++i) {
      std::printf("%s%-18s", i ? " | " : "", cells[i].c_str());
    }
    std::printf("\n");
  }

 private:
  std::vector<std::string> columns_;
};

inline std::string Fmt(double v, const char* fmt = "%.3f") {
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, v);
  return buf;
}

inline std::string FmtMs(double us) { return Fmt(us / 1000.0, "%.3f"); }
inline std::string FmtPct(double frac) { return Fmt(frac * 100.0, "%.2f%%"); }

// Wall-clock time of `fn`, best of `reps` runs, in microseconds.
template <typename Fn>
double TimeUs(Fn&& fn, int reps = 3) {
  double best = 0.0;
  for (int i = 0; i < reps; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    const double us = std::chrono::duration<double, std::micro>(t1 - t0).count();
    if (i == 0 || us < best) {
      best = us;
    }
  }
  return best;
}

// Real concurrency the pool delivers at `threads` workers, measured with a
// memory-parallel sqrt sweep: CI containers routinely report more hardware
// threads than the cgroup quota actually provides, so parallel-speedup
// assertions must gate on this probe, not on the configured thread count.
// The shared implementation behind bench_backend_speedup's detector assert
// and bench_planned_transformer's wavefront assert.
inline double ParallelProbeSpeedup(int threads) {
  if (threads <= 1) {
    return 1.0;
  }
  std::vector<float> buf(1 << 21);
  auto work = [&] {
    float* p = buf.data();
    ParallelFor(static_cast<int64_t>(buf.size()), 1 << 14, [&](int64_t lo, int64_t hi) {
      for (int64_t i = lo; i < hi; ++i) {
        p[i] = std::sqrt(static_cast<float>(i) + p[i]);
      }
    });
  };
  double multi;
  {
    ScopedNumThreads t(threads);
    multi = TimeUs(work, 3);
  }
  double single;
  {
    ScopedNumThreads one(1);
    single = TimeUs(work, 3);
  }
  return multi > 0.0 ? single / multi : 1.0;
}

// Times `planned` at each swept worker count (warming once per width) and
// appends the planned_us_tN fields every BENCH_*.json case records — one
// helper so every bench sweeps the same thread set with the same naming.
template <typename Fn>
inline void SweepPlannedThreads(std::vector<std::pair<std::string, double>>* fields,
                                Fn&& planned) {
  for (const int t : {1, 4, 8}) {
    ScopedNumThreads threads(t);
    planned();  // warm plans/scratch at this width
    fields->emplace_back("planned_us_t" + std::to_string(t), TimeUs(planned, 5));
  }
}

// Accumulates named records of numeric fields and writes them as a BENCH_*.json
// trajectory file:
//   {"bench": "...", "results": [{"name": "...", "f1": v1, ...}, ...]}
// Values are emitted with %.6g — wall-clock numbers, not simulated time.
class JsonReport {
 public:
  explicit JsonReport(std::string bench_name) : bench_name_(std::move(bench_name)) {}

  void Add(const std::string& name, std::vector<std::pair<std::string, double>> fields) {
    records_.emplace_back(name, std::move(fields));
  }

  bool WriteFile(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      return false;
    }
    std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"results\": [\n", bench_name_.c_str());
    for (size_t i = 0; i < records_.size(); ++i) {
      std::fprintf(f, "    {\"name\": \"%s\"", records_[i].first.c_str());
      for (const auto& [key, value] : records_[i].second) {
        std::fprintf(f, ", \"%s\": %.6g", key.c_str(), value);
      }
      std::fprintf(f, "}%s\n", i + 1 < records_.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    return true;
  }

 private:
  std::string bench_name_;
  std::vector<std::pair<std::string, std::vector<std::pair<std::string, double>>>> records_;
};

}  // namespace pit::bench

#endif  // PIT_BENCH_BENCH_UTIL_H_
