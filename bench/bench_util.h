// Shared helpers for the figure-regeneration benchmarks.
//
// Every bench binary prints a self-describing table of the same series the
// paper's figure reports (markdown-ish, machine-grep-able). Values are
// simulated-latency microseconds/milliseconds from the gpusim cost model
// unless a column explicitly says wall-clock.
#ifndef PIT_BENCH_BENCH_UTIL_H_
#define PIT_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdint>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "pit/common/backend.h"
#include "pit/common/parallel_for.h"

namespace pit::bench {

inline void PrintHeader(const std::string& title, const std::string& what) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("%s\n", what.c_str());
  std::printf("================================================================\n");
}

class Table {
 public:
  explicit Table(std::vector<std::string> columns) : columns_(std::move(columns)) {
    for (size_t i = 0; i < columns_.size(); ++i) {
      std::printf("%s%-18s", i ? " | " : "", columns_[i].c_str());
    }
    std::printf("\n");
    for (size_t i = 0; i < columns_.size(); ++i) {
      std::printf("%s------------------", i ? "-+-" : "");
    }
    std::printf("\n");
  }

  void Row(const std::vector<std::string>& cells) {
    for (size_t i = 0; i < cells.size(); ++i) {
      std::printf("%s%-18s", i ? " | " : "", cells[i].c_str());
    }
    std::printf("\n");
  }

 private:
  std::vector<std::string> columns_;
};

inline std::string Fmt(double v, const char* fmt = "%.3f") {
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, v);
  return buf;
}

inline std::string FmtMs(double us) { return Fmt(us / 1000.0, "%.3f"); }
inline std::string FmtPct(double frac) { return Fmt(frac * 100.0, "%.2f%%"); }

// Wall-clock time of `fn`, best of `reps` runs, in microseconds.
template <typename Fn>
double TimeUs(Fn&& fn, int reps = 3) {
  double best = 0.0;
  for (int i = 0; i < reps; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    const double us = std::chrono::duration<double, std::micro>(t1 - t0).count();
    if (i == 0 || us < best) {
      best = us;
    }
  }
  return best;
}

// Real concurrency the pool delivers at `threads` workers, measured with a
// memory-parallel sqrt sweep: CI containers routinely report more hardware
// threads than the cgroup quota actually provides, so parallel-speedup
// assertions must gate on this probe, not on the configured thread count.
// The shared implementation behind bench_backend_speedup's detector assert
// and bench_planned_transformer's wavefront assert.
inline double ParallelProbeSpeedup(int threads) {
  if (threads <= 1) {
    return 1.0;
  }
  std::vector<float> buf(1 << 21);
  auto work = [&] {
    float* p = buf.data();
    ParallelFor(static_cast<int64_t>(buf.size()), 1 << 14, [&](int64_t lo, int64_t hi) {
      for (int64_t i = lo; i < hi; ++i) {
        p[i] = std::sqrt(static_cast<float>(i) + p[i]);
      }
    });
  };
  double multi;
  {
    ScopedNumThreads t(threads);
    multi = TimeUs(work, 3);
  }
  double single;
  {
    ScopedNumThreads one(1);
    single = TimeUs(work, 3);
  }
  return multi > 0.0 ? single / multi : 1.0;
}

// A typed JSON field value: doubles print with %.6g, integers print as exact
// integers (byte counters like pool_arena_bytes_highwater were previously
// serialized in scientific notation, e.g. 9.66452e+07 — unreadable and lossy
// past 2^24), strings print quoted.
class JsonValue {
 public:
  JsonValue(double v) : kind_(Kind::kDouble), num_(v) {}          // NOLINT(runtime/explicit)
  JsonValue(float v) : kind_(Kind::kDouble), num_(v) {}           // NOLINT(runtime/explicit)
  JsonValue(int64_t v) : kind_(Kind::kInt), int_(v) {}            // NOLINT(runtime/explicit)
  JsonValue(int v) : kind_(Kind::kInt), int_(v) {}                // NOLINT(runtime/explicit)
  JsonValue(std::string v) : kind_(Kind::kString), str_(std::move(v)) {}  // NOLINT
  JsonValue(const char* v) : kind_(Kind::kString), str_(v) {}     // NOLINT(runtime/explicit)

  std::string Serialized() const {
    char buf[64];
    switch (kind_) {
      case Kind::kDouble:
        std::snprintf(buf, sizeof(buf), "%.6g", num_);
        return buf;
      case Kind::kInt:
        std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(int_));
        return buf;
      case Kind::kString:
        return "\"" + str_ + "\"";
    }
    return "null";
  }

 private:
  enum class Kind { kDouble, kInt, kString };
  Kind kind_;
  double num_ = 0.0;
  int64_t int_ = 0;
  std::string str_;
};

using JsonFields = std::vector<std::pair<std::string, JsonValue>>;

// One-shot machine probe shared by every bench: the ISA tier (detected by
// CPUID and selected through PIT_ISA), the *reported* hardware thread count,
// and the concurrency the pool *measurably* delivers at 4 workers. CI boxes
// have reported hardware_threads=1 (disarming every speedup assert) and,
// conversely, report far more threads than the cgroup quota provides — so
// scaling asserts gate on probe4, and SIMD asserts gate on the detected
// tier. Probed once, logged prominently on first use, embedded as "meta" in
// every BENCH_*.json so the perf trajectory is interpretable across machines.
struct MachineProbe {
  std::string isa_detected;
  std::string isa_selected;
  int64_t hardware_threads = 0;  // as reported; may misstate the real quota
  int64_t pool_workers = 0;
  double probe4 = 1.0;  // measured pool speedup at 4 workers
  bool SimdSelected() const { return isa_selected != "scalar"; }
};

inline const MachineProbe& GetMachineProbe() {
  static const MachineProbe probe = [] {
    MachineProbe p;
    p.isa_detected = IsaName(DetectedIsa());
    p.isa_selected = IsaName(ActiveIsa());
    p.hardware_threads = static_cast<int64_t>(std::thread::hardware_concurrency());
    p.pool_workers = NumThreads();
    p.probe4 = ParallelProbeSpeedup(4);
    std::printf(
        "[machine] isa detected=%s selected=%s | hardware_threads=%lld (reported) | "
        "pool_workers=%lld | measured pool speedup@4 = %.2fx%s\n",
        p.isa_detected.c_str(), p.isa_selected.c_str(),
        static_cast<long long>(p.hardware_threads), static_cast<long long>(p.pool_workers),
        p.probe4,
        p.probe4 > 2.0 ? "" : " — parallel-scaling asserts DISARMED (no effective concurrency)");
    return p;
  }();
  return probe;
}

// Times `planned` at each swept worker count (warming once per width) and
// appends the planned_us_tN fields every BENCH_*.json case records — one
// helper so every bench sweeps the same thread set with the same naming.
template <typename Fn>
inline void SweepPlannedThreads(JsonFields* fields, Fn&& planned) {
  for (const int t : {1, 4, 8}) {
    ScopedNumThreads threads(t);
    planned();  // warm plans/scratch at this width
    fields->emplace_back("planned_us_t" + std::to_string(t), TimeUs(planned, 5));
  }
}

// Accumulates named records of typed fields and writes them as a BENCH_*.json
// trajectory file:
//   {"bench": "...", "meta": {...}, "results": [{"name": "...", ...}, ...]}
// The meta block carries the MachineProbe (ISA tiers, hardware threads, pool
// width, measured 4-way speedup) so every report is self-describing.
class JsonReport {
 public:
  explicit JsonReport(std::string bench_name) : bench_name_(std::move(bench_name)) {}

  void Add(const std::string& name, JsonFields fields) {
    records_.emplace_back(name, std::move(fields));
  }

  bool WriteFile(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      return false;
    }
    const MachineProbe& mp = GetMachineProbe();
    std::fprintf(f, "{\n  \"bench\": \"%s\",\n", bench_name_.c_str());
    std::fprintf(f,
                 "  \"meta\": {\"isa_detected\": \"%s\", \"isa_selected\": \"%s\", "
                 "\"hardware_threads\": %lld, \"pool_workers\": %lld, "
                 "\"pool_speedup_at_4\": %.3f},\n",
                 mp.isa_detected.c_str(), mp.isa_selected.c_str(),
                 static_cast<long long>(mp.hardware_threads),
                 static_cast<long long>(mp.pool_workers), mp.probe4);
    std::fprintf(f, "  \"results\": [\n");
    for (size_t i = 0; i < records_.size(); ++i) {
      std::fprintf(f, "    {\"name\": \"%s\"", records_[i].first.c_str());
      for (const auto& [key, value] : records_[i].second) {
        std::fprintf(f, ", \"%s\": %s", key.c_str(), value.Serialized().c_str());
      }
      std::fprintf(f, "}%s\n", i + 1 < records_.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    return true;
  }

 private:
  std::string bench_name_;
  std::vector<std::pair<std::string, JsonFields>> records_;
};

}  // namespace pit::bench

#endif  // PIT_BENCH_BENCH_UTIL_H_
