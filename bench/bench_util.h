// Shared helpers for the figure-regeneration benchmarks.
//
// Every bench binary prints a self-describing table of the same series the
// paper's figure reports (markdown-ish, machine-grep-able). Values are
// simulated-latency microseconds/milliseconds from the gpusim cost model
// unless a column explicitly says wall-clock.
#ifndef PIT_BENCH_BENCH_UTIL_H_
#define PIT_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>
#include <vector>

namespace pit::bench {

inline void PrintHeader(const std::string& title, const std::string& what) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("%s\n", what.c_str());
  std::printf("================================================================\n");
}

class Table {
 public:
  explicit Table(std::vector<std::string> columns) : columns_(std::move(columns)) {
    for (size_t i = 0; i < columns_.size(); ++i) {
      std::printf("%s%-18s", i ? " | " : "", columns_[i].c_str());
    }
    std::printf("\n");
    for (size_t i = 0; i < columns_.size(); ++i) {
      std::printf("%s------------------", i ? "-+-" : "");
    }
    std::printf("\n");
  }

  void Row(const std::vector<std::string>& cells) {
    for (size_t i = 0; i < cells.size(); ++i) {
      std::printf("%s%-18s", i ? " | " : "", cells[i].c_str());
    }
    std::printf("\n");
  }

 private:
  std::vector<std::string> columns_;
};

inline std::string Fmt(double v, const char* fmt = "%.3f") {
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, v);
  return buf;
}

inline std::string FmtMs(double us) { return Fmt(us / 1000.0, "%.3f"); }
inline std::string FmtPct(double frac) { return Fmt(frac * 100.0, "%.2f%%"); }

}  // namespace pit::bench

#endif  // PIT_BENCH_BENCH_UTIL_H_
