// Planned-transformer benchmark: steady-state latency of fully planned
// encoder blocks (layernorm + per-head batched attention + masked softmax +
// FFN compiled into one ExecutionPlan per shape) vs. the eager per-op
// composition, arena-planner memory savings, and heap allocations per
// forward.
//
// Emits BENCH_pr3.json and exits nonzero if a hard acceptance criterion
// fails: the planned forward must be bitwise identical to the eager path,
// peak arena bytes must undercut the eager sum of attention+FFN temporaries,
// and the dense planned path must run with zero heap allocations per
// steady-state forward (single worker).
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>

#include "bench_util.h"
#include "pit/common/parallel_for.h"
#include "pit/graph/execution_plan.h"
#include "pit/nn/modules.h"
#include "pit/runtime/models.h"
#include "pit/tensor/ops.h"

namespace {
std::atomic<int64_t> g_alloc_count{0};
}  // namespace

// Global counting allocator: every heap allocation in this binary bumps the
// counter, which is how allocs-per-forward is measured exactly.
void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) {
    return p;
  }
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

using namespace pit;

namespace {

bool BitwiseEqual(const Tensor& a, const Tensor& b) {
  return a.shape() == b.shape() &&
         std::memcmp(a.data(), b.data(), static_cast<size_t>(a.size()) * sizeof(float)) == 0;
}

// Allocations of one planned dense forward in steady state, measured with a
// single worker (multi-worker dispatch pays a few std::function wraps; the
// kernels and the arena themselves allocate nothing either way). The output
// staging tensor is preallocated: this is the PlannedTransformerStack seam.
int64_t AllocsPerForward(const TransformerEncoderLayer& layer, const Tensor& x,
                         const Tensor* mask, Tensor* out) {
  ScopedNumThreads one(1);
  layer.ForwardInto(x, mask, nullptr, out);  // warm plan + kernel scratch
  constexpr int kReps = 10;
  const int64_t before = g_alloc_count.load(std::memory_order_relaxed);
  for (int i = 0; i < kReps; ++i) {
    layer.ForwardInto(x, mask, nullptr, out);
  }
  const int64_t after = g_alloc_count.load(std::memory_order_relaxed);
  return (after - before) / kReps;
}

Tensor MakeMask(int64_t tokens, double sparsity, Rng& rng) {
  Tensor mask = Tensor::RandomSparse({tokens, tokens}, sparsity, rng);
  for (int64_t i = 0; i < mask.size(); ++i) {
    mask[i] = mask[i] != 0.0f ? 1.0f : 0.0f;
  }
  return mask;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_pr3.json";
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0) {
      out_path = argv[i + 1];
    }
  }

  bench::PrintHeader(
      "Planned transformer blocks — whole-block plans vs. eager composition",
      "wall-clock microseconds, best of N; threads = " + std::to_string(NumThreads()));

  bool ok = true;
  bench::JsonReport report("planned_transformer");
  bench::Table table({"case", "eager(ms)", "planned(ms)", "speedup", "arena/KiB",
                      "temps/KiB", "allocs/fwd"});

  constexpr int64_t kTokens = 128;
  constexpr int64_t kHidden = 256;
  constexpr int64_t kHeads = 8;
  constexpr int64_t kFfn = 1024;

  {  // Single encoder block, unmasked and causally masked.
    Rng wr(1);
    TransformerEncoderLayer layer(kHidden, kHeads, kFfn, wr);
    Rng xr(2);
    Tensor x = Tensor::Random({kTokens, kHidden}, xr);
    Tensor mask = MakeMask(kTokens, 0.5, xr);
    Tensor staged(Shape{kTokens, kHidden});

    struct Case {
      const char* name;
      const Tensor* mask;
    } cases[] = {{"encoder_layer_128x256", nullptr}, {"encoder_layer_masked_128x256", &mask}};
    for (const Case& c : cases) {
      Tensor eager = layer.ForwardEager(x, c.mask);
      Tensor planned = layer.Forward(x, c.mask);
      if (!BitwiseEqual(planned, eager)) {
        std::fprintf(stderr, "FAIL %s: planned forward is not bitwise equal to eager\n", c.name);
        ok = false;
      }
      const double eager_us = bench::TimeUs([&] { layer.ForwardEager(x, c.mask); }, 5);
      const double planned_us =
          bench::TimeUs([&] { layer.ForwardInto(x, c.mask, nullptr, &staged); }, 5);
      const int64_t allocs = AllocsPerForward(layer, x, c.mask, &staged);
      const PlanStats stats = layer.PlanStatsFor(kTokens, c.mask != nullptr);
      const double speedup = planned_us > 0.0 ? eager_us / planned_us : 0.0;
      table.Row({c.name, bench::FmtMs(eager_us), bench::FmtMs(planned_us),
                 bench::Fmt(speedup, "%.2fx"), bench::Fmt(stats.arena_bytes / 1024.0, "%.0f"),
                 bench::Fmt(stats.sum_temporary_bytes / 1024.0, "%.0f"),
                 bench::Fmt(static_cast<double>(allocs), "%.0f")});
      report.Add(c.name,
                 {{"eager_us", eager_us},
                  {"planned_us", planned_us},
                  {"speedup", speedup},
                  {"arena_bytes", static_cast<double>(stats.arena_bytes)},
                  {"sum_temporary_bytes", static_cast<double>(stats.sum_temporary_bytes)},
                  {"allocs_per_forward", static_cast<double>(allocs)},
                  {"num_steps", static_cast<double>(stats.num_steps)},
                  {"num_inplace", static_cast<double>(stats.num_inplace)},
                  {"bitwise_equal_eager", BitwiseEqual(planned, eager) ? 1.0 : 0.0},
                  {"threads", static_cast<double>(NumThreads())}});
      if (stats.arena_bytes >= stats.sum_temporary_bytes) {
        std::fprintf(stderr, "FAIL %s: arena %lld B >= sum of temporaries %lld B\n", c.name,
                     static_cast<long long>(stats.arena_bytes),
                     static_cast<long long>(stats.sum_temporary_bytes));
        ok = false;
      }
      if (allocs != 0) {
        std::fprintf(stderr, "FAIL %s: %lld heap allocations per steady-state forward (want 0)\n",
                     c.name, static_cast<long long>(allocs));
        ok = false;
      }
    }
  }

  {  // Full encoder stack (the serving trunk), dense and PIT variants.
    Rng wr(3);
    PlannedTransformerStack stack(2, kHidden, kHeads, kFfn, wr);
    Rng xr(4);
    Tensor x = Tensor::Random({kTokens, kHidden}, xr);
    Tensor eager = stack.ForwardEager(x);
    Tensor planned = stack.Forward(x);  // warm plans
    if (!BitwiseEqual(planned, eager)) {
      std::fprintf(stderr, "FAIL transformer_stack: planned != eager (bitwise)\n");
      ok = false;
    }
    const double eager_us = bench::TimeUs([&] { stack.ForwardEager(x); }, 5);
    const double planned_us = bench::TimeUs([&] { stack.Forward(x); }, 5);
    PitCompiler compiler(V100());
    stack.ForwardPit(x, compiler);
    const double pit_us = bench::TimeUs([&] { stack.ForwardPit(x, compiler); }, 5);
    const PlanStats stats = stack.StatsFor(kTokens);
    const double speedup = planned_us > 0.0 ? eager_us / planned_us : 0.0;
    table.Row({"transformer_stack_2x128x256", bench::FmtMs(eager_us), bench::FmtMs(planned_us),
               bench::Fmt(speedup, "%.2fx"), bench::Fmt(stats.arena_bytes / 1024.0, "%.0f"),
               bench::Fmt(stats.sum_temporary_bytes / 1024.0, "%.0f"), "-"});
    report.Add("transformer_stack_2x128x256",
               {{"eager_us", eager_us},
                {"planned_us", planned_us},
                {"speedup", speedup},
                {"pit_planned_us", pit_us},
                {"arena_bytes", static_cast<double>(stats.arena_bytes)},
                {"sum_temporary_bytes", static_cast<double>(stats.sum_temporary_bytes)},
                {"num_pit_steps", static_cast<double>(stats.num_pit_steps)},
                {"num_inplace", static_cast<double>(stats.num_inplace)},
                {"bitwise_equal_eager", BitwiseEqual(planned, eager) ? 1.0 : 0.0},
                {"threads", static_cast<double>(NumThreads())}});
    if (stats.arena_bytes >= stats.sum_temporary_bytes) {
      std::fprintf(stderr, "FAIL transformer_stack: arena >= sum of temporaries\n");
      ok = false;
    }
  }

  if (!report.WriteFile(out_path)) {
    std::fprintf(stderr, "failed to write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("\nwrote %s\n", out_path.c_str());
  if (!ok) {
    std::fprintf(stderr, "\nplanned-transformer acceptance checks FAILED\n");
    return 1;
  }
  std::printf("planned-transformer acceptance checks passed\n");
  return 0;
}
