// Planned-transformer benchmark: steady-state latency of fully planned
// encoder blocks (layernorm + per-head batched attention + masked softmax +
// FFN compiled into one ExecutionPlan per shape) vs. the eager per-op
// composition, arena-planner memory savings, and heap allocations per
// forward — swept over PIT_NUM_THREADS in {1, 4, 8} and both replay
// schedulers (PIT_PLAN_SCHED seq vs wavefront).
//
// Emits BENCH_pr3.json (per-case latencies at every swept thread count) and
// BENCH_pr4.json (seq-vs-wavefront speedups plus the tall-GEMM A-packing
// delta) and exits nonzero if a hard acceptance criterion fails: the planned
// forward must be bitwise identical to the eager path under every scheduler
// and thread count, peak arena bytes must undercut the eager sum of
// attention+FFN temporaries, the dense planned path must run with zero heap
// allocations per steady-state forward (single worker), the compile-time
// wavefront profitability gate must fall back to seq on the small-step
// encoder plan (where BENCH_pr4 measured wavefront@8 at 0.92x vs seq@1)
// while keeping large-step plans wavefront, and — wherever the pool has >= 8
// effective workers (parallel probe) — the gated-in wavefront schedule at 8
// threads must beat single-thread sequential replay by >= 1.2x.
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <map>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "pit/common/backend.h"
#include "pit/common/gemm_microkernel.h"
#include "pit/common/parallel_for.h"
#include "pit/graph/execution_plan.h"
#include "pit/nn/modules.h"
#include "pit/runtime/models.h"
#include "pit/tensor/ops.h"

namespace {
std::atomic<int64_t> g_alloc_count{0};
}  // namespace

// Global counting allocator: every heap allocation in this binary bumps the
// counter, which is how allocs-per-forward is measured exactly.
void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) {
    return p;
  }
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

using namespace pit;

namespace {

bool BitwiseEqual(const Tensor& a, const Tensor& b) {
  return a.shape() == b.shape() &&
         std::memcmp(a.data(), b.data(), static_cast<size_t>(a.size()) * sizeof(float)) == 0;
}

// Allocations of one planned dense forward in steady state, measured with a
// single worker (multi-worker dispatch pays a few std::function wraps; the
// kernels and the arena themselves allocate nothing either way). The output
// staging tensor is preallocated: this is the PlannedTransformerStack seam.
int64_t AllocsPerForward(const TransformerEncoderLayer& layer, const Tensor& x,
                         const Tensor* mask, Tensor* out) {
  ScopedNumThreads one(1);
  layer.ForwardInto(x, mask, nullptr, out);  // warm plan + kernel scratch
  constexpr int kReps = 10;
  const int64_t before = g_alloc_count.load(std::memory_order_relaxed);
  for (int i = 0; i < kReps; ++i) {
    layer.ForwardInto(x, mask, nullptr, out);
  }
  const int64_t after = g_alloc_count.load(std::memory_order_relaxed);
  return (after - before) / kReps;
}

Tensor MakeMask(int64_t tokens, double sparsity, Rng& rng) {
  Tensor mask = Tensor::RandomSparse({tokens, tokens}, sparsity, rng);
  for (int64_t i = 0; i < mask.size(); ++i) {
    mask[i] = mask[i] != 0.0f ? 1.0f : 0.0f;
  }
  return mask;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_pr3.json";
  std::string out4_path = "BENCH_pr4.json";
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0) {
      out_path = argv[i + 1];
    }
    if (std::strcmp(argv[i], "--out4") == 0) {
      out4_path = argv[i + 1];
    }
  }

  bench::PrintHeader(
      "Planned transformer blocks — whole-block plans vs. eager composition",
      "wall-clock microseconds, best of N; threads = " + std::to_string(NumThreads()));

  bool ok = true;
  bench::JsonReport report("planned_transformer");
  bench::Table table({"case", "eager(ms)", "planned(ms)", "speedup", "arena/KiB",
                      "temps/KiB", "allocs/fwd"});

  constexpr int64_t kTokens = 128;
  constexpr int64_t kHidden = 256;
  constexpr int64_t kHeads = 8;
  constexpr int64_t kFfn = 1024;

  {  // Single encoder block, unmasked and causally masked.
    Rng wr(1);
    TransformerEncoderLayer layer(kHidden, kHeads, kFfn, wr);
    Rng xr(2);
    Tensor x = Tensor::Random({kTokens, kHidden}, xr);
    Tensor mask = MakeMask(kTokens, 0.5, xr);
    Tensor staged(Shape{kTokens, kHidden});

    struct Case {
      const char* name;
      const Tensor* mask;
    } cases[] = {{"encoder_layer_128x256", nullptr}, {"encoder_layer_masked_128x256", &mask}};
    for (const Case& c : cases) {
      Tensor eager = layer.ForwardEager(x, c.mask);
      Tensor planned = layer.Forward(x, c.mask);
      if (!BitwiseEqual(planned, eager)) {
        std::fprintf(stderr, "FAIL %s: planned forward is not bitwise equal to eager\n", c.name);
        ok = false;
      }
      const double eager_us = bench::TimeUs([&] { layer.ForwardEager(x, c.mask); }, 5);
      const double planned_us =
          bench::TimeUs([&] { layer.ForwardInto(x, c.mask, nullptr, &staged); }, 5);
      const int64_t allocs = AllocsPerForward(layer, x, c.mask, &staged);
      const PlanStats stats = layer.PlanStatsFor(kTokens, c.mask != nullptr);
      const double speedup = planned_us > 0.0 ? eager_us / planned_us : 0.0;
      table.Row({c.name, bench::FmtMs(eager_us), bench::FmtMs(planned_us),
                 bench::Fmt(speedup, "%.2fx"), bench::Fmt(stats.arena_bytes / 1024.0, "%.0f"),
                 bench::Fmt(stats.sum_temporary_bytes / 1024.0, "%.0f"),
                 bench::Fmt(static_cast<double>(allocs), "%.0f")});
      bench::JsonFields fields{
          {"eager_us", eager_us},
          {"planned_us", planned_us},
          {"speedup", speedup},
          {"arena_bytes", static_cast<double>(stats.arena_bytes)},
          {"sum_temporary_bytes", static_cast<double>(stats.sum_temporary_bytes)},
          {"allocs_per_forward", static_cast<double>(allocs)},
          {"num_steps", static_cast<double>(stats.num_steps)},
          {"num_inplace", static_cast<double>(stats.num_inplace)},
          {"num_fused", static_cast<double>(stats.num_fused)},
          {"bitwise_equal_eager", BitwiseEqual(planned, eager) ? 1.0 : 0.0},
          {"threads", static_cast<double>(NumThreads())}};
      // Thread sweep (the PR 3 numbers recorded threads: 1 only): planned
      // latency at 1/4/8 workers under the active scheduler.
      bench::SweepPlannedThreads(&fields,
                                 [&] { layer.ForwardInto(x, c.mask, nullptr, &staged); });
      report.Add(c.name, fields);
      if (stats.arena_bytes >= stats.sum_temporary_bytes) {
        std::fprintf(stderr, "FAIL %s: arena %lld B >= sum of temporaries %lld B\n", c.name,
                     static_cast<long long>(stats.arena_bytes),
                     static_cast<long long>(stats.sum_temporary_bytes));
        ok = false;
      }
      if (allocs != 0) {
        std::fprintf(stderr, "FAIL %s: %lld heap allocations per steady-state forward (want 0)\n",
                     c.name, static_cast<long long>(allocs));
        ok = false;
      }
    }
  }

  {  // Full encoder stack (the serving trunk), dense and PIT variants.
    Rng wr(3);
    PlannedTransformerStack stack(2, kHidden, kHeads, kFfn, wr);
    Rng xr(4);
    Tensor x = Tensor::Random({kTokens, kHidden}, xr);
    Tensor eager = stack.ForwardEager(x);
    Tensor planned = stack.Forward(x);  // warm plans
    if (!BitwiseEqual(planned, eager)) {
      std::fprintf(stderr, "FAIL transformer_stack: planned != eager (bitwise)\n");
      ok = false;
    }
    const double eager_us = bench::TimeUs([&] { stack.ForwardEager(x); }, 5);
    const double planned_us = bench::TimeUs([&] { stack.Forward(x); }, 5);
    PitCompiler compiler(V100());
    stack.ForwardPit(x, compiler);
    const double pit_us = bench::TimeUs([&] { stack.ForwardPit(x, compiler); }, 5);
    const PlanStats stats = stack.StatsFor(kTokens);
    const double speedup = planned_us > 0.0 ? eager_us / planned_us : 0.0;
    table.Row({"transformer_stack_2x128x256", bench::FmtMs(eager_us), bench::FmtMs(planned_us),
               bench::Fmt(speedup, "%.2fx"), bench::Fmt(stats.arena_bytes / 1024.0, "%.0f"),
               bench::Fmt(stats.sum_temporary_bytes / 1024.0, "%.0f"), "-"});
    bench::JsonFields fields{
        {"eager_us", eager_us},
        {"planned_us", planned_us},
        {"speedup", speedup},
        {"pit_planned_us", pit_us},
        {"arena_bytes", static_cast<double>(stats.arena_bytes)},
        {"sum_temporary_bytes", static_cast<double>(stats.sum_temporary_bytes)},
        {"num_pit_steps", static_cast<double>(stats.num_pit_steps)},
        {"num_inplace", static_cast<double>(stats.num_inplace)},
        {"num_fused", static_cast<double>(stats.num_fused)},
        {"bitwise_equal_eager", BitwiseEqual(planned, eager) ? 1.0 : 0.0},
        {"threads", static_cast<double>(NumThreads())}};
    Tensor staged(Shape{kTokens, kHidden});
    bench::SweepPlannedThreads(&fields,
                               [&] { stack.ForwardInto(x, nullptr, nullptr, &staged); });
    report.Add("transformer_stack_2x128x256", fields);
    if (stats.arena_bytes >= stats.sum_temporary_bytes) {
      std::fprintf(stderr, "FAIL transformer_stack: arena >= sum of temporaries\n");
      ok = false;
    }
  }

  // ---- PR 4: wavefront scheduler — seq-vs-wavefront sweep + GEMM A-packing.
  bench::JsonReport report4("wavefront_scheduler");
  bench::PrintHeader("Wavefront plan scheduler — seq vs. wavefront replay",
                     "wall-clock microseconds, best of N; sweep over threads x scheduler");
  {
    Rng wr(5);
    TransformerEncoderLayer layer(kHidden, kHeads, kFfn, wr);
    Rng xr(6);
    Tensor x = Tensor::Random({kTokens, kHidden}, xr);
    Tensor staged(Shape{kTokens, kHidden});
    Tensor eager = layer.ForwardEager(x);

    // Baseline: sequential replay on one worker — the PR 3 configuration.
    double seq1_us = 0.0;
    {
      ScopedPlanSched sched(PlanSched::kSequential);
      ScopedNumThreads one(1);
      layer.ForwardInto(x, nullptr, nullptr, &staged);
      seq1_us = bench::TimeUs([&] { layer.ForwardInto(x, nullptr, nullptr, &staged); }, 5);
    }

    bench::Table wtable({"case", "sched", "threads", "planned(ms)", "vs seq@1"});
    double wavefront8_us = 0.0;
    for (const PlanSched sched : {PlanSched::kSequential, PlanSched::kWavefront}) {
      const char* sched_name = sched == PlanSched::kWavefront ? "wavefront" : "seq";
      for (const int t : {1, 4, 8}) {
        ScopedPlanSched sched_guard(sched);
        ScopedNumThreads threads(t);
        if (!BitwiseEqual(layer.Forward(x), eager)) {
          std::fprintf(stderr, "FAIL encoder_layer %s@%d: not bitwise equal to eager\n",
                       sched_name, t);
          ok = false;
        }
        layer.ForwardInto(x, nullptr, nullptr, &staged);
        const double us = bench::TimeUs([&] { layer.ForwardInto(x, nullptr, nullptr, &staged); }, 5);
        const double vs_seq1 = us > 0.0 ? seq1_us / us : 0.0;
        if (sched == PlanSched::kWavefront && t == 8) {
          wavefront8_us = us;
        }
        wtable.Row({"encoder_layer_128x256", sched_name, std::to_string(t), bench::FmtMs(us),
                    bench::Fmt(vs_seq1, "%.2fx")});
        report4.Add(std::string("encoder_layer_128x256_") + sched_name + "_t" + std::to_string(t),
                    {{"planned_us", us},
                     {"seq1_us", seq1_us},
                     {"speedup_vs_seq1", vs_seq1},
                     {"wavefront", sched == PlanSched::kWavefront ? 1.0 : 0.0},
                     {"threads", static_cast<double>(t)}});
      }
    }

    const PlanStats stats = layer.PlanStatsFor(kTokens);
    report4.Add("encoder_layer_128x256_plan_shape",
                {{"num_steps", static_cast<double>(stats.num_steps)},
                 {"num_wavefronts", static_cast<double>(stats.num_wavefronts)},
                 {"max_wavefront_width", static_cast<double>(stats.max_wavefront_width)},
                 {"num_fused", static_cast<double>(stats.num_fused)},
                 {"parallel_step_work", stats.parallel_step_work},
                 {"wavefront_profitable", stats.wavefront_profitable ? 1.0 : 0.0}});

    // PR 5 gate acceptance, part 1: the BENCH_pr4 regression (wavefront@8 at
    // 0.92x vs seq@1 on this very shape) means the compile-time profitability
    // check MUST mark this plan unprofitable — its gated default replay is
    // then the sequential schedule, and wavefront@8 can no longer lose to it
    // by more than measurement noise (same code path).
    if (stats.wavefront_profitable) {
      std::fprintf(stderr,
                   "FAIL encoder_layer_128x256: wavefront gate engaged (parallel step work "
                   "%.3g flops) but BENCH_pr4 measured wavefront replay losing at this size\n",
                   stats.parallel_step_work);
      ok = false;
    } else {
      std::printf("encoder_layer_128x256 gate: seq fallback (parallel step work %.3g flops) — "
                  "OK\n",
                  stats.parallel_step_work);
    }
    const double wavefront8_vs_seq1 = wavefront8_us > 0.0 ? seq1_us / wavefront8_us : 0.0;
    std::printf("encoder_layer gated wavefront@8 vs seq@1: %.2fx (informational)\n",
                wavefront8_vs_seq1);
  }

  {  // PR 5 gate acceptance, part 2: a plan the gate keeps wavefront — four
     // independent 512^3 GEMM branches (~268 MFLOP per step, far above the
     // threshold) — must engage inter-op dispatch and, wherever the machine
     // has real 8-way concurrency, beat single-thread sequential replay.
    Rng rng(8);
    Graph g;
    const int x = g.AddInput("x", {512, 512});
    int b0 = -1, b1 = -1, b2 = -1, b3 = -1;
    int* branches[] = {&b0, &b1, &b2, &b3};
    for (int b = 0; b < 4; ++b) {
      const int w = g.AddWeight("w" + std::to_string(b),
                                Tensor::Random({512, 512}, rng, -0.1f, 0.1f));
      *branches[b] = g.AddMatmul("mm" + std::to_string(b), x, w);
    }
    const int s1 = g.AddAdd("s1", b0, b1);
    const int s2 = g.AddAdd("s2", b2, b3);
    g.AddAdd("out", s1, s2);
    g.PropagateSparsity();

    const PlanStats stats = g.Plan().stats();
    if (!stats.wavefront_profitable || stats.max_wavefront_width < 4) {
      std::fprintf(stderr,
                   "FAIL gemm_branches: gate must keep large-step plans wavefront "
                   "(profitable=%d, width=%d, work %.3g)\n",
                   stats.wavefront_profitable ? 1 : 0, stats.max_wavefront_width,
                   stats.parallel_step_work);
      ok = false;
    }

    Rng xr(9);
    std::map<std::string, Tensor> feeds{{"x", Tensor::Random({512, 512}, xr)}};
    double seq1_us = 0.0;
    {
      ScopedPlanSched sched(PlanSched::kSequential);
      ScopedNumThreads one(1);
      g.Run(feeds);
      seq1_us = bench::TimeUs([&] { g.Run(feeds); }, 5);
    }
    double wavefront8_us = 0.0;
    {
      ScopedPlanSched sched(PlanSched::kWavefront);
      ScopedNumThreads threads(8);
      g.Run(feeds);
      wavefront8_us = bench::TimeUs([&] { g.Run(feeds); }, 5);
    }
    const double speedup = wavefront8_us > 0.0 ? seq1_us / wavefront8_us : 0.0;
    report4.Add("gemm_branches_4x512_wavefront_gate",
                {{"seq1_us", seq1_us},
                 {"wavefront8_us", wavefront8_us},
                 {"speedup_vs_seq1", speedup},
                 {"parallel_step_work", stats.parallel_step_work},
                 {"wavefront_profitable", stats.wavefront_profitable ? 1.0 : 0.0}});

    // Probe-gated, like the PR 1 detector assert: the speedup only means
    // something where the pool has real cores to run on.
    const unsigned hw = std::thread::hardware_concurrency();
    const double probe8 = bench::ParallelProbeSpeedup(8);
    if (hw >= 8 && probe8 > 2.0) {
      if (speedup < 1.2) {
        std::fprintf(stderr,
                     "FAIL gemm_branches wavefront@8: %.2fx vs seq@1 < 1.2x with %u hardware "
                     "threads (probe %.2fx)\n",
                     speedup, hw, probe8);
        ok = false;
      } else {
        std::printf("gemm_branches wavefront@8 speedup %.2fx >= 1.2x (probe %.2fx) — OK\n",
                    speedup, probe8);
      }
    } else {
      std::printf("gemm_branches speedup assertion skipped (hw=%u, probe %.2fx — no effective "
                  "8-way concurrency on this machine)\n",
                  hw, probe8);
    }
  }

  {  // Satellite: GEMM A-panel packing + prefetch, single-core tall shape.
    ScopedNumThreads one(1);
    constexpr int64_t kM = 2048, kN = 256, kK = 4096;
    Rng gr(7);
    Tensor a = Tensor::Random({kM, kK}, gr);
    Tensor b = Tensor::Random({kK, kN}, gr);
    Tensor c({kM, kN});
    double packed_us = 0.0, unpacked_us = 0.0, win = 0.0;
    // The delta is a few percent: retry a noisy measurement before judging.
    for (int attempt = 0; attempt < 3; ++attempt) {
      {
        ScopedGemmPackA pack(true);
        packed_us = bench::TimeUs([&] { MatMulInto(a, b, c); }, 5);
      }
      {
        ScopedGemmPackA pack(false);
        unpacked_us = bench::TimeUs([&] { MatMulInto(a, b, c); }, 5);
      }
      win = packed_us > 0.0 ? unpacked_us / packed_us : 0.0;
      if (win > 1.0) {
        break;
      }
    }
    std::printf("gemm_pack_a tall %lldx%lldx%lld 1-core: unpacked %.1f ms, packed %.1f ms "
                "(%.3fx)\n",
                static_cast<long long>(kM), static_cast<long long>(kN),
                static_cast<long long>(kK), unpacked_us / 1000.0, packed_us / 1000.0, win);
    report4.Add("gemm_pack_a_tall_2048x256x4096_1core", {{"unpacked_us", unpacked_us},
                                                         {"packed_us", packed_us},
                                                         {"packing_speedup", win}});
    if (win < 0.97) {
      std::fprintf(stderr, "FAIL gemm_pack_a: packed path regressed (%.3fx < 0.97x)\n", win);
      ok = false;
    } else if (win <= 1.0) {
      std::printf("gemm_pack_a: no measurable win on this machine (%.3fx) — not failing\n", win);
    }
  }

  if (!report.WriteFile(out_path)) {
    std::fprintf(stderr, "failed to write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("\nwrote %s\n", out_path.c_str());
  if (!report4.WriteFile(out4_path)) {
    std::fprintf(stderr, "failed to write %s\n", out4_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", out4_path.c_str());
  if (!ok) {
    std::fprintf(stderr, "\nplanned-transformer acceptance checks FAILED\n");
    return 1;
  }
  std::printf("planned-transformer acceptance checks passed\n");
  return 0;
}
