// Figure 8: Switch Transformer end-to-end inference latency and GPU memory,
// fp32 and fp16, batch sizes 8/32, experts 64/128/256, A100.
//
// Engines: PyTorch, PyTorch-S, Tutel, DeepSpeed, MegaBlocks (fp16 only),
// PIT w/o Sparse MoE, PIT.
#include "bench_util.h"
#include "pit/runtime/models.h"
#include "pit/workloads/moe_routing.h"
#include "pit/workloads/seq_len.h"

using namespace pit;

namespace {

MoeRunConfig MakeMoe(int experts, int64_t tokens, int64_t moe_layers, Rng& rng) {
  MoeRunConfig config;
  config.num_experts = experts;
  MoeRoutingConfig routing{experts, 0.8};
  for (int64_t l = 0; l < moe_layers; ++l) {
    config.layer_loads.push_back(ExpertLoads(RouteTokens(tokens, routing, rng), experts));
  }
  return config;
}

}  // namespace

int main() {
  bench::PrintHeader("Figure 8 — Switch Transformer end-to-end (A100)",
                     "MNLI-like lengths, top-1 routing, 6 MoE layers; latency per batch + memory");
  const TransformerDims dims = SwitchDims();

  for (Precision precision : {Precision::kFp32, Precision::kFp16}) {
    CostModel model(A100(), precision);
    for (int64_t batch : {32, 8}) {
      std::printf("\n--- precision=%s batch=%lld ---\n", PrecisionName(precision),
                  static_cast<long long>(batch));
      bench::Table table({"experts", "engine", "latency(ms)", "memory(GB)", "oom"});
      for (int experts : {64, 128, 256}) {
        Rng rng(42 + experts);
        auto lens = SampleBatchLens(DatasetSeqLens("mnli"), batch, rng);
        MoeRunConfig moe = MakeMoe(experts, SumLens(lens), 6, rng);
        std::vector<Engine> engines = {Engine::kPyTorch,   Engine::kPyTorchS,
                                       Engine::kTutel,     Engine::kDeepSpeed,
                                       Engine::kMegaBlocks, Engine::kPitNoSparseMoe,
                                       Engine::kPit};
        for (Engine e : engines) {
          if (e == Engine::kMegaBlocks && precision == Precision::kFp32) {
            continue;  // MegaBlocks ships fp16 kernels only (§5.1)
          }
          ModelRunCost run = SwitchTransformerRun(model, e, dims, lens, moe);
          table.Row({std::to_string(experts), EngineName(e), bench::FmtMs(run.cost.Total()),
                     bench::Fmt(run.MemoryGb(), "%.2f"), run.oom ? "OOM" : ""});
        }
      }
    }
  }
  std::printf("\nExpected shape: PIT fastest at every point with the lowest memory; the gap to\n"
              "PyTorch/Tutel widens with expert count; Tutel/DeepSpeed balloon in memory (OOM\n"
              "at high expert counts on constrained devices); PIT w/o Sparse MoE shows the MoE\n"
              "path is where PIT's Switch-Transformer gain comes from.\n");
  return 0;
}
