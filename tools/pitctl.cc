// pitctl — command-line inspector for the PIT library.
//
//   pitctl devices                     device specs + machine balance
//   pitctl tiledb [fp16]               profiled tile database
//   pitctl kernels [fp16]              kernel-space statistics (§4)
//   pitctl rules "<einsum>" [operand]  generic PIT rules for an expression
//   pitctl plan <m> <k> <n> <gm> <gn> <sparsity>
//                                      run Algorithm 1 and print the plan
//   pitctl isa                         detected/selected CPU ISA tier
//   pitctl verify                      compile representative plans and run
//                                      the static plan verifier over each
//   pitctl chaos [seed]                randomized fault-injection matrix over
//                                      the serving engine (CI containment gate)
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "pit/common/backend.h"
#include "pit/common/fault_injection.h"
#include "pit/common/parallel_for.h"
#include "pit/common/rng.h"
#include "pit/runtime/models.h"
#include "pit/runtime/serving_engine.h"
#include "pit/core/kernel_selection.h"
#include "pit/core/kernel_space.h"
#include "pit/expr/op_registry.h"
#include "pit/graph/execution_plan.h"
#include "pit/graph/graph.h"
#include "pit/graph/plan_verifier.h"
#include "pit/sparse/coverage.h"
#include "pit/tensor/tensor.h"

using namespace pit;

namespace {

void PrintDevices() {
  for (const DeviceSpec& dev : {V100(), A100()}) {
    std::printf("%s: %d SMs, %.1f TFLOPS fp32, %.0f GB/s, launch %.1fus, %dB transactions,\n"
                "  machine balance %.1f flops/byte, min micro-tile 1x%lld fp32 / 1x%lld fp16\n",
                dev.name.c_str(), dev.num_sms, dev.fp32_flops_per_sm_us * dev.num_sms / 1e6,
                dev.mem_bw_bytes_us / 1e3, dev.launch_overhead_us, dev.transaction_bytes,
                dev.BalanceFlopsPerByte(),
                static_cast<long long>(MinMicroTileElems(dev, Precision::kFp32)),
                static_cast<long long>(MinMicroTileElems(dev, Precision::kFp16)));
  }
}

void PrintTileDb(Precision precision) {
  CostModel model(V100(), precision);
  TileDatabase db = TileDatabase::BuildDefault(model, precision == Precision::kFp16);
  std::printf("tile database (%s, V100): %zu entries\n", PrecisionName(precision), db.size());
  for (const TileEntry& e : db.entries()) {
    std::printf("  %-22s %s cost/tile %.4f us, efficiency %.3f\n", e.shape.ToString().c_str(),
                e.tensor_core ? "wmma " : "cuda ", e.tile_cost_us,
                model.TileEfficiency(e.shape, e.tensor_core));
  }
}

void PrintKernels(Precision precision) {
  CostModel model(V100(), precision);
  TileDatabase db = TileDatabase::BuildDefault(model, precision == Precision::kFp16);
  KernelSpaceStats stats = SummarizeKernelSpace(db);
  std::printf("kernel space (%s): %lld dense + %lld wmma kernels -> %lld sparse kernels\n"
              "(%lld rules per dense kernel: 3 PIT-axes x 2 operand layouts)\n",
              PrecisionName(precision), static_cast<long long>(stats.dense_kernels),
              static_cast<long long>(stats.wmma_kernels),
              static_cast<long long>(stats.sparse_kernels),
              static_cast<long long>(stats.rules_per_dense));
}

void PrintRules(const std::string& einsum, int operand) {
  auto expr = ParseEinsumOrNull(einsum);
  if (!expr) {
    std::printf("could not parse: %s\n", einsum.c_str());
    std::exit(1);
  }
  std::printf("expression: %s\n", expr->ToString().c_str());
  for (const auto& info : expr->AnalyzeAxes()) {
    std::printf("  axis %-4s %-10s %-4s  %s\n", info.name.c_str(),
                info.kind == AxisKind::kSpatial ? "spatial" : "reduction",
                info.is_pit_axis ? "PIT" : "-", info.reason.c_str());
  }
  std::printf("rules for operand %d:\n", operand);
  for (const auto& rule : DeriveRules(*expr, operand)) {
    std::printf("  %s\n", rule.ToString().c_str());
  }
}

void PrintPlan(int64_t m, int64_t k, int64_t n, int64_t gm, int64_t gn, double sparsity) {
  CostModel model(V100());
  TileDatabase db = TileDatabase::BuildDefault(model);
  AnalyticPattern pattern(m, k, gm, gn, sparsity);
  SelectionResult sel = SelectKernel(model, db, {&pattern}, m, k, n);
  std::printf("problem: [%lld,%lld]x[%lld,%lld], granularity (%lld,%lld), sparsity %.2f%%\n",
              static_cast<long long>(m), static_cast<long long>(k), static_cast<long long>(k),
              static_cast<long long>(n), static_cast<long long>(gm), static_cast<long long>(gn),
              sparsity * 100.0);
  if (sel.best.fallback_dense) {
    std::printf("decision: DENSE fallback (%.1f us; best sparse plan not competitive)\n",
                sel.best.cost.Total());
  } else {
    std::printf("decision: %s\n", sel.best.rule.ToString().c_str());
    std::printf("  covered %.2f%% of A, sparsity after cover %.2f%%\n",
                sel.best.covered_fraction * 100.0, sel.best.sparsity_after_cover * 100.0);
    std::printf("  %lld dense tiles, %.1f us total (%.1f us index build)\n",
                static_cast<long long>(sel.best.num_exec_tiles), sel.best.cost.Total(),
                sel.best.cost.index_us);
  }
  std::printf("dense alternative: %.1f us; %d candidates searched in %.1f us wall\n",
              sel.dense_cost_us, sel.candidates_evaluated, sel.search_wall_us);
}

// ---- pitctl verify ---------------------------------------------------------
//
// Compiles one representative plan per planner regime — dense all-ops (every
// OpKind through one graph, fusion and in-place reuse engaged), masked +
// batched multi-head attention (parallel q/k/v waves, reshape/transpose
// aliasing, broadcast mask softmax), the fused FFN, and the PIT-decision FFN
// (sparse steps, total PIT ordering) — and runs the independent static
// verifier over each. The wave partition a plan compiles is identical under
// both replay schedulers (PIT_PLAN_SCHED picks how waves dispatch, not what
// the plan contains), so one compile proves both. Machine-grep-able output
// (`verify=ok`) plus a non-zero exit on any violation, for CI gating.

// Every OpKind in one graph: fused MatmulBias+ReLU, elementwise in-place
// chain, masked softmax, layernorm, scale, transpose, reshape aliasing into a
// batched matmul head split.
Graph BuildAllOpsVerifyGraph(Rng& rng) {
  Graph g;
  const int x = g.AddInput("x", {32, 64});
  const int m = g.AddInput("m", {32, 64});
  const int w = g.AddWeight("w", Tensor::Random({64, 64}, rng));
  const int bias = g.AddWeight("bias", Tensor::Random({64}, rng));
  const int gamma = g.AddWeight("gamma", Tensor::Random({64}, rng));
  const int beta = g.AddWeight("beta", Tensor::Random({64}, rng));
  const int mm = g.AddMatmulBias("proj", x, w, bias);
  const int act = g.AddRelu("act", mm);  // fuses into the MatmulBias step
  const int sum = g.AddAdd("sum", act, x);
  const int masked = g.AddMask("masked", sum, m);
  const int sm = g.AddSoftmax("sm", masked);
  const int ln = g.AddLayerNorm("ln", sm, gamma, beta);
  const int sc = g.AddScale("sc", ln, 0.5f);
  const int tr = g.AddTranspose("tr", sc, 0, 1);
  const int back = g.AddTranspose("back", tr, 0, 1);
  const int heads = g.AddReshape("heads", back, {2, 16, 64});
  const int keys = g.AddInput("keys", {2, 64, 16});
  g.AddBatchMatmul("scores", heads, keys);
  return g;
}

// Masked + batched multi-head attention block: three parallel projection
// GEMMs (a wave of width 3), head split/merge via reshape+transpose aliases,
// broadcast-masked softmax, residual add, layernorm.
Graph BuildAttentionVerifyGraph(Rng& rng) {
  constexpr int64_t kTokens = 64;
  constexpr int64_t kHidden = 64;
  constexpr int64_t kHeads = 4;
  constexpr int64_t kDk = kHidden / kHeads;
  Graph g;
  const int x = g.AddInput("x", {kTokens, kHidden});
  const int mask = g.AddInput("mask", {kTokens, kTokens});
  const int gamma = g.AddWeight("gamma", Tensor::Random({kHidden}, rng));
  const int beta = g.AddWeight("beta", Tensor::Random({kHidden}, rng));
  auto head_split = [&](const char* name, int from) {
    const int proj =
        g.AddMatmul(name, from, g.AddWeight(std::string("w_") + name,
                                            Tensor::Random({kHidden, kHidden}, rng)));
    const int split = g.AddReshape(std::string(name) + "_h", proj, {kTokens, kHeads, kDk});
    return g.AddTranspose(std::string(name) + "_t", split, 0, 1);  // [heads, tokens, dk]
  };
  const int q = head_split("q", x);
  const int k = head_split("k", x);
  const int v = head_split("v", x);
  const int kt = g.AddTranspose("kt", k, 1, 2);  // [heads, dk, tokens]
  const int scores = g.AddBatchMatmul("scores", q, kt);
  const int scaled = g.AddScale("scaled", scores, 0.25f);
  const int sm = g.AddSoftmax("sm", scaled, mask);
  const int ctx = g.AddBatchMatmul("ctx", sm, v);
  const int merged = g.AddTranspose("merged", ctx, 0, 1);
  const int flat = g.AddReshape("flat", merged, {kTokens, kHidden});
  const int res = g.AddAdd("res", flat, x);
  g.AddLayerNorm("out", res, gamma, beta);
  return g;
}

int PrintVerify() {
  // Compile with the auto-hook off: a violation must reach this report (and
  // the exit code), not abort the compile mid-sweep.
  ScopedPlanVerify off(PlanVerifyMode::kOff);
  Rng rng(7);
  struct Case {
    const char* name;
    Graph graph;
    std::vector<MatmulDecision> decisions;
  };
  std::vector<Case> cases;
  cases.push_back({"dense_all_ops", BuildAllOpsVerifyGraph(rng), {}});
  cases.push_back({"masked_batched_attention", BuildAttentionVerifyGraph(rng), {}});
  {
    Graph ffn = BuildFfnGraph(/*tokens=*/128, /*hidden=*/64, /*ffn_hidden=*/256, rng);
    cases.push_back({"ffn_fused_dense", std::move(ffn), {}});
  }
  {
    Graph ffn = BuildFfnGraph(/*tokens=*/128, /*hidden=*/64, /*ffn_hidden=*/256, rng);
    std::vector<MatmulDecision> decisions = ffn.PitPass();
    cases.push_back({"ffn_pit", std::move(ffn), std::move(decisions)});
  }

  int64_t total = 0;
  for (Case& c : cases) {
    const ExecutionPlan plan(c.graph, c.decisions.empty() ? nullptr : &c.decisions);
    const PlanVerifyReport report = VerifyPlan(plan);
    std::printf("plan=%s steps=%d waves=%d blocks=%d oracle_pairs=%lld oracle_edges=%lld "
                "pit_steps=%d fused=%d violations=%lld\n",
                c.name, report.steps_checked, report.waves_checked, report.blocks_checked,
                static_cast<long long>(report.oracle_pairs),
                static_cast<long long>(report.oracle_edges), plan.stats().num_pit_steps,
                plan.stats().num_fused, static_cast<long long>(report.violations_total));
    if (!report.ok()) {
      std::printf("%s\n", report.ToString().c_str());
    }
    total += report.violations_total;
  }
  std::printf("verify=%s\n", total == 0 ? "ok" : "fail");
  return total == 0 ? 0 : 1;
}

// Machine-grep-able tier report for CI gating: jobs that sweep PIT_ISA skip
// the SIMD legs (with a notice) when `pitctl isa` reports detected=scalar.
void PrintIsa() {
  std::printf("detected=%s\nselected=%s\nsimd=%d\n", IsaName(DetectedIsa()), IsaName(ActiveIsa()),
              UseSimd() ? 1 : 0);
}

// ---- pitctl chaos ----------------------------------------------------------
//
// Randomized fault matrix over the serving engine: for every injection site x
// streams {1, 4} x threads {1, 4, 7} x both plan schedulers, serve a fixed
// mixed traffic (ragged lengths, some masked, plus adversarial requests that
// must reject at admission) under high-rate deterministic fault injection and
// require: no abort, every request ends in a definite ServeStatus equal to
// the fault-free baseline's, every kOk output bitwise identical to fault-free
// 1:1 single-stream replay, the injected-fault ledger reconciles
// (faults == retries + degraded + internal, and no internal failures under
// transient faults), and every site actually fired across its cells. A PIT
// slice (batched faulted vs batched fault-free replay at identical
// composition) and an overload + deadline cell ride along. Machine-grep-able
// (`chaos=ok`) plus a non-zero exit on any violation, for CI gating.
//
// PR 10 adds liveness cells: a watchdog-supervised stall matrix (seeded delay
// faults at every streams x threads x scheduler cell; detection within 2x the
// threshold, no aborts in report mode, outputs still bitwise) and mid-flight
// deadline cells (all-lapsed batches cancelled and released kDeadlineExceeded
// as one forward; mixed batches complete and mark lapsed members at egress).

bool BitwiseEqual(const Tensor& a, const Tensor& b) {
  return a.shape() == b.shape() &&
         std::memcmp(a.data(), b.data(), static_cast<size_t>(a.size()) * sizeof(float)) == 0;
}

Tensor ChaosMask(int64_t tokens, Rng& rng) {
  Tensor mask = Tensor::RandomSparse({tokens, tokens}, 0.4, rng);
  for (int64_t i = 0; i < mask.size(); ++i) {
    mask[i] = mask[i] != 0.0f ? 1.0f : 0.0f;
  }
  return mask;
}

struct ChaosTraffic {
  std::vector<ServeRequest> requests;
  std::vector<Tensor> masks;  // owned here; requests point into it
  int num_valid = 0;          // requests expected to end kOk in a clean run
};

// Ragged mixed traffic plus three adversarial requests that must reject at
// admission deterministically, faults or not: NaN activations, a bad mask
// (wrong dimensions for transformers; any mask at all for FFN stacks), and a
// negative deadline.
ChaosTraffic BuildChaosTraffic(int64_t hidden, bool transformer, uint64_t seed) {
  ChaosTraffic t;
  Rng rng(seed);
  const int64_t counts[] = {5, 9, 16, 12, 7};
  t.masks.reserve(32);  // stable addresses: requests hold pointers into this
  for (int round = 0; round < 3; ++round) {
    for (size_t c = 0; c < sizeof(counts) / sizeof(counts[0]); ++c) {
      ServeRequest req;
      req.x = Tensor::Random({counts[c], hidden}, rng);
      if (transformer && (round + static_cast<int>(c)) % 2 == 1) {
        t.masks.push_back(ChaosMask(counts[c], rng));
        req.attn_mask = &t.masks.back();
      }
      t.requests.push_back(std::move(req));
      ++t.num_valid;
    }
  }
  {
    ServeRequest nan_req;
    nan_req.x = Tensor::Random({6, hidden}, rng);
    nan_req.x[3] = std::nanf("");
    t.requests.push_back(std::move(nan_req));
  }
  {
    ServeRequest bad_mask;
    bad_mask.x = Tensor::Random({6, hidden}, rng);
    t.masks.push_back(transformer ? ChaosMask(7, rng) : ChaosMask(6, rng));
    bad_mask.attn_mask = &t.masks.back();  // [7,7] vs 6 tokens / any mask on FFN
    t.requests.push_back(std::move(bad_mask));
  }
  {
    ServeRequest bad_deadline;
    bad_deadline.x = Tensor::Random({6, hidden}, rng);
    bad_deadline.deadline_us = -1;
    t.requests.push_back(std::move(bad_deadline));
  }
  return t;
}

// The fault-free reference every cell is checked against: single-stream,
// single-thread, sequential scheduler. Dense serving compares against 1:1
// (window 1) replay — the strongest form of the PR 6 contract; PIT serving
// compares against batched replay at the same admission knobs (identical
// claim composition), since PIT kernel selection sees the packed tile.
template <typename Stack>
std::vector<ServeOutcome> ChaosBaseline(const Stack& stack, const ChaosTraffic& traffic,
                                        bool use_pit) {
  FaultInjectionConfig off;  // disabled: the baseline must be fault-free even
  ScopedFaultInjection guard(off);  // when PIT_FAULT is exported around us
  ScopedNumThreads one_thread(1);
  ScopedPlanSched seq(PlanSched::kSequential);
  ServingEngineOptions opt;
  opt.num_streams = 1;
  opt.use_pit = use_pit;
  opt.batch_window = use_pit ? 4 : 1;
  opt.max_batch_tokens = 48;
  ServingEngine engine(stack, opt);
  return engine.ServeWithStatus(traffic.requests);
}

template <typename Stack>
int ChaosMatrix(const char* label, const Stack& stack, const ChaosTraffic& traffic, bool use_pit,
                const std::vector<int>& thread_counts, Rng& rng,
                int64_t fired_by_site[kNumFaultSites]) {
  const std::vector<ServeOutcome> baseline = ChaosBaseline(stack, traffic, use_pit);
  int failures = 0;
  for (int site_i = 0; site_i < kNumFaultSites; ++site_i) {
    if (static_cast<FaultSite>(site_i) == FaultSite::kStall) {
      continue;  // delay fault, not an error fault: exercised by ChaosStallMatrix
    }
    for (int streams : {1, 4}) {
      for (int threads : thread_counts) {
        for (PlanSched sched : {PlanSched::kSequential, PlanSched::kWavefront}) {
          const uint64_t cell_seed = rng.NextU64();
          ScopedNumThreads thread_guard(threads);
          ScopedPlanSched sched_guard(sched);
          ScopedFaultInjection fault(static_cast<FaultSite>(site_i), 0.75, cell_seed);
          ServingEngineOptions opt;
          opt.num_streams = streams;
          opt.use_pit = use_pit;
          opt.batch_window = 4;
          opt.max_batch_tokens = 48;
          ServingEngine engine(stack, opt);
          const std::vector<ServeOutcome> outcomes = engine.ServeWithStatus(traffic.requests);
          const ServingEngineStats& stats = engine.stats();
          fired_by_site[site_i] += stats.faults_injected;
          const char* err = nullptr;
          if (outcomes.size() != traffic.requests.size()) {
            err = "lost requests";
          }
          for (size_t i = 0; err == nullptr && i < outcomes.size(); ++i) {
            if (outcomes[i].status != baseline[i].status) {
              err = "status diverged from fault-free baseline";
            } else if (outcomes[i].status == ServeStatus::kOk &&
                       !BitwiseEqual(outcomes[i].output, baseline[i].output)) {
              err = "kOk output diverged bitwise from fault-free baseline";
            }
          }
          if (err == nullptr && stats.internal_failures != 0) {
            err = "internal failure under transient faults";
          }
          if (err == nullptr && stats.faults_injected != stats.retries + stats.degraded_forwards +
                                                             stats.internal_failures) {
            err = "fault ledger does not reconcile";
          }
          std::printf("chaos cell stack=%s site=%s streams=%d threads=%d sched=%s faults=%lld "
                      "retries=%lld degraded=%lld %s\n",
                      label, FaultSiteName(static_cast<FaultSite>(site_i)), streams, threads,
                      sched == PlanSched::kSequential ? "seq" : "wavefront",
                      static_cast<long long>(stats.faults_injected),
                      static_cast<long long>(stats.retries),
                      static_cast<long long>(stats.degraded_forwards), err != nullptr ? err : "ok");
          if (err != nullptr) {
            ++failures;
          }
        }
      }
    }
  }
  return failures;
}

// Overload + deadline cell: a bounded queue sheds exactly the valid requests
// beyond its capacity (arrival order, deterministic) without perturbing the
// survivors' bits, and a 1 us deadline sweeps queued requests into
// kDeadlineExceeded — every status still definite, every kOk still bitwise.
int ChaosOverloadCell(const PlannedTransformerStack& stack, const ChaosTraffic& traffic,
                      Rng& rng) {
  const std::vector<ServeOutcome> baseline = ChaosBaseline(stack, traffic, /*use_pit=*/false);
  const char* err = nullptr;
  constexpr int kQueue = 6;
  {
    ScopedFaultInjection fault(FaultSite::kBatchPack, 0.75, rng.NextU64());
    ScopedNumThreads threads(4);
    ServingEngineOptions opt;
    opt.num_streams = 2;
    opt.batch_window = 4;
    opt.max_batch_tokens = 48;
    opt.queue_capacity = kQueue;
    ServingEngine engine(stack, opt);
    const std::vector<ServeOutcome> outcomes = engine.ServeWithStatus(traffic.requests);
    int valid_seen = 0;
    for (size_t i = 0; err == nullptr && i < outcomes.size(); ++i) {
      if (baseline[i].status != ServeStatus::kOk) {
        if (outcomes[i].status != baseline[i].status) {
          err = "invalid request not rejected under overload";
        }
        continue;
      }
      ++valid_seen;
      if (valid_seen <= kQueue) {
        if (outcomes[i].status != ServeStatus::kOk) {
          err = "admitted request did not complete";
        } else if (!BitwiseEqual(outcomes[i].output, baseline[i].output)) {
          err = "admitted request diverged bitwise under shedding";
        }
      } else if (outcomes[i].status != ServeStatus::kRejectedOverload) {
        err = "request beyond queue capacity not shed";
      }
    }
    if (err == nullptr && engine.stats().rejected_overload != traffic.num_valid - kQueue) {
      err = "rejected_overload count wrong";
    }
    std::printf("chaos cell stack=transformer mode=overload queue=%d shed=%lld %s\n", kQueue,
                static_cast<long long>(engine.stats().rejected_overload),
                err != nullptr ? err : "ok");
  }
  int failures = err != nullptr ? 1 : 0;
  err = nullptr;
  {
    // Deadline sweep: which requests lapse is timing-dependent, but every
    // status must be definite (kOk or kDeadlineExceeded for valid traffic),
    // kOk bits must match, and the timed_out counter must reconcile.
    FaultInjectionConfig off;
    ScopedFaultInjection guard(off);
    ScopedNumThreads threads(1);
    ServingEngineOptions opt;
    opt.num_streams = 1;
    opt.batch_window = 1;
    opt.deadline_us = 1;
    ServingEngine engine(stack, opt);
    const std::vector<ServeOutcome> outcomes = engine.ServeWithStatus(traffic.requests);
    int64_t timed_out = 0;
    for (size_t i = 0; err == nullptr && i < outcomes.size(); ++i) {
      if (baseline[i].status != ServeStatus::kOk) {
        if (outcomes[i].status != baseline[i].status) {
          err = "invalid request not rejected under deadline";
        }
        continue;
      }
      if (outcomes[i].status == ServeStatus::kDeadlineExceeded) {
        ++timed_out;
      } else if (outcomes[i].status != ServeStatus::kOk) {
        err = "valid request ended neither kOk nor kDeadlineExceeded";
      } else if (!BitwiseEqual(outcomes[i].output, baseline[i].output)) {
        err = "kOk output diverged bitwise under deadline sweep";
      }
    }
    if (err == nullptr && engine.stats().timed_out != timed_out) {
      err = "timed_out counter does not match statuses";
    }
    std::printf("chaos cell stack=transformer mode=deadline timed_out=%lld %s\n",
                static_cast<long long>(timed_out), err != nullptr ? err : "ok");
  }
  return failures + (err != nullptr ? 1 : 0);
}

// Stall matrix (PR 10): rate-1.0 seeded stalls at every streams x threads x
// scheduler cell under watchdog supervision in report mode. A stall is a
// delay, never an error: every status must equal the fault-free baseline's,
// every kOk output must stay bitwise, the error-fault ledger must stay empty,
// and the watchdog must detect each stalled stream within 2x the threshold
// without aborting the process.
int ChaosStallMatrix(const PlannedTransformerStack& stack, const ChaosTraffic& traffic, Rng& rng,
                     int64_t fired_by_site[kNumFaultSites]) {
  constexpr int64_t kWatchdogUs = 50000;
  constexpr int64_t kStallUs = 150000;
  const std::vector<ServeOutcome> baseline = ChaosBaseline(stack, traffic, /*use_pit=*/false);
  int failures = 0;
  for (int streams : {1, 4}) {
    for (int threads : {1, 4, 7}) {
      for (PlanSched sched : {PlanSched::kSequential, PlanSched::kWavefront}) {
        FaultInjectionConfig config;
        config.enabled = true;
        config.site_enabled[static_cast<int>(FaultSite::kStall)] = true;
        config.rate = 1.0;
        config.seed = rng.NextU64();
        config.stall_us = kStallUs;
        ScopedFaultInjection fault(config);
        ScopedNumThreads thread_guard(threads);
        ScopedPlanSched sched_guard(sched);
        ServingEngineOptions opt;
        opt.num_streams = streams;
        opt.batch_window = 4;
        opt.max_batch_tokens = 48;
        opt.watchdog_us = kWatchdogUs;
        opt.watchdog_mode = WatchdogMode::kReport;
        ServingEngine engine(stack, opt);
        const std::vector<ServeOutcome> outcomes = engine.ServeWithStatus(traffic.requests);
        const ServingEngineStats& stats = engine.stats();
        fired_by_site[static_cast<int>(FaultSite::kStall)] += stats.stalls_injected;
        const char* err = nullptr;
        if (outcomes.size() != traffic.requests.size()) {
          err = "lost requests";
        }
        for (size_t i = 0; err == nullptr && i < outcomes.size(); ++i) {
          if (outcomes[i].status != baseline[i].status) {
            err = "status diverged from fault-free baseline";
          } else if (outcomes[i].status == ServeStatus::kOk &&
                     !BitwiseEqual(outcomes[i].output, baseline[i].output)) {
            err = "kOk output diverged bitwise under stalls";
          }
        }
        if (err == nullptr && stats.stalls_injected == 0) {
          err = "stall site never fired";
        }
        if (err == nullptr && stats.stalls_detected == 0) {
          err = "watchdog missed a stalled stream";
        }
        if (err == nullptr && (stats.stall_min_silence_us <= kWatchdogUs ||
                               stats.stall_min_silence_us > 2 * kWatchdogUs)) {
          err = "detection latency outside (threshold, 2x threshold]";
        }
        if (err == nullptr &&
            stats.faults_injected !=
                stats.retries + stats.degraded_forwards + stats.internal_failures) {
          err = "fault ledger does not reconcile";
        }
        if (err == nullptr && stats.faults_injected != 0) {
          err = "stall leaked into the error-fault ledger";
        }
        std::printf("chaos cell stack=transformer mode=stall streams=%d threads=%d sched=%s "
                    "stalls=%lld detected=%lld min_silence_us=%lld %s\n",
                    streams, threads, sched == PlanSched::kSequential ? "seq" : "wavefront",
                    static_cast<long long>(stats.stalls_injected),
                    static_cast<long long>(stats.stalls_detected),
                    static_cast<long long>(stats.stall_min_silence_us),
                    err != nullptr ? err : "ok");
        if (err != nullptr) {
          ++failures;
        }
      }
    }
  }
  return failures;
}

// Mid-flight deadline cells (PR 10), against a packable (unmasked, uniform
// shape) batch held in flight by a stall. All-lapsed: every member deadlined
// and lapsed -> the batch is cancelled at a step boundary (one cancelled
// forward) and released kDeadlineExceeded without completing. Partial-lapse:
// a mixed batch must complete for the survivors' sake — lapsed members are
// marked at egress, survivors stay bitwise identical to the fault-free run.
int ChaosInflightDeadlineCells(const PlannedTransformerStack& stack, uint64_t seed) {
  Rng rng(seed);
  std::vector<ServeRequest> requests(4);
  for (ServeRequest& req : requests) {
    req.x = Tensor::Random({8, 32}, rng);
  }
  std::vector<ServeOutcome> baseline;
  {
    FaultInjectionConfig off;
    ScopedFaultInjection guard(off);
    ScopedNumThreads one_thread(1);
    ScopedPlanSched seq(PlanSched::kSequential);
    ServingEngineOptions opt;
    opt.num_streams = 1;
    opt.batch_window = 1;
    ServingEngine engine(stack, opt);
    baseline = engine.ServeWithStatus(requests);
  }

  FaultInjectionConfig stall;
  stall.enabled = true;
  stall.site_enabled[static_cast<int>(FaultSite::kStall)] = true;
  stall.rate = 1.0;
  stall.seed = seed ^ 0xD1Fu;
  stall.stall_us = 400000;  // holds the batch well past the 100 ms deadlines

  int failures = 0;
  {
    for (ServeRequest& req : requests) {
      req.deadline_us = 100000;
    }
    ScopedFaultInjection fault(stall);
    ScopedNumThreads threads(1);
    ServingEngineOptions opt;
    opt.num_streams = 1;
    opt.batch_window = 4;
    opt.max_batch_tokens = 48;
    ServingEngine engine(stack, opt);
    const std::vector<ServeOutcome> outcomes = engine.ServeWithStatus(requests);
    const ServingEngineStats& stats = engine.stats();
    const char* err = nullptr;
    for (const ServeOutcome& outcome : outcomes) {
      if (outcome.status != ServeStatus::kDeadlineExceeded || !outcome.output.empty()) {
        err = "all-lapsed batch member not released kDeadlineExceeded without output";
      }
    }
    if (err == nullptr && stats.cancelled_forwards != 1) {
      err = "all-lapsed batch was not cancelled as one forward";
    }
    if (err == nullptr && stats.timed_out_inflight != static_cast<int64_t>(requests.size())) {
      err = "timed_out_inflight does not cover the whole batch";
    }
    std::printf("chaos cell stack=transformer mode=deadline_inflight_all timed_out=%lld "
                "cancelled_forwards=%lld %s\n",
                static_cast<long long>(stats.timed_out_inflight),
                static_cast<long long>(stats.cancelled_forwards), err != nullptr ? err : "ok");
    if (err != nullptr) {
      ++failures;
    }
  }
  {
    for (size_t i = 0; i < requests.size(); ++i) {
      requests[i].deadline_us = i % 2 == 0 ? 100000 : 0;
    }
    ScopedFaultInjection fault(stall);
    ScopedNumThreads threads(1);
    ServingEngineOptions opt;
    opt.num_streams = 1;
    opt.batch_window = 4;
    opt.max_batch_tokens = 48;
    ServingEngine engine(stack, opt);
    const std::vector<ServeOutcome> outcomes = engine.ServeWithStatus(requests);
    const ServingEngineStats& stats = engine.stats();
    const char* err = nullptr;
    for (size_t i = 0; err == nullptr && i < outcomes.size(); ++i) {
      if (i % 2 == 0) {
        if (outcomes[i].status != ServeStatus::kDeadlineExceeded || !outcomes[i].output.empty()) {
          err = "lapsed member not marked kDeadlineExceeded at egress";
        }
      } else if (outcomes[i].status != ServeStatus::kOk ||
                 !BitwiseEqual(outcomes[i].output, baseline[i].output)) {
        err = "surviving member diverged from fault-free baseline";
      }
    }
    if (err == nullptr && stats.cancelled_forwards != 0) {
      err = "mixed batch was cancelled in flight";
    }
    std::printf("chaos cell stack=transformer mode=deadline_inflight_partial timed_out=%lld "
                "cancelled_forwards=%lld %s\n",
                static_cast<long long>(stats.timed_out_inflight),
                static_cast<long long>(stats.cancelled_forwards), err != nullptr ? err : "ok");
    if (err != nullptr) {
      ++failures;
    }
  }
  return failures;
}

int RunChaos(uint64_t seed) {
  Rng rng(seed);
  Rng build_rng(seed ^ 0x5DEECE66DULL);
  const PlannedTransformerStack transformer(/*layers=*/2, /*hidden=*/32, /*heads=*/4,
                                            /*ffn_hidden=*/96, build_rng);
  const PlannedFfnStack ffn(/*layers=*/3, /*hidden=*/16, /*ffn_hidden=*/64, build_rng);
  const ChaosTraffic transformer_traffic = BuildChaosTraffic(32, /*transformer=*/true, seed + 1);
  const ChaosTraffic ffn_traffic = BuildChaosTraffic(16, /*transformer=*/false, seed + 2);

  int64_t fired_by_site[kNumFaultSites] = {};
  int failures = 0;
  // The required matrix, dense: every site x streams {1,4} x threads {1,4,7}
  // x both schedulers, on both stack families.
  failures += ChaosMatrix("transformer", transformer, transformer_traffic, /*use_pit=*/false,
                          {1, 4, 7}, rng, fired_by_site);
  failures += ChaosMatrix("ffn", ffn, ffn_traffic, /*use_pit=*/false, {1, 4, 7}, rng,
                          fired_by_site);
  // PIT slice: kernel selection sees the packed tile, so the reference is
  // batched single-stream replay at identical composition (ChaosBaseline).
  failures += ChaosMatrix("ffn_pit", ffn, ffn_traffic, /*use_pit=*/true, {4}, rng, fired_by_site);
  failures += ChaosOverloadCell(transformer, transformer_traffic, rng);
  // PR 10 liveness cells: watchdog-supervised stalls at every cell, and
  // mid-flight deadline enforcement on all-lapsed vs mixed batches.
  failures += ChaosStallMatrix(transformer, transformer_traffic, rng, fired_by_site);
  failures += ChaosInflightDeadlineCells(transformer, seed + 3);
  for (int site = 0; site < kNumFaultSites; ++site) {
    if (fired_by_site[site] == 0) {
      std::printf("chaos site=%s never fired across its cells (tap unwired?)\n",
                  FaultSiteName(static_cast<FaultSite>(site)));
      ++failures;
    }
  }
  std::printf("chaos=%s\n", failures == 0 ? "ok" : "fail");
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string cmd = argc > 1 ? argv[1] : "";
  const bool fp16 = argc > 2 && std::string(argv[2]) == "fp16";
  if (cmd == "devices") {
    PrintDevices();
  } else if (cmd == "tiledb") {
    PrintTileDb(fp16 ? Precision::kFp16 : Precision::kFp32);
  } else if (cmd == "kernels") {
    PrintKernels(fp16 ? Precision::kFp16 : Precision::kFp32);
  } else if (cmd == "rules" && argc > 2) {
    PrintRules(argv[2], argc > 3 ? std::atoi(argv[3]) : 0);
  } else if (cmd == "plan" && argc == 8) {
    PrintPlan(std::atoll(argv[2]), std::atoll(argv[3]), std::atoll(argv[4]),
              std::atoll(argv[5]), std::atoll(argv[6]), std::atof(argv[7]));
  } else if (cmd == "isa") {
    PrintIsa();
  } else if (cmd == "verify") {
    return PrintVerify();
  } else if (cmd == "chaos") {
    return RunChaos(argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 137ULL);
  } else {
    std::printf("usage:\n  pitctl devices\n  pitctl tiledb [fp16]\n  pitctl kernels [fp16]\n"
                "  pitctl rules \"C[m,n] += A[m,k] * B[k,n]\" [operand]\n"
                "  pitctl plan <m> <k> <n> <gm> <gn> <sparsity>\n  pitctl isa\n"
                "  pitctl verify\n  pitctl chaos [seed]\n");
    return cmd.empty() ? 1 : (cmd == "help" ? 0 : 1);
  }
  return 0;
}
