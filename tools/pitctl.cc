// pitctl — command-line inspector for the PIT library.
//
//   pitctl devices                     device specs + machine balance
//   pitctl tiledb [fp16]               profiled tile database
//   pitctl kernels [fp16]              kernel-space statistics (§4)
//   pitctl rules "<einsum>" [operand]  generic PIT rules for an expression
//   pitctl plan <m> <k> <n> <gm> <gn> <sparsity>
//                                      run Algorithm 1 and print the plan
//   pitctl isa                         detected/selected CPU ISA tier
#include <cstdio>
#include <cstdlib>
#include <string>

#include "pit/common/backend.h"
#include "pit/core/kernel_selection.h"
#include "pit/core/kernel_space.h"
#include "pit/expr/op_registry.h"
#include "pit/sparse/coverage.h"

using namespace pit;

namespace {

void PrintDevices() {
  for (const DeviceSpec& dev : {V100(), A100()}) {
    std::printf("%s: %d SMs, %.1f TFLOPS fp32, %.0f GB/s, launch %.1fus, %dB transactions,\n"
                "  machine balance %.1f flops/byte, min micro-tile 1x%lld fp32 / 1x%lld fp16\n",
                dev.name.c_str(), dev.num_sms, dev.fp32_flops_per_sm_us * dev.num_sms / 1e6,
                dev.mem_bw_bytes_us / 1e3, dev.launch_overhead_us, dev.transaction_bytes,
                dev.BalanceFlopsPerByte(),
                static_cast<long long>(MinMicroTileElems(dev, Precision::kFp32)),
                static_cast<long long>(MinMicroTileElems(dev, Precision::kFp16)));
  }
}

void PrintTileDb(Precision precision) {
  CostModel model(V100(), precision);
  TileDatabase db = TileDatabase::BuildDefault(model, precision == Precision::kFp16);
  std::printf("tile database (%s, V100): %zu entries\n", PrecisionName(precision), db.size());
  for (const TileEntry& e : db.entries()) {
    std::printf("  %-22s %s cost/tile %.4f us, efficiency %.3f\n", e.shape.ToString().c_str(),
                e.tensor_core ? "wmma " : "cuda ", e.tile_cost_us,
                model.TileEfficiency(e.shape, e.tensor_core));
  }
}

void PrintKernels(Precision precision) {
  CostModel model(V100(), precision);
  TileDatabase db = TileDatabase::BuildDefault(model, precision == Precision::kFp16);
  KernelSpaceStats stats = SummarizeKernelSpace(db);
  std::printf("kernel space (%s): %lld dense + %lld wmma kernels -> %lld sparse kernels\n"
              "(%lld rules per dense kernel: 3 PIT-axes x 2 operand layouts)\n",
              PrecisionName(precision), static_cast<long long>(stats.dense_kernels),
              static_cast<long long>(stats.wmma_kernels),
              static_cast<long long>(stats.sparse_kernels),
              static_cast<long long>(stats.rules_per_dense));
}

void PrintRules(const std::string& einsum, int operand) {
  auto expr = ParseEinsumOrNull(einsum);
  if (!expr) {
    std::printf("could not parse: %s\n", einsum.c_str());
    std::exit(1);
  }
  std::printf("expression: %s\n", expr->ToString().c_str());
  for (const auto& info : expr->AnalyzeAxes()) {
    std::printf("  axis %-4s %-10s %-4s  %s\n", info.name.c_str(),
                info.kind == AxisKind::kSpatial ? "spatial" : "reduction",
                info.is_pit_axis ? "PIT" : "-", info.reason.c_str());
  }
  std::printf("rules for operand %d:\n", operand);
  for (const auto& rule : DeriveRules(*expr, operand)) {
    std::printf("  %s\n", rule.ToString().c_str());
  }
}

void PrintPlan(int64_t m, int64_t k, int64_t n, int64_t gm, int64_t gn, double sparsity) {
  CostModel model(V100());
  TileDatabase db = TileDatabase::BuildDefault(model);
  AnalyticPattern pattern(m, k, gm, gn, sparsity);
  SelectionResult sel = SelectKernel(model, db, {&pattern}, m, k, n);
  std::printf("problem: [%lld,%lld]x[%lld,%lld], granularity (%lld,%lld), sparsity %.2f%%\n",
              static_cast<long long>(m), static_cast<long long>(k), static_cast<long long>(k),
              static_cast<long long>(n), static_cast<long long>(gm), static_cast<long long>(gn),
              sparsity * 100.0);
  if (sel.best.fallback_dense) {
    std::printf("decision: DENSE fallback (%.1f us; best sparse plan not competitive)\n",
                sel.best.cost.Total());
  } else {
    std::printf("decision: %s\n", sel.best.rule.ToString().c_str());
    std::printf("  covered %.2f%% of A, sparsity after cover %.2f%%\n",
                sel.best.covered_fraction * 100.0, sel.best.sparsity_after_cover * 100.0);
    std::printf("  %lld dense tiles, %.1f us total (%.1f us index build)\n",
                static_cast<long long>(sel.best.num_exec_tiles), sel.best.cost.Total(),
                sel.best.cost.index_us);
  }
  std::printf("dense alternative: %.1f us; %d candidates searched in %.1f us wall\n",
              sel.dense_cost_us, sel.candidates_evaluated, sel.search_wall_us);
}

// Machine-grep-able tier report for CI gating: jobs that sweep PIT_ISA skip
// the SIMD legs (with a notice) when `pitctl isa` reports detected=scalar.
void PrintIsa() {
  std::printf("detected=%s\nselected=%s\nsimd=%d\n", IsaName(DetectedIsa()), IsaName(ActiveIsa()),
              UseSimd() ? 1 : 0);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string cmd = argc > 1 ? argv[1] : "";
  const bool fp16 = argc > 2 && std::string(argv[2]) == "fp16";
  if (cmd == "devices") {
    PrintDevices();
  } else if (cmd == "tiledb") {
    PrintTileDb(fp16 ? Precision::kFp16 : Precision::kFp32);
  } else if (cmd == "kernels") {
    PrintKernels(fp16 ? Precision::kFp16 : Precision::kFp32);
  } else if (cmd == "rules" && argc > 2) {
    PrintRules(argv[2], argc > 3 ? std::atoi(argv[3]) : 0);
  } else if (cmd == "plan" && argc == 8) {
    PrintPlan(std::atoll(argv[2]), std::atoll(argv[3]), std::atoll(argv[4]),
              std::atoll(argv[5]), std::atoll(argv[6]), std::atof(argv[7]));
  } else if (cmd == "isa") {
    PrintIsa();
  } else {
    std::printf("usage:\n  pitctl devices\n  pitctl tiledb [fp16]\n  pitctl kernels [fp16]\n"
                "  pitctl rules \"C[m,n] += A[m,k] * B[k,n]\" [operand]\n"
                "  pitctl plan <m> <k> <n> <gm> <gn> <sparsity>\n  pitctl isa\n");
    return cmd.empty() ? 1 : (cmd == "help" ? 0 : 1);
  }
  return 0;
}
