#include <gtest/gtest.h>

#include "pit/core/pit_rule.h"
#include "pit/expr/op_registry.h"

namespace pit {
namespace {

TEST(OpRegistryTest, MatmulSparseARulesMatchSpecialization) {
  EinsumExpr matmul = MatMulExpr();
  auto rules = DeriveRules(matmul, /*operand_index=*/0, /*tile_extent=*/32);
  // A[m,k] is indexed by m and k; n never touches A -> exactly 2 rules.
  ASSERT_EQ(rules.size(), 2u);

  GenericRule m_rule = FindRuleForAxis(rules, "m");
  EXPECT_EQ(m_rule.micro_tile.extents, (std::vector<int64_t>{1, 32}));
  EXPECT_FALSE(m_rule.needs_layout_flip);  // m is A's outer dim (row-major ok)

  GenericRule k_rule = FindRuleForAxis(rules, "k");
  EXPECT_EQ(k_rule.micro_tile.extents, (std::vector<int64_t>{32, 1}));
  EXPECT_TRUE(k_rule.needs_layout_flip);  // k is A's innermost dim

  // Cross-check against the matmul specialization in core/pit_rule.h.
  bool flip = false;
  MicroTileShape special =
      DeriveMicroTileForA(TileShape{32, 32, 64}, MatmulAxis::kK, Layout::kRowMajor, &flip);
  EXPECT_EQ(special.rows, k_rule.micro_tile.extents[0]);
  EXPECT_EQ(special.cols, k_rule.micro_tile.extents[1]);
  EXPECT_EQ(flip, k_rule.needs_layout_flip);
}

TEST(OpRegistryTest, MatmulSparseBRules) {
  EinsumExpr matmul = MatMulExpr();
  auto rules = DeriveRules(matmul, /*operand_index=*/1, 64);
  ASSERT_EQ(rules.size(), 2u);  // B[k,n]: axes k and n
  GenericRule k_rule = FindRuleForAxis(rules, "k");
  EXPECT_EQ(k_rule.micro_tile.extents, (std::vector<int64_t>{1, 64}));
  EXPECT_FALSE(k_rule.needs_layout_flip);  // k is B's outer dim
  GenericRule n_rule = FindRuleForAxis(rules, "n");
  EXPECT_TRUE(n_rule.needs_layout_flip);
}

TEST(OpRegistryTest, BatchMatmulHasThreeRulesForA) {
  EinsumExpr bmm = BatchMatMulExpr();
  auto rules = DeriveRules(bmm, 0, 16);
  // A[b,m,k]: b, m, k all PIT-axes indexing A.
  ASSERT_EQ(rules.size(), 3u);
  GenericRule b_rule = FindRuleForAxis(rules, "b");
  EXPECT_EQ(b_rule.micro_tile.extents, (std::vector<int64_t>{1, 16, 16}));
  EXPECT_FALSE(b_rule.needs_layout_flip);
  EXPECT_TRUE(FindRuleForAxis(rules, "k").needs_layout_flip);
}

TEST(OpRegistryTest, ConvolutionChannelRulesOnly) {
  EinsumExpr conv = ConvolutionExpr();
  // A[n,m,x+i,y+j]: PIT-axes touching A are n (batch) and m (in-channel);
  // the derived spatial dims are never micro-tiled (extent 0 = full).
  auto rules = DeriveRules(conv, 0, 8);
  ASSERT_EQ(rules.size(), 2u);
  GenericRule m_rule = FindRuleForAxis(rules, "m");
  EXPECT_EQ(m_rule.micro_tile.extents, (std::vector<int64_t>{8, 1, 0, 0}));
  EXPECT_FALSE(m_rule.needs_layout_flip);  // innermost dims are the derived ones
  // Weight B[f,m,i,j]: PIT-axes f and m index it.
  auto w_rules = DeriveRules(conv, 1, 8);
  ASSERT_EQ(w_rules.size(), 2u);
  EXPECT_EQ(FindRuleForAxis(w_rules, "f").micro_tile.extents[0], 1);
}

TEST(OpRegistryTest, ReduceSumBothAxes) {
  auto rules = DeriveRules(ReduceSumExpr(), 0, 8);
  ASSERT_EQ(rules.size(), 2u);  // p and l both index A[p,l]
  EXPECT_TRUE(FindRuleForAxis(rules, "l").needs_layout_flip);   // innermost
  EXPECT_FALSE(FindRuleForAxis(rules, "p").needs_layout_flip);
}

TEST(OpRegistryTest, NonCommutativeReducerYieldsSpatialRulesOnly) {
  EinsumExpr e = ParseEinsum("C[p] += A[p,l]");
  e.reduce = ReduceKind::kNonCommutative;
  auto rules = DeriveRules(e, 0, 8);
  ASSERT_EQ(rules.size(), 1u);  // only the spatial axis p survives
  EXPECT_EQ(rules[0].pit_axis, "p");
}

TEST(OpRegistryTest, ToStringIsReadable) {
  auto rules = DeriveRules(MatMulExpr(), 0, 32);
  const std::string s = FindRuleForAxis(rules, "k").ToString();
  EXPECT_NE(s.find("axis=k"), std::string::npos);
  EXPECT_NE(s.find("flip"), std::string::npos);
}

}  // namespace
}  // namespace pit
